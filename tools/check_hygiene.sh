#!/bin/sh
# CI-style hygiene check: build artifacts must never be tracked.
# Wired into `dune build @bench-quick` (see bench/dune) so the quick CI
# lane fails if _build/ residue ever reappears in the index.
set -e

root=$(git rev-parse --show-toplevel 2>/dev/null) || {
  echo "hygiene: not inside a git checkout; skipping"
  exit 0
}
cd "$root"

bad=$(git ls-files _build '*.install')
if [ -n "$bad" ]; then
  echo "hygiene: build artifacts are tracked in git:" >&2
  echo "$bad" >&2
  exit 1
fi
echo "hygiene: no tracked build artifacts"
