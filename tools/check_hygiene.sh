#!/bin/sh
# CI-style hygiene checks.  Wired into the default `dune runtest` (see
# test/dune) and into `dune build @bench-quick` (see bench/dune), so
# both lanes fail fast on:
#   1. build artifacts tracked in git,
#   2. stray session-cache residue (*.eocache) left in the source tree,
#   3. an .ml file under lib/ without a matching .mli — every library
#      module must state its interface,
#   4. an engine name known to the Config parser but missing from the
#      CLI --engine help or the docs (or vice versa) — the engine
#      vocabulary must read the same everywhere it is listed,
#   5. the timeout vocabulary drifting apart: EO_TIMEOUT_MS, --timeout,
#      the "status": "timeout" JSON field and exit code 3 must each be
#      named in the config parser, the CLI and the docs.
set -e

root=$(git rev-parse --show-toplevel 2>/dev/null) || {
  echo "hygiene: not inside a git checkout; skipping"
  exit 0
}
cd "$root"

bad=$(git ls-files _build '*.install')
if [ -n "$bad" ]; then
  echo "hygiene: build artifacts are tracked in git:" >&2
  echo "$bad" >&2
  exit 1
fi
echo "hygiene: no tracked build artifacts"

# Session-cache entries belong under EO_CACHE_DIR / --cache directories,
# never in the tree (a committed cache would bypass every invalidation
# rule the cache relies on).
stray=$(find . -name '*.eocache' -not -path './_build/*' -not -path './.git/*')
if [ -n "$stray" ]; then
  echo "hygiene: stray session-cache files in the source tree:" >&2
  echo "$stray" >&2
  exit 1
fi
echo "hygiene: no stray cache files"

# Interface discipline: every lib/**/*.ml ships its .mli.
missing=""
for ml in $(git ls-files 'lib/*.ml' 'lib/**/*.ml'); do
  mli="${ml}i"
  [ -f "$mli" ] || missing="$missing $ml"
done
if [ -n "$missing" ]; then
  echo "hygiene: lib modules without an .mli:" >&2
  for m in $missing; do echo "  $m" >&2; done
  exit 1
fi
echo "hygiene: every lib module has an interface"

# Engine-name consistency: Config.engine_names is the source of truth;
# every name must be parsed by Engine.of_string, selectable from the
# CLI --engine enum (and named in its help text), and documented in
# docs/ANALYSES.md — and the CLI must not offer a name Config rejects.
engines=$(sed -n 's/^let engine_names = \[\(.*\)\]/\1/p' lib/obs/config.ml \
  | tr -d '";')
if [ -z "$engines" ]; then
  echo "hygiene: could not read engine_names from lib/obs/config.ml" >&2
  exit 1
fi
for e in $engines; do
  grep -q "\"$e\" -> Some" lib/feasible/engine.ml || {
    echo "hygiene: engine '$e' missing from Engine.of_string" >&2; exit 1; }
  grep -q "(\"$e\", Engine\." bin/eventorder.ml || {
    echo "hygiene: engine '$e' missing from the CLI --engine enum" >&2; exit 1; }
  grep -q "'$e'" bin/eventorder.ml || {
    echo "hygiene: engine '$e' missing from the CLI --engine help text" >&2
    exit 1; }
  grep -q "\`$e\`" docs/ANALYSES.md || {
    echo "hygiene: engine '$e' not documented in docs/ANALYSES.md" >&2
    exit 1; }
done
for e in $(sed -n 's/.*("\([a-z]*\)", Engine\..*/\1/p' bin/eventorder.ml); do
  case " $engines " in
    *" $e "*) ;;
    *) echo "hygiene: CLI offers engine '$e' that Config rejects" >&2
       exit 1 ;;
  esac
done
echo "hygiene: engine names agree across Config, CLI and docs"

# Memory-model-name consistency: Config.model_names is the source of
# truth; every name must be parsed by Memmodel.of_string, named in the
# CLI --model help text, and documented in docs/ANALYSES.md — and the
# typed parser must not accept a name Config rejects.
models=$(sed -n 's/^let model_names = \[\(.*\)\]/\1/p' lib/obs/config.ml \
  | tr -d '";')
if [ -z "$models" ]; then
  echo "hygiene: could not read model_names from lib/obs/config.ml" >&2
  exit 1
fi
for m in $models; do
  grep -q "\"$m\" -> Some" lib/memmodel/memmodel.ml || {
    echo "hygiene: model '$m' missing from Memmodel.of_string" >&2; exit 1; }
  grep -q "'$m'" bin/eventorder.ml || {
    echo "hygiene: model '$m' missing from the CLI --model help text" >&2
    exit 1; }
  grep -q "\`$m\`" docs/ANALYSES.md || {
    echo "hygiene: model '$m' not documented in docs/ANALYSES.md" >&2
    exit 1; }
done
for m in $(sed -n 's/^  | "\([a-z]*\)" -> Some .*/\1/p' lib/memmodel/memmodel.ml); do
  case " $models " in
    *" $m "*) ;;
    *) echo "hygiene: Memmodel.of_string accepts model '$m' that Config rejects" >&2
       exit 1 ;;
  esac
done
for knob in EO_MODEL; do
  grep -q "$knob" lib/obs/config.ml || {
    echo "hygiene: $knob parser missing from lib/obs/config.ml" >&2; exit 1; }
  grep -q "$knob" bin/eventorder.ml || {
    echo "hygiene: $knob fallback missing from bin/eventorder.ml" >&2; exit 1; }
  grep -q "$knob" docs/ANALYSES.md || {
    echo "hygiene: $knob documentation missing from docs/ANALYSES.md" >&2
    exit 1; }
done
for ctr in Model_queries_sc Model_queries_tso Model_queries_pso \
           Consistency_checks Consistency_fast_hits Consistency_sat_hits; do
  grep -q "$ctr" lib/obs/counters.ml || {
    echo "hygiene: $ctr counter missing from lib/obs/counters.ml" >&2; exit 1; }
done
for name in model_queries_sc model_queries_tso model_queries_pso \
            consistency_checks consistency_fast_hits consistency_sat_hits; do
  grep -q "$name" lib/obs/counters.ml || {
    echo "hygiene: $name counter name missing from lib/obs/counters.ml" >&2
    exit 1; }
  grep -q "$name" docs/PROTOCOL.md || {
    echo "hygiene: $name protocol documentation missing from docs/PROTOCOL.md" >&2
    exit 1; }
done
echo "hygiene: model names agree across Config, Memmodel, CLI and docs"

# Timeout-vocabulary consistency: the deadline surface is one contract
# spoken in four places (env var, flag, JSON status, exit code); a
# rename or removal in any one of them must fail loudly here.
require() { # require <pattern> <file> <what>
  grep -q "$1" "$2" || {
    echo "hygiene: $3 missing from $2" >&2; exit 1; }
}
require 'EO_TIMEOUT_MS' lib/obs/config.ml "EO_TIMEOUT_MS parser"
require 'EO_TIMEOUT_MS' bin/eventorder.ml "EO_TIMEOUT_MS fallback"
require 'EO_TIMEOUT_MS' docs/ANALYSES.md "EO_TIMEOUT_MS documentation"
require 'EO_TIMEOUT_MS' README.md "EO_TIMEOUT_MS documentation"
require '"timeout"' bin/eventorder.ml "--timeout flag"
require '\-\-timeout' docs/ANALYSES.md "--timeout documentation"
require '\-\-timeout' README.md "--timeout documentation"
require '"status"' bin/eventorder.ml 'JSON "status" field'
require 'exit 3' bin/eventorder.ml "exit code 3 on expiry"
require 'code \*\*3\*\*' docs/ANALYSES.md "exit-code-3 documentation"
require '\*\*3\*\*' README.md "exit-code-3 documentation"
require 'Timeout_expirations' lib/obs/counters.ml "timeout counters"
echo "hygiene: timeout vocabulary agrees across config, CLI and docs"

# Triage-vocabulary consistency: the auto engine's tier slices and
# counters are one contract spoken in config, counters, docs and the
# streaming CLI — a rename in any one place must fail loudly here.
for knob in EO_TRIAGE_REACH_NODES EO_TRIAGE_SAT_CONFLICTS EO_TRIAGE_ENUM_NODES; do
  require "$knob" lib/obs/config.ml "$knob parser"
  require "$knob" docs/ANALYSES.md "$knob documentation"
done
for ctr in Triage_approx_hits Triage_reach_hits Triage_sat_hits \
           Triage_enum_hits Triage_escalations; do
  require "$ctr" lib/obs/counters.ml "$ctr counter"
done
for name in triage_tier_hits_approx triage_tier_hits_reach \
            triage_tier_hits_sat triage_tier_hits_enum triage_escalations; do
  require "$name" lib/obs/counters.ml "$name counter name"
  require "$name" docs/PROTOCOL.md "$name protocol documentation"
done
require 'races_stream' bin/eventorder.ml "streaming races schema emitter"
echo "hygiene: triage vocabulary agrees across config, counters and docs"

# Schema inventory: every eventorder.*/N document the code can emit
# must be named in docs/PROTOCOL.md — a new (or renamed) schema without
# wire documentation fails here, and so does an error code the protocol
# spec does not list.
schemas=$(grep -rhoE '"eventorder\.[a-z_]+/[0-9]+"' lib bin | tr -d '"' | sort -u)
if [ -z "$schemas" ]; then
  echo "hygiene: could not find any emitted schema strings" >&2
  exit 1
fi
for s in $schemas; do
  grep -qF "\`$s\`" docs/PROTOCOL.md || {
    echo "hygiene: schema '$s' is emitted in code but not documented in docs/PROTOCOL.md" >&2
    exit 1; }
done
codes=$(sed -n 's/.*| \([A-Z][a-z]*\) -> "\([a-z]*\)"$/\2/p' lib/api/api.ml)
if [ -z "$codes" ]; then
  echo "hygiene: could not read the error codes from lib/api/api.ml" >&2
  exit 1
fi
for c in $codes; do
  grep -q "\`$c\`" docs/PROTOCOL.md || {
    echo "hygiene: error code '$c' is emitted in code but not documented in docs/PROTOCOL.md" >&2
    exit 1; }
done
echo "hygiene: every emitted schema and error code is documented in docs/PROTOCOL.md"
