#!/bin/sh
# CI-style hygiene checks.  Wired into the default `dune runtest` (see
# test/dune) and into `dune build @bench-quick` (see bench/dune), so
# both lanes fail fast on:
#   1. build artifacts tracked in git,
#   2. stray session-cache residue (*.eocache) left in the source tree,
#   3. an .ml file under lib/ without a matching .mli — every library
#      module must state its interface.
set -e

root=$(git rev-parse --show-toplevel 2>/dev/null) || {
  echo "hygiene: not inside a git checkout; skipping"
  exit 0
}
cd "$root"

bad=$(git ls-files _build '*.install')
if [ -n "$bad" ]; then
  echo "hygiene: build artifacts are tracked in git:" >&2
  echo "$bad" >&2
  exit 1
fi
echo "hygiene: no tracked build artifacts"

# Session-cache entries belong under EO_CACHE_DIR / --cache directories,
# never in the tree (a committed cache would bypass every invalidation
# rule the cache relies on).
stray=$(find . -name '*.eocache' -not -path './_build/*' -not -path './.git/*')
if [ -n "$stray" ]; then
  echo "hygiene: stray session-cache files in the source tree:" >&2
  echo "$stray" >&2
  exit 1
fi
echo "hygiene: no stray cache files"

# Interface discipline: every lib/**/*.ml ships its .mli.
missing=""
for ml in $(git ls-files 'lib/*.ml' 'lib/**/*.ml'); do
  mli="${ml}i"
  [ -f "$mli" ] || missing="$missing $ml"
done
if [ -n "$missing" ]; then
  echo "hygiene: lib modules without an .mli:" >&2
  for m in $missing; do echo "  $m" >&2; done
  exit 1
fi
echo "hygiene: every lib module has an interface"
