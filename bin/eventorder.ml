(* eventorder — command-line front end for the event-ordering analyses.

   Subcommands:
     analyze    run a program and print the six Table-1 relation matrices
     report     one-shot comprehensive analysis of a program or trace
     explore    all executions of a loop-free program (counts, finals)
     order      decide the relations for one labelled pair, with a witness
     consistent decide rf/co consistency under a memory model, with witness
     schedules  count feasible schedules / states, check for deadlocks
     races      report apparent and feasible data races
     taskgraph  Emrath-Ghosh-Padua task-graph claims vs the exact engine
     reduce     build the Theorem 1/3 reduction program from a DIMACS file
     theorems   machine-check Theorems 1-4 on a formula
     figure1    reproduce the paper's Figure 1 discrepancy
     record     save an observed execution as a *.eotrace file
     dot        render executions / pinned orders / task graphs as DOT
     fuzz       differential testing of the engines on random programs *)

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Shared arguments and helpers                                        *)
(* ------------------------------------------------------------------ *)

let program_file =
  let doc =
    "Program source file (see README for the syntax), or a saved trace \
     (*.eotrace) produced by the 'record' subcommand."
  in
  Arg.(required & pos 0 (some non_dir_file) None & info [] ~docv:"FILE" ~doc)

let policy_arg =
  let doc =
    "Scheduling policy for the observed execution: 'rr' (round robin), \
     'priority', or 'random:SEED'."
  in
  let parse s =
    match s with
    | "rr" -> Ok Sched.Round_robin
    | "priority" -> Ok Sched.Priority
    | _ -> (
        match String.split_on_char ':' s with
        | [ "random"; seed ] -> (
            match int_of_string_opt seed with
            | Some seed -> Ok (Sched.Random seed)
            | None -> Error (`Msg "random seed must be an integer"))
        | _ -> Error (`Msg "expected rr, priority, or random:SEED"))
  in
  let print ppf = function
    | Sched.Round_robin -> Format.pp_print_string ppf "rr"
    | Sched.Priority -> Format.pp_print_string ppf "priority"
    | Sched.Random seed -> Format.fprintf ppf "random:%d" seed
    | Sched.Replay _ -> Format.pp_print_string ppf "replay"
  in
  Arg.(
    value
    & opt (conv (parse, print)) Sched.Round_robin
    & info [ "policy" ] ~docv:"POLICY" ~doc)

let limit_arg =
  let doc =
    "Cap on the number of feasible schedules enumerated (the exact \
     engines are exponential; capped results under-approximate the \
     could-have relations)."
  in
  Arg.(value & opt (some int) None & info [ "limit" ] ~docv:"N" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for the exact engines.  Defaults to the EO_JOBS \
     environment variable, else 1.  Results are deterministic and \
     bit-identical to --jobs 1; only the wall-clock changes."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let print_json doc = print_string (Jsonout.to_string_pretty doc)

(* Fatal CLI error.  In text mode the message goes to stderr, prefixed
   with "error: " unless [~locate] says it carries its own location
   prefix (parse errors print "file:line: ...").  Under --format json,
   stdout gets a single well-formed eventorder.error/1 object instead —
   consumers of the JSON surface never have to parse free-form stderr —
   and the exit code is 2 either way.  [~code] is the machine-readable
   error class of the JSON object ("usage" unless stated otherwise). *)
let die_error ?(locate = false) ?(code = Api.Usage) ~json fmt =
  Format.kasprintf
    (fun msg ->
      if json then print_json (Api.error_doc ~code msg)
      else if locate then Format.eprintf "%s@." msg
      else Format.eprintf "error: %s@." msg;
      exit 2)
    fmt

(* Api failures carry their own code; the exit code stays 2. *)
let or_die_api ?(json = false) f =
  try f () with Api.Error (code, msg) -> die_error ~code ~json "%s" msg

(* Precedence: --jobs flag > EO_JOBS > 1 — [Config.resolve] over the
   cached [Config.jobs] reader (which [Parallel.default_jobs] also uses). *)
let resolve_jobs ?(json = false) = function
  | Some j when j >= 1 -> j
  | Some j -> die_error ~json "--jobs must be at least 1 (got %d)" j
  | None -> Config.resolve ~cli:None ~env:Config.jobs

let engine_arg =
  let doc =
    "Exact engine backing the per-pair queries: 'naive' (schedule \
     enumeration), 'packed' (bitset-packed memoized search, the default), \
     'sat' (compile feasibility to CNF and decide with the in-repo \
     CDCL solver; every witness is replay-certified), or 'auto' (tiered \
     triage: polynomial one-sided deciders first, escalating undecided \
     queries through reachability, SAT and bounded enumeration, each \
     tier under its own budget slice).  Overrides the EO_ENGINE \
     environment variable."
  in
  Arg.(
    value
    & opt
        (some
           (enum
              [
                ("naive", Engine.Naive);
                ("packed", Engine.Packed);
                ("sat", Engine.Sat);
                ("auto", Engine.Auto);
              ]))
        None
    & info [ "engine" ] ~docv:"ENGINE" ~doc)

(* Precedence: --engine flag > EO_ENGINE > packed.  The flag is parsed by
   cmdliner; the env var is validated eagerly here so a typo dies with
   the list of valid engines instead of silently running packed. *)
let resolve_engine ?(json = false) = function
  | Some e -> Engine.set e
  | None -> (
      match Sys.getenv_opt "EO_ENGINE" with
      | None | Some "" -> ()
      | Some s -> (
          match Config.engine_of_string s with
          | Ok name -> (
              match Engine.of_string name with
              | Some e -> Engine.set e
              | None -> ())
          | Error msg -> die_error ~json "%s" msg))

let model_arg =
  let doc =
    "Memory model governing which program-order edges every feasible \
     schedule must respect: 'sc' (sequential consistency, the paper's \
     F1-F3 semantics, the default), 'tso' (total store order: a pure \
     write may be delayed past later reads of its own process), or \
     'pso' (partial store order: a pure write may additionally be \
     delayed past later independent writes).  Synchronization events \
     fence under every model, and program-ordered accesses of the same \
     variable stay ordered (per-location coherence).  Overrides the \
     EO_MODEL environment variable."
  in
  Arg.(value & opt (some string) None & info [ "model" ] ~docv:"MODEL" ~doc)

(* Precedence: --model flag > EO_MODEL > sc, mirroring [resolve_engine].
   The flag is deliberately a raw string validated here rather than a
   cmdliner enum: an unknown model must die with exit 2 and the model
   vocabulary on the JSON surface too. *)
let resolve_model ?(json = false) = function
  | Some s -> (
      match Memmodel.of_string s with
      | Some m -> Memmodel.set m
      | None ->
          die_error ~json "unknown --model %S (valid models: %s)" s
            (String.concat ", " Config.model_names))
  | None -> (
      match Sys.getenv_opt "EO_MODEL" with
      | None | Some "" -> ()
      | Some s -> (
          match Config.model_of_string s with
          | Ok name -> (
              match Memmodel.of_string name with
              | Some m -> Memmodel.set m
              | None -> ())
          | Error msg -> die_error ~json "%s" msg))

let timeout_arg =
  let doc =
    "Wall-clock budget for the exact engines, in milliseconds.  When the \
     deadline expires the engines stop cooperatively and the command \
     reports partial results: could-have relations and race sets \
     under-approximate, must-have relations over-approximate — the same \
     sound directions as --limit.  JSON output then carries \
     \"status\": \"timeout\" and the exit code is 3.  Overrides the \
     EO_TIMEOUT_MS environment variable."
  in
  Arg.(value & opt (some int) None & info [ "timeout" ] ~docv:"MS" ~doc)

(* Precedence: --timeout flag > EO_TIMEOUT_MS > unlimited, mirroring
   [resolve_jobs].  The flag is validated here; the env var is validated
   by [Config.timeout_ms] (malformed values warn and are ignored). *)
let resolve_budget ?(json = false) = function
  | Some ms when ms >= 1 -> Budget.create ~timeout_ms:ms ()
  | Some ms ->
      die_error ~json "--timeout must be at least 1 millisecond (got %d)" ms
  | None -> (
      match Config.timeout_ms () with
      | Some ms -> Budget.create ~timeout_ms:ms ()
      | None -> Budget.unlimited)

let status_field budget =
  [
    ( "status",
      Jsonout.Str (if Budget.exhausted budget then "timeout" else "ok") );
  ]

(* Exit contract: 0 success, 1 analysis check failed, 2 usage/input
   error (see [die_error]), 3 deadline expired — partial results were
   already printed, and JSON consumers also see "status": "timeout". *)
let finish_budget ?(json = false) budget =
  if Budget.exhausted budget then begin
    if not json then
      Format.eprintf
        "note: --timeout expired; the results above are partial (sound \
         approximations)@.";
    exit 3
  end

let cache_arg =
  let doc =
    "Directory for the on-disk result cache (created on first store).  \
     Overrides the EO_CACHE_DIR environment variable.  Entries are keyed \
     by a canonical program hash plus the engine and enumeration limit, \
     so a stale hit is impossible; delete the directory to reclaim the \
     space.  Without this flag and without EO_CACHE_DIR only the \
     in-process cache is used."
  in
  Arg.(value & opt (some string) None & info [ "cache" ] ~docv:"DIR" ~doc)

(* Precedence: --cache flag > EO_CACHE_DIR > memory-only.  A relative
   flag is anchored at the current directory (the env var must already
   be absolute — [Config.cache_dir] rejects it otherwise). *)
let resolve_cache = function
  | Some dir ->
      let dir =
        if Filename.is_relative dir then Filename.concat (Sys.getcwd ()) dir
        else dir
      in
      { Session.memory = true; Session.dir = Some dir }
  | None -> Session.default_cache ()

let stats_arg =
  let doc =
    "Collect engine telemetry (search-node, prune and memo counters, phase \
     timers, parallel split metadata) and include it in the output.  The \
     search counters are bit-identical across --jobs settings."
  in
  Arg.(value & flag & info [ "stats" ] ~doc)

let format_arg =
  let doc =
    "Output format: 'text' (human-readable, the default) or 'json' \
     (machine-readable; each subcommand emits one object with a 'schema' \
     field naming its stable layout)."
  in
  Arg.(
    value
    & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
    & info [ "format" ] ~docv:"FMT" ~doc)

let make_stats collect = if collect then Some (Telemetry.create ()) else None

let stats_field = function
  | Some tel -> [ ("stats", Telemetry.to_json tel) ]
  | None -> []

let print_stats_text = function
  | Some tel -> Format.printf "@.%a" Telemetry.pp tel
  | None -> ()

(* JSON rendering of relations and races lives in [Api] — one encoding
   shared by every transport. *)
let json_of_rel = Api.json_of_rel
let relation_key = Api.relation_key
let json_of_race = Api.json_of_race

let max_events_arg =
  let doc =
    "Refuse to run the exponential engines on traces with more events than \
     this (override consciously)."
  in
  Arg.(value & opt int 40 & info [ "max-events" ] ~docv:"N" ~doc)

let parse_program_file ?(json = false) path =
  try Parse.program_file path
  with Parse.Syntax_error { line; message } ->
    die_error ~locate:true ~code:Api.Parse ~json "%s:%d: syntax error: %s"
      path line message

let load_trace ?(json = false) path policy =
  let trace =
    if Filename.check_suffix path ".eotrace" then (
      try Trace_io.load path
      with Failure message ->
        die_error ~locate:true ~code:Api.Parse ~json "%s: malformed trace: %s"
          path message)
    else Interp.run ~policy (parse_program_file ~json path)
  in
  (* Under --format json the notes move to stderr so stdout stays one
     well-formed JSON document. *)
  let note ppf = if json then Format.eprintf ppf else Format.printf ppf in
  (match trace.Trace.outcome with
  | Trace.Completed -> ()
  | Trace.Deadlocked pids ->
      note
        "note: the observed execution deadlocked (blocked processes: %a); \
         analysing the events that did run@."
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           Format.pp_print_int)
        pids
  | Trace.Fuel_exhausted ->
      note "note: fuel exhausted; analysing the recorded prefix@.");
  trace

let guard_size ?(json = false) trace max_events =
  let n = Trace.n_events trace in
  if n > max_events then
    die_error ~json
      "trace has %d events; the exact engines are exponential and %d is \
       past the configured --max-events %d"
      n n max_events

(* ------------------------------------------------------------------ *)
(* analyze                                                             *)
(* ------------------------------------------------------------------ *)

let analyze_cmd =
  let reduced_arg =
    let doc =
      "Use the class-level engine (partial-order reduction + state \
       reachability) instead of raw schedule enumeration.  Same results, \
       exponentially faster on traces with independent events."
    in
    Arg.(value & flag & info [ "reduced" ] ~doc)
  in
  let run file policy limit timeout max_events reduced all jobs engine model
      collect fmt cache =
    let json = fmt = `Json in
    let jobs = resolve_jobs ~json jobs in
    resolve_engine ~json engine;
    resolve_model ~json model;
    let budget = resolve_budget ~json timeout in
    let trace = load_trace ~json file policy in
    if not json then Format.printf "%a@." Trace.pp trace;
    guard_size ~json trace max_events;
    let x = Trace.to_execution trace in
    let sk = Skeleton.of_execution x in
    let stats = make_stats collect in
    (* One session answers everything this command prints.  The reduced
       engine ignores --limit (its class walk is exact), matching the
       historical Relations.compute_reduced behaviour. *)
    let session =
      Session.create
        ?limit:(if reduced then None else limit)
        ~jobs ?stats ~budget ~cache:(resolve_cache cache) sk
    in
    let s =
      Budget.value
        (if reduced then Relations.of_session_reduced_outcome session
         else Relations.of_session_outcome session)
    in
    let races =
      if all then
        Some (Race.feasible_races_session session,
              Race.first_races_session session)
      else None
    in
    let po = Pinned.po_of_schedule sk (Trace.schedule trace) in
    let width = Antichain.width po in
    (match fmt with
    | `Json ->
        let labels =
          Jsonout.List
            (Array.to_list
               (Array.map
                  (fun e -> Jsonout.Str e.Event.label)
                  x.Execution.events))
        in
        let relations =
          Jsonout.Obj
            (List.map
               (fun rel ->
                 (relation_key rel, json_of_rel (Relations.to_rel s rel)))
               Relations.all_relations)
        in
        print_json
          (Jsonout.Obj
             ([
                ("schema", Jsonout.Str "eventorder.analyze/1");
              ]
             @ status_field budget
             @ [
                ("events", Jsonout.Int sk.Skeleton.n);
                ("labels", labels);
                ( "engine",
                  Jsonout.Str (Engine.to_string (Engine.current ())) );
                ("jobs", Jsonout.Int jobs);
                ("reduced", Jsonout.Bool reduced);
                ("feasible_schedules", Jsonout.Int s.Relations.feasible_count);
                ("truncated", Jsonout.Bool s.Relations.truncated);
                ("distinct_classes", Jsonout.Int s.Relations.distinct_classes);
                ("width", Jsonout.Int width);
                ("relations", relations);
              ]
             @ (match races with
               | None -> []
               | Some (feasible, first) ->
                   [
                     ( "feasible_races",
                       Jsonout.List (List.map (json_of_race x) feasible) );
                     ( "first_races",
                       Jsonout.List (List.map (json_of_race x) first) );
                   ])
             @ stats_field stats))
    | `Text ->
        Format.printf "%a@." Relations.pp_summary (s, x.Execution.events);
        Format.printf
          "max concurrency (width of the observed pinned order): %d of %d \
           events@."
          width (Trace.n_events trace);
        (match races with
        | None -> ()
        | Some (feasible, first) ->
            let report name races =
              Format.printf "%s: %d@." name (List.length races);
              List.iter
                (fun r -> Format.printf "  %a@." (Race.pp_race x) r)
                races
            in
            report "feasible races (exact)" feasible;
            report "first races (debugging frontier)" first);
        print_stats_text stats);
    finish_budget ~json budget
  in
  let all_arg =
    let doc =
      "Also report the feasible and first data races, decided from the \
       same analysis session (one enumeration, one cache entry — cheaper \
       than running 'analyze' and 'races' separately)."
    in
    Arg.(value & flag & info [ "all" ] ~doc)
  in
  let doc = "run a program and print the six Table-1 ordering relations" in
  Cmd.v
    (Cmd.info "analyze" ~doc)
    Term.(
      const run $ program_file $ policy_arg $ limit_arg $ timeout_arg
      $ max_events_arg $ reduced_arg $ all_arg $ jobs_arg $ engine_arg
      $ model_arg $ stats_arg $ format_arg $ cache_arg)

(* ------------------------------------------------------------------ *)
(* schedules                                                           *)
(* ------------------------------------------------------------------ *)

let schedules_cmd =
  let run file policy timeout max_events collect fmt =
    let json = fmt = `Json in
    let budget = resolve_budget ~json timeout in
    let trace = load_trace ~json file policy in
    guard_size trace max_events;
    let sk = Skeleton.of_execution (Trace.to_execution trace) in
    let stats = make_stats collect in
    let c =
      match stats with
      | None -> Counters.null
      | Some tel ->
          Telemetry.set_run tel
            ~engine:(Engine.to_string (Engine.current ()))
            ~jobs:1;
          Telemetry.counters tel
    in
    (* Each query degrades independently under the deadline: a cut DP
       count reads 0, states/deadlock fall back to the empty answer —
       "status" and the exit code say the run was partial. *)
    let degrade fallback f =
      try f ()
      with Budget.Expired ->
        Counters.bump c Counters.Timeout_expirations;
        Counters.bump c Counters.Timeout_degraded;
        fallback
    in
    let r, count, states, deadlock =
      Counters.time c Counters.T_total @@ fun () ->
      let r = Reach.create ~stats:c ~budget sk in
      let count =
        degrade 0 (fun () ->
            Counters.time c Counters.T_count (fun () -> Reach.schedule_count r))
      in
      ( r,
        count,
        degrade 0 (fun () -> Reach.reachable_state_count r),
        degrade false (fun () -> Reach.deadlock_reachable r) )
    in
    Reach.stats_commit r;
    let saturated = count >= Reach.count_saturation in
    (match fmt with
    | `Json ->
        print_json
          (Jsonout.Obj
             ([
                ("schema", Jsonout.Str "eventorder.schedules/1");
              ]
             @ status_field budget
             @ [
                ("events", Jsonout.Int sk.Skeleton.n);
                ("feasible_schedules", Jsonout.Int count);
                ("saturated", Jsonout.Bool saturated);
                ("reachable_states", Jsonout.Int states);
                ("deadlock_reachable", Jsonout.Bool deadlock);
              ]
             @ stats_field stats))
    | `Text ->
        Format.printf "events:                   %d@." sk.Skeleton.n;
        if saturated then
          Format.printf "feasible schedules:       >= 10^18@."
        else Format.printf "feasible schedules:       %d@." count;
        Format.printf "reachable states:         %d@." states;
        Format.printf "deadlock reachable:       %b@." deadlock;
        print_stats_text stats);
    finish_budget ~json budget
  in
  let doc = "count feasible schedules and states; check for reachable deadlocks" in
  Cmd.v
    (Cmd.info "schedules" ~doc)
    Term.(
      const run $ program_file $ policy_arg $ timeout_arg $ max_events_arg
      $ stats_arg $ format_arg)

(* ------------------------------------------------------------------ *)
(* races                                                               *)
(* ------------------------------------------------------------------ *)

let races_cmd =
  let witness_arg =
    let doc = "For each feasible race, print the pair of interleavings that \
               exhibit it." in
    Arg.(value & flag & info [ "witness" ] ~doc)
  in
  let stream_query_arg =
    let doc =
      "Answer one per-pair ordering query on the streaming path, REL:A:B \
       with REL 'mhb' (must happen before) or 'chb' (could happen \
       before) and A, B numeric event ids of the trace.  Repeatable.  \
       Queries are answered by the tier-1 devices only, so each verdict \
       is true, false, or unknown (undecided at streaming scale)."
    in
    Arg.(value & opt_all string [] & info [ "query" ] ~docv:"REL:A:B" ~doc)
  in
  (* The streaming path: under the auto engine a saved trace bigger than
     --max-events is not rejected but routed through the columnar
     reader and the tier-1 triage pipeline — linear in the trace, every
     reported race replay-certified, undecided candidates surfaced
     rather than silently dropped. *)
  let run_streaming ~json ~fmt ~jobs ~budget ~witness ~collect ~queries big =
    let parse_query q =
      let bad () =
        die_error ~json
          "--query expects REL:A:B with REL one of mhb, chb and A, B \
           numeric event ids (got %S)"
          q
      in
      match String.split_on_char ':' q with
      | [ rel; a; b ] -> (
          let rel =
            match String.lowercase_ascii rel with
            | "mhb" -> Some Triage.S_mhb
            | "chb" -> Some Triage.S_chb
            | _ -> None
          in
          match (rel, int_of_string_opt a, int_of_string_opt b) with
          | Some rel, Some a, Some b ->
              let n = Bigtrace.n_events big in
              if a < 0 || a >= n || b < 0 || b >= n then
                die_error ~json
                  "--query %S: event ids must be in [0, %d)" q n;
              (rel, a, b)
          | _ -> bad ())
      | _ -> bad ()
    in
    let queries = List.map parse_query queries in
    if witness then
      Format.eprintf
        "note: --witness is unavailable on the streaming path (the \
         certifying schedules are the whole trace)@.";
    let stats = make_stats collect in
    Option.iter
      (fun tel ->
        Telemetry.set_run tel
          ~engine:(Engine.to_string (Engine.current ()))
          ~jobs)
      stats;
    let c =
      match stats with
      | Some tel -> Telemetry.counters tel
      | None -> Counters.null
    in
    let report = Triage.races_big ~stats:c ~budget ~jobs ~queries big in
    let rel_name = function
      | Triage.S_mhb -> "mhb"
      | Triage.S_chb -> "chb"
    in
    let verdict_string = function
      | Some true -> "true"
      | Some false -> "false"
      | None -> "unknown"
    in
    (match fmt with
    | `Json ->
        let races =
          Jsonout.List
            (List.map
               (fun (e1, e2, vars) ->
                 Jsonout.Obj
                   [
                     ("e1", Jsonout.Int e1);
                     ("e2", Jsonout.Int e2);
                     ( "variables",
                       Jsonout.List (List.map (fun v -> Jsonout.Int v) vars) );
                   ])
               report.Triage.races)
        in
        print_json
          (Jsonout.Obj
             ([ ("schema", Jsonout.Str "eventorder.races_stream/1") ]
             @ status_field budget
             @ [
                 ("events", Jsonout.Int report.Triage.events);
                 ("candidates", Jsonout.Int report.Triage.candidates);
                 ( "observed_feasible",
                   Jsonout.Bool report.Triage.observed_feasible );
                 ("truncated", Jsonout.Bool report.Triage.truncated);
                 ("refuted", Jsonout.Int report.Triage.refuted);
                 ("certified", Jsonout.Int report.Triage.certified);
                 ("undecided", Jsonout.Int report.Triage.undecided);
                 ("races", races);
               ]
             @ (match report.Triage.answers with
               | [] -> []
               | answers ->
                   [
                     ( "queries",
                       Jsonout.List
                         (List.map
                            (fun (a : Triage.stream_answer) ->
                              Jsonout.Obj
                                [
                                  ("relation", Jsonout.Str (rel_name a.Triage.q_rel));
                                  ("before", Jsonout.Int a.Triage.q_a);
                                  ("after", Jsonout.Int a.Triage.q_b);
                                  ( "verdict",
                                    Jsonout.Str (verdict_string a.Triage.q_verdict)
                                  );
                                ])
                            answers) );
                   ])
             @ stats_field stats))
    | `Text ->
        Format.printf "events: %d@." report.Triage.events;
        List.iter
          (fun (a : Triage.stream_answer) ->
            Format.printf "query %s(%d, %d): %s@."
              (rel_name a.Triage.q_rel) a.Triage.q_a a.Triage.q_b
              (verdict_string a.Triage.q_verdict))
          report.Triage.answers;
        Format.printf "candidate conflicting pairs: %d%s@."
          report.Triage.candidates
          (if report.Triage.truncated then " (truncated)" else "");
        Format.printf "refuted by forced-order clock: %d@."
          report.Triage.refuted;
        Format.printf "undecided at streaming scale: %d@."
          report.Triage.undecided;
        Format.printf "certified races (replayed both orders): %d@."
          report.Triage.certified;
        List.iter
          (fun (e1, e2, vars) ->
            Format.printf "  race between %s (event %d) and %s (event %d) on %a@."
              big.Bigtrace.events.(e1).Event.label e1
              big.Bigtrace.events.(e2).Event.label e2
              (Format.pp_print_list
                 ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
                 (fun ppf v -> Format.fprintf ppf "v%d" v))
              vars)
          report.Triage.races;
        print_stats_text stats);
    finish_budget ~json budget
  in
  let run file policy limit timeout max_events witness jobs engine model
      queries collect fmt cache =
    let json = fmt = `Json in
    let jobs = resolve_jobs ~json jobs in
    resolve_engine ~json engine;
    resolve_model ~json model;
    let budget = resolve_budget ~json timeout in
    let streaming =
      if
        Engine.current () = Engine.Auto
        && Filename.check_suffix file ".eotrace"
      then begin
        let big =
          try Bigtrace.read file
          with Failure message ->
            die_error ~locate:true ~code:Api.Parse ~json
              "%s: malformed trace: %s" file message
        in
        if Bigtrace.n_events big > max_events then Some big else None
      end
      else None
    in
    match streaming with
    | Some big ->
        run_streaming ~json ~fmt ~jobs ~budget ~witness ~collect ~queries big
    | None ->
    if queries <> [] then
      die_error ~json
        "--query runs on the streaming path only (a saved *.eotrace \
         bigger than --max-events under --engine auto); use the batch \
         subcommand for per-pair queries at exact scale";
    let trace = load_trace ~json file policy in
    guard_size ~json trace max_events;
    let x = Trace.to_execution trace in
    let candidates = Race.conflicting_pairs x in
    let apparent = Race.apparent_races x in
    let stats = make_stats collect in
    (* One session serves both race sets: the first-race refinement reuses
       the feasible set through the session cache instead of re-deciding
       every pair (which used to double the engine work). *)
    let session =
      Session.of_execution ?limit ~jobs ?stats ~budget
        ~cache:(resolve_cache cache) x
    in
    let feasible = Race.feasible_races_session session in
    let first = Race.first_races_session session in
    let witnesses =
      if witness then
        List.filter_map
          (fun r ->
            Option.map
              (fun w -> (r, w))
              (Race.race_witness x r.Race.e1 r.Race.e2))
          feasible
      else []
    in
    (match fmt with
    | `Json ->
        let races rs = Jsonout.List (List.map (json_of_race x) rs) in
        let schedule s =
          Jsonout.List (List.map (fun e -> Jsonout.Int e) (Array.to_list s))
        in
        let witness_json (r, (s1, s2)) =
          Jsonout.Obj
            [
              ("e1", Jsonout.Int r.Race.e1);
              ("e2", Jsonout.Int r.Race.e2);
              ("schedules", Jsonout.List [ schedule s1; schedule s2 ]);
            ]
        in
        print_json
          (Jsonout.Obj
             ([
                ("schema", Jsonout.Str "eventorder.races/1");
              ]
             @ status_field budget
             @ [
                ("events", Jsonout.Int (Execution.n_events x));
                ("candidates", races candidates);
                ("apparent", races apparent);
                ("feasible", races feasible);
                ("first", races first);
              ]
             @ (if witness then
                  [ ("witnesses", Jsonout.List (List.map witness_json witnesses)) ]
                else [])
             @ stats_field stats))
    | `Text ->
        let report name races =
          Format.printf "%s: %d@." name (List.length races);
          List.iter (fun r -> Format.printf "  %a@." (Race.pp_race x) r) races
        in
        report "candidate conflicting pairs" candidates;
        report "apparent races (vector clock)" apparent;
        report "feasible races (exact)" feasible;
        report "first races (debugging frontier)" first;
        List.iter
          (fun (r, (s1, s2)) ->
            let pp_schedule ppf s =
              Format.pp_print_list
                ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
                (fun ppf e ->
                  Format.pp_print_string ppf x.Execution.events.(e).Event.label)
                ppf (Array.to_list s)
            in
            Format.printf "@.witness for %a:@.  %a@.  %a@."
              (Race.pp_race x) r pp_schedule s1 pp_schedule s2)
          witnesses;
        print_stats_text stats);
    finish_budget ~json budget
  in
  let doc = "detect apparent (polynomial) and feasible (exact) data races" in
  Cmd.v
    (Cmd.info "races" ~doc)
    Term.(
      const run $ program_file $ policy_arg $ limit_arg $ timeout_arg
      $ max_events_arg $ witness_arg $ jobs_arg $ engine_arg $ model_arg
      $ stream_query_arg $ stats_arg $ format_arg $ cache_arg)

(* ------------------------------------------------------------------ *)
(* gen                                                                 *)
(* ------------------------------------------------------------------ *)

let gen_cmd =
  let family_arg =
    let doc =
      "Trace family: 'pc_mesh' (producer/consumer lanes handing fresh \
       variables over fresh semaphores), 'server_logs' (workers \
       publishing to a collector via event variables), or 'fork_join' \
       (a forked tree with sibling races)."
    in
    Arg.(
      value
      & opt (enum (List.map (fun n ->
            (n, Option.get (Progen.big_family_of_string n)))
            Progen.big_family_names))
          Progen.Pc_mesh
      & info [ "family" ] ~docv:"FAMILY" ~doc)
  in
  let events_arg =
    let doc = "Number of events to emit (at least 64)." in
    Arg.(value & opt int 1_000_000 & info [ "events" ] ~docv:"N" ~doc)
  in
  let seed_arg =
    let doc = "Deterministic seed for race placement." in
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let output_arg =
    let doc = "Output file (eotrace format, written streaming)." in
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  let run family events seed output =
    if events < 64 then
      die_error ~json:false "--events must be at least 64 (got %d)" events;
    let t = Progen.big_trace ~family ~events ~seed in
    Bigtrace.save output t;
    Format.printf "wrote %s: %d events (%s, seed %d)@." output
      (Bigtrace.n_events t)
      (Progen.big_family_to_string family)
      seed
  in
  let doc =
    "generate a large synthetic trace (eotrace format) from a named \
     family, sized for the streaming 'races --engine auto' path"
  in
  Cmd.v
    (Cmd.info "gen" ~doc)
    Term.(const run $ family_arg $ events_arg $ seed_arg $ output_arg)

(* ------------------------------------------------------------------ *)
(* encode                                                              *)
(* ------------------------------------------------------------------ *)

(* Dump one per-pair query as a standalone DIMACS CNF instance — the
   exact formula the [sat] engine probes with assumptions, with the
   assumption materialized as a unit clause so any external solver can
   decide it.  Comment lines state the query and its semantics. *)
let encode_cmd =
  let query_arg =
    let doc =
      "The query to compile, REL:A:B with A, B event labels or numeric \
       event ids.  REL is one of: 'chb' (satisfiable iff A could have \
       happened before B), 'mhb' (the refutation probe — unsatisfiable \
       iff A must have happened before B, provided the base formula is \
       satisfiable), or 'ccw' (the two-copy formula, satisfiable iff A \
       and B could have been concurrent)."
    in
    Arg.(required & pos 1 (some string) None & info [] ~docv:"QUERY" ~doc)
  in
  let run file policy max_events query =
    let trace = load_trace file policy in
    guard_size trace max_events;
    let x = Trace.to_execution trace in
    let sk = Skeleton.of_execution x in
    match String.index_opt query ':' with
    | None ->
        die_error ~json:false
          "unknown query %S (expected REL:A:B with REL one of chb, mhb, ccw)"
          query
    | Some i ->
        let rel = String.lowercase_ascii (String.sub query 0 i) in
        let rest = String.sub query (i + 1) (String.length query - i - 1) in
        let a_label, b_label, a, b =
          or_die_api (fun () -> Api.resolve_pair trace x ~query rest)
        in
        let enc = Encode.build (Session.encode_program sk) in
        (* The assumption literal becomes a unit clause; a pair closed by
           program order / dependence folds to the base formula (the
           asked direction is forced anyway) or to an explicit empty
           clause (the asked direction is impossible). *)
        let assume base = function
          | `Always -> base
          | `Never -> Cnf.make ~num_vars:base.Cnf.num_vars ([] :: base.Cnf.clauses)
          | `Lit l -> Cnf.make ~num_vars:base.Cnf.num_vars ([ l ] :: base.Cnf.clauses)
        in
        let f, semantics =
          match rel with
          | "chb" ->
              ( assume (Encode.cnf enc) (Encode.order_literal enc a b),
                "satisfiable iff A could have happened before B" )
          | "mhb" ->
              ( assume (Encode.cnf enc) (Encode.order_literal enc b a),
                "unsatisfiable iff A must have happened before B (given \
                 the base formula is satisfiable)" )
          | "ccw" ->
              ( Encode.race_formula enc a b,
                "satisfiable iff A and B could have been concurrent" )
          | _ ->
              die_error ~json:false
                "relation %S has no single-formula SAT encoding (expected \
                 chb, mhb, or ccw)"
                rel
        in
        Format.printf "c eventorder encode %s: A = '%s' (event %d), B = \
                       '%s' (event %d)@."
          rel a_label a b_label b;
        Format.printf "c %s@." semantics;
        Format.printf "%a" Dimacs.print f
  in
  let doc =
    "compile one per-pair ordering query to a DIMACS CNF instance"
  in
  Cmd.v
    (Cmd.info "encode" ~doc)
    Term.(const run $ program_file $ policy_arg $ max_events_arg $ query_arg)

(* ------------------------------------------------------------------ *)
(* taskgraph                                                           *)
(* ------------------------------------------------------------------ *)

let taskgraph_cmd =
  let run file policy max_events =
    let trace = load_trace file policy in
    let x = Trace.to_execution trace in
    let egp = Egp.build x in
    Format.printf "task graph: %d sync nodes, %d synchronization edges@."
      (Digraph.size (Egp.graph egp))
      (Egp.sync_edge_count egp);
    let claims = Egp.guaranteed_rel egp in
    Format.printf "claimed guaranteed orderings: %d@." (Rel.pair_count claims);
    if Trace.n_events trace <= max_events then begin
      let d = Decide.create x in
      let missed = ref 0 in
      let n = Execution.n_events x in
      for a = 0 to n - 1 do
        for b = 0 to n - 1 do
          if a <> b && Decide.mhb d a b && not (Rel.mem claims a b) then begin
            incr missed;
            Format.printf "  missed: %s MHB %s@."
              x.Execution.events.(a).Event.label
              x.Execution.events.(b).Event.label
          end
        done
      done;
      Format.printf "orderings the exact engine proves but the graph misses: %d@."
        !missed
    end
    else
      Format.printf
        "(trace too large for the exact comparison; raise --max-events)@."
  in
  let doc = "build the Emrath-Ghosh-Padua task graph and compare with the exact engine" in
  Cmd.v
    (Cmd.info "taskgraph" ~doc)
    Term.(const run $ program_file $ policy_arg $ max_events_arg)

(* ------------------------------------------------------------------ *)
(* reduce                                                              *)
(* ------------------------------------------------------------------ *)

let reduce_cmd =
  let style_arg =
    let doc = "Synchronization style: 'sem' (Theorem 1/2) or 'event' (Theorem 3/4)." in
    Arg.(
      value
      & opt (enum [ ("sem", `Sem); ("event", `Event) ]) `Sem
      & info [ "style" ] ~docv:"STYLE" ~doc)
  in
  let decide_arg =
    let doc = "Also decide a MHB b / b CHB a with the exact engine and cross-check DPLL." in
    Arg.(value & flag & info [ "decide" ] ~doc)
  in
  let dimacs_file =
    let doc = "3-CNF formula in DIMACS format." in
    Arg.(required & pos 0 (some non_dir_file) None & info [] ~docv:"DIMACS" ~doc)
  in
  let run style decide file collect fmt =
    let formula = Dimacs.parse_file file in
    let stats = make_stats collect in
    (match stats with
    | Some tel ->
        Telemetry.set_run tel
          ~engine:(Engine.to_string (Engine.current ()))
          ~jobs:1
    | None -> ());
    let program, checks =
      match style with
      | `Sem ->
          let red = Reduction_sem.build formula in
          ( red.Reduction_sem.program,
            if decide then
              [
                Theorems.check_theorem_1 ?stats formula;
                Theorems.check_theorem_2 ?stats formula;
              ]
            else [] )
      | `Event ->
          let red = Reduction_evt.build formula in
          ( red.Reduction_evt.program,
            if decide then
              [
                Theorems.check_theorem_3 ?stats formula;
                Theorems.check_theorem_4 ?stats formula;
              ]
            else [] )
    in
    match fmt with
    | `Json ->
        let check_json (c : Theorems.check) =
          Jsonout.Obj
            [
              ("theorem", Jsonout.Int c.Theorems.theorem);
              ("satisfiable", Jsonout.Bool c.Theorems.satisfiable);
              ("ordering_holds", Jsonout.Bool c.Theorems.ordering_holds);
              ("agrees", Jsonout.Bool c.Theorems.agrees);
              ("events", Jsonout.Int c.Theorems.n_events);
            ]
        in
        print_json
          (Jsonout.Obj
             ([
                ("schema", Jsonout.Str "eventorder.reduce/1");
                ( "style",
                  Jsonout.Str (match style with `Sem -> "sem" | `Event -> "event")
                );
                ("variables", Jsonout.Int formula.Cnf.num_vars);
                ("clauses", Jsonout.Int (Cnf.num_clauses formula));
                ("program", Jsonout.Str (Format.asprintf "%a" Ast.pp program));
              ]
             @ (if decide then
                  [ ("checks", Jsonout.List (List.map check_json checks)) ]
                else [])
             @ stats_field stats))
    | `Text ->
        Format.printf "%a@." Ast.pp program;
        List.iter
          (fun c -> Format.printf "%a@." Theorems.pp_check c)
          checks;
        print_stats_text stats
  in
  let doc = "build the Theorem 1-4 reduction program from a DIMACS 3-CNF" in
  Cmd.v
    (Cmd.info "reduce" ~doc)
    Term.(
      const run $ style_arg $ decide_arg $ dimacs_file $ stats_arg
      $ format_arg)

(* ------------------------------------------------------------------ *)
(* theorems                                                            *)
(* ------------------------------------------------------------------ *)

let theorems_cmd =
  let formula_arg =
    let doc =
      "Formula: 'tiny-sat', 'tiny-unsat', or a path to a DIMACS file.  Keep \
       it small: deciding the reduction is exponential (that is the point)."
    in
    Arg.(value & opt string "tiny-unsat" & info [ "formula" ] ~docv:"F" ~doc)
  in
  let run formula_spec =
    let formula =
      match formula_spec with
      | "tiny-sat" -> Sat_gen.tiny_sat_3cnf ()
      | "tiny-unsat" -> Sat_gen.tiny_unsat_3cnf ()
      | path -> Dimacs.parse_file path
    in
    let all = Theorems.check_all formula in
    List.iter (fun c -> Format.printf "%a@." Theorems.pp_check c) all;
    if List.for_all (fun c -> c.Theorems.agrees) all then
      print_endline "all theorem equivalences verified"
    else begin
      print_endline "THEOREM CHECK FAILED";
      exit 1
    end
  in
  let doc = "machine-check Theorems 1-4 on a formula" in
  Cmd.v (Cmd.info "theorems" ~doc) Term.(const run $ formula_arg)

(* ------------------------------------------------------------------ *)
(* report                                                              *)
(* ------------------------------------------------------------------ *)

let report_cmd =
  let run file policy max_events jobs cache =
    let jobs = resolve_jobs jobs in
    let trace = load_trace file policy in
    guard_size trace max_events;
    let x = Trace.to_execution trace in
    let sk = Skeleton.of_execution x in
    let n = Trace.n_events trace in
    (* Every section below draws on one session: one reachability memo,
       one class-level summary, one (cached) race set. *)
    let session =
      Session.create ~jobs ~cache:(resolve_cache cache) sk
    in
    Format.printf "=== execution ===@.%a@." Trace.pp trace;

    Format.printf "=== feasible executions ===@.";
    let r = Session.reach session in
    let count = Reach.schedule_count r in
    if count >= Reach.count_saturation then
      Format.printf "feasible schedules: >= 10^18@."
    else Format.printf "feasible schedules: %d@." count;
    Format.printf "reachable states:   %d@." (Reach.reachable_state_count r);
    (match Reach.deadlock_witness r with
    | None -> Format.printf "reachable deadlock: none@."
    | Some prefix ->
        Format.printf "reachable deadlock: yes, e.g. after [%s]@."
          (String.concat "; "
             (Array.to_list
                (Array.map (fun e -> x.Execution.events.(e).Event.label) prefix))));

    Format.printf "@.=== ordering relations (pair counts) ===@.";
    let s = Relations.of_session_reduced session in
    Format.printf "distinct classes:   %d@." s.Relations.distinct_classes;
    List.iter
      (fun rel ->
        Format.printf "%-34s %d pairs@."
          (Relations.relation_name rel)
          (Rel.pair_count (Relations.to_rel s rel)))
      Relations.all_relations;
    let para = Parallelism.analyze sk (Trace.schedule trace) in
    Format.printf
      "max concurrency (width): %d of %d events; critical path: %d; \
       speedup limit: %.2f@."
      para.Parallelism.width n
      para.Parallelism.critical_path_length
      (Parallelism.speedup_limit para);

    Format.printf "@.=== races ===@.";
    let print_races name races =
      Format.printf "%-10s %d@." name (List.length races);
      List.iter (fun race -> Format.printf "  %a@." (Race.pp_race x) race) races
    in
    print_races "apparent:" (Race.apparent_races x);
    print_races "feasible:" (Race.feasible_races_session session);
    print_races "first:" (Race.first_races_session session);

    Format.printf "@.=== polynomial approximations vs exact MHB ===@.";
    let d = Decide.of_session session in
    let mhb_count = ref 0 and missed_by_graph = ref 0 in
    let egp = Egp.build x in
    for a = 0 to n - 1 do
      for b = 0 to n - 1 do
        if a <> b && Decide.mhb d a b then begin
          incr mhb_count;
          if not (Egp.guaranteed_before egp a b) then incr missed_by_graph
        end
      done
    done;
    Format.printf "exact MHB pairs:            %d@." !mhb_count;
    Format.printf "missed by the task graph:   %d@." !missed_by_graph;
    let h = Hmw.of_execution x in
    Format.printf "HMW phase-3 safe pairs:     %d@."
      (Rel.pair_count h.Hmw.phase3)
  in
  let doc = "one-shot comprehensive analysis: schedules, relations, races, approximations" in
  Cmd.v
    (Cmd.info "report" ~doc)
    Term.(
      const run $ program_file $ policy_arg $ max_events_arg $ jobs_arg
      $ cache_arg)

(* ------------------------------------------------------------------ *)
(* order                                                               *)
(* ------------------------------------------------------------------ *)

let order_cmd =
  let label n =
    let doc = Printf.sprintf "Label of the %s event of the pair." n in
    Arg.(
      required
      & opt (some string) None
      & info [ n ] ~docv:(String.uppercase_ascii n) ~doc)
  in
  let run file policy max_events a_label b_label =
    let trace = load_trace file policy in
    guard_size trace max_events;
    let x = Trace.to_execution trace in
    let a = (Trace.find_event trace a_label).Event.id in
    let b = (Trace.find_event trace b_label).Event.id in
    let d = Decide.create x in
    let show name v = Format.printf "%-40s %b@." name v in
    show (Printf.sprintf "'%s' MHB '%s':" a_label b_label) (Decide.mhb d a b);
    show (Printf.sprintf "'%s' CHB '%s':" a_label b_label) (Decide.chb d a b);
    show (Printf.sprintf "'%s' CHB '%s':" b_label a_label) (Decide.chb d b a);
    show (Printf.sprintf "'%s' CCW '%s':" a_label b_label) (Decide.ccw d a b);
    show (Printf.sprintf "'%s' MOW '%s':" a_label b_label) (Decide.mow d a b);
    (* The witness search shares the session's memoized state engine with
       the five decisions above. *)
    let r = Session.reach (Decide.session d) in
    match Reach.witness_before r b a with
    | None ->
        Format.printf "no feasible execution runs '%s' before '%s'@." b_label
          a_label
    | Some schedule ->
        Format.printf "witness schedule running '%s' before '%s':@." b_label
          a_label;
        Array.iteri
          (fun i e ->
            Format.printf "  %2d  %s@." i x.Execution.events.(e).Event.label)
          schedule
  in
  let doc =
    "decide the ordering relations for one labelled pair and print a \
     witness schedule for the reversed order when one exists"
  in
  Cmd.v
    (Cmd.info "order" ~doc)
    Term.(
      const run $ program_file $ policy_arg $ max_events_arg $ label "before"
      $ label "after")

(* ------------------------------------------------------------------ *)
(* consistent                                                          *)
(* ------------------------------------------------------------------ *)

let consistent_cmd =
  let rf_arg =
    let doc =
      "Override the reads-from source of one read, as READ=WRITE with \
       READ and WRITE numeric event ids (WRITE also accepts 'init', \
       the variable's initial value).  Repeatable.  Reads not \
       overridden keep the observed source: the last write to their \
       variable that ran temporally before them."
    in
    Arg.(value & opt_all string [] & info [ "rf" ] ~docv:"READ=WRITE" ~doc)
  in
  let run file policy max_events model rf_overrides collect fmt =
    let json = fmt = `Json in
    resolve_model ~json model;
    let model = Memmodel.current () in
    let trace = load_trace ~json file policy in
    guard_size ~json trace max_events;
    let x = Trace.to_execution trace in
    let stats = make_stats collect in
    let c =
      match stats with
      | None -> Counters.null
      | Some tel ->
          Telemetry.set_run tel
            ~engine:(Engine.to_string (Engine.current ()))
            ~jobs:1;
          Telemetry.counters tel
    in
    let overrides =
      List.map
        (fun spec ->
          let bad () =
            die_error ~json
              "--rf expects READ=WRITE with numeric event ids (WRITE also \
               accepts 'init'); got %S"
              spec
          in
          match String.index_opt spec '=' with
          | None -> bad ()
          | Some i ->
              let read = String.trim (String.sub spec 0 i) in
              let write =
                String.trim
                  (String.sub spec (i + 1) (String.length spec - i - 1))
              in
              let read =
                match int_of_string_opt read with
                | Some r -> r
                | None -> bad ()
              in
              let write =
                if write = "init" then -1
                else match int_of_string_opt write with
                  | Some w -> w
                  | None -> bad ()
              in
              (read, write))
        rf_overrides
    in
    let observed = Candidate.infer_rf x in
    List.iter
      (fun (r, _) ->
        if
          not
            (List.exists
               (fun (e : Candidate.rf_edge) -> e.Candidate.read = r)
               observed)
        then
          die_error ~json
            "--rf: event %d is not a shared-variable read of the trace" r)
      overrides;
    let rf =
      List.map
        (fun (e : Candidate.rf_edge) ->
          match List.assoc_opt e.Candidate.read overrides with
          | Some w -> { e with Candidate.write = w }
          | None -> e)
        observed
    in
    let candidate =
      try Candidate.make ~rf x
      with Candidate.Ill_formed msg ->
        die_error ~json "ill-formed reads-from assignment: %s" msg
    in
    let verdict = Candidate.check ~stats:c ~model candidate in
    let label e = x.Execution.events.(e).Event.label in
    (match fmt with
    | `Json ->
        let rf_json =
          Jsonout.List
            (List.map
               (fun (e : Candidate.rf_edge) ->
                 Jsonout.Obj
                   [
                     ("read", Jsonout.Int e.Candidate.read);
                     ( "write",
                       if e.Candidate.write < 0 then Jsonout.Str "init"
                       else Jsonout.Int e.Candidate.write );
                     ("variable", Jsonout.Int e.Candidate.var);
                   ])
               candidate.Candidate.rf)
        in
        print_json
          (Jsonout.Obj
             ([
                ("schema", Jsonout.Str "eventorder.consistent/1");
                ("events", Jsonout.Int (Execution.n_events x));
                ("model", Jsonout.Str (Memmodel.to_string model));
                ("rf", rf_json);
                ( "verdict",
                  Jsonout.Str
                    (match verdict with
                    | Candidate.Consistent _ -> "consistent"
                    | Candidate.Inconsistent _ -> "inconsistent") );
              ]
             @ (match verdict with
               | Candidate.Consistent w ->
                   [
                     ( "witness",
                       Jsonout.Obj
                         [
                           ( "order",
                             Jsonout.List
                               (List.map
                                  (fun e -> Jsonout.Int e)
                                  (Array.to_list w.Candidate.order)) );
                           ( "co",
                             Jsonout.Obj
                               (List.map
                                  (fun (v, ws) ->
                                    ( Printf.sprintf "v%d" v,
                                      Jsonout.List
                                        (List.map
                                           (fun w -> Jsonout.Int w)
                                           ws) ))
                                  w.Candidate.co) );
                         ] );
                   ]
               | Candidate.Inconsistent reason ->
                   [ ("reason", Jsonout.Str reason) ])
             @ stats_field stats))
    | `Text ->
        Format.printf "model: %s@." (Memmodel.to_string model);
        Format.printf "events: %d@." (Execution.n_events x);
        List.iter
          (fun (e : Candidate.rf_edge) ->
            Format.printf "rf: '%s' (event %d) reads %s on v%d@."
              (label e.Candidate.read) e.Candidate.read
              (if e.Candidate.write < 0 then "the initial value"
               else
                 Printf.sprintf "'%s' (event %d)" (label e.Candidate.write)
                   e.Candidate.write)
              e.Candidate.var)
          candidate.Candidate.rf;
        (match verdict with
        | Candidate.Consistent w ->
            Format.printf "verdict: consistent under %s@."
              (Memmodel.to_string model);
            Format.printf "witness order: %s@."
              (String.concat "; "
                 (List.map label (Array.to_list w.Candidate.order)));
            List.iter
              (fun (v, ws) ->
                Format.printf "coherence v%d: %s@." v
                  (String.concat " -> " (List.map label ws)))
              w.Candidate.co
        | Candidate.Inconsistent reason ->
            Format.printf "verdict: inconsistent under %s@."
              (Memmodel.to_string model);
            Format.printf "reason: %s@." reason);
        print_stats_text stats);
    match verdict with
    | Candidate.Consistent _ -> ()
    | Candidate.Inconsistent _ -> exit 1
  in
  let doc =
    "decide whether a reads-from assignment over the observed events is \
     consistent under a memory model (--model sc|tso|pso), with a \
     replayable total-order and coherence witness"
  in
  Cmd.v
    (Cmd.info "consistent" ~doc)
    Term.(
      const run $ program_file $ policy_arg $ max_events_arg $ model_arg
      $ rf_arg $ stats_arg $ format_arg)

(* ------------------------------------------------------------------ *)
(* explore                                                             *)
(* ------------------------------------------------------------------ *)

let explore_cmd =
  let source_file =
    let doc =
      "Program source file (loop-free; saved traces are not accepted — \
       this analysis quantifies over the program, not a trace)."
    in
    Arg.(required & pos 0 (some non_dir_file) None & info [] ~docv:"FILE" ~doc)
  in
  let run file =
    let program = parse_program_file file in
    match Explore.explore program with
    | exception Explore.Unsupported msg -> die_error ~json:false "%s" msg
    | stats ->
        let show_count c =
          if c >= Explore.count_saturation then ">= 10^18" else string_of_int c
        in
        Format.printf "completed executions:  %s@."
          (show_count stats.Explore.completed_paths);
        Format.printf "deadlocked executions: %s@."
          (show_count stats.Explore.deadlocked_paths);
        Format.printf "machine states:        %d@." stats.Explore.states;
        Format.printf "assertion violation reachable: %b@."
          (Explore.assert_can_fail program);
        let finals = Explore.final_stores program in
        Format.printf "reachable final stores (%d):@." (List.length finals);
        List.iter
          (fun bindings ->
            Format.printf "  %s@."
              (if bindings = [] then "(empty)"
               else
                 String.concat ", "
                   (List.map (fun (x, v) -> Printf.sprintf "%s=%d" x v) bindings)))
          finals
  in
  let doc =
    "explore ALL executions of a loop-free program (not just reorderings \
     of one trace): counts, deadlocks, reachable final stores"
  in
  Cmd.v (Cmd.info "explore" ~doc) Term.(const run $ source_file)

(* ------------------------------------------------------------------ *)
(* record                                                              *)
(* ------------------------------------------------------------------ *)

let record_cmd =
  let output_arg =
    let doc = "Output path for the recorded trace." in
    Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"OUT" ~doc)
  in
  let run file policy output =
    let trace = load_trace file policy in
    Trace_io.save output trace;
    Format.printf "recorded %d events to %s@." (Trace.n_events trace) output
  in
  let doc = "run a program and save the observed execution as a trace file" in
  Cmd.v
    (Cmd.info "record" ~doc)
    Term.(const run $ program_file $ policy_arg $ output_arg)

(* ------------------------------------------------------------------ *)
(* dot                                                                 *)
(* ------------------------------------------------------------------ *)

let dot_cmd =
  let kind_arg =
    let doc =
      "What to render: 'execution' (program order + dependences), 'pinned' \
       (the observed schedule's pinned partial order), 'taskgraph' \
       (Emrath-Ghosh-Padua), or a relation name ('mhb', 'chb', 'mcw', \
       'ccw', 'mow', 'cow')."
    in
    Arg.(value & opt string "execution" & info [ "kind" ] ~docv:"KIND" ~doc)
  in
  let run file policy kind max_events =
    let trace = load_trace file policy in
    let x = Trace.to_execution trace in
    let ppf = Format.std_formatter in
    match String.lowercase_ascii kind with
    | "execution" -> Dot.execution ppf x
    | "pinned" ->
        Dot.pinned ppf (Skeleton.of_execution x) (Trace.schedule trace)
    | "taskgraph" -> Dot.task_graph ppf x (Egp.build x)
    | ("mhb" | "chb" | "mcw" | "ccw" | "mow" | "cow") as name ->
        guard_size trace max_events;
        let relation =
          match name with
          | "mhb" -> Relations.MHB
          | "chb" -> Relations.CHB
          | "mcw" -> Relations.MCW
          | "ccw" -> Relations.CCW
          | "mow" -> Relations.MOW
          | _ -> Relations.COW
        in
        let s = Relations.compute (Skeleton.of_execution x) in
        Dot.relation ppf (x, Relations.to_rel s relation, name)
    | other -> die_error ~json:false "unknown --kind %s" other
  in
  let doc = "render executions, pinned orders, task graphs or relations as DOT" in
  Cmd.v
    (Cmd.info "dot" ~doc)
    Term.(const run $ program_file $ policy_arg $ kind_arg $ max_events_arg)

(* ------------------------------------------------------------------ *)
(* fuzz                                                                *)
(* ------------------------------------------------------------------ *)

let fuzz_cmd =
  let count_arg =
    let doc = "Number of random programs to check." in
    Arg.(value & opt int 100 & info [ "count" ] ~docv:"N" ~doc)
  in
  let seed_arg =
    let doc = "Base random seed." in
    Arg.(value & opt int 0 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let binary_arg =
    let doc = "Generate binary semaphores instead of counting ones." in
    Arg.(value & flag & info [ "binary" ] ~doc)
  in
  let run count seed binary =
    let cfg = { Progen.default_config with Progen.binary_semaphores = binary } in
    let failures = ref 0 in
    let checked = ref 0 in
    for i = 0 to count - 1 do
      let trace = Progen.generate_completing cfg ~seed:(seed + (i * 7919)) in
      let x = Trace.to_execution trace in
      let fail fmt =
        Format.kasprintf
          (fun msg ->
            incr failures;
            Format.printf "FAILURE (seed %d): %s@.%a@." (seed + (i * 7919)) msg
              Trace.pp trace)
          fmt
      in
      (* 1. The observed execution satisfies the model axioms. *)
      (match Execution.axiom_violations x with
      | [] -> ()
      | errs -> fail "axioms: %s" (String.concat "; " errs));
      (* 2. The trace serialization round-trips. *)
      if Trace_io.of_string (Trace_io.to_string trace) <> trace then
        fail "trace serialization does not round-trip";
      if Trace.n_events trace <= 8 then begin
        incr checked;
        let sk = Skeleton.of_execution x in
        let r = Reach.create sk in
        (* 3. Enumeration and the state engine agree on |F(P)|. *)
        let by_enum = Enumerate.count sk in
        let by_dp = Reach.schedule_count r in
        if by_enum <> by_dp then
          fail "schedule counts disagree: enumerate %d, reach %d" by_enum by_dp;
        (* 4. Every enumerated schedule passes the independent oracle. *)
        if not (List.for_all (Replay.is_feasible sk) (Enumerate.all sk)) then
          fail "an enumerated schedule fails the replay oracle";
        (* 5. Pairwise engine agreement and the MHB/CHB duality. *)
        let n = sk.Skeleton.n in
        for a = 0 to n - 1 do
          for b = 0 to n - 1 do
            if Reach.exists_before r a b <> Enumerate.exists_order sk ~before:a ~after:b
            then fail "exists_before disagrees on (%d, %d)" a b;
            if a <> b && Reach.must_before r a b <> not (Reach.exists_before r b a)
            then fail "MHB/CHB duality violated on (%d, %d)" a b
          done
        done
      end
    done;
    Format.printf "fuzz: %d programs, %d exhaustively cross-checked, %d failures@."
      count !checked !failures;
    if !failures > 0 then exit 1
  in
  let doc =
    "differential testing: generate random programs and cross-check the \
     enumeration engine, the state engine and the replay oracle"
  in
  Cmd.v (Cmd.info "fuzz" ~doc) Term.(const run $ count_arg $ seed_arg $ binary_arg)

(* ------------------------------------------------------------------ *)
(* figure1                                                             *)
(* ------------------------------------------------------------------ *)

let figure1_cmd =
  let run () =
    Format.printf "%s@.@." Figure1.source;
    let tr = Figure1.trace () in
    Format.printf "%a@." Trace.pp tr;
    let x = Trace.to_execution tr in
    let ev = Figure1.events tr in
    let egp = Egp.build x in
    let d = Decide.create x in
    let show name a b =
      Format.printf "%-20s exact MHB: %-5b   task graph claims: %b@." name
        (Decide.mhb d a b)
        (Egp.guaranteed_before egp a b)
    in
    show "post1 -> post2" ev.Figure1.post1 ev.Figure1.post2;
    show "post1 -> wait3" ev.Figure1.post1 ev.Figure1.wait3;
    show "write_x -> post2" ev.Figure1.write_x ev.Figure1.post2
  in
  let doc = "reproduce the paper's Figure 1 task-graph discrepancy" in
  Cmd.v (Cmd.info "figure1" ~doc) Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* batch                                                               *)
(* ------------------------------------------------------------------ *)

(* Many queries, one session: a single enumeration pass, reachability
   memo and cache entry set answer every query on the command line, so
   asking six questions costs barely more than asking one. *)
let batch_cmd =
  let queries_arg =
    let doc =
      "Queries to answer, in order.  Whole-program: 'relations' (the six \
       matrices by full enumeration), 'reduced' (the same by the \
       class-level engine), 'races' (feasible races), 'first' (first \
       races), 'schedules' (the feasible-schedule count).  Per-pair: \
       REL:A:B with REL one of mhb, chb, mcw, ccw, mow, cow and A, B \
       event labels (e.g. mhb:w1:r2)."
    in
    Arg.(non_empty & pos_right 0 string [] & info [] ~docv:"QUERY" ~doc)
  in
  let run file policy limit timeout max_events jobs engine model collect fmt
      cache queries =
    let json = fmt = `Json in
    let jobs = resolve_jobs ~json jobs in
    resolve_engine ~json engine;
    resolve_model ~json model;
    let budget = resolve_budget ~json timeout in
    let trace = load_trace ~json file policy in
    guard_size ~json trace max_events;
    let x = Trace.to_execution trace in
    let stats = make_stats collect in
    let session =
      Session.of_execution ?limit ~jobs ?stats ~budget
        ~cache:(resolve_cache cache) x
    in
    (* Query parsing, answering and rendering are [Api]'s — the same
       code path the analysis server runs, so the two surfaces cannot
       disagree. *)
    let results = or_die_api ~json (fun () -> Api.answers session trace x queries) in
    (match fmt with
    | `Json ->
        print_json
          (Jsonout.Obj
             ([
                ("schema", Jsonout.Str "eventorder.batch/1");
              ]
             @ status_field budget
             @ [
                ("events", Jsonout.Int (Execution.n_events x));
                ( "program_key",
                  Jsonout.Str (Program_key.hash (Session.key session)) );
                ("engine", Jsonout.Str (Engine.to_string (Engine.current ())));
                ("jobs", Jsonout.Int jobs);
                ( "results",
                  Jsonout.List (List.map (Api.result_json x) results) );
              ]
             @ stats_field stats))
    | `Text ->
        List.iter
          (fun r -> Format.printf "%a" (Api.pp_result x) r)
          results;
        print_stats_text stats);
    finish_budget ~json budget
  in
  let doc =
    "answer many queries about one program from a single shared analysis \
     session"
  in
  Cmd.v
    (Cmd.info "batch" ~doc)
    Term.(
      const run $ program_file $ policy_arg $ limit_arg $ timeout_arg
      $ max_events_arg $ jobs_arg $ engine_arg $ model_arg $ stats_arg
      $ format_arg $ cache_arg $ queries_arg)

(* ------------------------------------------------------------------ *)
(* serve                                                               *)
(* ------------------------------------------------------------------ *)

let socket_arg =
  let doc = "Listen on (serve) / connect to (client) this Unix-domain socket." in
  Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let host_arg =
  let doc = "TCP host to bind (serve) or connect to (client); used with --port." in
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST" ~doc)

let port_arg =
  let doc = "TCP port; mutually exclusive with --socket." in
  Arg.(value & opt (some int) None & info [ "port" ] ~docv:"PORT" ~doc)

let endpoint_of ?(json = false) socket port host =
  match (socket, port) with
  | Some path, None -> `Unix path
  | None, Some p -> `Tcp (host, p)
  | Some _, Some _ -> die_error ~json "--socket and --port are mutually exclusive"
  | None, None -> die_error ~json "an endpoint is required: --socket PATH or --port N"

let serve_cmd =
  let workers_arg =
    let doc =
      "Worker domains answering analysis requests concurrently.  Control \
       requests (stats, ping, shutdown) bypass the workers and stay \
       responsive under load."
    in
    Arg.(value & opt int 4 & info [ "workers" ] ~docv:"N" ~doc)
  in
  let max_queue_arg =
    let doc =
      "Analysis requests allowed to wait for a worker; beyond this the \
       server answers eventorder.error/1 with code 'overload' instead of \
       hanging the client.  0 rejects every analysis request."
    in
    Arg.(value & opt int 64 & info [ "max-queue" ] ~docv:"N" ~doc)
  in
  let max_memory_arg =
    let doc =
      "Refuse new analysis requests while the live heap exceeds this many \
       MiB (admission control; running requests are never killed)."
    in
    Arg.(value & opt (some int) None & info [ "max-memory" ] ~docv:"MIB" ~doc)
  in
  let run socket host port workers max_queue max_memory limit timeout
      max_events jobs engine model cache =
    let jobs = resolve_jobs jobs in
    if workers < 1 then die_error ~json:false "--workers must be at least 1";
    if max_queue < 0 then die_error ~json:false "--max-queue must be >= 0";
    let model =
      match model with
      | None -> None
      | Some s -> (
          match Memmodel.of_string s with
          | Some _ as m -> m
          | None ->
              die_error ~json:false "unknown --model %S (valid models: %s)" s
                (String.concat ", " Config.model_names))
    in
    let timeout_ms =
      match timeout with
      | Some ms when ms >= 1 -> Some ms
      | Some ms ->
          die_error ~json:false
            "--timeout must be at least 1 millisecond (got %d)" ms
      | None -> Config.timeout_ms ()
    in
    let api =
      {
        (* The flag is a per-request default, not a process-global set:
           each request resolves request > flag > environment. *)
        Api.engine;
        model;
        limit;
        jobs;
        max_events;
        timeout_ms;
        cache = resolve_cache cache;
      }
    in
    let endpoint =
      match endpoint_of socket port host with
      | `Unix path -> Server.Unix_socket path
      | `Tcp (host, p) -> Server.Tcp (host, p)
    in
    Server.run
      {
        Server.endpoint;
        workers;
        max_queue;
        max_memory_mb = max_memory;
        api;
        log = true;
      }
  in
  let doc =
    "serve analysis requests to many clients over a socket (NDJSON; see \
     docs/PROTOCOL.md)"
  in
  Cmd.v
    (Cmd.info "serve" ~doc)
    Term.(
      const run $ socket_arg $ host_arg $ port_arg $ workers_arg
      $ max_queue_arg $ max_memory_arg $ limit_arg $ timeout_arg
      $ max_events_arg $ jobs_arg $ engine_arg $ model_arg $ cache_arg)

(* ------------------------------------------------------------------ *)
(* client                                                              *)
(* ------------------------------------------------------------------ *)

let client_cmd =
  let op_arg =
    let doc = "Request op: 'batch' (run queries), 'stats', 'ping', or 'shutdown'." in
    Arg.(
      value
      & opt (enum [ ("batch", `Batch); ("stats", `Stats); ("ping", `Ping);
                    ("shutdown", `Shutdown) ]) `Batch
      & info [ "op" ] ~docv:"OP" ~doc)
  in
  let file_arg =
    let doc =
      "Program source file or saved *.eotrace to analyse (batch op only); \
       its text is shipped in the request."
    in
    Arg.(value & pos 0 (some non_dir_file) None & info [] ~docv:"FILE" ~doc)
  in
  let queries_arg =
    let doc = "Queries, as in the batch subcommand." in
    Arg.(value & pos_right 0 string [] & info [] ~docv:"QUERY" ~doc)
  in
  let retries_arg =
    let doc =
      "Connection attempts before giving up (50 ms apart) — lets a client \
       start concurrently with the server."
    in
    Arg.(value & opt int 40 & info [ "connect-retries" ] ~docv:"N" ~doc)
  in
  let policy_string = function
    | Sched.Round_robin -> "rr"
    | Sched.Priority -> "priority"
    | Sched.Random seed -> Printf.sprintf "random:%d" seed
    | Sched.Replay _ -> "rr"
  in
  let run socket host port op file engine model limit timeout jobs collect
      policy retries queries =
    let json = true in
    let request =
      match op with
      | `Stats -> [ ("op", Jsonout.Str "stats") ]
      | `Ping -> [ ("op", Jsonout.Str "ping") ]
      | `Shutdown -> [ ("op", Jsonout.Str "shutdown") ]
      | `Batch ->
          let file =
            match file with
            | Some f -> f
            | None -> die_error ~json "the batch op needs a FILE to analyse"
          in
          if queries = [] then
            die_error ~json "the batch op needs at least one QUERY";
          let text =
            In_channel.with_open_bin file In_channel.input_all
          in
          [ ("op", Jsonout.Str "batch") ]
          @ (if Filename.check_suffix file ".eotrace" then
               [ ("trace", Jsonout.Str text) ]
             else [ ("program", Jsonout.Str text) ])
          @ [
              ( "queries",
                Jsonout.List (List.map (fun q -> Jsonout.Str q) queries) );
            ]
          @ (match policy with
            | Sched.Round_robin -> []
            | p -> [ ("policy", Jsonout.Str (policy_string p)) ])
          @ (match engine with
            | Some e -> [ ("engine", Jsonout.Str (Engine.to_string e)) ]
            | None -> [])
          (* Shipped raw: the server validates the model vocabulary and
             answers eventorder.error/1 on drift, same as engine. *)
          @ (match model with
            | Some m -> [ ("model", Jsonout.Str m) ]
            | None -> [])
          @ (match limit with
            | Some l -> [ ("limit", Jsonout.Int l) ]
            | None -> [])
          @ (match timeout with
            | Some ms -> [ ("timeout_ms", Jsonout.Int ms) ]
            | None -> [])
          @ (match jobs with
            | Some j -> [ ("jobs", Jsonout.Int j) ]
            | None -> [])
          @ if collect then [ ("stats", Jsonout.Bool true) ] else []
    in
    let request =
      Jsonout.Obj
        (("schema", Jsonout.Str "eventorder.request/1") :: request)
    in
    let domain, addr =
      match endpoint_of ~json socket port host with
      | `Unix path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
      | `Tcp (host, p) ->
          let ip =
            try (Unix.gethostbyname host).Unix.h_addr_list.(0)
            with Not_found -> (
              try Unix.inet_addr_of_string host
              with Failure _ -> die_error ~json "cannot resolve host %S" host)
          in
          (Unix.PF_INET, Unix.ADDR_INET (ip, p))
    in
    (* Retry the connect so a client racing the server's startup (as the
       tests do) settles instead of flaking. *)
    let rec connect tries =
      let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
      match Unix.connect fd addr with
      | () -> fd
      | exception
          Unix.Unix_error ((ECONNREFUSED | ENOENT | ECONNRESET), _, _)
        when tries > 0 ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Unix.sleepf 0.05;
          connect (tries - 1)
      | exception Unix.Unix_error (e, _, _) ->
          die_error ~json "cannot connect: %s" (Unix.error_message e)
    in
    let fd = connect retries in
    let line = Jsonout.to_string request ^ "\n" in
    let off = ref 0 in
    while !off < String.length line do
      off := !off + Unix.write_substring fd line !off (String.length line - !off)
    done;
    let buf = Buffer.create 4096 in
    let chunk = Bytes.create 4096 in
    let response =
      let rec read_line () =
        match String.index_opt (Buffer.contents buf) '\n' with
        | Some i -> String.sub (Buffer.contents buf) 0 i
        | None -> (
            match Unix.read fd chunk 0 (Bytes.length chunk) with
            | 0 ->
                die_error ~json
                  "the server closed the connection without a response"
            | n ->
                Buffer.add_subbytes buf chunk 0 n;
                read_line ()
            | exception Unix.Unix_error (EINTR, _, _) -> read_line ())
      in
      read_line ()
    in
    (try Unix.close fd with Unix.Unix_error _ -> ());
    match Jsonin.parse response with
    | Error msg ->
        die_error ~json:false "malformed response from the server: %s" msg
    | Ok doc ->
        print_json doc;
        (* Exit contract mirrors the CLI: 2 for error/1 responses (3
           when the error itself is the deadline), 3 for a partial
           (status "timeout") analysis, 0 otherwise. *)
        let field k =
          match doc with
          | Jsonout.Obj fields -> List.assoc_opt k fields
          | _ -> None
        in
        let code =
          match field "schema" with
          | Some (Jsonout.Str "eventorder.error/1") -> (
              match field "code" with
              | Some (Jsonout.Str "timeout") -> 3
              | _ -> 2)
          | _ -> (
              match field "status" with
              | Some (Jsonout.Str "timeout") -> 3
              | _ -> 0)
        in
        exit code
  in
  let doc =
    "send one request to a running 'eventorder serve' daemon and print \
     the response"
  in
  Cmd.v
    (Cmd.info "client" ~doc)
    Term.(
      const run $ socket_arg $ host_arg $ port_arg $ op_arg $ file_arg
      $ engine_arg $ model_arg $ limit_arg $ timeout_arg $ jobs_arg
      $ stats_arg $ policy_arg $ retries_arg $ queries_arg)

let () =
  let doc =
    "event orderings of shared-memory parallel program executions \
     (Netzer-Miller, 1990)"
  in
  let info = Cmd.info "eventorder" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            analyze_cmd; batch_cmd; schedules_cmd; races_cmd; gen_cmd;
            encode_cmd; consistent_cmd;
            taskgraph_cmd; reduce_cmd; theorems_cmd; figure1_cmd; record_cmd;
            dot_cmd; fuzz_cmd; order_cmd; report_cmd; explore_cmd; serve_cmd;
            client_cmd;
          ]))
