test/test_relations.ml: Alcotest Array Event Fun Gen_progs List Parse Pinned QCheck QCheck_alcotest Reach Rel Relations Skeleton Trace
