test/test_vclock.ml: Alcotest Array Decide Event Execution Gen_progs Lamport List Parse Pinned QCheck QCheck_alcotest Rel Skeleton Trace Vclock
