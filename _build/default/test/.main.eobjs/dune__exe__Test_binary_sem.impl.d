test/test_binary_sem.ml: Alcotest Array Ast Cnf Enumerate Execution Format Gen_progs Interp List Parse Reach Reduction_sem Replay Sat_gen Sched Skeleton Theorems Trace
