test/test_reductions.ml: Alcotest Ast Cnf Event Execution List Reduction_evt Reduction_sem Rel Sat_gen Trace
