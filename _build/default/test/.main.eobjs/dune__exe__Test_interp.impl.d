test/test_interp.ml: Alcotest Array Event Execution Interp List Parse Rel Sched Trace
