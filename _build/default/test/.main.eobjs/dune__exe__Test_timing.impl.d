test/test_timing.ml: Alcotest Array Ast Enumerate Event Execution Gen_progs List Parse Pinned QCheck QCheck_alcotest Reach Rel Skeleton Timing Trace
