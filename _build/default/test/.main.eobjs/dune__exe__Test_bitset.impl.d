test/test_bitset.ml: Alcotest Bitset List Printf QCheck QCheck_alcotest String
