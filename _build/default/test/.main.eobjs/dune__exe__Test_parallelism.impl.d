test/test_parallelism.ml: Alcotest Gen_progs Interp Parallelism Parse Pinned QCheck QCheck_alcotest Rel Skeleton Trace
