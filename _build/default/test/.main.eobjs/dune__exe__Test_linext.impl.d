test/test_linext.ml: Alcotest Array Digraph Fun Linext List Printf QCheck QCheck_alcotest String
