test/test_static_order.ml: Alcotest Ast Decide Expr Format Gen_progs List Parse Printf QCheck QCheck_alcotest Rel Static_order String Trace
