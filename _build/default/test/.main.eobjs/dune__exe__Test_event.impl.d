test/test_event.ml: Alcotest Event
