test/test_cnf.ml: Alcotest Cnf Format List
