test/test_feasible.ml: Alcotest Array Digraph Enumerate Event Gen_progs List Parse Pinned QCheck QCheck_alcotest Rel Replay Skeleton Trace
