test/test_single_sem.ml: Alcotest Array Execution Format Fun List QCheck QCheck_alcotest Reduction_single_sem Sequencing Trace
