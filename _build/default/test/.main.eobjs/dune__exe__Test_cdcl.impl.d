test/test_cdcl.ml: Alcotest Cdcl Cnf Dpll Format Printf QCheck QCheck_alcotest Sat_gen
