test/test_egp.ml: Alcotest Array Ast Decide Digraph Egp Event Execution Expr Figure1 Format Gen_progs Interp List Parse Printf QCheck QCheck_alcotest Rel Trace
