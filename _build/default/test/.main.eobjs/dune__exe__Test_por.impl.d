test/test_por.ml: Alcotest Array Enumerate Event Execution Gen_progs Hashtbl List Parse Pinned Por QCheck QCheck_alcotest Rel Replay Skeleton Trace
