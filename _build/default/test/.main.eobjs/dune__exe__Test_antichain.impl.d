test/test_antichain.ml: Alcotest Antichain Fun List Matching Printf QCheck QCheck_alcotest Rel String
