test/test_sat_via_ordering.ml: Alcotest Array Cnf Dpll Format QCheck QCheck_alcotest Sat_gen Sat_via_ordering
