test/test_dependence.ml: Alcotest Dependence Event Rel
