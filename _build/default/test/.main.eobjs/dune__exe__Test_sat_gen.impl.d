test/test_sat_gen.ml: Alcotest Cnf Dpll List Sat_gen
