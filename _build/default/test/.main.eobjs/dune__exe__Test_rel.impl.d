test/test_rel.ml: Alcotest List Printf QCheck QCheck_alcotest Rel String
