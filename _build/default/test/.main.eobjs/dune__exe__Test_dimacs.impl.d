test/test_dimacs.ml: Alcotest Cnf Dimacs List Sat_gen
