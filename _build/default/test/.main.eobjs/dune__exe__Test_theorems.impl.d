test/test_theorems.ml: Alcotest Cnf Decide Execution Format List QCheck QCheck_alcotest Reduction_sem Rel Sat_gen Theorems Trace
