test/main.mli:
