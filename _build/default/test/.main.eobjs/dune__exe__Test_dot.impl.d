test/test_dot.ml: Alcotest Array Dot Egp Figure1 Format Gen_progs Parse Relations Skeleton String Trace
