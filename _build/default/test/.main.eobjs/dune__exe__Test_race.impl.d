test/test_race.ml: Alcotest Array Ast Event Execution Format Gen_progs List Parse QCheck QCheck_alcotest Race Sched String Trace
