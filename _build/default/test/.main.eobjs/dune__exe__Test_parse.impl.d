test/test_parse.ml: Alcotest Ast Expr Format List Parse Printf QCheck QCheck_alcotest
