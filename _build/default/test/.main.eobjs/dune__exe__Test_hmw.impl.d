test/test_hmw.ml: Alcotest Array Ast Event Execution Format Gen_progs Hmw List Parse Printf QCheck QCheck_alcotest Reach Rel Skeleton Trace
