test/gen_progs.ml: Ast Expr Format Interp List Printf QCheck Sched Trace
