test/test_ast.ml: Alcotest Ast Expr
