test/test_expr.ml: Alcotest Expr Format
