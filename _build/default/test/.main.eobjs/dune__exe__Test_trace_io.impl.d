test/test_trace_io.ml: Alcotest Event Gen_progs Interp List Parse QCheck QCheck_alcotest Rel Relations Skeleton Trace Trace_io
