test/test_execution.ml: Alcotest Event Execution List Rel
