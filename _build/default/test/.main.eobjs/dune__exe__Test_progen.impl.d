test/test_progen.ml: Alcotest Ast Execution List Progen Trace
