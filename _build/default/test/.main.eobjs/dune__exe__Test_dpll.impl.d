test/test_dpll.ml: Alcotest Cnf Dpll Format Printf QCheck QCheck_alcotest Sat_gen
