test/test_reach.ml: Alcotest Array Enumerate Event Gen_progs List Parse QCheck QCheck_alcotest Reach Replay Skeleton Trace
