test/test_digraph.ml: Alcotest Array Bitset Digraph Linext List Printf QCheck QCheck_alcotest Rel String
