test/test_explore.ml: Alcotest Ast Explore Expr Format Gen_progs Interp List Parse Printf QCheck QCheck_alcotest Reach Sched Skeleton Trace
