let qcheck = QCheck_alcotest.to_alcotest

let random_rel =
  QCheck.make
    ~print:(fun (n, pairs) ->
      Printf.sprintf "n=%d %s" n
        (String.concat ";"
           (List.map (fun (a, b) -> Printf.sprintf "%d->%d" a b) pairs)))
    QCheck.Gen.(
      int_range 1 12 >>= fun n ->
      list_size (int_range 0 30)
        (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
      >>= fun pairs -> return (n, pairs))

let test_add_mem () =
  let r = Rel.create 4 in
  Rel.add r 0 1;
  Rel.add r 1 2;
  Alcotest.(check bool) "mem 0 1" true (Rel.mem r 0 1);
  Alcotest.(check bool) "mem 1 0" false (Rel.mem r 1 0);
  Alcotest.(check int) "pair_count" 2 (Rel.pair_count r);
  Rel.remove r 0 1;
  Alcotest.(check bool) "removed" false (Rel.mem r 0 1)

let test_closure_chain () =
  let r = Rel.of_pairs 4 [ (0, 1); (1, 2); (2, 3) ] in
  let c = Rel.transitive_closure r in
  Alcotest.(check bool) "0->3" true (Rel.mem c 0 3);
  Alcotest.(check bool) "0->2" true (Rel.mem c 0 2);
  Alcotest.(check bool) "3->0" false (Rel.mem c 3 0);
  Alcotest.(check int) "pairs" 6 (Rel.pair_count c)

let test_closure_cycle () =
  let r = Rel.of_pairs 3 [ (0, 1); (1, 2); (2, 0) ] in
  let c = Rel.transitive_closure r in
  Alcotest.(check bool) "cycle closes reflexively" true (Rel.mem c 0 0);
  Alcotest.(check bool) "acyclic detects cycle" false (Rel.is_acyclic r)

let test_order_predicates () =
  let chain = Rel.transitive_closure (Rel.of_pairs 4 [ (0, 1); (1, 2); (2, 3) ]) in
  Alcotest.(check bool) "chain is strict partial order" true
    (Rel.is_strict_partial_order chain);
  let sym = Rel.of_pairs 2 [ (0, 1); (1, 0) ] in
  Alcotest.(check bool) "sym not antisymmetric" false (Rel.is_antisymmetric sym);
  let refl = Rel.of_pairs 2 [ (0, 0) ] in
  Alcotest.(check bool) "refl not irreflexive" false (Rel.is_irreflexive refl)

let test_transitive_reduction () =
  let r = Rel.of_pairs 3 [ (0, 1); (1, 2); (0, 2) ] in
  let red = Rel.transitive_reduction r in
  Alcotest.(check bool) "redundant edge removed" false (Rel.mem red 0 2);
  Alcotest.(check bool) "chain kept 0->1" true (Rel.mem red 0 1);
  Alcotest.(check bool) "chain kept 1->2" true (Rel.mem red 1 2);
  Alcotest.(check bool) "same closure" true
    (Rel.equal (Rel.transitive_closure red) (Rel.transitive_closure r))

let test_transpose () =
  let r = Rel.of_pairs 3 [ (0, 1); (1, 2) ] in
  let t = Rel.transpose r in
  Alcotest.(check (list (pair int int))) "pairs" [ (1, 0); (2, 1) ]
    (Rel.to_pairs t)

let test_algebra () =
  let a = Rel.of_pairs 3 [ (0, 1); (1, 2) ] in
  let b = Rel.of_pairs 3 [ (1, 2); (2, 0) ] in
  Alcotest.(check int) "union" 3 (Rel.pair_count (Rel.union a b));
  Alcotest.(check (list (pair int int))) "inter" [ (1, 2) ]
    (Rel.to_pairs (Rel.inter a b));
  Alcotest.(check (list (pair int int))) "diff" [ (0, 1) ]
    (Rel.to_pairs (Rel.diff a b));
  Alcotest.(check bool) "subset" true (Rel.subset (Rel.inter a b) a)

let test_interval_order () =
  (* A chain is an interval order. *)
  let chain = Rel.transitive_closure (Rel.of_pairs 4 [ (0, 1); (1, 2); (2, 3) ]) in
  Alcotest.(check bool) "chain" true (Rel.is_interval_order chain);
  (* The canonical non-interval order: 2+2 (two disjoint 2-chains). *)
  let two_plus_two = Rel.of_pairs 4 [ (0, 1); (2, 3) ] in
  Alcotest.(check bool) "2+2 is not an interval order" false
    (Rel.is_interval_order two_plus_two);
  (* N-shaped order (2+2 with one cross edge) IS an interval order. *)
  let n_shape = Rel.of_pairs 4 [ (0, 1); (2, 3); (0, 3) ] in
  Alcotest.(check bool) "N-shape" true (Rel.is_interval_order n_shape);
  (* Empty order: trivially interval. *)
  Alcotest.(check bool) "antichain" true (Rel.is_interval_order (Rel.create 3));
  Alcotest.check_raises "requires an order"
    (Invalid_argument "Rel.is_interval_order: not a strict partial order")
    (fun () -> ignore (Rel.is_interval_order (Rel.of_pairs 3 [ (0, 1); (1, 2) ])))

(* Brute-force interval realizability for cross-checking: search for an
   assignment of interval endpoints consistent with the order. *)
let prop_interval_order_realizable =
  QCheck.Test.make ~name:"is_interval_order agrees with endpoint realizability"
    ~count:150 random_rel (fun (n, pairs) ->
      let r = Rel.transitive_closure (Rel.of_pairs n pairs) in
      QCheck.assume (Rel.is_strict_partial_order r);
      (* Canonical realization attempt: start(e) = 1 + max over preds of
         their "magnitude" rank... use the standard characterization:
         interval order iff the down-sets {preds(e)} are totally ordered by
         inclusion. *)
      let downsets_chain =
        let ok = ref true in
        let pred_set e =
          Rel.fold (fun a b acc -> if b = e then a :: acc else acc) r []
          |> List.sort compare
        in
        let subset xs ys = List.for_all (fun x -> List.mem x ys) xs in
        for a = 0 to n - 1 do
          for b = 0 to n - 1 do
            let pa = pred_set a and pb = pred_set b in
            if (not (subset pa pb)) && not (subset pb pa) then ok := false
          done
        done;
        !ok
      in
      Rel.is_interval_order r = downsets_chain)

let prop_closure_idempotent =
  QCheck.Test.make ~name:"closure is idempotent" ~count:200 random_rel
    (fun (n, pairs) ->
      let c = Rel.transitive_closure (Rel.of_pairs n pairs) in
      Rel.equal c (Rel.transitive_closure c))

let prop_closure_transitive =
  QCheck.Test.make ~name:"closure is transitive" ~count:200 random_rel
    (fun (n, pairs) ->
      Rel.is_transitive (Rel.transitive_closure (Rel.of_pairs n pairs)))

let prop_closure_contains =
  QCheck.Test.make ~name:"closure contains the relation" ~count:200 random_rel
    (fun (n, pairs) ->
      let r = Rel.of_pairs n pairs in
      Rel.subset r (Rel.transitive_closure r))

let prop_transpose_involution =
  QCheck.Test.make ~name:"transpose is an involution" ~count:200 random_rel
    (fun (n, pairs) ->
      let r = Rel.of_pairs n pairs in
      Rel.equal r (Rel.transpose (Rel.transpose r)))

let prop_reduction_minimal =
  QCheck.Test.make ~name:"reduction has same closure as input (DAGs)"
    ~count:200 random_rel (fun (n, pairs) ->
      let r = Rel.of_pairs n pairs in
      QCheck.assume (Rel.is_acyclic r);
      let red = Rel.transitive_reduction r in
      Rel.equal (Rel.transitive_closure red) (Rel.transitive_closure r)
      && Rel.subset red (Rel.transitive_closure r))

let suite =
  [
    Alcotest.test_case "add/mem/remove" `Quick test_add_mem;
    Alcotest.test_case "closure of a chain" `Quick test_closure_chain;
    Alcotest.test_case "closure of a cycle" `Quick test_closure_cycle;
    Alcotest.test_case "order predicates" `Quick test_order_predicates;
    Alcotest.test_case "transitive reduction" `Quick test_transitive_reduction;
    Alcotest.test_case "transpose" `Quick test_transpose;
    Alcotest.test_case "algebra" `Quick test_algebra;
    Alcotest.test_case "interval orders" `Quick test_interval_order;
    qcheck prop_interval_order_realizable;
    qcheck prop_closure_idempotent;
    qcheck prop_closure_transitive;
    qcheck prop_closure_contains;
    qcheck prop_transpose_involution;
    qcheck prop_reduction_minimal;
  ]
