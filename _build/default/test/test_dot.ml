let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let trace_of src =
  match Gen_progs.completed_trace (Parse.program src) with
  | Some t -> t
  | None -> Alcotest.fail "fixture program deadlocked"

let producer_consumer =
  "sem s = 0\nproc producer { x := 1; v(s) }\nproc consumer { p(s); y := x }"

let test_escape () =
  Alcotest.(check string) "quotes" "say \\\"hi\\\"" (Dot.escape "say \"hi\"");
  Alcotest.(check string) "backslash" "a\\\\b" (Dot.escape "a\\b");
  Alcotest.(check string) "newline" "a\\nb" (Dot.escape "a\nb")

let test_execution_dot () =
  let x = Trace.to_execution (trace_of producer_consumer) in
  let out = Format.asprintf "%a" Dot.execution x in
  Alcotest.(check bool) "digraph wrapper" true
    (contains ~needle:"digraph execution {" out && contains ~needle:"}" out);
  Alcotest.(check bool) "process clusters" true
    (contains ~needle:"subgraph cluster_p0" out
    && contains ~needle:"subgraph cluster_p1" out);
  Alcotest.(check bool) "event labels" true
    (contains ~needle:"x := 1" out && contains ~needle:"V(s)" out);
  (* The x:=1 -> y:=x dependence crosses processes: rendered dashed. *)
  Alcotest.(check bool) "dependence edge styled" true
    (contains ~needle:"style=dashed" out)

let test_pinned_dot () =
  let tr = trace_of producer_consumer in
  let sk = Skeleton.of_execution (Trace.to_execution tr) in
  let out = Format.asprintf "%a" (fun ppf () ->
      Dot.pinned ppf sk (Trace.schedule tr)) () in
  Alcotest.(check bool) "sync edge bold" true (contains ~needle:"style=bold" out)

let test_pinned_rejects_infeasible () =
  let tr = trace_of producer_consumer in
  let sk = Skeleton.of_execution (Trace.to_execution tr) in
  let n = Skeleton.(sk.n) in
  let reversed = Array.init n (fun i -> n - 1 - i) in
  match Format.asprintf "%a" (fun ppf () -> Dot.pinned ppf sk reversed) () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection of infeasible schedule"

let test_task_graph_dot () =
  let tr = Figure1.trace () in
  let x = Trace.to_execution tr in
  let out = Format.asprintf "%a" (fun ppf () -> Dot.task_graph ppf x (Egp.build x)) () in
  Alcotest.(check bool) "nodes are sync events" true
    (contains ~needle:"Post(E)" out && contains ~needle:"Wait(E)" out);
  Alcotest.(check bool) "no computation nodes" false (contains ~needle:"x := 1" out)

let test_relation_dot () =
  let x = Trace.to_execution (trace_of producer_consumer) in
  let s = Relations.compute (Skeleton.of_execution x) in
  let out =
    Format.asprintf "%a" Dot.relation (x, Relations.to_rel s Relations.MHB, "mhb")
  in
  Alcotest.(check bool) "digraph named" true (contains ~needle:"digraph mhb" out);
  (* Transitive reduction: x:=1 -> y:=x direct edge should be gone (the
     chain through V and P implies it). *)
  Alcotest.(check bool) "reduced" false (contains ~needle:"e0 -> e3;" out)

let suite =
  [
    Alcotest.test_case "escape" `Quick test_escape;
    Alcotest.test_case "execution dot" `Quick test_execution_dot;
    Alcotest.test_case "pinned dot" `Quick test_pinned_dot;
    Alcotest.test_case "pinned rejects infeasible" `Quick
      test_pinned_rejects_infeasible;
    Alcotest.test_case "task graph dot" `Quick test_task_graph_dot;
    Alcotest.test_case "relation dot" `Quick test_relation_dot;
  ]
