let qcheck = QCheck_alcotest.to_alcotest

let test_trivial () =
  Alcotest.(check bool) "x1 sat" true
    (Cdcl.is_satisfiable (Cnf.make ~num_vars:1 [ [ 1 ] ]));
  Alcotest.(check bool) "x1 & ~x1 unsat" false
    (Cdcl.is_satisfiable (Cnf.make ~num_vars:1 [ [ 1 ]; [ -1 ] ]));
  Alcotest.(check bool) "empty formula sat" true
    (Cdcl.is_satisfiable (Cnf.make ~num_vars:3 []));
  Alcotest.(check bool) "empty clause unsat" false
    (Cdcl.is_satisfiable (Cnf.make ~num_vars:3 [ [] ]))

let test_tautology_dropped () =
  Alcotest.(check bool) "p | ~p alone is sat" true
    (Cdcl.is_satisfiable (Cnf.make ~num_vars:1 [ [ 1; -1 ] ]));
  Alcotest.(check bool) "tautology plus unsat core" false
    (Cdcl.is_satisfiable (Cnf.make ~num_vars:2 [ [ 1; -1 ]; [ 2 ]; [ -2 ] ]))

let test_fixed_families () =
  Alcotest.(check bool) "all sign patterns unsat" false
    (Cdcl.is_satisfiable (Sat_gen.unsat_3cnf_small ()));
  Alcotest.(check bool) "small sat" true
    (Cdcl.is_satisfiable (Sat_gen.sat_3cnf_small ()));
  Alcotest.(check bool) "tiny structures" true
    (Cdcl.is_satisfiable (Sat_gen.tiny_sat_3cnf ())
    && not (Cdcl.is_satisfiable (Sat_gen.tiny_unsat_3cnf ())))

let test_pigeonhole () =
  for n = 1 to 5 do
    Alcotest.(check bool)
      (Printf.sprintf "pigeonhole %d unsat" n)
      false
      (Cdcl.is_satisfiable (Sat_gen.pigeonhole n))
  done

let test_stats_record_learning () =
  (* Pigeonhole 4 needs genuine conflict-driven work. *)
  let _, stats = Cdcl.solve_with_stats (Sat_gen.pigeonhole 4) in
  Alcotest.(check bool) "conflicts happened" true (stats.Cdcl.conflicts > 0);
  Alcotest.(check bool) "clauses learned" true (stats.Cdcl.learned > 0)

let test_larger_random () =
  (* Larger than DPLL-comfortable instances: 60 vars at the 4.26 ratio. *)
  for seed = 0 to 4 do
    let f = Sat_gen.random_3cnf ~seed ~num_vars:60 ~num_clauses:255 in
    (* Whatever the verdict, a SAT answer must carry a valid witness. *)
    match Cdcl.solve f with
    | Cdcl.Sat a -> Alcotest.(check bool) "witness valid" true (Cnf.eval a f)
    | Cdcl.Unsat -> ()
  done

let random_small_cnf =
  QCheck.make
    ~print:(fun (nv, clauses) ->
      Format.asprintf "%a" Cnf.pp (Cnf.make ~num_vars:nv clauses))
    QCheck.Gen.(
      int_range 1 7 >>= fun nv ->
      list_size (int_range 0 16)
        (list_size (int_range 0 4)
           (int_range 1 nv >>= fun v -> oneofl [ v; -v ]))
      >>= fun clauses -> return (nv, clauses))

let prop_agrees_with_dpll =
  QCheck.Test.make ~name:"CDCL agrees with DPLL" ~count:400 random_small_cnf
    (fun (nv, clauses) ->
      let f = Cnf.make ~num_vars:nv clauses in
      Cdcl.is_satisfiable f = Dpll.is_satisfiable f)

let prop_witness_valid =
  QCheck.Test.make ~name:"CDCL SAT witnesses satisfy the formula" ~count:400
    random_small_cnf (fun (nv, clauses) ->
      let f = Cnf.make ~num_vars:nv clauses in
      match Cdcl.solve f with
      | Cdcl.Sat a -> Cnf.eval a f
      | Cdcl.Unsat -> true)

let prop_medium_random_agrees =
  QCheck.Test.make ~name:"CDCL agrees with DPLL on 12-var random 3-CNF"
    ~count:60
    QCheck.(pair (int_range 0 10000) (int_range 20 60))
    (fun (seed, nc) ->
      let f = Sat_gen.random_3cnf ~seed ~num_vars:12 ~num_clauses:nc in
      Cdcl.is_satisfiable f = Dpll.is_satisfiable f)

let suite =
  [
    Alcotest.test_case "trivial" `Quick test_trivial;
    Alcotest.test_case "tautologies" `Quick test_tautology_dropped;
    Alcotest.test_case "fixed families" `Quick test_fixed_families;
    Alcotest.test_case "pigeonhole" `Quick test_pigeonhole;
    Alcotest.test_case "stats record learning" `Quick test_stats_record_learning;
    Alcotest.test_case "larger random instances" `Quick test_larger_random;
    qcheck prop_agrees_with_dpll;
    qcheck prop_witness_valid;
    qcheck prop_medium_random_agrees;
  ]
