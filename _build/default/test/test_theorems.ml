let qcheck = QCheck_alcotest.to_alcotest

let check_formula name formula =
  Alcotest.test_case name `Slow (fun () ->
      List.iter
        (fun check ->
          Alcotest.(check bool)
            (Format.asprintf "theorem %d on %a" check.Theorems.theorem Cnf.pp
               formula)
            true check.Theorems.agrees)
        (Theorems.check_all formula))

(* Small formulas exercising both truth values with 1-2 variables (larger
   instances explode — which is the theorem's own point). *)
let formulas =
  [
    ("tiny sat", Sat_gen.tiny_sat_3cnf ());
    ("tiny unsat", Sat_gen.tiny_unsat_3cnf ());
    ("n1 sat negated", Cnf.make ~num_vars:1 [ [ -1; -1; -1 ] ]);
    ("n2 sat", Cnf.make ~num_vars:2 [ [ 1; 1; 2 ]; [ -1; -1; 2 ] ]);
    ("n2 unsat", Cnf.make ~num_vars:2 [ [ 1; 1; 1 ]; [ -1; -1; 2 ]; [ -2; -2; -2 ] ]);
  ]

(* Section 5.3: the reduction programs have no shared-data dependences, so
   deciding with dependences ignored gives the same answers.  We check by
   erasing D from the execution and re-deciding. *)
let test_section_5_3 () =
  List.iter
    (fun formula ->
      let red = Reduction_sem.build formula in
      let tr = Reduction_sem.trace red in
      let a, b = Reduction_sem.events_ab red tr in
      let x = Trace.to_execution tr in
      let x_no_d =
        { x with Execution.dependences = Rel.create (Execution.n_events x) }
      in
      let d1 = Decide.create x and d2 = Decide.create x_no_d in
      Alcotest.(check bool) "MHB same without D" (Decide.mhb d1 a b)
        (Decide.mhb d2 a b);
      Alcotest.(check bool) "CHB same without D" (Decide.chb d1 b a)
        (Decide.chb d2 b a))
    [ Sat_gen.tiny_sat_3cnf (); Sat_gen.tiny_unsat_3cnf () ]

(* The MOW/CCW variants of the theorems (Theorem 1's "similar reductions"):
   on this construction, a MOW b iff unsatisfiable and a CCW b iff
   satisfiable. *)
let test_mow_ccw_variants () =
  List.iter
    (fun (formula, satisfiable) ->
      let red = Reduction_sem.build formula in
      let tr = Reduction_sem.trace red in
      let a, b = Reduction_sem.events_ab red tr in
      let d = Decide.create (Trace.to_execution tr) in
      Alcotest.(check bool) "a MOW b iff unsat" (not satisfiable)
        (Decide.mow d a b);
      Alcotest.(check bool) "a CCW b iff sat" satisfiable (Decide.ccw d a b))
    [ (Sat_gen.tiny_sat_3cnf (), true); (Sat_gen.tiny_unsat_3cnf (), false) ]

let random_tiny_3cnf =
  (* 1-2 variables, 1-2 clauses, literals drawn with repetition. *)
  QCheck.make
    ~print:(fun f -> Format.asprintf "%a" Cnf.pp f)
    QCheck.Gen.(
      int_range 1 2 >>= fun nv ->
      list_size (int_range 1 2)
        (list_repeat 3 (int_range 1 nv >>= fun v -> oneofl [ v; -v ]))
      >>= fun clauses -> return (Cnf.make ~num_vars:nv clauses))

let prop_theorem1_random =
  QCheck.Test.make ~name:"Theorem 1 on random tiny formulas" ~count:12
    random_tiny_3cnf (fun f -> (Theorems.check_theorem_1 f).Theorems.agrees)

let prop_theorem2_random =
  QCheck.Test.make ~name:"Theorem 2 on random tiny formulas" ~count:12
    random_tiny_3cnf (fun f -> (Theorems.check_theorem_2 f).Theorems.agrees)

let prop_theorem3_random =
  QCheck.Test.make ~name:"Theorem 3 on random tiny formulas" ~count:8
    random_tiny_3cnf (fun f -> (Theorems.check_theorem_3 f).Theorems.agrees)

let prop_theorem4_random =
  QCheck.Test.make ~name:"Theorem 4 on random tiny formulas" ~count:8
    random_tiny_3cnf (fun f -> (Theorems.check_theorem_4 f).Theorems.agrees)

let suite =
  List.map (fun (name, f) -> check_formula name f) formulas
  @ [
      Alcotest.test_case "section 5.3 (dependences ignored)" `Slow
        test_section_5_3;
      Alcotest.test_case "MOW/CCW variants" `Slow test_mow_ccw_variants;
      qcheck prop_theorem1_random;
      qcheck prop_theorem2_random;
      qcheck prop_theorem3_random;
      qcheck prop_theorem4_random;
    ]
