let qcheck = QCheck_alcotest.to_alcotest

let diamond () =
  (* 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3 *)
  let g = Digraph.create 4 in
  Digraph.add_edge g 0 1;
  Digraph.add_edge g 0 2;
  Digraph.add_edge g 1 3;
  Digraph.add_edge g 2 3;
  g

let test_edges () =
  let g = diamond () in
  Alcotest.(check int) "edge count" 4 (Digraph.edge_count g);
  Alcotest.(check (list int)) "succs 0" [ 1; 2 ] (Digraph.succs g 0);
  Alcotest.(check (list int)) "preds 3" [ 1; 2 ] (Digraph.preds g 3);
  Digraph.add_edge g 0 1;
  Alcotest.(check int) "duplicate ignored" 4 (Digraph.edge_count g)

let test_topo () =
  let g = diamond () in
  Alcotest.(check (option (list int))) "topo" (Some [ 0; 1; 2; 3 ])
    (Digraph.topological_sort g);
  Digraph.add_edge g 3 0;
  Alcotest.(check (option (list int))) "cyclic" None (Digraph.topological_sort g);
  Alcotest.(check bool) "is_dag false" false (Digraph.is_dag g)

let test_reachability () =
  let g = diamond () in
  Alcotest.(check bool) "0 reaches 3" true (Digraph.reaches g 0 3);
  Alcotest.(check bool) "1 reaches 2" false (Digraph.reaches g 1 2);
  Alcotest.(check bool) "self" true (Digraph.reaches g 1 1);
  Alcotest.(check (list int)) "reachable from 1" [ 1; 3 ]
    (Bitset.to_list (Digraph.reachable_from g 1));
  Alcotest.(check (list int)) "ancestors of 3" [ 0; 1; 2; 3 ]
    (Bitset.to_list (Digraph.ancestors g 3))

let test_scc () =
  let g = Digraph.create 5 in
  Digraph.add_edge g 0 1;
  Digraph.add_edge g 1 2;
  Digraph.add_edge g 2 0;
  Digraph.add_edge g 2 3;
  Digraph.add_edge g 3 4;
  let comp, count = Digraph.scc g in
  Alcotest.(check int) "three components" 3 count;
  Alcotest.(check bool) "0,1,2 together" true
    (comp.(0) = comp.(1) && comp.(1) = comp.(2));
  Alcotest.(check bool) "3 separate" true (comp.(3) <> comp.(0));
  Alcotest.(check bool) "4 separate" true (comp.(4) <> comp.(3))

let test_common_ancestors () =
  let g = diamond () in
  Alcotest.(check (list int)) "common of 1,2" [ 0 ]
    (Bitset.to_list (Digraph.common_ancestors g [ 1; 2 ]));
  Alcotest.(check (list int)) "closest of 1,2" [ 0 ]
    (Digraph.closest_common_ancestors g [ 1; 2 ]);
  (* Deeper: 0 -> 1 -> 2 and 1 -> 3; closest common ancestor of 2,3 is 1. *)
  let g2 = Digraph.create 4 in
  Digraph.add_edge g2 0 1;
  Digraph.add_edge g2 1 2;
  Digraph.add_edge g2 1 3;
  Alcotest.(check (list int)) "closest picks deepest" [ 1 ]
    (Digraph.closest_common_ancestors g2 [ 2; 3 ]);
  Alcotest.(check (list int)) "all common ancestors" [ 0; 1 ]
    (Bitset.to_list (Digraph.common_ancestors g2 [ 2; 3 ]))

let test_rel_roundtrip () =
  let g = diamond () in
  let g' = Digraph.of_rel (Digraph.to_rel g) in
  Alcotest.(check int) "edges preserved" (Digraph.edge_count g)
    (Digraph.edge_count g');
  Alcotest.(check (list int)) "succs preserved" (Digraph.succs g 0)
    (Digraph.succs g' 0)

let random_dag =
  (* Random DAG: edges only from lower to higher indices. *)
  QCheck.make
    ~print:(fun (n, edges) ->
      Printf.sprintf "n=%d %s" n
        (String.concat ";"
           (List.map (fun (a, b) -> Printf.sprintf "%d->%d" a b) edges)))
    QCheck.Gen.(
      int_range 2 10 >>= fun n ->
      list_size (int_range 0 20)
        (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
      >>= fun raw ->
      let edges =
        List.filter_map
          (fun (a, b) ->
            if a < b then Some (a, b) else if b < a then Some (b, a) else None)
          raw
      in
      return (n, edges))

let graph_of (n, edges) =
  let g = Digraph.create n in
  List.iter (fun (a, b) -> Digraph.add_edge g a b) edges;
  g

let prop_topo_is_linear_extension =
  QCheck.Test.make ~name:"topological sort respects all edges" ~count:200
    random_dag (fun spec ->
      let g = graph_of spec in
      match Digraph.topological_sort g with
      | None -> false
      | Some order -> Linext.is_linear_extension g (Array.of_list order))

let prop_reachability_is_closure =
  QCheck.Test.make ~name:"reachability = reflexive-transitive closure"
    ~count:200 random_dag (fun ((n, _) as spec) ->
      let g = graph_of spec in
      let via_graph = Digraph.reachability g in
      let via_rel =
        let r = Rel.transitive_closure (Digraph.to_rel g) in
        Rel.reflexive_closure_in_place r;
        r
      in
      ignore n;
      Rel.equal via_graph via_rel)

let suite =
  [
    Alcotest.test_case "edges" `Quick test_edges;
    Alcotest.test_case "topological sort" `Quick test_topo;
    Alcotest.test_case "reachability" `Quick test_reachability;
    Alcotest.test_case "strongly connected components" `Quick test_scc;
    Alcotest.test_case "common ancestors" `Quick test_common_ancestors;
    Alcotest.test_case "rel roundtrip" `Quick test_rel_roundtrip;
    qcheck prop_topo_is_linear_extension;
    qcheck prop_reachability_is_closure;
  ]
