let qcheck = QCheck_alcotest.to_alcotest

let prog src = Parse.program src

let test_counts_basic () =
  (* Two independent one-statement processes: 2 interleavings. *)
  let s = Explore.explore (prog "proc a { x := 1 }\nproc b { y := 1 }") in
  Alcotest.(check int) "completed" 2 s.Explore.completed_paths;
  Alcotest.(check int) "deadlocked" 0 s.Explore.deadlocked_paths;
  (* Unlike trace-level feasibility, conflicting writers still interleave
     both ways at the program level: no observed D pins them. *)
  let s = Explore.explore (prog "proc a { x := 1 }\nproc b { x := 2 }") in
  Alcotest.(check int) "both orders" 2 s.Explore.completed_paths

let test_branch_dependent_events () =
  (* The second process's behaviour depends on the race: three completed
     runs (x=1 first with then-branch; x:=2 first... enumerate manually). *)
  let s =
    Explore.explore
      (prog "proc a { x := 1 }\nproc b { if x = 1 { y := 10 } else { y := 20 } }")
  in
  Alcotest.(check int) "no deadlocks" 0 s.Explore.deadlocked_paths;
  let finals =
    Explore.final_stores
      (prog "proc a { x := 1 }\nproc b { if x = 1 { y := 10 } else { y := 20 } }")
  in
  Alcotest.(check bool) "y=10 reachable" true
    (List.exists (fun f -> List.assoc_opt "y" f = Some 10) finals);
  Alcotest.(check bool) "y=20 reachable" true
    (List.exists (fun f -> List.assoc_opt "y" f = Some 20) finals)

let test_deadlock_detection () =
  Alcotest.(check bool) "lock inversion can deadlock" true
    (Explore.can_deadlock
       (prog
          "binsem a = 1\nbinsem b = 1\n\
           proc one { p(a); p(b); v(b); v(a) }\n\
           proc two { p(b); p(a); v(a); v(b) }"));
  Alcotest.(check bool) "ordered locks cannot" false
    (Explore.can_deadlock
       (prog
          "binsem a = 1\nbinsem b = 1\n\
           proc one { p(a); p(b); v(b); v(a) }\n\
           proc two { p(a); p(b); v(b); v(a) }"))

let test_reachable_final () =
  let p = prog "proc a { x := 1 }\nproc b { x := 2 }" in
  Alcotest.(check bool) "x=1 reachable" true
    (Explore.reachable_final p (fun read -> read "x" = 1));
  Alcotest.(check bool) "x=2 reachable" true
    (Explore.reachable_final p (fun read -> read "x" = 2));
  Alcotest.(check bool) "x=3 not reachable" false
    (Explore.reachable_final p (fun read -> read "x" = 3))

let test_assert_can_fail () =
  (* The violating interleaving: reader between the two writes. *)
  Alcotest.(check bool) "racy assert can fail" true
    (Explore.assert_can_fail
       (prog "proc w { x := 1; x := 2 }\nproc r { assert x != 1 }"));
  (* Synchronized version cannot. *)
  Alcotest.(check bool) "ordered assert cannot fail" false
    (Explore.assert_can_fail
       (prog
          "sem s = 0\nproc w { x := 1; x := 2; v(s) }\nproc r { p(s); assert x = 2 }"));
  Alcotest.(check bool) "trivially false assert" true
    (Explore.assert_can_fail (prog "proc a { assert 1 = 2 }"))

let prop_assert_matches_interp =
  QCheck.Test.make
    ~name:"assert_can_fail = false implies no observed violations" ~count:80
    Gen_progs.arbitrary_program (fun p ->
      (* Loop-free generated programs only. *)
      match Explore.assert_can_fail p with
      | exception Explore.Unsupported _ -> true
      | false ->
          List.for_all
            (fun policy ->
              let t = Interp.run ~policy p in
              t.Trace.violations = [])
            [ Sched.Round_robin; Sched.Priority; Sched.Random 3 ]
      | true -> true)

let test_rejects_loops () =
  match Explore.explore (prog "proc a { while x < 1 { x := 1 } }") with
  | exception Explore.Unsupported _ -> ()
  | _ -> Alcotest.fail "expected Unsupported"

let test_fork_join () =
  let s =
    Explore.explore
      (prog "proc m { cobegin { x := 1 } { y := 2 } coend; z := x + y }")
  in
  Alcotest.(check int) "two orders of the children" 2 s.Explore.completed_paths;
  let finals =
    Explore.final_stores
      (prog "proc m { cobegin { x := 1 } { y := 2 } coend; z := x + y }")
  in
  Alcotest.(check bool) "z always 3" true
    (List.for_all (fun f -> List.assoc_opt "z" f = Some 3) finals)

(* ------------------------------------------------------------------ *)
(* Cross-validation against the trace-level feasibility engines         *)
(* ------------------------------------------------------------------ *)

(* Programs whose processes touch disjoint variables (and share only
   synchronization): the program-level and trace-level quantifiers
   coincide. *)
let disjoint_var_program_gen =
  QCheck.Gen.(
    int_range 2 3 >>= fun n_procs ->
    let proc_body i =
      list_size (int_range 1 3)
        (frequency
           [
             ( 2,
               oneofl
                 [ Ast.Assign (Printf.sprintf "x%d" i, Expr.Int 1);
                   Ast.Skip None ] );
             (2, oneofl [ Ast.Sem_p "s"; Ast.Sem_v "s" ]);
             (1, oneofl [ Ast.Post "e"; Ast.Wait "e"; Ast.Clear "e" ]);
           ])
    in
    let rec bodies i =
      if i = n_procs then return []
      else
        proc_body i >>= fun b ->
        bodies (i + 1) >>= fun rest -> return (b :: rest)
    in
    bodies 0 >>= fun bodies ->
    int_range 0 1 >>= fun s_init ->
    return
      (Ast.program
         ~sem_init:[ ("s", s_init) ]
         (List.mapi (fun i b -> Ast.proc (Printf.sprintf "p%d" i) b) bodies)))

let arbitrary_disjoint =
  QCheck.make
    ~print:(fun p -> Format.asprintf "%a" Ast.pp p)
    disjoint_var_program_gen

let prop_program_level_equals_trace_level =
  QCheck.Test.make
    ~name:
      "disjoint-variable programs: program executions = feasible schedules"
    ~count:100 arbitrary_disjoint (fun p ->
      match Gen_progs.completed_trace p with
      | None -> true (* no observed trace to compare against *)
      | Some tr ->
          if Trace.n_events tr > 9 then true
          else begin
            let r = Reach.create (Skeleton.of_execution (Trace.to_execution tr)) in
            Explore.completed_count p = Reach.schedule_count r
            && Explore.can_deadlock p = Reach.deadlock_reachable r
          end)

let prop_feasible_subset_of_program_level =
  QCheck.Test.make
    ~name:"feasible schedules never exceed program executions" ~count:100
    Gen_progs.arbitrary_program (fun p ->
      (* General programs (shared variables allowed): trace-level
         feasibility preserves the observed dependences, the program level
         does not, so feasible counts are a lower bound. *)
      match Gen_progs.completed_trace p with
      | None -> true
      | Some tr ->
          if Trace.n_events tr > 8 then true
          else begin
            let r = Reach.create (Skeleton.of_execution (Trace.to_execution tr)) in
            Reach.schedule_count r <= Explore.completed_count p
          end)

let prop_observed_final_store_reachable =
  QCheck.Test.make
    ~name:"the observed final store is among the program's reachable finals"
    ~count:100 Gen_progs.arbitrary_program (fun p ->
      match Gen_progs.completed_trace p with
      | None -> true
      | Some tr ->
          (* Both sides record exactly the assigned-or-declared variables,
             so the observed store must appear verbatim. *)
          List.mem
            (List.sort compare tr.Trace.final_store)
            (Explore.final_stores p))

let suite =
  [
    Alcotest.test_case "basic counts" `Quick test_counts_basic;
    Alcotest.test_case "branch-dependent events" `Quick
      test_branch_dependent_events;
    Alcotest.test_case "deadlock detection" `Quick test_deadlock_detection;
    Alcotest.test_case "reachable finals" `Quick test_reachable_final;
    Alcotest.test_case "rejects loops" `Quick test_rejects_loops;
    Alcotest.test_case "assert reachability" `Quick test_assert_can_fail;
    qcheck prop_assert_matches_interp;
    Alcotest.test_case "fork/join" `Quick test_fork_join;
    qcheck prop_program_level_equals_trace_level;
    qcheck prop_feasible_subset_of_program_level;
    qcheck prop_observed_final_store_reachable;
  ]
