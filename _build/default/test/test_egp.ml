(* The Emrath-Ghosh-Padua task graph, including the Figure 1 scenario. *)

(* The observed execution Figure 1 describes comes from the core library:
   the first created task runs completely before the other two. *)
let figure1_trace () = Figure1.trace ()

(* Sync events are found by kind (labels like "Post(E)" repeat). *)
let post_events x =
  Array.to_list x.Execution.events
  |> List.filter (fun e -> e.Event.kind = Event.Sync (Event.Post 0))
  |> List.map (fun e -> e.Event.id)

let wait_event x =
  (Array.to_list x.Execution.events
  |> List.find (fun e -> e.Event.kind = Event.Sync (Event.Wait 0)))
    .Event.id

let test_figure1_exact_orders_posts () =
  let tr = figure1_trace () in
  let x = Trace.to_execution tr in
  let post1, post2 =
    match post_events x with
    | [ p1; p2 ] -> if p1 < p2 then (p1, p2) else (p2, p1)
    | _ -> Alcotest.fail "expected two posts"
  in
  let d = Decide.create x in
  Alcotest.(check bool) "post1 MHB post2 (via the dependence)" true
    (Decide.mhb d post1 post2);
  Alcotest.(check bool) "post2 CHB post1 is false" false
    (Decide.chb d post2 post1)

let test_figure1_egp_misses_it () =
  let tr = figure1_trace () in
  let x = Trace.to_execution tr in
  let egp = Egp.build x in
  let post1, post2 =
    match post_events x with
    | [ p1; p2 ] -> if p1 < p2 then (p1, p2) else (p2, p1)
    | _ -> Alcotest.fail "expected two posts"
  in
  Alcotest.(check bool) "EGP shows no path between the posts" false
    (Egp.guaranteed_before egp post1 post2);
  (* And the wait is only anchored at the fork (common ancestor), so the
     Post1 -> Wait ordering the exact engine proves is missed too. *)
  let w = wait_event x in
  let d = Decide.create x in
  Alcotest.(check bool) "exact: post1 MHB wait" true (Decide.mhb d post1 w);
  Alcotest.(check bool) "EGP misses post1 -> wait" false
    (Egp.guaranteed_before egp post1 w)

let test_single_candidate_direct_edge () =
  (* One Post, one Wait: the closest common ancestor of the single
     candidate is the Post itself — EGP finds the ordering. *)
  let prog = Parse.program "proc main { cobegin { post(E) } { wait(E) } coend }" in
  let t = Interp.run prog in
  let x = Trace.to_execution t in
  let egp = Egp.build x in
  let p = List.hd (post_events x) in
  let w = wait_event x in
  Alcotest.(check bool) "post -> wait guaranteed" true
    (Egp.guaranteed_before egp p w);
  Alcotest.(check int) "one sync edge" 1 (Egp.sync_edge_count egp)

let test_clear_disqualifies_candidate () =
  (* A Post followed (on its own process) by a Clear cannot be the trigger
     if every path to the Wait passes the Clear. *)
  let prog =
    Parse.program
      "proc main { cobegin { post(E); clear(E); post(F) } { wait(F); wait(E) } coend }"
  in
  let t = Interp.run prog in
  match t.Trace.outcome with
  | Trace.Completed ->
      (* wait(E) deadlocks in fact?  If it completed, check the graph. *)
      let x = Trace.to_execution t in
      let egp = Egp.build x in
      ignore egp
  | _ ->
      (* The run deadlocks (E was cleared): nothing to build. *)
      ()

let test_machine_edges_contract_computation () =
  let prog =
    Parse.program "proc a { post(E); x := 1; post(F) }\nproc b { wait(F) }"
  in
  let t = Interp.run prog in
  let x = Trace.to_execution t in
  let egp = Egp.build x in
  let node_of e =
    match Egp.node_of_event egp e with
    | Some n -> n
    | None -> Alcotest.fail "expected a sync node"
  in
  let posts = post_events x in
  ignore posts;
  let post_e =
    (Array.to_list x.Execution.events
    |> List.find (fun e -> e.Event.kind = Event.Sync (Event.Post 0)))
      .Event.id
  in
  let post_f =
    (Array.to_list x.Execution.events
    |> List.find (fun e -> e.Event.kind = Event.Sync (Event.Post 1)))
      .Event.id
  in
  (* The computation event between them is contracted into a machine edge. *)
  Alcotest.(check bool) "machine edge across computation" true
    (Digraph.mem_edge (Egp.graph egp) (node_of post_e) (node_of post_f));
  let assign =
    (Array.to_list x.Execution.events
    |> List.find (fun e -> Event.is_computation e))
      .Event.id
  in
  Alcotest.(check (option int)) "computation has no node" None
    (Egp.node_of_event egp assign)

let test_guaranteed_rel_contains_po () =
  let tr = figure1_trace () in
  let x = Trace.to_execution tr in
  let egp = Egp.build x in
  Alcotest.(check bool) "claims contain program order" true
    (Rel.subset (Execution.po_closure x) (Egp.guaranteed_rel egp))

(* Soundness relative to events-only feasibility is exactly what Figure 1
   refutes for dependence-aware feasibility, so the reverse containment
   (EGP ⊆ exact MHB) must hold — the method only misses orderings, never
   invents them, when the program has no conditional-controlled sync.
   On Figure 1, the EGP claims must all be confirmed by the exact engine. *)
let test_egp_claims_sound_on_figure1 () =
  let tr = figure1_trace () in
  let x = Trace.to_execution tr in
  let egp = Egp.build x in
  let d = Decide.create x in
  Rel.iter
    (fun a b ->
      Alcotest.(check bool)
        (Printf.sprintf "claim %d->%d confirmed" a b)
        true (Decide.mhb d a b))
    (Egp.guaranteed_rel egp)

(* Soundness on random loop-free Post/Wait programs: everything the task
   graph claims must be in exact MHB (the method under-approximates; it
   must never invent an ordering). *)
let postwait_program_gen =
  QCheck.Gen.(
    int_range 2 3 >>= fun n_procs ->
    list_repeat n_procs
      (list_size (int_range 1 3)
         (frequency
            [
              (2, oneofl [ Ast.Post "e"; Ast.Wait "e"; Ast.Post "f"; Ast.Wait "f" ]);
              (1, oneofl [ Ast.Skip None; Ast.Assign ("x", Expr.Int 1) ]);
            ]))
    >>= fun bodies ->
    oneofl [ []; [ ("e", true) ] ] >>= fun ev_init ->
    return
      (Ast.program ~ev_init
         (List.mapi (fun i b -> Ast.proc (Printf.sprintf "p%d" i) b) bodies)))

let prop_egp_sound =
  QCheck.Test.make ~name:"EGP claims \xe2\x8a\x86 exact MHB (random Post/Wait programs)"
    ~count:120
    (QCheck.make ~print:(fun p -> Format.asprintf "%a" Ast.pp p)
       postwait_program_gen)
    (fun prog ->
      match Gen_progs.completed_trace prog with
      | None -> true
      | Some tr ->
          if Trace.n_events tr > 8 then true
          else begin
            let x = Trace.to_execution tr in
            let egp = Egp.build x in
            let d = Decide.create x in
            let ok = ref true in
            Rel.iter
              (fun a b -> if not (Decide.mhb d a b) then ok := false)
              (Egp.guaranteed_rel egp);
            !ok
          end)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_egp_sound;
    Alcotest.test_case "figure 1: exact engine orders the posts" `Quick
      test_figure1_exact_orders_posts;
    Alcotest.test_case "figure 1: EGP misses the ordering" `Quick
      test_figure1_egp_misses_it;
    Alcotest.test_case "single candidate gives a direct edge" `Quick
      test_single_candidate_direct_edge;
    Alcotest.test_case "clear disqualifies candidates" `Quick
      test_clear_disqualifies_candidate;
    Alcotest.test_case "machine edges contract computation events" `Quick
      test_machine_edges_contract_computation;
    Alcotest.test_case "claims contain program order" `Quick
      test_guaranteed_rel_contains_po;
    Alcotest.test_case "EGP claims sound on figure 1" `Quick
      test_egp_claims_sound_on_figure1;
  ]
