let test_make_validates () =
  Alcotest.check_raises "literal out of range"
    (Invalid_argument "Cnf.make: literal out of range") (fun () ->
      ignore (Cnf.make ~num_vars:2 [ [ 3 ] ]));
  Alcotest.check_raises "zero literal"
    (Invalid_argument "Cnf.make: literal out of range") (fun () ->
      ignore (Cnf.make ~num_vars:2 [ [ 0 ] ]))

let test_eval () =
  let f = Cnf.make ~num_vars:3 [ [ 1; -2 ]; [ 2; 3 ] ] in
  let a = [| false; true; false; false |] in
  Alcotest.(check bool) "x1, ~x2, ~x3 fails second clause" false (Cnf.eval a f);
  let a = [| false; true; false; true |] in
  Alcotest.(check bool) "x1, ~x2, x3 satisfies" true (Cnf.eval a f);
  let a = [| false; false; true; false |] in
  Alcotest.(check bool) "~x1, x2 fails first clause" false (Cnf.eval a f)

let test_empty_formula () =
  let f = Cnf.make ~num_vars:2 [] in
  Alcotest.(check bool) "empty formula is true" true (Cnf.eval [| false; false; false |] f)

let test_empty_clause () =
  let f = Cnf.make ~num_vars:1 [ [] ] in
  Alcotest.(check bool) "empty clause is false" false
    (Cnf.eval [| false; true |] f)

let test_simplify () =
  let f = Cnf.make ~num_vars:3 [ [ 1; 2 ]; [ -1; 3 ]; [ 2; 3 ] ] in
  let f' = Cnf.simplify f 1 in
  (* Clause [1;2] satisfied and removed; -1 removed from [-1;3]. *)
  Alcotest.(check int) "two clauses remain" 2 (Cnf.num_clauses f');
  Alcotest.(check bool) "result contains [3]" true
    (List.mem [ 3 ] f'.Cnf.clauses);
  Alcotest.(check bool) "result contains [2;3]" true
    (List.mem [ 2; 3 ] f'.Cnf.clauses)

let test_three_cnf () =
  Alcotest.(check bool) "3cnf yes" true
    (Cnf.is_three_cnf (Cnf.make ~num_vars:3 [ [ 1; 2; 3 ]; [ -1; -2; -3 ] ]));
  Alcotest.(check bool) "3cnf no" false
    (Cnf.is_three_cnf (Cnf.make ~num_vars:3 [ [ 1; 2 ] ]))

let test_literal_helpers () =
  Alcotest.(check int) "var of negative" 4 (Cnf.var (-4));
  Alcotest.(check int) "negate" 4 (Cnf.negate (-4))

let test_pp () =
  let f = Cnf.make ~num_vars:2 [ [ 1; -2 ] ] in
  Alcotest.(check string) "render" "(x1 | ~x2)" (Format.asprintf "%a" Cnf.pp f);
  let empty = Cnf.make ~num_vars:0 [] in
  Alcotest.(check string) "empty renders true" "true"
    (Format.asprintf "%a" Cnf.pp empty)

let suite =
  [
    Alcotest.test_case "make validates" `Quick test_make_validates;
    Alcotest.test_case "eval" `Quick test_eval;
    Alcotest.test_case "empty formula" `Quick test_empty_formula;
    Alcotest.test_case "empty clause" `Quick test_empty_clause;
    Alcotest.test_case "simplify" `Quick test_simplify;
    Alcotest.test_case "three cnf" `Quick test_three_cnf;
    Alcotest.test_case "literal helpers" `Quick test_literal_helpers;
    Alcotest.test_case "pretty printing" `Quick test_pp;
  ]
