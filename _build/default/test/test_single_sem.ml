let qcheck = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* The SS7 oracle itself                                               *)
(* ------------------------------------------------------------------ *)

let test_sequencing_basics () =
  (* Two positive unit tasks, budget 1: infeasible (second prefix is 2)?
     No — cost resets nothing; prefixes are 1 then 2 > 1. *)
  let inst = Sequencing.make ~costs:[| 1; 1 |] ~precedence:[] ~budget:1 in
  Alcotest.(check bool) "1+1 over budget 1" false (Sequencing.feasible inst);
  (* A negative task can pay for them. *)
  let inst = Sequencing.make ~costs:[| 1; 1; -1 |] ~precedence:[] ~budget:1 in
  Alcotest.(check bool) "with relief" true (Sequencing.feasible inst);
  (* Precedence can force the infeasible order. *)
  let inst =
    Sequencing.make ~costs:[| 1; 1; -1 |]
      ~precedence:[ (0, 2); (1, 2) ]
      ~budget:1
  in
  Alcotest.(check bool) "relief forced last" false (Sequencing.feasible inst)

let test_sequencing_witness () =
  let inst = Sequencing.make ~costs:[| 2; -2; 1 |] ~precedence:[ (0, 2) ] ~budget:2 in
  match Sequencing.witness inst with
  | None -> Alcotest.fail "expected a witness"
  | Some order ->
      Alcotest.(check int) "permutation" 3 (List.length order);
      (* Replay the order and check the budget. *)
      let cost = ref 0 in
      List.iter
        (fun t ->
          cost := !cost + inst.Sequencing.costs.(t);
          Alcotest.(check bool) "prefix within budget" true
            (!cost <= inst.Sequencing.budget))
        order

let test_sequencing_validation () =
  Alcotest.check_raises "cyclic precedence"
    (Invalid_argument "Sequencing.make: cyclic precedence") (fun () ->
      ignore
        (Sequencing.make ~costs:[| 1; 1 |] ~precedence:[ (0, 1); (1, 0) ]
           ~budget:1));
  Alcotest.check_raises "negative budget"
    (Invalid_argument "Sequencing.make: negative budget") (fun () ->
      ignore (Sequencing.make ~costs:[| 1 |] ~precedence:[] ~budget:(-1)))

(* Brute-force cross-check of the subset DP: try every permutation. *)
let prop_dp_matches_permutations =
  QCheck.Test.make ~name:"sequencing DP = permutation brute force" ~count:150
    (QCheck.make
       ~print:(fun i -> Format.asprintf "%a" Sequencing.pp i)
       QCheck.Gen.(int_range 0 100000 >>= fun seed ->
                   int_range 1 5 >>= fun tasks ->
                   return (Sequencing.random ~seed ~tasks)))
    (fun inst ->
      let n = Sequencing.n_tasks inst in
      let rec permutations = function
        | [] -> [ [] ]
        | xs ->
            List.concat_map
              (fun x ->
                List.map (fun r -> x :: r)
                  (permutations (List.filter (( <> ) x) xs)))
              xs
      in
      let order_ok order =
        let pos = Array.make n 0 in
        List.iteri (fun i t -> pos.(t) <- i) order;
        List.for_all (fun (a, b) -> pos.(a) < pos.(b)) inst.Sequencing.precedence
        &&
        let cost = ref 0 and ok = ref true in
        List.iter
          (fun t ->
            cost := !cost + inst.Sequencing.costs.(t);
            if !cost > inst.Sequencing.budget then ok := false)
          order;
        !ok
      in
      let brute = List.exists order_ok (permutations (List.init n Fun.id)) in
      Sequencing.feasible inst = brute)

(* ------------------------------------------------------------------ *)
(* The single-semaphore reduction                                       *)
(* ------------------------------------------------------------------ *)

let test_reduction_structure () =
  let inst = Sequencing.make ~costs:[| 2; -1 |] ~precedence:[ (0, 1) ] ~budget:2 in
  let red = Reduction_single_sem.build inst in
  Alcotest.(check int) "one semaphore" 1
    (Reduction_single_sem.semaphores_used red);
  let tr = Reduction_single_sem.trace red in
  Alcotest.(check bool) "observed run completes" true
    (tr.Trace.outcome = Trace.Completed);
  Alcotest.(check (list string)) "valid execution" []
    (Execution.axiom_violations (Trace.to_execution tr))

let test_known_instances () =
  List.iter
    (fun (inst, expected) ->
      let chb, feas = Reduction_single_sem.check inst in
      Alcotest.(check bool) "oracle" expected feas;
      Alcotest.(check bool) "reduction agrees" expected chb)
    [
      (Sequencing.make ~costs:[| 1; 1 |] ~precedence:[] ~budget:1, false);
      (Sequencing.make ~costs:[| 1; 1; -1 |] ~precedence:[] ~budget:1, true);
      ( Sequencing.make ~costs:[| 1; 1; -1 |]
          ~precedence:[ (0, 2); (1, 2) ]
          ~budget:1,
        false );
      (Sequencing.make ~costs:[| -2; 3 |] ~precedence:[] ~budget:1, true);
      (Sequencing.make ~costs:[| 3 |] ~precedence:[] ~budget:2, false);
    ]

let prop_reduction_equivalence =
  QCheck.Test.make
    ~name:"b CHB a on the single-semaphore program = SS7 feasibility"
    ~count:60
    (QCheck.make
       ~print:(fun i -> Format.asprintf "%a" Sequencing.pp i)
       QCheck.Gen.(int_range 0 100000 >>= fun seed ->
                   int_range 2 5 >>= fun tasks ->
                   return (Sequencing.random ~seed ~tasks)))
    (fun inst ->
      let chb, feas = Reduction_single_sem.check inst in
      chb = feas)

let suite =
  [
    Alcotest.test_case "sequencing basics" `Quick test_sequencing_basics;
    Alcotest.test_case "sequencing witness" `Quick test_sequencing_witness;
    Alcotest.test_case "sequencing validation" `Quick test_sequencing_validation;
    qcheck prop_dp_matches_permutations;
    Alcotest.test_case "reduction structure" `Quick test_reduction_structure;
    Alcotest.test_case "known instances" `Quick test_known_instances;
    qcheck prop_reduction_equivalence;
  ]
