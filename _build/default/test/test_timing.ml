let qcheck = QCheck_alcotest.to_alcotest

let skeleton_of src =
  match Gen_progs.completed_trace (Parse.program src) with
  | Some t -> (t, Skeleton.of_execution (Trace.to_execution t))
  | None -> Alcotest.fail "fixture program deadlocked"

let producer_consumer =
  "sem s = 0\nproc producer { x := 1; v(s) }\nproc consumer { p(s); y := x }\nproc bystander { z := 42 }"

let test_chain_separated () =
  let tr, sk = skeleton_of producer_consumer in
  let timing = Timing.sample sk (Trace.schedule tr) in
  let id l = (Trace.find_event tr l).Event.id in
  Alcotest.(check bool) "x T V" true
    (Timing.precedes timing (id "x := 1") (id "V(s)"));
  Alcotest.(check bool) "V T P" true
    (Timing.precedes timing (id "V(s)") (id "P(s)"));
  Alcotest.(check bool) "no reverse" false
    (Timing.precedes timing (id "P(s)") (id "V(s)"))

let test_unpinned_can_overlap () =
  let tr, sk = skeleton_of producer_consumer in
  let id l = (Trace.find_event tr l).Event.id in
  (* The bystander shares layer 0 with x := 1 in some sampling. *)
  let found_overlap = ref false in
  for seed = 0 to 19 do
    let timing = Timing.sample ~seed sk (Trace.schedule tr) in
    if Timing.overlaps timing (id "z := 42") (id "x := 1") then
      found_overlap := true
  done;
  Alcotest.(check bool) "bystander overlaps the writer in some timing" true
    !found_overlap

let test_intervals_well_formed () =
  let tr, sk = skeleton_of producer_consumer in
  let timing = Timing.sample ~seed:3 sk (Trace.schedule tr) in
  Array.iteri
    (fun e s ->
      Alcotest.(check bool) "start < finish" true (s < timing.Timing.finish.(e)))
    timing.Timing.start

let test_rejects_infeasible () =
  let _, sk = skeleton_of producer_consumer in
  let n = Skeleton.(sk.n) in
  match Timing.sample sk (Array.init n (fun i -> n - 1 - i)) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection"

let with_small_trace prog f =
  match Gen_progs.completed_trace prog with
  | None -> true
  | Some tr ->
      if Trace.n_events tr > 8 then true
      else f tr (Skeleton.of_execution (Trace.to_execution tr))

let prop_timed_executions_valid =
  QCheck.Test.make
    ~name:"sampled timings induce valid executions <E, T, D>" ~count:60
    Gen_progs.arbitrary_program (fun prog ->
      with_small_trace prog (fun tr sk ->
          List.for_all
            (fun seed ->
              let timing = Timing.sample ~seed sk (Trace.schedule tr) in
              Execution.is_valid (Timing.to_execution sk timing))
            [ 0; 1; 2 ]))

let prop_pinned_respected =
  QCheck.Test.make
    ~name:"pinned order is separated in every sampled timing" ~count:60
    Gen_progs.arbitrary_program (fun prog ->
      with_small_trace prog (fun tr sk ->
          let schedule = Trace.schedule tr in
          let po = Pinned.po_of_schedule sk schedule in
          List.for_all
            (fun seed ->
              let timing = Timing.sample ~seed sk schedule in
              Rel.fold
                (fun a b acc -> acc && Timing.precedes timing a b)
                po true)
            [ 0; 5 ]))

(* Only for semaphore-only programs: with event variables, schedule-level
   MHB can exceed pinned separation (a Wait enabled by the initial state
   may legitimately overlap a later Clear in real time) — the disjunctive
   Clear constraint documented in Pinned. *)
let prop_mhb_holds_in_all_timings =
  QCheck.Test.make
    ~name:
      "MHB pairs are separated in sampled timings of every schedule \
       (semaphore programs)"
    ~count:40 Gen_progs.arbitrary_program (fun prog ->
      QCheck.assume (not (Ast.uses_event_sync prog));
      with_small_trace prog (fun _ sk ->
          let r = Reach.create sk in
          let schedules = Enumerate.all ~limit:20 sk in
          let ok = ref true in
          for a = 0 to sk.Skeleton.n - 1 do
            for b = 0 to sk.Skeleton.n - 1 do
              if a <> b && Reach.must_before r a b then
                List.iter
                  (fun schedule ->
                    let timing = Timing.sample ~seed:7 sk schedule in
                    if not (Timing.precedes timing a b) then ok := false)
                  schedules
            done
          done;
          !ok))

let prop_timed_orders_are_interval_orders =
  QCheck.Test.make
    ~name:"sampled temporal orders are interval orders (Fishburn)" ~count:60
    Gen_progs.arbitrary_program (fun prog ->
      with_small_trace prog (fun tr sk ->
          List.for_all
            (fun seed ->
              let timing = Timing.sample ~seed sk (Trace.schedule tr) in
              Rel.is_interval_order (Timing.temporal_order timing))
            [ 0; 3 ]))

let suite =
  [
    Alcotest.test_case "chain separated" `Quick test_chain_separated;
    Alcotest.test_case "unpinned can overlap" `Quick test_unpinned_can_overlap;
    Alcotest.test_case "intervals well-formed" `Quick test_intervals_well_formed;
    Alcotest.test_case "rejects infeasible schedules" `Quick
      test_rejects_infeasible;
    qcheck prop_timed_executions_valid;
    qcheck prop_timed_orders_are_interval_orders;
    qcheck prop_pinned_respected;
    qcheck prop_mhb_holds_in_all_timings;
  ]
