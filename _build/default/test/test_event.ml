let mk ?(reads = []) ?(writes = []) ?(kind = Event.Computation) id =
  Event.make ~id ~pid:0 ~seq:id ~kind ~reads ~writes ()

let test_default_labels () =
  let e = mk 3 in
  Alcotest.(check string) "computation label" "e3" e.Event.label;
  let p = Event.make ~id:0 ~pid:0 ~seq:0 ~kind:(Event.Sync (Event.Sem_p 2)) () in
  Alcotest.(check string) "sync label" "P(s2)" p.Event.label;
  let f = Event.make ~id:1 ~pid:0 ~seq:1 ~kind:(Event.Sync Event.Fork) () in
  Alcotest.(check string) "fork label" "fork" f.Event.label

let test_is_sync () =
  Alcotest.(check bool) "computation" false (Event.is_sync (mk 0));
  Alcotest.(check bool) "sync" true
    (Event.is_sync (mk ~kind:(Event.Sync (Event.Post 0)) 0));
  Alcotest.(check bool) "computation is_computation" true
    (Event.is_computation (mk 0))

let test_conflicts () =
  let w0 = mk ~writes:[ 0 ] 0 in
  let r0 = mk ~reads:[ 0 ] 1 in
  let w1 = mk ~writes:[ 1 ] 2 in
  let r0' = mk ~reads:[ 0 ] 3 in
  Alcotest.(check bool) "write-read conflicts" true (Event.conflicts w0 r0);
  Alcotest.(check bool) "read-write conflicts" true (Event.conflicts r0 w0);
  Alcotest.(check bool) "write-write conflicts" true (Event.conflicts w0 w0);
  Alcotest.(check bool) "read-read no conflict" false (Event.conflicts r0 r0');
  Alcotest.(check bool) "different vars no conflict" false
    (Event.conflicts w0 w1);
  Alcotest.(check bool) "no accesses no conflict" false
    (Event.conflicts (mk 4) (mk 5))

let test_mixed_accesses () =
  (* a reads x and writes y; b reads y: conflict via y. *)
  let a = mk ~reads:[ 0 ] ~writes:[ 1 ] 0 in
  let b = mk ~reads:[ 1 ] 1 in
  Alcotest.(check bool) "conflict through write-read on y" true
    (Event.conflicts a b)

let suite =
  [
    Alcotest.test_case "default labels" `Quick test_default_labels;
    Alcotest.test_case "is_sync" `Quick test_is_sync;
    Alcotest.test_case "conflicts" `Quick test_conflicts;
    Alcotest.test_case "mixed accesses" `Quick test_mixed_accesses;
  ]
