let parses_to name src expected =
  Alcotest.test_case name `Quick (fun () ->
      let prog = Parse.program src in
      Alcotest.(check bool) "ast" true (prog = expected))

let simple_src = "proc main {\n  x := 1\n  a: skip\n}\n"

let simple_ast =
  Ast.program
    [ Ast.proc "main" [ Ast.Assign ("x", Expr.Int 1); Ast.Skip (Some "a") ] ]

let sync_src =
  "sem s = 1\nevent e = set\nvar x = 5\nproc p1 { p(s); post(e) }\nproc p2 { wait(e); v(s); clear(e) }\n"

let sync_ast =
  Ast.program ~sem_init:[ ("s", 1) ] ~ev_init:[ ("e", true) ]
    ~var_init:[ ("x", 5) ]
    [
      Ast.proc "p1" [ Ast.Sem_p "s"; Ast.Post "e" ];
      Ast.proc "p2" [ Ast.Wait "e"; Ast.Sem_v "s"; Ast.Clear "e" ];
    ]

let control_src =
  "proc main {\n\
  \  if x = 1 { post(e) } else { wait(e) }\n\
  \  while x < 3 { x := x + 1 }\n\
  \  cobegin { x := 2 } { skip } coend\n\
   }\n"

let control_ast =
  Ast.program
    [
      Ast.proc "main"
        [
          Ast.If
            ( Expr.Eq (Expr.Var "x", Expr.Int 1),
              [ Ast.Post "e" ],
              [ Ast.Wait "e" ] );
          Ast.While
            ( Expr.Lt (Expr.Var "x", Expr.Int 3),
              [ Ast.Assign ("x", Expr.Add (Expr.Var "x", Expr.Int 1)) ] );
          Ast.Cobegin [ [ Ast.Assign ("x", Expr.Int 2) ]; [ Ast.Skip None ] ];
        ];
    ]

let test_roundtrip () =
  (* pp output must parse back to the same AST. *)
  List.iter
    (fun prog ->
      let printed = Format.asprintf "%a" Ast.pp prog in
      let reparsed = Parse.program printed in
      Alcotest.(check bool)
        ("roundtrip: " ^ printed)
        true (reparsed = prog))
    [ simple_ast; sync_ast; control_ast ]

let test_comments_and_semicolons () =
  let prog = Parse.program "# header\nproc main { skip; skip ; x := 1 # tail\n }" in
  Alcotest.(check int) "three statements" 3
    (List.length (List.hd prog.Ast.procs).Ast.body)

let test_expr_parser () =
  Alcotest.(check bool) "precedence" true
    (Parse.expr "1 + 2 * 3 < 8 && !(x = 1)"
    = Expr.And
        ( Expr.Lt (Expr.Add (Expr.Int 1, Expr.Mul (Expr.Int 2, Expr.Int 3)), Expr.Int 8),
          Expr.Not (Expr.Eq (Expr.Var "x", Expr.Int 1)) ));
  Alcotest.(check bool) "negative literal folds" true
    (Parse.expr "-3" = Expr.Int (-3));
  Alcotest.(check bool) "negated variable stays symbolic" true
    (Parse.expr "-x" = Expr.Sub (Expr.Int 0, Expr.Var "x"))

let expect_syntax_error name src =
  Alcotest.test_case name `Quick (fun () ->
      match Parse.program src with
      | exception Parse.Syntax_error _ -> ()
      | _ -> Alcotest.fail "expected syntax error")

(* Random AST -> pp -> parse roundtrip, covering nested control flow. *)
let expr_gen =
  QCheck.Gen.(
    sized_size (int_range 0 3) (fix (fun self n ->
        if n = 0 then
          oneof [ map (fun i -> Expr.Int i) (int_range (-9) 9);
                  oneofl [ Expr.Var "x"; Expr.Var "y" ] ]
        else
          let sub = self (n / 2) in
          oneof
            [
              map2 (fun a b -> Expr.Add (a, b)) sub sub;
              map2 (fun a b -> Expr.Sub (a, b)) sub sub;
              map2 (fun a b -> Expr.Mul (a, b)) sub sub;
              map2 (fun a b -> Expr.Eq (a, b)) sub sub;
              map2 (fun a b -> Expr.Lt (a, b)) sub sub;
              map2 (fun a b -> Expr.And (a, b)) sub sub;
              map2 (fun a b -> Expr.Or (a, b)) sub sub;
              map (fun a -> Expr.Not a) sub;
            ])))

let stmt_gen =
  QCheck.Gen.(
    sized_size (int_range 0 3) (fix (fun self n ->
        let block = list_size (int_range 1 2) (self (n / 2)) in
        if n = 0 then
          oneof
            [
              map (fun e -> Ast.Assign ("x", e)) expr_gen;
              oneofl
                [ Ast.Skip None; Ast.Skip (Some "lbl"); Ast.Sem_p "s";
                  Ast.Sem_v "s"; Ast.Post "e"; Ast.Wait "e"; Ast.Clear "e" ];
            ]
        else
          oneof
            [
              map (fun e -> Ast.Assign ("y", e)) expr_gen;
              map (fun e -> Ast.Assert e) expr_gen;
              map3 (fun c t e -> Ast.If (c, t, e)) expr_gen block block;
              map2 (fun c b -> Ast.While (c, b)) expr_gen block;
              map (fun bs -> Ast.Cobegin bs) (list_size (int_range 1 3) block);
            ])))

let program_gen =
  QCheck.Gen.(
    list_size (int_range 1 3) (list_size (int_range 1 3) stmt_gen)
    >>= fun bodies ->
    oneofl [ []; [ ("s", 1) ] ] >>= fun sem_init ->
    oneofl [ []; [ "s" ] ] >>= fun binary_sems ->
    oneofl [ []; [ ("e", true) ] ] >>= fun ev_init ->
    oneofl [ []; [ ("x", -3) ] ] >>= fun var_init ->
    return
      (Ast.program ~sem_init ~binary_sems ~ev_init ~var_init
         (List.mapi (fun i b -> Ast.proc (Printf.sprintf "q%d" i) b) bodies)))

let prop_random_ast_roundtrip =
  QCheck.Test.make ~name:"random AST pp/parse roundtrip" ~count:300
    (QCheck.make ~print:(fun p -> Format.asprintf "%a" Ast.pp p) program_gen)
    (fun prog ->
      Parse.program (Format.asprintf "%a" Ast.pp prog) = prog)

let test_error_line_number () =
  match Parse.program "proc main {\n  skip\n  ?? \n}" with
  | exception Parse.Syntax_error { line; _ } ->
      Alcotest.(check int) "line 3" 3 line
  | _ -> Alcotest.fail "expected syntax error"

let suite =
  [
    parses_to "simple program" simple_src simple_ast;
    parses_to "declarations and sync" sync_src sync_ast;
    parses_to "control flow" control_src control_ast;
    Alcotest.test_case "pp/parse roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "comments and semicolons" `Quick
      test_comments_and_semicolons;
    Alcotest.test_case "expression parser" `Quick test_expr_parser;
    expect_syntax_error "no processes" "var x = 1\n";
    expect_syntax_error "unclosed block" "proc main { skip\n";
    expect_syntax_error "missing coend" "proc main { cobegin { skip } }";
    expect_syntax_error "bad statement" "proc main { 42 }";
    Alcotest.test_case "error line number" `Quick test_error_line_number;
    QCheck_alcotest.to_alcotest prop_random_ast_roundtrip;
  ]
