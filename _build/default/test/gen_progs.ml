(* Random small programs for property tests: traces must be small enough to
   enumerate exhaustively and must complete (deadlocking drafts are
   discarded by the properties via QCheck.assume). *)

let stmt_gen =
  QCheck.Gen.(
    frequency
      [
        (3, oneofl [ Ast.Assign ("x", Expr.Int 1);
                     Ast.Assign ("x", Expr.Add (Expr.Var "x", Expr.Int 1));
                     Ast.Assign ("y", Expr.Var "x");
                     Ast.Assign ("z", Expr.Int 7);
                     Ast.Skip None ]);
        (2, oneofl [ Ast.Sem_p "s"; Ast.Sem_v "s" ]);
        (2, oneofl [ Ast.Post "e"; Ast.Wait "e"; Ast.Clear "e" ]);
        ( 1,
          oneofl
            [ Ast.Assert (Expr.Eq (Expr.Var "x", Expr.Int 1));
              Ast.Assert (Expr.Lt (Expr.Var "y", Expr.Int 2)) ] );
      ])

let program_gen =
  QCheck.Gen.(
    int_range 2 3 >>= fun n_procs ->
    list_repeat n_procs (list_size (int_range 1 3) stmt_gen) >>= fun bodies ->
    int_range 0 2 >>= fun sem_init ->
    bool >>= fun ev_init ->
    return
      (Ast.program
         ~sem_init:[ ("s", sem_init) ]
         ~ev_init:[ ("e", ev_init) ]
         (List.mapi (fun i body -> Ast.proc (Printf.sprintf "p%d" i) body)
            bodies)))

let print_program prog = Format.asprintf "%a" Ast.pp prog

let arbitrary_program = QCheck.make ~print:print_program program_gen

(* A trace of the program, or None when the program deadlocks. *)
let completed_trace ?(policy = Sched.Round_robin) prog =
  let t = Interp.run ~policy prog in
  match t.Trace.outcome with Trace.Completed -> Some t | _ -> None
