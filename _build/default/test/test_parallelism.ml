let qcheck = QCheck_alcotest.to_alcotest

let of_src src =
  match Gen_progs.completed_trace (Parse.program src) with
  | Some t -> Parallelism.of_trace t
  | None -> Alcotest.fail "fixture program deadlocked"

let test_chain () =
  let p = of_src "proc a { x := 1; x := 2; x := 3 }" in
  Alcotest.(check int) "critical path = everything" 3
    p.Parallelism.critical_path_length;
  Alcotest.(check int) "width 1" 1 p.Parallelism.width;
  Alcotest.(check int) "ideal makespan" 3 (Parallelism.ideal_makespan p);
  Alcotest.(check bool) "no speedup" true (Parallelism.speedup_limit p = 1.0)

let test_independent () =
  let p = of_src "proc a { x := 1 }\nproc b { y := 1 }\nproc c { z := 1 }" in
  Alcotest.(check int) "critical path 1" 1 p.Parallelism.critical_path_length;
  Alcotest.(check int) "width 3" 3 p.Parallelism.width;
  Alcotest.(check bool) "speedup 3" true (Parallelism.speedup_limit p = 3.0)

let test_pipeline () =
  (* producer -> V -> P -> consumer chain plus one free event. *)
  let p =
    of_src
      "sem s = 0\nproc a { x := 1; v(s) }\nproc b { p(s); y := x }\nproc c { z := 1 }"
  in
  Alcotest.(check int) "critical path through the semaphore" 4
    p.Parallelism.critical_path_length;
  Alcotest.(check int) "width 2" 2 p.Parallelism.width;
  (* The critical path is an actual chain of the pinned order. *)
  let trace =
    Interp.run
      (Parse.program
         "sem s = 0\nproc a { x := 1; v(s) }\nproc b { p(s); y := x }\nproc c { z := 1 }")
  in
  let sk = Skeleton.of_execution (Trace.to_execution trace) in
  let po = Pinned.po_of_schedule sk (Trace.schedule trace) in
  let rec ascending = function
    | a :: (b :: _ as rest) -> Rel.mem po a b && ascending rest
    | _ -> true
  in
  Alcotest.(check bool) "path is a chain" true
    (ascending p.Parallelism.critical_path)

let test_brent () =
  let p = of_src "proc a { x := 1 }\nproc b { y := 1 }\nproc c { z := 1 }" in
  (* n=3, cp=1: with 1 processor: 2/1 + 1 = 3; with 3: 1/3 rounded up + 1 = 2. *)
  Alcotest.(check int) "p=1" 3 (Parallelism.brent_bound p ~processors:1);
  Alcotest.(check int) "p=3" 2 (Parallelism.brent_bound p ~processors:3);
  Alcotest.check_raises "p=0 rejected"
    (Invalid_argument "Parallelism.brent_bound: p must be positive") (fun () ->
      ignore (Parallelism.brent_bound p ~processors:0))

let prop_invariants =
  QCheck.Test.make ~name:"critical path and width invariants" ~count:100
    Gen_progs.arbitrary_program (fun prog ->
      match Gen_progs.completed_trace prog with
      | None -> true
      | Some tr ->
          let p = Parallelism.of_trace tr in
          let n = p.Parallelism.n_events in
          (* Dilworth-flavoured sanity: cp * width >= n (a chain cover by
             antichains / Mirsky), both within [1, n] for n > 0. *)
          n = 0
          || (p.Parallelism.critical_path_length >= 1
             && p.Parallelism.critical_path_length <= n
             && p.Parallelism.width >= 1
             && p.Parallelism.width <= n
             && p.Parallelism.critical_path_length * p.Parallelism.width >= n
             && Parallelism.brent_bound p ~processors:1 = n))

let suite =
  [
    Alcotest.test_case "chain" `Quick test_chain;
    Alcotest.test_case "independent" `Quick test_independent;
    Alcotest.test_case "pipeline" `Quick test_pipeline;
    Alcotest.test_case "brent bound" `Quick test_brent;
    qcheck prop_invariants;
  ]
