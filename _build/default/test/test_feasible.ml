let qcheck = QCheck_alcotest.to_alcotest

let skeleton_of src =
  match Gen_progs.completed_trace (Parse.program src) with
  | Some t -> (t, Skeleton.of_execution (Trace.to_execution t))
  | None -> Alcotest.fail "fixture program deadlocked"

let producer_consumer =
  "sem s = 0\nproc producer { x := 1; v(s) }\nproc consumer { p(s); y := x }\nproc bystander { z := 42 }"

let test_count_producer_consumer () =
  let _, sk = skeleton_of producer_consumer in
  (* A 4-chain with one free event: 5 interleavings. *)
  Alcotest.(check int) "5 feasible schedules" 5 (Enumerate.count sk)

let test_dependence_forces_order () =
  let _, sk = skeleton_of "proc a { x := 1 }\nproc b { x := 2 }" in
  (* The two writes conflict; the observed order is the only feasible one. *)
  Alcotest.(check int) "1 schedule" 1 (Enumerate.count sk)

let test_independent_events () =
  let _, sk =
    skeleton_of "proc a { x := 1 }\nproc b { y := 1 }\nproc c { z := 1 }"
  in
  Alcotest.(check int) "3! schedules" 6 (Enumerate.count sk)

let test_clear_semantics () =
  let _, sk = skeleton_of "proc a { post(e) }\nproc b { wait(e) }\nproc c { clear(e) }" in
  (* Feasible: Post Wait Clear, Clear Post Wait; Post Clear Wait blocks. *)
  Alcotest.(check int) "2 schedules" 2 (Enumerate.count sk)

let test_semaphore_underflow_pruned () =
  let _, sk = skeleton_of "sem s = 0\nproc a { v(s) }\nproc b { p(s) }" in
  Alcotest.(check int) "V must precede P" 1 (Enumerate.count sk)

let test_initial_tokens () =
  let _, sk = skeleton_of "sem s = 2\nproc a { p(s) }\nproc b { p(s) }" in
  Alcotest.(check int) "both orders fine" 2 (Enumerate.count sk)

let test_all_enumerated_feasible () =
  let _, sk = skeleton_of producer_consumer in
  List.iter
    (fun schedule ->
      Alcotest.(check bool) "replay accepts" true (Replay.is_feasible sk schedule))
    (Enumerate.all sk)

let test_observed_schedule_enumerated () =
  let tr, sk = skeleton_of producer_consumer in
  let observed = Trace.schedule tr in
  Alcotest.(check bool) "observed among enumerated" true
    (List.exists (fun s -> s = observed) (Enumerate.all sk))

let test_replay_rejections () =
  let _, sk = skeleton_of producer_consumer in
  (* Events: 0 z:=42? depends on schedule order; find by label. *)
  let tr, _ = skeleton_of producer_consumer in
  let id l = (Trace.find_event tr l).Event.id in
  let n = Skeleton.(sk.n) in
  ignore n;
  let bad_po = [| id "V(s)"; id "x := 1"; id "P(s)"; id "y := x"; id "z := 42" |] in
  (match Replay.check sk bad_po with
  | Replay.Program_order_violated _ -> ()
  | v -> Alcotest.failf "expected po violation, got %a" Replay.pp_verdict v);
  let bad_sync = [| id "x := 1"; id "P(s)"; id "V(s)"; id "y := x"; id "z := 42" |] in
  (match Replay.check sk bad_sync with
  | Replay.Sync_blocked _ -> ()
  | v -> Alcotest.failf "expected sync block, got %a" Replay.pp_verdict v);
  (match Replay.check sk [| 0; 0; 1; 2; 3 |] with
  | Replay.Not_a_permutation -> ()
  | v -> Alcotest.failf "expected permutation failure, got %a" Replay.pp_verdict v)

let test_dependence_violation_detected () =
  let tr, sk = skeleton_of "proc a { x := 1 }\nproc b { y := x }" in
  let w = (Trace.find_event tr "x := 1").Event.id in
  let r = (Trace.find_event tr "y := x").Event.id in
  match Replay.check sk [| r; w |] with
  | Replay.Dependence_violated { event; missing_pred } ->
      Alcotest.(check int) "event" r event;
      Alcotest.(check int) "missing" w missing_pred
  | v -> Alcotest.failf "expected dependence violation, got %a" Replay.pp_verdict v

let test_exists_order () =
  let tr, sk = skeleton_of producer_consumer in
  let id l = (Trace.find_event tr l).Event.id in
  Alcotest.(check bool) "z before x possible" true
    (Enumerate.exists_order sk ~before:(id "z := 42") ~after:(id "x := 1"));
  Alcotest.(check bool) "y before x impossible" false
    (Enumerate.exists_order sk ~before:(id "y := x") ~after:(id "x := 1"));
  Alcotest.(check bool) "self is false" false
    (Enumerate.exists_order sk ~before:(id "x := 1") ~after:(id "x := 1"))

let test_limit_and_first () =
  let _, sk = skeleton_of producer_consumer in
  Alcotest.(check int) "limit" 3 (Enumerate.count ~limit:3 sk);
  match Enumerate.first sk with
  | Some s -> Alcotest.(check bool) "first is feasible" true (Replay.is_feasible sk s)
  | None -> Alcotest.fail "expected a schedule"

let test_pinned_chain () =
  let tr, sk = skeleton_of producer_consumer in
  let id l = (Trace.find_event tr l).Event.id in
  let po = Pinned.po_of_schedule sk (Trace.schedule tr) in
  Alcotest.(check bool) "x -> V" true (Rel.mem po (id "x := 1") (id "V(s)"));
  Alcotest.(check bool) "V -> P (pairing)" true (Rel.mem po (id "V(s)") (id "P(s)"));
  Alcotest.(check bool) "x -> y transitively" true
    (Rel.mem po (id "x := 1") (id "y := x"));
  Alcotest.(check bool) "z unordered" false
    (Rel.comparable po (id "z := 42") (id "x := 1"));
  Alcotest.(check bool) "strict partial order" true (Rel.is_strict_partial_order po)

let test_pinned_wait_trigger () =
  let tr, sk = skeleton_of "proc a { post(e) }\nproc b { wait(e) }" in
  let id l = (Trace.find_event tr l).Event.id in
  let po = Pinned.po_of_schedule sk (Trace.schedule tr) in
  Alcotest.(check bool) "post -> wait" true
    (Rel.mem po (id "Post(e)") (id "Wait(e)"))

let test_pinned_rejects_infeasible () =
  let _, sk = skeleton_of "sem s = 0\nproc a { v(s) }\nproc b { p(s) }" in
  match Pinned.po_of_schedule sk [| 1; 0 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_skeleton_shape () =
  let tr, sk = skeleton_of producer_consumer in
  let id l = (Trace.find_event tr l).Event.id in
  Alcotest.(check (list int)) "P's po pred is nothing (first in proc)" []
    sk.Skeleton.po_preds.(id "P(s)");
  Alcotest.(check (list int)) "y's po pred is P" [ id "P(s)" ]
    sk.Skeleton.po_preds.(id "y := x");
  Alcotest.(check (list int)) "y's dep pred is x:=1" [ id "x := 1" ]
    sk.Skeleton.dep_preds.(id "y := x");
  let g = Skeleton.constraint_graph sk in
  Alcotest.(check bool) "constraint graph is a DAG" true (Digraph.is_dag g)

(* ------------------------------------------------------------------ *)
(* Properties over random programs                                     *)
(* ------------------------------------------------------------------ *)

let with_small_trace prog f =
  match Gen_progs.completed_trace prog with
  | None -> true (* deadlocked: nothing to check *)
  | Some tr ->
      if Trace.n_events tr > 8 then true
      else f tr (Skeleton.of_execution (Trace.to_execution tr))

let prop_enumerated_feasible =
  QCheck.Test.make ~name:"every enumerated schedule passes the replay oracle"
    ~count:150 Gen_progs.arbitrary_program (fun prog ->
      with_small_trace prog (fun _ sk ->
          List.for_all (Replay.is_feasible sk) (Enumerate.all sk)))

let prop_observed_enumerated =
  QCheck.Test.make ~name:"the observed schedule is always enumerated"
    ~count:150 Gen_progs.arbitrary_program (fun prog ->
      with_small_trace prog (fun tr sk ->
          let observed = Trace.schedule tr in
          List.exists (fun s -> s = observed) (Enumerate.all sk)))

let prop_schedules_extend_pinned_po =
  QCheck.Test.make
    ~name:"every feasible schedule linearizes its own pinned order" ~count:100
    Gen_progs.arbitrary_program (fun prog ->
      with_small_trace prog (fun _ sk ->
          List.for_all
            (fun schedule ->
              let po = Pinned.po_of_schedule sk schedule in
              let position = Array.make sk.Skeleton.n 0 in
              Array.iteri (fun i e -> position.(e) <- i) schedule;
              Rel.is_strict_partial_order po
              && Rel.fold
                   (fun a b acc -> acc && position.(a) < position.(b))
                   po true)
            (Enumerate.all sk)))

let prop_count_positive =
  QCheck.Test.make ~name:"completed traces have at least one feasible schedule"
    ~count:150 Gen_progs.arbitrary_program (fun prog ->
      with_small_trace prog (fun _ sk -> Enumerate.count sk >= 1))

let suite =
  [
    Alcotest.test_case "producer/consumer count" `Quick
      test_count_producer_consumer;
    Alcotest.test_case "dependence forces order" `Quick
      test_dependence_forces_order;
    Alcotest.test_case "independent events" `Quick test_independent_events;
    Alcotest.test_case "clear semantics" `Quick test_clear_semantics;
    Alcotest.test_case "semaphore underflow pruned" `Quick
      test_semaphore_underflow_pruned;
    Alcotest.test_case "initial tokens" `Quick test_initial_tokens;
    Alcotest.test_case "enumerated schedules are feasible" `Quick
      test_all_enumerated_feasible;
    Alcotest.test_case "observed schedule enumerated" `Quick
      test_observed_schedule_enumerated;
    Alcotest.test_case "replay rejections" `Quick test_replay_rejections;
    Alcotest.test_case "dependence violation detected" `Quick
      test_dependence_violation_detected;
    Alcotest.test_case "exists_order" `Quick test_exists_order;
    Alcotest.test_case "limit and first" `Quick test_limit_and_first;
    Alcotest.test_case "pinned chain" `Quick test_pinned_chain;
    Alcotest.test_case "pinned wait trigger" `Quick test_pinned_wait_trigger;
    Alcotest.test_case "pinned rejects infeasible" `Quick
      test_pinned_rejects_infeasible;
    Alcotest.test_case "skeleton shape" `Quick test_skeleton_shape;
    qcheck prop_enumerated_feasible;
    qcheck prop_observed_enumerated;
    qcheck prop_schedules_extend_pinned_po;
    qcheck prop_count_positive;
  ]
