let qcheck = QCheck_alcotest.to_alcotest

let trace_of src =
  match Gen_progs.completed_trace (Parse.program src) with
  | Some t -> t
  | None -> Alcotest.fail "fixture program deadlocked"

let producer_consumer =
  "sem s = 0\nproc producer { x := 1; v(s) }\nproc consumer { p(s); y := x }\nproc bystander { z := 42 }"

let test_chain_hb () =
  let tr = trace_of producer_consumer in
  let x = Trace.to_execution tr in
  let vc = Vclock.of_execution x in
  let id l = (Trace.find_event tr l).Event.id in
  Alcotest.(check bool) "x -> V" true (Vclock.hb vc (id "x := 1") (id "V(s)"));
  Alcotest.(check bool) "V -> P via pairing" true
    (Vclock.hb vc (id "V(s)") (id "P(s)"));
  Alcotest.(check bool) "x -> y transitively" true
    (Vclock.hb vc (id "x := 1") (id "y := x"));
  Alcotest.(check bool) "no reverse" false
    (Vclock.hb vc (id "y := x") (id "x := 1"));
  Alcotest.(check bool) "bystander concurrent" true
    (Vclock.concurrent vc (id "z := 42") (id "y := x"));
  Alcotest.(check bool) "irreflexive" false
    (Vclock.hb vc (id "x := 1") (id "x := 1"))

let test_clock_values () =
  let tr = trace_of "proc a { x := 1; y := 2 }" in
  let vc = Vclock.of_execution (Trace.to_execution tr) in
  Alcotest.(check (array int)) "first event" [| 1 |] (Vclock.clock vc 0);
  Alcotest.(check (array int)) "second event" [| 2 |] (Vclock.clock vc 1)

(* Vector-clock hb must equal the closure of program order plus the
   schedule's synchronization edges (no shared-data edges). *)
let expected_hb sk schedule =
  let r = Rel.create sk.Skeleton.n in
  for b = 0 to sk.Skeleton.n - 1 do
    List.iter (fun a -> Rel.add r a b) sk.Skeleton.po_preds.(b)
  done;
  List.iter (fun (a, b) -> Rel.add r a b) (Pinned.sync_edges sk schedule);
  Rel.transitive_closure_in_place r;
  r

let prop_hb_is_po_plus_sync =
  QCheck.Test.make ~name:"vclock hb = closure(po + sync edges)" ~count:150
    Gen_progs.arbitrary_program (fun prog ->
      match Gen_progs.completed_trace prog with
      | None -> true
      | Some tr ->
          let x = Trace.to_execution tr in
          let sk = Skeleton.of_execution x in
          let schedule = Trace.schedule tr in
          let vc = Vclock.compute sk schedule in
          Rel.equal (Vclock.hb_rel vc) (expected_hb sk schedule))

let prop_hb_within_pinned =
  QCheck.Test.make ~name:"vclock hb ⊆ pinned po of the observed schedule"
    ~count:150 Gen_progs.arbitrary_program (fun prog ->
      match Gen_progs.completed_trace prog with
      | None -> true
      | Some tr ->
          let x = Trace.to_execution tr in
          let sk = Skeleton.of_execution x in
          let schedule = Trace.schedule tr in
          let vc = Vclock.compute sk schedule in
          Rel.subset (Vclock.hb_rel vc) (Pinned.po_of_schedule sk schedule))

(* The paper's point about pairing-based orders: vclock hb is NOT a sound
   approximation of MHB.  Witness: two V's can serve one P. *)
let test_unsafe_as_mhb () =
  let tr =
    trace_of
      "sem s = 0\nproc first { v(s) }\nproc second { v(s) }\nproc taker { p(s); b: skip }"
  in
  let x = Trace.to_execution tr in
  let vc = Vclock.of_execution x in
  (* Two events share the "V(s)" label; pick them by kind and position. *)
  let events = x.Execution.events in
  let p =
    (Array.to_list events
    |> List.find (fun e -> e.Event.kind = Event.Sync (Event.Sem_p 0)))
      .Event.id
  in
  let paired_v =
    (* the observed first V *)
    (Array.to_list events
    |> List.find (fun e -> e.Event.kind = Event.Sync (Event.Sem_v 0)))
      .Event.id
  in
  Alcotest.(check bool) "vclock claims V1 -> P" true (Vclock.hb vc paired_v p);
  let d = Decide.create x in
  Alcotest.(check bool) "but V1 MHB P is false (V2 could serve)" false
    (Decide.mhb d paired_v p)

let prop_lamport_consistent =
  QCheck.Test.make ~name:"lamport clocks consistent with vclock hb" ~count:150
    Gen_progs.arbitrary_program (fun prog ->
      match Gen_progs.completed_trace prog with
      | None -> true
      | Some tr ->
          let x = Trace.to_execution tr in
          let lc = Lamport.of_execution x in
          let vc = Vclock.of_execution x in
          Lamport.consistent_with lc (Vclock.hb_rel vc))

let test_lamport_chain () =
  let tr = trace_of producer_consumer in
  let lc = Lamport.of_execution (Trace.to_execution tr) in
  let id l = (Trace.find_event tr l).Event.id in
  Alcotest.(check bool) "strictly increasing along chain" true
    (Lamport.timestamp lc (id "x := 1") < Lamport.timestamp lc (id "V(s)")
    && Lamport.timestamp lc (id "V(s)") < Lamport.timestamp lc (id "P(s)")
    && Lamport.timestamp lc (id "P(s)") < Lamport.timestamp lc (id "y := x"))

let test_rejects_partial_temporal () =
  let events =
    [|
      Event.make ~id:0 ~pid:0 ~seq:0 ~kind:Event.Computation ();
      Event.make ~id:1 ~pid:1 ~seq:0 ~kind:Event.Computation ();
    |]
  in
  let x =
    Execution.make ~events ~program_order:(Rel.create 2)
      ~temporal:(Rel.create 2) ~dependences:(Rel.create 2) ()
  in
  match Vclock.of_execution x with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument on partial temporal order"

let suite =
  [
    Alcotest.test_case "chain hb" `Quick test_chain_hb;
    Alcotest.test_case "clock values" `Quick test_clock_values;
    Alcotest.test_case "unsafe as MHB approximation" `Quick test_unsafe_as_mhb;
    Alcotest.test_case "lamport chain" `Quick test_lamport_chain;
    Alcotest.test_case "rejects partial temporal order" `Quick
      test_rejects_partial_temporal;
    qcheck prop_hb_is_po_plus_sync;
    qcheck prop_hb_within_pinned;
    qcheck prop_lamport_consistent;
  ]
