let test_random_shape () =
  let f = Sat_gen.random_3cnf ~seed:42 ~num_vars:5 ~num_clauses:10 in
  Alcotest.(check int) "clause count" 10 (Cnf.num_clauses f);
  Alcotest.(check bool) "three literals each" true (Cnf.is_three_cnf f);
  (* Distinct variables within each clause. *)
  List.iter
    (fun c ->
      let vars = List.map Cnf.var c in
      Alcotest.(check int) "distinct vars" 3
        (List.length (List.sort_uniq compare vars)))
    f.Cnf.clauses

let test_deterministic () =
  let f1 = Sat_gen.random_3cnf ~seed:1 ~num_vars:6 ~num_clauses:8 in
  let f2 = Sat_gen.random_3cnf ~seed:1 ~num_vars:6 ~num_clauses:8 in
  Alcotest.(check bool) "same seed same formula" true
    (f1.Cnf.clauses = f2.Cnf.clauses);
  let f3 = Sat_gen.random_3cnf ~seed:2 ~num_vars:6 ~num_clauses:8 in
  Alcotest.(check bool) "different seed differs" true
    (f1.Cnf.clauses <> f3.Cnf.clauses)

let test_too_few_vars () =
  Alcotest.check_raises "needs 3 vars"
    (Invalid_argument "Sat_gen.random_3cnf: need >= 3 variables") (fun () ->
      ignore (Sat_gen.random_3cnf ~seed:0 ~num_vars:2 ~num_clauses:1))

let test_all_sign_patterns () =
  let patterns = Sat_gen.all_sign_patterns [ 1; 2 ] in
  Alcotest.(check int) "2^2 patterns" 4 (List.length patterns);
  Alcotest.(check bool) "conjunction is unsat" false
    (Dpll.is_satisfiable (Cnf.make ~num_vars:2 patterns))

let test_pigeonhole_shape () =
  let f = Sat_gen.pigeonhole 2 in
  (* 3 pigeons, 2 holes: 3 pigeon clauses + per-hole pair clauses. *)
  Alcotest.(check int) "num_vars" 6 f.Cnf.num_vars;
  Alcotest.(check bool) "has pigeon clause of width 2" true
    (List.exists (fun c -> List.length c = 2 && List.for_all (fun l -> l > 0) c)
       f.Cnf.clauses)

let suite =
  [
    Alcotest.test_case "random 3cnf shape" `Quick test_random_shape;
    Alcotest.test_case "determinism" `Quick test_deterministic;
    Alcotest.test_case "too few vars" `Quick test_too_few_vars;
    Alcotest.test_case "all sign patterns" `Quick test_all_sign_patterns;
    Alcotest.test_case "pigeonhole shape" `Quick test_pigeonhole_shape;
  ]
