let qcheck = QCheck_alcotest.to_alcotest

let skeleton_of src =
  match Gen_progs.completed_trace (Parse.program src) with
  | Some t -> Skeleton.of_execution (Trace.to_execution t)
  | None -> Alcotest.fail "fixture program deadlocked"

let pinned_class_set sk iter =
  let classes = Hashtbl.create 64 in
  let (_ : int) =
    iter sk (fun schedule ->
        Hashtbl.replace classes
          (Rel.to_pairs (Pinned.po_of_schedule sk schedule))
          ())
  in
  Hashtbl.fold (fun k () acc -> k :: acc) classes []
  |> List.sort compare

let test_fewer_representatives () =
  (* Three independent writers: 6 schedules, 1 class, 1 representative. *)
  let sk = skeleton_of "proc a { x := 1 }\nproc b { y := 1 }\nproc c { z := 1 }" in
  Alcotest.(check int) "full enumeration" 6 (Enumerate.count sk);
  Alcotest.(check int) "one representative" 1 (Por.count_representatives sk)

let test_dependent_not_reduced () =
  (* Two P's on one semaphore with two tokens: orders are distinguishable
     (the pairing differs), so both survive. *)
  let sk = skeleton_of "sem s = 2\nproc a { p(s) }\nproc b { p(s) }" in
  Alcotest.(check int) "both representatives kept" 2
    (Por.count_representatives sk)

let test_independence_relation () =
  let sk =
    skeleton_of "sem s = 0\nproc a { x := 1; v(s) }\nproc b { p(s); y := x }"
  in
  let x = Skeleton.(sk.execution) in
  let by_label l =
    (Array.to_list x.Execution.events
    |> List.find (fun e -> e.Event.label = l))
      .Event.id
  in
  (* Same-semaphore ops are dependent. *)
  Alcotest.(check bool) "V/P dependent" false
    (Por.independent sk (by_label "V(s)") (by_label "P(s)"));
  (* Conflicting accesses (D edge) are dependent. *)
  Alcotest.(check bool) "writer/reader dependent" false
    (Por.independent sk (by_label "x := 1") (by_label "y := x"));
  (* Cross-process, different objects: independent. *)
  Alcotest.(check bool) "write vs P independent" true
    (Por.independent sk (by_label "x := 1") (by_label "P(s)"));
  (* Same process: never independent. *)
  Alcotest.(check bool) "same process dependent" false
    (Por.independent sk (by_label "x := 1") (by_label "V(s)"))

let prop_same_class_set =
  QCheck.Test.make
    ~name:"POR representatives cover exactly the pinned-order classes"
    ~count:120 Gen_progs.arbitrary_program (fun prog ->
      match Gen_progs.completed_trace prog with
      | None -> true
      | Some tr ->
          if Trace.n_events tr > 8 then true
          else begin
            let sk = Skeleton.of_execution (Trace.to_execution tr) in
            pinned_class_set sk (fun sk f -> Enumerate.iter sk f)
            = pinned_class_set sk (fun sk f -> Por.iter_representatives sk f)
          end)

let prop_representatives_feasible =
  QCheck.Test.make ~name:"representatives are feasible schedules" ~count:100
    Gen_progs.arbitrary_program (fun prog ->
      match Gen_progs.completed_trace prog with
      | None -> true
      | Some tr ->
          if Trace.n_events tr > 8 then true
          else begin
            let sk = Skeleton.of_execution (Trace.to_execution tr) in
            let ok = ref true in
            let (_ : int) =
              Por.iter_representatives sk (fun s ->
                  if not (Replay.is_feasible sk s) then ok := false)
            in
            !ok
          end)

let prop_never_more_than_full =
  QCheck.Test.make ~name:"representative count <= schedule count" ~count:100
    Gen_progs.arbitrary_program (fun prog ->
      match Gen_progs.completed_trace prog with
      | None -> true
      | Some tr ->
          if Trace.n_events tr > 8 then true
          else begin
            let sk = Skeleton.of_execution (Trace.to_execution tr) in
            Por.count_representatives sk <= Enumerate.count sk
          end)

let suite =
  [
    Alcotest.test_case "fewer representatives" `Quick test_fewer_representatives;
    Alcotest.test_case "dependent orders kept" `Quick test_dependent_not_reduced;
    Alcotest.test_case "independence relation" `Quick test_independence_relation;
    qcheck prop_same_class_set;
    qcheck prop_representatives_feasible;
    qcheck prop_never_more_than_full;
  ]
