let qcheck = QCheck_alcotest.to_alcotest

let skeleton_of src =
  match Gen_progs.completed_trace (Parse.program src) with
  | Some t -> (t, Skeleton.of_execution (Trace.to_execution t))
  | None -> Alcotest.fail "fixture program deadlocked"

let producer_consumer =
  "sem s = 0\nproc producer { x := 1; v(s) }\nproc consumer { p(s); y := x }\nproc bystander { z := 42 }"

let test_schedule_count_matches_enumeration () =
  let _, sk = skeleton_of producer_consumer in
  let r = Reach.create sk in
  Alcotest.(check int) "counts agree" (Enumerate.count sk) (Reach.schedule_count r)

let test_feasible_exists () =
  let _, sk = skeleton_of producer_consumer in
  Alcotest.(check bool) "exists" true (Reach.feasible_exists (Reach.create sk))

let test_exists_before_matches () =
  let tr, sk = skeleton_of producer_consumer in
  let id l = (Trace.find_event tr l).Event.id in
  let r = Reach.create sk in
  Alcotest.(check bool) "z before x" true
    (Reach.exists_before r (id "z := 42") (id "x := 1"));
  Alcotest.(check bool) "y before x never" false
    (Reach.exists_before r (id "y := x") (id "x := 1"));
  Alcotest.(check bool) "must: x before y" true
    (Reach.must_before r (id "x := 1") (id "y := x"));
  Alcotest.(check bool) "not must: z before x" false
    (Reach.must_before r (id "z := 42") (id "x := 1"))

let test_state_count () =
  let _, sk = skeleton_of "proc a { x := 1 }\nproc b { y := 1 }" in
  (* Two independent events: states are subsets {∅,{a},{b},{a,b}}. *)
  Alcotest.(check int) "4 states" 4 (Reach.reachable_state_count (Reach.create sk))

let test_deadlock_reachable () =
  (* Observed run completes, but another schedule wedges: Clear before the
     Wait kills the only trigger. *)
  let _, sk = skeleton_of "proc a { post(e) }\nproc b { wait(e); clear(e) }" in
  Alcotest.(check bool) "no deadlock here" false
    (Reach.deadlock_reachable (Reach.create sk));
  let _, sk2 = skeleton_of "proc a { post(e) }\nproc b { wait(e) }\nproc c { clear(e) }" in
  (* Post; Clear; -> Wait stuck. *)
  Alcotest.(check bool) "deadlock reachable" true
    (Reach.deadlock_reachable (Reach.create sk2))

let with_small_trace prog f =
  match Gen_progs.completed_trace prog with
  | None -> true
  | Some tr ->
      if Trace.n_events tr > 8 then true
      else f tr (Skeleton.of_execution (Trace.to_execution tr))

let prop_counts_agree =
  QCheck.Test.make
    ~name:"reach schedule_count = enumerate count" ~count:120
    Gen_progs.arbitrary_program (fun prog ->
      with_small_trace prog (fun _ sk ->
          Reach.schedule_count (Reach.create sk) = Enumerate.count sk))

let prop_exists_before_agrees =
  QCheck.Test.make
    ~name:"reach exists_before = enumerate exists_order (all pairs)"
    ~count:60 Gen_progs.arbitrary_program (fun prog ->
      with_small_trace prog (fun _ sk ->
          let r = Reach.create sk in
          let ok = ref true in
          for a = 0 to sk.Skeleton.n - 1 do
            for b = 0 to sk.Skeleton.n - 1 do
              if
                Reach.exists_before r a b
                <> Enumerate.exists_order sk ~before:a ~after:b
              then ok := false
            done
          done;
          !ok))

let prop_mhb_chb_duality =
  QCheck.Test.make ~name:"must_before a b = not (exists_before b a)" ~count:60
    Gen_progs.arbitrary_program (fun prog ->
      with_small_trace prog (fun _ sk ->
          let r = Reach.create sk in
          QCheck.assume (Reach.feasible_exists r);
          let ok = ref true in
          for a = 0 to sk.Skeleton.n - 1 do
            for b = 0 to sk.Skeleton.n - 1 do
              if a <> b then
                if Reach.must_before r a b <> not (Reach.exists_before r b a)
                then ok := false
            done
          done;
          !ok))

let test_witness_before () =
  let tr, sk = skeleton_of producer_consumer in
  let id l = (Trace.find_event tr l).Event.id in
  let r = Reach.create sk in
  (match Reach.witness_before r (id "z := 42") (id "x := 1") with
  | None -> Alcotest.fail "expected a witness"
  | Some schedule ->
      Alcotest.(check bool) "witness is feasible" true
        (Replay.is_feasible sk schedule);
      let pos e = Array.to_list schedule |> List.mapi (fun i x -> (x, i))
                  |> List.assoc e in
      Alcotest.(check bool) "z before x in witness" true
        (pos (id "z := 42") < pos (id "x := 1")));
  Alcotest.(check (option (array int))) "no witness for impossible order" None
    (Reach.witness_before r (id "y := x") (id "x := 1"))

let prop_witness_iff_exists =
  QCheck.Test.make ~name:"witness_before = Some iff exists_before (and valid)"
    ~count:60 Gen_progs.arbitrary_program (fun prog ->
      with_small_trace prog (fun _ sk ->
          let r = Reach.create sk in
          let ok = ref true in
          for a = 0 to sk.Skeleton.n - 1 do
            for b = 0 to sk.Skeleton.n - 1 do
              match Reach.witness_before r a b with
              | Some schedule ->
                  if not (Reach.exists_before r a b) then ok := false;
                  if not (Replay.is_feasible sk schedule) then ok := false
              | None -> if Reach.exists_before r a b then ok := false
            done
          done;
          !ok))

let suite =
  [
    Alcotest.test_case "witness schedules" `Quick test_witness_before;
    qcheck prop_witness_iff_exists;
    Alcotest.test_case "schedule count matches enumeration" `Quick
      test_schedule_count_matches_enumeration;
    Alcotest.test_case "feasible exists" `Quick test_feasible_exists;
    Alcotest.test_case "exists_before/must_before" `Quick
      test_exists_before_matches;
    Alcotest.test_case "state count" `Quick test_state_count;
    Alcotest.test_case "deadlock reachability" `Quick test_deadlock_reachable;
    qcheck prop_counts_agree;
    qcheck prop_exists_before_agrees;
    qcheck prop_mhb_chb_duality;
  ]
