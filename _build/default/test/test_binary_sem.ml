(* Binary semaphores: capped-V semantics across the interpreter and all
   three feasibility engines, plus the paper's Section 5.1 remark that
   Theorems 1 and 2 also hold for binary semaphores. *)

let run ?policy src =
  match Gen_progs.completed_trace ?policy (Parse.program src) with
  | Some t -> t
  | None -> Alcotest.fail "fixture program deadlocked"

let test_absorbed_v () =
  (* Two V's back to back on a binary semaphore leave one token, so the
     second P deadlocks; with a counting semaphore both P's pass. *)
  let binary = "binsem s = 0\nproc a { v(s); v(s) }\nproc b { p(s); p(s) }" in
  let t = Interp.run ~policy:(Sched.Replay [ 0; 0; 1; 1 ]) (Parse.program binary) in
  Alcotest.(check bool) "binary run deadlocks" true
    (match t.Trace.outcome with Trace.Deadlocked _ -> true | _ -> false);
  let counting = "sem s = 0\nproc a { v(s); v(s) }\nproc b { p(s); p(s) }" in
  let t = Interp.run ~policy:(Sched.Replay [ 0; 0; 1; 1 ]) (Parse.program counting) in
  Alcotest.(check bool) "counting run completes" true
    (t.Trace.outcome = Trace.Completed)

let test_interleaved_vp_completes () =
  let src = "binsem s = 0\nproc a { v(s); v(s) }\nproc b { p(s); p(s) }" in
  (* V P V P works even under binary semantics. *)
  let t = Interp.run ~policy:(Sched.Replay [ 0; 1; 0; 1 ]) (Parse.program src) in
  Alcotest.(check bool) "completes" true (t.Trace.outcome = Trace.Completed)

let test_binary_flag_recorded () =
  let t = run "binsem s = 1\nproc a { p(s) }" in
  let x = Trace.to_execution t in
  Alcotest.(check bool) "flag" true x.Execution.sem_binary.(0);
  let t = run "sem s = 1\nproc a { p(s) }" in
  let x = Trace.to_execution t in
  Alcotest.(check bool) "counting flag" false x.Execution.sem_binary.(0)

let test_pp_roundtrip () =
  let prog =
    Ast.program
      ~sem_init:[ ("s", 1) ]
      ~binary_sems:[ "s"; "t" ]
      [ Ast.proc "a" [ Ast.Sem_p "s"; Ast.Sem_v "t" ] ]
  in
  let printed = Format.asprintf "%a" Ast.pp prog in
  let reparsed = Parse.program printed in
  Alcotest.(check bool) "binary sems preserved" true
    (List.sort compare reparsed.Ast.binary_sems = [ "s"; "t" ])

let test_enumerate_respects_binary () =
  (* Feasible schedules of the V V / P P skeleton: under binary semantics
     only interleavings where each V is consumed before the next V count. *)
  let t = run ~policy:(Sched.Replay [ 0; 1; 0; 1 ])
      "binsem s = 0\nproc a { v(s); v(s) }\nproc b { p(s); p(s) }" in
  let sk = Skeleton.of_execution (Trace.to_execution t) in
  let schedules = Enumerate.all sk in
  (* V1 P1 V2 P2 is the only complete order: V1 V2 collapses the token. *)
  Alcotest.(check int) "single feasible schedule" 1 (List.length schedules);
  List.iter
    (fun s ->
      Alcotest.(check bool) "replay agrees" true (Replay.is_feasible sk s))
    schedules;
  (* The counting version admits more schedules. *)
  let t2 = run ~policy:(Sched.Replay [ 0; 1; 0; 1 ])
      "sem s = 0\nproc a { v(s); v(s) }\nproc b { p(s); p(s) }" in
  let sk2 = Skeleton.of_execution (Trace.to_execution t2) in
  Alcotest.(check bool) "counting admits more" true
    (Enumerate.count sk2 > 1)

let test_reach_agrees_with_enumerate () =
  List.iter
    (fun src ->
      let t = run ~policy:(Sched.Replay [ 0; 1; 0; 1 ]) src in
      let sk = Skeleton.of_execution (Trace.to_execution t) in
      Alcotest.(check int) "counts agree" (Enumerate.count sk)
        (Reach.schedule_count (Reach.create sk)))
    [
      "binsem s = 0\nproc a { v(s); v(s) }\nproc b { p(s); p(s) }";
      "sem s = 0\nproc a { v(s); v(s) }\nproc b { p(s); p(s) }";
    ]

let test_binary_deadlock_reachable () =
  (* Even though the observed schedule completes, the binary skeleton can
     wedge itself by scheduling both V's first. *)
  let t = run ~policy:(Sched.Replay [ 0; 1; 0; 1 ])
      "binsem s = 0\nproc a { v(s); v(s) }\nproc b { p(s); p(s) }" in
  let r = Reach.create (Skeleton.of_execution (Trace.to_execution t)) in
  Alcotest.(check bool) "deadlock reachable" true (Reach.deadlock_reachable r)

let test_theorems_binary () =
  List.iter
    (fun formula ->
      let c1 = Theorems.check_theorem_1_binary formula in
      let c2 = Theorems.check_theorem_2_binary formula in
      Alcotest.(check bool) "theorem 1 binary" true c1.Theorems.agrees;
      Alcotest.(check bool) "theorem 2 binary" true c2.Theorems.agrees)
    [
      Sat_gen.tiny_sat_3cnf ();
      Sat_gen.tiny_unsat_3cnf ();
      Cnf.make ~num_vars:2 [ [ 1; 1; 2 ]; [ -1; -1; 2 ] ];
    ]

let test_binary_reduction_structure () =
  let red = Reduction_sem.build ~binary:true (Sat_gen.tiny_unsat_3cnf ()) in
  Alcotest.(check bool) "flag set" true red.Reduction_sem.binary;
  Alcotest.(check int) "all semaphores binary"
    (List.length red.Reduction_sem.program.Ast.sem_init)
    (List.length red.Reduction_sem.program.Ast.binary_sems);
  let tr = Reduction_sem.trace red in
  Alcotest.(check bool) "trace completes" true
    (tr.Trace.outcome = Trace.Completed);
  Alcotest.(check (list string)) "valid execution" []
    (Execution.axiom_violations (Trace.to_execution tr))

let suite =
  [
    Alcotest.test_case "absorbed V" `Quick test_absorbed_v;
    Alcotest.test_case "interleaved V/P completes" `Quick
      test_interleaved_vp_completes;
    Alcotest.test_case "binary flag recorded" `Quick test_binary_flag_recorded;
    Alcotest.test_case "pp/parse roundtrip" `Quick test_pp_roundtrip;
    Alcotest.test_case "enumerate respects binary semantics" `Quick
      test_enumerate_respects_binary;
    Alcotest.test_case "reach agrees with enumerate" `Quick
      test_reach_agrees_with_enumerate;
    Alcotest.test_case "binary deadlock reachable" `Quick
      test_binary_deadlock_reachable;
    Alcotest.test_case "binary reduction structure" `Quick
      test_binary_reduction_structure;
    Alcotest.test_case "theorems 1-2 with binary semaphores" `Slow
      test_theorems_binary;
  ]
