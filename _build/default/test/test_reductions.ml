(* Structural tests of the Theorem 1/3 reduction constructions.  The
   theorem equivalences themselves are exercised in Test_theorems. *)

let formula_n2 =
  (* (x1|x1|x2) & (~x1|~x1|x2) *)
  Cnf.make ~num_vars:2 [ [ 1; 1; 2 ]; [ -1; -1; 2 ] ]

let test_sem_counts () =
  let red = Reduction_sem.build formula_n2 in
  Alcotest.(check int) "processes: 3n+3m+2" (Reduction_sem.expected_process_count formula_n2)
    (List.length red.Reduction_sem.program.Ast.procs);
  Alcotest.(check int) "processes concrete" 14
    (List.length red.Reduction_sem.program.Ast.procs);
  Alcotest.(check int) "semaphores: 3n+m+1" (Reduction_sem.expected_semaphore_count formula_n2)
    (List.length (Ast.semaphores red.Reduction_sem.program));
  Alcotest.(check int) "semaphores concrete" 9
    (List.length (Ast.semaphores red.Reduction_sem.program))

let test_sem_no_shared_vars () =
  let red = Reduction_sem.build formula_n2 in
  Alcotest.(check (list string)) "no shared variables" []
    (Ast.shared_variables red.Reduction_sem.program);
  (* Therefore the observed execution has no dependences. *)
  let tr = Reduction_sem.trace red in
  let x = Trace.to_execution tr in
  Alcotest.(check int) "D is empty" 0 (Rel.pair_count x.Execution.dependences)

let test_sem_trace_completes_and_validates () =
  let red = Reduction_sem.build formula_n2 in
  let tr = Reduction_sem.trace red in
  Alcotest.(check bool) "completed" true (tr.Trace.outcome = Trace.Completed);
  Alcotest.(check (list string)) "valid execution" []
    (Execution.axiom_violations (Trace.to_execution tr));
  let a, b = Reduction_sem.events_ab red tr in
  Alcotest.(check bool) "a and b distinct" true (a <> b)

let test_sem_occurrence_vs () =
  (* x1 occurs twice in clause 1; the true-assignment process must post two
     tokens for X1 plus one P(A1). *)
  let red = Reduction_sem.build formula_n2 in
  let assign_true =
    List.find (fun p -> p.Ast.name = "assign_true1")
      red.Reduction_sem.program.Ast.procs
  in
  Alcotest.(check int) "P(A1) + 2 V(X1)" 3 (List.length assign_true.Ast.body)

let test_sem_rejects_non_3cnf () =
  Alcotest.check_raises "non 3-CNF"
    (Invalid_argument "Reduction_sem.build: formula must be in 3-CNF")
    (fun () -> ignore (Reduction_sem.build (Cnf.make ~num_vars:1 [ [ 1 ] ])))

let test_evt_structure () =
  let red = Reduction_evt.build formula_n2 in
  (* n variable processes + 3m clause processes + 2. *)
  Alcotest.(check int) "top-level processes" (2 + 6 + 2)
    (List.length red.Reduction_evt.program.Ast.procs);
  Alcotest.(check bool) "uses event sync" true
    (Ast.uses_event_sync red.Reduction_evt.program);
  Alcotest.(check bool) "no semaphores" false
    (Ast.uses_semaphores red.Reduction_evt.program);
  Alcotest.(check (list string)) "no shared variables" []
    (Ast.shared_variables red.Reduction_evt.program)

let test_evt_trace_completes_and_validates () =
  let red = Reduction_evt.build formula_n2 in
  let tr = Reduction_evt.trace red in
  Alcotest.(check bool) "completed" true (tr.Trace.outcome = Trace.Completed);
  Alcotest.(check (list string)) "valid execution" []
    (Execution.axiom_violations (Trace.to_execution tr));
  let a, b = Reduction_evt.events_ab red tr in
  Alcotest.(check bool) "a and b distinct" true (a <> b)

let test_evt_trace_completes_various_formulas () =
  List.iter
    (fun f ->
      let red = Reduction_evt.build f in
      let tr = Reduction_evt.trace red in
      Alcotest.(check bool) "completed" true (tr.Trace.outcome = Trace.Completed))
    [
      Sat_gen.tiny_sat_3cnf ();
      Sat_gen.tiny_unsat_3cnf ();
      formula_n2;
      Cnf.make ~num_vars:3 [ [ 1; 2; 3 ]; [ -1; -2; -3 ]; [ 1; -2; 3 ] ];
    ]

let test_evt_mutual_exclusion_gadget () =
  (* In the observed trace of a 1-variable formula, only one of
     Post(X1)/Post(Xbar1) happens before the second pass (event a). *)
  let red = Reduction_evt.build (Sat_gen.tiny_sat_3cnf ()) in
  let tr = Reduction_evt.trace red in
  let a = (Trace.find_event tr "a").Event.id in
  let posts_before_a label =
    match Trace.find_event_opt tr label with
    | Some e -> e.Event.id < a
    | None -> false
  in
  Alcotest.(check bool) "not both literals posted before a" false
    (posts_before_a "Post(X1)" && posts_before_a "Post(Xbar1)")

let suite =
  [
    Alcotest.test_case "semaphore reduction counts" `Quick test_sem_counts;
    Alcotest.test_case "no shared variables / empty D" `Quick
      test_sem_no_shared_vars;
    Alcotest.test_case "semaphore trace completes" `Quick
      test_sem_trace_completes_and_validates;
    Alcotest.test_case "occurrence-many V operations" `Quick
      test_sem_occurrence_vs;
    Alcotest.test_case "rejects non-3CNF" `Quick test_sem_rejects_non_3cnf;
    Alcotest.test_case "event-style structure" `Quick test_evt_structure;
    Alcotest.test_case "event-style trace completes" `Quick
      test_evt_trace_completes_and_validates;
    Alcotest.test_case "event-style various formulas" `Quick
      test_evt_trace_completes_various_formulas;
    Alcotest.test_case "mutual exclusion gadget" `Quick
      test_evt_mutual_exclusion_gadget;
  ]
