let qcheck = QCheck_alcotest.to_alcotest

let roundtrip t =
  let t' = Trace_io.of_string (Trace_io.to_string t) in
  t'.Trace.events = t.Trace.events
  && Rel.equal t'.Trace.program_order t.Trace.program_order
  && t'.Trace.outcome = t.Trace.outcome
  && t'.Trace.var_names = t.Trace.var_names
  && t'.Trace.sem_names = t.Trace.sem_names
  && t'.Trace.sem_binary = t.Trace.sem_binary
  && t'.Trace.ev_names = t.Trace.ev_names
  && t'.Trace.sem_init = t.Trace.sem_init
  && t'.Trace.ev_init = t.Trace.ev_init
  && t'.Trace.final_store = t.Trace.final_store
  && t'.Trace.process_names = t.Trace.process_names

let test_roundtrip_fixtures () =
  List.iter
    (fun src ->
      let t = Interp.run (Parse.program src) in
      Alcotest.(check bool) ("roundtrip: " ^ src) true (roundtrip t))
    [
      "proc a { x := 1 }\nproc b { y := x }";
      "sem s = 1\nbinsem t = 0\nproc a { p(s); v(t) }\nproc b { p(t); v(s) }";
      "proc main { cobegin { post(e) } { wait(e); clear(e) } coend }";
      "proc main { l: skip; if 1 = 1 { x := 1 } else { skip } }";
      (* Deadlocking program: outcome must round-trip too. *)
      "sem s = 0\nproc a { p(s) }";
    ]

let test_label_quoting () =
  let t =
    Interp.run (Parse.program "proc a { weird := 1 + 2 * 3 }")
  in
  Alcotest.(check bool) "labels with spaces survive" true (roundtrip t);
  (* A label with embedded quotes/backslashes via the event constructor. *)
  let e =
    Event.make ~id:0 ~pid:0 ~seq:0 ~kind:Event.Computation
      ~label:"say \"hi\" \\ there\nnewline" ()
  in
  let t =
    {
      Trace.events = [| e |];
      program_order = Rel.create 1;
      outcome = Trace.Completed;
      violations = [];
      var_names = [||];
      sem_names = [||];
      ev_names = [||];
      sem_init = [||];
      sem_binary = [||];
      ev_init = [||];
      final_store = [];
      process_names = [ (0, "p") ];
    }
  in
  Alcotest.(check bool) "escapes survive" true (roundtrip t)

let test_analysis_equivalence () =
  (* The analysis of a reloaded trace matches the original. *)
  let t = Interp.run (Parse.program
    "sem s = 0\nproc a { x := 1; v(s) }\nproc b { p(s); y := x }") in
  let t' = Trace_io.of_string (Trace_io.to_string t) in
  let s = Relations.compute (Skeleton.of_execution (Trace.to_execution t)) in
  let s' = Relations.compute (Skeleton.of_execution (Trace.to_execution t')) in
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Relations.relation_name r)
        true
        (Rel.equal (Relations.to_rel s r) (Relations.to_rel s' r)))
    Relations.all_relations

let expect_failure name text =
  Alcotest.test_case name `Quick (fun () ->
      match Trace_io.of_string text with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail "expected parse failure")

let prop_random_roundtrip =
  QCheck.Test.make ~name:"random program traces roundtrip" ~count:100
    Gen_progs.arbitrary_program (fun prog ->
      roundtrip (Interp.run prog))

let suite =
  [
    Alcotest.test_case "fixture roundtrips" `Quick test_roundtrip_fixtures;
    Alcotest.test_case "label quoting" `Quick test_label_quoting;
    Alcotest.test_case "analysis equivalence" `Quick test_analysis_equivalence;
    expect_failure "missing header" "outcome completed\n";
    expect_failure "bad version" "eotrace 2\noutcome completed\n";
    expect_failure "unknown directive" "eotrace 1\noutcome completed\nbogus 1\n";
    expect_failure "missing outcome" "eotrace 1\nvars\n";
    expect_failure "bad event kind"
      "eotrace 1\noutcome completed\nevent 0 0 0 zap \"l\" reads writes\n";
    expect_failure "non-dense ids"
      "eotrace 1\noutcome completed\nevent 1 0 0 computation \"l\" reads writes\n";
    qcheck prop_random_roundtrip;
  ]
