let sample =
  Ast.program
    ~sem_init:[ ("s", 1) ]
    ~ev_init:[ ("e", false) ]
    ~var_init:[ ("x", 0) ]
    [
      Ast.proc "main"
        [
          Ast.Assign ("x", Expr.Add (Expr.Var "y", Expr.Int 1));
          Ast.If
            ( Expr.Eq (Expr.Var "x", Expr.Int 1),
              [ Ast.Sem_p "s"; Ast.Post "e" ],
              [ Ast.Wait "f" ] );
          Ast.While (Expr.Lt (Expr.Var "x", Expr.Int 3),
                     [ Ast.Assign ("x", Expr.Int 9) ]);
          Ast.Cobegin [ [ Ast.Sem_v "t" ]; [ Ast.Clear "e" ] ];
        ];
    ]

let test_semaphores () =
  (* Declared first, then first-use order. *)
  Alcotest.(check (list string)) "sems" [ "s"; "t" ] (Ast.semaphores sample);
  Alcotest.(check bool) "uses semaphores" true (Ast.uses_semaphores sample)

let test_event_variables () =
  Alcotest.(check (list string)) "events" [ "e"; "f" ]
    (Ast.event_variables sample);
  Alcotest.(check bool) "uses event sync" true (Ast.uses_event_sync sample)

let test_shared_variables () =
  (* Declared x first; y read in the first assignment. *)
  Alcotest.(check (list string)) "vars" [ "x"; "y" ]
    (Ast.shared_variables sample)

let test_stmt_count () =
  (* assign, if, p, post, wait, while, assign-in-while, cobegin, v, clear *)
  Alcotest.(check int) "static statements" 10 (Ast.stmt_count sample)

let test_no_sync () =
  let p = Ast.program [ Ast.proc "a" [ Ast.Skip None ] ] in
  Alcotest.(check bool) "no semaphores" false (Ast.uses_semaphores p);
  Alcotest.(check bool) "no events" false (Ast.uses_event_sync p);
  Alcotest.(check (list string)) "no vars" [] (Ast.shared_variables p)

let suite =
  [
    Alcotest.test_case "semaphores" `Quick test_semaphores;
    Alcotest.test_case "event variables" `Quick test_event_variables;
    Alcotest.test_case "shared variables" `Quick test_shared_variables;
    Alcotest.test_case "stmt count" `Quick test_stmt_count;
    Alcotest.test_case "no sync" `Quick test_no_sync;
  ]
