let qcheck = QCheck_alcotest.to_alcotest

let test_tiny_instances () =
  Alcotest.(check bool) "tiny sat" true
    (Sat_via_ordering.is_satisfiable (Sat_gen.tiny_sat_3cnf ()));
  Alcotest.(check bool) "tiny unsat" false
    (Sat_via_ordering.is_satisfiable (Sat_gen.tiny_unsat_3cnf ()))

let test_model_extraction () =
  let formula = Cnf.make ~num_vars:2 [ [ 1; 1; 2 ]; [ -1; -1; 2 ] ] in
  match Sat_via_ordering.solve formula with
  | None -> Alcotest.fail "expected a model"
  | Some assignment ->
      Alcotest.(check bool) "model satisfies" true (Cnf.eval assignment formula);
      (* Both clauses need x2. *)
      Alcotest.(check bool) "x2 true" true assignment.(2)

let test_unsat_no_model () =
  Alcotest.(check (option (array bool))) "no model" None
    (Sat_via_ordering.solve (Sat_gen.tiny_unsat_3cnf ()))

let random_tiny_3cnf =
  QCheck.make
    ~print:(fun f -> Format.asprintf "%a" Cnf.pp f)
    QCheck.Gen.(
      int_range 1 2 >>= fun nv ->
      list_size (int_range 1 2)
        (list_repeat 3 (int_range 1 nv >>= fun v -> oneofl [ v; -v ]))
      >>= fun clauses -> return (Cnf.make ~num_vars:nv clauses))

let prop_agrees_with_dpll =
  QCheck.Test.make ~name:"ordering oracle agrees with DPLL" ~count:15
    random_tiny_3cnf (fun f ->
      Sat_via_ordering.is_satisfiable f = Dpll.is_satisfiable f)

let prop_models_valid =
  QCheck.Test.make ~name:"extracted models satisfy the formula" ~count:15
    random_tiny_3cnf (fun f ->
      match Sat_via_ordering.solve f with
      | Some a -> Cnf.eval a f
      | None -> not (Dpll.is_satisfiable f))

let suite =
  [
    Alcotest.test_case "tiny instances" `Quick test_tiny_instances;
    Alcotest.test_case "model extraction" `Quick test_model_extraction;
    Alcotest.test_case "unsat gives no model" `Quick test_unsat_no_model;
    qcheck prop_agrees_with_dpll;
    qcheck prop_models_valid;
  ]
