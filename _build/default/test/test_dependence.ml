let mk ?(reads = []) ?(writes = []) ?(pid = 0) id =
  Event.make ~id ~pid ~seq:id ~kind:Event.Computation ~reads ~writes ()

let test_of_schedule () =
  let events =
    [|
      mk ~writes:[ 0 ] 0;  (* w x *)
      mk ~reads:[ 0 ] ~pid:1 1;  (* r x *)
      mk ~writes:[ 1 ] ~pid:2 2;  (* w y *)
      mk ~reads:[ 1 ] ~pid:3 3;  (* r y *)
    |]
  in
  let d = Dependence.of_schedule events [| 0; 1; 2; 3 |] in
  Alcotest.(check bool) "w x -> r x" true (Rel.mem d 0 1);
  Alcotest.(check bool) "w y -> r y" true (Rel.mem d 2 3);
  Alcotest.(check bool) "no cross-variable edge" false (Rel.mem d 0 3);
  Alcotest.(check int) "just two edges" 2 (Rel.pair_count d);
  (* Reverse schedule order reverses the direction. *)
  let d' = Dependence.of_schedule events [| 1; 0; 2; 3 |] in
  Alcotest.(check bool) "r x -> w x (anti-dependence)" true (Rel.mem d' 1 0)

let test_of_temporal () =
  let events = [| mk ~writes:[ 0 ] 0; mk ~reads:[ 0 ] ~pid:1 1 |] in
  let t = Rel.of_pairs 2 [ (0, 1) ] in
  let d = Dependence.of_temporal events t in
  Alcotest.(check bool) "edge follows temporal" true (Rel.mem d 0 1);
  (* Unordered conflicting events yield no dependence. *)
  let d_empty = Dependence.of_temporal events (Rel.create 2) in
  Alcotest.(check int) "no order, no edge" 0 (Rel.pair_count d_empty)

let test_restrict_to_variable () =
  let events =
    [| mk ~writes:[ 0; 1 ] 0; mk ~reads:[ 0 ] ~pid:1 1; mk ~reads:[ 1 ] ~pid:2 2 |]
  in
  let d = Dependence.of_schedule events [| 0; 1; 2 |] in
  Alcotest.(check int) "both edges" 2 (Rel.pair_count d);
  let dv0 = Dependence.restrict_to_variable events d 0 in
  Alcotest.(check (list (pair int int))) "only v0" [ (0, 1) ] (Rel.to_pairs dv0);
  let dv1 = Dependence.restrict_to_variable events d 1 in
  Alcotest.(check (list (pair int int))) "only v1" [ (0, 2) ] (Rel.to_pairs dv1)

let test_read_read_no_edge () =
  let events = [| mk ~reads:[ 0 ] 0; mk ~reads:[ 0 ] ~pid:1 1 |] in
  let d = Dependence.of_schedule events [| 0; 1 |] in
  Alcotest.(check int) "reads do not conflict" 0 (Rel.pair_count d)

let suite =
  [
    Alcotest.test_case "of_schedule" `Quick test_of_schedule;
    Alcotest.test_case "of_temporal" `Quick test_of_temporal;
    Alcotest.test_case "restrict_to_variable" `Quick test_restrict_to_variable;
    Alcotest.test_case "read-read no edge" `Quick test_read_read_no_edge;
  ]
