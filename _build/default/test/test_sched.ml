let choose_sequence policy steps enabled_fn =
  let chooser = Sched.make policy in
  List.init steps (fun step ->
      Sched.choose chooser ~step ~enabled:(enabled_fn step))

let test_priority () =
  Alcotest.(check (list int)) "always smallest" [ 1; 1; 1 ]
    (choose_sequence Sched.Priority 3 (fun _ -> [ 1; 2; 3 ]))

let test_round_robin_cycles () =
  Alcotest.(check (list int)) "cycles through enabled" [ 0; 1; 2; 0; 1; 2 ]
    (choose_sequence Sched.Round_robin 6 (fun _ -> [ 0; 1; 2 ]))

let test_round_robin_skips_blocked () =
  (* pid 1 disappears after the first step. *)
  let enabled = function 0 -> [ 0; 1; 2 ] | _ -> [ 0; 2 ] in
  Alcotest.(check (list int)) "skips" [ 0; 2; 0; 2 ]
    (choose_sequence Sched.Round_robin 4 enabled)

let test_random_deterministic () =
  let run seed =
    choose_sequence (Sched.Random seed) 10 (fun _ -> [ 0; 1; 2; 3 ])
  in
  Alcotest.(check (list int)) "same seed" (run 5) (run 5);
  Alcotest.(check bool) "stays in range" true
    (List.for_all (fun p -> p >= 0 && p <= 3) (run 5))

let test_replay_exact () =
  Alcotest.(check (list int)) "follows the script" [ 2; 0; 1 ]
    (choose_sequence (Sched.Replay [ 2; 0; 1 ]) 3 (fun _ -> [ 0; 1; 2 ]))

let test_replay_failures () =
  let chooser = Sched.make (Sched.Replay [ 5 ]) in
  (match Sched.choose chooser ~step:0 ~enabled:[ 0; 1 ] with
  | exception Sched.Replay_impossible { wanted = 5; _ } -> ()
  | _ -> Alcotest.fail "expected Replay_impossible");
  let chooser = Sched.make (Sched.Replay []) in
  (match Sched.choose chooser ~step:0 ~enabled:[ 0 ] with
  | exception Sched.Replay_impossible _ -> ()
  | _ -> Alcotest.fail "expected Replay_impossible on exhausted script")

let test_empty_enabled_rejected () =
  let chooser = Sched.make Sched.Priority in
  Alcotest.check_raises "empty" (Invalid_argument "Sched.choose: no enabled process")
    (fun () -> ignore (Sched.choose chooser ~step:0 ~enabled:[]))

let suite =
  [
    Alcotest.test_case "priority" `Quick test_priority;
    Alcotest.test_case "round robin cycles" `Quick test_round_robin_cycles;
    Alcotest.test_case "round robin skips blocked" `Quick
      test_round_robin_skips_blocked;
    Alcotest.test_case "random deterministic" `Quick test_random_deterministic;
    Alcotest.test_case "replay exact" `Quick test_replay_exact;
    Alcotest.test_case "replay failures" `Quick test_replay_failures;
    Alcotest.test_case "empty enabled rejected" `Quick
      test_empty_enabled_rejected;
  ]
