(* A two-process execution: p0 = [w (writes x); v (V s0)],
   p1 = [p (P s0); r (reads x)], scheduled w v p r. *)
let two_process_events () =
  [|
    Event.make ~id:0 ~pid:0 ~seq:0 ~kind:Event.Computation ~label:"w"
      ~writes:[ 0 ] ();
    Event.make ~id:1 ~pid:0 ~seq:1 ~kind:(Event.Sync (Event.Sem_v 0)) ();
    Event.make ~id:2 ~pid:1 ~seq:0 ~kind:(Event.Sync (Event.Sem_p 0)) ();
    Event.make ~id:3 ~pid:1 ~seq:1 ~kind:Event.Computation ~label:"r"
      ~reads:[ 0 ] ();
  |]

let two_process_po () = Rel.of_pairs 4 [ (0, 1); (2, 3) ]

let observed () =
  Execution.of_schedule ~events:(two_process_events ())
    ~program_order:(two_process_po ()) ~schedule:[| 0; 1; 2; 3 |] ()

let test_of_schedule () =
  let x = observed () in
  Alcotest.(check int) "events" 4 (Execution.n_events x);
  (* Total temporal order: 6 pairs. *)
  Alcotest.(check int) "|T|" 6 (Rel.pair_count x.Execution.temporal);
  (* One dependence: w writes x, r reads x. *)
  Alcotest.(check (list (pair int int))) "D" [ (0, 3) ]
    (Rel.to_pairs x.Execution.dependences);
  Alcotest.(check bool) "valid" true (Execution.is_valid x)

let test_schedule_not_permutation () =
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Execution.of_schedule: schedule is not a permutation")
    (fun () ->
      ignore
        (Execution.of_schedule ~events:(two_process_events ())
           ~program_order:(two_process_po ()) ~schedule:[| 0; 0; 2; 3 |] ()))

let test_axioms_detect_bad_temporal () =
  let events = two_process_events () in
  let po = two_process_po () in
  (* Temporal order that contradicts the program order of p0. *)
  let temporal = Rel.transitive_closure (Rel.of_pairs 4 [ (1, 0); (2, 3) ]) in
  let x =
    Execution.make ~events ~program_order:po ~temporal
      ~dependences:(Rel.create 4) ()
  in
  Alcotest.(check bool) "invalid" false (Execution.is_valid x);
  Alcotest.(check bool) "reports at least one violation" true
    (Execution.axiom_violations x <> [])

let test_axioms_detect_bad_dependence () =
  let events = two_process_events () in
  let po = two_process_po () in
  let temporal =
    Rel.transitive_closure (Rel.of_pairs 4 [ (0, 1); (1, 2); (2, 3) ])
  in
  (* D edge between non-conflicting events (1 and 2 are sync events). *)
  let d = Rel.of_pairs 4 [ (1, 2) ] in
  let x =
    Execution.make ~events ~program_order:po ~temporal ~dependences:d ()
  in
  Alcotest.(check bool) "invalid" false (Execution.is_valid x)

let test_processes_and_accessors () =
  let x = observed () in
  Alcotest.(check (list int)) "pids" [ 0; 1 ] (Execution.processes x);
  Alcotest.(check int) "p1 has two events" 2
    (List.length (Execution.events_of_process x 1));
  Alcotest.(check int) "one semaphore" 1 (Execution.num_semaphores x);
  Alcotest.(check int) "no event variables" 0 (Execution.num_eventvars x);
  Alcotest.(check string) "event accessor" "w" (Execution.event x 0).Event.label

let test_po_closure () =
  let x = observed () in
  let po = Execution.po_closure x in
  Alcotest.(check bool) "0 before 1" true (Rel.mem po 0 1);
  Alcotest.(check bool) "cross-process unordered" false (Rel.mem po 0 2)

let suite =
  [
    Alcotest.test_case "of_schedule builds a valid execution" `Quick
      test_of_schedule;
    Alcotest.test_case "schedule must be a permutation" `Quick
      test_schedule_not_permutation;
    Alcotest.test_case "axioms detect bad temporal order" `Quick
      test_axioms_detect_bad_temporal;
    Alcotest.test_case "axioms detect bad dependences" `Quick
      test_axioms_detect_bad_dependence;
    Alcotest.test_case "accessors" `Quick test_processes_and_accessors;
    Alcotest.test_case "po closure" `Quick test_po_closure;
  ]
