let qcheck = QCheck_alcotest.to_alcotest

let summary_of src =
  match Gen_progs.completed_trace (Parse.program src) with
  | Some t ->
      let sk = Skeleton.of_execution (Trace.to_execution t) in
      (t, Relations.compute sk)
  | None -> Alcotest.fail "fixture program deadlocked"

let producer_consumer =
  "sem s = 0\nproc producer { x := 1; v(s) }\nproc consumer { p(s); y := x }\nproc bystander { z := 42 }"

let test_quickstart_matrix () =
  let tr, s = summary_of producer_consumer in
  let id l = (Trace.find_event tr l).Event.id in
  let x = id "x := 1" and v = id "V(s)" and p = id "P(s)" in
  let y = id "y := x" and z = id "z := 42" in
  Alcotest.(check int) "5 schedules" 5 s.Relations.feasible_count;
  (* Chain is MHB all the way down. *)
  List.iter
    (fun (a, b) ->
      Alcotest.(check bool) "chain MHB" true (Relations.holds s Relations.MHB a b))
    [ (x, v); (v, p); (p, y); (x, y); (x, p); (v, y) ];
  (* The bystander is MCW with everything. *)
  List.iter
    (fun e ->
      Alcotest.(check bool) "bystander MCW" true
        (Relations.holds s Relations.MCW z e);
      Alcotest.(check bool) "bystander CHB" true
        (Relations.holds s Relations.CHB z e);
      Alcotest.(check bool) "bystander CHB (other way)" true
        (Relations.holds s Relations.CHB e z);
      Alcotest.(check bool) "bystander never MOW" false
        (Relations.holds s Relations.MOW z e))
    [ x; v; p; y ];
  (* Chain pairs are MOW and never CCW. *)
  Alcotest.(check bool) "x MOW y" true (Relations.holds s Relations.MOW x y);
  Alcotest.(check bool) "x CCW y" false (Relations.holds s Relations.CCW x y);
  (* Diagonal is empty. *)
  List.iter
    (fun r -> Alcotest.(check bool) "irreflexive" false (Relations.holds s r x x))
    Relations.all_relations

let test_to_rel_consistency () =
  let _, s = summary_of producer_consumer in
  List.iter
    (fun rel ->
      let m = Relations.to_rel s rel in
      let ok = ref true in
      for a = 0 to s.Relations.n - 1 do
        for b = 0 to s.Relations.n - 1 do
          if Rel.mem m a b <> Relations.holds s rel a b then ok := false
        done
      done;
      Alcotest.(check bool) "matrix matches holds" true !ok)
    Relations.all_relations

let test_limit_truncation () =
  let tr, _ = summary_of producer_consumer in
  let sk = Skeleton.of_execution (Trace.to_execution tr) in
  let s = Relations.compute ~limit:2 sk in
  Alcotest.(check bool) "truncated" true s.Relations.truncated;
  Alcotest.(check int) "capped" 2 s.Relations.feasible_count

let test_straightline_program () =
  let _, s = summary_of "proc only { x := 1; y := x; x := y }" in
  Alcotest.(check int) "single schedule" 1 s.Relations.feasible_count;
  Alcotest.(check bool) "0 MHB 1" true (Relations.holds s Relations.MHB 0 1);
  Alcotest.(check bool) "0 CCW 1" false (Relations.holds s Relations.CCW 0 1)

(* ------------------------------------------------------------------ *)
(* Structural properties of Table 1 over random programs               *)
(* ------------------------------------------------------------------ *)

let with_summary prog f =
  match Gen_progs.completed_trace prog with
  | None -> true
  | Some tr ->
      if Trace.n_events tr > 7 then true
      else
        let sk = Skeleton.of_execution (Trace.to_execution tr) in
        f sk (Relations.compute sk)

let forall_pairs n f =
  let ok = ref true in
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      if a <> b && not (f a b) then ok := false
    done
  done;
  !ok

let prop_must_implies_could =
  QCheck.Test.make ~name:"MHB ⊆ CHB, MCW ⊆ CCW, MOW ⊆ COW" ~count:120
    Gen_progs.arbitrary_program (fun prog ->
      with_summary prog (fun _ s ->
          s.Relations.feasible_count = 0
          || forall_pairs s.Relations.n (fun a b ->
                 (not (Relations.holds s Relations.MHB a b)
                 || Relations.holds s Relations.CHB a b)
                 && ((not (Relations.holds s Relations.MCW a b))
                    || Relations.holds s Relations.CCW a b)
                 && ((not (Relations.holds s Relations.MOW a b))
                    || Relations.holds s Relations.COW a b))))

let prop_partition =
  QCheck.Test.make
    ~name:"per class: comparable or incomparable — CCW ∪ COW covers all pairs"
    ~count:120 Gen_progs.arbitrary_program (fun prog ->
      with_summary prog (fun _ s ->
          s.Relations.feasible_count = 0
          || forall_pairs s.Relations.n (fun a b ->
                 Relations.holds s Relations.CCW a b
                 || Relations.holds s Relations.COW a b)))

let prop_mhb_antisymmetric =
  QCheck.Test.make ~name:"MHB is antisymmetric and transitive" ~count:120
    Gen_progs.arbitrary_program (fun prog ->
      with_summary prog (fun _ s ->
          let mhb = Relations.to_rel s Relations.MHB in
          Rel.is_antisymmetric mhb && Rel.is_transitive mhb))

let prop_symmetry_of_cw_ow =
  QCheck.Test.make ~name:"CW and OW relations are symmetric" ~count:120
    Gen_progs.arbitrary_program (fun prog ->
      with_summary prog (fun _ s ->
          forall_pairs s.Relations.n (fun a b ->
              List.for_all
                (fun r -> Relations.holds s r a b = Relations.holds s r b a)
                [ Relations.MCW; Relations.CCW; Relations.MOW; Relations.COW ])))

let prop_mhb_agrees_with_reach =
  QCheck.Test.make ~name:"matrix MHB/CHB = reach engine decisions" ~count:80
    Gen_progs.arbitrary_program (fun prog ->
      with_summary prog (fun sk s ->
          let r = Reach.create sk in
          forall_pairs s.Relations.n (fun a b ->
              Relations.holds s Relations.MHB a b = Reach.must_before r a b
              && Relations.holds s Relations.CHB a b = Reach.exists_before r a b)))

let prop_reduced_equals_full =
  QCheck.Test.make
    ~name:"compute_reduced = compute (all fields that matter)" ~count:100
    Gen_progs.arbitrary_program (fun prog ->
      with_summary prog (fun sk s ->
          let r = Relations.compute_reduced sk in
          r.Relations.n = s.Relations.n
          && r.Relations.feasible_count = s.Relations.feasible_count
          && r.Relations.distinct_classes = s.Relations.distinct_classes
          && Rel.equal r.Relations.before_some s.Relations.before_some
          && Rel.equal r.Relations.comparable_some s.Relations.comparable_some
          && Rel.equal r.Relations.incomparable_some
               s.Relations.incomparable_some))

let prop_observed_dominates =
  QCheck.Test.make
    ~name:"pairs ordered in the pinned observed po are CHB in that direction"
    ~count:100 Gen_progs.arbitrary_program (fun prog ->
      with_summary prog (fun sk s ->
          let po =
            Pinned.po_of_schedule sk
              (Array.init sk.Skeleton.n Fun.id)
          in
          forall_pairs s.Relations.n (fun a b ->
              (not (Rel.mem po a b)) || Relations.holds s Relations.CHB a b)))

let suite =
  [
    Alcotest.test_case "quickstart matrix" `Quick test_quickstart_matrix;
    Alcotest.test_case "to_rel consistency" `Quick test_to_rel_consistency;
    Alcotest.test_case "limit truncation" `Quick test_limit_truncation;
    Alcotest.test_case "straight-line program" `Quick test_straightline_program;
    qcheck prop_must_implies_could;
    qcheck prop_partition;
    qcheck prop_mhb_antisymmetric;
    qcheck prop_symmetry_of_cw_ow;
    qcheck prop_mhb_agrees_with_reach;
    qcheck prop_reduced_equals_full;
    qcheck prop_observed_dominates;
  ]
