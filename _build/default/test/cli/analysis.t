The full Table-1 analysis of the producer/consumer pipeline:

  $ eventorder analyze pipeline.eo
  trace: 5 events, completed
    0  producer     x := 1
    1  bystander    z := 42
    2  producer     V(s)
    3  consumer     P(s)
    4  consumer     y := x
  
  5 feasible schedules in 1 distinct class
  
  must-have-happened-before (MHB):
           0  1  2  3  4 
   x := 1  .  -  X  X  X 
  z := 42  -  .  -  -  - 
     V(s)  -  -  .  X  X 
     P(s)  -  -  -  .  X 
   y := x  -  -  -  -  . 
  
  could-have-happened-before (CHB):
           0  1  2  3  4 
   x := 1  .  X  X  X  X 
  z := 42  X  .  X  X  X 
     V(s)  -  X  .  X  X 
     P(s)  -  X  -  .  X 
   y := x  -  X  -  -  . 
  
  must-have-been-concurrent-with (MCW):
           0  1  2  3  4 
   x := 1  .  X  -  -  - 
  z := 42  X  .  X  X  X 
     V(s)  -  X  .  -  - 
     P(s)  -  X  -  .  - 
   y := x  -  X  -  -  . 
  
  could-have-been-concurrent-with (CCW):
           0  1  2  3  4 
   x := 1  .  X  -  -  - 
  z := 42  X  .  X  X  X 
     V(s)  -  X  .  -  - 
     P(s)  -  X  -  .  - 
   y := x  -  X  -  -  . 
  
  must-have-been-ordered-with (MOW):
           0  1  2  3  4 
   x := 1  .  -  X  X  X 
  z := 42  -  .  -  -  - 
     V(s)  X  -  .  X  X 
     P(s)  X  -  X  .  X 
   y := x  X  -  X  X  . 
  
  could-have-been-ordered-with (COW):
           0  1  2  3  4 
   x := 1  .  -  X  X  X 
  z := 42  -  .  -  -  - 
     V(s)  X  -  .  X  X 
     P(s)  X  -  X  .  X 
   y := x  X  -  X  X  . 
  
  
  max concurrency (width of the observed pinned order): 2 of 5 events

Counting and deadlock checking:

  $ eventorder schedules pipeline.eo
  events:                   5
  feasible schedules:       5
  reachable states:         10
  deadlock reachable:       false

One labelled pair, with a witness schedule for the reversed order:

  $ eventorder order pipeline.eo --before "z := 42" --after "x := 1"
  'z := 42' MHB 'x := 1':                  false
  'z := 42' CHB 'x := 1':                  true
  'x := 1' CHB 'z := 42':                  true
  'z := 42' CCW 'x := 1':                  true
  'z := 42' MOW 'x := 1':                  false
  witness schedule running 'x := 1' before 'z := 42':
     0  x := 1
     1  z := 42
     2  V(s)
     3  P(s)
     4  y := x

Race reporting:

  $ eventorder races pipeline.eo
  candidate conflicting pairs: 1
    race between x := 1 (event 0) and y := x (event 4) on v0
  apparent races (vector clock): 0
  feasible races (exact): 0
  first races (debugging frontier): 0

The one-shot report:

  $ eventorder report pipeline.eo
  === execution ===
  trace: 5 events, completed
    0  producer     x := 1
    1  bystander    z := 42
    2  producer     V(s)
    3  consumer     P(s)
    4  consumer     y := x
  
  === feasible executions ===
  feasible schedules: 5
  reachable states:   10
  reachable deadlock: none
  
  === ordering relations (pair counts) ===
  distinct classes:   1
  must-have-happened-before          6 pairs
  could-have-happened-before         14 pairs
  must-have-been-concurrent-with     8 pairs
  could-have-been-concurrent-with    8 pairs
  must-have-been-ordered-with        12 pairs
  could-have-been-ordered-with       12 pairs
  max concurrency (width): 2 of 5 events; critical path: 4; speedup limit: 1.25
  
  === races ===
  apparent:  0
  feasible:  0
  first:     0
  
  === polynomial approximations vs exact MHB ===
  exact MHB pairs:            6
  missed by the task graph:   4
  HMW phase-3 safe pairs:     6
