  $ eventorder record pipeline.eo -o saved.eotrace
  $ eventorder schedules saved.eotrace
  $ eventorder dot pipeline.eo --kind pinned
  $ eventorder fuzz --count 10 --seed 1
