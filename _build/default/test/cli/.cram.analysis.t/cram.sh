  $ eventorder analyze pipeline.eo
  $ eventorder schedules pipeline.eo
  $ eventorder order pipeline.eo --before "z := 42" --after "x := 1"
  $ eventorder races pipeline.eo
  $ eventorder report pipeline.eo
