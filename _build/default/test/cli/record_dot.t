Recording a trace and re-analysing the saved file:

  $ eventorder record pipeline.eo -o saved.eotrace
  recorded 5 events to saved.eotrace

  $ eventorder schedules saved.eotrace
  events:                   5
  feasible schedules:       5
  reachable states:         10
  deadlock reachable:       false

DOT output for the observed pinned order:

  $ eventorder dot pipeline.eo --kind pinned
  digraph pinned {
    rankdir=TB;
    subgraph cluster_p0 {
      label="process 0"; style=dotted;
      e0 [label="x := 1", shape=ellipse];
      e2 [label="V(s)", shape=box];
    }
    subgraph cluster_p1 {
      label="process 1"; style=dotted;
      e3 [label="P(s)", shape=box];
      e4 [label="y := x", shape=ellipse];
    }
    subgraph cluster_p2 {
      label="process 2"; style=dotted;
      e1 [label="z := 42", shape=ellipse];
    }
    e0 -> e2;
    e3 -> e4;
    e2 -> e3 [style=bold, color=blue];
    e0 -> e4 [style=dashed, color=red];
  }

Differential fuzzing of the engines (small, deterministic):

  $ eventorder fuzz --count 10 --seed 1
  fuzz: 10 programs, 9 exhaustively cross-checked, 0 failures
