Machine-checking Theorems 1-4 on the tiny instances:

  $ eventorder theorems --formula tiny-unsat
  Theorem 1: formula (x1 | x1 | x1) & (~x1 | ~x1 | ~x1) is UNSAT; a MHB b holds: true; equivalence VERIFIED (28 events)
  Theorem 2: formula (x1 | x1 | x1) & (~x1 | ~x1 | ~x1) is UNSAT; b CHB a holds: false; equivalence VERIFIED (28 events)
  Theorem 3: formula (x1 | x1 | x1) & (~x1 | ~x1 | ~x1) is UNSAT; a MHB b holds: true; equivalence VERIFIED (28 events)
  Theorem 4: formula (x1 | x1 | x1) & (~x1 | ~x1 | ~x1) is UNSAT; b CHB a holds: false; equivalence VERIFIED (28 events)
  all theorem equivalences verified

  $ eventorder theorems --formula tiny-sat
  Theorem 1: formula (x1 | x1 | x1) is SAT; a MHB b holds: false; equivalence VERIFIED (18 events)
  Theorem 2: formula (x1 | x1 | x1) is SAT; b CHB a holds: true; equivalence VERIFIED (18 events)
  Theorem 3: formula (x1 | x1 | x1) is SAT; a MHB b holds: false; equivalence VERIFIED (21 events)
  Theorem 4: formula (x1 | x1 | x1) is SAT; b CHB a holds: true; equivalence VERIFIED (21 events)
  all theorem equivalences verified

The reduction built from a DIMACS file, decided and cross-checked:

  $ eventorder reduce --style sem --decide tiny_unsat.cnf | tail -3
  
  Theorem 1: formula (x1 | x1 | x1) & (~x1 | ~x1 | ~x1) is UNSAT; a MHB b holds: true; equivalence VERIFIED (28 events)
  Theorem 2: formula (x1 | x1 | x1) & (~x1 | ~x1 | ~x1) is UNSAT; b CHB a holds: false; equivalence VERIFIED (28 events)

  $ eventorder reduce --style event --decide tiny_unsat.cnf | tail -3
  
  Theorem 3: formula (x1 | x1 | x1) & (~x1 | ~x1 | ~x1) is UNSAT; a MHB b holds: true; equivalence VERIFIED (28 events)
  Theorem 4: formula (x1 | x1 | x1) & (~x1 | ~x1 | ~x1) is UNSAT; b CHB a holds: false; equivalence VERIFIED (28 events)
