  $ cat > bad.eo <<'PROG'
  > proc main {
  >   skip
  >   ??
  > }
  > PROG
  $ eventorder analyze bad.eo
  $ cat > big.eo <<'PROG'
  > proc a { x := 1; x := 2; x := 3; x := 4; x := 5; x := 6 }
  > PROG
  $ eventorder analyze --max-events 5 big.eo
  $ eventorder dot big.eo --kind nonsense
  $ cat > loopy.eo <<'PROG'
  > proc a { while 1 = 1 { skip } }
  > PROG
  $ eventorder explore loopy.eo
