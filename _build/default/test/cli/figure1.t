The Figure 1 demonstration is fully deterministic:

  $ eventorder figure1
  proc main {
    cobegin
      { post(E); x := 1 }
      { if x = 1 { post(E) } else { wait(E) } }
      { wait(E) }
    coend
  }
  
  trace: 7 events, completed
    0  main         fork
    1  main/0       Post(E)
    2  main/0       x := 1
    3  main/1       if (x = 1)
    4  main/1       Post(E)
    5  main/2       Wait(E)
    6  main         join
  
  post1 -> post2       exact MHB: true    task graph claims: false
  post1 -> wait3       exact MHB: true    task graph claims: false
  write_x -> post2     exact MHB: true    task graph claims: false
