  $ eventorder theorems --formula tiny-unsat
  $ eventorder theorems --formula tiny-sat
  $ eventorder reduce --style sem --decide tiny_unsat.cnf | tail -3
  $ eventorder reduce --style event --decide tiny_unsat.cnf | tail -3
