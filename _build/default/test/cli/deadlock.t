A program whose observed run completes but whose feasible-execution space
contains a wedged state (the two-lock inversion):

  $ cat > locks.eo <<'PROG'
  > binsem a = 1
  > binsem b = 1
  > proc one { p(a); p(b); x := 1; v(b); v(a) }
  > proc two { p(b); p(a); y := 1; v(a); v(b) }
  > PROG

  $ eventorder schedules --policy priority locks.eo
  events:                   10
  feasible schedules:       4
  reachable states:         23
  deadlock reachable:       true

The one-shot report names a wedging prefix:

  $ eventorder report --policy priority locks.eo | grep deadlock
  reachable deadlock: yes, e.g. after [P(a); P(b)]

Program-level exploration of the same program — all executions, not just
reorderings of one trace:

  $ eventorder explore locks.eo
  completed executions:  4
  deadlocked executions: 2
  machine states:        23
  assertion violation reachable: false
  reachable final stores (1):
    x=1, y=1

Assertions turn the explorer into a small model checker:

  $ cat > racy.eo <<'PROG'
  > proc w { x := 1; x := 2 }
  > proc r { assert x != 1 }
  > PROG

  $ eventorder explore racy.eo
  completed executions:  3
  deadlocked executions: 0
  machine states:        6
  assertion violation reachable: true
  reachable final stores (1):
    x=2
