  $ eventorder figure1
