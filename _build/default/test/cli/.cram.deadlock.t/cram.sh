  $ cat > locks.eo <<'PROG'
  > binsem a = 1
  > binsem b = 1
  > proc one { p(a); p(b); x := 1; v(b); v(a) }
  > proc two { p(b); p(a); y := 1; v(a); v(b) }
  > PROG
  $ eventorder schedules --policy priority locks.eo
  $ eventorder report --policy priority locks.eo | grep deadlock
  $ eventorder explore locks.eo
  $ cat > racy.eo <<'PROG'
  > proc w { x := 1; x := 2 }
  > proc r { assert x != 1 }
  > PROG
  $ eventorder explore racy.eo
