let env = function "x" -> 3 | "y" -> 0 | _ -> 0

let test_arith () =
  let e = Expr.Add (Expr.Var "x", Expr.Mul (Expr.Int 2, Expr.Int 5)) in
  Alcotest.(check int) "3 + 2*5" 13 (Expr.eval env e);
  Alcotest.(check int) "sub" (-2) (Expr.eval env Expr.(Sub (Int 1, Int 3)))

let test_comparisons () =
  Alcotest.(check int) "eq true" 1 (Expr.eval env Expr.(Eq (Var "x", Int 3)));
  Alcotest.(check int) "eq false" 0 (Expr.eval env Expr.(Eq (Var "x", Int 4)));
  Alcotest.(check int) "lt" 1 (Expr.eval env Expr.(Lt (Int 2, Var "x")));
  Alcotest.(check int) "le" 1 (Expr.eval env Expr.(Le (Var "x", Int 3)));
  Alcotest.(check int) "ne" 1 (Expr.eval env Expr.(Ne (Var "x", Var "y")))

let test_logic () =
  Alcotest.(check int) "and short" 0
    (Expr.eval env Expr.(And (Var "y", Int 1)));
  Alcotest.(check int) "or" 1 (Expr.eval env Expr.(Or (Var "y", Int 7)));
  Alcotest.(check int) "not" 1 (Expr.eval env Expr.(Not (Var "y")));
  Alcotest.(check bool) "is_true" true (Expr.is_true 5);
  Alcotest.(check bool) "is_true 0" false (Expr.is_true 0)

let test_vars () =
  let e = Expr.(And (Eq (Var "x", Int 1), Or (Var "y", Var "x"))) in
  Alcotest.(check (list string)) "first-use order, deduped" [ "x"; "y" ]
    (Expr.vars e);
  Alcotest.(check (list string)) "constant has none" [] (Expr.vars (Expr.Int 4))

let test_pp () =
  Alcotest.(check string) "render" "(x + 1)"
    (Format.asprintf "%a" Expr.pp Expr.(Add (Var "x", Int 1)))

let suite =
  [
    Alcotest.test_case "arithmetic" `Quick test_arith;
    Alcotest.test_case "comparisons" `Quick test_comparisons;
    Alcotest.test_case "logic" `Quick test_logic;
    Alcotest.test_case "vars" `Quick test_vars;
    Alcotest.test_case "pretty printing" `Quick test_pp;
  ]
