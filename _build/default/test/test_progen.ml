let test_deterministic () =
  let cfg = Progen.default_config in
  let p1 = Progen.generate cfg ~seed:42 in
  let p2 = Progen.generate cfg ~seed:42 in
  Alcotest.(check bool) "same seed same program" true (p1 = p2);
  let p3 = Progen.generate cfg ~seed:43 in
  Alcotest.(check bool) "different seeds differ (eventually)" true
    (p1 <> p3 || Progen.generate cfg ~seed:44 <> p1)

let test_respects_config () =
  let cfg =
    {
      Progen.processes = (4, 4);
      stmts_per_process = (2, 2);
      shared_vars = 1;
      semaphores = 0;
      binary_semaphores = false;
      event_variables = 0;
    }
  in
  let p = Progen.generate cfg ~seed:7 in
  Alcotest.(check int) "process count" 4 (List.length p.Ast.procs);
  List.iter
    (fun proc ->
      Alcotest.(check int) "stmt count" 2 (List.length proc.Ast.body))
    p.Ast.procs;
  Alcotest.(check bool) "no semaphores" false (Ast.uses_semaphores p);
  Alcotest.(check bool) "no event sync" false (Ast.uses_event_sync p)

let test_binary_config () =
  let cfg = { Progen.default_config with Progen.binary_semaphores = true } in
  let p = Progen.generate cfg ~seed:3 in
  Alcotest.(check bool) "binary sems declared" true
    (List.length p.Ast.binary_sems = List.length p.Ast.sem_init)

let test_generate_completing () =
  for seed = 0 to 20 do
    let t = Progen.generate_completing Progen.default_config ~seed in
    Alcotest.(check bool) "completed" true (t.Trace.outcome = Trace.Completed);
    Alcotest.(check (list string)) "valid" []
      (Execution.axiom_violations (Trace.to_execution t))
  done

let suite =
  [
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "respects config" `Quick test_respects_config;
    Alcotest.test_case "binary config" `Quick test_binary_config;
    Alcotest.test_case "generate completing" `Quick test_generate_completing;
  ]
