let qcheck = QCheck_alcotest.to_alcotest

let analyze src = Static_order.analyze (Parse.program src)

let stmt_id t fragment =
  match
    List.filter
      (fun (_, desc) ->
        let len = String.length fragment in
        String.length desc >= len
        && String.sub desc (String.length desc - len) len = fragment)
      (Static_order.statements t)
  with
  | [ (id, _) ] -> id
  | [] -> Alcotest.failf "no statement matching %s" fragment
  | _ -> Alcotest.failf "ambiguous statement %s" fragment

let test_sequential () =
  let t = analyze "proc a { x := 1; x := 2; x := 3 }" in
  let s1 = stmt_id t "x := 1" and s2 = stmt_id t "x := 2" in
  let s3 = stmt_id t "x := 3" in
  Alcotest.(check bool) "1 before 2" true (Static_order.guaranteed_before t s1 s2);
  Alcotest.(check bool) "1 before 3" true (Static_order.guaranteed_before t s1 s3);
  Alcotest.(check bool) "3 not before 1" false
    (Static_order.guaranteed_before t s3 s1);
  Alcotest.(check bool) "irreflexive" false
    (Static_order.guaranteed_before t s1 s1)

let test_single_post_wait () =
  let t = analyze "proc a { x := 1; post(e) }\nproc b { wait(e); y := 2 }" in
  Alcotest.(check bool) "post before wait" true
    (Static_order.guaranteed_before t (stmt_id t "Post(e)") (stmt_id t "Wait(e)"));
  Alcotest.(check bool) "x:=1 before y:=2 transitively" true
    (Static_order.guaranteed_before t (stmt_id t "x := 1") (stmt_id t "y := 2"))

let test_two_posts_intersect () =
  let t =
    analyze
      "proc p1 { a: skip; post(e) }\nproc p2 { b: skip; post(e) }\nproc w { wait(e) }"
  in
  let wait = stmt_id t "Wait(e)" in
  (* Neither post individually is guaranteed: either could trigger. *)
  Alcotest.(check bool) "a not guaranteed" false
    (Static_order.guaranteed_before t (stmt_id t "p1: a") wait);
  Alcotest.(check bool) "b not guaranteed" false
    (Static_order.guaranteed_before t (stmt_id t "p2: b") wait)

let test_initially_set_event () =
  let t = analyze "event e = set\nproc a { post(e) }\nproc b { wait(e); y := 1 }" in
  (* The wait may pass on the initial state: the post guarantees nothing. *)
  Alcotest.(check bool) "post not guaranteed" false
    (Static_order.guaranteed_before t (stmt_id t "Post(e)") (stmt_id t "Wait(e)"))

let test_fork_join () =
  let t = analyze "proc m { x := 0; cobegin { y := 1 } { z := 2 } coend; w := 3 }" in
  let after = stmt_id t "w := 3" in
  Alcotest.(check bool) "branch 1 before join successor" true
    (Static_order.guaranteed_before t (stmt_id t "y := 1") after);
  Alcotest.(check bool) "branch 2 before join successor" true
    (Static_order.guaranteed_before t (stmt_id t "z := 2") after);
  Alcotest.(check bool) "branches unordered" false
    (Static_order.guaranteed_before t (stmt_id t "y := 1") (stmt_id t "z := 2"))

let test_if_intersection () =
  let t =
    analyze
      "proc m { if x = 1 { a: skip } else { b: skip }; c: skip }"
  in
  let after = stmt_id t "m: c" in
  (* Only one branch runs: neither branch statement is guaranteed. *)
  Alcotest.(check bool) "then-branch not guaranteed" false
    (Static_order.guaranteed_before t (stmt_id t "m: a") after);
  Alcotest.(check bool) "cond guaranteed" true
    (Static_order.guaranteed_before t (stmt_id t "if (x = 1)") after)

let test_unsupported () =
  List.iter
    (fun src ->
      match Static_order.analyze (Parse.program src) with
      | exception Static_order.Unsupported _ -> ()
      | _ -> Alcotest.failf "expected Unsupported for %s" src)
    [
      "proc a { p(s) }";
      "proc a { v(s) }";
      "proc a { while x < 1 { skip } }";
      "proc a { clear(e) }";
    ]

(* Soundness: static claims, projected onto an observed trace, are inside
   the exact MHB relation. *)
let loopfree_gen =
  QCheck.Gen.(
    let stmt =
      frequency
        [
          (3, oneofl [ Ast.Assign ("x", Expr.Int 1);
                       Ast.Assign ("y", Expr.Var "x");
                       Ast.Skip None ]);
          (2, oneofl [ Ast.Post "e"; Ast.Wait "e"; Ast.Post "f"; Ast.Wait "f" ]);
        ]
    in
    int_range 2 3 >>= fun n_procs ->
    list_repeat n_procs (list_size (int_range 1 3) stmt) >>= fun bodies ->
    return
      (Ast.program
         (List.mapi (fun i b -> Ast.proc (Printf.sprintf "p%d" i) b) bodies)))

let arbitrary_loopfree =
  QCheck.make ~print:(fun p -> Format.asprintf "%a" Ast.pp p) loopfree_gen

let prop_claims_sound =
  QCheck.Test.make ~name:"static claims ⊆ exact MHB on observed traces"
    ~count:120 arbitrary_loopfree (fun prog ->
      match Gen_progs.completed_trace prog with
      | None -> true
      | Some trace ->
          if Trace.n_events trace > 8 then true
          else begin
            let t = Static_order.analyze prog in
            let d = Decide.create (Trace.to_execution trace) in
            List.for_all
              (fun (ea, eb) -> Decide.mhb d ea eb)
              (Static_order.claims_on_trace t trace)
          end)

let prop_guaranteed_rel_is_order =
  QCheck.Test.make ~name:"static guaranteed relation is a strict order"
    ~count:120 arbitrary_loopfree (fun prog ->
      let t = Static_order.analyze prog in
      let r = Static_order.guaranteed_rel t in
      (* Unreachable waits claim everything including cycles with their own
         descendants; restrict the check to programs without them. *)
      Rel.is_irreflexive r)

let suite =
  [
    Alcotest.test_case "sequential" `Quick test_sequential;
    Alcotest.test_case "single post/wait" `Quick test_single_post_wait;
    Alcotest.test_case "two posts intersect" `Quick test_two_posts_intersect;
    Alcotest.test_case "initially set event" `Quick test_initially_set_event;
    Alcotest.test_case "fork/join" `Quick test_fork_join;
    Alcotest.test_case "if intersection" `Quick test_if_intersection;
    Alcotest.test_case "unsupported constructs" `Quick test_unsupported;
    qcheck prop_claims_sound;
    qcheck prop_guaranteed_rel_is_order;
  ]
