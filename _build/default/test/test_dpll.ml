let qcheck = QCheck_alcotest.to_alcotest

let check_sat_assignment f = function
  | Dpll.Sat a -> Cnf.eval a f
  | Dpll.Unsat -> false

let test_trivial () =
  let f = Cnf.make ~num_vars:1 [ [ 1 ] ] in
  Alcotest.(check bool) "x1 satisfiable with valid witness" true
    (check_sat_assignment f (Dpll.solve f));
  let g = Cnf.make ~num_vars:1 [ [ 1 ]; [ -1 ] ] in
  Alcotest.(check bool) "x1 & ~x1 unsat" false (Dpll.is_satisfiable g)

let test_empty_cases () =
  Alcotest.(check bool) "no clauses is sat" true
    (Dpll.is_satisfiable (Cnf.make ~num_vars:3 []));
  Alcotest.(check bool) "empty clause is unsat" false
    (Dpll.is_satisfiable (Cnf.make ~num_vars:3 [ [] ]))

let test_fixed_families () =
  Alcotest.(check bool) "all sign patterns over 3 vars unsat" false
    (Dpll.is_satisfiable (Sat_gen.unsat_3cnf_small ()));
  Alcotest.(check bool) "small sat instance" true
    (Dpll.is_satisfiable (Sat_gen.sat_3cnf_small ()))

let test_pigeonhole () =
  for n = 1 to 4 do
    Alcotest.(check bool)
      (Printf.sprintf "pigeonhole %d unsat" n)
      false
      (Dpll.is_satisfiable (Sat_gen.pigeonhole n))
  done

let test_stats () =
  let f = Sat_gen.random_3cnf ~seed:7 ~num_vars:8 ~num_clauses:30 in
  let _, stats = Dpll.solve_with_stats f in
  Alcotest.(check bool) "some work recorded" true
    (stats.Dpll.decisions >= 0 && stats.Dpll.max_depth > 0)

let test_count_models () =
  (* x1 | x2 over two variables: 3 of 4 assignments. *)
  Alcotest.(check int) "x1|x2 has 3 models" 3
    (Dpll.count_models (Cnf.make ~num_vars:2 [ [ 1; 2 ] ]));
  Alcotest.(check int) "tautology-free count" 4
    (Dpll.count_models (Cnf.make ~num_vars:2 []));
  Alcotest.(check int) "unsat has 0 models" 0
    (Dpll.count_models (Cnf.make ~num_vars:2 [ [ 1 ]; [ -1 ] ]))

let random_small_cnf =
  QCheck.make
    ~print:(fun (nv, clauses) ->
      Format.asprintf "%a" Cnf.pp (Cnf.make ~num_vars:nv clauses))
    QCheck.Gen.(
      int_range 1 6 >>= fun nv ->
      list_size (int_range 0 12)
        (list_size (int_range 1 3)
           (int_range 1 nv >>= fun v -> oneofl [ v; -v ]))
      >>= fun clauses -> return (nv, clauses))

let prop_agrees_with_brute_force =
  QCheck.Test.make ~name:"DPLL agrees with brute force" ~count:300
    random_small_cnf (fun (nv, clauses) ->
      let f = Cnf.make ~num_vars:nv clauses in
      let dpll = Dpll.is_satisfiable f in
      let brute =
        match Dpll.brute_force f with Dpll.Sat _ -> true | Dpll.Unsat -> false
      in
      dpll = brute)

let prop_sat_witness_valid =
  QCheck.Test.make ~name:"SAT witness satisfies the formula" ~count:300
    random_small_cnf (fun (nv, clauses) ->
      let f = Cnf.make ~num_vars:nv clauses in
      match Dpll.solve f with
      | Dpll.Unsat -> true
      | Dpll.Sat a -> Cnf.eval a f)

let prop_count_consistent_with_sat =
  QCheck.Test.make ~name:"count_models > 0 iff satisfiable" ~count:200
    random_small_cnf (fun (nv, clauses) ->
      let f = Cnf.make ~num_vars:nv clauses in
      Dpll.count_models f > 0 = Dpll.is_satisfiable f)

let prop_planted_always_sat =
  QCheck.Test.make ~name:"planted instances are satisfiable" ~count:50
    QCheck.(pair (int_range 3 10) (int_range 1 30))
    (fun (nv, nc) ->
      Dpll.is_satisfiable
        (Sat_gen.planted_3cnf ~seed:(nv + (100 * nc)) ~num_vars:nv
           ~num_clauses:nc))

let suite =
  [
    Alcotest.test_case "trivial formulas" `Quick test_trivial;
    Alcotest.test_case "empty cases" `Quick test_empty_cases;
    Alcotest.test_case "fixed families" `Quick test_fixed_families;
    Alcotest.test_case "pigeonhole" `Quick test_pigeonhole;
    Alcotest.test_case "stats" `Quick test_stats;
    Alcotest.test_case "count models" `Quick test_count_models;
    qcheck prop_agrees_with_brute_force;
    qcheck prop_sat_witness_valid;
    qcheck prop_count_consistent_with_sat;
    qcheck prop_planted_always_sat;
  ]
