let run ?policy src = Interp.run ?policy (Parse.program src)

let test_sequential () =
  let t = run "proc main { x := 1; x := x + 2; y := x * 2 }" in
  Alcotest.(check bool) "completed" true (t.Trace.outcome = Trace.Completed);
  Alcotest.(check int) "three events" 3 (Trace.n_events t);
  Alcotest.(check (option int)) "x" (Some 3) (Interp.final_value t "x");
  Alcotest.(check (option int)) "y" (Some 6) (Interp.final_value t "y")

let test_if_branches () =
  let t = run "proc main { x := 1; if x = 1 { y := 10 } else { y := 20 } }" in
  Alcotest.(check (option int)) "then branch" (Some 10)
    (Interp.final_value t "y");
  let t = run "proc main { x := 2; if x = 1 { y := 10 } else { y := 20 } }" in
  Alcotest.(check (option int)) "else branch" (Some 20)
    (Interp.final_value t "y")

let test_while () =
  let t = run "proc main { while x < 5 { x := x + 1 } }" in
  Alcotest.(check (option int)) "loop ran" (Some 5) (Interp.final_value t "x");
  (* Condition evaluated 6 times + 5 assignments. *)
  Alcotest.(check int) "event count" 11 (Trace.n_events t)

let test_fuel () =
  let t = Interp.run ~fuel:20 (Parse.program "proc main { while 1 < 2 { x := x + 1 } }") in
  Alcotest.(check bool) "fuel exhausted" true
    (t.Trace.outcome = Trace.Fuel_exhausted)

let test_semaphores () =
  let src =
    "sem s = 0\nproc a { x := 1; v(s) }\nproc b { p(s); y := x }\n"
  in
  let t = run src in
  Alcotest.(check bool) "completed" true (t.Trace.outcome = Trace.Completed);
  Alcotest.(check (option int)) "y sees x" (Some 1) (Interp.final_value t "y");
  (* P must come after V in the schedule. *)
  let v = Trace.find_event t "V(s)" and p = Trace.find_event t "P(s)" in
  Alcotest.(check bool) "V scheduled before P" true (v.Event.id < p.Event.id)

let test_deadlock () =
  let t = run "sem s = 0\nproc a { p(s) }\n" in
  (match t.Trace.outcome with
  | Trace.Deadlocked [ 0 ] -> ()
  | _ -> Alcotest.fail "expected deadlock of pid 0");
  Alcotest.(check int) "no events executed" 0 (Trace.n_events t)

let test_event_sync () =
  let src = "proc a { post(e); clear(e); post(e) }\nproc b { wait(e); x := 1 }" in
  let t = run src in
  Alcotest.(check bool) "completed" true (t.Trace.outcome = Trace.Completed);
  Alcotest.(check (option int)) "x set" (Some 1) (Interp.final_value t "x")

let test_wait_blocks () =
  let t = run "proc a { wait(e) }" in
  Alcotest.(check bool) "deadlocked" true
    (match t.Trace.outcome with Trace.Deadlocked _ -> true | _ -> false)

let test_cobegin () =
  let t = run "proc main { x := 1; cobegin { y := x } { z := x } coend; w := y + z }" in
  Alcotest.(check bool) "completed" true (t.Trace.outcome = Trace.Completed);
  Alcotest.(check (option int)) "both children ran" (Some 2)
    (Interp.final_value t "w");
  (* Events: assign, fork, two child assigns, join, final assign. *)
  Alcotest.(check int) "six events" 6 (Trace.n_events t);
  (* Program order edges: fork precedes both children, children precede join. *)
  let x = Trace.to_execution t in
  let po = Execution.po_closure x in
  let fork = Trace.find_event t "fork" and join = Trace.find_event t "join" in
  let cy = Trace.find_event t "y := x" and cz = Trace.find_event t "z := x" in
  Alcotest.(check bool) "fork->y" true (Rel.mem po fork.Event.id cy.Event.id);
  Alcotest.(check bool) "fork->z" true (Rel.mem po fork.Event.id cz.Event.id);
  Alcotest.(check bool) "y->join" true (Rel.mem po cy.Event.id join.Event.id);
  Alcotest.(check bool) "z->join" true (Rel.mem po cz.Event.id join.Event.id);
  Alcotest.(check bool) "children unordered" false
    (Rel.mem po cy.Event.id cz.Event.id || Rel.mem po cz.Event.id cy.Event.id)

let test_assert () =
  let t = run "proc a { x := 1; assert x = 1; assert x = 2 }" in
  Alcotest.(check bool) "completed despite violation" true
    (t.Trace.outcome = Trace.Completed);
  (match t.Trace.violations with
  | [ e ] ->
      Alcotest.(check string) "the failing assert" "assert (x = 2)"
        t.Trace.events.(e).Event.label
  | _ -> Alcotest.fail "expected exactly one violation");
  let t = run "proc a { assert 1 = 1 }" in
  Alcotest.(check (list int)) "no violations" [] t.Trace.violations

let test_trace_is_valid_execution () =
  let srcs =
    [
      "proc main { x := 1; cobegin { y := x } { z := x } coend }";
      "sem s = 1\nproc a { p(s); x := 1; v(s) }\nproc b { p(s); x := 2; v(s) }";
      "proc a { post(e) }\nproc b { wait(e); clear(e) }";
    ]
  in
  List.iter
    (fun src ->
      List.iter
        (fun policy ->
          let t = Interp.run ~policy (Parse.program src) in
          Alcotest.(check bool) "completed" true
            (t.Trace.outcome = Trace.Completed);
          let x = Trace.to_execution t in
          Alcotest.(check (list string)) "valid execution" []
            (Execution.axiom_violations x))
        [ Sched.Round_robin; Sched.Priority; Sched.Random 11; Sched.Random 42 ])
    srcs

let test_random_schedules_vary () =
  let src = "proc a { x := 1 }\nproc b { x := 2 }" in
  let finals =
    List.map
      (fun seed ->
        Interp.final_value (Interp.run ~policy:(Sched.Random seed) (Parse.program src)) "x")
      [ 0; 1; 2; 3; 4; 5; 6; 7 ]
  in
  Alcotest.(check bool) "both outcomes occur" true
    (List.mem (Some 1) finals && List.mem (Some 2) finals)

let test_replay () =
  let src = "proc a { x := 1 }\nproc b { x := 2 }" in
  let t = Interp.run ~policy:(Sched.Replay [ 1; 0 ]) (Parse.program src) in
  Alcotest.(check (option int)) "b then a" (Some 1) (Interp.final_value t "x");
  match
    Interp.run ~policy:(Sched.Replay [ 5 ]) (Parse.program src)
  with
  | exception Sched.Replay_impossible _ -> ()
  | _ -> Alcotest.fail "expected Replay_impossible"

let test_nested_cobegin () =
  let src =
    "proc main { cobegin { cobegin { x := 1 } { y := 2 } coend } { z := 3 } coend }"
  in
  let t = run src in
  Alcotest.(check bool) "completed" true (t.Trace.outcome = Trace.Completed);
  Alcotest.(check (option int)) "inner x" (Some 1) (Interp.final_value t "x");
  Alcotest.(check (option int)) "inner y" (Some 2) (Interp.final_value t "y");
  Alcotest.(check (option int)) "outer z" (Some 3) (Interp.final_value t "z");
  let x = Trace.to_execution t in
  Alcotest.(check (list string)) "valid" [] (Execution.axiom_violations x)

let test_counting_semaphore () =
  (* A semaphore initialized to 2 admits two P's without any V. *)
  let t = run "sem s = 2\nproc a { p(s); p(s) }" in
  Alcotest.(check bool) "completed" true (t.Trace.outcome = Trace.Completed);
  let t = run "sem s = 2\nproc a { p(s); p(s); p(s) }" in
  Alcotest.(check bool) "third P deadlocks" true
    (match t.Trace.outcome with Trace.Deadlocked _ -> true | _ -> false)

let suite =
  [
    Alcotest.test_case "sequential" `Quick test_sequential;
    Alcotest.test_case "if branches" `Quick test_if_branches;
    Alcotest.test_case "while" `Quick test_while;
    Alcotest.test_case "fuel" `Quick test_fuel;
    Alcotest.test_case "semaphores" `Quick test_semaphores;
    Alcotest.test_case "deadlock" `Quick test_deadlock;
    Alcotest.test_case "event sync" `Quick test_event_sync;
    Alcotest.test_case "wait blocks" `Quick test_wait_blocks;
    Alcotest.test_case "cobegin" `Quick test_cobegin;
    Alcotest.test_case "traces are valid executions" `Quick
      test_trace_is_valid_execution;
    Alcotest.test_case "random schedules vary" `Quick test_random_schedules_vary;
    Alcotest.test_case "replay" `Quick test_replay;
    Alcotest.test_case "nested cobegin" `Quick test_nested_cobegin;
    Alcotest.test_case "counting semaphore" `Quick test_counting_semaphore;
    Alcotest.test_case "assert statements" `Quick test_assert;
  ]
