let qcheck = QCheck_alcotest.to_alcotest

let closed_order pairs n = Rel.transitive_closure (Rel.of_pairs n pairs)

let test_chain () =
  let order = closed_order [ (0, 1); (1, 2); (2, 3) ] 4 in
  Alcotest.(check int) "width of chain" 1 (Antichain.width order);
  Alcotest.(check int) "singleton antichain" 1
    (List.length (Antichain.maximum_antichain order));
  Alcotest.(check int) "one chain" 1
    (List.length (Antichain.minimum_chain_cover order))

let test_antichain_of_empty_order () =
  let order = Rel.create 5 in
  Alcotest.(check int) "width" 5 (Antichain.width order);
  Alcotest.(check (list int)) "all elements" [ 0; 1; 2; 3; 4 ]
    (Antichain.maximum_antichain order);
  Alcotest.(check int) "five chains" 5
    (List.length (Antichain.minimum_chain_cover order))

let test_diamond () =
  let order = closed_order [ (0, 1); (0, 2); (1, 3); (2, 3) ] 4 in
  Alcotest.(check int) "width of diamond" 2 (Antichain.width order);
  Alcotest.(check (list int)) "middle antichain" [ 1; 2 ]
    (Antichain.maximum_antichain order)

let test_two_chains () =
  (* Two independent chains of length 3: width 2, cover with 2 chains. *)
  let order = closed_order [ (0, 1); (1, 2); (3, 4); (4, 5) ] 6 in
  Alcotest.(check int) "width" 2 (Antichain.width order);
  let cover = Antichain.minimum_chain_cover order in
  Alcotest.(check int) "two chains" 2 (List.length cover);
  (* Every element appears exactly once. *)
  let all = List.sort compare (List.concat cover) in
  Alcotest.(check (list int)) "partition" [ 0; 1; 2; 3; 4; 5 ] all

let test_rejects_non_order () =
  let not_closed = Rel.of_pairs 3 [ (0, 1); (1, 2) ] in
  Alcotest.check_raises "not transitive"
    (Invalid_argument "Antichain: relation is not a strict partial order")
    (fun () -> ignore (Antichain.width not_closed))

let test_matching_basic () =
  let m = Matching.maximum ~n_left:3 ~n_right:3 [ (0, 0); (0, 1); (1, 0); (2, 2) ] in
  Alcotest.(check int) "perfect here" 3 m.Matching.size;
  let m2 = Matching.maximum ~n_left:2 ~n_right:2 [ (0, 0); (1, 0) ] in
  Alcotest.(check int) "bottleneck" 1 m2.Matching.size;
  let m3 = Matching.maximum ~n_left:2 ~n_right:2 [] in
  Alcotest.(check int) "empty" 0 m3.Matching.size

(* Brute force for cross-checking: maximum antichain by subset search. *)
let brute_force_width order =
  let n = Rel.size order in
  let best = ref 0 in
  for mask = 0 to (1 lsl n) - 1 do
    let members =
      List.filter (fun i -> mask land (1 lsl i) <> 0) (List.init n Fun.id)
    in
    let antichain =
      List.for_all
        (fun a ->
          List.for_all (fun b -> a = b || not (Rel.comparable order a b)) members)
        members
    in
    if antichain then best := max !best (List.length members)
  done;
  !best

let random_order =
  QCheck.make
    ~print:(fun (n, pairs) ->
      Printf.sprintf "n=%d %s" n
        (String.concat ";"
           (List.map (fun (a, b) -> Printf.sprintf "%d<%d" a b) pairs)))
    QCheck.Gen.(
      int_range 1 9 >>= fun n ->
      list_size (int_range 0 16)
        (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
      >>= fun raw ->
      return (n, List.filter (fun (a, b) -> a < b) raw))

let prop_width_matches_brute_force =
  QCheck.Test.make ~name:"width = brute-force maximum antichain" ~count:200
    random_order (fun (n, pairs) ->
      let order = closed_order pairs n in
      Antichain.width order = brute_force_width order)

let prop_antichain_is_valid =
  QCheck.Test.make ~name:"maximum_antichain: size and incomparability"
    ~count:200 random_order (fun (n, pairs) ->
      let order = closed_order pairs n in
      let a = Antichain.maximum_antichain order in
      List.length a = Antichain.width order)

let prop_chain_cover_valid =
  QCheck.Test.make ~name:"chain cover: partition into width-many chains"
    ~count:200 random_order (fun (n, pairs) ->
      let order = closed_order pairs n in
      let cover = Antichain.minimum_chain_cover order in
      List.length cover = Antichain.width order
      && List.sort compare (List.concat cover) = List.init n Fun.id
      && List.for_all
           (fun chain ->
             let rec ascending = function
               | a :: (b :: _ as rest) -> Rel.mem order a b && ascending rest
               | _ -> true
             in
             ascending chain)
           cover)

let suite =
  [
    Alcotest.test_case "chain" `Quick test_chain;
    Alcotest.test_case "empty order" `Quick test_antichain_of_empty_order;
    Alcotest.test_case "diamond" `Quick test_diamond;
    Alcotest.test_case "two chains" `Quick test_two_chains;
    Alcotest.test_case "rejects non-orders" `Quick test_rejects_non_order;
    Alcotest.test_case "matching basics" `Quick test_matching_basic;
    qcheck prop_width_matches_brute_force;
    qcheck prop_antichain_is_valid;
    qcheck prop_chain_cover_valid;
  ]
