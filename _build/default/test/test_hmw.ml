let qcheck = QCheck_alcotest.to_alcotest

let trace_of src =
  match Gen_progs.completed_trace (Parse.program src) with
  | Some t -> t
  | None -> Alcotest.fail "fixture program deadlocked"

let hmw_of src =
  let tr = trace_of src in
  (tr, Hmw.of_execution (Trace.to_execution tr))

let test_single_v_forces_order () =
  let tr, h = hmw_of "sem s = 0\nproc a { v(s) }\nproc b { p(s) }" in
  let v = (Trace.find_event tr "V(s)").Event.id in
  let p = (Trace.find_event tr "P(s)").Event.id in
  Alcotest.(check bool) "phase1 orders V->P" true (Rel.mem h.Hmw.phase1 v p);
  Alcotest.(check bool) "phase2 orders V->P" true (Rel.mem h.Hmw.phase2 v p);
  Alcotest.(check bool) "phase3 orders V->P" true (Rel.mem h.Hmw.phase3 v p)

let test_two_vs_no_forced_order () =
  (* Two V's can each serve the one P: no individual V->P is guaranteed. *)
  let src = "sem s = 0\nproc a { v(s) }\nproc b { v(s) }\nproc c { p(s) }" in
  let tr, h = hmw_of src in
  let x = Trace.to_execution tr in
  let p =
    (Array.to_list x.Execution.events
    |> List.find (fun e -> e.Event.kind = Event.Sync (Event.Sem_p 0)))
      .Event.id
  in
  let vs =
    Array.to_list x.Execution.events
    |> List.filter (fun e -> e.Event.kind = Event.Sync (Event.Sem_v 0))
    |> List.map (fun e -> e.Event.id)
  in
  (* Phase 1 pairs the observed first V with P — unsafe. *)
  Alcotest.(check bool) "phase1 claims an ordering" true
    (List.exists (fun v -> Rel.mem h.Hmw.phase1 v p) vs);
  (* Phases 2 and 3 must stay silent. *)
  List.iter
    (fun v ->
      Alcotest.(check bool) "phase2 silent" false (Rel.mem h.Hmw.phase2 v p);
      Alcotest.(check bool) "phase3 silent" false (Rel.mem h.Hmw.phase3 v p))
    vs

let test_counting_excludes_po_later_vs () =
  (* P2's own later V cannot be P's token: the other V is forced. *)
  let src = "sem s = 0\nproc a { v(s) }\nproc b { p(s); v(s) }" in
  let tr, h = hmw_of src in
  let x = Trace.to_execution tr in
  let p =
    (Array.to_list x.Execution.events
    |> List.find (fun e -> e.Event.kind = Event.Sync (Event.Sem_p 0)))
      .Event.id
  in
  let v_a =
    (Array.to_list x.Execution.events
    |> List.find (fun e ->
           e.Event.kind = Event.Sync (Event.Sem_v 0) && e.Event.pid = 0))
      .Event.id
  in
  Alcotest.(check bool) "phase2 forces the cross-process V" true
    (Rel.mem h.Hmw.phase2 v_a p)

let test_initial_tokens_need_no_v () =
  let tr, h = hmw_of "sem s = 1\nproc a { v(s) }\nproc b { p(s) }" in
  let v = (Trace.find_event tr "V(s)").Event.id in
  let p = (Trace.find_event tr "P(s)").Event.id in
  (* The initial token can serve the P: no forced ordering. *)
  Alcotest.(check bool) "phase3 silent with initial token" false
    (Rel.mem h.Hmw.phase3 v p)

let test_phase2_subset_phase3 () =
  let _, h =
    hmw_of "sem s = 0\nproc a { v(s); p(s) }\nproc b { v(s); p(s) }"
  in
  Alcotest.(check bool) "phase2 ⊆ phase3" true (Hmw.safe_subset_of_phase3 h)

(* The central guarantee: phases 2 and 3 are safe — contained in exact MHB.
   (Random programs, semaphores only.) *)
let sem_only_program_gen =
  QCheck.Gen.(
    int_range 2 3 >>= fun n_procs ->
    list_repeat n_procs
      (list_size (int_range 1 3)
         (frequency
            [
              (2, oneofl [ Ast.Sem_p "s"; Ast.Sem_v "s"; Ast.Sem_p "t"; Ast.Sem_v "t" ]);
              (1, return (Ast.Skip None));
            ]))
    >>= fun bodies ->
    int_range 0 1 >>= fun s_init ->
    return
      (Ast.program
         ~sem_init:[ ("s", s_init); ("t", 0) ]
         (List.mapi (fun i b -> Ast.proc (Printf.sprintf "p%d" i) b) bodies)))

let arbitrary_sem_program =
  QCheck.make
    ~print:(fun p -> Format.asprintf "%a" Ast.pp p)
    sem_only_program_gen

let prop_safe_phases_within_mhb =
  QCheck.Test.make ~name:"HMW phases 2 and 3 ⊆ exact MHB" ~count:120
    arbitrary_sem_program (fun prog ->
      match Gen_progs.completed_trace prog with
      | None -> true
      | Some tr ->
          if Trace.n_events tr > 8 then true
          else begin
            let x = Trace.to_execution tr in
            let h = Hmw.of_execution x in
            let r = Reach.create (Skeleton.of_execution x) in
            let ok = ref true in
            let check rel =
              Rel.iter
                (fun a b -> if not (Reach.must_before r a b) then ok := false)
                rel
            in
            check h.Hmw.phase2;
            check h.Hmw.phase3;
            !ok
          end)

let prop_phase1_contains_program_order =
  QCheck.Test.make ~name:"all phases contain the program order" ~count:100
    arbitrary_sem_program (fun prog ->
      match Gen_progs.completed_trace prog with
      | None -> true
      | Some tr ->
          let x = Trace.to_execution tr in
          let h = Hmw.of_execution x in
          let po = Execution.po_closure x in
          Rel.subset po h.Hmw.phase1
          && Rel.subset po h.Hmw.phase2
          && Rel.subset po h.Hmw.phase3)

let prop_phases_are_orders =
  QCheck.Test.make ~name:"phase relations are strict partial orders"
    ~count:100 arbitrary_sem_program (fun prog ->
      match Gen_progs.completed_trace prog with
      | None -> true
      | Some tr ->
          let h = Hmw.of_execution (Trace.to_execution tr) in
          Rel.is_strict_partial_order h.Hmw.phase2
          && Rel.is_strict_partial_order h.Hmw.phase3)

let suite =
  [
    Alcotest.test_case "single V forces order" `Quick test_single_v_forces_order;
    Alcotest.test_case "two Vs: no forced order" `Quick
      test_two_vs_no_forced_order;
    Alcotest.test_case "counting excludes po-later Vs" `Quick
      test_counting_excludes_po_later_vs;
    Alcotest.test_case "initial tokens need no V" `Quick
      test_initial_tokens_need_no_v;
    Alcotest.test_case "phase2 subset of phase3" `Quick test_phase2_subset_phase3;
    qcheck prop_safe_phases_within_mhb;
    qcheck prop_phase1_contains_program_order;
    qcheck prop_phases_are_orders;
  ]
