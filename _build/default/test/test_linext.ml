let qcheck = QCheck_alcotest.to_alcotest

let chain n =
  let g = Digraph.create n in
  for i = 0 to n - 2 do
    Digraph.add_edge g i (i + 1)
  done;
  g

let antichain n = Digraph.create n

let test_chain () =
  Alcotest.(check int) "chain has one extension" 1 (Linext.count (chain 5))

let test_antichain () =
  (* n! linear extensions of the empty order. *)
  Alcotest.(check int) "4 elements" 24 (Linext.count (antichain 4));
  Alcotest.(check int) "1 element" 1 (Linext.count (antichain 1));
  Alcotest.(check int) "0 elements" 1 (Linext.count (antichain 0))

let test_diamond () =
  (* 0 < 1, 0 < 2, 1 < 3, 2 < 3: exactly two extensions. *)
  let g = Digraph.create 4 in
  Digraph.add_edge g 0 1;
  Digraph.add_edge g 0 2;
  Digraph.add_edge g 1 3;
  Digraph.add_edge g 2 3;
  let exts = Linext.all g in
  Alcotest.(check int) "two extensions" 2 (List.length exts);
  List.iter
    (fun e ->
      Alcotest.(check bool) "valid" true (Linext.is_linear_extension g e))
    exts

let test_limit () =
  Alcotest.(check int) "limit caps enumeration" 10
    (Linext.count ~limit:10 (antichain 6))

let test_cyclic_rejected () =
  let g = Digraph.create 2 in
  Digraph.add_edge g 0 1;
  Digraph.add_edge g 1 0;
  Alcotest.check_raises "cyclic" (Invalid_argument "Linext.iter: graph is cyclic")
    (fun () -> ignore (Linext.count g))

let test_is_linear_extension_rejects () =
  let g = chain 3 in
  Alcotest.(check bool) "wrong order" false
    (Linext.is_linear_extension g [| 2; 1; 0 |]);
  Alcotest.(check bool) "not a permutation" false
    (Linext.is_linear_extension g [| 0; 0; 1 |]);
  Alcotest.(check bool) "wrong length" false
    (Linext.is_linear_extension g [| 0; 1 |])

let random_dag =
  QCheck.make
    ~print:(fun (n, edges) ->
      Printf.sprintf "n=%d %s" n
        (String.concat ";"
           (List.map (fun (a, b) -> Printf.sprintf "%d->%d" a b) edges)))
    QCheck.Gen.(
      int_range 1 6 >>= fun n ->
      list_size (int_range 0 8)
        (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
      >>= fun raw ->
      let edges = List.filter (fun (a, b) -> a < b) raw in
      return (n, edges))

let prop_all_are_extensions =
  QCheck.Test.make ~name:"every enumerated order is a linear extension"
    ~count:100 random_dag (fun (n, edges) ->
      let g = Digraph.create n in
      List.iter (fun (a, b) -> Digraph.add_edge g a b) edges;
      List.for_all (Linext.is_linear_extension g) (Linext.all g))

let prop_count_vs_brute_force =
  QCheck.Test.make ~name:"count agrees with permutation filter" ~count:60
    random_dag (fun (n, edges) ->
      let g = Digraph.create n in
      List.iter (fun (a, b) -> Digraph.add_edge g a b) edges;
      (* Brute force: check every permutation of 0..n-1. *)
      let rec permutations = function
        | [] -> [ [] ]
        | xs ->
            List.concat_map
              (fun x ->
                List.map
                  (fun rest -> x :: rest)
                  (permutations (List.filter (( <> ) x) xs)))
              xs
      in
      let all_perms = permutations (List.init n Fun.id) in
      let valid =
        List.filter
          (fun p -> Linext.is_linear_extension g (Array.of_list p))
          all_perms
      in
      Linext.count g = List.length valid)

let suite =
  [
    Alcotest.test_case "chain" `Quick test_chain;
    Alcotest.test_case "antichain" `Quick test_antichain;
    Alcotest.test_case "diamond" `Quick test_diamond;
    Alcotest.test_case "limit" `Quick test_limit;
    Alcotest.test_case "cyclic rejected" `Quick test_cyclic_rejected;
    Alcotest.test_case "is_linear_extension rejects" `Quick
      test_is_linear_extension_rejects;
    qcheck prop_all_are_extensions;
    qcheck prop_count_vs_brute_force;
  ]
