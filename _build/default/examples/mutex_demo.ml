(* Two-process mutual exclusion from Post/Wait/Clear alone — the gadget at
   the heart of the Theorem 3/4 reductions.

   Each branch clears the other branch's event variable before waiting on
   its own: for both branches to get past their waits before the rescue
   posts, each wait would have to precede the other branch's clear, which
   is cyclic.  So at most one branch enters before the rescue — exactly the
   guarantee the reduction needs (at most one truth value guessed per
   variable in the first pass).  After the rescue re-posts both variables
   the loser proceeds too, and the two bodies can then even overlap; the
   exact engine sees all of this. *)

let source =
  {|
proc main {
  post(A)
  post(B)
  cobegin
    { clear(A); wait(B); in1 := 1 }
    { clear(B); wait(A); in2 := 1 }
  coend
}

proc rescue {
  go: skip
  post(A)
  post(B)
}
|}

let () =
  let program = Parse.program source in
  Format.printf "%a@." Ast.pp program;
  (* An observed execution in which branch 1 wins and branch 2 is rescued. *)
  let trace =
    Interp.run ~policy:(Sched.Replay [ 0; 0; 0; 2; 2; 2; 3; 1; 1; 1; 3; 3; 0 ])
      program
  in
  assert (trace.Trace.outcome = Trace.Completed);
  Format.printf "%a@." Trace.pp trace;

  let x = Trace.to_execution trace in
  let d = Decide.create x in
  let id label = (Trace.find_event trace label).Event.id in
  let in1 = id "in1 := 1" and in2 = id "in2 := 1" in
  let go = id "go" in

  (* No order between the bodies is forced: either branch can win, and
     after the rescue they can even overlap. *)
  Format.printf "in1 MHB in2 (is an order forced?):       %b@."
    (Decide.mhb d in1 in2);
  Format.printf "in1 CHB in2 (branch 1 can go first):     %b@."
    (Decide.chb d in1 in2);
  Format.printf "in2 CHB in1 (branch 2 can go first):     %b@."
    (Decide.chb d in2 in1);
  Format.printf "in1 CCW in2 (overlap after the rescue):  %b@."
    (Decide.ccw d in1 in2);

  (* The exclusion guarantee is about the first pass: count, over every
     feasible schedule, how often each body runs before the rescue — and
     check that they never both do. *)
  let sk = Decide.skeleton d in
  let wins_in1 = ref 0 and wins_in2 = ref 0 and both = ref 0 and total = ref 0 in
  let position = Array.make sk.Skeleton.n 0 in
  let (_ : int) =
    Enumerate.iter sk (fun schedule ->
        Array.iteri (fun i e -> position.(e) <- i) schedule;
        incr total;
        let w1 = position.(in1) < position.(go) in
        let w2 = position.(in2) < position.(go) in
        if w1 then incr wins_in1;
        if w2 then incr wins_in2;
        if w1 && w2 then incr both)
  in
  Format.printf
    "feasible schedules: %d; branch 1 enters before the rescue in %d of \
     them, branch 2 in %d, BOTH in %d@."
    !total !wins_in1 !wins_in2 !both;
  assert (!both = 0);
  Format.printf
    "mutual exclusion before the rescue holds in every feasible execution@."
