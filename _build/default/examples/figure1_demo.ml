(* The paper's Figure 1, end to end: the example program whose task graph
   (Emrath-Ghosh-Padua) misses an ordering enforced by a shared-data
   dependence.  Section 4's argument, executed. *)

let () =
  Format.printf "Figure 1 program fragment:@.%s@.@." Figure1.source;
  let trace = Figure1.trace () in
  Format.printf "Observed execution (first task runs to completion first):@.%a@."
    Trace.pp trace;

  let x = Trace.to_execution trace in
  let ev = Figure1.events trace in
  Format.printf "Shared-data dependence: 'x := 1' -> 'if (x = 1)': %b@.@."
    (Rel.mem x.Execution.dependences ev.Figure1.write_x ev.Figure1.test_x);

  let egp = Egp.build x in
  let d = Decide.create x in
  let show name a b =
    Format.printf "  %-22s exact MHB: %-5b  task graph: %b@." name
      (Decide.mhb d a b)
      (Egp.guaranteed_before egp a b)
  in
  Format.printf "Guaranteed orderings, exact engine vs task graph:@.";
  show "post1 -> post2" ev.Figure1.post1 ev.Figure1.post2;
  show "post1 -> wait3" ev.Figure1.post1 ev.Figure1.wait3;
  show "write_x -> post2" ev.Figure1.write_x ev.Figure1.post2;
  show "post1 -> write_x" ev.Figure1.post1 ev.Figure1.write_x;

  (* The paper's core claim about this figure, machine-checked: *)
  assert (Decide.mhb d ev.Figure1.post1 ev.Figure1.post2);
  assert (not (Egp.guaranteed_before egp ev.Figure1.post1 ev.Figure1.post2));
  Format.printf
    "@.The two posts cannot execute in either order (the dependence forces@.\
     post1 first), yet the task graph shows no path between them —@.\
     exactly the blind spot Section 4 describes.@."
