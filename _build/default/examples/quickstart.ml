(* Quickstart: build a small program, observe one execution, and compute
   all six ordering relations of Table 1 exactly.

   The program is the paper's running situation in miniature: two workers
   synchronize through a semaphore while a third runs free, so some event
   pairs are ordered in every feasible execution, some only in this one, and
   some can run concurrently. *)

let source =
  {|
sem ready = 0

proc producer {
  x := 1
  v(ready)
}

proc consumer {
  p(ready)
  y := x
}

proc bystander {
  z := 42
}
|}

let () =
  let program = Parse.program source in
  Format.printf "=== Program ===@.%a@." Ast.pp program;

  (* One observed, sequentially consistent execution. *)
  let trace = Interp.run ~policy:(Sched.Random 7) program in
  Format.printf "=== Observed trace ===@.%a@." Trace.pp trace;

  let execution = Trace.to_execution trace in
  assert (Execution.is_valid execution);

  (* The set F(P) of feasible program executions, exhaustively. *)
  let skeleton = Skeleton.of_execution execution in
  let summary = Relations.compute skeleton in
  Format.printf "=== Table 1 relations over F(P) ===@.%a@."
    Relations.pp_summary (summary, execution.Execution.events);

  (* A few spot checks, the readable way. *)
  let id label = (Trace.find_event trace label).Event.id in
  let decide = Decide.create execution in
  let show name v = Format.printf "%-34s %b@." name v in
  show "x:=1 MHB y:=x (through V/P):" (Decide.mhb decide (id "x := 1") (id "y := x"));
  show "z:=42 CCW y:=x (free bystander):" (Decide.ccw decide (id "z := 42") (id "y := x"));
  show "y:=x CHB x:=1 (never):" (Decide.chb decide (id "y := x") (id "x := 1"));
  Format.printf "feasible schedules: %d@."
    summary.Relations.feasible_count
