(* Dining philosophers, three seats, forks as binary semaphores — the
   classic deadlock, analysed with the feasible-execution machinery:

   - the observed execution (priority scheduling: each philosopher eats in
     turn) completes;
   - the state engine proves a deadlock is REACHABLE among the feasible
     executions of the very same events: every philosopher grabs the left
     fork, nobody can take a right one;
   - breaking the symmetry (one philosopher picks up the right fork first)
     removes every reachable deadlock — verified exhaustively. *)

let philosopher i ~left ~right =
  Ast.proc
    (Printf.sprintf "phil%d" i)
    [
      Ast.Sem_p left;
      Ast.Sem_p right;
      Ast.Assign (Printf.sprintf "ate%d" i, Expr.Int 1);
      Ast.Sem_v right;
      Ast.Sem_v left;
    ]

let fork i = Printf.sprintf "fork%d" i

let table ~symmetric =
  let n = 3 in
  let seat i =
    let left = fork i and right = fork ((i + 1) mod n) in
    if symmetric || i < n - 1 then philosopher i ~left ~right
    else philosopher i ~left:right ~right:left (* the lefty *)
  in
  Ast.program
    ~sem_init:(List.init n (fun i -> (fork i, 1)))
    ~binary_sems:(List.init n fork)
    (List.init n seat)

let analyse name program =
  Format.printf "=== %s ===@." name;
  let trace = Interp.run ~policy:Sched.Priority program in
  assert (trace.Trace.outcome = Trace.Completed);
  let sk = Skeleton.of_execution (Trace.to_execution trace) in
  let r = Reach.create sk in
  Format.printf "events: %d, feasible schedules: %d, reachable states: %d@."
    sk.Skeleton.n (Reach.schedule_count r)
    (Reach.reachable_state_count r);
  let deadlock = Reach.deadlock_reachable r in
  Format.printf "deadlock reachable among feasible executions: %b@." deadlock;
  (match Reach.deadlock_witness r with
  | None -> ()
  | Some prefix ->
      let x = Skeleton.(sk.execution) in
      Format.printf "a schedule that wedges (%d of %d events):@."
        (Array.length prefix) sk.Skeleton.n;
      Array.iter
        (fun e ->
          Format.printf "  p%d: %s@." x.Execution.events.(e).Event.pid
            x.Execution.events.(e).Event.label)
        prefix);
  Format.printf "@.";
  deadlock

let () =
  let symmetric_deadlocks = analyse "symmetric table" (table ~symmetric:true) in
  let lefty_deadlocks = analyse "table with one lefty" (table ~symmetric:false) in
  assert symmetric_deadlocks;
  assert (not lefty_deadlocks);
  print_endline
    "The symmetric table can reach the all-left-forks deadlock even though\n\
     the observed run completed; giving one philosopher reversed fork order\n\
     eliminates every reachable deadlock.  Both facts are verified over the\n\
     full feasible-execution space, not sampled."
