examples/quickstart.mli:
