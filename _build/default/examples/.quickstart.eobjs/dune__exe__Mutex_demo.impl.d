examples/mutex_demo.ml: Array Ast Decide Enumerate Event Format Interp Parse Sched Skeleton Trace
