examples/figure1_demo.ml: Decide Egp Execution Figure1 Format Rel Trace
