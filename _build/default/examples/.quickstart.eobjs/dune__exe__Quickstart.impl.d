examples/quickstart.ml: Ast Decide Event Execution Format Interp Parse Relations Sched Skeleton Trace
