examples/race_demo.ml: Format Interp List Parse Race Sched Trace
