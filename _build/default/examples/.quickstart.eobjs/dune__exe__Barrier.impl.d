examples/barrier.ml: Antichain Ast Decide Event Format Interp List Parse Pinned Printf String Trace
