examples/barrier.mli:
