examples/reduction_demo.ml: Cnf Format List Reduction_sem Sat_gen Theorems
