examples/figure1_demo.mli:
