examples/mutex_demo.mli:
