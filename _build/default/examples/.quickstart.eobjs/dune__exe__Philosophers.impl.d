examples/philosophers.ml: Array Ast Event Execution Expr Format Interp List Printf Reach Sched Skeleton Trace
