examples/philosophers.mli:
