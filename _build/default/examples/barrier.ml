(* A two-round barrier built from semaphores, checked with the ordering
   relations and the width machinery:

   - within a round, the workers' updates are mutually CCW (they can
     overlap — that is the parallelism the barrier permits);
   - across the barrier, every round-1 update MHB every round-2 update
     (that is the guarantee the barrier provides);
   - the width of the pinned order bounds how many events can be in
     flight at once. *)

let workers = 3

let source =
  (* Each worker: work round 1; signal arrival; wait for release; work
     round 2.  The coordinator collects all arrivals, then releases all. *)
  let worker i =
    Printf.sprintf
      "proc worker%d { r1_%d := 1; v(arrived); p(release); r2_%d := 1 }" i i i
  in
  let coordinator =
    Printf.sprintf "proc coord { %s %s }"
      (String.concat " "
         (List.init workers (fun _ -> "p(arrived);")))
      (String.concat " " (List.init workers (fun _ -> "v(release);")))
  in
  String.concat "\n"
    ("sem arrived = 0" :: "sem release = 0"
    :: List.init workers worker
    @ [ coordinator ])

let () =
  let program = Parse.program source in
  Format.printf "%a@." Ast.pp program;
  let trace = Interp.run program in
  assert (trace.Trace.outcome = Trace.Completed);
  let x = Trace.to_execution trace in
  let d = Decide.create x in
  let id l = (Trace.find_event trace l).Event.id in
  let r1 i = id (Printf.sprintf "r1_%d := 1" i) in
  let r2 i = id (Printf.sprintf "r2_%d := 1" i) in

  (* Within-round concurrency. *)
  for i = 0 to workers - 1 do
    for j = 0 to workers - 1 do
      if i <> j then begin
        assert (Decide.ccw d (r1 i) (r1 j));
        assert (Decide.ccw d (r2 i) (r2 j))
      end
    done
  done;
  Format.printf "within each round, all %d updates are pairwise CCW@." workers;

  (* Cross-barrier guarantee. *)
  for i = 0 to workers - 1 do
    for j = 0 to workers - 1 do
      assert (Decide.mhb d (r1 i) (r2 j))
    done
  done;
  Format.printf
    "across the barrier, every round-1 update MHB every round-2 update@.";

  (* Width: the maximum number of events that can be simultaneously in
     flight in the observed schedule class. *)
  let sk = Decide.skeleton d in
  let po = Pinned.po_of_schedule sk (Trace.schedule trace) in
  let width = Antichain.width po in
  Format.printf
    "width of the observed pinned order: %d (of %d events) — the barrier \
     caps the exploitable parallelism@."
    width (Trace.n_events trace)
