(* End-to-end demonstration of Theorems 1-4: the 3CNFSAT reductions.

   For a satisfiable and an unsatisfiable 3-CNF formula, build both
   reduction programs (counting semaphores; event-style synchronization),
   run them, decide the ordering relations with the exact engine, and check
   the theorems' equivalences against the DPLL solver. *)

(* The exact engine is exponential (that is the paper's point), so the demo
   uses the smallest 3-CNF instances: 3SAT in the Garey-Johnson sense lets a
   literal repeat within a clause. *)
let formulas = Sat_gen.tiny_3cnf_pair ()

let () =
  List.iter
    (fun (name, formula) ->
      Format.printf "=== %s: %a ===@." name Cnf.pp formula;
      Format.printf "reduction program sizes: %d processes, %d semaphores@."
        (Reduction_sem.expected_process_count formula)
        (Reduction_sem.expected_semaphore_count formula);
      List.iter
        (fun check ->
          Format.printf "  %a@." Theorems.pp_check check;
          if not check.Theorems.agrees then failwith "theorem check failed")
        (Theorems.check_all formula);
      Format.printf "@.")
    formulas;
  print_endline "All four theorems verified on both formulas."
