(* Race detection on a small work-queue program, showing the three tiers:

   - candidate conflicting pairs (syntactic),
   - apparent races (vector clocks over the observed run — what practical
     detectors report),
   - feasible races (the exact, exponential notion the paper proves
     intractable in general).

   The second scenario shows why the distinction matters: the observed
   synchronization pairing can hide a race from vector clocks entirely. *)

let work_queue =
  {|
sem items = 0
sem slots = 1

proc producer {
  p(slots)
  buffer := 1
  v(items)
  total := total + 1   # unsynchronized with the consumer's total update!
}

proc consumer {
  p(items)
  taken := buffer
  v(slots)
  total := total + 10
}
|}

let hidden =
  {|
sem s = 0
proc writer { x := 1; v(s) }
proc helper { v(s) }
proc reader { p(s); x := 2 }
|}

let analyse name source policy =
  Format.printf "=== %s ===@." name;
  let trace = Interp.run ~policy (Parse.program source) in
  assert (trace.Trace.outcome = Trace.Completed);
  Format.printf "%a@." Trace.pp trace;
  let x = Trace.to_execution trace in
  let report tier races =
    Format.printf "%-28s %d@." tier (List.length races);
    List.iter (fun r -> Format.printf "    %a@." (Race.pp_race x) r) races
  in
  report "candidate pairs:" (Race.conflicting_pairs x);
  report "apparent races:" (Race.apparent_races x);
  report "feasible races:" (Race.feasible_races x);
  Format.printf "@."

let () =
  analyse "work queue (racy counter)" work_queue Sched.Round_robin;
  (* Replay so the writer's V is the one the reader's P pairs with: the
     vector clocks then order the two writes and report no race, but the
     helper's V could have served the P instead — the race is real. *)
  analyse "pairing blind spot" hidden (Sched.Replay [ 0; 0; 2; 2; 1 ]);
  print_endline
    "The second program has no apparent race but one feasible race: the\n\
     observed V/P pairing is not the only feasible one.  Exhaustively\n\
     finding such races is exactly the intractable problem of the paper."
