bench/workloads.ml: Ast Cnf Expr Interp List Printf Sched Skeleton Trace
