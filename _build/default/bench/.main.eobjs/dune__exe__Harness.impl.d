bench/harness.ml: Analyze Bechamel Benchmark Float Format Hashtbl Int64 List Measure Monotonic_clock Staged String Test Time Toolkit
