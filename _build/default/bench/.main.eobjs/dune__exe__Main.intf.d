bench/main.mli:
