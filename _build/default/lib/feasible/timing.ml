type t = { start : float array; finish : float array }

let sample ?(seed = 0) (sk : Skeleton.t) schedule =
  let po = Pinned.po_of_schedule sk schedule in
  let n = sk.Skeleton.n in
  (* Longest-path layering over the pinned order: every pinned predecessor
     sits in a strictly earlier layer.  Visiting events in schedule order —
     a linear extension of the pinned order — makes one pass sufficient:
     all predecessors have final layers when their successor is visited. *)
  let layer = Array.make n 0 in
  Array.iter
    (fun e ->
      Rel.iter
        (fun a b -> if b = e && layer.(a) >= layer.(e) then
            layer.(e) <- layer.(a) + 1)
        po)
    schedule;
  let rng = Random.State.make [| seed |] in
  let start = Array.make n 0.0 in
  let finish = Array.make n 0.0 in
  for e = 0 to n - 1 do
    let base = float_of_int layer.(e) in
    let jitter = Random.State.float rng 0.3 in
    start.(e) <- base +. jitter;
    (* End strictly inside the layer gap: pinned successors start at
       base + 1 at the earliest. *)
    finish.(e) <- base +. jitter +. Random.State.float rng (0.99 -. jitter)
    |> max (base +. jitter +. 1e-6)
  done;
  { start; finish }

let precedes t a b = t.finish.(a) < t.start.(b)

let overlaps t a b = a <> b && (not (precedes t a b)) && not (precedes t b a)

let temporal_order t =
  let n = Array.length t.start in
  let r = Rel.create n in
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      if a <> b && precedes t a b then Rel.add r a b
    done
  done;
  r

let to_execution (sk : Skeleton.t) t =
  let x = sk.Skeleton.execution in
  let temporal = temporal_order t in
  let dependences = Dependence.of_temporal x.Execution.events temporal in
  Execution.make ~events:x.Execution.events
    ~program_order:x.Execution.program_order ~temporal ~dependences
    ~sem_init:x.Execution.sem_init ~sem_binary:x.Execution.sem_binary
    ~ev_init:x.Execution.ev_init ~num_shared_vars:x.Execution.num_shared_vars
    ()
