(** Independent feasibility checker: replays a candidate schedule against a
    skeleton and verifies conditions F1–F3 of Section 3.1.

    This module deliberately shares no search machinery with
    {!Enumerate} — it is the oracle the property tests use to validate the
    enumerator. *)

type verdict =
  | Feasible
  | Not_a_permutation
  | Program_order_violated of { event : int; missing_pred : int }
  | Dependence_violated of { event : int; missing_pred : int }
  | Sync_blocked of { event : int }
      (** a [P] found the semaphore at zero, or a [Wait] found the event
          variable clear, at its scheduled position *)

val check : Skeleton.t -> int array -> verdict
(** [check sk schedule] replays the schedule.  [Feasible] iff the schedule
    is a permutation of all events that respects program order, preserves
    every observed shared-data dependence (F3), and never schedules a
    blocked synchronization operation. *)

val is_feasible : Skeleton.t -> int array -> bool

val pp_verdict : Format.formatter -> verdict -> unit
