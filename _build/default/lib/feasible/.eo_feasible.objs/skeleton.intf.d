lib/feasible/skeleton.mli: Digraph Event Execution Format
