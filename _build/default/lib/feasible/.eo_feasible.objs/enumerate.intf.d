lib/feasible/enumerate.mli: Skeleton
