lib/feasible/replay.mli: Format Skeleton
