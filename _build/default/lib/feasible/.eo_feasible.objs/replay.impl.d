lib/feasible/replay.ml: Array Event Format List Skeleton
