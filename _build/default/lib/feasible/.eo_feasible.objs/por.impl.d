lib/feasible/por.ml: Array Enumerate Event Execution List Skeleton
