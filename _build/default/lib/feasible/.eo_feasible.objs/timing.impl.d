lib/feasible/timing.ml: Array Dependence Execution Pinned Random Rel Skeleton
