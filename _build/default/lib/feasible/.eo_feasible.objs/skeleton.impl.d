lib/feasible/skeleton.ml: Array Digraph Event Execution Format List Rel
