lib/feasible/pinned.mli: Rel Skeleton
