lib/feasible/enumerate.ml: Array Event List Skeleton
