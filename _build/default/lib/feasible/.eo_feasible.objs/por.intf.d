lib/feasible/por.mli: Skeleton
