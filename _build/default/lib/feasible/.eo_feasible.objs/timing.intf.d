lib/feasible/timing.mli: Execution Rel Skeleton
