lib/feasible/reach.ml: Array Buffer Char Event Fun Hashtbl List Option Skeleton
