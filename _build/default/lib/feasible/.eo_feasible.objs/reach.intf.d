lib/feasible/reach.mli: Skeleton
