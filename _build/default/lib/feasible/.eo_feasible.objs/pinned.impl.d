lib/feasible/pinned.ml: Array Event Format List Rel Replay Skeleton
