(** Timing refinements of a schedule class — the paper's real-time [T],
    made executable.

    In the model, an execution's temporal order is an interval order: each
    event occupies a real-time interval, and [a T b] iff [a]'s interval
    ends before [b]'s begins.  A feasible schedule σ stands for the whole
    class of timings compatible with its pinned constraints; this module
    samples concrete interval assignments from that class, so the
    relationship between the pinned partial order and real time can be
    tested instead of argued:

    - events comparable in [po(σ)] are separated in every sampled timing;
    - events incomparable in [po(σ)] may overlap (and do, whenever they
      share a layer);
    - the induced interval order, taken as the execution's [T], satisfies
      the model axioms.

    Sampling places each event at its pinned longest-path layer and gives
    it a random duration strictly inside the layer gap. *)

type t = {
  start : float array;  (** interval start per event *)
  finish : float array;  (** interval end per event; [start < finish] *)
}

val sample : ?seed:int -> Skeleton.t -> int array -> t
(** [sample sk schedule] draws a timing of the class of the given feasible
    schedule (checked; [Invalid_argument] otherwise). *)

val precedes : t -> int -> int -> bool
(** [precedes t a b]: does [a]'s interval end before [b]'s begins —
    the paper's [a T b]? *)

val overlaps : t -> int -> int -> bool
(** Neither precedes the other: the events run concurrently in this
    timing. *)

val temporal_order : t -> Rel.t
(** The full interval order as a relation (the execution's [T]). *)

val to_execution : Skeleton.t -> t -> Execution.t
(** The program execution [<E, T, D>] this timing realizes: same events,
    [T] from the intervals, [D] the dependences the timing orders.  The
    result satisfies the model axioms (property-tested). *)
