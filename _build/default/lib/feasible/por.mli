(** Partial-order reduction (sleep sets) over the feasible-schedule space.

    Two adjacent schedule steps commute when they belong to different
    processes, touch no common synchronization object, and have no
    dependence between them; schedules equal up to such swaps realize the
    same pinned partial order (the FIFO pairing and trigger assignment only
    read per-object subsequences).  Sleep-set exploration (Godefroid)
    visits at least one representative of every commutation class while
    skipping most of its members — often exponentially fewer schedules, with
    every distinct pinned order still observed.

    This accelerates the class-level analyses (the concurrent-with /
    ordered-with matrices, distinct-class counting); the happened-before
    side is served by {!Reach} instead, because order bits differ between
    members of one class.  Property tests check that the set of pinned
    orders found equals full enumeration's on random programs. *)

val iter_representatives : ?limit:int -> Skeleton.t -> (int array -> unit) -> int
(** [iter_representatives sk f] calls [f] on representative feasible
    schedules — at least one per commutation class — and returns how many
    were visited.  The array is reused between calls. *)

val count_representatives : ?limit:int -> Skeleton.t -> int

val independent : Skeleton.t -> int -> int -> bool
(** The static independence relation used for commutation: different
    processes, no shared synchronization object, no dependence edge either
    way.  (Exposed for tests.) *)
