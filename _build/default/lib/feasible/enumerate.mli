(** Exhaustive enumeration of the feasible program executions [F(P)].

    Every complete schedule produced respects program order, preserves the
    observed shared-data dependences, and never runs a blocked
    synchronization operation; deadlocking prefixes are pruned.  The search
    is exponential in general — this is the engine whose cost Theorems 1–4
    prove unavoidable. *)

exception Stop
(** Raise from an {!iter} callback to end enumeration early. *)

val iter : ?limit:int -> Skeleton.t -> (int array -> unit) -> int
(** [iter ?limit sk f] calls [f] on every feasible complete schedule (the
    array is reused; copy to keep) and returns how many were visited.
    Enumeration order is deterministic (lexicographic by event id). *)

val count : ?limit:int -> Skeleton.t -> int

val all : ?limit:int -> Skeleton.t -> int array list

val exists : Skeleton.t -> (int array -> bool) -> bool
(** Early-exits on the first schedule satisfying the predicate. *)

val first : Skeleton.t -> int array option
(** The lexicographically first feasible schedule, if any. *)

val exists_order : Skeleton.t -> before:int -> after:int -> bool
(** [exists_order sk ~before:a ~after:b]: is there a feasible schedule in
    which [a] is scheduled before [b]?  (This is exactly the could-have-
    happened-before relation; see {!DESIGN.md}.)  Prunes branches where [b]
    was scheduled first, so it is cheaper than filtering {!iter}. *)

(** {2 Search internals}

    The incremental search state, exposed so {!Por} can layer sleep-set
    pruning over the same machinery.  Invariant: every {!execute} is undone
    with its token in reverse order. *)

type search = {
  sk : Skeleton.t;
  n : int;
  pending : int array;
  succs : int list array;
  done_ : bool array;
  sem : int array;
  ev : bool array;
  schedule : int array;
}

val make_search : Skeleton.t -> search

val ready : search -> int -> bool
(** Preconditions of one event in the current state. *)

val execute :
  search -> int -> [ `Sem of int * int | `Ev of int * bool | `None ]
(** Applies the event; returns the undo token. *)

val undo : search -> int -> [ `Sem of int * int | `Ev of int * bool | `None ] -> unit
