exception Stop

(* Mutable search state shared by all entry points. *)
type search = {
  sk : Skeleton.t;
  n : int;
  pending : int array;  (* outstanding (po + dep) predecessors per event *)
  succs : int list array;  (* inverse of the pending edges *)
  done_ : bool array;
  sem : int array;
  ev : bool array;
  schedule : int array;
}

let make_search (sk : Skeleton.t) =
  let n = sk.Skeleton.n in
  let pending = Array.make n 0 in
  let succs = Array.make n [] in
  for e = 0 to n - 1 do
    let preds = sk.Skeleton.po_preds.(e) @ sk.Skeleton.dep_preds.(e) in
    pending.(e) <- List.length preds;
    List.iter (fun p -> succs.(p) <- e :: succs.(p)) preds
  done;
  {
    sk;
    n;
    pending;
    succs;
    done_ = Array.make n false;
    sem = Array.copy sk.Skeleton.sem_init;
    ev = Array.copy sk.Skeleton.ev_init;
    schedule = Array.make n (-1);
  }

let sync_enabled st e =
  match st.sk.Skeleton.kinds.(e) with
  | Event.Computation | Event.Sync (Event.Fork | Event.Join)
  | Event.Sync (Event.Sem_v _)
  | Event.Sync (Event.Post _)
  | Event.Sync (Event.Clear _) ->
      true
  | Event.Sync (Event.Sem_p s) -> st.sem.(s) > 0
  | Event.Sync (Event.Wait v) -> st.ev.(v)

let ready st e = (not st.done_.(e)) && st.pending.(e) = 0 && sync_enabled st e

(* Applies event [e]'s effect and returns the undo token. *)
let execute st e =
  st.done_.(e) <- true;
  List.iter (fun s -> st.pending.(s) <- st.pending.(s) - 1) st.succs.(e);
  match st.sk.Skeleton.kinds.(e) with
  | Event.Sync (Event.Sem_p s) ->
      st.sem.(s) <- st.sem.(s) - 1;
      `None
  | Event.Sync (Event.Sem_v s) ->
      let old = st.sem.(s) in
      (* Binary semaphores absorb a V when already at 1. *)
      if st.sk.Skeleton.sem_binary.(s) then st.sem.(s) <- 1
      else st.sem.(s) <- old + 1;
      `Sem (s, old)
  | Event.Sync (Event.Post v) ->
      let old = st.ev.(v) in
      st.ev.(v) <- true;
      `Ev (v, old)
  | Event.Sync (Event.Clear v) ->
      let old = st.ev.(v) in
      st.ev.(v) <- false;
      `Ev (v, old)
  | Event.Computation | Event.Sync (Event.Fork | Event.Join | Event.Wait _) ->
      `None

let undo st e token =
  st.done_.(e) <- false;
  List.iter (fun s -> st.pending.(s) <- st.pending.(s) + 1) st.succs.(e);
  (match st.sk.Skeleton.kinds.(e) with
  | Event.Sync (Event.Sem_p s) -> st.sem.(s) <- st.sem.(s) + 1
  | _ -> ());
  match token with
  | `Sem (s, old) -> st.sem.(s) <- old
  | `Ev (v, old) -> st.ev.(v) <- old
  | `None -> ()

let iter ?limit sk f =
  let st = make_search sk in
  let found = ref 0 in
  let rec go depth =
    if depth = st.n then begin
      incr found;
      f st.schedule;
      match limit with Some l when !found >= l -> raise Stop | _ -> ()
    end
    else
      for e = 0 to st.n - 1 do
        if ready st e then begin
          let token = execute st e in
          st.schedule.(depth) <- e;
          go (depth + 1);
          undo st e token
        end
      done
  in
  (try go 0 with Stop -> ());
  !found

let count ?limit sk = iter ?limit sk (fun _ -> ())

let all ?limit sk =
  let acc = ref [] in
  let (_ : int) = iter ?limit sk (fun s -> acc := Array.copy s :: !acc) in
  List.rev !acc

let exists sk pred =
  let found = ref false in
  let (_ : int) =
    iter sk (fun s ->
        if pred s then begin
          found := true;
          raise Stop
        end)
  in
  !found

let first sk =
  let result = ref None in
  let (_ : int) =
    iter sk (fun s ->
        result := Some (Array.copy s);
        raise Stop)
  in
  !result

let exists_order sk ~before ~after =
  if before = after then false
  else begin
    let st = make_search sk in
    let found = ref false in
    (* Prune any branch that schedules [after] while [before] is pending:
       such a prefix can never witness [before] < [after]. *)
    let rec go depth =
      if depth = st.n then begin
        found := true;
        raise Stop
      end
      else
        for e = 0 to st.n - 1 do
          if ready st e && not (e = after && not st.done_.(before)) then begin
            let token = execute st e in
            go (depth + 1);
            undo st e token
          end
        done
    in
    (try go 0 with Stop -> ());
    !found
  end
