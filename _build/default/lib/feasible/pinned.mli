(** The partial order pinned down by one feasible schedule.

    A feasible schedule σ represents a whole class of concrete executions:
    any timing that keeps each event after the constraints σ realized.  The
    pinned partial order [po(σ)] is the transitive closure of:

    - the immediate program-order edges;
    - the observed shared-data dependence edges;
    - per counting semaphore, the edge from the (i − init)-th [V] to the
      i-th [P], both counted in σ order — exactly the token-availability
      constraint (a [P] cannot begin until enough [V]s completed);
    - per event variable, the edge from the {e earliest} [Post] since the
      last [Clear] to each [Wait] it enables (the post whose completion
      first made the wait runnable; later posts in the same set-interval
      are redundant and can race with the wait).  A [Wait] enabled by the
      variable's initial state needs no edge.

    Two events incomparable in [po(σ)] can overlap in time within this
    class: this is what the concurrent-with relations of Table 1 quantify
    over.  Two events comparable in [po(σ)] occur in that order in every
    timing of the class.

    For programs whose only synchronization is semaphores, the pinning is
    exact: every linear extension of [po(σ)] is itself a feasible schedule
    (token counting survives any reordering that keeps each [P] after its
    matched [V]), so incomparability coincides with the operational
    possible-race notion of {!Reach.exists_race}.  [Clear] introduces
    genuinely disjunctive timing constraints ("the clear completes before
    the triggering post or after the wait begins") that no edge set can
    capture; there the pinned order errs toward incomparability and the
    property tests quantify the agreement. *)

val po_of_schedule : Skeleton.t -> int array -> Rel.t
(** [po_of_schedule sk schedule] computes the transitively closed pinned
    partial order.  The schedule must be feasible (checked with
    {!Replay.check}; raises [Invalid_argument] otherwise). *)

val sync_edges : Skeleton.t -> int array -> (int * int) list
(** Just the semaphore-pairing and wait-trigger edges, for inspection and
    tests. *)
