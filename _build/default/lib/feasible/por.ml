let sync_object (sk : Skeleton.t) e =
  match sk.Skeleton.kinds.(e) with
  | Event.Sync (Event.Sem_p s | Event.Sem_v s) -> Some (`Sem s)
  | Event.Sync (Event.Post v | Event.Wait v | Event.Clear v) -> Some (`Ev v)
  | Event.Computation | Event.Sync (Event.Fork | Event.Join) -> None

let independent (sk : Skeleton.t) a b =
  let events = sk.Skeleton.execution.Execution.events in
  a <> b
  && events.(a).Event.pid <> events.(b).Event.pid
  && (match (sync_object sk a, sync_object sk b) with
     | Some oa, Some ob -> oa <> ob
     | _ -> true)
  && (not (List.mem a sk.Skeleton.dep_preds.(b)))
  && (not (List.mem b sk.Skeleton.dep_preds.(a)))
  && (not (List.mem a sk.Skeleton.po_preds.(b)))
  && not (List.mem b sk.Skeleton.po_preds.(a))

exception Stop

(* The search state machinery is Enumerate's; sleep sets ride on top. *)
let iter_representatives ?limit sk f =
  let st = Enumerate.make_search sk in
  let n = sk.Skeleton.n in
  let found = ref 0 in
  let rec go depth sleep =
    if depth = n then begin
      incr found;
      f st.Enumerate.schedule;
      match limit with Some l when !found >= l -> raise Stop | _ -> ()
    end
    else begin
      let explored = ref [] in
      for e = 0 to n - 1 do
        if Enumerate.ready st e && not (List.mem e sleep) then begin
          let sleep' =
            List.filter (fun u -> independent sk u e) (sleep @ !explored)
          in
          let token = Enumerate.execute st e in
          st.Enumerate.schedule.(depth) <- e;
          go (depth + 1) sleep';
          Enumerate.undo st e token;
          explored := e :: !explored
        end
      done
    end
  in
  (try go 0 [] with Stop -> ());
  !found

let count_representatives ?limit sk = iter_representatives ?limit sk (fun _ -> ())
