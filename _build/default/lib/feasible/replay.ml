type verdict =
  | Feasible
  | Not_a_permutation
  | Program_order_violated of { event : int; missing_pred : int }
  | Dependence_violated of { event : int; missing_pred : int }
  | Sync_blocked of { event : int }

exception Verdict of verdict

let check (sk : Skeleton.t) schedule =
  let n = sk.Skeleton.n in
  try
    if Array.length schedule <> n then raise (Verdict Not_a_permutation);
    let done_ = Array.make n false in
    let sem = Array.copy sk.Skeleton.sem_init in
    let ev = Array.copy sk.Skeleton.ev_init in
    Array.iter
      (fun e ->
        if e < 0 || e >= n || done_.(e) then raise (Verdict Not_a_permutation);
        List.iter
          (fun p ->
            if not done_.(p) then
              raise (Verdict (Program_order_violated { event = e; missing_pred = p })))
          sk.Skeleton.po_preds.(e);
        List.iter
          (fun p ->
            if not done_.(p) then
              raise (Verdict (Dependence_violated { event = e; missing_pred = p })))
          sk.Skeleton.dep_preds.(e);
        (match sk.Skeleton.kinds.(e) with
        | Event.Computation | Event.Sync (Event.Fork | Event.Join) -> ()
        | Event.Sync (Event.Sem_p s) ->
            if sem.(s) <= 0 then raise (Verdict (Sync_blocked { event = e }));
            sem.(s) <- sem.(s) - 1
        | Event.Sync (Event.Sem_v s) ->
            if sk.Skeleton.sem_binary.(s) then sem.(s) <- 1
            else sem.(s) <- sem.(s) + 1
        | Event.Sync (Event.Post v) -> ev.(v) <- true
        | Event.Sync (Event.Wait v) ->
            if not ev.(v) then raise (Verdict (Sync_blocked { event = e }))
        | Event.Sync (Event.Clear v) -> ev.(v) <- false);
        done_.(e) <- true)
      schedule;
    Feasible
  with Verdict v -> v

let is_feasible sk schedule = check sk schedule = Feasible

let pp_verdict ppf = function
  | Feasible -> Format.pp_print_string ppf "feasible"
  | Not_a_permutation -> Format.pp_print_string ppf "not a permutation of the events"
  | Program_order_violated { event; missing_pred } ->
      Format.fprintf ppf "event %d scheduled before its program-order predecessor %d"
        event missing_pred
  | Dependence_violated { event; missing_pred } ->
      Format.fprintf ppf "event %d scheduled before its dependence predecessor %d"
        event missing_pred
  | Sync_blocked { event } ->
      Format.fprintf ppf "synchronization event %d scheduled while blocked" event
