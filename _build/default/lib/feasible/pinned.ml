let sync_edges (sk : Skeleton.t) schedule =
  let edges = ref [] in
  let n_sems = Array.length sk.Skeleton.sem_init in
  let n_evs = Array.length sk.Skeleton.ev_init in
  (* Per semaphore: queue of unmatched completed V events, and remaining
     initial tokens.  The i-th P pairs with the (i - init)-th V.  On a
     binary semaphore a V arriving while a token is outstanding is absorbed
     and provides nothing. *)
  let unmatched_v = Array.make n_sems [] in
  let tokens = Array.copy sk.Skeleton.sem_init in
  (* Per event variable: is the variable currently set, and if so by which
     Post?  [trigger.(v) = Some p] records the {e earliest} Post since the
     last Clear — the post whose completion first made every later Wait
     enabled; later Posts in the same set-interval are redundant and can
     race with the Wait.  [None] with [set] true means the initial state is
     still in force and Waits need no trigger edge. *)
  let set_now = Array.copy sk.Skeleton.ev_init in
  let trigger = Array.make n_evs None in
  Array.iter
    (fun e ->
      match sk.Skeleton.kinds.(e) with
      | Event.Sync (Event.Sem_v s) ->
          if
            sk.Skeleton.sem_binary.(s)
            && tokens.(s) + List.length unmatched_v.(s) >= 1
          then () (* absorbed: the semaphore is already at 1 *)
          else unmatched_v.(s) <- unmatched_v.(s) @ [ e ]
      | Event.Sync (Event.Sem_p s) ->
          if tokens.(s) > 0 then tokens.(s) <- tokens.(s) - 1
          else begin
            match unmatched_v.(s) with
            | v :: rest ->
                edges := (v, e) :: !edges;
                unmatched_v.(s) <- rest
            | [] -> invalid_arg "Pinned: schedule is not feasible (P underflow)"
          end
      | Event.Sync (Event.Post v) ->
          if not set_now.(v) then trigger.(v) <- Some e;
          set_now.(v) <- true
      | Event.Sync (Event.Clear v) ->
          set_now.(v) <- false;
          trigger.(v) <- None
      | Event.Sync (Event.Wait v) ->
          if not set_now.(v) then
            invalid_arg "Pinned: schedule is not feasible (wait unset)";
          (match trigger.(v) with
          | Some p -> edges := (p, e) :: !edges
          | None -> () (* initial state: no ordering forced *))
      | Event.Computation | Event.Sync (Event.Fork | Event.Join) -> ())
    schedule;
  List.rev !edges

let po_of_schedule (sk : Skeleton.t) schedule =
  (match Replay.check sk schedule with
  | Replay.Feasible -> ()
  | v ->
      invalid_arg
        (Format.asprintf "Pinned.po_of_schedule: %a" Replay.pp_verdict v));
  let r = Rel.create sk.Skeleton.n in
  for b = 0 to sk.Skeleton.n - 1 do
    List.iter (fun a -> Rel.add r a b) sk.Skeleton.po_preds.(b);
    List.iter (fun a -> Rel.add r a b) sk.Skeleton.dep_preds.(b)
  done;
  List.iter (fun (a, b) -> Rel.add r a b) (sync_edges sk schedule);
  Rel.transitive_closure_in_place r;
  r
