(** The re-executable view of an observed program execution.

    A skeleton keeps, for every event of the observed execution, exactly the
    information needed to decide when the event may occur in an alternate
    schedule: its immediate program-order predecessors, its shared-data
    dependence predecessors (condition F3), and its synchronization
    operation.  The set of feasible program executions [F(P)] of Section 3.1
    is precisely the set of complete schedules of the skeleton: every
    interleaving of the same events that respects program order, obeys the
    synchronization semantics, and preserves every observed dependence. *)

type t = {
  execution : Execution.t;
  n : int;  (** number of events *)
  po_preds : int list array;  (** immediate program-order predecessors *)
  po_succs : int list array;
  dep_preds : int list array;  (** shared-data dependence predecessors *)
  kinds : Event.kind array;
  sem_init : int array;
  sem_binary : bool array;
  ev_init : bool array;
}

val of_execution : Execution.t -> t

val constraint_graph : t -> Digraph.t
(** Program-order and dependence edges as one digraph (synchronization
    constraints are {e not} included — they are not expressible as static
    edges).  Every feasible schedule is a linear extension of this graph;
    the converse fails exactly when synchronization matters. *)

val pp : Format.formatter -> t -> unit
