(** Graphviz (DOT) export of the analysis artifacts: executions, pinned
    partial orders, task graphs, and relation matrices.

    Every function writes a self-contained [digraph] to the formatter; feed
    the output to [dot -Tsvg].  Events are rendered with their labels,
    clustered by process; synchronization events are boxes, computation
    events ellipses.  Edge styles: solid for program order, dashed for
    shared-data dependences, bold for synchronization-derived edges. *)

val execution : Format.formatter -> Execution.t -> unit
(** Program order (solid, transitively reduced) and dependences (dashed). *)

val pinned : Format.formatter -> Skeleton.t -> int array -> unit
(** The pinned partial order of one feasible schedule: program order solid,
    dependences dashed, synchronization pairing/trigger edges bold.  The
    rendering shows the transitive reduction. *)

val task_graph : Format.formatter -> Execution.t -> Egp.t -> unit
(** The Emrath–Ghosh–Padua task graph: machine/task edges solid, added
    synchronization edges bold. *)

val relation : Format.formatter -> Execution.t * Rel.t * string -> unit
(** An arbitrary relation over the events (e.g. a Table 1 matrix), shown
    transitively reduced when it is acyclic and in full otherwise. *)

val escape : string -> string
(** DOT-escape a label (exposed for tests). *)
