let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let node_line ppf (e : Event.t) =
  let shape = if Event.is_sync e then "box" else "ellipse" in
  Format.fprintf ppf "  e%d [label=\"%s\", shape=%s];@." e.Event.id
    (escape e.Event.label) shape

let clusters ppf (x : Execution.t) =
  List.iter
    (fun pid ->
      Format.fprintf ppf "  subgraph cluster_p%d {@." pid;
      Format.fprintf ppf "    label=\"process %d\"; style=dotted;@." pid;
      List.iter (fun e -> Format.fprintf ppf "  %a" node_line e)
        (Execution.events_of_process x pid);
      Format.fprintf ppf "  }@.")
    (Execution.processes x)

let edges ppf ?(attrs = "") rel =
  Rel.iter (fun a b -> Format.fprintf ppf "  e%d -> e%d%s;@." a b attrs) rel

let reduced rel = if Rel.is_acyclic rel then Rel.transitive_reduction rel else rel

let execution ppf (x : Execution.t) =
  Format.fprintf ppf "digraph execution {@.  rankdir=TB;@.";
  clusters ppf x;
  edges ppf (reduced x.Execution.program_order);
  (* Dependences that merely parallel program order add noise, not info. *)
  let po = Execution.po_closure x in
  edges ppf ~attrs:" [style=dashed, color=red]"
    (Rel.diff x.Execution.dependences po);
  Format.fprintf ppf "}@."

let pinned ppf (sk : Skeleton.t) schedule =
  let x = sk.Skeleton.execution in
  (* Validates feasibility of the schedule as a side effect. *)
  let (_ : Rel.t) = Pinned.po_of_schedule sk schedule in
  Format.fprintf ppf "digraph pinned {@.  rankdir=TB;@.";
  clusters ppf x;
  let program_order = reduced x.Execution.program_order in
  edges ppf program_order;
  let sync = Rel.create sk.Skeleton.n in
  List.iter (fun (a, b) -> Rel.add sync a b) (Pinned.sync_edges sk schedule);
  edges ppf ~attrs:" [style=bold, color=blue]" sync;
  let deps_only =
    Rel.diff
      (Rel.diff x.Execution.dependences (Rel.transitive_closure program_order))
      sync
  in
  edges ppf ~attrs:" [style=dashed, color=red]" deps_only;
  Format.fprintf ppf "}@."

let task_graph ppf (x : Execution.t) (egp : Egp.t) =
  Format.fprintf ppf "digraph taskgraph {@.  rankdir=TB;@.";
  let g = Egp.graph egp in
  for node = 0 to Digraph.size g - 1 do
    let e = x.Execution.events.(Egp.event_of_node egp node) in
    Format.fprintf ppf "  n%d [label=\"%s\", shape=box];@." node
      (escape e.Event.label)
  done;
  let is_sync_edge =
    let node_pairs =
      List.filter_map
        (fun (a, b) ->
          match (Egp.node_of_event egp a, Egp.node_of_event egp b) with
          | Some na, Some nb -> Some (na, nb)
          | _ -> None)
        (Egp.sync_edges egp)
    in
    fun a b -> List.mem (a, b) node_pairs
  in
  for node = 0 to Digraph.size g - 1 do
    List.iter
      (fun succ ->
        Format.fprintf ppf "  n%d -> n%d%s;@." node succ
          (if is_sync_edge node succ then " [style=bold, color=blue]" else ""))
      (Digraph.succs g node)
  done;
  Format.fprintf ppf "}@."

let relation ppf ((x : Execution.t), rel, name) =
  Format.fprintf ppf "digraph %s {@.  rankdir=TB;@." (escape name);
  Array.iter (fun e -> node_line ppf e) x.Execution.events;
  edges ppf (reduced rel);
  Format.fprintf ppf "}@."
