(** Propositional formulas in conjunctive normal form.

    Variables are numbered [1 .. num_vars].  A literal is a non-zero integer:
    positive for the variable itself, negative for its negation (the DIMACS
    convention).  A clause is a disjunction of literals; a formula is a
    conjunction of clauses. *)

type literal = int

type clause = literal list

type t = { num_vars : int; clauses : clause list }

val make : num_vars:int -> clause list -> t
(** Validates that every literal mentions a variable in range and no clause
    is empty of variables it can't be — empty clauses are allowed (they make
    the formula unsatisfiable) but literals must satisfy
    [1 <= abs lit <= num_vars].  Raises [Invalid_argument] otherwise. *)

val num_clauses : t -> int

val var : literal -> int
(** [var l = abs l]. *)

val negate : literal -> literal

val is_three_cnf : t -> bool
(** Every clause has exactly three literals. *)

val eval_clause : bool array -> clause -> bool
(** [eval_clause assignment c]: the assignment array is indexed by variable
    number ([assignment.(v)] for [v >= 1]; index 0 is unused). *)

val eval : bool array -> t -> bool

val clause_mem : literal -> clause -> bool

val simplify : t -> literal -> t
(** [simplify f l] assumes literal [l] true: removes clauses containing [l]
    and removes [negate l] from the rest.  [num_vars] is unchanged. *)

val pp : Format.formatter -> t -> unit
(** Human-readable form, e.g. [(x1 | ~x2 | x3) & (~x1 | x2 | x2)]. *)
