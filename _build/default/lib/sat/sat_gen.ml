let three_distinct_vars rng num_vars =
  let v1 = 1 + Random.State.int rng num_vars in
  let rec draw exclude =
    let v = 1 + Random.State.int rng num_vars in
    if List.mem v exclude then draw exclude else v
  in
  let v2 = draw [ v1 ] in
  let v3 = draw [ v1; v2 ] in
  (v1, v2, v3)

let random_sign rng v = if Random.State.bool rng then v else -v

let random_3cnf ~seed ~num_vars ~num_clauses =
  if num_vars < 3 then invalid_arg "Sat_gen.random_3cnf: need >= 3 variables";
  let rng = Random.State.make [| seed |] in
  let clause () =
    let v1, v2, v3 = three_distinct_vars rng num_vars in
    [ random_sign rng v1; random_sign rng v2; random_sign rng v3 ]
  in
  Cnf.make ~num_vars (List.init num_clauses (fun _ -> clause ()))

let planted_3cnf ~seed ~num_vars ~num_clauses =
  if num_vars < 3 then invalid_arg "Sat_gen.planted_3cnf: need >= 3 variables";
  let rng = Random.State.make [| seed |] in
  let hidden = Array.init (num_vars + 1) (fun _ -> Random.State.bool rng) in
  let satisfied_lit v = if hidden.(v) then v else -v in
  let clause () =
    let v1, v2, v3 = three_distinct_vars rng num_vars in
    (* Force the first literal to agree with the hidden assignment. *)
    [ satisfied_lit v1; random_sign rng v2; random_sign rng v3 ]
  in
  Cnf.make ~num_vars (List.init num_clauses (fun _ -> clause ()))

let all_sign_patterns vars =
  let rec go = function
    | [] -> [ [] ]
    | v :: rest ->
        let tails = go rest in
        List.map (fun t -> v :: t) tails @ List.map (fun t -> -v :: t) tails
  in
  go vars

let tiny_sat_3cnf () = Cnf.make ~num_vars:1 [ [ 1; 1; 1 ] ]

let tiny_unsat_3cnf () = Cnf.make ~num_vars:1 [ [ 1; 1; 1 ]; [ -1; -1; -1 ] ]

let tiny_3cnf_pair () =
  [ ("satisfiable", tiny_sat_3cnf ()); ("unsatisfiable", tiny_unsat_3cnf ()) ]

let unsat_3cnf_small () = Cnf.make ~num_vars:3 (all_sign_patterns [ 1; 2; 3 ])

let sat_3cnf_small () =
  Cnf.make ~num_vars:3 [ [ 1; 2; 3 ]; [ -1; 2; -3 ]; [ 1; -2; 3 ] ]

let pigeonhole n =
  if n < 1 then invalid_arg "Sat_gen.pigeonhole: need n >= 1";
  (* Variable p_{i,j} ("pigeon i sits in hole j") is numbered i*n + j + 1 for
     i in 0..n (n+1 pigeons), j in 0..n-1 (n holes). *)
  let var i j = (i * n) + j + 1 in
  let pigeon_clauses =
    List.init (n + 1) (fun i -> List.init n (fun j -> var i j))
  in
  let hole_clauses =
    List.concat_map
      (fun j ->
        let rec pairs i acc =
          if i > n then acc
          else
            pairs (i + 1)
              (List.init i (fun i' -> [ -var i' j; -var i j ]) @ acc)
        in
        pairs 1 [])
      (List.init n Fun.id)
  in
  Cnf.make ~num_vars:((n + 1) * n) (pigeon_clauses @ hole_clauses)
