let parse text =
  let lines = String.split_on_char '\n' text in
  let header = ref None in
  let tokens = ref [] in
  List.iter
    (fun line ->
      let line = String.trim line in
      if line = "" || line.[0] = 'c' then ()
      else if line.[0] = 'p' then begin
        if !header <> None then failwith "Dimacs.parse: duplicate header";
        match String.split_on_char ' ' line |> List.filter (( <> ) "") with
        | [ "p"; "cnf"; vars; clauses ] -> (
            match (int_of_string_opt vars, int_of_string_opt clauses) with
            | Some v, Some c -> header := Some (v, c)
            | _ -> failwith "Dimacs.parse: malformed header numbers")
        | _ -> failwith "Dimacs.parse: malformed header line"
      end
      else
        String.split_on_char ' ' line
        |> List.filter (( <> ) "")
        |> List.iter (fun tok ->
               match int_of_string_opt tok with
               | Some i -> tokens := i :: !tokens
               | None -> failwith "Dimacs.parse: non-integer literal"))
    lines;
  let num_vars, expected_clauses =
    match !header with
    | Some h -> h
    | None -> failwith "Dimacs.parse: missing 'p cnf' header"
  in
  let clauses, current =
    List.fold_left
      (fun (clauses, current) tok ->
        if tok = 0 then (List.rev current :: clauses, [])
        else (clauses, tok :: current))
      ([], [])
      (List.rev !tokens)
  in
  if current <> [] then failwith "Dimacs.parse: clause missing terminating 0";
  let clauses = List.rev clauses in
  if List.length clauses <> expected_clauses then
    failwith "Dimacs.parse: clause count disagrees with header";
  Cnf.make ~num_vars clauses

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse text

let print ppf (f : Cnf.t) =
  Format.fprintf ppf "p cnf %d %d@." f.Cnf.num_vars (Cnf.num_clauses f);
  List.iter
    (fun clause ->
      List.iter (fun l -> Format.fprintf ppf "%d " l) clause;
      Format.fprintf ppf "0@.")
    f.Cnf.clauses

let to_string f = Format.asprintf "%a" print f
