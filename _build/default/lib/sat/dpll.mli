(** A from-scratch DPLL satisfiability solver.

    Used as the oracle that cross-checks the Theorem 1–4 reductions: the
    exact event-ordering engine must agree with this solver on every
    generated instance ([a MHB b] iff the formula is unsatisfiable). *)

type result =
  | Sat of bool array
      (** A satisfying assignment, indexed by variable number (index 0
          unused).  Variables the formula does not constrain may carry
          either value. *)
  | Unsat

type stats = {
  decisions : int;  (** branching choices made *)
  propagations : int;  (** unit-clause propagations *)
  max_depth : int;  (** deepest decision stack *)
}

val solve : Cnf.t -> result
(** DPLL with unit propagation, pure-literal elimination and
    most-occurrences branching. *)

val solve_with_stats : Cnf.t -> result * stats

val is_satisfiable : Cnf.t -> bool

val brute_force : Cnf.t -> result
(** Exhaustive truth-table search; exponential, for cross-checking the
    solver on small formulas. *)

val count_models : Cnf.t -> int
(** Number of satisfying assignments over all [num_vars] variables
    (exhaustive; intended for formulas with at most ~20 variables). *)
