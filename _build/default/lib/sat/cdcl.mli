(** A conflict-driven clause-learning SAT solver.

    The serious sibling of {!Dpll}: two-watched-literal propagation,
    first-UIP conflict analysis with clause learning, VSIDS-style activity
    branching with decay, non-chronological backjumping, and Luby restarts.
    Still self-contained and dependency-free.

    The reduction experiments use {!Dpll} (its instances are tiny); this
    solver exists so the SAT substrate holds up on the harder instances the
    benchmarks sweep (random 3-CNF near the phase transition, pigeonhole),
    and as a second independent oracle: the test suite cross-checks CDCL,
    DPLL and brute force against each other. *)

type result = Sat of bool array | Unsat

type stats = {
  decisions : int;
  propagations : int;
  conflicts : int;
  learned : int;  (** clauses learned *)
  restarts : int;
  max_decision_level : int;
}

val solve : Cnf.t -> result
(** The satisfying assignment is indexed by variable number (index 0
    unused); unconstrained variables may carry either value. *)

val solve_with_stats : Cnf.t -> result * stats

val is_satisfiable : Cnf.t -> bool
