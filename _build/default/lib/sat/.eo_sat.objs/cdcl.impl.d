lib/sat/cdcl.ml: Array Cnf List
