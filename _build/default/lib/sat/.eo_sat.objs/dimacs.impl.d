lib/sat/dimacs.ml: Cnf Format List String
