lib/sat/sat_gen.ml: Array Cnf Fun List Random
