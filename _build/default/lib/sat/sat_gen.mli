(** Deterministic (seeded) CNF instance generators for the reduction
    experiments.  All generators are pure functions of their parameters. *)

val random_3cnf : seed:int -> num_vars:int -> num_clauses:int -> Cnf.t
(** Uniformly random 3-CNF: each clause picks three distinct variables and
    independent signs.  Requires [num_vars >= 3]. *)

val planted_3cnf : seed:int -> num_vars:int -> num_clauses:int -> Cnf.t
(** Random 3-CNF that is satisfiable by construction: a hidden assignment is
    drawn first and every clause is forced to contain at least one literal
    it satisfies.  Requires [num_vars >= 3]. *)

val tiny_sat_3cnf : unit -> Cnf.t
(** [(x1|x1|x1)] — the smallest satisfiable 3-CNF (3SAT in the
    Garey–Johnson sense allows a literal to repeat within a clause). *)

val tiny_unsat_3cnf : unit -> Cnf.t
(** [(x1|x1|x1) & (~x1|~x1|~x1)] — the smallest unsatisfiable 3-CNF.  The
    reduction experiments lean on these: a "pure" unsatisfiable 3-CNF with
    three distinct variables per clause needs at least 8 clauses, far past
    what the exponential exact engine can digest. *)

val tiny_3cnf_pair : unit -> (string * Cnf.t) list
(** Both tiny formulas, labelled, for tests and demos. *)

val unsat_3cnf_small : unit -> Cnf.t
(** A fixed small unsatisfiable 3-CNF (8 clauses over 3 variables: all sign
    patterns, so no assignment satisfies every clause). *)

val sat_3cnf_small : unit -> Cnf.t
(** A fixed small satisfiable 3-CNF over 3 variables. *)

val pigeonhole : int -> Cnf.t
(** [pigeonhole n] encodes placing [n+1] pigeons into [n] holes — classic
    unsatisfiable family with exponential resolution proofs.  Clauses are not
    3-CNF (pigeon clauses have [n] literals). *)

val all_sign_patterns : int list -> Cnf.clause list
(** [all_sign_patterns vars] is the [2^k] clauses obtained by negating the
    variables of [vars] in every possible combination — conjunction of all of
    them is unsatisfiable. *)
