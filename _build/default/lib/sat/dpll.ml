type result = Sat of bool array | Unsat

type stats = { decisions : int; propagations : int; max_depth : int }

(* The solver works on a simplified-formula representation: a list of
   clauses, shrinking as literals are assigned.  An empty clause means the
   current branch is contradictory; an empty clause list means satisfied. *)

let find_unit clauses =
  List.find_map (function [ l ] -> Some l | _ -> None) clauses

let find_pure num_vars clauses =
  let pos = Array.make (num_vars + 1) false in
  let neg = Array.make (num_vars + 1) false in
  List.iter
    (List.iter (fun l -> if l > 0 then pos.(l) <- true else neg.(-l) <- true))
    clauses;
  let rec go v =
    if v > num_vars then None
    else if pos.(v) && not neg.(v) then Some v
    else if neg.(v) && not pos.(v) then Some (-v)
    else go (v + 1)
  in
  go 1

(* Branch on the literal occurring most often, breaking ties toward the
   smallest variable, positive phase. *)
let choose_branch num_vars clauses =
  let occ = Array.make (2 * (num_vars + 1)) 0 in
  let slot l = if l > 0 then 2 * l else (2 * -l) + 1 in
  List.iter (List.iter (fun l -> occ.(slot l) <- occ.(slot l) + 1)) clauses;
  let best = ref 0 and best_count = ref (-1) in
  for v = num_vars downto 1 do
    if occ.(slot (-v)) >= !best_count then begin
      best := -v;
      best_count := occ.(slot (-v))
    end;
    if occ.(slot v) >= !best_count then begin
      best := v;
      best_count := occ.(slot v)
    end
  done;
  !best

let assign_lit assignment l =
  if l > 0 then assignment.(l) <- true else assignment.(-l) <- false

let simplify_clauses clauses l =
  let neg = -l in
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | c :: rest ->
        if List.mem l c then go acc rest
        else
          let c' = List.filter (fun l' -> l' <> neg) c in
          if c' = [] then None (* conflict *)
          else go (c' :: acc) rest
  in
  go [] clauses

let solve_with_stats (f : Cnf.t) =
  let decisions = ref 0 in
  let propagations = ref 0 in
  let max_depth = ref 0 in
  let assignment = Array.make (f.Cnf.num_vars + 1) false in
  let rec go depth clauses =
    if depth > !max_depth then max_depth := depth;
    match clauses with
    | [] -> true
    | _ -> (
        match find_unit clauses with
        | Some l -> propagate depth clauses l ~count_propagation:true
        | None -> (
            match find_pure f.Cnf.num_vars clauses with
            | Some l -> propagate depth clauses l ~count_propagation:true
            | None ->
                let l = choose_branch f.Cnf.num_vars clauses in
                incr decisions;
                branch depth clauses l || branch depth clauses (-l)))
  and propagate depth clauses l ~count_propagation =
    if count_propagation then incr propagations;
    match simplify_clauses clauses l with
    | None -> false
    | Some clauses' ->
        assign_lit assignment l;
        go (depth + 1) clauses'
  and branch depth clauses l =
    match simplify_clauses clauses l with
    | None -> false
    | Some clauses' ->
        assign_lit assignment l;
        go (depth + 1) clauses'
  in
  let sat =
    (* An explicitly empty clause is unsatisfiable from the start. *)
    (not (List.exists (fun c -> c = []) f.Cnf.clauses))
    && go 0 f.Cnf.clauses
  in
  let stats =
    { decisions = !decisions; propagations = !propagations;
      max_depth = !max_depth }
  in
  if sat then begin
    (* Failed branches may leave stale values on variables the successful
       branch never touched; those variables are unconstrained, so the
       assignment must still satisfy the formula. *)
    assert (Cnf.eval assignment f);
    (Sat assignment, stats)
  end
  else (Unsat, stats)

let solve f = fst (solve_with_stats f)

let is_satisfiable f = match solve f with Sat _ -> true | Unsat -> false

let brute_force (f : Cnf.t) =
  let n = f.Cnf.num_vars in
  let assignment = Array.make (n + 1) false in
  let rec go v =
    if v > n then Cnf.eval assignment f
    else begin
      assignment.(v) <- false;
      go (v + 1)
      ||
      begin
        assignment.(v) <- true;
        let r = go (v + 1) in
        if not r then assignment.(v) <- false;
        r
      end
    end
  in
  if go 1 then Sat assignment else Unsat

let count_models (f : Cnf.t) =
  let n = f.Cnf.num_vars in
  let assignment = Array.make (n + 1) false in
  let count = ref 0 in
  let rec go v =
    if v > n then begin
      if Cnf.eval assignment f then incr count
    end
    else begin
      assignment.(v) <- false;
      go (v + 1);
      assignment.(v) <- true;
      go (v + 1);
      assignment.(v) <- false
    end
  in
  go 1;
  !count
