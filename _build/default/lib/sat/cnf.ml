type literal = int

type clause = literal list

type t = { num_vars : int; clauses : clause list }

let var l = abs l

let negate l = -l

let make ~num_vars clauses =
  if num_vars < 0 then invalid_arg "Cnf.make: negative num_vars";
  List.iter
    (List.iter (fun l ->
         if l = 0 || var l > num_vars then
           invalid_arg "Cnf.make: literal out of range"))
    clauses;
  { num_vars; clauses }

let num_clauses f = List.length f.clauses

let is_three_cnf f = List.for_all (fun c -> List.length c = 3) f.clauses

let lit_true assignment l =
  if l > 0 then assignment.(l) else not assignment.(-l)

let eval_clause assignment c = List.exists (lit_true assignment) c

let eval assignment f = List.for_all (eval_clause assignment) f.clauses

let clause_mem l c = List.mem l c

let simplify f l =
  let clauses =
    List.filter_map
      (fun c ->
        if clause_mem l c then None
        else Some (List.filter (fun l' -> l' <> negate l) c))
      f.clauses
  in
  { f with clauses }

let pp_literal ppf l =
  if l > 0 then Format.fprintf ppf "x%d" l
  else Format.fprintf ppf "~x%d" (-l)

let pp ppf f =
  let pp_clause ppf c =
    Format.fprintf ppf "(%a)"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " | ")
         pp_literal)
      c
  in
  match f.clauses with
  | [] -> Format.pp_print_string ppf "true"
  | cs ->
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " & ")
        pp_clause ppf cs
