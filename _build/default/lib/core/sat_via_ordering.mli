(** Satisfiability decided by the event-ordering oracle — the reduction run
    in the direction that proves the hardness.

    Theorem 2 states [b CHB a ⇔ B satisfiable]: so a could-have-happened-
    before oracle decides 3CNFSAT.  This module makes the implication
    executable: it builds the Theorem 1/2 program for a formula, asks the
    exact engine the one ordering question, and answers satisfiability —
    and when the formula is satisfiable it extracts a model from the
    witness schedule (the literal semaphores whose tokens flowed before the
    second pass are the guessed-true literals).

    It is, of course, an absurd way to solve SAT — exponentially slower
    than the bundled DPLL solver on the very instance it encodes.  That
    absurdity is the paper's point, and the benchmark quantifies it. *)

val is_satisfiable : Cnf.t -> bool
(** Via [b CHB a] on the semaphore reduction.  Exponential. *)

val solve : Cnf.t -> bool array option
(** [Some assignment] (indexed by variable, entry 0 unused) extracted from
    a witness schedule, or [None] when unsatisfiable.  The assignment is
    validated against the formula before being returned. *)
