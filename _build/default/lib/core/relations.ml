type relation = MHB | CHB | MCW | CCW | MOW | COW

let all_relations = [ MHB; CHB; MCW; CCW; MOW; COW ]

let relation_name = function
  | MHB -> "must-have-happened-before"
  | CHB -> "could-have-happened-before"
  | MCW -> "must-have-been-concurrent-with"
  | CCW -> "could-have-been-concurrent-with"
  | MOW -> "must-have-been-ordered-with"
  | COW -> "could-have-been-ordered-with"

type t = {
  n : int;
  feasible_count : int;
  truncated : bool;
  distinct_classes : int;
  before_some : Rel.t;
  comparable_some : Rel.t;
  incomparable_some : Rel.t;
}

let compute ?limit sk =
  let n = sk.Skeleton.n in
  let before_some = Rel.create n in
  let comparable_some = Rel.create n in
  let incomparable_some = Rel.create n in
  let position = Array.make n 0 in
  let classes = Hashtbl.create 64 in
  let visit schedule =
    Array.iteri (fun pos e -> position.(e) <- pos) schedule;
    let po = Pinned.po_of_schedule sk schedule in
    Hashtbl.replace classes (Rel.to_pairs po) ();
    for a = 0 to n - 1 do
      for b = 0 to n - 1 do
        if a <> b then begin
          if position.(a) < position.(b) then Rel.add before_some a b;
          if Rel.mem po a b || Rel.mem po b a then Rel.add comparable_some a b
          else Rel.add incomparable_some a b
        end
      done
    done
  in
  let feasible_count = Enumerate.iter ?limit sk visit in
  let truncated =
    match limit with Some l -> feasible_count >= l | None -> false
  in
  { n; feasible_count; truncated; distinct_classes = Hashtbl.length classes;
    before_some; comparable_some; incomparable_some }

let compute_reduced sk =
  let n = sk.Skeleton.n in
  let reach = Reach.create sk in
  let before_some = Rel.create n in
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      if Reach.exists_before reach a b then Rel.add before_some a b
    done
  done;
  let comparable_some = Rel.create n in
  let incomparable_some = Rel.create n in
  let classes = Hashtbl.create 64 in
  let (_ : int) =
    Por.iter_representatives sk (fun schedule ->
        let po = Pinned.po_of_schedule sk schedule in
        Hashtbl.replace classes (Rel.to_pairs po) ();
        for a = 0 to n - 1 do
          for b = 0 to n - 1 do
            if a <> b then
              if Rel.mem po a b || Rel.mem po b a then
                Rel.add comparable_some a b
              else Rel.add incomparable_some a b
          done
        done)
  in
  {
    n;
    feasible_count = Reach.schedule_count reach;
    truncated = false;
    distinct_classes = Hashtbl.length classes;
    before_some;
    comparable_some;
    incomparable_some;
  }

let holds t relation a b =
  if a = b then false
  else
    match relation with
    | CHB -> Rel.mem t.before_some a b
    | MHB -> t.feasible_count > 0 && not (Rel.mem t.before_some b a)
    | CCW -> Rel.mem t.incomparable_some a b
    | MOW -> t.feasible_count > 0 && not (Rel.mem t.incomparable_some a b)
    | COW -> Rel.mem t.comparable_some a b
    | MCW -> t.feasible_count > 0 && not (Rel.mem t.comparable_some a b)

let to_rel t relation =
  let r = Rel.create t.n in
  for a = 0 to t.n - 1 do
    for b = 0 to t.n - 1 do
      if holds t relation a b then Rel.add r a b
    done
  done;
  r

let short_name = function
  | MHB -> "MHB"
  | CHB -> "CHB"
  | MCW -> "MCW"
  | CCW -> "CCW"
  | MOW -> "MOW"
  | COW -> "COW"

let pp_matrix ppf (t, relation, events) =
  let label e = events.(e).Event.label in
  let width =
    Array.fold_left (fun w e -> max w (String.length e.Event.label)) 3 events
  in
  Format.fprintf ppf "@[<v>%s (%s):@ " (relation_name relation)
    (short_name relation);
  Format.fprintf ppf "%*s " width "";
  for b = 0 to t.n - 1 do
    Format.fprintf ppf "%2d " b
  done;
  Format.fprintf ppf "@ ";
  for a = 0 to t.n - 1 do
    Format.fprintf ppf "%*s " width (label a);
    for b = 0 to t.n - 1 do
      Format.fprintf ppf " %s "
        (if a = b then "." else if holds t relation a b then "X" else "-")
    done;
    Format.fprintf ppf "@ "
  done;
  Format.fprintf ppf "@]"

let pp_summary ppf (t, events) =
  Format.fprintf ppf "@[<v>%d feasible schedule%s%s in %d distinct class%s@ @ "
    t.feasible_count
    (if t.feasible_count = 1 then "" else "s")
    (if t.truncated then " (truncated)" else "")
    t.distinct_classes
    (if t.distinct_classes = 1 then "" else "es");
  List.iter
    (fun r -> Format.fprintf ppf "%a@ " pp_matrix (t, r, events))
    all_relations;
  Format.fprintf ppf "@]"
