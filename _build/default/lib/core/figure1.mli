(** The paper's Figure 1: the example program fragment whose task graph
    misses an ordering enforced by a shared-data dependence.

    Three tasks are forked: the first posts [E] and then writes [x]; the
    second tests [x] and posts [E] on the true branch (waiting otherwise);
    the third waits on [E].  In the observed execution the first task runs
    to completion before the others, so the second task reads [x = 1] and
    posts.

    Because of the dependence from [x := 1] to [if x = 1], the second post
    cannot execute before the first — yet the task graph, which ignores
    dependences, shows no path between the two posts (Section 4). *)

val source : string
(** Concrete syntax of the fragment. *)

val program : unit -> Ast.t

val trace : unit -> Trace.t
(** The observed execution of Figure 1: the first created task executes
    completely before the other two. *)

type events = {
  post1 : int;  (** the post in the first task *)
  post2 : int;  (** the post in the second task (true branch) *)
  wait3 : int;  (** the wait in the third task *)
  write_x : int;  (** [x := 1] *)
  test_x : int;  (** [if x = 1] *)
}

val events : Trace.t -> events
(** The distinguished events of the observed trace. *)
