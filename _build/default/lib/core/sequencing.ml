type t = {
  costs : int array;
  precedence : (int * int) list;
  budget : int;
}

let n_tasks t = Array.length t.costs

let make ~costs ~precedence ~budget =
  let n = Array.length costs in
  if budget < 0 then invalid_arg "Sequencing.make: negative budget";
  List.iter
    (fun (a, b) ->
      if a < 0 || a >= n || b < 0 || b >= n || a = b then
        invalid_arg "Sequencing.make: bad precedence pair")
    precedence;
  let g = Digraph.create n in
  List.iter (fun (a, b) -> Digraph.add_edge g a b) precedence;
  if not (Digraph.is_dag g) then
    invalid_arg "Sequencing.make: cyclic precedence";
  { costs; precedence; budget }

(* DP over completed-task subsets: the cumulative cost of a subset is a
   function of the subset, so feasibility from a subset is memoizable.
   Instances stay small (<= ~20 tasks). *)
let search t =
  let n = n_tasks t in
  if n > 22 then invalid_arg "Sequencing: instance too large for the exact DP";
  let preds = Array.make n 0 in
  List.iter (fun (a, b) -> preds.(b) <- preds.(b) lor (1 lsl a)) t.precedence;
  let memo = Hashtbl.create 1024 in
  let cost_of = Array.map (fun c -> c) t.costs in
  let full = (1 lsl n) - 1 in
  let rec go mask cost =
    if mask = full then Some []
    else
      match Hashtbl.find_opt memo mask with
      | Some cached -> cached
      | None ->
          let rec try_task i =
            if i = n then None
            else if
              mask land (1 lsl i) = 0
              && preds.(i) land mask = preds.(i)
              && cost + cost_of.(i) <= t.budget
            then
              match go (mask lor (1 lsl i)) (cost + cost_of.(i)) with
              | Some rest -> Some (i :: rest)
              | None -> try_task (i + 1)
            else try_task (i + 1)
          in
          let r = try_task 0 in
          Hashtbl.add memo mask r;
          r
  in
  go 0 0

let witness t = search t

let feasible t = search t <> None

let random ~seed ~tasks =
  let rng = Random.State.make [| seed |] in
  let costs = Array.init tasks (fun _ -> Random.State.int rng 7 - 3) in
  let precedence =
    List.concat
      (List.init tasks (fun b ->
           List.filter_map
             (fun a ->
               if a < b && Random.State.int rng 4 = 0 then Some (a, b) else None)
             (List.init tasks Fun.id)))
  in
  make ~costs ~precedence ~budget:(Random.State.int rng 5)

let pp ppf t =
  Format.fprintf ppf "tasks [%s], budget %d, precedence [%s]"
    (String.concat "; " (Array.to_list (Array.map string_of_int t.costs)))
    t.budget
    (String.concat "; "
       (List.map (fun (a, b) -> Printf.sprintf "%d<%d" a b) t.precedence))
