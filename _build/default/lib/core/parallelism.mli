(** Parallelism structure of an execution class: critical path, width, and
    the classic scheduling bounds they induce.

    With every event costing one time unit, the pinned partial order of a
    schedule class determines how fast the execution could run on an ideal
    machine: the critical path (longest chain) is the makespan with
    unbounded processors; Brent's bound [n/p + critical_path] caps the
    makespan with [p] processors; the width (maximum antichain) is the
    largest number of events ever usefully in flight. *)

type t = {
  n_events : int;
  critical_path : int list;  (** one longest chain, in order *)
  critical_path_length : int;  (** events on the chain (= depth) *)
  width : int;  (** maximum antichain of the pinned order *)
  max_antichain : int list;
}

val analyze : Skeleton.t -> int array -> t
(** [analyze sk schedule] analyzes the pinned order of the given feasible
    schedule (raises [Invalid_argument] on an infeasible one). *)

val of_trace : Trace.t -> t
(** The observed schedule's class. *)

val ideal_makespan : t -> int
(** Time with unbounded processors: the critical-path length. *)

val brent_bound : t -> processors:int -> int
(** Graham/Brent upper bound on greedy-schedule makespan with [p]
    processors: [ceil((n - cp)/p) + cp]. *)

val speedup_limit : t -> float
(** [n / critical_path_length]: the best possible parallel speedup. *)

val pp : Format.formatter -> t -> unit
