type t = {
  program : Ast.t;
  instance : Sequencing.t;
  a_label : string;
  b_label : string;
}

let done_var i = Printf.sprintf "d%d" i

let build (instance : Sequencing.t) =
  let n = Sequencing.n_tasks instance in
  let preds_of i =
    List.filter_map
      (fun (a, b) -> if b = i then Some a else None)
      instance.Sequencing.precedence
  in
  let task_proc i =
    let c = instance.Sequencing.costs.(i) in
    let read_preds =
      (* One computation event reading every predecessor's completion
         variable: the shared-data dependences enforce the precedence. *)
      match preds_of i with
      | [] -> []
      | preds ->
          [
            Ast.Assign
              ( Printf.sprintf "r%d" i,
                List.fold_left
                  (fun acc p -> Expr.Add (acc, Expr.Var (done_var p)))
                  (Expr.Int 0) preds );
          ]
    in
    let sem_ops =
      if c > 0 then List.init c (fun _ -> Ast.Sem_p "s")
      else if c < 0 then List.init (-c) (fun _ -> Ast.Sem_v "s")
      else []
    in
    Ast.proc (Printf.sprintf "task%d" i)
      (read_preds @ sem_ops @ [ Ast.Assign (done_var i, Expr.Int 1) ])
  in
  let collector =
    Ast.proc "collector"
      [
        Ast.Assign
          ( "sum",
            List.fold_left
              (fun acc i -> Expr.Add (acc, Expr.Var (done_var i)))
              (Expr.Int 0)
              (List.init n Fun.id) );
        Ast.Skip (Some "b");
      ]
  in
  let total_p =
    Array.fold_left (fun acc c -> if c > 0 then acc + c else acc)
      0 instance.Sequencing.costs
  in
  let relief =
    Ast.proc "relief"
      (Ast.Skip (Some "a") :: List.init total_p (fun _ -> Ast.Sem_v "s"))
  in
  let program =
    Ast.program
      ~sem_init:[ ("s", instance.Sequencing.budget) ]
      (List.init n task_proc @ [ collector; relief ])
  in
  { program; instance; a_label = "a"; b_label = "b" }

(* Observed run: the relief process first (budget becomes irrelevant), then
   tasks in topological order, then the collector. *)
let completing_replay t =
  let n = Sequencing.n_tasks t.instance in
  let collector_pid = n and relief_pid = n + 1 in
  let g = Digraph.create n in
  List.iter (fun (a, b) -> Digraph.add_edge g a b) t.instance.Sequencing.precedence;
  let topo =
    match Digraph.topological_sort g with
    | Some o -> o
    | None -> assert false (* validated at Sequencing.make *)
  in
  let steps_of_task i =
    let c = abs t.instance.Sequencing.costs.(i) in
    let reads = if List.exists (fun (_, b) -> b = i) t.instance.Sequencing.precedence then 1 else 0 in
    reads + c + 1
  in
  let total_p =
    Array.fold_left (fun acc c -> if c > 0 then acc + c else acc)
      0 t.instance.Sequencing.costs
  in
  List.init (1 + total_p) (fun _ -> relief_pid)
  @ List.concat_map (fun i -> List.init (steps_of_task i) (fun _ -> i)) topo
  @ [ collector_pid; collector_pid ]

let trace t =
  let tr =
    Interp.run ~policy:(Sched.Replay (completing_replay t)) t.program
  in
  (match tr.Trace.outcome with
  | Trace.Completed -> ()
  | _ -> invalid_arg "Reduction_single_sem.trace: replay failed to complete");
  tr

let events_ab t tr =
  let a = Trace.find_event tr t.a_label in
  let b = Trace.find_event tr t.b_label in
  (a.Event.id, b.Event.id)

let semaphores_used t = List.length (Ast.semaphores t.program)

let check instance =
  let red = build instance in
  let tr = trace red in
  let a, b = events_ab red tr in
  let d = Decide.create (Trace.to_execution tr) in
  (Decide.chb d b a, Sequencing.feasible instance)
