type t = {
  program : Ast.t;
  formula : Cnf.t;
  binary : bool;
  a_label : string;
  b_label : string;
}

let lit_sem l =
  if l > 0 then Printf.sprintf "X%d" l else Printf.sprintf "Xbar%d" (-l)

let occurrences formula l =
  List.fold_left
    (fun acc clause ->
      acc + List.length (List.filter (fun l' -> l' = l) clause))
    0 formula.Cnf.clauses

let build ?(binary = false) formula =
  if not (Cnf.is_three_cnf formula) then
    invalid_arg "Reduction_sem.build: formula must be in 3-CNF";
  let n = formula.Cnf.num_vars in
  let clauses = formula.Cnf.clauses in
  let variable_procs =
    List.concat_map
      (fun i ->
        let gate =
          Ast.proc
            (Printf.sprintf "gate%d" i)
            [
              Ast.Sem_v (Printf.sprintf "A%d" i);
              Ast.Sem_p "Pass2";
              Ast.Sem_v (Printf.sprintf "A%d" i);
            ]
        in
        let assignment value =
          let lit = if value then i else -i in
          Ast.proc
            (Printf.sprintf "assign_%s%d" (if value then "true" else "false") i)
            (Ast.Sem_p (Printf.sprintf "A%d" i)
            :: List.init (occurrences formula lit) (fun _ ->
                   Ast.Sem_v (lit_sem lit)))
        in
        [ assignment true; assignment false; gate ])
      (List.init n (fun i -> i + 1))
  in
  let clause_procs =
    List.concat
      (List.mapi
         (fun j clause ->
           List.mapi
             (fun k lit ->
               Ast.proc
                 (Printf.sprintf "clause%d_%d" (j + 1) k)
                 [
                   Ast.Sem_p (lit_sem lit);
                   Ast.Sem_v (Printf.sprintf "C%d" (j + 1));
                 ])
             clause)
         clauses)
  in
  let proc_a =
    Ast.proc "proc_a"
      (Ast.Skip (Some "a") :: List.init n (fun _ -> Ast.Sem_v "Pass2"))
  in
  let proc_b =
    Ast.proc "proc_b"
      (List.init (List.length clauses) (fun j ->
           Ast.Sem_p (Printf.sprintf "C%d" (j + 1)))
      @ [ Ast.Skip (Some "b") ])
  in
  (* Declare the full complement of 3n + m + 1 semaphores even when a
     literal never occurs (its semaphore is then never operated on). *)
  let sem_init =
    List.concat_map
      (fun i ->
        [ (Printf.sprintf "A%d" i, 0); (lit_sem i, 0); (lit_sem (-i), 0) ])
      (List.init n (fun i -> i + 1))
    @ List.init (List.length clauses) (fun j -> (Printf.sprintf "C%d" (j + 1), 0))
    @ [ ("Pass2", 0) ]
  in
  let binary_sems = if binary then List.map fst sem_init else [] in
  let program =
    Ast.program ~sem_init ~binary_sems
      (variable_procs @ clause_procs @ [ proc_a; proc_b ])
  in
  { program; formula; binary; a_label = "a"; b_label = "b" }

(* A completing schedule that never lets a binary semaphore absorb a V that
   a P still needs: each V is immediately followed by its consumer.  Also
   valid (just stricter than necessary) under counting semantics.  Phases:
   1. every gate releases its first A-token and the true-assignment
      processes grab them (the all-true guess);
   2. each V of a true literal is consumed at once by its clause process;
   3. process a runs, interleaving each V(Pass2) with one gate's P(Pass2),
      second V(A) and the false-assignment process's P(A);
   4. each V of a negated literal is consumed by its clause process;
   5. process b drains the clause semaphores. *)
let completing_replay formula =
  let n = formula.Cnf.num_vars in
  let m = Cnf.num_clauses formula in
  let assign_true i = 3 * (i - 1) in
  let assign_false i = (3 * (i - 1)) + 1 in
  let gate i = (3 * (i - 1)) + 2 in
  let clause_proc j k = (3 * n) + (3 * j) + k in
  let a_pid = (3 * n) + (3 * m) in
  let b_pid = a_pid + 1 in
  let vars = List.init n (fun i -> i + 1) in
  let consume_occurrences positive =
    (* For each matching literal occurrence: one V from its assignment
       process, then both steps of the consuming clause process. *)
    List.concat
      (List.mapi
         (fun j clause ->
           List.concat
             (List.mapi
                (fun k lit ->
                  if lit > 0 = positive then
                    let producer =
                      if positive then assign_true (abs lit)
                      else assign_false (abs lit)
                    in
                    [ producer; clause_proc j k; clause_proc j k ]
                  else [])
                clause))
         formula.Cnf.clauses)
  in
  List.map gate vars
  @ List.map assign_true vars
  @ consume_occurrences true
  @ [ a_pid ]
  @ List.concat_map
      (fun i -> [ a_pid; gate i; gate i; assign_false i ])
      vars
  @ consume_occurrences false
  @ List.init (m + 1) (fun _ -> b_pid)

let trace t =
  let policy =
    if t.binary then Sched.Replay (completing_replay t.formula)
    else Sched.Round_robin
  in
  let tr = Interp.run ~policy t.program in
  (match tr.Trace.outcome with
  | Trace.Completed -> ()
  | _ ->
      invalid_arg
        "Reduction_sem.trace: reduction program failed to complete");
  tr

let events_ab t tr =
  let a = Trace.find_event tr t.a_label in
  let b = Trace.find_event tr t.b_label in
  (a.Event.id, b.Event.id)

let expected_process_count formula =
  (3 * formula.Cnf.num_vars) + (3 * Cnf.num_clauses formula) + 2

let expected_semaphore_count formula =
  (3 * formula.Cnf.num_vars) + Cnf.num_clauses formula + 1
