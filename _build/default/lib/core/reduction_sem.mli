(** The Theorem 1/2 reduction: 3CNFSAT to event ordering for programs that
    use counting semaphores.

    From a formula [B] over [n] variables with [m] clauses the reduction
    builds a program with [3n + 3m + 2] processes and [3n + m + 1]
    semaphores (all initially zero) whose execution simulates a
    nondeterministic evaluation of [B]:

    - per variable [Xi], a {e gate} process [V(Ai); P(Pass2); V(Ai)] and two
      {e assignment} processes [P(Ai); V(Xi)...] and [P(Ai); V(X̄i)...] (one
      [V] per occurrence of the literal in [B]).  During the first pass the
      single [Ai] token lets exactly one assignment process run — the
      nondeterministic truth guess;
    - per clause [Cj] and literal [L] of [Cj], a process [P(L); V(Cj)]:
      clause [j]'s semaphore is signaled iff some literal of the clause was
      guessed true;
    - process [a]: [a: skip] followed by [n] [V(Pass2)] operations (the
      second pass, which releases the losing assignment processes so the
      program never deadlocks);
    - process [b]: [P(C1); ...; P(Cm); b: skip].

    The program has no conditionals and no shared variables, so every
    execution performs the same events with no shared-data dependences, and
    (Theorem 1) [a MHB b] iff [B] is unsatisfiable; (Theorem 2) [b CHB a]
    iff [B] is satisfiable. *)

type t = {
  program : Ast.t;
  formula : Cnf.t;
  binary : bool;  (** whether the semaphores use binary semantics *)
  a_label : string;  (** label of event [a] (["a"]) *)
  b_label : string;  (** label of event [b] (["b"]) *)
}

val build : ?binary:bool -> Cnf.t -> t
(** Requires a 3-CNF formula ([Invalid_argument] otherwise).

    With [~binary:true] every semaphore is declared binary — the paper
    notes the proofs "do not make use of the general counting ability of
    counting semaphores, and therefore also hold for programs that use
    binary semaphores".  The construction is unchanged; what changes is
    the care needed to observe a completing execution (a binary semaphore
    absorbs a V issued while a token is outstanding), so the observed trace
    is produced by a schedule that lets every V be consumed before the next
    one on the same semaphore. *)

val trace : t -> Trace.t
(** Runs the program to completion (round-robin) — the observed execution
    [P] handed to the ordering analyses.  Every schedule of this program
    executes the same events, so the choice of scheduler is irrelevant. *)

val events_ab : t -> Trace.t -> int * int
(** Ids of the distinguished events [a] and [b] in the trace. *)

val expected_process_count : Cnf.t -> int
(** [3n + 3m + 2]. *)

val expected_semaphore_count : Cnf.t -> int
(** [3n + m + 1]. *)
