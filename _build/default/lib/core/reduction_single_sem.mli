(** The single-semaphore reduction: sequencing to minimize maximum
    cumulative cost (SS7) to event ordering with {e one} counting
    semaphore.

    The paper asserts (end of Section 5.1) that Theorems 1–2 hold "for a
    program execution that uses a single counting semaphore by a reduction
    from the problem of sequencing to minimize maximum cumulative cost",
    without giving the construction.  This module supplies one:

    - a single semaphore [s] initialized to the budget [k]: tokens are the
      remaining budget;
    - each task becomes a process: a read of its predecessors' completion
      variables (precedence enforced as shared-data dependences, condition
      F3 — no second semaphore needed), then [c] × [P(s)] for cost [c > 0]
      or [−c] × [V(s)] for [c < 0], then a write of its own completion
      variable;
    - a collector process reads every completion variable and then runs
      the distinguished event [b];
    - a relief process runs [a: skip] followed by enough [V(s)] to unblock
      everything (so the observed execution always completes: the observed
      run schedules the relief first).

    Then [b CHB a] — the collector can finish before the relief — iff the
    tasks can be ordered within budget.  The fine-grained interleaving the
    execution model allows (individual [P]/[V] operations of different
    tasks may interleave) does not change feasibility relative to
    task-atomic sequencing; rather than leave that as an exercise, the test
    suite machine-checks [b CHB a ⇔ Sequencing.feasible] on hundreds of
    random instances, and {!Theorems}-style checks are exposed for the
    benches. *)

type t = {
  program : Ast.t;
  instance : Sequencing.t;
  a_label : string;
  b_label : string;
}

val build : Sequencing.t -> t

val trace : t -> Trace.t
(** Observed execution: relief first, then tasks in a topological order —
    always completes. *)

val events_ab : t -> Trace.t -> int * int

val semaphores_used : t -> int
(** Always 1 — the point of the construction. *)

val check : Sequencing.t -> bool * bool
(** [(chb, feasible)]: the exact engine's [b CHB a] and the SS7 oracle's
    verdict; the reduction is correct when they agree. *)
