let source =
  "proc main {\n\
  \  cobegin\n\
  \    { post(E); x := 1 }\n\
  \    { if x = 1 { post(E) } else { wait(E) } }\n\
  \    { wait(E) }\n\
  \  coend\n\
   }"

let program () = Parse.program source

(* Schedule: fork; task1 completely; task2; task3; join. *)
let trace () =
  let t =
    Interp.run ~policy:(Sched.Replay [ 0; 1; 1; 2; 2; 3; 0 ]) (program ())
  in
  match t.Trace.outcome with
  | Trace.Completed -> t
  | _ -> invalid_arg "Figure1.trace: replay did not complete"

type events = {
  post1 : int;
  post2 : int;
  wait3 : int;
  write_x : int;
  test_x : int;
}

let events tr =
  let find pred =
    match
      Array.to_list tr.Trace.events |> List.filter pred |> List.map (fun e -> e.Event.id)
    with
    | [ e ] -> e
    | _ -> invalid_arg "Figure1.events: unexpected trace shape"
  in
  let posts =
    Array.to_list tr.Trace.events
    |> List.filter (fun e -> e.Event.kind = Event.Sync (Event.Post 0))
    |> List.map (fun e -> e.Event.id)
    |> List.sort compare
  in
  match posts with
  | [ post1; post2 ] ->
      {
        post1;
        post2;
        wait3 = find (fun e -> e.Event.kind = Event.Sync (Event.Wait 0));
        write_x = find (fun e -> e.Event.label = "x := 1");
        test_x = find (fun e -> e.Event.label = "if (x = 1)");
      }
  | _ -> invalid_arg "Figure1.events: expected two posts"
