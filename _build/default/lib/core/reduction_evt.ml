type t = {
  program : Ast.t;
  formula : Cnf.t;
  a_label : string;
  b_label : string;
}

let lit_ev l =
  if l > 0 then Printf.sprintf "X%d" l else Printf.sprintf "Xbar%d" (-l)

let build formula =
  if not (Cnf.is_three_cnf formula) then
    invalid_arg "Reduction_evt.build: formula must be in 3-CNF";
  let n = formula.Cnf.num_vars in
  let clauses = formula.Cnf.clauses in
  let variable_procs =
    List.map
      (fun i ->
        let ai = Printf.sprintf "A%d" i and bi = Printf.sprintf "B%d" i in
        Ast.proc
          (Printf.sprintf "var%d" i)
          [
            Ast.Post ai;
            Ast.Post bi;
            Ast.Cobegin
              [
                [ Ast.Clear ai; Ast.Wait bi; Ast.Post (lit_ev i) ];
                [ Ast.Clear bi; Ast.Wait ai; Ast.Post (lit_ev (-i)) ];
              ];
          ])
      (List.init n (fun i -> i + 1))
  in
  let clause_procs =
    List.concat
      (List.mapi
         (fun j clause ->
           List.mapi
             (fun k lit ->
               Ast.proc
                 (Printf.sprintf "clause%d_%d" (j + 1) k)
                 [
                   Ast.Wait (lit_ev lit);
                   Ast.Post (Printf.sprintf "C%d" (j + 1));
                 ])
             clause)
         clauses)
  in
  let proc_a =
    Ast.proc "proc_a"
      (Ast.Skip (Some "a")
      :: List.concat_map
           (fun i ->
             [
               Ast.Post (Printf.sprintf "A%d" i);
               Ast.Post (Printf.sprintf "B%d" i);
             ])
           (List.init n (fun i -> i + 1)))
  in
  let proc_b =
    Ast.proc "proc_b"
      (List.init (List.length clauses) (fun j ->
           Ast.Wait (Printf.sprintf "C%d" (j + 1)))
      @ [ Ast.Skip (Some "b") ])
  in
  let program =
    Ast.program (variable_procs @ clause_procs @ [ proc_a; proc_b ])
  in
  { program; formula; a_label = "a"; b_label = "b" }

(* A schedule under which the program always completes.  (Arbitrary
   schedules can deadlock the variable gadgets — the paper notes as much —
   but every execution that completes performs the same events, so any
   completing schedule yields the observed execution.)  Phases:
   1. every variable process posts Ai, Bi and forks;
   2. per variable, the first branch runs fully (posting Xi) and the second
      branch clears Bi, leaving it blocked on Wait(Ai);
   3. clause processes whose literal is positive run;
   4. process a runs: skip, then the second-pass posts;
   5. the blocked second branches complete (posting X̄i);
   6. clause processes with negative literals run, variables join;
   7. process b runs. *)
let completing_replay formula =
  let n = formula.Cnf.num_vars in
  let m = Cnf.num_clauses formula in
  let var_pid i = i - 1 (* variables are numbered from 1 *) in
  let clause_pid j k = n + (3 * j) + k in
  let a_pid = n + (3 * m) in
  let b_pid = a_pid + 1 in
  let child_pid i branch = b_pid + 1 + (2 * (i - 1)) + branch in
  let repeat k pid = List.init k (fun _ -> pid) in
  let vars = List.init n (fun i -> i + 1) in
  let clause_pids_with_sign positive =
    List.concat
      (List.mapi
         (fun j clause ->
           List.concat
             (List.mapi
                (fun k lit ->
                  if lit > 0 = positive then repeat 2 (clause_pid j k) else [])
                clause))
         formula.Cnf.clauses)
  in
  List.concat_map (fun i -> repeat 3 (var_pid i)) vars
  @ List.concat_map
      (fun i -> repeat 3 (child_pid i 0) @ [ child_pid i 1 ])
      vars
  @ clause_pids_with_sign true
  @ repeat (1 + (2 * n)) a_pid
  @ List.concat_map (fun i -> repeat 2 (child_pid i 1)) vars
  @ clause_pids_with_sign false
  @ List.map var_pid vars
  @ repeat (m + 1) b_pid

let trace t =
  let tr =
    Interp.run
      ~policy:(Sched.Replay (completing_replay t.formula))
      t.program
  in
  (match tr.Trace.outcome with
  | Trace.Completed -> ()
  | _ ->
      invalid_arg
        "Reduction_evt.trace: reduction program failed to complete");
  tr

let events_ab t tr =
  let a = Trace.find_event tr t.a_label in
  let b = Trace.find_event tr t.b_label in
  (a.Event.id, b.Event.id)
