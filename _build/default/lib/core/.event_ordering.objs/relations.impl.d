lib/core/relations.ml: Array Enumerate Event Format Hashtbl List Pinned Por Reach Rel Skeleton String
