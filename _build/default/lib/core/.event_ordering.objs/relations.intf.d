lib/core/relations.mli: Event Format Rel Skeleton
