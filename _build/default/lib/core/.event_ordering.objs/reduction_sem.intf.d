lib/core/reduction_sem.mli: Ast Cnf Trace
