lib/core/decide.mli: Execution Relations Skeleton
