lib/core/parallelism.ml: Antichain Array Format List Pinned Rel Skeleton Trace
