lib/core/figure1.ml: Array Event Interp List Parse Sched Trace
