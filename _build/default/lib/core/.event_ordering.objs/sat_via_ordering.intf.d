lib/core/sat_via_ordering.mli: Cnf
