lib/core/reduction_single_sem.mli: Ast Sequencing Trace
