lib/core/reduction_sem.ml: Ast Cnf Event Interp List Printf Sched Trace
