lib/core/reduction_single_sem.ml: Array Ast Decide Digraph Event Expr Fun Interp List Printf Sched Sequencing Trace
