lib/core/reduction_evt.mli: Ast Cnf Trace
