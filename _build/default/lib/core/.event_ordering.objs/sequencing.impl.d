lib/core/sequencing.ml: Array Digraph Format Fun Hashtbl List Printf Random String
