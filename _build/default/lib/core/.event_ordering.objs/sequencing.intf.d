lib/core/sequencing.mli: Format
