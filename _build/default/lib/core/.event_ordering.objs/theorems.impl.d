lib/core/theorems.ml: Cnf Decide Dpll Format Reduction_evt Reduction_sem Trace
