lib/core/theorems.mli: Cnf Format
