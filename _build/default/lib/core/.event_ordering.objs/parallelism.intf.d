lib/core/parallelism.mli: Format Skeleton Trace
