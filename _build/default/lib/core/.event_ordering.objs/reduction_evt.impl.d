lib/core/reduction_evt.ml: Ast Cnf Event Interp List Printf Sched Trace
