lib/core/decide.ml: Reach Relations Skeleton
