lib/core/figure1.mli: Ast Trace
