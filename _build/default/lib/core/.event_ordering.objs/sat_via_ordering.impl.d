lib/core/sat_via_ordering.ml: Array Cnf Event List Reach Reduction_sem Scanf Skeleton Trace
