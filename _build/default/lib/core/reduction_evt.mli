(** The Theorem 3/4 reduction: 3CNFSAT to event ordering for programs that
    use fork/join and event-style synchronization (Post/Wait/Clear).

    From a formula [B] the reduction builds, per variable [Xi], one process

    {v
    Post(Ai); Post(Bi)
    cobegin
      { Clear(Ai); Wait(Bi); Post(Xi)  }
      { Clear(Bi); Wait(Ai); Post(X̄i) }
    coend
    v}

    — two-process mutual exclusion implemented with [Clear]: before the
    second pass, at most one of [Post(Xi)]/[Post(X̄i)] can be issued (the
    truth guess).  Per clause [Cj] and literal [L], a process
    [Wait(L); Post(Cj)].  Process [a] is [a: skip] followed by
    [Post(Ai); Post(Bi)] for every variable (the second pass, releasing any
    blocked branch); process [b] is [Wait(C1); ...; Wait(Cm); b: skip].

    As with semaphores: [a MHB b] iff [B] is unsatisfiable (Theorem 3), and
    [b CHB a] iff [B] is satisfiable (Theorem 4). *)

type t = {
  program : Ast.t;
  formula : Cnf.t;
  a_label : string;
  b_label : string;
}

val build : Cnf.t -> t
(** Requires a 3-CNF formula ([Invalid_argument] otherwise). *)

val trace : t -> Trace.t
(** Runs the program to completion and returns the observed execution.
    Unlike the semaphore reduction, a bad schedule can block variable
    branches until the second pass, but every schedule still completes and
    executes the same events. *)

val events_ab : t -> Trace.t -> int * int
