type t = {
  n_events : int;
  critical_path : int list;
  critical_path_length : int;
  width : int;
  max_antichain : int list;
}

let analyze (sk : Skeleton.t) schedule =
  let po = Pinned.po_of_schedule sk schedule in
  let n = sk.Skeleton.n in
  (* Longest chain by dynamic programming in schedule order (a linear
     extension, so predecessors are final when visited). *)
  let depth = Array.make n 1 in
  let best_pred = Array.make n (-1) in
  Array.iter
    (fun e ->
      Rel.iter
        (fun a b ->
          if b = e && depth.(a) + 1 > depth.(e) then begin
            depth.(e) <- depth.(a) + 1;
            best_pred.(e) <- a
          end)
        po)
    schedule;
  let deepest = ref 0 in
  for e = 1 to n - 1 do
    if depth.(e) > depth.(!deepest) then deepest := e
  done;
  let rec chain e acc = if e = -1 then acc else chain best_pred.(e) (e :: acc) in
  let critical_path = if n = 0 then [] else chain !deepest [] in
  let max_antichain = Antichain.maximum_antichain po in
  {
    n_events = n;
    critical_path;
    critical_path_length = List.length critical_path;
    width = List.length max_antichain;
    max_antichain;
  }

let of_trace trace =
  analyze
    (Skeleton.of_execution (Trace.to_execution trace))
    (Trace.schedule trace)

let ideal_makespan t = t.critical_path_length

let brent_bound t ~processors =
  if processors <= 0 then invalid_arg "Parallelism.brent_bound: p must be positive";
  let off_path = t.n_events - t.critical_path_length in
  ((off_path + processors - 1) / processors) + t.critical_path_length

let speedup_limit t =
  if t.critical_path_length = 0 then 1.0
  else float_of_int t.n_events /. float_of_int t.critical_path_length

let pp ppf t =
  Format.fprintf ppf
    "@[<v>events: %d@ critical path: %d@ width: %d@ speedup limit: %.2f@]"
    t.n_events t.critical_path_length t.width (speedup_limit t)
