type check = {
  theorem : int;
  formula : Cnf.t;
  satisfiable : bool;
  ordering_holds : bool;
  agrees : bool;
  n_events : int;
}

let decide_of_trace tr = Decide.create (Trace.to_execution tr)

let check_sem ?(binary = false) ~theorem ~relation formula =
  let red = Reduction_sem.build ~binary formula in
  let tr = Reduction_sem.trace red in
  let a, b = Reduction_sem.events_ab red tr in
  let decide = decide_of_trace tr in
  let satisfiable = Dpll.is_satisfiable formula in
  let ordering_holds, agrees =
    match relation with
    | `Mhb_ab ->
        let h = Decide.mhb decide a b in
        (h, h = not satisfiable)
    | `Chb_ba ->
        let h = Decide.chb decide b a in
        (h, h = satisfiable)
  in
  { theorem; formula; satisfiable; ordering_holds; agrees;
    n_events = Trace.n_events tr }

let check_evt ~theorem ~relation formula =
  let red = Reduction_evt.build formula in
  let tr = Reduction_evt.trace red in
  let a, b = Reduction_evt.events_ab red tr in
  let decide = decide_of_trace tr in
  let satisfiable = Dpll.is_satisfiable formula in
  let ordering_holds, agrees =
    match relation with
    | `Mhb_ab ->
        let h = Decide.mhb decide a b in
        (h, h = not satisfiable)
    | `Chb_ba ->
        let h = Decide.chb decide b a in
        (h, h = satisfiable)
  in
  { theorem; formula; satisfiable; ordering_holds; agrees;
    n_events = Trace.n_events tr }

let check_theorem_1 = check_sem ~binary:false ~theorem:1 ~relation:`Mhb_ab
let check_theorem_2 = check_sem ~binary:false ~theorem:2 ~relation:`Chb_ba

(* Section 5.1's closing remark: the same results for binary semaphores. *)
let check_theorem_1_binary = check_sem ~binary:true ~theorem:1 ~relation:`Mhb_ab
let check_theorem_2_binary = check_sem ~binary:true ~theorem:2 ~relation:`Chb_ba
let check_theorem_3 = check_evt ~theorem:3 ~relation:`Mhb_ab
let check_theorem_4 = check_evt ~theorem:4 ~relation:`Chb_ba

let check_all formula =
  [
    check_theorem_1 formula;
    check_theorem_2 formula;
    check_theorem_3 formula;
    check_theorem_4 formula;
  ]

let pp_check ppf c =
  Format.fprintf ppf
    "Theorem %d: formula %a is %s; %s holds: %b; equivalence %s (%d events)"
    c.theorem Cnf.pp c.formula
    (if c.satisfiable then "SAT" else "UNSAT")
    (match c.theorem with 1 | 3 -> "a MHB b" | _ -> "b CHB a")
    c.ordering_holds
    (if c.agrees then "VERIFIED" else "VIOLATED")
    c.n_events
