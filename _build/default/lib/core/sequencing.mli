(** Sequencing to minimize maximum cumulative cost (Garey–Johnson SS7) —
    the problem behind the paper's remark that Theorems 1–2 hold even for
    programs using a {e single} counting semaphore.

    An instance is a set of unit tasks with integer costs and precedence
    constraints; the question is whether some linear schedule keeps every
    prefix-cost at or below a budget [k].  NP-complete in general.

    {!solve} decides instances exactly by dynamic programming over task
    subsets (exponential in tasks, fine for the experiment sizes); it is
    the oracle {!Reduction_single_sem} is validated against. *)

type t = {
  costs : int array;  (** cost of each task; negative = releases budget *)
  precedence : (int * int) list;  (** [(a, b)]: task [a] before task [b] *)
  budget : int;  (** maximum allowed cumulative cost, [>= 0] *)
}

val make : costs:int array -> precedence:(int * int) list -> budget:int -> t
(** Validates task indices and acyclicity of the precedence relation. *)

val n_tasks : t -> int

val feasible : t -> bool
(** Is there a schedule of all tasks, respecting precedence, whose
    cumulative cost after every task stays [<= budget]? *)

val witness : t -> int list option
(** A feasible schedule when one exists. *)

val random : seed:int -> tasks:int -> t
(** A random small instance (costs in [-3, 3], sparse random precedence,
    budget in [0, 4]) for the cross-validation experiments. *)

val pp : Format.formatter -> t -> unit
