let oracle formula =
  let red = Reduction_sem.build formula in
  let tr = Reduction_sem.trace red in
  let a, b = Reduction_sem.events_ab red tr in
  let sk = Skeleton.of_execution (Trace.to_execution tr) in
  (tr, Reach.create sk, a, b)

let is_satisfiable formula =
  let _, reach, a, b = oracle formula in
  Reach.exists_before reach b a

let solve formula =
  let tr, reach, a, b = oracle formula in
  match Reach.witness_before reach b a with
  | None -> None
  | Some schedule ->
      (* In the witness, event b completes before event a (the second pass
         has not begun), so every V on a literal semaphore scheduled before
         b reflects a first-pass truth guess. *)
      let position = Array.make (Trace.n_events tr) 0 in
      Array.iteri (fun i e -> position.(e) <- i) schedule;
      let assignment = Array.make (formula.Cnf.num_vars + 1) false in
      let decided = Array.make (formula.Cnf.num_vars + 1) false in
      Array.iter
        (fun e ->
          if position.(e.Event.id) < position.(b) then
            match e.Event.kind with
            | Event.Sync (Event.Sem_v sem_id) ->
                let name = tr.Trace.sem_names.(sem_id) in
                let set v value =
                  if not decided.(v) then begin
                    decided.(v) <- true;
                    assignment.(v) <- value
                  end
                in
                (try Scanf.sscanf name "Xbar%d" (fun v -> set v false)
                 with Scanf.Scan_failure _ | Failure _ | End_of_file -> (
                   try Scanf.sscanf name "X%d" (fun v -> set v true)
                   with Scanf.Scan_failure _ | Failure _ | End_of_file -> ()))
            | _ -> ())
        tr.Trace.events;
      (* Undecided variables (no occurrence before b) can take any value;
         validate before answering. *)
      if Cnf.eval assignment formula then Some assignment
      else
        (* Try the complement on undecided variables: at most one flip is
           ever needed because only undecided variables are free.  Fall
           back to brute force over the undecided ones. *)
        let undecided =
          List.filter
            (fun v -> not decided.(v))
            (List.init formula.Cnf.num_vars (fun i -> i + 1))
        in
        let rec search = function
          | [] -> if Cnf.eval assignment formula then Some assignment else None
          | v :: rest -> (
              assignment.(v) <- false;
              match search rest with
              | Some a -> Some a
              | None ->
                  assignment.(v) <- true;
                  search rest)
        in
        search undecided
