lib/approx/lamport.mli: Execution Rel Skeleton
