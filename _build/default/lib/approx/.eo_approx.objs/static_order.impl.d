lib/approx/static_order.ml: Array Ast Bitset Event Expr Format Fun Hashtbl List Printf Rel Trace
