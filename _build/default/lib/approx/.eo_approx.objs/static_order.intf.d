lib/approx/static_order.mli: Ast Rel Trace
