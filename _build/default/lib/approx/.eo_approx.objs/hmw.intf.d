lib/approx/hmw.mli: Execution Rel Skeleton
