lib/approx/vclock.mli: Execution Rel Skeleton
