lib/approx/vclock.ml: Array Event Execution List Pinned Rel Skeleton
