lib/approx/egp.ml: Array Bitset Digraph Event Execution Fun List Rel
