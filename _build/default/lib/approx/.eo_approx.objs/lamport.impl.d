lib/approx/lamport.ml: Array Execution List Pinned Rel Skeleton
