lib/approx/egp.mli: Digraph Execution Rel
