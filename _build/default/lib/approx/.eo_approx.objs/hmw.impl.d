lib/approx/hmw.ml: Array Event Execution List Rel Skeleton
