let quote s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let kind_tokens = function
  | Event.Computation -> [ "computation" ]
  | Event.Sync (Event.Sem_p s) -> [ "sem_p"; string_of_int s ]
  | Event.Sync (Event.Sem_v s) -> [ "sem_v"; string_of_int s ]
  | Event.Sync (Event.Post v) -> [ "post"; string_of_int v ]
  | Event.Sync (Event.Wait v) -> [ "wait"; string_of_int v ]
  | Event.Sync (Event.Clear v) -> [ "clear"; string_of_int v ]
  | Event.Sync Event.Fork -> [ "fork" ]
  | Event.Sync Event.Join -> [ "join" ]

let to_string (t : Trace.t) =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "eotrace 1";
  (match t.Trace.outcome with
  | Trace.Completed -> line "outcome completed"
  | Trace.Fuel_exhausted -> line "outcome fuel_exhausted"
  | Trace.Deadlocked pids ->
      line "outcome deadlocked %s"
        (String.concat " " (List.map string_of_int pids)));
  line "vars %s" (String.concat " " (Array.to_list t.Trace.var_names));
  line "sems %s"
    (String.concat " "
       (List.mapi
          (fun i name -> if t.Trace.sem_binary.(i) then name ^ "*" else name)
          (Array.to_list t.Trace.sem_names)));
  line "events %s" (String.concat " " (Array.to_list t.Trace.ev_names));
  line "sem_init %s"
    (String.concat " " (List.map string_of_int (Array.to_list t.Trace.sem_init)));
  line "ev_init %s"
    (String.concat " "
       (List.map (fun v -> if v then "1" else "0") (Array.to_list t.Trace.ev_init)));
  List.iter
    (fun (pid, name) -> line "process %d %s" pid name)
    t.Trace.process_names;
  Array.iter
    (fun e ->
      line "event %d %d %d %s %s reads %s writes %s" e.Event.id e.Event.pid
        e.Event.seq
        (String.concat " " (kind_tokens e.Event.kind))
        (quote e.Event.label)
        (String.concat " " (List.map string_of_int e.Event.reads))
        (String.concat " " (List.map string_of_int e.Event.writes)))
    t.Trace.events;
  Rel.iter (fun a b -> line "po %d %d" a b) t.Trace.program_order;
  List.iter (fun e -> line "violation %d" e) t.Trace.violations;
  List.iter (fun (x, v) -> line "final %s %d" x v) t.Trace.final_store;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

(* Splits a line into whitespace-separated tokens, treating a double-quoted
   section (with backslash escapes) as a single token. *)
let tokenize lineno line =
  let n = String.length line in
  let tokens = ref [] in
  let i = ref 0 in
  while !i < n do
    while !i < n && line.[!i] = ' ' do incr i done;
    if !i < n then
      if line.[!i] = '"' then begin
        incr i;
        let b = Buffer.create 16 in
        let closed = ref false in
        while !i < n && not !closed do
          (match line.[!i] with
          | '\\' when !i + 1 < n ->
              incr i;
              (match line.[!i] with
              | 'n' -> Buffer.add_char b '\n'
              | c -> Buffer.add_char b c)
          | '"' -> closed := true
          | c -> Buffer.add_char b c);
          incr i
        done;
        if not !closed then
          failwith (Printf.sprintf "line %d: unterminated string" lineno);
        tokens := Buffer.contents b :: !tokens
      end
      else begin
        let start = !i in
        while !i < n && line.[!i] <> ' ' do incr i done;
        tokens := String.sub line start (!i - start) :: !tokens
      end
  done;
  List.rev !tokens

let int_of lineno s =
  match int_of_string_opt s with
  | Some i -> i
  | None -> failwith (Printf.sprintf "line %d: expected integer, got %S" lineno s)

let of_string text =
  let lines = String.split_on_char '\n' text in
  let outcome = ref None in
  let var_names = ref [||] in
  let sem_names = ref [||] in
  let sem_binary = ref [||] in
  let ev_names = ref [||] in
  let sem_init = ref [||] in
  let ev_init = ref [||] in
  let processes = ref [] in
  let events = ref [] in
  let po_edges = ref [] in
  let violations = ref [] in
  let final = ref [] in
  let saw_header = ref false in
  List.iteri
    (fun idx raw ->
      let lineno = idx + 1 in
      let raw =
        match String.index_opt raw '#' with
        | Some i when not (String.contains raw '"') -> String.sub raw 0 i
        | _ -> raw
      in
      match tokenize lineno (String.trim raw) with
      | [] -> ()
      | "eotrace" :: version ->
          if version <> [ "1" ] then
            failwith (Printf.sprintf "line %d: unsupported version" lineno);
          saw_header := true
      | "outcome" :: rest ->
          outcome :=
            Some
              (match rest with
              | [ "completed" ] -> Trace.Completed
              | [ "fuel_exhausted" ] -> Trace.Fuel_exhausted
              | "deadlocked" :: pids ->
                  Trace.Deadlocked (List.map (int_of lineno) pids)
              | _ -> failwith (Printf.sprintf "line %d: bad outcome" lineno))
      | "vars" :: names -> var_names := Array.of_list names
      | "sems" :: names ->
          let stripped =
            List.map
              (fun n ->
                match String.length n with
                | 0 -> (n, false)
                | len when n.[len - 1] = '*' -> (String.sub n 0 (len - 1), true)
                | _ -> (n, false))
              names
          in
          sem_names := Array.of_list (List.map fst stripped);
          sem_binary := Array.of_list (List.map snd stripped)
      | "events" :: names -> ev_names := Array.of_list names
      | "sem_init" :: values ->
          sem_init := Array.of_list (List.map (int_of lineno) values)
      | "ev_init" :: values ->
          ev_init := Array.of_list (List.map (fun v -> v = "1") values)
      | [ "process"; pid; name ] ->
          processes := (int_of lineno pid, name) :: !processes
      | "event" :: id :: pid :: seq :: rest ->
          let kind, rest =
            match rest with
            | "computation" :: r -> (Event.Computation, r)
            | "sem_p" :: s :: r -> (Event.Sync (Event.Sem_p (int_of lineno s)), r)
            | "sem_v" :: s :: r -> (Event.Sync (Event.Sem_v (int_of lineno s)), r)
            | "post" :: v :: r -> (Event.Sync (Event.Post (int_of lineno v)), r)
            | "wait" :: v :: r -> (Event.Sync (Event.Wait (int_of lineno v)), r)
            | "clear" :: v :: r -> (Event.Sync (Event.Clear (int_of lineno v)), r)
            | "fork" :: r -> (Event.Sync Event.Fork, r)
            | "join" :: r -> (Event.Sync Event.Join, r)
            | _ -> failwith (Printf.sprintf "line %d: bad event kind" lineno)
          in
          let label, rest =
            match rest with
            | label :: r -> (label, r)
            | [] -> failwith (Printf.sprintf "line %d: missing label" lineno)
          in
          let reads, writes =
            let rec split_rw acc = function
              | "writes" :: ws -> (List.rev acc, List.map (int_of lineno) ws)
              | r :: rest -> split_rw (int_of lineno r :: acc) rest
              | [] -> failwith (Printf.sprintf "line %d: missing writes" lineno)
            in
            match rest with
            | "reads" :: rest -> split_rw [] rest
            | _ -> failwith (Printf.sprintf "line %d: missing reads" lineno)
          in
          events :=
            Event.make ~id:(int_of lineno id) ~pid:(int_of lineno pid)
              ~seq:(int_of lineno seq) ~kind ~label ~reads ~writes ()
            :: !events
      | [ "po"; a; b ] -> po_edges := (int_of lineno a, int_of lineno b) :: !po_edges
      | [ "violation"; e ] -> violations := int_of lineno e :: !violations
      | [ "final"; x; v ] -> final := (x, int_of lineno v) :: !final
      | tok :: _ ->
          failwith (Printf.sprintf "line %d: unknown directive %S" lineno tok))
    lines;
  if not !saw_header then failwith "missing 'eotrace 1' header";
  let events =
    List.sort (fun a b -> compare a.Event.id b.Event.id) !events
    |> Array.of_list
  in
  Array.iteri
    (fun i e ->
      if e.Event.id <> i then failwith "event ids are not dense from 0")
    events;
  let program_order = Rel.of_pairs (Array.length events) !po_edges in
  if Array.length !sem_binary <> Array.length !sem_names then
    sem_binary := Array.make (Array.length !sem_names) false;
  {
    Trace.events;
    program_order;
    outcome =
      (match !outcome with
      | Some o -> o
      | None -> failwith "missing outcome line");
    violations = List.rev !violations;
    var_names = !var_names;
    sem_names = !sem_names;
    ev_names = !ev_names;
    sem_init = !sem_init;
    sem_binary = !sem_binary;
    ev_init = !ev_init;
    final_store = List.rev !final;
    process_names = List.rev !processes;
  }

let save path t =
  let oc = open_out path in
  output_string oc (to_string t);
  close_out oc

let load path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  of_string text
