exception Syntax_error of { line : int; message : string }

let error line fmt =
  Format.kasprintf (fun message -> raise (Syntax_error { line; message })) fmt

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

type token =
  | Ident of string
  | Int of int
  | Lbrace
  | Rbrace
  | Lparen
  | Rparen
  | Assign_op  (* := *)
  | Colon
  | Semicolon
  | Plus
  | Minus
  | Star
  | Eq
  | Neq
  | Lt
  | Le
  | AndAnd
  | OrOr
  | Bang
  | Eof

let token_name = function
  | Ident s -> Printf.sprintf "identifier %S" s
  | Int n -> Printf.sprintf "integer %d" n
  | Lbrace -> "'{'"
  | Rbrace -> "'}'"
  | Lparen -> "'('"
  | Rparen -> "')'"
  | Assign_op -> "':='"
  | Colon -> "':'"
  | Semicolon -> "';'"
  | Plus -> "'+'"
  | Minus -> "'-'"
  | Star -> "'*'"
  | Eq -> "'='"
  | Neq -> "'!='"
  | Lt -> "'<'"
  | Le -> "'<='"
  | AndAnd -> "'&&'"
  | OrOr -> "'||'"
  | Bang -> "'!'"
  | Eof -> "end of input"

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '\''

let is_digit c = c >= '0' && c <= '9'

let lex text =
  let n = String.length text in
  let tokens = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let push tok = tokens := (tok, !line) :: !tokens in
  while !i < n do
    let c = text.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '#' then begin
      while !i < n && text.[!i] <> '\n' do
        incr i
      done
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit text.[!i] do
        incr i
      done;
      push (Int (int_of_string (String.sub text start (!i - start))))
    end
    else if is_ident_char c && not (is_digit c) then begin
      let start = !i in
      while !i < n && is_ident_char text.[!i] do
        incr i
      done;
      push (Ident (String.sub text start (!i - start)))
    end
    else begin
      let two =
        if !i + 1 < n then String.sub text !i 2 else ""
      in
      match two with
      | ":=" -> push Assign_op; i := !i + 2
      | "!=" -> push Neq; i := !i + 2
      | "<=" -> push Le; i := !i + 2
      | "&&" -> push AndAnd; i := !i + 2
      | "||" -> push OrOr; i := !i + 2
      | _ -> (
          (match c with
          | '{' -> push Lbrace
          | '}' -> push Rbrace
          | '(' -> push Lparen
          | ')' -> push Rparen
          | ':' -> push Colon
          | ';' -> push Semicolon
          | '+' -> push Plus
          | '-' -> push Minus
          | '*' -> push Star
          | '=' -> push Eq
          | '<' -> push Lt
          | '!' -> push Bang
          | _ -> error !line "unexpected character %C" c);
          incr i)
    end
  done;
  push Eof;
  Array.of_list (List.rev !tokens)

(* ------------------------------------------------------------------ *)
(* Parser state                                                        *)
(* ------------------------------------------------------------------ *)

type parser_state = { tokens : (token * int) array; mutable pos : int }

let peek st = fst st.tokens.(st.pos)

let peek_line st = snd st.tokens.(st.pos)

let advance st = st.pos <- st.pos + 1

let expect st tok =
  if peek st = tok then advance st
  else
    error (peek_line st) "expected %s but found %s" (token_name tok)
      (token_name (peek st))

let expect_ident st =
  match peek st with
  | Ident s -> advance st; s
  | t -> error (peek_line st) "expected an identifier but found %s" (token_name t)

let skip_separators st =
  while peek st = Semicolon do
    advance st
  done

(* ------------------------------------------------------------------ *)
(* Expressions: precedence climbing                                    *)
(*   || < && < comparisons < + - < * < unary                           *)
(* ------------------------------------------------------------------ *)

let rec parse_or st =
  let lhs = parse_and st in
  if peek st = OrOr then begin
    advance st;
    Expr.Or (lhs, parse_or st)
  end
  else lhs

and parse_and st =
  let lhs = parse_cmp st in
  if peek st = AndAnd then begin
    advance st;
    Expr.And (lhs, parse_and st)
  end
  else lhs

and parse_cmp st =
  let lhs = parse_add st in
  match peek st with
  | Eq -> advance st; Expr.Eq (lhs, parse_add st)
  | Neq -> advance st; Expr.Ne (lhs, parse_add st)
  | Lt -> advance st; Expr.Lt (lhs, parse_add st)
  | Le -> advance st; Expr.Le (lhs, parse_add st)
  | _ -> lhs

and parse_add st =
  let rec go lhs =
    match peek st with
    | Plus -> advance st; go (Expr.Add (lhs, parse_mul st))
    | Minus -> advance st; go (Expr.Sub (lhs, parse_mul st))
    | _ -> lhs
  in
  go (parse_mul st)

and parse_mul st =
  let rec go lhs =
    match peek st with
    | Star -> advance st; go (Expr.Mul (lhs, parse_unary st))
    | _ -> lhs
  in
  go (parse_unary st)

and parse_unary st =
  match peek st with
  | Bang ->
      advance st;
      Expr.Not (parse_unary st)
  | Minus -> (
      advance st;
      (* Fold a negated literal so printed negative constants round-trip. *)
      match peek st with
      | Int n ->
          advance st;
          Expr.Int (-n)
      | _ -> Expr.Sub (Expr.Int 0, parse_unary st))
  | Int n ->
      advance st;
      Expr.Int n
  | Ident v ->
      advance st;
      Expr.Var v
  | Lparen ->
      advance st;
      let e = parse_or st in
      expect st Rparen;
      e
  | t -> error (peek_line st) "expected an expression but found %s" (token_name t)

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let sync_call st keyword =
  ignore keyword;
  expect st Lparen;
  let name = expect_ident st in
  expect st Rparen;
  name

let rec parse_stmt st : Ast.stmt =
  match peek st with
  | Ident "skip" ->
      advance st;
      Ast.Skip None
  | Ident "p" when fst st.tokens.(st.pos + 1) = Lparen ->
      advance st;
      Ast.Sem_p (sync_call st "p")
  | Ident "v" when fst st.tokens.(st.pos + 1) = Lparen ->
      advance st;
      Ast.Sem_v (sync_call st "v")
  | Ident "post" when fst st.tokens.(st.pos + 1) = Lparen ->
      advance st;
      Ast.Post (sync_call st "post")
  | Ident "wait" when fst st.tokens.(st.pos + 1) = Lparen ->
      advance st;
      Ast.Wait (sync_call st "wait")
  | Ident "clear" when fst st.tokens.(st.pos + 1) = Lparen ->
      advance st;
      Ast.Clear (sync_call st "clear")
  | Ident "if" ->
      advance st;
      let cond = parse_or st in
      let then_b = parse_block st in
      let else_b =
        if peek st = Ident "else" then begin
          advance st;
          parse_block st
        end
        else []
      in
      Ast.If (cond, then_b, else_b)
  | Ident "while" ->
      advance st;
      let cond = parse_or st in
      let body = parse_block st in
      Ast.While (cond, body)
  | Ident "assert" ->
      advance st;
      Ast.Assert (parse_or st)
  | Ident "cobegin" ->
      advance st;
      let branches = ref [] in
      while peek st = Lbrace do
        branches := parse_block st :: !branches
      done;
      expect st (Ident "coend");
      Ast.Cobegin (List.rev !branches)
  | Ident name when fst st.tokens.(st.pos + 1) = Colon ->
      (* label: skip *)
      advance st;
      advance st;
      expect st (Ident "skip");
      Ast.Skip (Some name)
  | Ident name when fst st.tokens.(st.pos + 1) = Assign_op ->
      advance st;
      advance st;
      Ast.Assign (name, parse_or st)
  | t -> error (peek_line st) "expected a statement but found %s" (token_name t)

and parse_block st =
  expect st Lbrace;
  let stmts = ref [] in
  skip_separators st;
  while peek st <> Rbrace do
    stmts := parse_stmt st :: !stmts;
    skip_separators st
  done;
  expect st Rbrace;
  List.rev !stmts

(* ------------------------------------------------------------------ *)
(* Declarations and programs                                           *)
(* ------------------------------------------------------------------ *)

let parse_program st =
  let sem_init = ref [] in
  let binary_sems = ref [] in
  let ev_init = ref [] in
  let var_init = ref [] in
  let procs = ref [] in
  skip_separators st;
  while peek st <> Eof do
    (match peek st with
    | Ident (("sem" | "binsem") as kw) ->
        advance st;
        let name = expect_ident st in
        expect st Eq;
        let value =
          match peek st with
          | Int n -> advance st; n
          | t -> error (peek_line st) "expected an integer but found %s" (token_name t)
        in
        if kw = "binsem" then begin
          if value > 1 then
            error (peek_line st) "binary semaphore %s initialized above 1" name;
          binary_sems := name :: !binary_sems
        end;
        sem_init := (name, value) :: !sem_init
    | Ident "event" ->
        advance st;
        let name = expect_ident st in
        expect st Eq;
        let value =
          match peek st with
          | Ident "set" -> advance st; true
          | Ident "clear" -> advance st; false
          | t ->
              error (peek_line st) "expected 'set' or 'clear' but found %s"
                (token_name t)
        in
        ev_init := (name, value) :: !ev_init
    | Ident "var" ->
        advance st;
        let name = expect_ident st in
        expect st Eq;
        let value =
          match peek st with
          | Int n -> advance st; n
          | Minus -> (
              advance st;
              match peek st with
              | Int n -> advance st; -n
              | t ->
                  error (peek_line st) "expected an integer but found %s"
                    (token_name t))
          | t -> error (peek_line st) "expected an integer but found %s" (token_name t)
        in
        var_init := (name, value) :: !var_init
    | Ident "proc" ->
        advance st;
        let name = expect_ident st in
        let body = parse_block st in
        procs := Ast.proc name body :: !procs
    | t ->
        error (peek_line st)
          "expected 'sem', 'binsem', 'event', 'var' or 'proc' but found %s"
          (token_name t));
    skip_separators st
  done;
  if !procs = [] then error (peek_line st) "program has no processes";
  Ast.program ~sem_init:(List.rev !sem_init)
    ~binary_sems:(List.rev !binary_sems) ~ev_init:(List.rev !ev_init)
    ~var_init:(List.rev !var_init) (List.rev !procs)

let program text =
  let st = { tokens = lex text; pos = 0 } in
  parse_program st

let program_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  program text

let expr text =
  let st = { tokens = lex text; pos = 0 } in
  let e = parse_or st in
  expect st Eof;
  e
