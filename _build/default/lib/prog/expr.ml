type t =
  | Int of int
  | Var of string
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Eq of t * t
  | Ne of t * t
  | Lt of t * t
  | Le of t * t
  | And of t * t
  | Or of t * t
  | Not of t

let is_true v = v <> 0

let of_bool b = if b then 1 else 0

let rec eval lookup = function
  | Int n -> n
  | Var v -> lookup v
  | Add (a, b) -> eval lookup a + eval lookup b
  | Sub (a, b) -> eval lookup a - eval lookup b
  | Mul (a, b) -> eval lookup a * eval lookup b
  | Eq (a, b) -> of_bool (eval lookup a = eval lookup b)
  | Ne (a, b) -> of_bool (eval lookup a <> eval lookup b)
  | Lt (a, b) -> of_bool (eval lookup a < eval lookup b)
  | Le (a, b) -> of_bool (eval lookup a <= eval lookup b)
  | And (a, b) -> of_bool (is_true (eval lookup a) && is_true (eval lookup b))
  | Or (a, b) -> of_bool (is_true (eval lookup a) || is_true (eval lookup b))
  | Not a -> of_bool (not (is_true (eval lookup a)))

let vars e =
  let rec go acc = function
    | Int _ -> acc
    | Var v -> if List.mem v acc then acc else v :: acc
    | Add (a, b) | Sub (a, b) | Mul (a, b) | Eq (a, b) | Ne (a, b)
    | Lt (a, b) | Le (a, b) | And (a, b) | Or (a, b) ->
        go (go acc a) b
    | Not a -> go acc a
  in
  List.rev (go [] e)

let rec pp ppf = function
  | Int n -> Format.pp_print_int ppf n
  | Var v -> Format.pp_print_string ppf v
  | Add (a, b) -> binop ppf "+" a b
  | Sub (a, b) -> binop ppf "-" a b
  | Mul (a, b) -> binop ppf "*" a b
  | Eq (a, b) -> binop ppf "=" a b
  | Ne (a, b) -> binop ppf "!=" a b
  | Lt (a, b) -> binop ppf "<" a b
  | Le (a, b) -> binop ppf "<=" a b
  | And (a, b) -> binop ppf "&&" a b
  | Or (a, b) -> binop ppf "||" a b
  | Not a -> Format.fprintf ppf "!(%a)" pp a

and binop ppf op a b = Format.fprintf ppf "(%a %s %a)" pp a op pp b
