type config = {
  processes : int * int;
  stmts_per_process : int * int;
  shared_vars : int;
  semaphores : int;
  binary_semaphores : bool;
  event_variables : int;
}

let default_config =
  {
    processes = (2, 3);
    stmts_per_process = (1, 3);
    shared_vars = 2;
    semaphores = 1;
    binary_semaphores = false;
    event_variables = 1;
  }

let in_range rng (lo, hi) =
  if hi < lo then invalid_arg "Progen: empty range";
  lo + Random.State.int rng (hi - lo + 1)

let pick rng xs = List.nth xs (Random.State.int rng (List.length xs))

let gen_stmt cfg rng =
  let var i = Printf.sprintf "x%d" i in
  let any_var () = var (Random.State.int rng (max 1 cfg.shared_vars)) in
  let sem () = Printf.sprintf "s%d" (Random.State.int rng (max 1 cfg.semaphores)) in
  let ev () = Printf.sprintf "e%d" (Random.State.int rng (max 1 cfg.event_variables)) in
  let choices =
    List.concat
      [
        (if cfg.shared_vars > 0 then
           [
             (fun () -> Ast.Assign (any_var (), Expr.Int (Random.State.int rng 5)));
             (fun () ->
               Ast.Assign (any_var (), Expr.Add (Expr.Var (any_var ()), Expr.Int 1)));
             (fun () -> Ast.Skip None);
           ]
         else [ (fun () -> Ast.Skip None) ]);
        (if cfg.semaphores > 0 then
           [ (fun () -> Ast.Sem_p (sem ())); (fun () -> Ast.Sem_v (sem ())) ]
         else []);
        (if cfg.event_variables > 0 then
           [
             (fun () -> Ast.Post (ev ()));
             (fun () -> Ast.Wait (ev ()));
             (fun () -> Ast.Clear (ev ()));
           ]
         else []);
      ]
  in
  (pick rng choices) ()

let generate cfg ~seed =
  let rng = Random.State.make [| seed |] in
  let n_procs = in_range rng cfg.processes in
  let procs =
    List.init n_procs (fun i ->
        let n_stmts = in_range rng cfg.stmts_per_process in
        Ast.proc
          (Printf.sprintf "p%d" i)
          (List.init n_stmts (fun _ -> gen_stmt cfg rng)))
  in
  let sem_names = List.init cfg.semaphores (Printf.sprintf "s%d") in
  let sem_init =
    List.map (fun s -> (s, Random.State.int rng 2)) sem_names
  in
  let ev_init =
    List.init cfg.event_variables (fun i ->
        (Printf.sprintf "e%d" i, Random.State.bool rng))
  in
  Ast.program ~sem_init
    ~binary_sems:(if cfg.binary_semaphores then sem_names else [])
    ~ev_init procs

let generate_completing ?(max_attempts = 1000) cfg ~seed =
  let rec go attempt seed =
    if attempt >= max_attempts then
      failwith "Progen.generate_completing: too many deadlocking programs"
    else
      let t = Interp.run (generate cfg ~seed) in
      match t.Trace.outcome with
      | Trace.Completed -> t
      | _ -> go (attempt + 1) (seed + 1_000_003)
  in
  go 0 seed
