type outcome = Completed | Deadlocked of int list | Fuel_exhausted

type t = {
  events : Event.t array;
  program_order : Rel.t;
  outcome : outcome;
  violations : int list;
  var_names : string array;
  sem_names : string array;
  ev_names : string array;
  sem_init : int array;
  sem_binary : bool array;
  ev_init : bool array;
  final_store : (string * int) list;
  process_names : (int * string) list;
}

let n_events t = Array.length t.events

let schedule t = Array.init (n_events t) Fun.id

let to_execution t =
  Execution.of_schedule ~events:t.events ~program_order:t.program_order
    ~schedule:(schedule t) ~sem_init:t.sem_init ~sem_binary:t.sem_binary
    ~ev_init:t.ev_init ~num_shared_vars:(Array.length t.var_names) ()

let find_event_opt t label =
  match
    Array.to_list t.events
    |> List.filter (fun e -> e.Event.label = label)
  with
  | [] -> None
  | [ e ] -> Some e
  | _ :: _ -> invalid_arg ("Trace.find_event: ambiguous label " ^ label)

let find_event t label =
  match find_event_opt t label with
  | Some e -> e
  | None -> raise Not_found

let pp_outcome ppf = function
  | Completed -> Format.pp_print_string ppf "completed"
  | Deadlocked pids ->
      Format.fprintf ppf "deadlocked (blocked pids: %a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           Format.pp_print_int)
        pids
  | Fuel_exhausted -> Format.pp_print_string ppf "fuel exhausted"

let pp ppf t =
  Format.fprintf ppf "@[<v>trace: %d events, %a@ " (n_events t) pp_outcome
    t.outcome;
  Array.iteri
    (fun i e ->
      let name =
        match List.assoc_opt e.Event.pid t.process_names with
        | Some n -> n
        | None -> Printf.sprintf "p%d" e.Event.pid
      in
      Format.fprintf ppf "%3d  %-12s %s@ " i name e.Event.label)
    t.events;
  Format.fprintf ppf "@]"
