lib/prog/sched.mli:
