lib/prog/trace_io.ml: Array Buffer Event List Printf Rel String Trace
