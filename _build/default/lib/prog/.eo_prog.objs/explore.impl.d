lib/prog/explore.ml: Ast Expr Hashtbl List Map String
