lib/prog/expr.ml: Format List
