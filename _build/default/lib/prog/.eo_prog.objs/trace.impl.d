lib/prog/trace.ml: Array Event Execution Format Fun List Printf Rel
