lib/prog/ast.mli: Expr Format
