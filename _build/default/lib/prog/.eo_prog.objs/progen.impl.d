lib/prog/progen.ml: Ast Expr Interp List Printf Random Trace
