lib/prog/expr.mli: Format
