lib/prog/parse.ml: Array Ast Expr Format List Printf String
