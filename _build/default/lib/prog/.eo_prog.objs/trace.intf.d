lib/prog/trace.mli: Event Execution Format Rel
