lib/prog/parse.mli: Ast Expr
