lib/prog/trace_io.mli: Trace
