lib/prog/progen.mli: Ast Trace
