lib/prog/sched.ml: List Random
