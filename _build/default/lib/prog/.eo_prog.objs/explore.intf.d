lib/prog/explore.mli: Ast
