lib/prog/interp.ml: Array Ast Event Expr Format Hashtbl List Printf Rel Sched Trace
