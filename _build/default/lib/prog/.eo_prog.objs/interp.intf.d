lib/prog/interp.mli: Ast Sched Trace
