lib/prog/ast.ml: Expr Format Fun List
