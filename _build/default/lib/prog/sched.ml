type policy = Round_robin | Random of int | Priority | Replay of int list

exception Replay_impossible of { step : int; wanted : int; enabled : int list }

type state =
  | Rr of int ref  (* last pid scheduled *)
  | Rand of Random.State.t
  | Prio
  | Rep of int list ref

type t = state

let make = function
  | Round_robin -> Rr (ref (-1))
  | Random seed -> Rand (Random.State.make [| seed |])
  | Priority -> Prio
  | Replay pids -> Rep (ref pids)

let choose t ~step ~enabled =
  match enabled with
  | [] -> invalid_arg "Sched.choose: no enabled process"
  | _ -> (
      match t with
      | Prio -> List.hd enabled
      | Rand rng -> List.nth enabled (Random.State.int rng (List.length enabled))
      | Rr last ->
          (* First enabled pid strictly greater than the previous choice,
             wrapping around. *)
          let pid =
            match List.find_opt (fun p -> p > !last) enabled with
            | Some p -> p
            | None -> List.hd enabled
          in
          last := pid;
          pid
      | Rep remaining -> (
          match !remaining with
          | [] ->
              raise (Replay_impossible { step; wanted = -1; enabled })
          | pid :: rest ->
              if List.mem pid enabled then begin
                remaining := rest;
                pid
              end
              else raise (Replay_impossible { step; wanted = pid; enabled })))
