exception Unsupported of string

module SMap = Map.Make (String)

type work = WStmt of Ast.stmt | WJoin of int list

type thr = { pid : int; work : work list; finished : bool }

(* Machine states are immutable so the DFS can memoize on them;
   [next_pid] is part of the state because child pids feed join lists. *)
type state = {
  store : int SMap.t;
  sems : int SMap.t;
  evs : bool SMap.t;
  threads : thr list;  (* ascending pid *)
  next_pid : int;
}

let count_saturation = 1_000_000_000_000_000_000

let saturating_add a b =
  if a >= count_saturation - b then count_saturation else a + b

let reject_loops program =
  let rec check = function
    | Ast.While _ -> raise (Unsupported "Explore: loops make the state graph infinite")
    | Ast.If (_, t, e) ->
        List.iter check t;
        List.iter check e
    | Ast.Cobegin branches -> List.iter (List.iter check) branches
    | Ast.Skip _ | Ast.Assign _ | Ast.Sem_p _ | Ast.Sem_v _ | Ast.Post _
    | Ast.Wait _ | Ast.Clear _ | Ast.Assert _ ->
        ()
  in
  List.iter (fun p -> List.iter check p.Ast.body) program.Ast.procs

let initial_state program =
  reject_loops program;
  let store =
    List.fold_left
      (fun m (x, v) -> SMap.add x v m)
      SMap.empty program.Ast.var_init
  in
  let sems =
    List.fold_left
      (fun m (s, v) -> SMap.add s v m)
      SMap.empty program.Ast.sem_init
  in
  let evs =
    List.fold_left
      (fun m (e, b) -> SMap.add e b m)
      SMap.empty program.Ast.ev_init
  in
  let threads =
    List.mapi
      (fun pid (p : Ast.proc) ->
        { pid; work = List.map (fun s -> WStmt s) p.Ast.body; finished = false })
      program.Ast.procs
  in
  { store; sems; evs; threads; next_pid = List.length threads }

let lookup m k ~default = match SMap.find_opt k m with Some v -> v | None -> default

let read_var st x = lookup st.store x ~default:0
let sem_count st s = lookup st.sems s ~default:0
let ev_set st e = lookup st.evs e ~default:false

(* Threads with empty work lists are retired eagerly so joins only test the
   [finished] flag. *)
let normalize_threads threads =
  List.map
    (fun t -> if t.work = [] && not t.finished then { t with finished = true } else t)
    threads

let thread_enabled st t =
  match t.work with
  | [] -> false
  | WJoin pids :: _ ->
      List.for_all
        (fun pid ->
          match List.find_opt (fun t -> t.pid = pid) st.threads with
          | Some child -> child.finished
          | None -> false)
        pids
  | WStmt (Ast.Sem_p s) :: _ -> sem_count st s > 0
  | WStmt (Ast.Wait e) :: _ -> ev_set st e
  | WStmt _ :: _ -> true

let enabled_pids st =
  List.filter_map
    (fun t -> if (not t.finished) && thread_enabled st t then Some t.pid else None)
    st.threads

let update_thread st pid f =
  { st with threads = List.map (fun t -> if t.pid = pid then f t else t) st.threads }

let step binary st pid =
  let t = List.find (fun t -> t.pid = pid) st.threads in
  match t.work with
  | [] -> invalid_arg "Explore.step: finished thread"
  | WJoin _ :: rest -> update_thread st pid (fun t -> { t with work = rest })
  | WStmt s :: rest -> (
      let continue st work = update_thread st pid (fun t -> { t with work }) in
      match s with
      | Ast.Skip _ -> continue st rest
      | Ast.Assign (x, e) ->
          let v = Expr.eval (read_var st) e in
          continue { st with store = SMap.add x v st.store } rest
      | Ast.If (c, then_b, else_b) ->
          let branch =
            if Expr.is_true (Expr.eval (read_var st) c) then then_b else else_b
          in
          continue st (List.map (fun s -> WStmt s) branch @ rest)
      | Ast.While _ -> assert false (* rejected up front *)
      | Ast.Sem_p s ->
          continue { st with sems = SMap.add s (sem_count st s - 1) st.sems } rest
      | Ast.Sem_v s ->
          let next =
            if List.mem s binary then 1 else sem_count st s + 1
          in
          continue { st with sems = SMap.add s next st.sems } rest
      | Ast.Post e -> continue { st with evs = SMap.add e true st.evs } rest
      | Ast.Clear e -> continue { st with evs = SMap.add e false st.evs } rest
      | Ast.Wait _ -> continue st rest
      | Ast.Assert _ -> continue st rest (* checked by [assert_can_fail] *)
      | Ast.Cobegin branches ->
          let children =
            List.mapi
              (fun i body ->
                {
                  pid = st.next_pid + i;
                  work = List.map (fun s -> WStmt s) body;
                  finished = false;
                })
              branches
          in
          let st =
            {
              st with
              next_pid = st.next_pid + List.length children;
              threads = st.threads @ children;
            }
          in
          continue st (WJoin (List.map (fun c -> c.pid) children) :: rest))

let step_normalized binary st pid =
  let st = step binary st pid in
  { st with threads = normalize_threads st.threads }

(* Structural equality on Map.t distinguishes tree shapes of equal maps, so
   hashtable keys use the canonical sorted bindings instead. *)
let key st =
  ( SMap.bindings st.store,
    SMap.bindings st.sems,
    SMap.bindings st.evs,
    List.map (fun t -> (t.pid, t.work, t.finished)) st.threads,
    st.next_pid )

type stats = { completed_paths : int; deadlocked_paths : int; states : int }

let explore program =
  let binary = program.Ast.binary_sems in
  let memo = Hashtbl.create 1024 in
  let rec go st =
    let k = key st in
    match Hashtbl.find_opt memo k with
    | Some r -> r
    | None ->
        let r =
          match enabled_pids st with
          | [] ->
              if List.for_all (fun t -> t.finished) st.threads then (1, 0)
              else (0, 1)
          | pids ->
              List.fold_left
                (fun (c, d) pid ->
                  let c', d' = go (step_normalized binary st pid) in
                  (saturating_add c c', saturating_add d d'))
                (0, 0) pids
        in
        Hashtbl.add memo k r;
        r
  in
  let start =
    let st = initial_state program in
    { st with threads = normalize_threads st.threads }
  in
  let completed_paths, deadlocked_paths = go start in
  { completed_paths; deadlocked_paths; states = Hashtbl.length memo }

let completed_count program = (explore program).completed_paths

let can_deadlock program = (explore program).deadlocked_paths > 0

let final_stores program =
  let binary = program.Ast.binary_sems in
  let seen = Hashtbl.create 1024 in
  let finals = Hashtbl.create 64 in
  let rec go st =
    let k = key st in
    if not (Hashtbl.mem seen k) then begin
      Hashtbl.add seen k ();
      match enabled_pids st with
      | [] ->
          if List.for_all (fun t -> t.finished) st.threads then
            Hashtbl.replace finals (SMap.bindings st.store) ()
      | pids -> List.iter (fun pid -> go (step_normalized binary st pid)) pids
    end
  in
  let start =
    let st = initial_state program in
    { st with threads = normalize_threads st.threads }
  in
  go start;
  Hashtbl.fold (fun k () acc -> k :: acc) finals [] |> List.sort compare

(* Does some execution evaluate some assert to false?  Checked statically
   over the state graph: a state where an assert is at the head of a thread
   with a falsifying store. *)
let assert_can_fail program =
  let binary = program.Ast.binary_sems in
  let seen = Hashtbl.create 1024 in
  let found = ref false in
  let rec go st =
    let k = key st in
    if (not !found) && not (Hashtbl.mem seen k) then begin
      Hashtbl.add seen k ();
      List.iter
        (fun t ->
          match t.work with
          | WStmt (Ast.Assert e) :: _
            when not (Expr.is_true (Expr.eval (read_var st) e)) ->
              found := true
          | _ -> ())
        st.threads;
      if not !found then
        List.iter (fun pid -> go (step_normalized binary st pid)) (enabled_pids st)
    end
  in
  let start =
    let st = initial_state program in
    { st with threads = normalize_threads st.threads }
  in
  go start;
  !found

let reachable_final program pred =
  List.exists
    (fun bindings ->
      pred (fun x -> match List.assoc_opt x bindings with Some v -> v | None -> 0))
    (final_stores program)
