(** Sequentially consistent interpreter.

    Executes a program as an interleaving of atomic statement instances —
    the standard operational rendering of Lamport's sequential consistency —
    and records the observed execution as a {!Trace.t}.  Each executed
    statement instance becomes one event:

    - [skip], assignments and condition evaluations of [if]/[while] become
      computation events carrying their shared-variable read/write sets;
    - [P]/[V]/[Post]/[Wait]/[Clear] become synchronization events;
    - [cobegin] emits a fork event and spawns one child process per branch;
      when every child has finished, the parent emits the matching join
      event.

    The paper groups maximal runs of non-synchronization statements into a
    single computation event; we keep one event per statement instance.  The
    granularities are interchangeable for every analysis in this repository
    (a coarser event is exactly the po-chain of its statements). *)

val run : ?fuel:int -> ?policy:Sched.policy -> Ast.t -> Trace.t
(** [run prog] executes to completion, deadlock, or fuel exhaustion
    ([fuel] bounds the total number of events, default [100_000]; [policy]
    defaults to [Round_robin]). *)

val run_random : seed:int -> ?fuel:int -> Ast.t -> Trace.t
(** Shorthand for [run ~policy:(Random seed)]. *)

val final_value : Trace.t -> string -> int option
(** Value of a shared variable in the final store. *)
