(** Scheduling policies for the sequentially consistent interpreter.

    At every step the interpreter computes the set of processes whose next
    action is enabled and asks the policy to pick one.  Different policies
    realize different temporal orderings of the same program — the
    nondeterministic timing variations the paper studies. *)

type policy =
  | Round_robin
      (** cycle through processes, skipping blocked ones (deterministic) *)
  | Random of int  (** uniformly random among enabled; seeded, deterministic *)
  | Priority  (** always the enabled process with the smallest pid *)
  | Replay of int list
      (** follow the given pid sequence exactly; raises
          {!Replay_impossible} if the scheduled pid is not enabled *)

exception Replay_impossible of { step : int; wanted : int; enabled : int list }

type t
(** A stateful chooser instantiated from a policy. *)

val make : policy -> t

val choose : t -> step:int -> enabled:int list -> int
(** Picks one pid from [enabled] (non-empty, ascending order). *)
