(** Seeded random program generation, for differential testing of the
    analysis engines (see the [eventorder fuzz] subcommand).

    Generated programs draw from the paper's program class: straight-line
    bodies over shared variables, counting/binary semaphores and
    Post/Wait/Clear operations.  Everything is a pure function of the
    configuration and seed. *)

type config = {
  processes : int * int;  (** inclusive range of top-level process counts *)
  stmts_per_process : int * int;
  shared_vars : int;  (** variables [x0 .. x(k-1)] *)
  semaphores : int;  (** semaphores [s0 ..], initial value 0 or 1 *)
  binary_semaphores : bool;  (** declare generated semaphores binary *)
  event_variables : int;  (** event variables [e0 ..] *)
}

val default_config : config
(** 2–3 processes, 1–3 statements each, 2 variables, 1 semaphore, 1 event
    variable — small enough for the exhaustive engines. *)

val generate : config -> seed:int -> Ast.t

val generate_completing : ?max_attempts:int -> config -> seed:int -> Trace.t
(** Generates programs until one completes under round-robin (discarding
    deadlocking draws) and returns its trace.  Raises [Failure] after
    [max_attempts] (default 1000) consecutive deadlocks. *)
