(** Integer expressions over shared variables.

    Booleans are represented as integers: zero is false, anything else true
    (comparison and logical operators produce 0 or 1). *)

type t =
  | Int of int
  | Var of string  (** shared variable, default initial value 0 *)
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Eq of t * t
  | Ne of t * t
  | Lt of t * t
  | Le of t * t
  | And of t * t
  | Or of t * t
  | Not of t

val eval : (string -> int) -> t -> int
(** [eval lookup e] evaluates [e] with [lookup] supplying variable values. *)

val vars : t -> string list
(** Shared variables read by the expression, each listed once, in first-use
    order. *)

val is_true : int -> bool

val pp : Format.formatter -> t -> unit
