(** Plain-text serialization of traces.

    Lets an observed execution be recorded once and re-analysed later (or
    shipped in a bug report) without re-running the program.  The format is
    line-based and versioned:

    {v
    eotrace 1
    outcome completed
    vars x y
    sems s            # names; binary semaphores marked with a trailing *
    events e          # event-variable names
    sem_init 0
    ev_init 0
    process 0 main
    event 0 0 0 computation "x := 1" reads 1 writes 0
    event 1 0 1 sem_v 0 "V(s)"
    po 0 1
    final x 1
    v}

    Unknown directives are rejected, not skipped: the format is a contract,
    not a suggestion. *)

val to_string : Trace.t -> string

val of_string : string -> Trace.t
(** Raises [Failure] with a line-number message on malformed input. *)

val save : string -> Trace.t -> unit
(** [save path trace] writes the trace to a file. *)

val load : string -> Trace.t
