(** Parser for the concrete syntax of the mini language.

    The syntax mirrors {!Ast.pp}:

    {v
    sem mutex = 1
    event done = clear
    var x = 0

    proc main {
      a: skip
      x := x + 1
      if x = 1 { post(done) } else { wait(done) }
      while x < 3 { x := x + 1 }
      p(mutex)
      v(mutex)
      cobegin { x := 2 } { x := 3 } coend
    }
    v}

    Statements are separated by newlines or optional semicolons.  Comments
    run from [#] to end of line.  Declarations ([sem]/[event]/[var]) are
    optional; undeclared semaphores start at 0, event variables start clear,
    shared variables start at 0. *)

exception Syntax_error of { line : int; message : string }

val program : string -> Ast.t
(** Parses a full program from source text.  Raises {!Syntax_error}. *)

val program_file : string -> Ast.t

val expr : string -> Expr.t
(** Parses a single expression (for tests and the CLI). *)
