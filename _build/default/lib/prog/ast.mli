(** Abstract syntax of the mini shared-memory concurrent language.

    The language matches the class of programs the paper studies: fork/join
    (as structured [cobegin]/[coend] blocks) plus either counting semaphores
    ([P]/[V]) or event-style synchronization ([Post]/[Wait]/[Clear]), over
    shared variables on a sequentially consistent machine. *)

type stmt =
  | Skip of string option  (** [skip], optionally labelled (["a: skip"]) *)
  | Assign of string * Expr.t  (** [x := e] *)
  | If of Expr.t * stmt list * stmt list  (** [if e then .. else .. fi] *)
  | While of Expr.t * stmt list
      (** [while e do .. od]; executions are bounded by interpreter fuel *)
  | Sem_p of string  (** [P(s)] — blocks while the semaphore is zero *)
  | Sem_v of string  (** [V(s)] *)
  | Post of string  (** set the event variable *)
  | Wait of string  (** block until the event variable is set *)
  | Clear of string  (** reset the event variable *)
  | Assert of Expr.t
      (** safety check: evaluating to false is a violation (the interpreter
          records it; {!Explore} searches for one over all executions) *)
  | Cobegin of stmt list list
      (** fork one child process per branch, join when all finish *)

type proc = { name : string; body : stmt list }

type t = {
  procs : proc list;  (** top-level processes, started together *)
  sem_init : (string * int) list;  (** semaphore initial values, default 0 *)
  binary_sems : string list;
      (** semaphores with binary semantics: a [V] on a semaphore already at
          1 is absorbed.  Every other semaphore counts. *)
  ev_init : (string * bool) list;  (** event variables, default clear *)
  var_init : (string * int) list;  (** shared variables, default 0 *)
}

val program :
  ?sem_init:(string * int) list ->
  ?binary_sems:string list ->
  ?ev_init:(string * bool) list ->
  ?var_init:(string * int) list ->
  proc list ->
  t

val proc : string -> stmt list -> proc

val semaphores : t -> string list
(** Semaphore names referenced anywhere (declared-first, then first-use
    order). *)

val event_variables : t -> string list

val shared_variables : t -> string list

val stmt_count : t -> int
(** Static statement count (loop/branch bodies counted once). *)

val uses_semaphores : t -> bool

val uses_event_sync : t -> bool

val pp_stmt : Format.formatter -> stmt -> unit

val pp : Format.formatter -> t -> unit
(** Concrete syntax accepted by {!Parse.program}. *)
