(* The interpreter threads a mutable machine state:
   - [store]: shared variables (name -> value);
   - [sems] / [evs]: synchronization objects (name -> id, id -> state);
   - one [thread] per process, each holding a work list of pending items.
   A [cobegin] pushes a [Join] work item under the spawned children; the
   parent is blocked on it until every child finishes. *)

type work = Stmt of Ast.stmt | Join_children of int list

type thread = {
  pid : int;
  name : string;
  mutable work : work list;
  mutable finished : bool;
  mutable last_event : int option;
}

module Names = struct
  (* Interns names to dense ids in first-registration order. *)
  type t = { tbl : (string, int) Hashtbl.t; mutable order : string list }

  let create () = { tbl = Hashtbl.create 16; order = [] }

  let id t name =
    match Hashtbl.find_opt t.tbl name with
    | Some i -> i
    | None ->
        let i = Hashtbl.length t.tbl in
        Hashtbl.add t.tbl name i;
        t.order <- name :: t.order;
        i

  let to_array t = Array.of_list (List.rev t.order)
end

type machine = {
  program : Ast.t;
  store : (string, int) Hashtbl.t;
  vars : Names.t;
  sems : Names.t;
  evs : Names.t;
  mutable sem_count : int array;
  mutable sem_binary : bool array;
  mutable ev_set : bool array;
  sem_init : int array;
  ev_init : bool array;
  mutable threads : thread list;  (* in pid order *)
  mutable next_pid : int;
  mutable events_rev : Event.t list;
  mutable n_events : int;
  mutable po_edges : (int * int) list;
  mutable violations : int list;
}

let grow_int arr n = Array.init (max n (Array.length arr)) (fun i ->
    if i < Array.length arr then arr.(i) else 0)

let grow_bool arr n = Array.init (max n (Array.length arr)) (fun i ->
    if i < Array.length arr then arr.(i) else false)

let sem_id m name =
  let i = Names.id m.sems name in
  if i >= Array.length m.sem_count then begin
    m.sem_count <- grow_int m.sem_count (i + 1);
    m.sem_binary <- grow_bool m.sem_binary (i + 1)
  end;
  i

let ev_id m name =
  let i = Names.id m.evs name in
  if i >= Array.length m.ev_set then m.ev_set <- grow_bool m.ev_set (i + 1);
  i

let var_id m name = Names.id m.vars name

let lookup_var m name =
  let (_ : int) = var_id m name in
  match Hashtbl.find_opt m.store name with Some v -> v | None -> 0

let set_var m name v =
  let (_ : int) = var_id m name in
  Hashtbl.replace m.store name v

let init_machine program =
  let m =
    {
      program;
      store = Hashtbl.create 16;
      vars = Names.create ();
      sems = Names.create ();
      evs = Names.create ();
      sem_count = [||];
      sem_binary = [||];
      ev_set = [||];
      sem_init = [||];
      ev_init = [||];
      threads = [];
      next_pid = 0;
      events_rev = [];
      n_events = 0;
      po_edges = [];
      violations = [];
    }
  in
  List.iter (fun (x, v) -> set_var m x v) program.Ast.var_init;
  (* Register declared sync objects first so their ids are stable, then every
     referenced one (default initial value). *)
  List.iter (fun (s, _) -> ignore (sem_id m s)) program.Ast.sem_init;
  List.iter (fun (e, _) -> ignore (ev_id m e)) program.Ast.ev_init;
  List.iter (fun s -> ignore (sem_id m s)) (Ast.semaphores program);
  List.iter (fun e -> ignore (ev_id m e)) (Ast.event_variables program);
  List.iter
    (fun (s, v) -> m.sem_count.(sem_id m s) <- v)
    program.Ast.sem_init;
  List.iter
    (fun s -> m.sem_binary.(sem_id m s) <- true)
    program.Ast.binary_sems;
  List.iter (fun (e, b) -> m.ev_set.(ev_id m e) <- b) program.Ast.ev_init;
  let sem_init = Array.copy m.sem_count in
  let ev_init = Array.copy m.ev_set in
  let threads =
    List.map
      (fun (p : Ast.proc) ->
        let pid = m.next_pid in
        m.next_pid <- pid + 1;
        {
          pid;
          name = p.Ast.name;
          work = List.map (fun s -> Stmt s) p.Ast.body;
          finished = false;
          last_event = None;
        })
      program.Ast.procs
  in
  m.threads <- threads;
  { m with sem_init; ev_init }

let thread_by_pid m pid = List.find (fun t -> t.pid = pid) m.threads

let emit m thread ~kind ~label ~reads ~writes =
  let seq =
    List.length
      (List.filter (fun e -> e.Event.pid = thread.pid) m.events_rev)
  in
  let id = m.n_events in
  let e = Event.make ~id ~pid:thread.pid ~seq ~kind ~label ~reads ~writes () in
  m.events_rev <- e :: m.events_rev;
  m.n_events <- id + 1;
  (match thread.last_event with
  | Some prev -> m.po_edges <- (prev, id) :: m.po_edges
  | None -> ());
  thread.last_event <- Some id;
  e

let enabled_work m thread =
  match thread.work with
  | [] -> false
  | Join_children pids :: _ ->
      List.for_all (fun pid -> (thread_by_pid m pid).finished) pids
  | Stmt (Ast.Sem_p s) :: _ -> m.sem_count.(sem_id m s) > 0
  | Stmt (Ast.Wait e) :: _ -> m.ev_set.(ev_id m e)
  | Stmt _ :: _ -> true

let read_ids m names = List.map (var_id m) names

let step m thread =
  match thread.work with
  | [] -> assert false
  | Join_children pids :: rest ->
      let (_ : Event.t) =
        emit m thread ~kind:(Event.Sync Event.Join) ~label:"join" ~reads:[]
          ~writes:[]
      in
      (* Program order: last event of each child precedes the join. *)
      let join_id = m.n_events - 1 in
      List.iter
        (fun pid ->
          match (thread_by_pid m pid).last_event with
          | Some last when last <> join_id ->
              if not (List.mem (last, join_id) m.po_edges) then
                m.po_edges <- (last, join_id) :: m.po_edges
          | _ -> ())
        pids;
      thread.work <- rest
  | Stmt s :: rest -> (
      let continue work = thread.work <- work in
      match s with
      | Ast.Skip label_opt ->
          let label =
            match label_opt with Some l -> l | None -> "skip"
          in
          let (_ : Event.t) =
            emit m thread ~kind:Event.Computation ~label ~reads:[] ~writes:[]
          in
          continue rest
      | Ast.Assign (x, e) ->
          let v = Expr.eval (lookup_var m) e in
          let reads = read_ids m (Expr.vars e) in
          let writes = [ var_id m x ] in
          set_var m x v;
          let label = Format.asprintf "%s := %a" x Expr.pp e in
          let (_ : Event.t) =
            emit m thread ~kind:Event.Computation ~label ~reads ~writes
          in
          continue rest
      | Ast.If (c, then_b, else_b) ->
          let v = Expr.eval (lookup_var m) c in
          let reads = read_ids m (Expr.vars c) in
          let label = Format.asprintf "if %a" Expr.pp c in
          let (_ : Event.t) =
            emit m thread ~kind:Event.Computation ~label ~reads ~writes:[]
          in
          let branch = if Expr.is_true v then then_b else else_b in
          continue (List.map (fun s -> Stmt s) branch @ rest)
      | Ast.While (c, body) ->
          let v = Expr.eval (lookup_var m) c in
          let reads = read_ids m (Expr.vars c) in
          let label = Format.asprintf "while %a" Expr.pp c in
          let (_ : Event.t) =
            emit m thread ~kind:Event.Computation ~label ~reads ~writes:[]
          in
          if Expr.is_true v then
            continue (List.map (fun s -> Stmt s) body @ (Stmt s :: rest))
          else continue rest
      | Ast.Sem_p name ->
          let sid = sem_id m name in
          assert (m.sem_count.(sid) > 0);
          m.sem_count.(sid) <- m.sem_count.(sid) - 1;
          let (_ : Event.t) =
            emit m thread
              ~kind:(Event.Sync (Event.Sem_p sid))
              ~label:(Printf.sprintf "P(%s)" name)
              ~reads:[] ~writes:[]
          in
          continue rest
      | Ast.Sem_v name ->
          let sid = sem_id m name in
          (* Binary semaphores absorb a V when already at 1. *)
          if m.sem_binary.(sid) then m.sem_count.(sid) <- 1
          else m.sem_count.(sid) <- m.sem_count.(sid) + 1;
          let (_ : Event.t) =
            emit m thread
              ~kind:(Event.Sync (Event.Sem_v sid))
              ~label:(Printf.sprintf "V(%s)" name)
              ~reads:[] ~writes:[]
          in
          continue rest
      | Ast.Post name ->
          let eid = ev_id m name in
          m.ev_set.(eid) <- true;
          let (_ : Event.t) =
            emit m thread
              ~kind:(Event.Sync (Event.Post eid))
              ~label:(Printf.sprintf "Post(%s)" name)
              ~reads:[] ~writes:[]
          in
          continue rest
      | Ast.Wait name ->
          let eid = ev_id m name in
          assert m.ev_set.(eid);
          let (_ : Event.t) =
            emit m thread
              ~kind:(Event.Sync (Event.Wait eid))
              ~label:(Printf.sprintf "Wait(%s)" name)
              ~reads:[] ~writes:[]
          in
          continue rest
      | Ast.Clear name ->
          let eid = ev_id m name in
          m.ev_set.(eid) <- false;
          let (_ : Event.t) =
            emit m thread
              ~kind:(Event.Sync (Event.Clear eid))
              ~label:(Printf.sprintf "Clear(%s)" name)
              ~reads:[] ~writes:[]
          in
          continue rest
      | Ast.Assert e ->
          let v = Expr.eval (lookup_var m) e in
          let reads = read_ids m (Expr.vars e) in
          let label = Format.asprintf "assert %a" Expr.pp e in
          let (_ : Event.t) =
            emit m thread ~kind:Event.Computation ~label ~reads ~writes:[]
          in
          if not (Expr.is_true v) then
            m.violations <- (m.n_events - 1) :: m.violations;
          continue rest
      | Ast.Cobegin branches ->
          let (_ : Event.t) =
            emit m thread ~kind:(Event.Sync Event.Fork) ~label:"fork"
              ~reads:[] ~writes:[]
          in
          let fork_id = m.n_events - 1 in
          let children =
            List.mapi
              (fun i body ->
                let pid = m.next_pid in
                m.next_pid <- pid + 1;
                {
                  pid;
                  name = Printf.sprintf "%s/%d" thread.name i;
                  work = List.map (fun s -> Stmt s) body;
                  finished = false;
                  (* The fork event is the program-order predecessor of the
                     child's first event. *)
                  last_event = Some fork_id;
                })
              branches
          in
          m.threads <- m.threads @ children;
          continue (Join_children (List.map (fun t -> t.pid) children) :: rest))

let run ?(fuel = 100_000) ?(policy = Sched.Round_robin) program =
  let m = init_machine program in
  let chooser = Sched.make policy in
  let rec loop steps =
    List.iter
      (fun t -> if t.work = [] && not t.finished then t.finished <- true)
      m.threads;
    let enabled =
      List.filter (fun t -> (not t.finished) && enabled_work m t) m.threads
      |> List.map (fun t -> t.pid)
      |> List.sort compare
    in
    match enabled with
    | [] ->
        if List.for_all (fun t -> t.finished) m.threads then Trace.Completed
        else
          Trace.Deadlocked
            (List.filter (fun t -> not t.finished) m.threads
            |> List.map (fun t -> t.pid))
    | _ when steps >= fuel -> Trace.Fuel_exhausted
    | _ ->
        let pid = Sched.choose chooser ~step:steps ~enabled in
        step m (thread_by_pid m pid);
        loop (steps + 1)
  in
  let outcome = loop 0 in
  let events = Array.of_list (List.rev m.events_rev) in
  let program_order = Rel.of_pairs (Array.length events) m.po_edges in
  let final_store =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) m.store []
    |> List.sort compare
  in
  {
    Trace.events;
    program_order;
    outcome;
    violations = List.rev m.violations;
    var_names = Names.to_array m.vars;
    sem_names = Names.to_array m.sems;
    ev_names = Names.to_array m.evs;
    sem_init = m.sem_init;
    sem_binary = Array.copy m.sem_binary;
    ev_init = m.ev_init;
    final_store;
    process_names = List.map (fun t -> (t.pid, t.name)) m.threads;
  }

let run_random ~seed ?fuel program = run ?fuel ~policy:(Sched.Random seed) program

let final_value trace name = List.assoc_opt name trace.Trace.final_store
