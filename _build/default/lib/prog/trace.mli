(** Traces: the observed program executions produced by the interpreter.

    A trace records the events in the order they executed (event ids are
    assigned in schedule order, so the schedule is the identity permutation),
    the immediate program-order edges, the synchronization environment, and
    the run's outcome. *)

type outcome =
  | Completed
  | Deadlocked of int list  (** pids of the blocked, unfinished processes *)
  | Fuel_exhausted

type t = {
  events : Event.t array;
  program_order : Rel.t;  (** immediate edges, see {!Execution.t} *)
  outcome : outcome;
  violations : int list;
      (** event ids of [assert] statements that evaluated to false in this
          run (the run continues past a violation; an empty list means every
          executed assertion held) *)
  var_names : string array;  (** shared-variable id -> source name *)
  sem_names : string array;
  ev_names : string array;
  sem_init : int array;
  sem_binary : bool array;  (** see {!Execution.t} *)
  ev_init : bool array;
  final_store : (string * int) list;  (** shared memory after the run *)
  process_names : (int * string) list;
      (** pid -> source name; forked children are named
          ["<parent>/<branch-index>"] *)
}

val n_events : t -> int

val schedule : t -> int array
(** The identity permutation over the events — ids are in execution order. *)

val to_execution : t -> Execution.t
(** The observed execution [<E, T, D>]: [T] is the total order in which the
    events ran, [D] the dependences computed from the access sets. *)

val find_event : t -> string -> Event.t
(** Event with the given label.  Raises [Not_found] if absent, or
    [Invalid_argument] if the label is ambiguous. *)

val find_event_opt : t -> string -> Event.t option

val pp : Format.formatter -> t -> unit
(** One line per event: schedule position, process, label, accesses. *)
