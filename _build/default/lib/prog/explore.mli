(** Exhaustive exploration of {e all} executions of a program.

    The feasibility engines ({!Skeleton}, {!Enumerate}, {!Reach}) quantify
    over re-executions of one {e observed} trace; the related work of the
    paper's Section 4 (Callahan–Subhlok, Emrath–Ghosh–Padua) quantifies
    over every execution of the {e program}.  This module makes the second
    quantifier executable: a pure small-step semantics explored with
    memoization over machine states.

    Scope: loop-free programs (the state graph is then acyclic and finite;
    [While] raises {!Unsupported}).  Conditionals, fork/join, semaphores —
    counting and binary — and event variables are all supported.

    The relationship to the trace-level engines is the paper's Section 3
    in executable form, and is property-tested:

    - every feasible schedule of an observed trace is a program execution,
      so [completed_count] ≥ the trace skeleton's schedule count;
    - for programs whose processes share no variables (no dependences, no
      data-controlled branches), the two quantifiers coincide: equal
      execution counts, equal deadlock verdicts. *)

exception Unsupported of string

type stats = {
  completed_paths : int;  (** executions running every process to the end *)
  deadlocked_paths : int;  (** maximal executions stuck before completion *)
  states : int;  (** distinct machine states visited *)
}

val explore : Ast.t -> stats
(** Counts are saturating at {!count_saturation}. *)

val count_saturation : int

val can_deadlock : Ast.t -> bool

val completed_count : Ast.t -> int

val final_stores : Ast.t -> (string * int) list list
(** The distinct shared-memory contents reachable by {e completed}
    executions, each as a sorted association list; sorted overall.
    Variables never assigned do not appear. *)

val assert_can_fail : Ast.t -> bool
(** Can some execution reach an [assert] whose condition evaluates to
    false at that moment?  (The violation is checked at the assert's own
    scheduling point, matching the interpreter's semantics.) *)

val reachable_final : Ast.t -> ((string -> int) -> bool) -> bool
(** [reachable_final prog pred]: does some completed execution end in a
    store satisfying [pred]?  Unassigned variables read as 0. *)
