type stmt =
  | Skip of string option
  | Assign of string * Expr.t
  | If of Expr.t * stmt list * stmt list
  | While of Expr.t * stmt list
  | Sem_p of string
  | Sem_v of string
  | Post of string
  | Wait of string
  | Clear of string
  | Assert of Expr.t
  | Cobegin of stmt list list

type proc = { name : string; body : stmt list }

type t = {
  procs : proc list;
  sem_init : (string * int) list;
  binary_sems : string list;
  ev_init : (string * bool) list;
  var_init : (string * int) list;
}

let program ?(sem_init = []) ?(binary_sems = []) ?(ev_init = [])
    ?(var_init = []) procs =
  (* Normalize: every binary semaphore carries an explicit initial value,
     so the concrete syntax (one [binsem] line per semaphore) round-trips. *)
  let sem_init =
    sem_init
    @ List.filter_map
        (fun s -> if List.mem_assoc s sem_init then None else Some (s, 0))
        binary_sems
  in
  { procs; sem_init; binary_sems; ev_init; var_init }

let proc name body = { name; body }

let add_unique x xs = if List.mem x xs then xs else xs @ [ x ]

let rec fold_stmt f acc s =
  let acc = f acc s in
  match s with
  | Skip _ | Assign _ | Sem_p _ | Sem_v _ | Post _ | Wait _ | Clear _
  | Assert _ ->
      acc
  | If (_, t, e) -> List.fold_left (fold_stmt f) (List.fold_left (fold_stmt f) acc t) e
  | While (_, b) -> List.fold_left (fold_stmt f) acc b
  | Cobegin branches ->
      List.fold_left (fun acc b -> List.fold_left (fold_stmt f) acc b) acc
        branches

let fold_program f acc prog =
  List.fold_left
    (fun acc p -> List.fold_left (fold_stmt f) acc p.body)
    acc prog.procs

let semaphores prog =
  let declared = List.map fst prog.sem_init in
  fold_program
    (fun acc s ->
      match s with
      | Sem_p name | Sem_v name -> add_unique name acc
      | _ -> acc)
    declared prog

let event_variables prog =
  let declared = List.map fst prog.ev_init in
  fold_program
    (fun acc s ->
      match s with
      | Post name | Wait name | Clear name -> add_unique name acc
      | _ -> acc)
    declared prog

let shared_variables prog =
  let declared = List.map fst prog.var_init in
  fold_program
    (fun acc s ->
      match s with
      | Assign (x, e) -> List.fold_left (Fun.flip add_unique) (add_unique x acc) (Expr.vars e)
      | If (c, _, _) | While (c, _) | Assert c ->
          List.fold_left (Fun.flip add_unique) acc (Expr.vars c)
      | _ -> acc)
    declared prog

let stmt_count prog = fold_program (fun acc _ -> acc + 1) 0 prog

let uses_semaphores prog = semaphores prog <> []

let uses_event_sync prog = event_variables prog <> []

let rec pp_stmt ppf = function
  | Skip None -> Format.pp_print_string ppf "skip"
  | Skip (Some label) -> Format.fprintf ppf "%s: skip" label
  | Assign (x, e) -> Format.fprintf ppf "%s := %a" x Expr.pp e
  | Sem_p s -> Format.fprintf ppf "p(%s)" s
  | Sem_v s -> Format.fprintf ppf "v(%s)" s
  | Post e -> Format.fprintf ppf "post(%s)" e
  | Wait e -> Format.fprintf ppf "wait(%s)" e
  | Clear e -> Format.fprintf ppf "clear(%s)" e
  | Assert e -> Format.fprintf ppf "assert %a" Expr.pp e
  | If (c, t, []) ->
      Format.fprintf ppf "@[<v 2>if %a {%a@]@ }" Expr.pp c pp_block t
  | If (c, t, e) ->
      Format.fprintf ppf "@[<v 2>if %a {%a@]@ @[<v 2>} else {%a@]@ }" Expr.pp
        c pp_block t pp_block e
  | While (c, b) ->
      Format.fprintf ppf "@[<v 2>while %a {%a@]@ }" Expr.pp c pp_block b
  | Cobegin branches ->
      Format.fprintf ppf "@[<v>cobegin";
      List.iter
        (fun b -> Format.fprintf ppf "@ @[<v 2>{%a@]@ }" pp_block b)
        branches;
      Format.fprintf ppf "@ coend@]"

and pp_block ppf stmts =
  List.iter (fun s -> Format.fprintf ppf "@ %a" pp_stmt s) stmts

let pp ppf prog =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (s, v) ->
      let kind = if List.mem s prog.binary_sems then "binsem" else "sem" in
      Format.fprintf ppf "%s %s = %d@ " kind s v)
    prog.sem_init;
  List.iter
    (fun (e, b) ->
      Format.fprintf ppf "event %s = %s@ " e (if b then "set" else "clear"))
    prog.ev_init;
  List.iter (fun (x, v) -> Format.fprintf ppf "var %s = %d@ " x v)
    prog.var_init;
  List.iter
    (fun p ->
      Format.fprintf ppf "@[<v 2>proc %s {%a@]@ }@ " p.name pp_block p.body)
    prog.procs;
  Format.fprintf ppf "@]"
