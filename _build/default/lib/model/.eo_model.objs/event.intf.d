lib/model/event.mli: Format
