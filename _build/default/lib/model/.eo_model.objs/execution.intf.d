lib/model/execution.mli: Event Format Rel
