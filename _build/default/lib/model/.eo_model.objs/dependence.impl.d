lib/model/dependence.ml: Array Event List Rel
