lib/model/execution.ml: Array Dependence Event Format Fun List Rel
