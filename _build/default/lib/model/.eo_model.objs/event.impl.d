lib/model/event.ml: Format List Printf
