lib/model/dependence.mli: Event Rel
