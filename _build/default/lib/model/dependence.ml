let of_temporal events t =
  let n = Array.length events in
  let d = Rel.create n in
  Rel.iter
    (fun a b -> if Event.conflicts events.(a) events.(b) then Rel.add d a b)
    t;
  d

let of_schedule events schedule =
  let n = Array.length events in
  let d = Rel.create n in
  for i = 0 to Array.length schedule - 1 do
    for j = i + 1 to Array.length schedule - 1 do
      let a = schedule.(i) and b = schedule.(j) in
      if Event.conflicts events.(a) events.(b) then Rel.add d a b
    done
  done;
  d

let conflict_on_variable a b v =
  let reads e = List.mem v e.Event.reads in
  let writes e = List.mem v e.Event.writes in
  (writes a && (reads b || writes b)) || (writes b && (reads a || writes a))

let restrict_to_variable events d v =
  let r = Rel.create (Rel.size d) in
  Rel.iter
    (fun a b ->
      if conflict_on_variable events.(a) events.(b) v then Rel.add r a b)
    d;
  r
