(** Shared-data dependences.

    [a D b] holds iff [a] accesses a shared variable that [b] later accesses,
    with at least one of the two accesses being a modification.  Following
    the paper, the definition combines flow-, anti- and output-dependence and
    does not name the variable. *)

val of_schedule : Event.t array -> int array -> Rel.t
(** [of_schedule events schedule] computes [D] for the execution in which the
    events occur atomically in the order given by [schedule] (an array of
    event ids, earliest first): every pair of conflicting events is related
    in its schedule order. *)

val of_temporal : Event.t array -> Rel.t -> Rel.t
(** [of_temporal events t] relates [a D b] whenever [a t b] and the events
    conflict — the generalization of {!of_schedule} to a partial [T]. *)

val restrict_to_variable : Event.t array -> Rel.t -> int -> Rel.t
(** Keep only the dependence edges whose endpoints conflict on the given
    shared variable. *)
