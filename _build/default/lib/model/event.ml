type sync_op =
  | Sem_p of int
  | Sem_v of int
  | Post of int
  | Wait of int
  | Clear of int
  | Fork
  | Join

type kind = Computation | Sync of sync_op

type t = {
  id : int;
  pid : int;
  seq : int;
  kind : kind;
  label : string;
  reads : int list;
  writes : int list;
}

let pp_sync_op ppf = function
  | Sem_p s -> Format.fprintf ppf "P(s%d)" s
  | Sem_v s -> Format.fprintf ppf "V(s%d)" s
  | Post e -> Format.fprintf ppf "Post(e%d)" e
  | Wait e -> Format.fprintf ppf "Wait(e%d)" e
  | Clear e -> Format.fprintf ppf "Clear(e%d)" e
  | Fork -> Format.pp_print_string ppf "fork"
  | Join -> Format.pp_print_string ppf "join"

let default_label kind id =
  match kind with
  | Computation -> Printf.sprintf "e%d" id
  | Sync op -> Format.asprintf "%a" pp_sync_op op

let make ~id ~pid ~seq ~kind ?label ?(reads = []) ?(writes = []) () =
  let label =
    match label with Some l -> l | None -> default_label kind id
  in
  { id; pid; seq; kind; label; reads; writes }

let is_sync e = match e.kind with Sync _ -> true | Computation -> false

let is_computation e = not (is_sync e)

let conflicts a b =
  let touches vars v = List.mem v vars in
  let conflict_on v =
    (List.mem v a.writes && (touches b.reads v || touches b.writes v))
    || (List.mem v b.writes && (touches a.reads v || touches a.writes v))
  in
  List.exists conflict_on (a.reads @ a.writes @ b.reads @ b.writes)

let pp ppf e =
  Format.fprintf ppf "#%d[%s p%d.%d]" e.id e.label e.pid e.seq
