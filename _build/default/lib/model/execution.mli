(** Program executions [P = <E, T, D>] (Netzer–Miller, Section 2) together
    with the synchronization environment needed to re-execute the events.

    [E] is a finite set of events, [T] the temporal-ordering relation
    ([a T b] iff [a] completes before [b] begins), and [D] the shared-data
    dependence relation ([a D b] iff [a] accesses a shared variable that [b]
    later accesses, at least one access being a write).

    In addition to the triple, an execution records the immediate
    program-order edges (per-process successor edges plus fork-to-child and
    child-to-join edges) and the initial synchronization state, because the
    set of feasible program executions is defined by re-running the same
    events under the same synchronization semantics. *)

type t = {
  events : Event.t array;  (** [E]; [events.(i).id = i] *)
  program_order : Rel.t;
      (** immediate program-order edges: within-process successor edges,
          fork event to first event of each child, last event of each child
          to the matching join *)
  temporal : Rel.t;  (** [T], a strict partial order (total for a trace) *)
  dependences : Rel.t;  (** [D] *)
  sem_init : int array;  (** initial value of each semaphore *)
  sem_binary : bool array;
      (** per semaphore: [true] for binary semantics, where a [V] on a
          semaphore already at 1 is absorbed (the count is capped), versus
          counting semantics where every [V] adds a token *)
  ev_init : bool array;  (** initial state of each event variable *)
  num_shared_vars : int;
}

val make :
  events:Event.t array ->
  program_order:Rel.t ->
  temporal:Rel.t ->
  dependences:Rel.t ->
  ?sem_init:int array ->
  ?sem_binary:bool array ->
  ?ev_init:bool array ->
  ?num_shared_vars:int ->
  unit ->
  t
(** Plain record constructor; does not validate (use {!axiom_violations}).
    [sem_binary] defaults to all-counting. *)

val of_schedule :
  events:Event.t array ->
  program_order:Rel.t ->
  schedule:int array ->
  ?sem_init:int array ->
  ?sem_binary:bool array ->
  ?ev_init:bool array ->
  ?num_shared_vars:int ->
  unit ->
  t
(** Builds the execution observed when the events run atomically in the
    given total order: [T] is the total order induced by [schedule] and [D]
    is computed from the events' access sets (see {!Dependence.of_schedule}).
    Raises [Invalid_argument] if [schedule] is not a permutation of the event
    ids. *)

val n_events : t -> int

val event : t -> int -> Event.t

val po_closure : t -> Rel.t
(** Transitive closure of the program order (computed on demand). *)

val schedule_of_temporal : t -> int array
(** For an execution whose temporal order is total (an observed trace),
    recovers the schedule: event ids sorted by temporal position.  Raises
    [Invalid_argument] when [T] is not a total order. *)

val processes : t -> int list
(** Distinct process ids, ascending. *)

val events_of_process : t -> int -> Event.t list
(** Events of one process in [seq] order. *)

val num_semaphores : t -> int

val num_eventvars : t -> int

val axiom_violations : t -> string list
(** Checks the validity axioms our model imposes and returns a description
    of each violation (empty list = valid):

    - event ids index the array; per-process [seq] numbers are [0,1,2,...];
    - the program order is acyclic and orders exactly the within-process
      pairs (via its closure) as given by [seq];
    - [T] is a strict partial order containing the program-order closure;
    - every [D] edge is contained in [T] and connects conflicting events. *)

val is_valid : t -> bool

val pp : Format.formatter -> t -> unit
(** Multi-line summary: events per process, |T|, |D|. *)
