(** Events of a shared-memory parallel program execution.

    An event is an execution instance of a set of consecutively executed
    statements of one process (Netzer–Miller, Section 2).  A
    {e synchronization event} is an instance of a synchronization operation;
    a {e computation event} is an instance of a group of non-synchronization
    statements of one process. *)

type sync_op =
  | Sem_p of int  (** [P(s)] on counting semaphore [s] *)
  | Sem_v of int  (** [V(s)] on counting semaphore [s] *)
  | Post of int  (** [Post(e)]: set event variable [e] *)
  | Wait of int  (** [Wait(e)]: block until event variable [e] is set *)
  | Clear of int  (** [Clear(e)]: reset event variable [e] *)
  | Fork  (** cobegin: creates the child processes *)
  | Join  (** coend: waits for all children *)

type kind =
  | Computation  (** instance of non-synchronization statements *)
  | Sync of sync_op

type t = {
  id : int;  (** index of this event in the execution's event array *)
  pid : int;  (** process the event belongs to *)
  seq : int;  (** position of the event within its process *)
  kind : kind;
  label : string;  (** human-readable name, e.g. ["a"] or ["V(X1)"] *)
  reads : int list;  (** shared variables read (computation events) *)
  writes : int list;  (** shared variables written (computation events) *)
}

val make :
  id:int ->
  pid:int ->
  seq:int ->
  kind:kind ->
  ?label:string ->
  ?reads:int list ->
  ?writes:int list ->
  unit ->
  t
(** Smart constructor; when [label] is omitted a default is derived from the
    kind ([Computation] events are labelled ["e<id>"]). *)

val is_sync : t -> bool

val is_computation : t -> bool

val conflicts : t -> t -> bool
(** [conflicts a b] iff [a] and [b] access a common shared variable and at
    least one of the two accesses it by writing — the access pattern that
    gives rise to a shared-data dependence when the events are ordered. *)

val default_label : kind -> int -> string
(** The label [make] derives when none is supplied. *)

val pp : Format.formatter -> t -> unit

val pp_sync_op : Format.formatter -> sync_op -> unit
