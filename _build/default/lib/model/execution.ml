type t = {
  events : Event.t array;
  program_order : Rel.t;
  temporal : Rel.t;
  dependences : Rel.t;
  sem_init : int array;
  sem_binary : bool array;
  ev_init : bool array;
  num_shared_vars : int;
}

let max_referenced f events =
  Array.fold_left (fun acc e -> max acc (f e)) (-1) events

let max_sem e =
  match e.Event.kind with
  | Event.Sync (Event.Sem_p s | Event.Sem_v s) -> s
  | _ -> -1

let max_ev e =
  match e.Event.kind with
  | Event.Sync (Event.Post v | Event.Wait v | Event.Clear v) -> v
  | _ -> -1

let max_var e =
  List.fold_left max (-1) (e.Event.reads @ e.Event.writes)

let make ~events ~program_order ~temporal ~dependences ?sem_init ?sem_binary
    ?ev_init ?num_shared_vars () =
  let sem_init =
    match sem_init with
    | Some a -> a
    | None -> Array.make (max_referenced max_sem events + 1) 0
  in
  let sem_binary =
    match sem_binary with
    | Some a ->
        if Array.length a <> Array.length sem_init then
          invalid_arg "Execution.make: sem_binary length mismatch";
        a
    | None -> Array.make (Array.length sem_init) false
  in
  let ev_init =
    match ev_init with
    | Some a -> a
    | None -> Array.make (max_referenced max_ev events + 1) false
  in
  let num_shared_vars =
    match num_shared_vars with
    | Some n -> n
    | None -> max_referenced max_var events + 1
  in
  { events; program_order; temporal; dependences; sem_init; sem_binary;
    ev_init; num_shared_vars }

let n_events x = Array.length x.events

let event x i = x.events.(i)

let po_closure x = Rel.transitive_closure x.program_order

let processes x =
  let pids =
    Array.fold_left (fun acc e -> e.Event.pid :: acc) [] x.events
  in
  List.sort_uniq compare pids

let events_of_process x pid =
  Array.to_list x.events
  |> List.filter (fun e -> e.Event.pid = pid)
  |> List.sort (fun a b -> compare a.Event.seq b.Event.seq)

let num_semaphores x = Array.length x.sem_init

let num_eventvars x = Array.length x.ev_init

let schedule_of_temporal x =
  let n = n_events x in
  let order = Array.init n Fun.id in
  (* In a total order the i-th event has exactly i predecessors. *)
  let count_preds e =
    Rel.fold (fun _ b acc -> if b = e then acc + 1 else acc) x.temporal 0
  in
  let key = Array.init n count_preds in
  Array.sort (fun a b -> compare key.(a) key.(b)) order;
  Array.iteri
    (fun i e ->
      if key.(e) <> i then
        invalid_arg "Execution.schedule_of_temporal: temporal order not total")
    order;
  order

let of_schedule ~events ~program_order ~schedule ?sem_init ?sem_binary
    ?ev_init ?num_shared_vars () =
  let n = Array.length events in
  if Array.length schedule <> n then
    invalid_arg "Execution.of_schedule: schedule length mismatch";
  let seen = Array.make n false in
  Array.iter
    (fun i ->
      if i < 0 || i >= n || seen.(i) then
        invalid_arg "Execution.of_schedule: schedule is not a permutation";
      seen.(i) <- true)
    schedule;
  let temporal = Rel.create n in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      Rel.add temporal schedule.(i) schedule.(j)
    done
  done;
  let dependences = Dependence.of_schedule events schedule in
  make ~events ~program_order ~temporal ~dependences ?sem_init ?sem_binary
    ?ev_init ?num_shared_vars ()

let axiom_violations x =
  let errs = ref [] in
  let err fmt = Format.kasprintf (fun s -> errs := s :: !errs) fmt in
  let n = n_events x in
  (* Ids index the array. *)
  Array.iteri
    (fun i e ->
      if e.Event.id <> i then err "event at index %d has id %d" i e.Event.id)
    x.events;
  (* Per-process seq numbers are 0,1,2,... *)
  List.iter
    (fun pid ->
      let seqs = List.map (fun e -> e.Event.seq) (events_of_process x pid) in
      let expected = List.init (List.length seqs) Fun.id in
      if seqs <> expected then err "process %d has seq gaps" pid)
    (processes x);
  (* Relations sized to the carrier. *)
  if Rel.size x.program_order <> n then err "program_order size mismatch";
  if Rel.size x.temporal <> n then err "temporal size mismatch";
  if Rel.size x.dependences <> n then err "dependences size mismatch";
  if
    Rel.size x.program_order = n
    && Rel.size x.temporal = n
    && Rel.size x.dependences = n
  then begin
    if not (Rel.is_acyclic x.program_order) then err "program order is cyclic"
    else begin
      let po = po_closure x in
      (* Same-process pairs ordered exactly by seq. *)
      Array.iter
        (fun a ->
          Array.iter
            (fun b ->
              if a.Event.id <> b.Event.id && a.Event.pid = b.Event.pid then begin
                let should = a.Event.seq < b.Event.seq in
                let is = Rel.mem po a.Event.id b.Event.id in
                if should && not is then
                  err "program order misses %a -> %a" Event.pp a Event.pp b;
                if is && not should then
                  err "program order wrongly orders %a -> %a" Event.pp a
                    Event.pp b
              end)
            x.events)
        x.events;
      (* T is a strict partial order containing program order. *)
      if not (Rel.is_strict_partial_order x.temporal) then
        err "temporal ordering is not a strict partial order";
      if not (Rel.subset po x.temporal) then
        err "temporal ordering does not contain the program order"
    end;
    (* D edges are inside T and connect conflicting events. *)
    Rel.iter
      (fun a b ->
        if not (Rel.mem x.temporal a b) then
          err "dependence %d->%d not in temporal order" a b;
        if not (Event.conflicts x.events.(a) x.events.(b)) then
          err "dependence %d->%d between non-conflicting events" a b)
      x.dependences
  end;
  List.rev !errs

let is_valid x = axiom_violations x = []

let pp ppf x =
  Format.fprintf ppf "@[<v>execution: %d events, |T|=%d, |D|=%d@ " (n_events x)
    (Rel.pair_count x.temporal)
    (Rel.pair_count x.dependences);
  List.iter
    (fun pid ->
      Format.fprintf ppf "p%d: %a@ " pid
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ; ")
           (fun ppf e -> Format.pp_print_string ppf e.Event.label))
        (events_of_process x pid))
    (processes x);
  Format.fprintf ppf "@]"
