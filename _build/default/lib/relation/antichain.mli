(** Width and maximum antichains of strict partial orders (Dilworth's
    theorem via bipartite matching and König's construction).

    For an execution analysis, the width of a pinned partial order is the
    maximum number of events that could be in flight simultaneously — the
    execution's exploitable parallelism. *)

val width : Rel.t -> int
(** [width order]: size of a maximum antichain of the strict partial order
    (must be transitively closed, irreflexive; raises [Invalid_argument]
    otherwise).  Equals the minimum number of chains covering the carrier
    (Dilworth). *)

val maximum_antichain : Rel.t -> int list
(** A maximum antichain, ascending.  Its length is [width order] and its
    elements are pairwise incomparable — both properties are enforced by an
    internal assertion. *)

val minimum_chain_cover : Rel.t -> int list list
(** A partition of the carrier into [width order] chains (each list is
    ascending in the order). *)
