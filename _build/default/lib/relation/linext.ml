exception Stop

let iter ?limit g f =
  if not (Digraph.is_dag g) then invalid_arg "Linext.iter: graph is cyclic";
  let n = Digraph.size g in
  let indeg = Array.make n 0 in
  for a = 0 to n - 1 do
    List.iter (fun b -> indeg.(b) <- indeg.(b) + 1) (Digraph.succs g a)
  done;
  let order = Array.make n (-1) in
  let used = Array.make n false in
  let count = ref 0 in
  (* Classic backtracking: at each position try every currently-minimal
     (in-degree zero, unused) node. *)
  let rec go pos =
    if pos = n then begin
      incr count;
      f order;
      match limit with Some l when !count >= l -> raise Stop | _ -> ()
    end
    else
      for v = 0 to n - 1 do
        if (not used.(v)) && indeg.(v) = 0 then begin
          used.(v) <- true;
          order.(pos) <- v;
          List.iter (fun w -> indeg.(w) <- indeg.(w) - 1) (Digraph.succs g v);
          go (pos + 1);
          List.iter (fun w -> indeg.(w) <- indeg.(w) + 1) (Digraph.succs g v);
          used.(v) <- false
        end
      done
  in
  (try go 0 with Stop -> ());
  !count

let count ?limit g = iter ?limit g (fun _ -> ())

let all ?limit g =
  let acc = ref [] in
  let (_ : int) = iter ?limit g (fun o -> acc := Array.copy o :: !acc) in
  List.rev !acc

let is_linear_extension g order =
  let n = Digraph.size g in
  Array.length order = n
  && begin
       let pos = Array.make n (-1) in
       let ok = ref true in
       Array.iteri
         (fun i v ->
           if v < 0 || v >= n || pos.(v) <> -1 then ok := false
           else pos.(v) <- i)
         order;
       if !ok then
         for a = 0 to n - 1 do
           List.iter
             (fun b -> if pos.(a) >= pos.(b) then ok := false)
             (Digraph.succs g a)
         done;
       !ok
     end
