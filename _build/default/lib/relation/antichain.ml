let check_order order =
  if not (Rel.is_strict_partial_order order) then
    invalid_arg "Antichain: relation is not a strict partial order"

let matching_of order =
  let n = Rel.size order in
  let edges = Rel.to_pairs order in
  Matching.maximum ~n_left:n ~n_right:n edges

let width order =
  check_order order;
  Rel.size order - (matching_of order).Matching.size

(* König's construction: starting from the unmatched left vertices, walk
   alternating paths (non-matching edges left-to-right, matching edges
   right-to-left).  The maximum antichain consists of the elements whose
   left copy is reachable and whose right copy is not. *)
let maximum_antichain order =
  check_order order;
  let n = Rel.size order in
  let m = matching_of order in
  let left_reach = Array.make n false in
  let right_reach = Array.make n false in
  let queue = Queue.create () in
  for l = 0 to n - 1 do
    if m.Matching.left_match.(l) = -1 then begin
      left_reach.(l) <- true;
      Queue.add l queue
    end
  done;
  while not (Queue.is_empty queue) do
    let l = Queue.pop queue in
    Bitset.iter
      (fun r ->
        if (not right_reach.(r)) && m.Matching.left_match.(l) <> r then begin
          right_reach.(r) <- true;
          let l' = m.Matching.right_match.(r) in
          if l' <> -1 && not left_reach.(l') then begin
            left_reach.(l') <- true;
            Queue.add l' queue
          end
        end)
      (Rel.successors order l)
  done;
  let antichain =
    List.filter
      (fun e -> left_reach.(e) && not right_reach.(e))
      (List.init n Fun.id)
  in
  assert (List.length antichain = n - m.Matching.size);
  assert (
    List.for_all
      (fun a -> List.for_all (fun b -> a = b || not (Rel.comparable order a b))
           antichain)
      antichain);
  antichain

let minimum_chain_cover order =
  check_order order;
  let n = Rel.size order in
  let m = matching_of order in
  (* Chains are the paths of the matching: follow left_match links. *)
  let is_chain_start = Array.make n true in
  Array.iter (fun r -> if r <> -1 then is_chain_start.(r) <- false)
    m.Matching.left_match;
  let rec chain_from e =
    match m.Matching.left_match.(e) with
    | -1 -> [ e ]
    | next -> e :: chain_from next
  in
  List.filter_map
    (fun e -> if is_chain_start.(e) then Some (chain_from e) else None)
    (List.init n Fun.id)
