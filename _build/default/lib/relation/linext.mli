(** Linear extensions of a strict partial order given as a DAG.

    A linear extension is a total ordering of all nodes consistent with every
    edge.  Enumeration is exponential in general; these functions exist for
    the exact (small-instance) engines and for cross-checking the feasible
    execution enumerator. *)

val iter : ?limit:int -> Digraph.t -> (int array -> unit) -> int
(** [iter ?limit g f] calls [f] on each linear extension of [g] (the array is
    reused between calls; copy it to keep it) and returns the number of
    extensions visited.  Stops early after [limit] extensions when given.
    Raises [Invalid_argument] if [g] is cyclic. *)

val count : ?limit:int -> Digraph.t -> int
(** Number of linear extensions (capped at [limit] when given). *)

val all : ?limit:int -> Digraph.t -> int array list
(** Materialized list of linear extensions, in the enumeration order. *)

val is_linear_extension : Digraph.t -> int array -> bool
(** Checks that the array is a permutation of the nodes that respects every
    edge of the graph. *)
