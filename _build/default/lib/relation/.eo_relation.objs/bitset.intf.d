lib/relation/bitset.mli: Format
