lib/relation/antichain.ml: Array Bitset Fun List Matching Queue Rel
