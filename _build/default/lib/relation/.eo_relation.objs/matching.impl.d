lib/relation/matching.ml: Array List
