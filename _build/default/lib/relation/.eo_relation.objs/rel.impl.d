lib/relation/rel.ml: Array Bitset Format List
