lib/relation/bitset.ml: Array Format List Sys
