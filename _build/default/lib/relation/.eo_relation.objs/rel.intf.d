lib/relation/rel.mli: Bitset Format
