lib/relation/digraph.mli: Bitset Format Rel
