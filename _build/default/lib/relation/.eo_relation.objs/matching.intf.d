lib/relation/matching.mli:
