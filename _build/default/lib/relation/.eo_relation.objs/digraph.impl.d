lib/relation/digraph.ml: Array Bitset Format List Queue Rel
