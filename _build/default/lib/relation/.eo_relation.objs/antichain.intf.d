lib/relation/antichain.mli: Rel
