lib/relation/linext.ml: Array Digraph List
