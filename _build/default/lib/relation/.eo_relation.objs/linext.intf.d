lib/relation/linext.mli: Digraph
