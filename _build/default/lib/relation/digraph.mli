(** Directed graphs over [0 .. size-1] with adjacency lists, plus the graph
    algorithms the ordering analyses need: topological sorting, reachability,
    strongly connected components, and (closest) common ancestors in DAGs. *)

type t

val create : int -> t
(** [create n] is the edgeless graph on [n] nodes. *)

val size : t -> int

val add_edge : t -> int -> int -> unit
(** Adds [src -> dst].  Duplicate edges are ignored. *)

val mem_edge : t -> int -> int -> bool

val succs : t -> int -> int list
(** Successors in insertion order. *)

val preds : t -> int -> int list

val edge_count : t -> int

val of_rel : Rel.t -> t

val to_rel : t -> Rel.t

val copy : t -> t

val topological_sort : t -> int list option
(** Kahn's algorithm.  [None] when the graph has a cycle.  Among nodes that
    become ready simultaneously, smaller indices come first, so the result is
    deterministic. *)

val is_dag : t -> bool

val reachable_from : t -> int -> Bitset.t
(** Nodes reachable from the given node, including itself. *)

val reaches : t -> int -> int -> bool
(** [reaches g a b] iff there is a path (of length >= 0) from [a] to [b]. *)

val reachability : t -> Rel.t
(** The full reachability relation (reflexive-transitive closure). *)

val scc : t -> int array * int
(** Tarjan's strongly connected components.  Returns [(comp, count)] where
    [comp.(v)] is the component index of [v]; components are numbered in
    reverse topological order of the condensation. *)

val ancestors : t -> int -> Bitset.t
(** Nodes from which the given node is reachable, including itself. *)

val common_ancestors : t -> int list -> Bitset.t
(** Nodes that reach every node of the given (non-empty) list. *)

val closest_common_ancestors : t -> int list -> int list
(** The maximal elements (w.r.t. reachability) of [common_ancestors]: common
    ancestors not strictly reached by another common ancestor.  Used by the
    Emrath–Ghosh–Padua task-graph construction.  The graph must be a DAG. *)

val pp : Format.formatter -> t -> unit
