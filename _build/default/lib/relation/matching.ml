type t = { size : int; left_match : int array; right_match : int array }

let maximum ~n_left ~n_right edges =
  let adj = Array.make n_left [] in
  List.iter
    (fun (l, r) ->
      if l < 0 || l >= n_left || r < 0 || r >= n_right then
        invalid_arg "Matching.maximum: vertex out of range";
      adj.(l) <- r :: adj.(l))
    edges;
  let left_match = Array.make n_left (-1) in
  let right_match = Array.make n_right (-1) in
  let visited = Array.make n_right false in
  (* Standard Kuhn: try to find an augmenting path from [l]. *)
  let rec try_augment l =
    List.exists
      (fun r ->
        if visited.(r) then false
        else begin
          visited.(r) <- true;
          if right_match.(r) = -1 || try_augment right_match.(r) then begin
            left_match.(l) <- r;
            right_match.(r) <- l;
            true
          end
          else false
        end)
      adj.(l)
  in
  let size = ref 0 in
  for l = 0 to n_left - 1 do
    Array.fill visited 0 n_right false;
    if try_augment l then incr size
  done;
  { size = !size; left_match; right_match }
