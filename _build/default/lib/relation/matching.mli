(** Maximum bipartite matching (Kuhn's augmenting-path algorithm).

    Used by {!Antichain} for Dilworth-style chain covers; exposed on its own
    because it is independently useful. *)

type t = {
  size : int;  (** number of matched pairs *)
  left_match : int array;  (** for each left vertex, its right match or -1 *)
  right_match : int array;  (** for each right vertex, its left match or -1 *)
}

val maximum : n_left:int -> n_right:int -> (int * int) list -> t
(** [maximum ~n_left ~n_right edges] computes a maximum matching of the
    bipartite graph with the given edges (left vertex, right vertex).
    O(V * E). *)
