type t = {
  n : int;
  succ : int list array;
  pred : int list array;
  mutable edges : int;
}

let create n =
  { n; succ = Array.make n []; pred = Array.make n []; edges = 0 }

let size g = g.n

let check g i =
  if i < 0 || i >= g.n then invalid_arg "Digraph: index out of bounds"

let mem_edge g a b =
  check g a;
  check g b;
  List.mem b g.succ.(a)

let add_edge g a b =
  if not (mem_edge g a b) then begin
    g.succ.(a) <- g.succ.(a) @ [ b ];
    g.pred.(b) <- g.pred.(b) @ [ a ];
    g.edges <- g.edges + 1
  end

let succs g a =
  check g a;
  g.succ.(a)

let preds g a =
  check g a;
  g.pred.(a)

let edge_count g = g.edges

let of_rel r =
  let g = create (Rel.size r) in
  Rel.iter (fun a b -> add_edge g a b) r;
  g

let to_rel g =
  let r = Rel.create g.n in
  for a = 0 to g.n - 1 do
    List.iter (fun b -> Rel.add r a b) g.succ.(a)
  done;
  r

let copy g =
  { n = g.n; succ = Array.copy g.succ; pred = Array.copy g.pred; edges = g.edges }

(* Kahn's algorithm with a sorted ready "queue" (a simple min extraction over
   an in-degree array keeps the output deterministic). *)
let topological_sort g =
  let indeg = Array.make g.n 0 in
  for a = 0 to g.n - 1 do
    List.iter (fun b -> indeg.(b) <- indeg.(b) + 1) g.succ.(a)
  done;
  let ready = ref [] in
  for v = g.n - 1 downto 0 do
    if indeg.(v) = 0 then ready := v :: !ready
  done;
  let rec insert v = function
    | [] -> [ v ]
    | w :: rest as l -> if v < w then v :: l else w :: insert v rest
  in
  let rec loop acc = function
    | [] -> if List.length acc = g.n then Some (List.rev acc) else None
    | v :: rest ->
        let rest =
          List.fold_left
            (fun rest b ->
              indeg.(b) <- indeg.(b) - 1;
              if indeg.(b) = 0 then insert b rest else rest)
            rest g.succ.(v)
        in
        loop (v :: acc) rest
  in
  loop [] !ready

let is_dag g = topological_sort g <> None

let bfs neighbours g start =
  let seen = Bitset.create g.n in
  Bitset.add seen start;
  let queue = Queue.create () in
  Queue.add start queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    List.iter
      (fun w ->
        if not (Bitset.mem seen w) then begin
          Bitset.add seen w;
          Queue.add w queue
        end)
      (neighbours v)
  done;
  seen

let reachable_from g start =
  check g start;
  bfs (fun v -> g.succ.(v)) g start

let ancestors g target =
  check g target;
  bfs (fun v -> g.pred.(v)) g target

let reaches g a b = Bitset.mem (reachable_from g a) b

let reachability g =
  let r = Rel.create g.n in
  for a = 0 to g.n - 1 do
    Bitset.iter (fun b -> Rel.add r a b) (reachable_from g a)
  done;
  r

let scc g =
  (* Tarjan, iterative to be safe on deep graphs. *)
  let index = Array.make g.n (-1) in
  let lowlink = Array.make g.n 0 in
  let on_stack = Array.make g.n false in
  let comp = Array.make g.n (-1) in
  let stack = ref [] in
  let next_index = ref 0 in
  let next_comp = ref 0 in
  let rec strongconnect v =
    index.(v) <- !next_index;
    lowlink.(v) <- !next_index;
    incr next_index;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if index.(w) = -1 then begin
          strongconnect w;
          lowlink.(v) <- min lowlink.(v) lowlink.(w)
        end
        else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
      g.succ.(v);
    if lowlink.(v) = index.(v) then begin
      let rec pop () =
        match !stack with
        | [] -> assert false
        | w :: rest ->
            stack := rest;
            on_stack.(w) <- false;
            comp.(w) <- !next_comp;
            if w <> v then pop ()
      in
      pop ();
      incr next_comp
    end
  in
  for v = 0 to g.n - 1 do
    if index.(v) = -1 then strongconnect v
  done;
  (comp, !next_comp)

let common_ancestors g targets =
  match targets with
  | [] -> invalid_arg "Digraph.common_ancestors: empty target list"
  | t :: rest ->
      let acc = ancestors g t in
      List.iter (fun t' -> Bitset.inter_into acc (ancestors g t')) rest;
      acc

let closest_common_ancestors g targets =
  if not (is_dag g) then
    invalid_arg "Digraph.closest_common_ancestors: graph is cyclic";
  let common = common_ancestors g targets in
  (* c is closest iff no other common ancestor lies strictly below c on the
     way to the targets, i.e. no c' in common, c' <> c, with c -> c'. *)
  Bitset.fold
    (fun c acc ->
      let dominated =
        Bitset.fold
          (fun c' dominated ->
            dominated || (c' <> c && reaches g c c'))
          common false
      in
      if dominated then acc else c :: acc)
    common []
  |> List.rev

let pp ppf g =
  for a = 0 to g.n - 1 do
    match g.succ.(a) with
    | [] -> ()
    | succs ->
        Format.fprintf ppf "%d -> %a@ " a
          (Format.pp_print_list
             ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
             Format.pp_print_int)
          succs
  done
