(** The auto engine's tier-1 devices, and the streaming race pipeline.

    This layer owns the approximation devices of [lib/approx] and wires
    them into the exact machinery as the first tier of the [auto]
    engine's triage ladder:

    - {!attach} installs a {!Session.oracle} on a session, so the
      session's per-pair primitives ([exists_before], [must_before],
      [exists_race], [feasible_exists]) answer from polynomial one-sided
      deciders whenever they can, escalating to reachability, SAT and
      bounded enumeration only for the undecided survivors;
    - {!race_oracle} is the same tier for the race layer, which decides
      candidate pairs on {e modified} skeletons (the pair's dependence
      edges dropped) that no session owns;
    - {!races_big} runs the tier-1 race analysis directly over a
      columnar {!Bigtrace.t} — the streaming million-event path, linear
      in the trace, every positive replay-certified.

    Soundness inventory (each device only ever answers in its sound
    direction; everything else is [None] = escalate):

    - the forced-edge order clock ({!Order_clock}): [ordered a b] holds
      in {e every} feasible schedule — proves MHB, refutes the existence
      of a schedule with [b] before [a], refutes races;
    - EGP guaranteed orderings ({!Egp.guaranteed_before}), same
      direction, consulted at small [n];
    - the observed schedule, replay-certified feasible: an actual member
      of [F(P)] — proves [exists_before] for every pair it orders,
      refutes [must_before] for every pair it anti-orders, and anchors
      the prefix-enabledness race certificate (both back-to-back orders
      of the pair replayed to completion). *)

val attach : Session.t -> unit
(** Installs the tier-1 oracle on the session (idempotent; no effect if
    one is already attached).  All devices are built lazily on first
    query, against the session's own skeleton. *)

val race_oracle : Execution.t -> Skeleton.t -> int -> int -> bool option
(** [race_oracle x] precomputes the per-execution devices (a
    po+sync-only order clock — sound for every dep-modified skeleton —
    and the replay-certified observed schedule); the returned closure
    decides one candidate pair on its modified skeleton: [Some false]
    when the clock forces an order, [Some true] when the pair is
    prefix-enabled and both back-to-back orders replay on the modified
    skeleton, [None] otherwise. *)

(** {1 The streaming million-event race pipeline} *)

type stream_relation = S_mhb | S_chb
(** The two per-pair orderings the streaming path can answer:
    must-happen-before and could-happen-before. *)

type stream_answer = {
  q_rel : stream_relation;
  q_a : int;
  q_b : int;
  q_verdict : bool option;
      (** [None]: tier 1 cannot decide — surfaced, never guessed (the
          streaming path has no higher tier to escalate to) *)
}

type big_report = {
  events : int;
  candidates : int;  (** conflicting cross-process computation pairs *)
  truncated : bool;  (** candidate cap or budget hit — a partial answer *)
  observed_feasible : bool;  (** did the observed schedule replay? *)
  races : (int * int * int list) list;
      (** certified races, [(earlier id, later id, variables)], sorted *)
  refuted : int;  (** candidates refuted by the order clock *)
  certified : int;  (** candidates proved and replay-certified *)
  undecided : int;
      (** candidates tier 1 could not decide — surfaced, never dropped
          silently (the big path has no higher tier to escalate to) *)
  answers : stream_answer list;
      (** one answer per element of [queries], in request order *)
}

val races_big :
  ?stats:Counters.t ->
  ?budget:Budget.t ->
  ?max_candidates:int ->
  ?jobs:int ->
  ?queries:(stream_relation * int * int) list ->
  Bigtrace.t ->
  big_report
(** All races over a columnar trace by tier-1 devices only: candidate
    scan, forced-edge clock refutation, prefix-enabledness proof,
    replay certification of both orders — every stage linear in the
    trace.  Decided candidates bump [triage_tier_hits_approx];
    undecided ones bump [triage_escalations].  Budget expiry stops the
    scan and marks the report truncated (a sound under-report, in the
    could-have direction).

    Under a relaxing memory model ({!Memmodel.current}) only the
    model-enforced program-order edges feed the forced-order clock —
    the sound direction (fewer refutations, certification unaffected);
    under [sc] the path is the legacy one, bit for bit.

    [jobs] shards the candidate scan across worker domains in
    contiguous chunks merged in chunk order, so counter totals and the
    report are identical across job counts (modulo budget expiry, which
    is wall-clock-dependent in either mode).

    [queries] asks streaming per-pair relation questions answered by
    the same tier-1 devices (event ids are observed-schedule
    positions): must-before holds when the clock forces the order and
    fails when the replay-certified observed schedule anti-orders the
    pair; could-before symmetrically.  Each decided query bumps
    [triage_tier_hits_approx], each undecided one
    [triage_escalations]. *)
