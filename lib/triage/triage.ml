(* Tier-1 wiring for the auto engine.  See triage.mli. *)

(* EGP graph construction is quadratic-ish; past this size the order
   clock is the only forced-ordering device consulted. *)
let egp_cap = 256

(* The observed schedule, if the execution's temporal order is total and
   the schedule replays — the feasibility witness every tier-1 positive
   rests on. *)
let observed_of sk =
  match Execution.schedule_of_temporal sk.Skeleton.execution with
  | exception Invalid_argument _ -> None
  | s -> ( match Replay.check sk s with Replay.Feasible -> Some s | _ -> None)

let positions schedule =
  let pos = Array.make (Array.length schedule) 0 in
  Array.iteri (fun i e -> pos.(e) <- i) schedule;
  pos

(* The observed schedule with [hi] hoisted to run back-to-back with
   [lo] — after it ([hi_first = false]) or before it ([hi_first =
   true]).  The two reorderings whose joint replay is the race
   certificate. *)
let hoist observed ~lo ~hi ~hi_first =
  let out = Array.make (Array.length observed) 0 in
  let j = ref 0 in
  let push e =
    out.(!j) <- e;
    incr j
  in
  Array.iter
    (fun e ->
      if e = hi then ()
      else if e = lo then
        if hi_first then (
          push hi;
          push lo)
        else (
          push lo;
          push hi)
      else push e)
    observed;
  out

let replays sk schedule =
  match Replay.check sk schedule with Replay.Feasible -> true | _ -> false

(* Prefix-enabledness: every program-order and dependence predecessor of
   [hi] runs strictly before [lo] in the observed schedule, so at the
   observed prefix just before [lo] both pair events are ready. *)
let prefix_enabled ~po_preds ~dep_preds ~pos ~lo ~hi =
  let before p = pos.(p) < pos.(lo) in
  List.for_all before po_preds.(hi) && List.for_all before dep_preds.(hi)

(* Both back-to-back orders of the pair, from the state the observed
   prefix reaches, replayed to completion: exactly the
   [Reach.exists_race] condition, certified operationally. *)
let certify_pair sk observed pos a b =
  let lo, hi = if pos.(a) < pos.(b) then (a, b) else (b, a) in
  prefix_enabled ~po_preds:sk.Skeleton.po_preds ~dep_preds:sk.Skeleton.dep_preds
    ~pos ~lo ~hi
  && replays sk (hoist observed ~lo ~hi ~hi_first:false)
  && replays sk (hoist observed ~lo ~hi ~hi_first:true)

let attach session =
  if Session.has_oracle session then ()
  else begin
    let sk = Session.skeleton session in
    let x = Session.execution session in
    let observed = lazy (observed_of sk) in
    let pos = lazy (Option.map positions (Lazy.force observed)) in
    let clock = lazy (Order_clock.of_skeleton ~with_deps:true sk) in
    let egp =
      (* The task-graph device reads the raw program order, so its
         guarantees only hold when every program-order edge is enforced
         — gate it to the SC model.  The order clock is built from the
         model-filtered skeleton and stays sound under relaxations. *)
      lazy
        (if sk.Skeleton.n > egp_cap || Memmodel.relaxes (Memmodel.current ())
         then None
         else match Egp.build x with e -> Some e | exception _ -> None)
    in
    (* [a] provably precedes [b] in every feasible schedule. *)
    let forced a b =
      (match Lazy.force clock with
      | Some c -> Order_clock.ordered c a b
      | None -> false)
      ||
      match Lazy.force egp with
      | Some e -> Egp.guaranteed_before e a b
      | None -> false
    in
    let obs_pos () = Lazy.force pos in
    let o_feasible () =
      match Lazy.force observed with Some _ -> Some true | None -> None
    in
    let o_exists_before a b =
      if a = b then Some false
      else if forced b a then Some false
      else
        match obs_pos () with
        | Some p when p.(a) < p.(b) -> Some true
        | _ -> None
    in
    let o_must_before a b =
      if a = b then Some false
      else
        match obs_pos () with
        | Some _ when forced a b -> Some true
        | Some p when p.(b) < p.(a) -> Some false
        | _ -> None
    in
    let o_race a b =
      if a = b then Some false
      else if forced a b || forced b a then Some false
      else
        match (Lazy.force observed, obs_pos ()) with
        | Some s, Some p when certify_pair sk s p a b -> Some true
        | _ -> None
    in
    Session.set_oracle session
      { Session.o_feasible; o_exists_before; o_must_before; o_race }
  end

(* ------------------------------------------------------------------ *)
(* The race layer's tier: candidate pairs are decided on modified
   skeletons (the pair's dependence edges dropped), so the forced-order
   device must not lean on any dependence edge — a po+sync-only clock is
   sound for every such modification.  The per-execution devices are
   built once; only the replays run against the pair's own skeleton. *)

let race_oracle x =
  (* Built eagerly: the closure is shared across the race layer's worker
     domains, where a lazy thunk could be forced concurrently. *)
  let sk0 = Skeleton.of_execution x in
  let clock = Order_clock.of_skeleton ~with_deps:false sk0 in
  let observed = observed_of sk0 in
  let pos = Option.map positions observed in
  fun sk a b ->
    if a = b then Some false
    else
      let forced u v =
        match clock with
        | Some c -> Order_clock.ordered c u v
        | None -> false
      in
      if forced a b || forced b a then Some false
      else
        match (observed, pos) with
        | Some s, Some p when certify_pair sk s p a b -> Some true
        | _ -> None

(* ------------------------------------------------------------------ *)
(* The streaming pipeline. *)

type stream_relation = S_mhb | S_chb

type stream_answer = {
  q_rel : stream_relation;
  q_a : int;
  q_b : int;
  q_verdict : bool option;
}

type big_report = {
  events : int;
  candidates : int;
  truncated : bool;
  observed_feasible : bool;
  races : (int * int * int list) list;
  refuted : int;
  certified : int;
  undecided : int;
  answers : stream_answer list;
}

let races_big ?(stats = Counters.null) ?(budget = Budget.unlimited)
    ?(max_candidates = max_int) ?(jobs = 1) ?(queries = []) (t : Bigtrace.t) =
  Counters.time stats Counters.T_total @@ fun () ->
  let events = Bigtrace.n_events t in
  let observed_feasible = Bigtrace.observed_replays t in
  let model = Memmodel.current () in
  let po_preds =
    (* Under a relaxing model only the enforced program-order edges are
       forced orderings, so only those feed the clock — fewer edges is
       the sound direction (the clock refutes less and certification
       picks up the slack).  [Sc] keeps the raw lists: the legacy path,
       bit for bit. *)
    if Memmodel.relaxes model then fun e ->
      List.filter
        (fun p ->
          Memmodel.enforced model t.Bigtrace.events.(p) t.Bigtrace.events.(e))
        t.Bigtrace.po_preds.(e)
    else fun e -> t.Bigtrace.po_preds.(e)
  in
  let clock =
    Order_clock.build
      ~pids:(Array.map (fun e -> e.Event.pid) t.Bigtrace.events)
      ~kinds:(Array.map (fun e -> e.Event.kind) t.Bigtrace.events)
      ~po_preds ~sem_init:t.Bigtrace.sem_init
      ~sem_binary:t.Bigtrace.sem_binary ~ev_init:t.Bigtrace.ev_init ()
  in
  let ordered u v =
    match clock with Some c -> Order_clock.ordered c u v | None -> false
  in
  (* Streaming relation queries, answered by the same tier-1 devices.
     Event ids are observed-schedule positions by construction, so the
     observed witness is the id order itself.  One-sided as everywhere
     in tier 1: [None] means the streaming path cannot decide (there is
     no higher tier at this scale — surfaced, never guessed). *)
  let answer (q_rel, q_a, q_b) =
    let q_verdict =
      if q_a = q_b then Some false
      else
        match q_rel with
        | S_mhb ->
            if ordered q_a q_b then Some true
            else if observed_feasible && q_b < q_a then Some false
            else None
        | S_chb ->
            if ordered q_b q_a then Some false
            else if observed_feasible && q_a < q_b then Some true
            else None
    in
    (match q_verdict with
    | Some _ -> Counters.bump stats Counters.Triage_approx_hits
    | None -> Counters.bump stats Counters.Triage_escalations);
    { q_rel; q_a; q_b; q_verdict }
  in
  let answers = List.map answer queries in
  let pairs, capped = Bigtrace.conflicting_pairs ~max_candidates t in
  let pairs = Array.of_list pairs in
  let n_pairs = Array.length pairs in
  (* Candidate triage shards across worker domains: contiguous chunks,
     one per worker, merged in chunk order — per-candidate counter
     bumps land in per-chunk counters first, so totals are bit-identical
     across job counts (each candidate contributes the same bumps
     wherever it runs). *)
  let jobs = max 1 (min jobs (max 1 n_pairs)) in
  let run_chunk (lo, hi) =
    let c = if Counters.enabled stats then Counters.create () else Counters.null in
    let refuted = ref 0 and certified = ref 0 and undecided = ref 0 in
    let races = ref [] in
    let hit = ref false in
    (try
       for i = lo to hi - 1 do
         if Budget.poll_node budget then raise Budget.Expired;
         let a, b, vars = pairs.(i) in
         if ordered a b || ordered b a then begin
           incr refuted;
           Counters.bump c Counters.Triage_approx_hits
         end
         else if
           observed_feasible
           && Bigtrace.po_pred_max t b < a
           && Bigtrace.dep_pred_max_excluding t ~event:b ~excluding:a < a
           && Bigtrace.certify_swap t a b
         then begin
           incr certified;
           Counters.bump c Counters.Triage_approx_hits;
           races := (a, b, vars) :: !races
         end
         else begin
           incr undecided;
           Counters.bump c Counters.Triage_escalations
         end
       done
     with Budget.Expired -> hit := true);
    (c, List.rev !races, !refuted, !certified, !undecided, !hit)
  in
  let chunks =
    Array.init jobs (fun k ->
        (k * n_pairs / jobs, (k + 1) * n_pairs / jobs))
  in
  let results = Parallel.map ~jobs run_chunk chunks in
  let refuted = ref 0 and certified = ref 0 and undecided = ref 0 in
  let races = ref [] in
  let budget_hit = ref false in
  Array.iter
    (fun (c, rs, r, ce, u, hit) ->
      Counters.merge_into ~dst:stats c;
      races := List.rev_append rs !races;
      refuted := !refuted + r;
      certified := !certified + ce;
      undecided := !undecided + u;
      budget_hit := !budget_hit || hit)
    results;
  {
    events;
    candidates = n_pairs;
    truncated = capped || !budget_hit;
    observed_feasible;
    races = List.rev !races;
    refuted = !refuted;
    certified = !certified;
    undecided = !undecided;
    answers;
  }
