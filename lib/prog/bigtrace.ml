(* Columnar traces for the streaming million-event path.  See
   bigtrace.mli. *)

type t = {
  events : Event.t array;
  po_preds : int list array;
  dep_m1 : int array;
  dep_m2 : int array;
  outcome : Trace.outcome;
  violations : int list;
  var_names : string array;
  sem_names : string array;
  ev_names : string array;
  sem_init : int array;
  sem_binary : bool array;
  ev_init : bool array;
  final_store : (string * int) list;
  process_names : (int * string) list;
}

let n_events t = Array.length t.events

(* ------------------------------------------------------------------ *)
(* Dependence maxima                                                   *)
(* ------------------------------------------------------------------ *)

(* Per event, the two largest distinct shared-data dependence
   predecessors ([-1] when absent) — all the prefix-enabledness test
   needs, without materialising the dependence lists (which are
   quadratic per hot variable; see Dependence.of_schedule).  Computed
   in one id-order pass keeping, per variable, its last two writers and
   last two touchers: the overall top-two predecessors of an event are
   always among its variables' per-variable top-two. *)
let dep_maxima ~num_vars events =
  let n = Array.length events in
  let m1 = Array.make n (-1) in
  let m2 = Array.make n (-1) in
  let w1 = Array.make num_vars (-1) in
  let w2 = Array.make num_vars (-1) in
  let t1 = Array.make num_vars (-1) in
  let t2 = Array.make num_vars (-1) in
  let consider e c =
    if c >= 0 && c <> m1.(e) then
      if c > m1.(e) then begin
        m2.(e) <- m1.(e);
        m1.(e) <- c
      end
      else if c > m2.(e) then m2.(e) <- c
  in
  let push_toucher v e =
    if t1.(v) <> e then begin
      t2.(v) <- t1.(v);
      t1.(v) <- e
    end
  in
  Array.iteri
    (fun e ev ->
      (* A read depends on earlier writers; a write on earlier touchers. *)
      List.iter
        (fun v ->
          if v >= 0 && v < num_vars then begin
            consider e w1.(v);
            consider e w2.(v)
          end)
        ev.Event.reads;
      List.iter
        (fun v ->
          if v >= 0 && v < num_vars then begin
            consider e t1.(v);
            consider e t2.(v)
          end)
        ev.Event.writes;
      List.iter
        (fun v -> if v >= 0 && v < num_vars then push_toucher v e)
        ev.Event.reads;
      List.iter
        (fun v ->
          if v >= 0 && v < num_vars then begin
            push_toucher v e;
            if w1.(v) <> e then begin
              w2.(v) <- w1.(v);
              w1.(v) <- e
            end
          end)
        ev.Event.writes)
    events;
  (m1, m2)

let dep_pred_max_excluding t ~event ~excluding =
  if t.dep_m1.(event) = excluding then t.dep_m2.(event) else t.dep_m1.(event)

let po_pred_max t e = List.fold_left max (-1) t.po_preds.(e)

(* ------------------------------------------------------------------ *)
(* Conversions                                                         *)
(* ------------------------------------------------------------------ *)

let finish_of_parts ~events ~po_edges ~outcome ~violations ~var_names
    ~sem_names ~ev_names ~sem_init ~sem_binary ~ev_init ~final_store
    ~process_names =
  let n = Array.length events in
  let po_preds = Array.make n [] in
  List.iter
    (fun (a, b) ->
      if a < 0 || a >= n || b < 0 || b >= n then
        failwith "po edge out of range";
      po_preds.(b) <- a :: po_preds.(b))
    po_edges;
  let dep_m1, dep_m2 = dep_maxima ~num_vars:(Array.length var_names) events in
  {
    events;
    po_preds;
    dep_m1;
    dep_m2;
    outcome;
    violations;
    var_names;
    sem_names;
    ev_names;
    sem_init;
    sem_binary;
    ev_init;
    final_store;
    process_names;
  }

let make ~events ~po_edges ~outcome ~violations ~var_names ~sem_names
    ~ev_names ~sem_init ~sem_binary ~ev_init ~final_store ~process_names =
  finish_of_parts ~events ~po_edges ~outcome ~violations ~var_names ~sem_names
    ~ev_names ~sem_init ~sem_binary ~ev_init ~final_store ~process_names

let of_trace (tr : Trace.t) =
  let po_edges = ref [] in
  Rel.iter (fun a b -> po_edges := (a, b) :: !po_edges) tr.Trace.program_order;
  finish_of_parts ~events:tr.Trace.events ~po_edges:!po_edges
    ~outcome:tr.Trace.outcome ~violations:tr.Trace.violations
    ~var_names:tr.Trace.var_names ~sem_names:tr.Trace.sem_names
    ~ev_names:tr.Trace.ev_names ~sem_init:tr.Trace.sem_init
    ~sem_binary:tr.Trace.sem_binary ~ev_init:tr.Trace.ev_init
    ~final_store:tr.Trace.final_store ~process_names:tr.Trace.process_names

let to_trace t =
  let n = n_events t in
  let pairs = ref [] in
  Array.iteri
    (fun b preds -> List.iter (fun a -> pairs := (a, b) :: !pairs) preds)
    t.po_preds;
  {
    Trace.events = t.events;
    program_order = Rel.of_pairs n !pairs;
    outcome = t.outcome;
    violations = t.violations;
    var_names = t.var_names;
    sem_names = t.sem_names;
    ev_names = t.ev_names;
    sem_init = t.sem_init;
    sem_binary = t.sem_binary;
    ev_init = t.ev_init;
    final_store = t.final_store;
    process_names = t.process_names;
  }

(* ------------------------------------------------------------------ *)
(* Streaming I/O                                                       *)
(* ------------------------------------------------------------------ *)

let read path =
  let outcome = ref None in
  let var_names = ref [||] in
  let sem_names = ref [||] in
  let sem_binary = ref [||] in
  let ev_names = ref [||] in
  let sem_init = ref [||] in
  let ev_init = ref [||] in
  let processes = ref [] in
  let events = ref [] in
  let po_edges = ref [] in
  let violations = ref [] in
  let final = ref [] in
  let saw_header = ref false in
  Trace_io.fold_lines path
    (fun () ~lineno line ->
      match Trace_io.parse_line ~lineno line with
      | Trace_io.D_blank -> ()
      | Trace_io.D_header -> saw_header := true
      | Trace_io.D_outcome o -> outcome := Some o
      | Trace_io.D_vars names -> var_names := names
      | Trace_io.D_sems (names, binary) ->
          sem_names := names;
          sem_binary := binary
      | Trace_io.D_events names -> ev_names := names
      | Trace_io.D_sem_init values -> sem_init := values
      | Trace_io.D_ev_init values -> ev_init := values
      | Trace_io.D_process (pid, name) ->
          processes := (pid, name) :: !processes
      | Trace_io.D_event e -> events := e :: !events
      | Trace_io.D_po (a, b) -> po_edges := (a, b) :: !po_edges
      | Trace_io.D_violation e -> violations := e :: !violations
      | Trace_io.D_final (x, v) -> final := (x, v) :: !final)
    ();
  if not !saw_header then failwith "missing 'eotrace 1' header";
  let events =
    List.sort (fun a b -> compare a.Event.id b.Event.id) !events
    |> Array.of_list
  in
  Array.iteri
    (fun i e ->
      if e.Event.id <> i then failwith "event ids are not dense from 0")
    events;
  if Array.length !sem_binary <> Array.length !sem_names then
    sem_binary := Array.make (Array.length !sem_names) false;
  finish_of_parts ~events ~po_edges:!po_edges
    ~outcome:
      (match !outcome with
      | Some o -> o
      | None -> failwith "missing outcome line")
    ~violations:(List.rev !violations) ~var_names:!var_names
    ~sem_names:!sem_names ~ev_names:!ev_names ~sem_init:!sem_init
    ~sem_binary:!sem_binary ~ev_init:!ev_init
    ~final_store:(List.rev !final) ~process_names:(List.rev !processes)

let save path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      let line fmt = Printf.ksprintf (fun s -> output_string oc (s ^ "\n")) fmt in
      line "eotrace 1";
      (match t.outcome with
      | Trace.Completed -> line "outcome completed"
      | Trace.Fuel_exhausted -> line "outcome fuel_exhausted"
      | Trace.Deadlocked pids ->
          line "outcome deadlocked %s"
            (String.concat " " (List.map string_of_int pids)));
      line "vars %s" (String.concat " " (Array.to_list t.var_names));
      line "sems %s"
        (String.concat " "
           (List.mapi
              (fun i name -> if t.sem_binary.(i) then name ^ "*" else name)
              (Array.to_list t.sem_names)));
      line "events %s" (String.concat " " (Array.to_list t.ev_names));
      line "sem_init %s"
        (String.concat " " (List.map string_of_int (Array.to_list t.sem_init)));
      line "ev_init %s"
        (String.concat " "
           (List.map (fun v -> if v then "1" else "0")
              (Array.to_list t.ev_init)));
      List.iter (fun (pid, name) -> line "process %d %s" pid name)
        t.process_names;
      Array.iter
        (fun e ->
          line "event %d %d %d %s %s reads %s writes %s" e.Event.id e.Event.pid
            e.Event.seq
            (String.concat " " (Trace_io.kind_tokens e.Event.kind))
            (Trace_io.quote e.Event.label)
            (String.concat " " (List.map string_of_int e.Event.reads))
            (String.concat " " (List.map string_of_int e.Event.writes)))
        t.events;
      Array.iteri
        (fun b preds ->
          List.iter (fun a -> line "po %d %d" a b) (List.rev preds))
        t.po_preds;
      List.iter (fun e -> line "violation %d" e) t.violations;
      List.iter (fun (x, v) -> line "final %s %d" x v) t.final_store)

(* ------------------------------------------------------------------ *)
(* Race candidates                                                     *)
(* ------------------------------------------------------------------ *)

exception Cap_hit

let conflicting_pairs ?(max_candidates = max_int) t =
  let num_vars = Array.length t.var_names in
  let pairs : (int * int, int list ref) Hashtbl.t = Hashtbl.create 256 in
  let count = ref 0 in
  let truncated = ref false in
  let add a b v =
    let key = if a < b then (a, b) else (b, a) in
    match Hashtbl.find_opt pairs key with
    | Some vars -> vars := v :: !vars
    | None ->
        if !count >= max_candidates then begin
          truncated := true;
          raise Cap_hit
        end;
        incr count;
        Hashtbl.add pairs key (ref [ v ])
  in
  (* Per variable, computation touches seen so far (id order). *)
  let writers = Array.make num_vars [] in
  let readers = Array.make num_vars [] in
  (try
     Array.iteri
       (fun e ev ->
         if Event.is_computation ev then begin
           let pid = ev.Event.pid in
           List.iter
             (fun v ->
               if v >= 0 && v < num_vars then
                 List.iter
                   (fun (w, wpid) -> if wpid <> pid then add w e v)
                   writers.(v))
             ev.Event.reads;
           List.iter
             (fun v ->
               if v >= 0 && v < num_vars then begin
                 List.iter
                   (fun (w, wpid) -> if wpid <> pid then add w e v)
                   writers.(v);
                 List.iter
                   (fun (r, rpid) -> if rpid <> pid then add r e v)
                   readers.(v)
               end)
             ev.Event.writes;
           List.iter
             (fun v ->
               if v >= 0 && v < num_vars then
                 readers.(v) <- (e, pid) :: readers.(v))
             ev.Event.reads;
           List.iter
             (fun v ->
               if v >= 0 && v < num_vars then
                 writers.(v) <- (e, pid) :: writers.(v))
             ev.Event.writes
         end)
       t.events
   with Cap_hit -> ());
  let out =
    Hashtbl.fold
      (fun (a, b) vars acc ->
        (a, b, List.sort_uniq compare !vars) :: acc)
      pairs []
  in
  (List.sort compare out, !truncated)

(* ------------------------------------------------------------------ *)
(* Replay certification                                                *)
(* ------------------------------------------------------------------ *)

exception Blocked

let sync_step t sem ev e =
  match t.events.(e).Event.kind with
  | Event.Computation | Event.Sync (Event.Fork | Event.Join) -> ()
  | Event.Sync (Event.Sem_p s) ->
      if sem.(s) <= 0 then raise Blocked;
      sem.(s) <- sem.(s) - 1
  | Event.Sync (Event.Sem_v s) ->
      if t.sem_binary.(s) then sem.(s) <- 1 else sem.(s) <- sem.(s) + 1
  | Event.Sync (Event.Post v) -> ev.(v) <- true
  | Event.Sync (Event.Wait v) -> if not ev.(v) then raise Blocked
  | Event.Sync (Event.Clear v) -> ev.(v) <- false

let observed_replays t =
  let sem = Array.copy t.sem_init in
  let ev = Array.copy t.ev_init in
  let n = n_events t in
  (* Precedence is forward by construction (ids are in observed order
     and [finish_of_parts] builds dependence maxima the same way), so
     the synchronization state is the only thing left to check. *)
  try
    let ok = ref true in
    for b = 0 to n - 1 do
      ok := !ok && po_pred_max t b < b
    done;
    for e = 0 to n - 1 do
      sync_step t sem ev e
    done;
    !ok
  with Blocked -> false

let certify_swap t a b =
  (* Replay the observed schedule with [b] hoisted to run back-to-back
     with [a], in the order [b; a]: prefix unchanged, then [b], then
     [a], then the rest in observed order.  Both pair events are
     computations, so only synchronization enabledness can differ — and
     it cannot, but this runs the actual certificate schedule rather
     than trusting the argument. *)
  let n = n_events t in
  if a < 0 || b < 0 || a >= n || b >= n || a = b then false
  else
    let lo, hi = if a < b then (a, b) else (b, a) in
    let sem = Array.copy t.sem_init in
    let ev = Array.copy t.ev_init in
    try
      for e = 0 to lo - 1 do
        sync_step t sem ev e
      done;
      sync_step t sem ev hi;
      sync_step t sem ev lo;
      for e = lo + 1 to n - 1 do
        if e <> hi then sync_step t sem ev e
      done;
      true
    with Blocked -> false
