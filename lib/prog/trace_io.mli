(** Plain-text serialization of traces.

    Lets an observed execution be recorded once and re-analysed later (or
    shipped in a bug report) without re-running the program.  The format is
    line-based and versioned:

    {v
    eotrace 1
    outcome completed
    vars x y
    sems s            # names; binary semaphores marked with a trailing *
    events e          # event-variable names
    sem_init 0
    ev_init 0
    process 0 main
    event 0 0 0 computation "x := 1" reads 1 writes 0
    event 1 0 1 sem_v 0 "V(s)"
    po 0 1
    final x 1
    v}

    Unknown directives are rejected, not skipped: the format is a contract,
    not a suggestion. *)

val to_string : Trace.t -> string

val of_string : string -> Trace.t
(** Raises [Failure] with a line-number message on malformed input. *)

val save : string -> Trace.t -> unit
(** [save path trace] writes the trace to a file. *)

val load : string -> Trace.t
(** Reads the file {e line by line} (peak memory: one line plus the
    accumulated trace, never the whole file as one string), with the
    exact same error/line-number contract as {!of_string}. *)

(** {1 Streaming parser core}

    The building blocks [load] is made of, exposed so other readers of
    the same format — notably [Bigtrace.read], which assembles a
    columnar representation instead of a {!Trace.t} — parse each line
    identically (same tokenizer, same diagnostics) without duplicating
    the grammar. *)

type directive =
  | D_blank  (** empty or comment-only line *)
  | D_header  (** [eotrace 1] *)
  | D_outcome of Trace.outcome
  | D_vars of string array
  | D_sems of string array * bool array  (** names, binary flags *)
  | D_events of string array  (** event-variable names *)
  | D_sem_init of int array
  | D_ev_init of bool array
  | D_process of int * string
  | D_event of Event.t
  | D_po of int * int
  | D_violation of int
  | D_final of string * int

val parse_line : lineno:int -> string -> directive
(** Parses one raw line (comment stripping and quote-aware tokenizing
    included).  Raises [Failure] with a ["line %d: ..."] message on
    malformed input — the shared diagnostic contract. *)

val fold_lines : string -> ('a -> lineno:int -> string -> 'a) -> 'a -> 'a
(** [fold_lines path f init] folds [f] over the file's lines (1-based
    line numbers) without ever materialising the whole file. *)

val quote : string -> string
(** The format's string quoting, shared with the streaming writer. *)

val kind_tokens : Event.kind -> string list
(** The event-kind token spelling, shared with the streaming writer. *)
