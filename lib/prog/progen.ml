type config = {
  processes : int * int;
  stmts_per_process : int * int;
  shared_vars : int;
  semaphores : int;
  binary_semaphores : bool;
  event_variables : int;
}

let default_config =
  {
    processes = (2, 3);
    stmts_per_process = (1, 3);
    shared_vars = 2;
    semaphores = 1;
    binary_semaphores = false;
    event_variables = 1;
  }

let in_range rng (lo, hi) =
  if hi < lo then invalid_arg "Progen: empty range";
  lo + Random.State.int rng (hi - lo + 1)

let pick rng xs = List.nth xs (Random.State.int rng (List.length xs))

let gen_stmt cfg rng =
  let var i = Printf.sprintf "x%d" i in
  let any_var () = var (Random.State.int rng (max 1 cfg.shared_vars)) in
  let sem () = Printf.sprintf "s%d" (Random.State.int rng (max 1 cfg.semaphores)) in
  let ev () = Printf.sprintf "e%d" (Random.State.int rng (max 1 cfg.event_variables)) in
  let choices =
    List.concat
      [
        (if cfg.shared_vars > 0 then
           [
             (fun () -> Ast.Assign (any_var (), Expr.Int (Random.State.int rng 5)));
             (fun () ->
               Ast.Assign (any_var (), Expr.Add (Expr.Var (any_var ()), Expr.Int 1)));
             (fun () -> Ast.Skip None);
           ]
         else [ (fun () -> Ast.Skip None) ]);
        (if cfg.semaphores > 0 then
           [ (fun () -> Ast.Sem_p (sem ())); (fun () -> Ast.Sem_v (sem ())) ]
         else []);
        (if cfg.event_variables > 0 then
           [
             (fun () -> Ast.Post (ev ()));
             (fun () -> Ast.Wait (ev ()));
             (fun () -> Ast.Clear (ev ()));
           ]
         else []);
      ]
  in
  (pick rng choices) ()

let generate cfg ~seed =
  let rng = Random.State.make [| seed |] in
  let n_procs = in_range rng cfg.processes in
  let procs =
    List.init n_procs (fun i ->
        let n_stmts = in_range rng cfg.stmts_per_process in
        Ast.proc
          (Printf.sprintf "p%d" i)
          (List.init n_stmts (fun _ -> gen_stmt cfg rng)))
  in
  let sem_names = List.init cfg.semaphores (Printf.sprintf "s%d") in
  let sem_init =
    List.map (fun s -> (s, Random.State.int rng 2)) sem_names
  in
  let ev_init =
    List.init cfg.event_variables (fun i ->
        (Printf.sprintf "e%d" i, Random.State.bool rng))
  in
  Ast.program ~sem_init
    ~binary_sems:(if cfg.binary_semaphores then sem_names else [])
    ~ev_init procs

let generate_completing ?(max_attempts = 1000) cfg ~seed =
  let rec go attempt seed =
    if attempt >= max_attempts then
      failwith "Progen.generate_completing: too many deadlocking programs"
    else
      let t = Interp.run (generate cfg ~seed) in
      match t.Trace.outcome with
      | Trace.Completed -> t
      | _ -> go (attempt + 1) (seed + 1_000_003)
  in
  go 0 seed

(* ------------------------------------------------------------------ *)
(* Big-trace families                                                  *)
(* ------------------------------------------------------------------ *)

type big_family = Pc_mesh | Server_logs | Fork_join

let big_family_names = [ "pc_mesh"; "server_logs"; "fork_join" ]

let big_family_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "pc_mesh" -> Some Pc_mesh
  | "server_logs" -> Some Server_logs
  | "fork_join" -> Some Fork_join
  | _ -> None

let big_family_to_string = function
  | Pc_mesh -> "pc_mesh"
  | Server_logs -> "server_logs"
  | Fork_join -> "fork_join"

(* Shared emitter: events are appended in observed-schedule order (ids
   are the schedule), with automatic per-process program-order chaining
   and seq numbering.  Everything is a pure function of the family,
   size and seed. *)
type emitter = {
  mutable ev_rev : Event.t list;
  mutable count : int;
  mutable po_rev : (int * int) list;
  last : (int, int) Hashtbl.t;
  seqs : (int, int) Hashtbl.t;
  mutable vars_rev : string list;
  mutable nvars : int;
  mutable sems_rev : string list;
  mutable sem_init_rev : int list;
  mutable nsems : int;
  mutable evars_rev : string list;
  mutable ev_init_rev : bool list;
  mutable nevars : int;
  mutable procs_rev : (int * string) list;
  mutable npids : int;
}

let new_emitter () =
  {
    ev_rev = [];
    count = 0;
    po_rev = [];
    last = Hashtbl.create 32;
    seqs = Hashtbl.create 32;
    vars_rev = [];
    nvars = 0;
    sems_rev = [];
    sem_init_rev = [];
    nsems = 0;
    evars_rev = [];
    ev_init_rev = [];
    nevars = 0;
    procs_rev = [];
    npids = 0;
  }

let new_pid em name =
  let pid = em.npids in
  em.npids <- pid + 1;
  em.procs_rev <- (pid, name) :: em.procs_rev;
  pid

let new_var em =
  let v = em.nvars in
  em.nvars <- v + 1;
  em.vars_rev <- ("v" ^ string_of_int v) :: em.vars_rev;
  v

let new_sem em ~init =
  let s = em.nsems in
  em.nsems <- s + 1;
  em.sems_rev <- ("s" ^ string_of_int s) :: em.sems_rev;
  em.sem_init_rev <- init :: em.sem_init_rev;
  s

let new_evar em ~init =
  let v = em.nevars in
  em.nevars <- v + 1;
  em.evars_rev <- ("e" ^ string_of_int v) :: em.evars_rev;
  em.ev_init_rev <- init :: em.ev_init_rev;
  v

let emit ?(extra_po = []) ?(reads = []) ?(writes = []) em pid kind label =
  let id = em.count in
  em.count <- id + 1;
  let seq = match Hashtbl.find_opt em.seqs pid with Some s -> s | None -> 0 in
  Hashtbl.replace em.seqs pid (seq + 1);
  (match Hashtbl.find_opt em.last pid with
  | Some l -> em.po_rev <- (l, id) :: em.po_rev
  | None -> ());
  List.iter (fun p -> em.po_rev <- (p, id) :: em.po_rev) extra_po;
  Hashtbl.replace em.last pid id;
  em.ev_rev <-
    Event.make ~id ~pid ~seq ~kind ~label ~reads ~writes () :: em.ev_rev;
  id

let finish_emitter em =
  Bigtrace.make
    ~events:(Array.of_list (List.rev em.ev_rev))
    ~po_edges:em.po_rev ~outcome:Trace.Completed ~violations:[]
    ~var_names:(Array.of_list (List.rev em.vars_rev))
    ~sem_names:(Array.of_list (List.rev em.sems_rev))
    ~ev_names:(Array.of_list (List.rev em.evars_rev))
    ~sem_init:(Array.of_list (List.rev em.sem_init_rev))
    ~sem_binary:(Array.make em.nsems false)
    ~ev_init:(Array.of_list (List.rev em.ev_init_rev))
    ~final_store:[] ~process_names:(List.rev em.procs_rev)

(* Pad with independent single-writer events so the trace hits the
   requested event count exactly. *)
let pad em pid target =
  while em.count < target do
    let v = new_var em in
    ignore (emit em pid Event.Computation "pad" ~writes:[ v ])
  done

(* Producer/consumer mesh: per lane and round, a fresh variable handed
   over through a fresh 0-initialised semaphore with a single V — every
   handover pair is refutable by the forced-edge clock — plus, every
   [race_every] rounds, an unsynchronized write from both sides to a
   fresh round-local variable: a provable (prefix-enabled) race. *)
let pc_mesh ~events:target ~seed =
  let em = new_emitter () in
  let lanes = 4 in
  let prods = Array.init lanes (fun l -> new_pid em (Printf.sprintf "prod%d" l)) in
  let cons = Array.init lanes (fun l -> new_pid em (Printf.sprintf "cons%d" l)) in
  let rounds_est = max 1 (target / (4 * lanes)) in
  let race_every = max 1 (rounds_est / 12) in
  let rng = Random.State.make [| seed; 0x9c |] in
  let offset = Array.init lanes (fun _ -> Random.State.int rng race_every) in
  let r = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    let l = ref 0 in
    while !continue_ && !l < lanes do
      if em.count + 6 > target then continue_ := false
      else begin
        let v = new_var em in
        let s = new_sem em ~init:0 in
        ignore (emit em prods.(!l) Event.Computation "w" ~writes:[ v ]);
        ignore (emit em prods.(!l) (Event.Sync (Event.Sem_v s)) "V");
        ignore (emit em cons.(!l) (Event.Sync (Event.Sem_p s)) "P");
        ignore (emit em cons.(!l) Event.Computation "r" ~reads:[ v ]);
        if !r mod race_every = offset.(!l) && em.count + 2 <= target then begin
          let g = new_var em in
          ignore (emit em prods.(!l) Event.Computation "race" ~writes:[ g ]);
          ignore (emit em cons.(!l) Event.Computation "race" ~writes:[ g ])
        end;
        incr l
      end
    done;
    incr r
  done;
  pad em prods.(0) target;
  finish_emitter em

(* Worker/collector logs: each worker round publishes a fresh log
   variable through a fresh event variable (single Post, no Clear), the
   collector waits and reads; plus occasional unsynchronized both-sides
   writes — the provable races. *)
let server_logs ~events:target ~seed =
  let em = new_emitter () in
  let nworkers = 6 in
  let workers =
    Array.init nworkers (fun w -> new_pid em (Printf.sprintf "worker%d" w))
  in
  let collector = new_pid em "collector" in
  let rounds_est = max 1 (target / (4 * nworkers)) in
  let race_every = max 1 (rounds_est / 8) in
  let rng = Random.State.make [| seed; 0x1095 |] in
  let offset = Array.init nworkers (fun _ -> Random.State.int rng race_every) in
  let r = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    let w = ref 0 in
    while !continue_ && !w < nworkers do
      if em.count + 6 > target then continue_ := false
      else begin
        let lv = new_var em in
        let e = new_evar em ~init:false in
        ignore (emit em workers.(!w) Event.Computation "log" ~writes:[ lv ]);
        ignore (emit em workers.(!w) (Event.Sync (Event.Post e)) "post");
        ignore (emit em collector (Event.Sync (Event.Wait e)) "wait");
        ignore (emit em collector Event.Computation "scan" ~reads:[ lv ]);
        if !r mod race_every = offset.(!w) && em.count + 2 <= target then begin
          let g = new_var em in
          ignore (emit em workers.(!w) Event.Computation "race" ~writes:[ g ]);
          ignore (emit em collector Event.Computation "race" ~writes:[ g ])
        end;
        incr w
      end
    done;
    incr r
  done;
  pad em workers.(0) target;
  finish_emitter em

(* Fork/join tree: the root seeds per-child variables, forks the
   children (program-order edges fork -> first child event, last child
   event -> join), the children chain private writes with occasional
   sibling-pair races on fresh round-local variables, and the root
   reads every child's last variable after the join (refutable through
   the join edges). *)
let fork_join ~events:target ~seed =
  let em = new_emitter () in
  let nchildren = 8 in
  let root = new_pid em "root" in
  let children =
    Array.init nchildren (fun c -> new_pid em (Printf.sprintf "child%d" c))
  in
  let setup = Array.init nchildren (fun _ -> new_var em) in
  Array.iter
    (fun v -> ignore (emit em root Event.Computation "setup" ~writes:[ v ]))
    setup;
  let fork = emit em root (Event.Sync Event.Fork) "fork" in
  Array.iteri
    (fun c pid ->
      ignore
        (emit em pid Event.Computation "init" ~extra_po:[ fork ]
           ~reads:[ setup.(c) ]))
    children;
  let last_var = Array.make nchildren (-1) in
  (* root still needs: join + nchildren reads *)
  let reserve = 1 + nchildren in
  let rounds_est = max 1 ((target - em.count - reserve) / nchildren) in
  let race_every = max 2 (rounds_est / 6) in
  let rng = Random.State.make [| seed; 0xf07c |] in
  let offset = Random.State.int rng race_every in
  let r = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    let c = ref 0 in
    while !continue_ && !c < nchildren do
      if em.count + reserve + 1 > target then continue_ := false
      else begin
        (if !r mod race_every = offset && !c land 1 = 1 then begin
           (* sibling-pair race between child c-1 and child c *)
           let g = new_var em in
           if em.count + reserve + 2 <= target then begin
             ignore
               (emit em children.(!c - 1) Event.Computation "race"
                  ~writes:[ g ]);
             ignore
               (emit em children.(!c) Event.Computation "race" ~writes:[ g ])
           end
         end);
        let v = new_var em in
        last_var.(!c) <- v;
        ignore (emit em children.(!c) Event.Computation "work" ~writes:[ v ]);
        incr c
      end
    done;
    incr r
  done;
  let lasts =
    Array.to_list (Array.map (fun pid -> Hashtbl.find em.last pid) children)
  in
  ignore (emit em root (Event.Sync Event.Join) "join" ~extra_po:lasts);
  Array.iter
    (fun v ->
      if v >= 0 && em.count < target then
        ignore (emit em root Event.Computation "collect" ~reads:[ v ]))
    last_var;
  pad em root target;
  finish_emitter em

let big_trace ~family ~events ~seed =
  if events < 64 then invalid_arg "Progen.big_trace: events must be >= 64";
  match family with
  | Pc_mesh -> pc_mesh ~events ~seed
  | Server_logs -> server_logs ~events ~seed
  | Fork_join -> fork_join ~events ~seed
