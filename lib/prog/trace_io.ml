let quote s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let kind_tokens = function
  | Event.Computation -> [ "computation" ]
  | Event.Sync (Event.Sem_p s) -> [ "sem_p"; string_of_int s ]
  | Event.Sync (Event.Sem_v s) -> [ "sem_v"; string_of_int s ]
  | Event.Sync (Event.Post v) -> [ "post"; string_of_int v ]
  | Event.Sync (Event.Wait v) -> [ "wait"; string_of_int v ]
  | Event.Sync (Event.Clear v) -> [ "clear"; string_of_int v ]
  | Event.Sync Event.Fork -> [ "fork" ]
  | Event.Sync Event.Join -> [ "join" ]

let to_string (t : Trace.t) =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "eotrace 1";
  (match t.Trace.outcome with
  | Trace.Completed -> line "outcome completed"
  | Trace.Fuel_exhausted -> line "outcome fuel_exhausted"
  | Trace.Deadlocked pids ->
      line "outcome deadlocked %s"
        (String.concat " " (List.map string_of_int pids)));
  line "vars %s" (String.concat " " (Array.to_list t.Trace.var_names));
  line "sems %s"
    (String.concat " "
       (List.mapi
          (fun i name -> if t.Trace.sem_binary.(i) then name ^ "*" else name)
          (Array.to_list t.Trace.sem_names)));
  line "events %s" (String.concat " " (Array.to_list t.Trace.ev_names));
  line "sem_init %s"
    (String.concat " " (List.map string_of_int (Array.to_list t.Trace.sem_init)));
  line "ev_init %s"
    (String.concat " "
       (List.map (fun v -> if v then "1" else "0") (Array.to_list t.Trace.ev_init)));
  List.iter
    (fun (pid, name) -> line "process %d %s" pid name)
    t.Trace.process_names;
  Array.iter
    (fun e ->
      line "event %d %d %d %s %s reads %s writes %s" e.Event.id e.Event.pid
        e.Event.seq
        (String.concat " " (kind_tokens e.Event.kind))
        (quote e.Event.label)
        (String.concat " " (List.map string_of_int e.Event.reads))
        (String.concat " " (List.map string_of_int e.Event.writes)))
    t.Trace.events;
  Rel.iter (fun a b -> line "po %d %d" a b) t.Trace.program_order;
  List.iter (fun e -> line "violation %d" e) t.Trace.violations;
  List.iter (fun (x, v) -> line "final %s %d" x v) t.Trace.final_store;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

(* Splits a line into whitespace-separated tokens, treating a double-quoted
   section (with backslash escapes) as a single token. *)
let tokenize lineno line =
  let n = String.length line in
  let tokens = ref [] in
  let i = ref 0 in
  while !i < n do
    while !i < n && line.[!i] = ' ' do incr i done;
    if !i < n then
      if line.[!i] = '"' then begin
        incr i;
        let b = Buffer.create 16 in
        let closed = ref false in
        while !i < n && not !closed do
          (match line.[!i] with
          | '\\' when !i + 1 < n ->
              incr i;
              (match line.[!i] with
              | 'n' -> Buffer.add_char b '\n'
              | c -> Buffer.add_char b c)
          | '"' -> closed := true
          | c -> Buffer.add_char b c);
          incr i
        done;
        if not !closed then
          failwith (Printf.sprintf "line %d: unterminated string" lineno);
        tokens := Buffer.contents b :: !tokens
      end
      else begin
        let start = !i in
        while !i < n && line.[!i] <> ' ' do incr i done;
        tokens := String.sub line start (!i - start) :: !tokens
      end
  done;
  List.rev !tokens

let int_of lineno s =
  match int_of_string_opt s with
  | Some i -> i
  | None -> failwith (Printf.sprintf "line %d: expected integer, got %S" lineno s)

(* One parsed line of the eotrace format.  The streaming readers
   ([load] here and [Bigtrace.read]) consume directives one at a time
   and never hold the whole file in memory. *)
type directive =
  | D_blank
  | D_header
  | D_outcome of Trace.outcome
  | D_vars of string array
  | D_sems of string array * bool array
  | D_events of string array
  | D_sem_init of int array
  | D_ev_init of bool array
  | D_process of int * string
  | D_event of Event.t
  | D_po of int * int
  | D_violation of int
  | D_final of string * int

let parse_line ~lineno raw =
  let raw =
    match String.index_opt raw '#' with
    | Some i when not (String.contains raw '"') -> String.sub raw 0 i
    | _ -> raw
  in
  match tokenize lineno (String.trim raw) with
  | [] -> D_blank
  | "eotrace" :: version ->
      if version <> [ "1" ] then
        failwith (Printf.sprintf "line %d: unsupported version" lineno);
      D_header
  | "outcome" :: rest ->
      D_outcome
        (match rest with
        | [ "completed" ] -> Trace.Completed
        | [ "fuel_exhausted" ] -> Trace.Fuel_exhausted
        | "deadlocked" :: pids ->
            Trace.Deadlocked (List.map (int_of lineno) pids)
        | _ -> failwith (Printf.sprintf "line %d: bad outcome" lineno))
  | "vars" :: names -> D_vars (Array.of_list names)
  | "sems" :: names ->
      let stripped =
        List.map
          (fun n ->
            match String.length n with
            | 0 -> (n, false)
            | len when n.[len - 1] = '*' -> (String.sub n 0 (len - 1), true)
            | _ -> (n, false))
          names
      in
      D_sems
        ( Array.of_list (List.map fst stripped),
          Array.of_list (List.map snd stripped) )
  | "events" :: names -> D_events (Array.of_list names)
  | "sem_init" :: values ->
      D_sem_init (Array.of_list (List.map (int_of lineno) values))
  | "ev_init" :: values ->
      D_ev_init (Array.of_list (List.map (fun v -> v = "1") values))
  | [ "process"; pid; name ] -> D_process (int_of lineno pid, name)
  | "event" :: id :: pid :: seq :: rest ->
      let kind, rest =
        match rest with
        | "computation" :: r -> (Event.Computation, r)
        | "sem_p" :: s :: r -> (Event.Sync (Event.Sem_p (int_of lineno s)), r)
        | "sem_v" :: s :: r -> (Event.Sync (Event.Sem_v (int_of lineno s)), r)
        | "post" :: v :: r -> (Event.Sync (Event.Post (int_of lineno v)), r)
        | "wait" :: v :: r -> (Event.Sync (Event.Wait (int_of lineno v)), r)
        | "clear" :: v :: r -> (Event.Sync (Event.Clear (int_of lineno v)), r)
        | "fork" :: r -> (Event.Sync Event.Fork, r)
        | "join" :: r -> (Event.Sync Event.Join, r)
        | _ -> failwith (Printf.sprintf "line %d: bad event kind" lineno)
      in
      let label, rest =
        match rest with
        | label :: r -> (label, r)
        | [] -> failwith (Printf.sprintf "line %d: missing label" lineno)
      in
      let reads, writes =
        let rec split_rw acc = function
          | "writes" :: ws -> (List.rev acc, List.map (int_of lineno) ws)
          | r :: rest -> split_rw (int_of lineno r :: acc) rest
          | [] -> failwith (Printf.sprintf "line %d: missing writes" lineno)
        in
        match rest with
        | "reads" :: rest -> split_rw [] rest
        | _ -> failwith (Printf.sprintf "line %d: missing reads" lineno)
      in
      D_event
        (Event.make ~id:(int_of lineno id) ~pid:(int_of lineno pid)
           ~seq:(int_of lineno seq) ~kind ~label ~reads ~writes ())
  | [ "po"; a; b ] -> D_po (int_of lineno a, int_of lineno b)
  | [ "violation"; e ] -> D_violation (int_of lineno e)
  | [ "final"; x; v ] -> D_final (x, int_of lineno v)
  | tok :: _ ->
      failwith (Printf.sprintf "line %d: unknown directive %S" lineno tok)

(* Trace assembly state shared by [of_string] and the streaming [load]:
   feed directives in file order, then [finish]. *)
type builder = {
  mutable outcome : Trace.outcome option;
  mutable var_names : string array;
  mutable sem_names : string array;
  mutable sem_binary : bool array;
  mutable ev_names : string array;
  mutable sem_init : int array;
  mutable ev_init : bool array;
  mutable processes : (int * string) list;
  mutable events : Event.t list;
  mutable po_edges : (int * int) list;
  mutable violations : int list;
  mutable final : (string * int) list;
  mutable saw_header : bool;
}

let new_builder () =
  {
    outcome = None;
    var_names = [||];
    sem_names = [||];
    sem_binary = [||];
    ev_names = [||];
    sem_init = [||];
    ev_init = [||];
    processes = [];
    events = [];
    po_edges = [];
    violations = [];
    final = [];
    saw_header = false;
  }

let feed b = function
  | D_blank -> ()
  | D_header -> b.saw_header <- true
  | D_outcome o -> b.outcome <- Some o
  | D_vars names -> b.var_names <- names
  | D_sems (names, binary) ->
      b.sem_names <- names;
      b.sem_binary <- binary
  | D_events names -> b.ev_names <- names
  | D_sem_init values -> b.sem_init <- values
  | D_ev_init values -> b.ev_init <- values
  | D_process (pid, name) -> b.processes <- (pid, name) :: b.processes
  | D_event e -> b.events <- e :: b.events
  | D_po (x, y) -> b.po_edges <- (x, y) :: b.po_edges
  | D_violation e -> b.violations <- e :: b.violations
  | D_final (x, v) -> b.final <- (x, v) :: b.final

let finish b =
  if not b.saw_header then failwith "missing 'eotrace 1' header";
  let events =
    List.sort (fun a b -> compare a.Event.id b.Event.id) b.events
    |> Array.of_list
  in
  Array.iteri
    (fun i e ->
      if e.Event.id <> i then failwith "event ids are not dense from 0")
    events;
  let program_order = Rel.of_pairs (Array.length events) b.po_edges in
  let sem_binary =
    if Array.length b.sem_binary <> Array.length b.sem_names then
      Array.make (Array.length b.sem_names) false
    else b.sem_binary
  in
  {
    Trace.events;
    program_order;
    outcome =
      (match b.outcome with
      | Some o -> o
      | None -> failwith "missing outcome line");
    violations = List.rev b.violations;
    var_names = b.var_names;
    sem_names = b.sem_names;
    ev_names = b.ev_names;
    sem_init = b.sem_init;
    sem_binary;
    ev_init = b.ev_init;
    final_store = List.rev b.final;
    process_names = List.rev b.processes;
  }

let of_string text =
  let b = new_builder () in
  List.iteri
    (fun idx raw -> feed b (parse_line ~lineno:(idx + 1) raw))
    (String.split_on_char '\n' text);
  finish b

let save path t =
  let oc = open_out path in
  output_string oc (to_string t);
  close_out oc

(* Streams the file line by line: peak memory is one line plus the
   builder's accumulated events, never the whole file as one string —
   the difference between loading a 10^6-event trace and an OOM.  Error
   behaviour (messages, line numbers) is identical to [of_string]. *)
let fold_lines path f init =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc lineno =
        match In_channel.input_line ic with
        | None -> acc
        | Some line -> go (f acc ~lineno line) (lineno + 1)
      in
      go init 1)

let load path =
  let b = new_builder () in
  fold_lines path (fun () ~lineno line -> feed b (parse_line ~lineno line)) ();
  finish b
