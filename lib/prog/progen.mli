(** Seeded random program generation, for differential testing of the
    analysis engines (see the [eventorder fuzz] subcommand).

    Generated programs draw from the paper's program class: straight-line
    bodies over shared variables, counting/binary semaphores and
    Post/Wait/Clear operations.  Everything is a pure function of the
    configuration and seed. *)

type config = {
  processes : int * int;  (** inclusive range of top-level process counts *)
  stmts_per_process : int * int;
  shared_vars : int;  (** variables [x0 .. x(k-1)] *)
  semaphores : int;  (** semaphores [s0 ..], initial value 0 or 1 *)
  binary_semaphores : bool;  (** declare generated semaphores binary *)
  event_variables : int;  (** event variables [e0 ..] *)
}

val default_config : config
(** 2–3 processes, 1–3 statements each, 2 variables, 1 semaphore, 1 event
    variable — small enough for the exhaustive engines. *)

val generate : config -> seed:int -> Ast.t

val generate_completing : ?max_attempts:int -> config -> seed:int -> Trace.t
(** Generates programs until one completes under round-robin (discarding
    deadlocking draws) and returns its trace.  Raises [Failure] after
    [max_attempts] (default 1000) consecutive deadlocks. *)

(** {1 Big-trace families}

    Deterministic generators for the streaming path: 10^5–10^6-event
    traces emitted directly as {!Bigtrace.t} (never through the
    interpreter or a dense {!Trace.t}).  Each family is built so the
    tier-1 triage deciders settle every race candidate: handover pairs
    are refutable by the forced-edge order clock (fresh 0-initialised
    semaphore with a single V, or fresh event variable with a single
    Post), and the planted races are provable by prefix-enabledness and
    replay-certifiable.  Sizes and placements are pure functions of
    [events] and [seed]. *)

type big_family =
  | Pc_mesh  (** producer/consumer lanes handing variables over semaphores *)
  | Server_logs  (** workers publishing logs to a collector via Post/Wait *)
  | Fork_join  (** a forked tree of children with sibling-pair races *)

val big_family_names : string list
(** [["pc_mesh"; "server_logs"; "fork_join"]], CLI/doc order. *)

val big_family_of_string : string -> big_family option
val big_family_to_string : big_family -> string

val big_trace : family:big_family -> events:int -> seed:int -> Bigtrace.t
(** A trace with exactly [events] events.
    @raise Invalid_argument when [events < 64]. *)
