(** Columnar view of huge traces — the streaming million-event path.

    A {!Trace.t} and its {!Execution.t} carry dense [n x n] relation
    matrices (temporal order, dependences), which is exactly right for
    the exact engines at tens-to-hundreds of events and exactly wrong
    at 10^6: the matrices alone would need gigabytes.  A [Bigtrace.t]
    keeps only what the tier-1 triage deciders need, all of it linear
    in the trace:

    - the events and their immediate program-order predecessor lists;
    - per event, the two largest shared-data dependence predecessors
      ({!dep_pred_max_excluding}) — the prefix-enabledness certificate
      needs only the maximum outside the candidate pair, never the
      full (per-hot-variable quadratic) dependence lists;
    - the synchronization environment, for the forced-edge order clock
      and the replay certifier.

    Event ids are the observed schedule (as in every recorded trace).
    [read]/[save] speak the exact [eotrace 1] format of {!Trace_io}
    (same parser core, same diagnostics), streaming line by line;
    {!of_trace}/{!to_trace} convert losslessly at small sizes for the
    differential tests and for handing a small file to the exact
    engines. *)

type t = {
  events : Event.t array;
  po_preds : int list array;  (** immediate program-order predecessors *)
  dep_m1 : int array;
      (** largest dependence predecessor id per event, [-1] if none *)
  dep_m2 : int array;  (** second largest distinct, [-1] if none *)
  outcome : Trace.outcome;
  violations : int list;
  var_names : string array;
  sem_names : string array;
  ev_names : string array;
  sem_init : int array;
  sem_binary : bool array;
  ev_init : bool array;
  final_store : (string * int) list;
  process_names : (int * string) list;
}

val n_events : t -> int

val make :
  events:Event.t array ->
  po_edges:(int * int) list ->
  outcome:Trace.outcome ->
  violations:int list ->
  var_names:string array ->
  sem_names:string array ->
  ev_names:string array ->
  sem_init:int array ->
  sem_binary:bool array ->
  ev_init:bool array ->
  final_store:(string * int) list ->
  process_names:(int * string) list ->
  t
(** Direct constructor from parts (the generator path): builds the
    predecessor lists and dependence maxima.  Raises [Failure] on a
    program-order edge out of range. *)

val of_trace : Trace.t -> t
val to_trace : t -> Trace.t

val read : string -> t
(** Streaming reader for the [eotrace 1] format: one {!Trace_io}
    directive at a time, never the whole file as a string.  Raises
    [Failure] with the same messages as {!Trace_io.of_string}. *)

val save : string -> t -> unit
(** Streaming writer; output is accepted by both {!read} and
    {!Trace_io.load} (and matches {!Trace_io.to_string} on converted
    traces up to program-order edge ordering). *)

val dep_pred_max_excluding : t -> event:int -> excluding:int -> int
(** The largest dependence predecessor of [event] other than
    [excluding] ([-1] if none) — the quantity the race triage compares
    against the candidate's earlier event to certify that both pair
    events were simultaneously enabled. *)

val po_pred_max : t -> int -> int
(** Largest immediate program-order predecessor ([-1] if none). *)

val conflicting_pairs :
  ?max_candidates:int -> t -> (int * int * int list) list * bool
(** Race candidates: pairs of conflicting computation events of
    distinct processes, as [(lower id, higher id, conflict variables)]
    sorted by pair, mirroring [Race.conflicting_pairs].  Computed per
    variable in one pass.  Stops collecting {e new} pairs once
    [max_candidates] is reached and reports [true] as the truncation
    flag — callers must surface the cap, never silently drop it. *)

val observed_replays : t -> bool
(** Does the observed schedule itself replay (forward precedence plus a
    linear synchronization-state simulation)?  The feasibility witness
    every positive tier-1 answer rests on. *)

val certify_swap : t -> int -> int -> bool
(** Replays the observed schedule with the later pair event hoisted to
    run immediately {e before} the earlier one (the back-to-back
    both-orders race certificate), checking every synchronization
    enabledness.  [true] means the reordered schedule completes — the
    replay certification for a streaming-path race verdict. *)
