(** Candidate executions annotated with reads-from, and the per-model
    rf/co consistency checker.

    A candidate pairs an execution's events and program order with a
    complete {e reads-from} assignment: for every shared-variable read,
    either the event whose write it observed or the variable's initial
    value.  The checker decides whether some total memory order [L]
    explains the candidate under a {!Memmodel.t}:

    - [L] contains the model's preserved program order, strengthened
      per location (program-ordered conflicting accesses stay ordered
      under every model — SC-per-location coherence);
    - every rf edge [w -> r] has [w] before [r] in [L] with no other
      write to the same variable between them, and a read of the
      initial value has no write to its variable before it;
    - the coherence order [co] is read off [L] per location.

    Deciding is tiered like the engines: a polynomial saturation pass
    (the derived-ordering rules of the consistency-algorithm framework
    papers) refutes or, via a greedy linearization, certifies most
    candidates; survivors fall through to a CNF fragment solved by the
    in-repo CDCL.  Every positive verdict carries a {!witness} that
    {!check_witness} has validated — never a bare "sat". *)

type rf_edge = {
  write : int;  (** writing event id, or [-1] for the initial value *)
  read : int;  (** reading event id *)
  var : int;  (** shared variable *)
}

type t = private { execution : Execution.t; rf : rf_edge list }

type witness = {
  order : int array;  (** a consistent total memory order (event ids) *)
  co : (int * int list) list;
      (** per written variable, its writes in coherence order *)
}

type verdict = Consistent of witness | Inconsistent of string

exception Ill_formed of string
(** Raised by {!make} on an rf assignment that does not match the
    execution (unknown events, a non-read reading, duplicate or missing
    edges, a write that does not write the variable). *)

val infer_rf : Execution.t -> rf_edge list
(** The rf the observed schedule exhibits: each read observes the last
    write to its variable that ran temporally before it.  Requires a
    total temporal order (an observed trace). *)

val make : ?rf:rf_edge list -> Execution.t -> t
(** [rf] defaults to {!infer_rf}.  Validates completeness and
    well-formedness; raises {!Ill_formed} otherwise. *)

val check : ?stats:Counters.t -> model:Memmodel.t -> t -> verdict
(** The tiered decision described above.  [stats] receives
    [Consistency_checks] plus one of [Consistency_fast_hits] /
    [Consistency_sat_hits] per verdict. *)

val consistent : ?stats:Counters.t -> model:Memmodel.t -> t -> witness option
(** [check] with the refutation reason dropped — the shape the model
    interface ({!Models.S}) exposes. *)

val check_witness :
  model:Memmodel.t -> t -> int array -> (witness, string) result
(** Validate a proposed total order against every axiom the checker
    enforces, independently of how it was produced; [Ok] returns the
    witness with its per-location coherence order read off.  This is
    the replay step for consistency verdicts: SAT-produced orders are
    re-validated here before being reported. *)

val cnf_fragment :
  model:Memmodel.t -> t -> Cnf.t * (int -> int -> Cnf.literal)
(** The SAT-tier hook: a formula whose models are exactly the
    consistent linearizations, and the literal map ([lit a b] is true
    iff [a] is ordered before [b]).  One order variable per unordered
    event pair, O(n³) transitivity triples, unit clauses for the
    saturated base order, one clause per (rf edge, other write)
    instance of the reads-from axiom. *)
