(** Pluggable memory models.

    The paper's feasibility axioms F1–F3 describe sequentially
    consistent interleaving; this module makes that semantics one
    instance of a memory-model parameter threaded through every
    analysis.  A model is a *program-order filter*: it decides which
    program-order pairs every feasible schedule must respect
    ({!enforced}), with the store-buffer relaxations of TSO and PSO
    expressed over event kinds (the execution model carries no values):

    - [Sc] — every program-order pair is enforced (the legacy F1–F3
      semantics; all downstream code paths are bit-identical to the
      pre-model implementation).
    - [Tso] — a pure write is not enforced before a later pure read of
      its own process (the store sits in a FIFO buffer while later
      reads proceed).
    - [Pso] — a pure write is additionally not enforced before a later
      independent pure write (per-location buffers drain out of
      order).

    Synchronization events and mixed read-write computations act as
    full fences under every model.  Per-location coherence is
    preserved independently of the filter: conflicting same-location
    accesses remain ordered through the execution's dependence edges
    (feasibility side) and through explicit coherence pairs
    ([Candidate], consistency side).

    The selected model is domain-local state exactly like
    [Engine.current]: resolved lazily from [EO_MODEL] (shared [Config]
    parser), overridden per-request by [set], re-seeded into
    [Parallel.map] workers. *)

type t = Sc | Tso | Pso

val to_string : t -> string
(** ["sc"], ["tso"], ["pso"] — the vocabulary in {!Config.model_names}. *)

val of_string : string -> t option
(** Case-insensitive; [None] for anything outside the vocabulary. *)

val names : string list
(** = {!Config.model_names}, the closed vocabulary in documentation
    order. *)

val all : t list
(** Every model, in {!names} order. *)

val default_of_env : unit -> t
(** The model [EO_MODEL] selects (default [Sc]). *)

val current : unit -> t
(** The domain-local selection, seeded from {!default_of_env} on first
    read. *)

val set : t -> unit
(** Override the domain-local selection (CLI flag, per-request model,
    differential tests). *)

val counter_key : t -> Counters.key
(** The per-model query counter ([Model_queries_sc] etc.). *)

val is_pure_write : Event.t -> bool
(** A computation event that writes shared variables and reads none —
    the only event kind a store buffer may delay. *)

val is_pure_read : Event.t -> bool
(** A computation event that reads shared variables and writes none —
    the only event kind that may overtake a buffered store. *)

val enforced : t -> Event.t -> Event.t -> bool
(** [enforced m a b]: must the program-order pair [a] before [b] be
    respected by every schedule feasible under [m]?  Kind-only; callers
    apply it to program-order-related pairs. *)

val relaxes : t -> bool
(** [true] iff the model can drop at least one program-order pair
    ([m <> Sc]). *)

val ppo : t -> Execution.t -> Rel.t
(** The preserved-program-order relation: the transitive closure of the
    {!enforced} pairs of the execution's program-order closure.  The
    closure is taken over the *filtered pair set* (not the filtered
    closure), so orderings through fences survive: in
    [w x; P(s); r y] the write stays ordered before the read under
    every model because both pairs flanking the fence are enforced.
    Under [Sc] this is exactly [Execution.po_closure]. *)
