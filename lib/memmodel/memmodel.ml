(* The memory-model switch.  See memmodel.mli. *)

type t = Sc | Tso | Pso

let to_string = function Sc -> "sc" | Tso -> "tso" | Pso -> "pso"

let of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "sc" -> Some Sc
  | "tso" -> Some Tso
  | "pso" -> Some Pso
  | _ -> None

let names = Config.model_names

let all = [ Sc; Tso; Pso ]

let default_of_env () =
  match of_string (Config.model ()) with Some m -> m | None -> Sc

(* Domain-local, resolved lazily from EO_MODEL (via the shared Config
   parser) so the CLI, bench and tests all see one switch and [set]
   overrides it.  Domain-local rather than a global ref for the same
   reason as [Engine.selected]: a server worker pool honours a
   per-request model without the domains racing on one cell, and
   [Parallel.map] re-seeds its workers from the coordinating domain's
   choice. *)
let selected : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let current () =
  match Domain.DLS.get selected with
  | Some m -> m
  | None ->
      let m = default_of_env () in
      Domain.DLS.set selected (Some m);
      m

let set m = Domain.DLS.set selected (Some m)

let counter_key = function
  | Sc -> Counters.Model_queries_sc
  | Tso -> Counters.Model_queries_tso
  | Pso -> Counters.Model_queries_pso

(* ------------------------------------------------------------------ *)
(* The kind-only program-order filter.                                 *)
(* ------------------------------------------------------------------ *)

(* The execution model carries no values, so the store-buffer
   relaxations are expressed purely over event kinds: a pure write may
   drain late (pass a later pure read under TSO, a later pure read or
   independent pure write under PSO).  Synchronization events and mixed
   read-write computations act as full fences.  Per-location coherence
   is not this function's business: conflicting same-location accesses
   stay ordered through the dependence edges (feasibility skeleton) or
   the explicit coherence pairs (consistency checker). *)

let is_pure_write e =
  e.Event.kind = Event.Computation
  && e.Event.writes <> [] && e.Event.reads = []

let is_pure_read e =
  e.Event.kind = Event.Computation
  && e.Event.reads <> [] && e.Event.writes = []

let enforced m a b =
  match m with
  | Sc -> true
  | Tso -> not (is_pure_write a && is_pure_read b)
  | Pso -> not (is_pure_write a && (is_pure_read b || is_pure_write b))

let relaxes m = m <> Sc

(* ppo must be the transitive closure of the *filtered pair set* of
   po+, never the filtered closure: for [w x; P(s); r y] the pairs
   (w,P) and (P,r) survive every filter (syncs are fences), so (w,r)
   is enforced through the fence even though the direct pair would be
   relaxed. *)
let ppo m (x : Execution.t) =
  let pox = Execution.po_closure x in
  if m = Sc then pox
  else begin
    let n = Execution.n_events x in
    let keep = Rel.create n in
    Rel.iter
      (fun a b ->
        if enforced m x.Execution.events.(a) x.Execution.events.(b) then
          Rel.add keep a b)
      pox;
    Rel.transitive_closure_in_place keep;
    keep
  end
