(* The classic two-thread litmus shapes as candidates.  See litmus.mli. *)

let x = 0
let y = 1

let comp ~id ~pid ~seq ~label ?(reads = []) ?(writes = []) () =
  Event.make ~id ~pid ~seq ~kind:Event.Computation ~label ~reads ~writes ()

let execution events po_pairs =
  let events = Array.of_list events in
  let n = Array.length events in
  Execution.of_schedule ~events
    ~program_order:(Rel.of_pairs n po_pairs)
    ~schedule:(Array.init n (fun i -> i))
    ~num_shared_vars:2 ()

let sb_execution () =
  execution
    [
      comp ~id:0 ~pid:0 ~seq:0 ~label:"x := 1" ~writes:[ x ] ();
      comp ~id:1 ~pid:0 ~seq:1 ~label:"r y" ~reads:[ y ] ();
      comp ~id:2 ~pid:1 ~seq:0 ~label:"y := 1" ~writes:[ y ] ();
      comp ~id:3 ~pid:1 ~seq:1 ~label:"r x" ~reads:[ x ] ();
    ]
    [ (0, 1); (2, 3) ]

let sb () =
  Candidate.make
    ~rf:
      [
        { Candidate.write = -1; read = 1; var = y };
        { Candidate.write = -1; read = 3; var = x };
      ]
    (sb_execution ())

let mp_execution () =
  execution
    [
      comp ~id:0 ~pid:0 ~seq:0 ~label:"x := 1" ~writes:[ x ] ();
      comp ~id:1 ~pid:0 ~seq:1 ~label:"y := 1" ~writes:[ y ] ();
      comp ~id:2 ~pid:1 ~seq:0 ~label:"r y" ~reads:[ y ] ();
      comp ~id:3 ~pid:1 ~seq:1 ~label:"r x" ~reads:[ x ] ();
    ]
    [ (0, 1); (2, 3) ]

let mp () =
  Candidate.make
    ~rf:
      [
        { Candidate.write = 1; read = 2; var = y };
        { Candidate.write = -1; read = 3; var = x };
      ]
    (mp_execution ())
