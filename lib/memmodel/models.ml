(* The first-class model interface.  See models.mli. *)

module type S = sig
  val model : Memmodel.t
  val name : string
  val enforced : Event.t -> Event.t -> bool
  val ppo : Execution.t -> Rel.t
  val oracle : Execution.t -> int -> int -> bool
  val consistent :
    ?stats:Counters.t -> Candidate.t -> Candidate.witness option
  val cnf_fragment : Candidate.t -> Cnf.t * (int -> int -> Cnf.literal)
end

module Make (M : sig
  val model : Memmodel.t
end) : S = struct
  let model = M.model
  let name = Memmodel.to_string model
  let enforced a b = Memmodel.enforced model a b
  let ppo x = Memmodel.ppo model x

  let oracle x =
    let ppo = ppo x in
    fun a b -> a <> b && Rel.mem ppo a b

  let consistent ?stats c = Candidate.consistent ?stats ~model c
  let cnf_fragment c = Candidate.cnf_fragment ~model c
end

module Sc = Make (struct
  let model = Memmodel.Sc
end)

module Tso = Make (struct
  let model = Memmodel.Tso
end)

module Pso = Make (struct
  let model = Memmodel.Pso
end)

let instance = function
  | Memmodel.Sc -> (module Sc : S)
  | Memmodel.Tso -> (module Tso : S)
  | Memmodel.Pso -> (module Pso : S)
