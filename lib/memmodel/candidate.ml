(* rf/co-annotated execution candidates and the per-model consistency
   checker.  See candidate.mli. *)

type rf_edge = { write : int; read : int; var : int }

type t = { execution : Execution.t; rf : rf_edge list }

type witness = { order : int array; co : (int * int list) list }

type verdict = Consistent of witness | Inconsistent of string

exception Ill_formed of string

let illf fmt = Printf.ksprintf (fun s -> raise (Ill_formed s)) fmt

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let reads_of (x : Execution.t) =
  let out = ref [] in
  Array.iter
    (fun e ->
      if e.Event.kind = Event.Computation then
        List.iter (fun v -> out := (e.Event.id, v) :: !out) e.Event.reads)
    x.Execution.events;
  List.rev !out

let writers_of (x : Execution.t) =
  let w = Array.make x.Execution.num_shared_vars [] in
  Array.iter
    (fun e ->
      if e.Event.kind = Event.Computation then
        List.iter
          (fun v ->
            if v >= 0 && v < Array.length w then w.(v) <- e.Event.id :: w.(v))
          e.Event.writes)
    x.Execution.events;
  Array.map List.rev w

(* The rf the observed schedule exhibits: each read takes the last
   write to its variable that ran temporally before it, or the initial
   value when no write has run yet. *)
let infer_rf (x : Execution.t) =
  let schedule = Execution.schedule_of_temporal x in
  let n = Execution.n_events x in
  let pos = Array.make n 0 in
  Array.iteri (fun i e -> pos.(e) <- i) schedule;
  let writers = writers_of x in
  List.map
    (fun (r, v) ->
      let write =
        if v < 0 || v >= Array.length writers then -1
        else
          List.fold_left
            (fun best w ->
              if
                pos.(w) < pos.(r)
                && (best = -1 || pos.(w) > pos.(best))
              then w
              else best)
            (-1) writers.(v)
      in
      { write; read = r; var = v })
    (reads_of x)

let validate (x : Execution.t) rf =
  let n = Execution.n_events x in
  let writers = writers_of x in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun { write; read; var } ->
      if read < 0 || read >= n then illf "rf read %d is not an event" read;
      let r = x.Execution.events.(read) in
      if not (r.Event.kind = Event.Computation && List.mem var r.Event.reads)
      then illf "event %d does not read v%d" read var;
      if Hashtbl.mem seen (read, var) then
        illf "two rf edges for the read of v%d by event %d" var read;
      Hashtbl.add seen (read, var) ();
      if write <> -1 then begin
        if write < 0 || write >= n then
          illf "rf write %d is not an event" write;
        if write = read then
          illf "event %d cannot read v%d from itself" read var;
        if not (List.mem write writers.(var)) then
          illf "event %d does not write v%d" write var
      end)
    rf;
  (* Every read of the execution must be accounted for: a candidate is
     a complete rf assignment, not a partial one. *)
  List.iter
    (fun (r, v) ->
      if not (Hashtbl.mem seen (r, v)) then
        illf "no rf edge for the read of v%d by event %d" v r)
    (reads_of x)

let make ?rf x =
  let rf = match rf with Some rf -> rf | None -> infer_rf x in
  validate x rf;
  { execution = x; rf }

(* ------------------------------------------------------------------ *)
(* The constraint skeleton shared by every tier                        *)
(* ------------------------------------------------------------------ *)

(* Base orderings every consistent linearization must contain: the
   model's preserved program order, strengthened per location (a
   program-ordered pair of conflicting accesses stays ordered under
   every model — SC-per-location), plus every non-initial rf edge. *)
let base_order model (t : t) =
  let x = t.execution in
  let n = Execution.n_events x in
  let keep = Rel.create n in
  Rel.iter
    (fun a b ->
      let ea = x.Execution.events.(a) and eb = x.Execution.events.(b) in
      if Memmodel.enforced model ea eb || Event.conflicts ea eb then
        Rel.add keep a b)
    (Execution.po_closure x);
  List.iter
    (fun { write; read; _ } -> if write <> -1 then Rel.add keep write read)
    t.rf;
  Rel.transitive_closure_in_place keep;
  keep

let has_cycle rel =
  let n = Rel.size rel in
  let rec go e = e < n && (Rel.mem rel e e || go (e + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Witness validation                                                  *)
(* ------------------------------------------------------------------ *)

let co_of_order (t : t) pos =
  let writers = writers_of t.execution in
  let out = ref [] in
  Array.iteri
    (fun v ws ->
      match List.sort (fun a b -> compare pos.(a) pos.(b)) ws with
      | [] -> ()
      | ws -> out := (v, ws) :: !out)
    writers;
  List.rev !out

let check_witness ~model (t : t) order =
  let x = t.execution in
  let n = Execution.n_events x in
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if Array.length order <> n then
    err "witness orders %d of %d events" (Array.length order) n
  else begin
    let pos = Array.make n (-1) in
    let dup = ref None in
    Array.iteri
      (fun i e ->
        if e < 0 || e >= n || pos.(e) >= 0 then dup := Some e else pos.(e) <- i)
      order;
    match !dup with
    | Some e -> err "witness is not a permutation (event %d)" e
    | None -> (
        let bad = ref None in
        Rel.iter
          (fun a b ->
            let ea = x.Execution.events.(a) and eb = x.Execution.events.(b) in
            if
              (Memmodel.enforced model ea eb || Event.conflicts ea eb)
              && pos.(a) > pos.(b)
              && !bad = None
            then bad := Some (Printf.sprintf "ppo pair %d before %d" a b))
          (Execution.po_closure x);
        let writers = writers_of x in
        List.iter
          (fun { write; read; var } ->
            if !bad = None then
              if write = -1 then
                List.iter
                  (fun w ->
                    if pos.(w) < pos.(read) && !bad = None then
                      bad :=
                        Some
                          (Printf.sprintf
                             "event %d reads the initial v%d but write %d \
                              precedes it"
                             read var w))
                  writers.(var)
              else if pos.(write) > pos.(read) then
                bad :=
                  Some
                    (Printf.sprintf "event %d reads v%d from the later write %d"
                       read var write)
              else
                List.iter
                  (fun w ->
                    if
                      w <> write && w <> read
                      && pos.(w) > pos.(write)
                      && pos.(w) < pos.(read)
                      && !bad = None
                    then
                      bad :=
                        Some
                          (Printf.sprintf
                             "write %d to v%d intervenes between write %d and \
                              read %d"
                             w var write read))
                  writers.(var))
          t.rf;
        match !bad with
        | Some reason -> Error reason
        | None -> Ok { order = Array.copy order; co = co_of_order t pos })
  end

(* ------------------------------------------------------------------ *)
(* Tier 1: polynomial saturation                                       *)
(* ------------------------------------------------------------------ *)

(* Derive orderings forced by the reads-from axiom until a fixpoint:
   for rf(w, r, v) and any other write w' to v, the linearization must
   place w' before w or after r — so a known (w, w') forces (r, w')
   and a known (w', r) forces (w', w); an initial read forces itself
   before every write to its variable.  A cycle anywhere is a
   refutation (the rules only add orderings every consistent
   linearization must contain). *)
let saturate model (t : t) =
  let x = t.execution in
  let writers = writers_of x in
  let ord = base_order model t in
  List.iter
    (fun { write; read; var } ->
      if write = -1 then
        List.iter
          (fun w -> if w <> read then Rel.add ord read w)
          writers.(var))
    t.rf;
  Rel.transitive_closure_in_place ord;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun { write; read; var } ->
        if write <> -1 then
          List.iter
            (fun w ->
              if w <> write && w <> read then begin
                if Rel.mem ord write w && not (Rel.mem ord read w) then begin
                  Rel.add ord read w;
                  changed := true
                end;
                if Rel.mem ord w read && not (Rel.mem ord w write) then begin
                  Rel.add ord w write;
                  changed := true
                end
              end)
            writers.(var))
      t.rf;
    if !changed then Rel.transitive_closure_in_place ord
  done;
  ord

(* Greedy linearization of the saturated order: repeatedly emit the
   lowest-id event whose predecessors are all placed, preferring not to
   emit a write that would slide between a placed rf source and its
   still-unplaced read.  The result is only trusted after
   [check_witness]. *)
let greedy_linearize (t : t) ord =
  let x = t.execution in
  let n = Execution.n_events x in
  let placed = Array.make n false in
  let order = Array.make n (-1) in
  let blocks_read e =
    let ev = x.Execution.events.(e) in
    ev.Event.kind = Event.Computation
    && List.exists
         (fun { write; read; var } ->
           (not placed.(read))
           && read <> e
           && (write = -1 || (placed.(write) && write <> e))
           && List.mem var ev.Event.writes)
         t.rf
  in
  let ready e =
    (not placed.(e))
    && (let ok = ref true in
        for p = 0 to n - 1 do
          if Rel.mem ord p e && not placed.(p) then ok := false
        done;
        !ok)
  in
  (try
     for i = 0 to n - 1 do
       let pick = ref (-1) in
       for e = n - 1 downto 0 do
         if ready e && not (blocks_read e) then pick := e
       done;
       if !pick = -1 then
         for e = n - 1 downto 0 do
           if ready e then pick := e
         done;
       if !pick = -1 then raise Exit;
       order.(i) <- !pick;
       placed.(!pick) <- true
     done
   with Exit -> ());
  if Array.exists (fun e -> e = -1) order then None else Some order

(* ------------------------------------------------------------------ *)
(* Tier 2: the CNF fragment                                            *)
(* ------------------------------------------------------------------ *)

(* One order variable per unordered event pair ([lit a b] true iff [a]
   is linearized before [b]), O(n^3) transitivity triples, unit clauses
   for the saturated base order, and one clause per (rf edge, other
   write) instance of the reads-from axiom.  This is the SAT-tier hook
   the model interface exposes: everything the polynomial tier could
   not settle lands here. *)
let cnf_fragment ~model (t : t) =
  let x = t.execution in
  let n = Execution.n_events x in
  let var a b =
    (* triangular index of the unordered pair, 1-based *)
    let a, b = if a < b then (a, b) else (b, a) in
    (a * ((2 * n) - a - 1) / 2) + (b - a - 1) + 1
  in
  let lit a b = if a < b then var a b else -var a b in
  let clauses = ref [] in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if j <> i then
        for k = 0 to n - 1 do
          if k <> i && k <> j then
            clauses := [ -lit i j; -lit j k; lit i k ] :: !clauses
        done
    done
  done;
  let ord = saturate model t in
  Rel.iter (fun a b -> if a <> b then clauses := [ lit a b ] :: !clauses) ord;
  let writers = writers_of x in
  List.iter
    (fun { write; read; var = v } ->
      List.iter
        (fun w ->
          if w <> write && w <> read then
            if write = -1 then clauses := [ lit read w ] :: !clauses
            else clauses := [ lit w write; lit read w ] :: !clauses)
        writers.(v))
    t.rf;
  (Cnf.make ~num_vars:(max 1 (n * (n - 1) / 2)) !clauses, lit)

let order_of_assignment n lit assignment =
  let before_count = Array.make n 0 in
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      if a <> b then begin
        let l = lit a b in
        let value = if l > 0 then assignment.(l) else not assignment.(-l) in
        if value then before_count.(b) <- before_count.(b) + 1
      end
    done
  done;
  let order = Array.init n (fun i -> i) in
  Array.sort (fun a b -> compare before_count.(a) before_count.(b)) order;
  order

(* ------------------------------------------------------------------ *)
(* The tiered verdict                                                  *)
(* ------------------------------------------------------------------ *)

let check ?(stats = Counters.null) ~model (t : t) =
  Counters.bump stats Counters.Consistency_checks;
  let ord = saturate model t in
  if has_cycle ord then begin
    Counters.bump stats Counters.Consistency_fast_hits;
    Inconsistent
      (Printf.sprintf
         "the saturated %s ordering constraints are cyclic"
         (Memmodel.to_string model))
  end
  else
    let fast =
      match greedy_linearize t ord with
      | None -> None
      | Some order -> (
          match check_witness ~model t order with
          | Ok w -> Some w
          | Error _ -> None)
    in
    match fast with
    | Some w ->
        Counters.bump stats Counters.Consistency_fast_hits;
        Consistent w
    | None -> (
        let cnf, lit = cnf_fragment ~model t in
        Counters.bump stats Counters.Consistency_sat_hits;
        match Cdcl.solve cnf with
        | Cdcl.Unsat ->
            Inconsistent
              (Printf.sprintf
                 "no linearization satisfies the %s ordering and reads-from \
                  axioms"
                 (Memmodel.to_string model))
        | Cdcl.Sat assignment -> (
            let n = Execution.n_events t.execution in
            let order = order_of_assignment n lit assignment in
            match check_witness ~model t order with
            | Ok w -> Consistent w
            | Error reason ->
                (* The encoding and the validator disagree: fail loudly
                   rather than return an uncertified positive. *)
                invalid_arg
                  (Printf.sprintf "Candidate.check: invalid SAT witness (%s)"
                     reason)))

let consistent ?stats ~model t =
  match check ?stats ~model t with
  | Consistent w -> Some w
  | Inconsistent _ -> None
