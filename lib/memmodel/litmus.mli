(** The classic two-thread litmus shapes, as rf-annotated candidates
    over the repository's execution model (shared variables [x] = v0,
    [y] = v1; no values — the outcome under test is expressed by the
    reads-from assignment, not by data).

    These are the unit fixtures behind the model-discrimination tests
    and the [eventorder consistent] examples: the interesting outcome
    of each shape cannot arise from running the program (the
    interpreter only produces sequentially consistent traces), so it is
    stated as an explicit rf. *)

val sb_execution : unit -> Execution.t
(** Store buffering: [P0: x := 1; r y] and [P1: y := 1; r x]. *)

val sb : unit -> Candidate.t
(** SB with both reads observing the initial values — forbidden under
    [Sc], allowed under [Tso] and [Pso] (both stores may still be
    buffered when the reads run). *)

val mp_execution : unit -> Execution.t
(** Message passing: [P0: x := 1; y := 1] and [P1: r y; r x]. *)

val mp : unit -> Candidate.t
(** MP with the flag read observing [y := 1] but the data read
    observing the initial [x] — forbidden under [Sc] and [Tso] (the
    store buffer is FIFO), allowed under [Pso] (per-location buffers
    drain out of order). *)
