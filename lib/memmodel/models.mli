(** The memory-model interface, as a first-class module signature.

    A model instance packages everything the analysis tiers need from a
    memory model, following the memalloy-style execution signature
    (program order, rf, co, fences, per-location coherence):

    - {!S.enforced}/{!S.ppo} — the program-order filter the feasibility
      engines consume (via the model-aware [Skeleton]);
    - {!S.oracle} — the pairwise ordering oracle for the triage tier-1
      path: [oracle x a b] iff [a] precedes [b] in the model's
      preserved program order, a sound must-happen-before
      approximation under the model;
    - {!S.consistent} — the rf/co consistency verdict with a validated
      witness;
    - {!S.cnf_fragment} — the CNF hook the SAT tier solves when the
      polynomial tiers cannot settle a candidate. *)

module type S = sig
  val model : Memmodel.t
  val name : string

  val enforced : Event.t -> Event.t -> bool
  (** {!Memmodel.enforced} specialized to this model. *)

  val ppo : Execution.t -> Rel.t
  (** {!Memmodel.ppo} specialized to this model. *)

  val oracle : Execution.t -> int -> int -> bool
  (** Partially applying the execution precomputes the ppo closure;
      the returned closure answers pairwise queries in O(1). *)

  val consistent :
    ?stats:Counters.t -> Candidate.t -> Candidate.witness option
  (** {!Candidate.consistent} under this model. *)

  val cnf_fragment : Candidate.t -> Cnf.t * (int -> int -> Cnf.literal)
  (** {!Candidate.cnf_fragment} under this model. *)
end

module Sc : S
module Tso : S
module Pso : S

val instance : Memmodel.t -> (module S)
