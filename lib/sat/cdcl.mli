(** A conflict-driven clause-learning SAT solver.

    The serious sibling of {!Dpll}: two-watched-literal propagation,
    first-UIP conflict analysis with clause learning, VSIDS-style activity
    branching with decay, non-chronological backjumping, and Luby restarts.
    Still self-contained and dependency-free.

    The reduction experiments use {!Dpll} (its instances are tiny); this
    solver exists so the SAT substrate holds up on the harder instances the
    benchmarks sweep (random 3-CNF near the phase transition, pigeonhole),
    and as a second independent oracle: the test suite cross-checks CDCL,
    DPLL and brute force against each other. *)

type result = Sat of bool array | Unsat

type stats = {
  decisions : int;
  propagations : int;
  conflicts : int;
  learned : int;  (** clauses learned *)
  restarts : int;
  max_decision_level : int;
}

val solve : Cnf.t -> result
(** The satisfying assignment is indexed by variable number (index 0
    unused); unconstrained variables may carry either value. *)

val solve_with_stats : Cnf.t -> result * stats

val is_satisfiable : Cnf.t -> bool

(** {2 Incremental solving under assumptions}

    One compiled formula, many queries: [make] loads the clause database
    once, and each [solve_assuming] call decides satisfiability with a
    set of extra unit assumptions treated as forced first decisions.
    Learned clauses, activity scores and saved phases persist across
    calls, so later queries on the same formula are typically much
    cheaper than the first. *)

type t
(** A persistent solver instance over a fixed formula. *)

val make : ?budget:Budget.t -> Cnf.t -> t
(** [?budget] is polled once per conflict; on expiry any in-flight or
    later [solve_assuming] call raises {!Budget.Expired} (with the
    solver left clean, so it stays usable under a fresh budget).  The
    session layer catches the exception and degrades the answer. *)

val solve_assuming : t -> Cnf.literal list -> result
(** [solve_assuming t assumptions] is [Sat model] iff the formula is
    satisfiable with every listed literal (DIMACS convention, nonzero,
    within [num_vars]) forced true; the model satisfies formula and
    assumptions alike.  [Unsat] under a nonempty assumption list leaves
    the solver reusable for further queries.
    @raise Invalid_argument on a zero or out-of-range literal.
    @raise Budget.Expired when the instance's budget runs out. *)

val stats : t -> stats
(** Cumulative counters across every [solve_assuming] call on [t]. *)
