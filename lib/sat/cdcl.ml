type result = Sat of bool array | Unsat

type stats = {
  decisions : int;
  propagations : int;
  conflicts : int;
  learned : int;
  restarts : int;
  max_decision_level : int;
}

(* Literals are encoded as indices: +v -> 2v, -v -> 2v+1; negation is
   [lxor 1].  Variable of an index: [idx lsr 1]. *)
let lit_of_dimacs l = if l > 0 then 2 * l else (2 * -l) + 1

let neg idx = idx lxor 1

let var_of idx = idx lsr 1

let is_pos idx = idx land 1 = 0

exception Found_unsat

type solver = {
  num_vars : int;
  (* Clause database: each clause is an int array of literal indices;
     watched literals are kept in positions 0 and 1. *)
  mutable clauses : int array array;
  mutable n_clauses : int;
  (* value.(v): 0 unassigned, 1 true, -1 false. *)
  value : int array;
  level : int array;  (* decision level per variable *)
  reason : int array;  (* clause id that implied the variable, or -1 *)
  mutable trail : int array;  (* assigned literal indices, in order *)
  mutable trail_size : int;
  mutable qhead : int;
  mutable decision_level : int;
  trail_lim : int array;  (* trail size at each decision level *)
  activity : float array;
  mutable activity_inc : float;
  phase : bool array;  (* saved polarity per variable *)
  (* watches.(lit): ids of clauses currently watching [lit]. *)
  mutable watches : int list array;
  (* statistics *)
  mutable decisions : int;
  mutable propagations : int;
  mutable conflicts : int;
  mutable learned_count : int;
  mutable restarts : int;
  mutable max_level_seen : int;
}

let lit_value s idx =
  let v = s.value.(var_of idx) in
  if v = 0 then 0 else if is_pos idx then v else -v

let create num_vars =
  {
    num_vars;
    clauses = Array.make 16 [||];
    n_clauses = 0;
    value = Array.make (num_vars + 1) 0;
    level = Array.make (num_vars + 1) 0;
    reason = Array.make (num_vars + 1) (-1);
    trail = Array.make (max 1 num_vars) 0;
    trail_size = 0;
    qhead = 0;
    decision_level = 0;
    trail_lim = Array.make (num_vars + 2) 0;
    activity = Array.make (num_vars + 1) 0.0;
    activity_inc = 1.0;
    phase = Array.make (num_vars + 1) false;
    watches = Array.make ((2 * (num_vars + 1)) + 2) [];
    decisions = 0;
    propagations = 0;
    conflicts = 0;
    learned_count = 0;
    restarts = 0;
    max_level_seen = 0;
  }

let bump s v =
  s.activity.(v) <- s.activity.(v) +. s.activity_inc;
  if s.activity.(v) > 1e100 then begin
    for u = 1 to s.num_vars do
      s.activity.(u) <- s.activity.(u) *. 1e-100
    done;
    s.activity_inc <- s.activity_inc *. 1e-100
  end

let decay s = s.activity_inc <- s.activity_inc /. 0.95

let enqueue s idx reason =
  let v = var_of idx in
  s.value.(v) <- (if is_pos idx then 1 else -1);
  s.level.(v) <- s.decision_level;
  s.reason.(v) <- reason;
  s.phase.(v) <- is_pos idx;
  s.trail.(s.trail_size) <- idx;
  s.trail_size <- s.trail_size + 1

let add_clause_raw s lits =
  let id = s.n_clauses in
  if id = Array.length s.clauses then begin
    let bigger = Array.make (2 * id) [||] in
    Array.blit s.clauses 0 bigger 0 id;
    s.clauses <- bigger
  end;
  s.clauses.(id) <- lits;
  s.n_clauses <- id + 1;
  if Array.length lits >= 2 then begin
    s.watches.(lits.(0)) <- id :: s.watches.(lits.(0));
    s.watches.(lits.(1)) <- id :: s.watches.(lits.(1))
  end;
  id

(* Returns the id of a conflicting clause, or -1. *)
let propagate s =
  let conflict = ref (-1) in
  while !conflict = -1 && s.qhead < s.trail_size do
    let lit = s.trail.(s.qhead) in
    s.qhead <- s.qhead + 1;
    s.propagations <- s.propagations + 1;
    let false_lit = neg lit in
    let watching = s.watches.(false_lit) in
    s.watches.(false_lit) <- [];
    let rec process = function
      | [] -> ()
      | id :: rest ->
          let c = s.clauses.(id) in
          (* Normalize: the false literal sits in position 1. *)
          if c.(0) = false_lit then begin
            c.(0) <- c.(1);
            c.(1) <- false_lit
          end;
          if lit_value s c.(0) = 1 then begin
            (* Clause already satisfied: keep watching. *)
            s.watches.(false_lit) <- id :: s.watches.(false_lit);
            process rest
          end
          else begin
            (* Look for a new watch. *)
            let n = Array.length c in
            let rec find i =
              if i >= n then None
              else if lit_value s c.(i) <> -1 then Some i
              else find (i + 1)
            in
            match find 2 with
            | Some i ->
                c.(1) <- c.(i);
                c.(i) <- false_lit;
                s.watches.(c.(1)) <- id :: s.watches.(c.(1));
                process rest
            | None ->
                s.watches.(false_lit) <- id :: s.watches.(false_lit);
                if lit_value s c.(0) = -1 then begin
                  (* Conflict: re-attach remaining clauses untouched. *)
                  conflict := id;
                  List.iter
                    (fun id' ->
                      s.watches.(false_lit) <- id' :: s.watches.(false_lit))
                    rest
                end
                else begin
                  enqueue s c.(0) id;
                  process rest
                end
          end
    in
    process watching
  done;
  !conflict

(* First-UIP conflict analysis.  Returns (learned clause with the asserting
   literal first, backjump level). *)
let analyze s conflict_id =
  let seen = Array.make (s.num_vars + 1) false in
  let learned = ref [] in
  let counter = ref 0 in
  let backjump = ref 0 in
  let absorb_clause id skip_lit =
    Array.iter
      (fun lit ->
        let v = var_of lit in
        if lit <> skip_lit && (not seen.(v)) && s.level.(v) > 0 then begin
          seen.(v) <- true;
          bump s v;
          if s.level.(v) = s.decision_level then incr counter
          else begin
            learned := lit :: !learned;
            if s.level.(v) > !backjump then backjump := s.level.(v)
          end
        end)
      s.clauses.(id)
  in
  absorb_clause conflict_id (-1);
  (* Walk the trail backwards resolving until one current-level literal
     remains: the first unique implication point. *)
  let uip = ref (-1) in
  let i = ref (s.trail_size - 1) in
  let continue = ref true in
  while !continue do
    while not seen.(var_of s.trail.(!i)) do
      decr i
    done;
    let lit = s.trail.(!i) in
    let v = var_of lit in
    seen.(v) <- false;
    decr counter;
    if !counter = 0 then begin
      uip := neg lit;
      continue := false
    end
    else begin
      absorb_clause s.reason.(v) lit;
      decr i
    end
  done;
  (Array.of_list (!uip :: !learned), !backjump)

(* [trail_lim.(d)] records the trail size at the moment decision level [d]
   was opened, so undoing down TO [target] keeps everything up to
   [trail_lim.(target + 1)] — in particular level-0 (root) assignments
   survive a backtrack to 0. *)
let backtrack s target_level =
  if s.decision_level > target_level then begin
    let keep = s.trail_lim.(target_level + 1) in
    while s.trail_size > keep do
      s.trail_size <- s.trail_size - 1;
      let v = var_of s.trail.(s.trail_size) in
      s.value.(v) <- 0;
      s.reason.(v) <- -1
    done;
    s.qhead <- s.trail_size;
    s.decision_level <- target_level
  end

let pick_branch s =
  let best = ref 0 and best_act = ref neg_infinity in
  for v = 1 to s.num_vars do
    if s.value.(v) = 0 && s.activity.(v) > !best_act then begin
      best := v;
      best_act := s.activity.(v)
    end
  done;
  !best

(* Luby restart sequence, scaled. *)
let luby i =
  let rec go k i =
    if i = (1 lsl k) - 1 then 1 lsl (k - 1)
    else if i < (1 lsl (k - 1)) - 1 then go (k - 1) i
    else go (k - 1) (i - ((1 lsl (k - 1)) - 1))
  in
  let rec size k = if (1 lsl k) - 1 >= i + 1 then k else size (k + 1) in
  go (size 1) i

(* ------------------------------------------------------------------ *)
(* Incremental interface: one solver instance answers many queries
   under different assumption sets.  Learned clauses, VSIDS activity
   and saved phases persist across calls, which is what makes the
   per-pair ordering probes of [Eo_encode] cheap after the first one. *)

exception Unsat_assuming

type t = {
  s : solver;
  problem : Cnf.t;  (* kept for the witness sanity assertion *)
  budget : Budget.t;
  mutable dead : bool;  (* a level-0 conflict: unsat regardless of assumptions *)
}

let make ?(budget = Budget.unlimited) (f : Cnf.t) =
  let s = create f.Cnf.num_vars in
  let dead =
    try
      (* Load the problem clauses: dedup literals, drop tautologies.  Unit
         enqueues are deferred until every clause is in the database and
         watched — propagating earlier would run past clauses that do not
         exist yet and silently miss their implications. *)
      let pending_units = ref [] in
      List.iter
        (fun clause ->
          let lits =
            List.sort_uniq compare (List.map lit_of_dimacs clause)
          in
          let tautological =
            List.exists (fun l -> List.mem (neg l) lits) lits
          in
          if not tautological then
            match lits with
            | [] -> raise Found_unsat
            | [ l ] -> pending_units := l :: !pending_units
            | _ -> ignore (add_clause_raw s (Array.of_list lits)))
        f.Cnf.clauses;
      List.iter
        (fun l ->
          match lit_value s l with
          | 1 -> ()
          | -1 -> raise Found_unsat
          | _ -> enqueue s l (-1))
        (List.rev !pending_units);
      if propagate s <> -1 then raise Found_unsat;
      false
    with Found_unsat -> true
  in
  { s; problem = f; budget; dead }

let stats t =
  let s = t.s in
  {
    decisions = s.decisions;
    propagations = s.propagations;
    conflicts = s.conflicts;
    learned = s.learned_count;
    restarts = s.restarts;
    max_decision_level = s.max_level_seen;
  }

(* Assumptions are treated as forced first decisions (MiniSat style): at
   every decision point the first unassigned assumption literal is
   branched on before any free variable.  Because free branching only
   happens once every assumption is satisfied, an assumption found false
   at decision time can only have been implied by the formula plus the
   other assumptions — i.e. the query is unsat under the assumptions
   while the solver itself stays usable.  Never opening a decision level
   for an already-true assumption keeps every level non-empty, so the
   [trail_lim] sizing of [create] still bounds the level count. *)
let solve_assuming t assumption_list =
  if t.dead then Unsat
  else begin
    Budget.raise_if_exhausted t.budget;
    let s = t.s in
    let assumptions =
      Array.of_list
        (List.map
           (fun l ->
             if l = 0 || abs l > s.num_vars then
               invalid_arg "Cdcl.solve_assuming: literal out of range";
             lit_of_dimacs l)
           assumption_list)
    in
    let n_assum = Array.length assumptions in
    let result =
      try
        let conflicts_until_restart = ref 64 in
        let answer = ref None in
        while !answer = None do
          let conflict = propagate s in
          if conflict <> -1 then begin
            s.conflicts <- s.conflicts + 1;
            if s.decision_level = 0 then begin
              t.dead <- true;
              raise Found_unsat
            end;
            let learned, backjump_level = analyze s conflict in
            (* The second watch must be a literal of the backjump level, or
               the watching invariant breaks on later backtracks (clauses can
               silently stop propagating, yielding bogus SAT answers). *)
            if Array.length learned > 1 then begin
              let best = ref 1 in
              for i = 2 to Array.length learned - 1 do
                if
                  s.level.(var_of learned.(i))
                  > s.level.(var_of learned.(!best))
                then best := i
              done;
              let tmp = learned.(1) in
              learned.(1) <- learned.(!best);
              learned.(!best) <- tmp
            end;
            backtrack s backjump_level;
            (if Array.length learned = 1 then enqueue s learned.(0) (-1)
             else begin
               let id = add_clause_raw s learned in
               s.learned_count <- s.learned_count + 1;
               enqueue s learned.(0) id
             end);
            decay s;
            (* Per-conflict budget poll, sharing the restart cadence
               bookkeeping: between two conflicts the solver makes at
               most [num_vars] decisions, so conflicts are the only
               unbounded progress measure worth metering. *)
            if Budget.poll_conflict t.budget then raise Budget.Expired;
            decr conflicts_until_restart
          end
          else if !conflicts_until_restart <= 0 && s.decision_level > 0
          then begin
            s.restarts <- s.restarts + 1;
            conflicts_until_restart := 64 * luby s.restarts;
            backtrack s 0
          end
          else begin
            let next_assumption =
              let rec scan i =
                if i >= n_assum then None
                else
                  match lit_value s assumptions.(i) with
                  | 1 -> scan (i + 1)
                  | -1 -> raise Unsat_assuming
                  | _ -> Some assumptions.(i)
              in
              scan 0
            in
            let branch idx =
              s.decisions <- s.decisions + 1;
              s.decision_level <- s.decision_level + 1;
              if s.decision_level > s.max_level_seen then
                s.max_level_seen <- s.decision_level;
              s.trail_lim.(s.decision_level) <- s.trail_size;
              enqueue s idx (-1)
            in
            match next_assumption with
            | Some idx -> branch idx
            | None -> (
                match pick_branch s with
                | 0 ->
                    (* All variables assigned: satisfying assignment found. *)
                    answer :=
                      Some
                        (Array.init (s.num_vars + 1) (fun v ->
                             v > 0 && s.value.(v) = 1))
                | v -> branch (if s.phase.(v) then 2 * v else (2 * v) + 1))
          end
        done;
        match !answer with
        | Some a ->
            assert (Cnf.eval a t.problem);
            Sat a
        | None -> assert false
      with
      | Found_unsat | Unsat_assuming -> Unsat
      | Budget.Expired ->
          (* Leave the solver clean even on expiry: the instance stays
             usable if the caller retries with a fresh budget. *)
          backtrack s 0;
          raise Budget.Expired
    in
    (* Leave the solver clean (root level only) for the next query. *)
    backtrack s 0;
    result
  end

let solve_with_stats (f : Cnf.t) =
  let t = make f in
  let result = solve_assuming t [] in
  (result, stats t)

let solve f = fst (solve_with_stats f)

let is_satisfiable f = match solve f with Sat _ -> true | Unsat -> false
