(* Any ASCII whitespace separates fields: other solvers routinely emit
   tab-separated clauses and [p\tcnf] headers, and the format never gave
   the space character special status. *)
let split_ws s =
  let is_ws = function ' ' | '\t' | '\r' | '\012' -> true | _ -> false in
  let toks = ref [] in
  let start = ref (-1) in
  String.iteri
    (fun i c ->
      if is_ws c then begin
        if !start >= 0 then toks := String.sub s !start (i - !start) :: !toks;
        start := -1
      end
      else if !start < 0 then start := i)
    s;
  if !start >= 0 then
    toks := String.sub s !start (String.length s - !start) :: !toks;
  List.rev !toks

exception End_marker

let parse text =
  let lines = String.split_on_char '\n' text in
  let header = ref None in
  let tokens = ref [] in
  (try
     List.iter
       (fun line ->
         let line = String.trim line in
         if line = "" || line.[0] = 'c' then ()
         else if line.[0] = '%' then
           (* Conventional end-of-file marker (SATLIB benchmarks follow
              it with a lone "0"); everything after it is ignored. *)
           raise End_marker
         else if line.[0] = 'p' then begin
           if !header <> None then failwith "Dimacs.parse: duplicate header";
           match split_ws line with
           | [ "p"; "cnf"; vars; clauses ] -> (
               match (int_of_string_opt vars, int_of_string_opt clauses) with
               | Some v, Some c -> header := Some (v, c)
               | _ -> failwith "Dimacs.parse: malformed header numbers")
           | _ -> failwith "Dimacs.parse: malformed header line"
         end
         else
           split_ws line
           |> List.iter (fun tok ->
                  match int_of_string_opt tok with
                  | Some i -> tokens := i :: !tokens
                  | None -> failwith "Dimacs.parse: non-integer literal"))
       lines
   with End_marker -> ());
  let num_vars, expected_clauses =
    match !header with
    | Some h -> h
    | None -> failwith "Dimacs.parse: missing 'p cnf' header"
  in
  let clauses, current =
    List.fold_left
      (fun (clauses, current) tok ->
        if tok = 0 then (List.rev current :: clauses, [])
        else (clauses, tok :: current))
      ([], [])
      (List.rev !tokens)
  in
  if current <> [] then failwith "Dimacs.parse: clause missing terminating 0";
  let clauses = List.rev clauses in
  if List.length clauses <> expected_clauses then
    failwith "Dimacs.parse: clause count disagrees with header";
  Cnf.make ~num_vars clauses

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse text

let print ppf (f : Cnf.t) =
  Format.fprintf ppf "p cnf %d %d@." f.Cnf.num_vars (Cnf.num_clauses f);
  List.iter
    (fun clause ->
      List.iter (fun l -> Format.fprintf ppf "%d " l) clause;
      Format.fprintf ppf "0@.")
    f.Cnf.clauses

let to_string f = Format.asprintf "%a" print f
