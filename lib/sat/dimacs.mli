(** DIMACS CNF reading and writing, for feeding external instances to the
    reduction CLI. *)

val parse : string -> Cnf.t
(** Parses DIMACS CNF text: comment lines start with [c], the header line is
    [p cnf <vars> <clauses>], and clauses are 0-terminated literal lists that
    may span lines.  Fields are separated by any ASCII whitespace (tabs
    included), and a line starting with [%] is the conventional end-of-file
    marker — it and everything after it is ignored.  Raises [Failure] with a
    message on malformed input or when the clause count disagrees with the
    header. *)

val parse_file : string -> Cnf.t

val print : Format.formatter -> Cnf.t -> unit

val to_string : Cnf.t -> string
