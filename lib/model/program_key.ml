type t = {
  hash : string;
  to_canonical : int array;
  of_canonical : int array;
}

let canonical_permutation (x : Execution.t) =
  let n = Array.length x.events in
  let of_canonical = Array.init n (fun i -> i) in
  Array.sort
    (fun a b ->
      let ea = x.events.(a) and eb = x.events.(b) in
      let c = compare ea.Event.pid eb.Event.pid in
      if c <> 0 then c
      else
        let c = compare ea.Event.seq eb.Event.seq in
        if c <> 0 then c else compare a b)
    of_canonical;
  let to_canonical = Array.make n 0 in
  Array.iteri (fun c orig -> to_canonical.(orig) <- c) of_canonical;
  (to_canonical, of_canonical)

let kind_tag = function
  | Event.Computation -> "c"
  | Event.Sync (Event.Sem_p s) -> Printf.sprintf "P%d" s
  | Event.Sync (Event.Sem_v s) -> Printf.sprintf "V%d" s
  | Event.Sync (Event.Post e) -> Printf.sprintf "E%d" e
  | Event.Sync (Event.Wait e) -> Printf.sprintf "W%d" e
  | Event.Sync (Event.Clear e) -> Printf.sprintf "C%d" e
  | Event.Sync Event.Fork -> "f"
  | Event.Sync Event.Join -> "j"

let add_ints buf vars =
  List.iter (fun v -> Printf.bprintf buf ",%d" v) (List.sort_uniq compare vars)

let add_edges buf tag to_canonical rel =
  let pairs =
    List.sort compare
      (List.map (fun (a, b) -> (to_canonical.(a), to_canonical.(b))) (Rel.to_pairs rel))
  in
  Printf.bprintf buf "%s %d\n" tag (List.length pairs);
  List.iter (fun (a, b) -> Printf.bprintf buf "%d %d\n" a b) pairs

let serialize (x : Execution.t) =
  let _, of_canonical = canonical_permutation x in
  let to_canonical = Array.make (Array.length of_canonical) 0 in
  Array.iteri (fun c orig -> to_canonical.(orig) <- c) of_canonical;
  let buf = Buffer.create 512 in
  Buffer.add_string buf "program_key/1\n";
  Printf.bprintf buf "n %d vars %d\n" (Array.length x.events) x.num_shared_vars;
  Buffer.add_string buf "sem";
  Array.iter (fun v -> Printf.bprintf buf " %d" v) x.sem_init;
  Buffer.add_string buf "\nbin";
  Array.iter (fun b -> Printf.bprintf buf " %b" b) x.sem_binary;
  Buffer.add_string buf "\nev";
  Array.iter (fun b -> Printf.bprintf buf " %b" b) x.ev_init;
  Buffer.add_char buf '\n';
  Array.iter
    (fun orig ->
      let e = x.events.(orig) in
      Printf.bprintf buf "e %d %d %s r" e.Event.pid e.Event.seq (kind_tag e.Event.kind);
      add_ints buf e.Event.reads;
      Buffer.add_string buf " w";
      add_ints buf e.Event.writes;
      Buffer.add_char buf '\n')
    of_canonical;
  add_edges buf "po" to_canonical x.program_order;
  add_edges buf "dep" to_canonical x.dependences;
  Buffer.contents buf

let of_execution x =
  let to_canonical, of_canonical = canonical_permutation x in
  let hash = Digest.to_hex (Digest.string (serialize x)) in
  { hash; to_canonical; of_canonical }

let hash t = t.hash

let equal a b = String.equal a.hash b.hash
