(** Canonical content hash of a program execution, for session caching.

    Two observed executions receive the same key exactly when they
    describe the same program behaviour up to {e event renumbering}:
    the key is computed from a canonical serialization in which events
    are sorted by [(pid, seq)] and every edge is expressed in those
    canonical coordinates.  The stability contract:

    - {b included}: per-event [(pid, seq, kind, reads, writes)] (access
      sets sorted), the immediate program-order edges, the shared-data
      dependence edges, the synchronization environment ([sem_init],
      [sem_binary], [ev_init]) and [num_shared_vars];
    - {b excluded}: event [id]s (any permutation yields the same key),
      human-readable labels (printing only), and the full temporal
      order [T] — the feasible set F(P) and every artifact the session
      cache stores are functions of the skeleton alone, which does not
      read [T] beyond the dependences it already induced.

    Because cached artifacts are stored in canonical coordinates, the
    key also carries the permutation between original event ids and
    canonical indices, so a result cached under one numbering can be
    decoded for a renumbered copy of the same program. *)

type t = {
  hash : string;  (** hex digest of the canonical serialization *)
  to_canonical : int array;  (** original event id -> canonical index *)
  of_canonical : int array;  (** canonical index -> original event id *)
}

val of_execution : Execution.t -> t

val hash : t -> string

val equal : t -> t -> bool
(** Key (hence program) equality: hashes compare equal. *)

val serialize : Execution.t -> string
(** The canonical serialization itself ([hash] digests this string) —
    exposed for tests that pin the renumbering-stability contract. *)
