(** Data-race detection on observed executions — the application the
    paper's conclusion points at: exhaustively detecting all data races a
    given execution could have exhibited is intractable, because it reduces
    to could-have-been-concurrent queries.

    Two notions are implemented:

    - {b apparent races}: conflicting accesses unordered by the observed
      execution's happened-before order (vector clocks over program order
      plus the observed synchronization pairing).  Polynomial; this is what
      practical detectors report.  Apparent races are neither sound nor
      complete for what could really happen concurrently.
    - {b feasible races}: conflicting accesses that are incomparable in the
      pinned order of at least one feasible program execution, where
      feasibility preserves every shared-data dependence {e except those
      between the candidate pair itself} (following the companion paper's
      treatment: the racing pair's own ordering is exactly what is in
      question).  Exponential — decided with the exact engine. *)

type race = {
  e1 : int;  (** lower event id of the conflicting pair *)
  e2 : int;  (** higher event id *)
  variables : int list;  (** shared variables the pair conflicts on *)
}

val conflicting_pairs : Execution.t -> race list
(** All pairs of conflicting computation events (the race candidates). *)

val apparent_races : Execution.t -> race list
(** Candidates unordered under the observed vector-clock happened-before. *)

val feasible_races_session : Session.t -> race list
(** Feasible races through a shared {!Session}.  Race candidates are
    each decided on a {e modified} skeleton (the pair's own dependence
    edges dropped), so they cannot ride the session's F(P) pass — what
    the session contributes is its keyed cache: the race set is stored
    under the session's {!Program_key} (in canonical event coordinates,
    so any renumbering of the program is a hit) and a warm cache skips
    the per-pair engines entirely.  Limit/jobs/telemetry come from the
    session. *)

val feasible_races :
  ?limit:int -> ?jobs:int -> ?stats:Telemetry.t -> Execution.t -> race list
(** Candidates that can race: some reachable context runs the pair
    back-to-back in both orders, with the pair's own dependence edges
    dropped from the feasibility constraints.  Decided by the memoized
    state engine ({!Reach.exists_race}) — still exponential in the worst
    case, as the paper's conclusion demands.

    The optional arguments carry the uniform semantics: [?limit] decides
    each pair by capped schedule enumeration instead (sound
    under-reporting); [?jobs] (default [1]) fans the independent per-pair
    decisions out over worker domains, results merged in candidate order
    — bit-identical to sequential, counters included, since every pair
    builds its own engines; [?stats] populates a {!Telemetry.t}. *)

val is_feasible_race :
  ?limit:int -> ?stats:Counters.t -> ?budget:Budget.t ->
  ?tier1:(Skeleton.t -> int -> int -> bool option) ->
  Execution.t -> int -> int -> bool
(** Decide a single candidate pair.  Default: the state engine
    ({!Reach.exists_race}).  With [?limit]: the enumeration reference
    path — at most [limit] schedules, testing pinned-order
    incomparability — which can only under-report; the differential
    tests cross-validate the two.  [?budget] expiry degrades the pair to
    [false] (sound under-report, bumping [timeout_expirations]) — never
    an exception.

    Under [Engine.Auto] the pair runs the triage ladder instead: the
    tier-1 oracle ([?tier1], e.g. {!Triage.race_oracle} — built fresh
    when omitted), then the state engine, the SAT backend and an
    enumeration-scale search, tiers 2–4 each under their own
    [Budget.sub] slice, escalating while the caller's budget is alive
    (counted in the [triage_*] counters). *)

val race_witness : Execution.t -> int -> int -> (int array * int array) option
(** Two feasible schedules sharing a prefix and running the pair in
    opposite orders (with the pair's own dependences dropped) — the
    interleavings to show in a race report.  [Some _] exactly when
    {!is_feasible_race}. *)

val feasible_races_session_outcome : Session.t -> race list Budget.outcome
(** {!feasible_races_session} with degradation made explicit:
    [Bound_hit] when the session budget was exhausted, meaning the list
    is a sound under-report of the feasible races. *)

val first_races_session : Session.t -> race list
(** {!first_races} over a shared session: reuses the (possibly cached)
    {!feasible_races_session} set instead of re-deciding every pair. *)

val first_races_session_outcome : Session.t -> race list Budget.outcome

val first_races :
  ?limit:int -> ?jobs:int -> ?stats:Telemetry.t -> Execution.t -> race list
(** The {e first} feasible races: those not preceded by another feasible
    race.  Race [r1] precedes [r2] when both of [r1]'s events happen before
    both of [r2]'s in the observed execution's happened-before order; a
    non-first race may be an artifact (the earlier race could have changed
    the execution before the later pair ever met), so debugging starts
    here — the refinement Netzer's later work develops. *)

val pp_race : Execution.t -> Format.formatter -> race -> unit
