type race = { e1 : int; e2 : int; variables : int list }

let conflict_variables a b =
  let vars_of e = List.sort_uniq compare (e.Event.reads @ e.Event.writes) in
  List.filter
    (fun v ->
      let writes e = List.mem v e.Event.writes in
      let touches e = List.mem v e.Event.reads || writes e in
      (writes a && touches b) || (writes b && touches a))
    (List.sort_uniq compare (vars_of a @ vars_of b))

let conflicting_pairs (x : Execution.t) =
  let events = x.Execution.events in
  let n = Array.length events in
  let races = ref [] in
  for e1 = 0 to n - 1 do
    for e2 = e1 + 1 to n - 1 do
      if
        Event.is_computation events.(e1)
        && Event.is_computation events.(e2)
        && events.(e1).Event.pid <> events.(e2).Event.pid
      then
        match conflict_variables events.(e1) events.(e2) with
        | [] -> ()
        | variables -> races := { e1; e2; variables } :: !races
    done
  done;
  List.rev !races

let apparent_races x =
  let vc = Vclock.of_execution x in
  List.filter (fun r -> Vclock.concurrent vc r.e1 r.e2) (conflicting_pairs x)

(* Feasibility with the candidate pair's own dependence edges removed: the
   pair's ordering is exactly what is in question, so requiring it to be
   preserved would beg the answer. *)
let skeleton_without_pair x e1 e2 =
  let dependences = Rel.copy x.Execution.dependences in
  Rel.remove dependences e1 e2;
  Rel.remove dependences e2 e1;
  Skeleton.of_execution { x with Execution.dependences }

(* The auto engine's per-pair ladder on a modified skeleton: the tier-1
   oracle (a po+sync-only clock plus the replay-certified prefix-enabled
   certificate — both sound on dep-dropped skeletons), then the state
   engine, the SAT backend and an enumeration-scale state search, each
   under its own [Budget.sub] slice.  A slice expiry escalates while the
   caller's budget is alive; real expiry degrades to "no race" in the
   caller's [expired] direction. *)
let auto_sat_cap = 128

let auto_is_feasible_race ~tier1 ~stats ~budget ~expired x sk e1 e2 =
  let escalate () =
    if Budget.exhausted budget then None
    else begin
      Counters.bump stats Counters.Triage_escalations;
      Some ()
    end
  in
  let reach_tier node_budget hit =
    let slice = Budget.sub budget ~node_budget () in
    let reach = Reach.create ~stats ~budget:slice sk in
    let v = try Some (Reach.exists_race reach e1 e2) with Budget.Expired -> None in
    Reach.stats_commit reach;
    Option.iter (fun _ -> Counters.bump stats hit) v;
    v
  in
  let sat_tier () =
    if sk.Skeleton.n > auto_sat_cap then None
    else begin
      let slice =
        Budget.sub budget ~conflict_budget:(Config.triage_sat_conflicts ()) ()
      in
      match Session.sat_exists_race ~stats ~budget:slice sk e1 e2 with
      | v ->
          Counters.bump stats Counters.Triage_sat_hits;
          Some v
      | exception Budget.Expired -> None
    end
  in
  let oracle = match tier1 with Some f -> f | None -> Triage.race_oracle x in
  match oracle sk e1 e2 with
  | Some v ->
      Counters.bump stats Counters.Triage_approx_hits;
      v
  | None -> (
      match escalate () with
      | None -> expired ()
      | Some () -> (
          match
            reach_tier (Config.triage_reach_nodes ()) Counters.Triage_reach_hits
          with
          | Some v -> v
          | None -> (
              match escalate () with
              | None -> expired ()
              | Some () -> (
                  match sat_tier () with
                  | Some v -> v
                  | None -> (
                      (* The SAT tier is absent past the size gate; only a
                         defeated tier counts an escalation. *)
                      match
                        if sk.Skeleton.n > auto_sat_cap then Some ()
                        else escalate ()
                      with
                      | None -> expired ()
                      | Some () -> (
                          match
                            reach_tier
                              (Config.triage_enum_nodes ())
                              Counters.Triage_enum_hits
                          with
                          | Some v -> v
                          | None -> expired ()))))))

(* One candidate pair.  Without a [limit] the memoized state engine
   decides it; with one, the reference path — capped schedule enumeration
   plus pinned-order incomparability — runs instead (the uniform [?limit]
   semantics: capped enumeration, sound under-reporting). *)
let is_feasible_race ?limit ?(stats = Counters.null)
    ?(budget = Budget.unlimited) ?tier1 x e1 e2 =
  let sk = skeleton_without_pair x e1 e2 in
  (* Budget expiry degrades a pair to "no race" — the same sound
     under-reporting direction as [?limit]'s capped enumeration. *)
  let expired () =
    Counters.bump stats Counters.Timeout_expirations;
    false
  in
  match limit with
  | None ->
      if Engine.current () = Engine.Auto then
        auto_is_feasible_race ~tier1 ~stats ~budget ~expired x sk e1 e2
      else if Engine.current () = Engine.Sat then (
        try Session.sat_exists_race ~stats ~budget sk e1 e2
        with Budget.Expired -> expired ())
      else begin
        let reach = Reach.create ~stats ~budget sk in
        let v =
          try Reach.exists_race reach e1 e2
          with Budget.Expired -> expired ()
        in
        Reach.stats_commit reach;
        v
      end
  | Some _ ->
      let found = ref false in
      let (_ : int) =
        Enumerate.iter ?limit ~stats ~budget sk (fun schedule ->
            let po = Pinned.po_of_schedule sk schedule in
            if (not (Rel.mem po e1 e2)) && not (Rel.mem po e2 e1) then begin
              found := true;
              raise Enumerate.Stop
            end)
      in
      !found

let race_witness x e1 e2 =
  Reach.race_witness (Reach.create (skeleton_without_pair x e1 e2)) e1 e2

let compute_feasible ?limit ~jobs ?stats ?(budget = Budget.unlimited) x =
  let c =
    match stats with
    | None -> Counters.null
    | Some tel ->
        Telemetry.set_run tel
          ~engine:(Engine.to_string (Engine.current ()))
          ~jobs;
        Telemetry.counters tel
  in
  Counters.time c Counters.T_total @@ fun () ->
  let candidates = Array.of_list (conflicting_pairs x) in
  (* Each candidate decision builds its own engines from scratch (the
     pair's dependence edges are dropped, so the session's shared
     skeleton does not apply), so the per-pair work is independent
     whatever [jobs] is — worker counters merge in candidate order and
     every counter (memo statistics included) is identical to the
     sequential run's. *)
  (* Under the auto engine the tier-1 devices (clock, observed replay)
     are shared across candidates: built once here, consulted by every
     per-pair decision (they are immutable after construction, so the
     parallel fan-out shares them safely). *)
  let tier1 =
    if Engine.current () = Engine.Auto then Some (Triage.race_oracle x)
    else None
  in
  let verdicts =
    Parallel.map ?telemetry:stats ~budget ~jobs
      (fun r ->
        let wc = if Counters.enabled c then Counters.create () else Counters.null in
        let v = is_feasible_race ?limit ~stats:wc ~budget ?tier1 x r.e1 r.e2 in
        (v, wc))
      candidates
  in
  Array.iter (fun (_, wc) -> Counters.merge_into ~dst:c wc) verdicts;
  List.filteri (fun i _ -> fst verdicts.(i)) (Array.to_list candidates)

(* Race sets cannot ride the session's F(P) pass — each candidate is
   decided on a *modified* skeleton — so the session serves them through
   its keyed cache instead: payloads are stored in the Program_key's
   canonical event coordinates and decoded back, which makes a cached
   set valid for any renumbering of the same program. *)
let encode_races key races =
  let tc = key.Program_key.to_canonical in
  let canon r =
    let a = tc.(r.e1) and b = tc.(r.e2) in
    ((min a b, max a b), r.variables)
  in
  let entries = List.sort compare (List.map canon races) in
  let buf = Buffer.create 128 in
  Printf.bprintf buf "races %d\n" (List.length entries);
  List.iter
    (fun ((a, b), vars) ->
      Printf.bprintf buf "%d %d" a b;
      List.iter (fun v -> Printf.bprintf buf " %d" v) vars;
      Buffer.add_char buf '\n')
    entries;
  Buffer.contents buf

(* Decoding trusts nothing: a disk payload may be truncated, corrupted,
   or written by a buggy producer.  Beyond the event-id bounds checks,
   every race line must carry a non-empty, strictly increasing list of
   non-negative variable ids on distinct events — any violation rejects
   the whole payload and the caller recomputes from scratch. *)
let valid_variables vars =
  let rec strictly_increasing = function
    | a :: (b :: _ as rest) -> a < b && strictly_increasing rest
    | [ _ ] | [] -> true
  in
  vars <> [] && List.for_all (fun v -> v >= 0) vars && strictly_increasing vars

let decode_races key payload =
  let oc = key.Program_key.of_canonical in
  let n = Array.length oc in
  match String.split_on_char '\n' payload with
  | [] -> None
  | header :: lines -> (
      match Scanf.sscanf_opt header "races %d" (fun c -> c) with
      | None -> None
      | Some count -> (
          try
            let races =
              List.filteri (fun i _ -> i < count) lines
              |> List.map (fun line ->
                     match
                       String.split_on_char ' ' line |> List.map int_of_string
                     with
                     | a :: b :: vars
                       when a >= 0 && a < n && b >= 0 && b < n && a <> b
                            && valid_variables vars ->
                         let x = oc.(a) and y = oc.(b) in
                         { e1 = min x y; e2 = max x y; variables = vars }
                     | _ -> failwith "race line")
            in
            if List.length races <> count then None
            else Some (List.sort (fun r1 r2 -> compare (r1.e1, r1.e2) (r2.e1, r2.e2)) races)
          with Failure _ -> None))

let feasible_races_session session =
  let x = Session.execution session in
  let jobs = Session.jobs session in
  let computed = ref None in
  let payload =
    Session.cached_blob session ~kind:"races" (fun () ->
        let races =
          compute_feasible ?limit:(Session.limit session) ~jobs
            ?stats:(Session.telemetry session)
            ~budget:(Session.budget session) x
        in
        computed := Some races;
        encode_races (Session.key session) races)
  in
  match !computed with
  | Some races -> races
  | None -> (
      match decode_races (Session.key session) payload with
      | Some races -> races
      | None ->
          (* Corrupt cache payload: fall back to computing fresh. *)
          compute_feasible ?limit:(Session.limit session) ~jobs
            ?stats:(Session.telemetry session)
            ~budget:(Session.budget session) x)

let feasible_races ?limit ?(jobs = 1) ?stats x =
  feasible_races_session
    (Session.of_execution ?limit ~jobs ?stats ~cache:Session.no_cache x)

(* Outcome-typed variants: a race set computed under an exhausted
   session budget is a sound under-report, not the full set. *)
let mark_outcome session races =
  if Budget.exhausted (Session.budget session) then Budget.Bound_hit races
  else Budget.Exact races

let feasible_races_session_outcome session =
  mark_outcome session (feasible_races_session session)

let first_of_feasible x races =
  let vc = Vclock.of_execution x in
  let precedes r1 r2 =
    Vclock.hb vc r1.e1 r2.e1 && Vclock.hb vc r1.e1 r2.e2
    && Vclock.hb vc r1.e2 r2.e1 && Vclock.hb vc r1.e2 r2.e2
  in
  List.filter
    (fun r -> not (List.exists (fun r' -> r' <> r && precedes r' r) races))
    races

let first_races_session session =
  first_of_feasible (Session.execution session) (feasible_races_session session)

let first_races_session_outcome session =
  mark_outcome session (first_races_session session)

let first_races ?limit ?(jobs = 1) ?stats x =
  first_of_feasible x (feasible_races ?limit ~jobs ?stats x)

let pp_race (x : Execution.t) ppf r =
  let e ppf id = Format.fprintf ppf "%s" x.Execution.events.(id).Event.label in
  Format.fprintf ppf "race between %a (event %d) and %a (event %d) on %a" e
    r.e1 r.e1 e r.e2 r.e2
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf v -> Format.fprintf ppf "v%d" v))
    r.variables
