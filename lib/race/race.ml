type race = { e1 : int; e2 : int; variables : int list }

let conflict_variables a b =
  let vars_of e = List.sort_uniq compare (e.Event.reads @ e.Event.writes) in
  List.filter
    (fun v ->
      let writes e = List.mem v e.Event.writes in
      let touches e = List.mem v e.Event.reads || writes e in
      (writes a && touches b) || (writes b && touches a))
    (List.sort_uniq compare (vars_of a @ vars_of b))

let conflicting_pairs (x : Execution.t) =
  let events = x.Execution.events in
  let n = Array.length events in
  let races = ref [] in
  for e1 = 0 to n - 1 do
    for e2 = e1 + 1 to n - 1 do
      if
        Event.is_computation events.(e1)
        && Event.is_computation events.(e2)
        && events.(e1).Event.pid <> events.(e2).Event.pid
      then
        match conflict_variables events.(e1) events.(e2) with
        | [] -> ()
        | variables -> races := { e1; e2; variables } :: !races
    done
  done;
  List.rev !races

let apparent_races x =
  let vc = Vclock.of_execution x in
  List.filter (fun r -> Vclock.concurrent vc r.e1 r.e2) (conflicting_pairs x)

(* Feasibility with the candidate pair's own dependence edges removed: the
   pair's ordering is exactly what is in question, so requiring it to be
   preserved would beg the answer. *)
let skeleton_without_pair x e1 e2 =
  let dependences = Rel.copy x.Execution.dependences in
  Rel.remove dependences e1 e2;
  Rel.remove dependences e2 e1;
  Skeleton.of_execution { x with Execution.dependences }

(* One candidate pair.  Without a [limit] the memoized state engine
   decides it; with one, the reference path — capped schedule enumeration
   plus pinned-order incomparability — runs instead (the uniform [?limit]
   semantics: capped enumeration, sound under-reporting). *)
let is_feasible_race ?limit ?(stats = Counters.null) x e1 e2 =
  let sk = skeleton_without_pair x e1 e2 in
  match limit with
  | None ->
      let reach = Reach.create ~stats sk in
      let v = Reach.exists_race reach e1 e2 in
      Reach.stats_commit reach;
      v
  | Some _ ->
      let found = ref false in
      let (_ : int) =
        Enumerate.iter ?limit ~stats sk (fun schedule ->
            let po = Pinned.po_of_schedule sk schedule in
            if (not (Rel.mem po e1 e2)) && not (Rel.mem po e2 e1) then begin
              found := true;
              raise Enumerate.Stop
            end)
      in
      !found

let race_witness x e1 e2 =
  Reach.race_witness (Reach.create (skeleton_without_pair x e1 e2)) e1 e2

let feasible_races ?limit ?(jobs = 1) ?stats x =
  let c =
    match stats with
    | None -> Counters.null
    | Some tel ->
        Telemetry.set_run tel
          ~engine:(Engine.to_string (Engine.current ()))
          ~jobs;
        Telemetry.counters tel
  in
  Counters.time c Counters.T_total @@ fun () ->
  let candidates = Array.of_list (conflicting_pairs x) in
  (* Each candidate decision builds its own engines from scratch, so the
     per-pair work is independent whatever [jobs] is — worker counters
     merge in candidate order and every counter (memo statistics
     included) is identical to the sequential run's. *)
  let verdicts =
    Parallel.map ?telemetry:stats ~jobs
      (fun r ->
        let wc = if Counters.enabled c then Counters.create () else Counters.null in
        let v = is_feasible_race ?limit ~stats:wc x r.e1 r.e2 in
        (v, wc))
      candidates
  in
  Array.iter (fun (_, wc) -> Counters.merge_into ~dst:c wc) verdicts;
  List.filteri (fun i _ -> fst verdicts.(i)) (Array.to_list candidates)

let first_races ?limit ?jobs ?stats x =
  let races = feasible_races ?limit ?jobs ?stats x in
  let vc = Vclock.of_execution x in
  let precedes r1 r2 =
    Vclock.hb vc r1.e1 r2.e1 && Vclock.hb vc r1.e1 r2.e2
    && Vclock.hb vc r1.e2 r2.e1 && Vclock.hb vc r1.e2 r2.e2
  in
  List.filter
    (fun r -> not (List.exists (fun r' -> r' <> r && precedes r' r) races))
    races

let pp_race (x : Execution.t) ppf r =
  let e ppf id = Format.fprintf ppf "%s" x.Execution.events.(id).Event.label in
  Format.fprintf ppf "race between %a (event %d) and %a (event %d) on %a" e
    r.e1 r.e1 e r.e2 r.e2
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf v -> Format.fprintf ppf "v%d" v))
    r.variables
