let base_po sk =
  let r = Rel.create sk.Skeleton.n in
  for b = 0 to sk.Skeleton.n - 1 do
    List.iter (fun a -> Rel.add r a b) sk.Skeleton.po_preds.(b)
  done;
  Rel.transitive_closure_in_place r;
  r

let sem_ops (sk : Skeleton.t) schedule =
  (* Per semaphore: V events and P events in schedule order. *)
  let n_sems = Array.length sk.Skeleton.sem_init in
  let vs = Array.make n_sems [] in
  let ps = Array.make n_sems [] in
  Array.iter
    (fun e ->
      match sk.Skeleton.kinds.(e) with
      | Event.Sync (Event.Sem_v s) -> vs.(s) <- vs.(s) @ [ e ]
      | Event.Sync (Event.Sem_p s) -> ps.(s) <- ps.(s) @ [ e ]
      | _ -> ())
    schedule;
  (vs, ps)

let phase1 sk schedule =
  let r = base_po sk in
  let vs, ps = sem_ops sk schedule in
  Array.iteri
    (fun s vlist ->
      let init = sk.Skeleton.sem_init.(s) in
      (* The k-th P (0-indexed) pairs with the (k - init)-th V. *)
      List.iteri
        (fun k p ->
          if k >= init then
            match List.nth_opt vlist (k - init) with
            | Some v -> Rel.add r v p
            | None -> ())
        ps.(s))
    vs;
  Rel.transitive_closure_in_place r;
  r

(* One application of the counting rule over the current safe relation:
   for each P event [p] that still needs [r] tokens, if exactly [r]
   same-semaphore V events can possibly precede it, all of them must. *)
let counting_round sk (vs, ps) safe =
  let changed = ref false in
  Array.iteri
    (fun s vlist ->
      let init = sk.Skeleton.sem_init.(s) in
      List.iter
        (fun p ->
          let forced_ps =
            List.length (List.filter (fun p' -> Rel.mem safe p' p) ps.(s))
          in
          let needed = forced_ps + 1 - init in
          if needed > 0 then begin
            let candidates =
              List.filter (fun v -> not (Rel.mem safe p v)) vlist
            in
            if List.length candidates <= needed then
              List.iter
                (fun v ->
                  if not (Rel.mem safe v p) then begin
                    Rel.add safe v p;
                    changed := true
                  end)
                candidates
          end)
        ps.(s))
    vs;
  if !changed then Rel.transitive_closure_in_place safe;
  !changed

type t = { phase1 : Rel.t; phase2 : Rel.t; phase3 : Rel.t }

let compute sk schedule =
  let p1 = phase1 sk schedule in
  let ops = sem_ops sk schedule in
  let p2 = base_po sk in
  let (_ : bool) = counting_round sk ops p2 in
  let p3 = Rel.copy p2 in
  let rec fixpoint () = if counting_round sk ops p3 then fixpoint () in
  fixpoint ();
  { phase1 = p1; phase2 = p2; phase3 = p3 }

let of_execution x =
  compute (Skeleton.of_execution x) (Execution.schedule_of_temporal x)

let safe_subset_of_phase3 t = Rel.subset t.phase2 t.phase3

let mhb_decider t =
  Approx.make ~name:"hmw_phase3" ~relation:"mhb" ~direction:Approx.Positive
    (fun a b ->
      if a <> b && Rel.mem t.phase3 a b then Approx.Proved else Approx.Unknown)
