exception Unsupported of string

(* Guard trees express how control reaches a statement: [Or] for
   alternatives (branches of an [if]), [And] for conjunctions (all branches
   of a [cobegin] completed at the join), [Leaf] for "after this statement".
   The guaranteed-predecessor set of a tree is
     eval(Leaf p)  = GP(p) ∪ {p}
     eval(And ts)  = ∪ eval(t)
     eval(Or ts)   = ∩ eval(t)
     eval(True)    = ∅. *)
type tree = True | Leaf of int | And of tree list | Or of tree list

type kind = Plain | Wait_on of string | Post_on of string

type info = { label : string; proc_path : string; kind : kind }

type t = {
  infos : info array;
  gp : Bitset.t array;
}

(* ------------------------------------------------------------------ *)
(* Compilation: AST -> statement instances with guard trees            *)
(* ------------------------------------------------------------------ *)

type compiling = {
  mutable stmts : (info * tree) list;  (* reversed *)
  mutable count : int;
}

let fresh c ~label ~proc_path ~kind ~preds =
  let id = c.count in
  c.count <- id + 1;
  c.stmts <- ({ label; proc_path; kind }, preds) :: c.stmts;
  id

let rec compile_block c ~path ~preds stmts =
  List.fold_left (fun preds s -> compile_stmt c ~path ~preds s) preds stmts

and compile_stmt c ~path ~preds stmt =
  let plain label =
    Leaf (fresh c ~label ~proc_path:path ~kind:Plain ~preds)
  in
  match stmt with
  | Ast.Skip None -> plain "skip"
  | Ast.Skip (Some l) -> plain l
  | Ast.Assign (x, e) -> plain (Format.asprintf "%s := %a" x Expr.pp e)
  | Ast.Post v ->
      Leaf
        (fresh c
           ~label:(Printf.sprintf "Post(%s)" v)
           ~proc_path:path ~kind:(Post_on v) ~preds)
  | Ast.Wait v ->
      Leaf
        (fresh c
           ~label:(Printf.sprintf "Wait(%s)" v)
           ~proc_path:path ~kind:(Wait_on v) ~preds)
  | Ast.Assert e -> plain (Format.asprintf "assert %a" Expr.pp e)
  | Ast.Clear _ -> raise (Unsupported "Clear is outside the analysed fragment")
  | Ast.Sem_p _ | Ast.Sem_v _ ->
      raise (Unsupported "semaphores are outside the analysed fragment")
  | Ast.While _ -> raise (Unsupported "loops are outside the analysed fragment")
  | Ast.If (cond, then_b, else_b) ->
      let cond_id =
        fresh c
          ~label:(Format.asprintf "if %a" Expr.pp cond)
          ~proc_path:path ~kind:Plain ~preds
      in
      let exit_t = compile_block c ~path ~preds:(Leaf cond_id) then_b in
      let exit_e = compile_block c ~path ~preds:(Leaf cond_id) else_b in
      Or [ exit_t; exit_e ]
  | Ast.Cobegin branches ->
      let fork_id = fresh c ~label:"fork" ~proc_path:path ~kind:Plain ~preds in
      let exits =
        List.mapi
          (fun i branch ->
            compile_block c
              ~path:(Printf.sprintf "%s/%d" path i)
              ~preds:(Leaf fork_id) branch)
          branches
      in
      Leaf
        (fresh c ~label:"join" ~proc_path:path ~kind:Plain
           ~preds:(And (Leaf fork_id :: exits)))

(* ------------------------------------------------------------------ *)
(* Dataflow                                                            *)
(* ------------------------------------------------------------------ *)

let analyze (program : Ast.t) =
  let c = { stmts = []; count = 0 } in
  List.iter
    (fun (p : Ast.proc) ->
      let (_ : tree) =
        compile_block c ~path:p.Ast.name ~preds:True p.Ast.body
      in
      ())
    program.Ast.procs;
  let stmts = Array.of_list (List.rev c.stmts) in
  let n = Array.length stmts in
  let infos = Array.map fst stmts in
  let trees = Array.map snd stmts in
  let gp = Array.init n (fun _ -> Bitset.create n) in
  let posts_of v =
    List.filter
      (fun s -> infos.(s).kind = Post_on v)
      (List.init n Fun.id)
  in
  let ev_initially_set v = List.assoc_opt v program.Ast.ev_init = Some true in
  let with_self s =
    let set = Bitset.copy gp.(s) in
    Bitset.add set s;
    set
  in
  let rec eval = function
    | True -> Bitset.create n
    | Leaf p -> with_self p
    | And ts ->
        let acc = Bitset.create n in
        List.iter (fun t -> Bitset.union_into acc (eval t)) ts;
        acc
    | Or [] -> Bitset.create n
    | Or (t :: ts) ->
        let acc = eval t in
        List.iter (fun t -> Bitset.inter_into acc (eval t)) ts;
        acc
  in
  let changed = ref true in
  while !changed do
    changed := false;
    for s = 0 to n - 1 do
      let next = eval trees.(s) in
      (match infos.(s).kind with
      | Wait_on v when not (ev_initially_set v) -> (
          match posts_of v with
          | [] ->
              (* The wait can never proceed: vacuous, claim everything. *)
              Bitset.fill next;
              Bitset.remove next s
          | p :: ps ->
              let triggers = with_self p in
              List.iter (fun p -> Bitset.inter_into triggers (with_self p)) ps;
              Bitset.union_into next triggers)
      | _ -> ());
      if not (Bitset.equal next gp.(s)) then begin
        gp.(s) <- next;
        changed := true
      end
    done
  done;
  { infos; gp }

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

let statements t =
  Array.to_list
    (Array.mapi
       (fun i info -> (i, Printf.sprintf "%s: %s" info.proc_path info.label))
       t.infos)

let guaranteed_before t a b =
  a <> b
  && a >= 0 && b >= 0
  && a < Array.length t.infos
  && b < Array.length t.infos
  && Bitset.mem t.gp.(b) a

let guaranteed_rel t =
  let n = Array.length t.infos in
  let r = Rel.create n in
  for b = 0 to n - 1 do
    Bitset.iter (fun a -> if a <> b then Rel.add r a b) t.gp.(b)
  done;
  r

let claims_on_trace t (trace : Trace.t) =
  (* Match statements to events by (process path, label), skipping
     ambiguous keys on either side. *)
  let key_of_event (e : Event.t) =
    match List.assoc_opt e.Event.pid trace.Trace.process_names with
    | Some name -> Some (name, e.Event.label)
    | None -> None
  in
  let event_table = Hashtbl.create 64 in
  Array.iter
    (fun e ->
      match key_of_event e with
      | Some key ->
          Hashtbl.replace event_table key
            (e.Event.id :: (try Hashtbl.find event_table key with Not_found -> []))
      | None -> ())
    trace.Trace.events;
  let stmt_table = Hashtbl.create 64 in
  Array.iteri
    (fun s info ->
      let key = (info.proc_path, info.label) in
      Hashtbl.replace stmt_table key
        (s :: (try Hashtbl.find stmt_table key with Not_found -> [])))
    t.infos;
  let event_of_stmt s =
    let info = t.infos.(s) in
    let key = (info.proc_path, info.label) in
    match (Hashtbl.find_opt stmt_table key, Hashtbl.find_opt event_table key) with
    | Some [ _ ], Some [ e ] -> Some e
    | _ -> None
  in
  let n = Array.length t.infos in
  let claims = ref [] in
  for b = 0 to n - 1 do
    Bitset.iter
      (fun a ->
        if a <> b then
          match (event_of_stmt a, event_of_stmt b) with
          | Some ea, Some eb -> claims := (ea, eb) :: !claims
          | _ -> ())
      t.gp.(b)
  done;
  List.rev !claims

let mhb_decider t trace =
  let claimed = Hashtbl.create 64 in
  List.iter
    (fun (a, b) -> Hashtbl.replace claimed (a, b) ())
    (claims_on_trace t trace);
  Approx.make ~name:"static_order" ~relation:"mhb"
    ~direction:Approx.Positive (fun a b ->
      if a <> b && Hashtbl.mem claimed (a, b) then Approx.Proved
      else Approx.Unknown)
