(** Scalar Lamport clocks over one observed execution.

    The cheaper cousin of {!Vclock}: one integer per event, consistent with
    the observed happened-before order ([hb a b] implies
    [timestamp a < timestamp b]) but not complete — incomparable timestamps
    prove nothing.  Included as the baseline ordering device the vector
    clock refines. *)

type t

val compute : Skeleton.t -> int array -> t

val of_execution : Execution.t -> t
(** See {!Vclock.of_execution}; same schedule-recovery rules. *)

val timestamp : t -> int -> int

val consistent_with : t -> Rel.t -> bool
(** [consistent_with t hb]: every pair of [hb] increases the timestamp —
    the Lamport-clock correctness condition. *)

val observed_hb_refuter : t -> Approx.decider
(** The baseline device under the uniform interface, in the one
    direction a scalar clock is sound for: [timestamp a >= timestamp b]
    refutes observed happened-before (its necessary condition fails);
    [timestamp a < timestamp b] proves nothing ([Unknown]).  Speaks
    about the {e observed} order only — it is not wired into the triage
    ladder, but the differential suite checks it against the recorded
    temporal relation like every other decider. *)
