type t = { stamps : int array }

let compute (sk : Skeleton.t) schedule =
  let n = sk.Skeleton.n in
  let preds = Array.make n [] in
  for e = 0 to n - 1 do
    List.iter (fun p -> preds.(e) <- p :: preds.(e)) sk.Skeleton.po_preds.(e)
  done;
  List.iter (fun (a, b) -> preds.(b) <- a :: preds.(b))
    (Pinned.sync_edges sk schedule);
  let stamps = Array.make n 0 in
  Array.iter
    (fun e ->
      let m = List.fold_left (fun acc p -> max acc stamps.(p)) 0 preds.(e) in
      stamps.(e) <- m + 1)
    schedule;
  { stamps }

let of_execution x =
  compute (Skeleton.of_execution x) (Execution.schedule_of_temporal x)

let timestamp t e = t.stamps.(e)

let consistent_with t hb =
  let ok = ref true in
  Rel.iter (fun a b -> if t.stamps.(a) >= t.stamps.(b) then ok := false) hb;
  !ok

let observed_hb_refuter t =
  Approx.make ~name:"lamport" ~relation:"observed_hb"
    ~direction:Approx.Negative (fun a b ->
      if timestamp t a >= timestamp t b then Approx.Refuted
      else Approx.Unknown)
