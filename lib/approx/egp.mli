(** The Emrath–Ghosh–Padua task graph ("Event Synchronization Analysis for
    Debugging Parallel Programs", Supercomputing '89), as described in
    Netzer–Miller Section 4 — the guaranteed-run-time-ordering method for
    fork/join + Post/Wait/Clear programs whose blind spot Figure 1
    exhibits.

    The graph has one node per {e synchronization} event.  Edges:

    - {b machine edges} between consecutive synchronization events of the
      same process, and {b task start/end edges} from a fork to the first
      synchronization event of each child and from the last one to the
      matching join (both obtained here by contracting computation events
      out of the recorded program order);
    - {b synchronization edges}: for each [Wait] node, every [Post] on the
      same event variable that might have triggered it is identified — a
      [Post] might trigger a [Wait] unless there is a path from the [Wait]
      to the [Post], or a path from the [Post] to the [Wait] through a
      [Clear] of the same variable.  An edge is added from each closest
      common ancestor of the candidate [Post]s to the [Wait].  The
      construction iterates until no new edge appears (added edges can
      disqualify candidates).

    Two events are guaranteed ordered iff the graph has a path between
    their nodes (computation events inherit the verdict of their
    neighbouring synchronization events via program order).  Because the
    method never looks at shared-data dependences, it misses orderings the
    exact engine proves — {!Examples.figure1} reproduces the paper's
    example. *)

type t

val build : Execution.t -> t
(** Builds the task graph from the observed execution (program order and
    event kinds only; [T] beyond program order and [D] are ignored —
    faithfully to the method under study). *)

val graph : t -> Digraph.t
(** The task graph over synchronization-node indices. *)

val node_of_event : t -> int -> int option
(** Graph node of a synchronization event ([None] for computation events). *)

val event_of_node : t -> int -> int

val guaranteed_before : t -> int -> int -> bool
(** [guaranteed_before t a b]: does the method claim that event [a] is
    ordered before event [b] in every execution?  Computation events are
    resolved through their program-order closure: [a] is before [b] if some
    sync event at-or-after [a] (same process) reaches one at-or-before [b].
    For two events of the same process this is just program order. *)

val guaranteed_rel : t -> Rel.t
(** The full claimed ordering over events. *)

val sync_edge_count : t -> int
(** Number of synchronization edges added (for reporting). *)

val sync_edges : t -> (int * int) list
(** The added synchronization edges, as event-id pairs. *)

val mhb_decider : t -> Approx.decider
(** {!guaranteed_before} under the uniform interface: a claimed
    ordering is [Proved] must-have-happened-before; everything else is
    [Unknown] — the method's blind spot (Figure 1) lives entirely on
    the [Unknown] side. *)
