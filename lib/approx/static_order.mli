(** Static guaranteed-execution-order analysis, in the spirit of Callahan
    and Subhlok ("Static Analysis of Low-Level Synchronization", PADD 1988)
    — the related work of Section 4 that reasons about {e all} executions of
    a program from its text alone, with no observed trace.

    Scope: loop-free programs using fork/join ([cobegin]) and [Post]/[Wait]
    (no [Clear] — exactly the fragment Callahan–Subhlok treat; they prove
    the exact problem co-NP-hard even there).  Semaphores and [while] are
    rejected; [if] is handled by considering both branches possible.

    The analysis computes, for every static statement instance [s], the set
    [GP(s)] of statement instances guaranteed to have completed before [s]
    begins, in {e every} execution in which [s] executes:

    - sequential composition: the previous statement and its guarantees;
    - [cobegin]: each branch starts with the fork's guarantees; the join
      collects every branch's guarantees;
    - [Wait(e)]: the intersection over all [Post(e)] statements [p] of
      [GP(p) ∪ {p}] — any of the posts might be the trigger, so only what
      all of them guarantee is guaranteed (plus the posts' common
      guarantees); when the program has exactly one [Post(e)], this yields
      the post itself;
    - [if]: a statement after the conditional is guaranteed only what both
      branches guarantee; statements inside a branch see the condition's
      guarantees.

    The result is a sound under-approximation of the must-have-happened-
    before relation restricted to the events that actually execute — the
    property tests check [claims ⊆ exact MHB] on the observed traces of
    random programs. *)

type t

exception Unsupported of string
(** Raised by {!analyze} on loops, semaphores or [Clear]. *)

val analyze : Ast.t -> t

val statements : t -> (int * string) list
(** The static statement instances: dense ids with printable descriptions
    (in textual order). *)

val guaranteed_before : t -> int -> int -> bool
(** [guaranteed_before t a b]: is statement [a] guaranteed to complete
    before statement [b] begins in every execution where both run? *)

val guaranteed_rel : t -> Rel.t

val claims_on_trace : t -> Trace.t -> (int * int) list
(** Projects the static claims onto the events of an observed trace of the
    same program: pairs of event ids [(ea, eb)] such that the statically
    matched statements are claimed ordered.  Events are matched to
    statements by label and process path; events with no static counterpart
    (else-branches not taken, etc.) are skipped. *)

val mhb_decider : t -> Trace.t -> Approx.decider
(** {!claims_on_trace} under the uniform interface, over the event ids
    of the given trace: a statically claimed ordering is [Proved]
    must-have-happened-before; unmatched events and unclaimed pairs are
    [Unknown]. *)
