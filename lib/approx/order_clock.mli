(** Vector clocks over {e forced} orderings — the scalable sound-positive
    MHB device behind the auto engine's first tier.

    {!Vclock} is exact for the observed execution but unsafe as an MHB
    approximation: it trusts the synchronization pairing the run
    happened to exhibit.  This clock only propagates orderings that
    {e every} feasible schedule of the same events must exhibit:

    - program order (condition F2), and optionally the recorded
      shared-data dependences (condition F3 — include them for queries
      about the program's executions; exclude them for race queries,
      whose modified skeleton drops the candidate pair's edges);
    - forced synchronization edges read off supplier uniqueness: a
      semaphore starting at 0 whose {e only} V must precede every P on
      it, and an event variable starting false with exactly one Post
      and no Clear, whose Post must precede every Wait.

    Consequently [ordered t a b] ⇒ [a] precedes [b] in every feasible
    schedule — sound for MHB, for refuting could-have-been-concurrent,
    and (given a feasibility witness) for deciding could-happen-before
    in both directions.  The device is linear-time in events times
    processes (one flat int matrix, one id-order pass), which is what
    lets the race triage over a million-event trace stay in tier 1.

    [build] returns [None] when the device does not apply: event ids
    not topologically ordered by the enforced edges, a process whose
    events the edges do not totally order, or a clock matrix over the
    memory gate.  Callers treat [None] as every-pair-[Unknown]. *)

type t

val build :
  pids:int array ->
  kinds:Event.kind array ->
  po_preds:(int -> int list) ->
  ?extra_preds:(int -> int list) ->
  sem_init:int array ->
  sem_binary:bool array ->
  ev_init:bool array ->
  unit ->
  t option
(** Array-level constructor shared by the skeleton path and the
    columnar big-trace path.  [po_preds]/[extra_preds] give immediate
    predecessor ids per event; every edge must go forward in id
    order. *)

val of_skeleton : ?with_deps:bool -> Skeleton.t -> t option
(** [with_deps] (default [true]): include the recorded shared-data
    dependences as enforced edges. *)

val ordered : t -> int -> int -> bool
(** [ordered t a b]: [a] provably precedes [b] in every feasible
    schedule.  Irreflexive; [false] means unknown, not refuted. *)

val mhb_decider : t -> Approx.decider
(** The device under the uniform interface: [Proved] iff {!ordered}. *)
