type t = {
  n : int;
  pid_of : int array;
  clocks : int array array;  (* per event, indexed by pid *)
}

let compute (sk : Skeleton.t) schedule =
  let events = sk.Skeleton.execution.Execution.events in
  let n = sk.Skeleton.n in
  let n_pids =
    1 + Array.fold_left (fun acc e -> max acc e.Event.pid) (-1) events
  in
  let pid_of = Array.map (fun e -> e.Event.pid) events in
  let clocks = Array.make n [||] in
  (* Incoming edges that transport clock values: program order plus the
     synchronization pairings realized by this schedule.  Shared-data
     dependences are deliberately excluded: vector clocks track
     synchronization, not data flow. *)
  let preds = Array.make n [] in
  for e = 0 to n - 1 do
    List.iter (fun p -> preds.(e) <- p :: preds.(e)) sk.Skeleton.po_preds.(e)
  done;
  List.iter (fun (a, b) -> preds.(b) <- a :: preds.(b))
    (Pinned.sync_edges sk schedule);
  Array.iter
    (fun e ->
      let clock = Array.make n_pids 0 in
      List.iter
        (fun p ->
          let pc = clocks.(p) in
          for i = 0 to n_pids - 1 do
            if pc.(i) > clock.(i) then clock.(i) <- pc.(i)
          done)
        preds.(e);
      clock.(pid_of.(e)) <- clock.(pid_of.(e)) + 1;
      clocks.(e) <- clock)
    schedule;
  { n; pid_of; clocks }

let of_execution (x : Execution.t) =
  compute (Skeleton.of_execution x) (Execution.schedule_of_temporal x)

let clock t e = t.clocks.(e)

let hb t a b =
  a <> b && t.clocks.(a).(t.pid_of.(a)) <= t.clocks.(b).(t.pid_of.(a))

let concurrent t a b = a <> b && (not (hb t a b)) && not (hb t b a)

let hb_rel t =
  let r = Rel.create t.n in
  for a = 0 to t.n - 1 do
    for b = 0 to t.n - 1 do
      if hb t a b then Rel.add r a b
    done
  done;
  r

let chb_decider t =
  Approx.make ~name:"vclock" ~relation:"chb" ~direction:Approx.Positive
    (fun a b -> if hb t a b then Approx.Proved else Approx.Unknown)
