(** Safe orderings for semaphore traces, after Helmbold, McDowell and Wang
    ("Analyzing Traces with Anonymous Synchronization", ICPP 1990) — the
    polynomial-time must-have-happened-before approximation the paper's
    Section 4 discusses.

    Substitution note (see DESIGN.md): the HMW paper's exact pseudocode is
    not available in this reproduction environment, so the three phases are
    reconstructed from the description in Netzer–Miller Section 4, with the
    counting argument made explicit:

    - {b Phase 1 (pairing)}: order the i-th [V] of each semaphore before the
      i-th [P] (trace order), union intra-process order, close
      transitively.  {e Unsafe}: another execution of the same events may
      pair the operations differently.
    - {b Phase 2 (conservative)}: keep only orderings forced by token
      counting, computed from intra-process order alone: a [P] event [p]
      needing its [r]-th token is preceded by [v] whenever fewer than [r]
      same-semaphore [V]s could possibly avoid preceding [p].  Safe but
      coarse.
    - {b Phase 3 (sharpened)}: iterate the phase-2 counting rule to a
      fixpoint over the growing safe relation, so orderings derived in one
      round force more in the next.

    The key guarantee — verified by property tests against the exact
    engine — is that phases 2 and 3 are {e safe}: every ordering they claim
    is in the exact MHB relation.  Phase 1 is not, and the test suite pins a
    concrete counterexample.

    All three phases ignore shared-data dependences and [Post/Wait/Clear]
    operations; they analyse the semaphore skeleton only (intra-process
    program order is always included). *)

type t = {
  phase1 : Rel.t;  (** pairing-based happened-before (unsafe) *)
  phase2 : Rel.t;  (** conservative safe orderings *)
  phase3 : Rel.t;  (** sharpened safe orderings (fixpoint) *)
}

val compute : Skeleton.t -> int array -> t
(** [compute sk schedule]: [schedule] (the observed total order) matters
    only to phase 1's pairing; phases 2 and 3 depend on the event set and
    program order alone. *)

val of_execution : Execution.t -> t

val safe_subset_of_phase3 : t -> bool
(** [phase2 ⊆ phase3] — monotonicity of sharpening (cheap invariant). *)

val mhb_decider : t -> Approx.decider
(** Phase 3 under the uniform interface: a claimed ordering is [Proved]
    must-have-happened-before (the safe direction the property tests
    pin); everything else is [Unknown].  Phases 2/3 only ever use
    program order plus semaphore counting, so their claims stay sound
    on skeletons with additional synchronization or dependence
    constraints (more constraints only shrink the feasible set). *)
