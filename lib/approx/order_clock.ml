(* Sound vector clocks over forced orderings only.  See order_clock.mli. *)

type t = {
  nprocs : int;
  pid_ix : int array; (* event -> dense process index *)
  lidx : int array; (* event -> program-order rank within its process *)
  clocks : int array; (* flat [n * nprocs] row per event *)
}

(* Memory gate: the flat clock matrix must stay modest even on
   million-event traces (16 processes * 10^6 events = 128 MB of ints). *)
let max_cells = 40_000_000

exception Inapplicable

(* Forced synchronization edges — orderings every feasible schedule of
   the same events must exhibit, read off uniqueness of the supplier:
   - a semaphore starting at 0 whose only V must precede every P on it
     (binary or counting alike: there is no other token source);
   - an event variable starting false with exactly one Post and no
     Clear: the Post must precede every Wait (nothing else can set the
     flag, and nothing ever unsets it). *)
let forced_preds ~kinds ~sem_init ~sem_binary:_ ~ev_init =
  let n = Array.length kinds in
  let n_sems = Array.length sem_init in
  let n_evs = Array.length ev_init in
  let sem_vs = Array.make n_sems [] in
  let sem_ps = Array.make n_sems [] in
  let ev_posts = Array.make n_evs [] in
  let ev_waits = Array.make n_evs [] in
  let ev_clears = Array.make n_evs 0 in
  for e = 0 to n - 1 do
    match kinds.(e) with
    | Event.Sync (Event.Sem_v s) -> sem_vs.(s) <- e :: sem_vs.(s)
    | Event.Sync (Event.Sem_p s) -> sem_ps.(s) <- e :: sem_ps.(s)
    | Event.Sync (Event.Post v) -> ev_posts.(v) <- e :: ev_posts.(v)
    | Event.Sync (Event.Wait v) -> ev_waits.(v) <- e :: ev_waits.(v)
    | Event.Sync (Event.Clear v) -> ev_clears.(v) <- ev_clears.(v) + 1
    | _ -> ()
  done;
  let preds = Array.make n [] in
  Array.iteri
    (fun s vs ->
      match (sem_init.(s), vs) with
      | 0, [ v ] -> List.iter (fun p -> preds.(p) <- v :: preds.(p)) sem_ps.(s)
      | _ -> ())
    sem_vs;
  Array.iteri
    (fun v posts ->
      match (ev_init.(v), posts, ev_clears.(v)) with
      | false, [ p ], 0 ->
          List.iter (fun w -> preds.(w) <- p :: preds.(w)) ev_waits.(v)
      | _ -> ())
    ev_posts;
  preds

let build ~pids ~kinds ~po_preds ?extra_preds ~sem_init ~sem_binary ~ev_init ()
    =
  let n = Array.length pids in
  try
    (* Dense process indices. *)
    let pid_map = Hashtbl.create 16 in
    let pid_ix = Array.make n 0 in
    let nprocs = ref 0 in
    for e = 0 to n - 1 do
      pid_ix.(e) <-
        (match Hashtbl.find_opt pid_map pids.(e) with
        | Some i -> i
        | None ->
            let i = !nprocs in
            Hashtbl.add pid_map pids.(e) i;
            incr nprocs;
            i)
    done;
    let np = max 1 !nprocs in
    if n * np > max_cells then raise Inapplicable;
    let forced = forced_preds ~kinds ~sem_init ~sem_binary ~ev_init in
    (* Event ids must be a topological order of the enforced edges (true
       of any recorded trace: ids are assigned in execution order). *)
    let fwd p e = if p >= e then raise Inapplicable in
    let lidx = Array.make n 0 in
    let next_lidx = Array.make np 0 in
    let clocks = Array.make (n * np) 0 in
    for e = 0 to n - 1 do
      let base = e * np in
      let join p =
        fwd p e;
        let pb = p * np in
        for i = 0 to np - 1 do
          let v = Array.unsafe_get clocks (pb + i) in
          if v > Array.unsafe_get clocks (base + i) then
            Array.unsafe_set clocks (base + i) v
        done
      in
      List.iter join (po_preds e);
      (match extra_preds with
      | Some f -> List.iter join (f e)
      | None -> ());
      List.iter join forced.(e);
      let pi = pid_ix.(e) in
      lidx.(e) <- next_lidx.(pi);
      next_lidx.(pi) <- next_lidx.(pi) + 1;
      (* Soundness of the per-process clock component requires each
         process's events to be totally ordered by the enforced edges;
         after the join, the own component must already count every
         earlier same-process event. *)
      if clocks.(base + pi) <> lidx.(e) then raise Inapplicable;
      clocks.(base + pi) <- lidx.(e) + 1
    done;
    Some { nprocs = np; pid_ix; lidx; clocks }
  with Inapplicable -> None

let ordered t a b =
  a <> b && t.clocks.((b * t.nprocs) + t.pid_ix.(a)) >= t.lidx.(a) + 1

let of_skeleton ?(with_deps = true) (sk : Skeleton.t) =
  let pids = Array.map (fun e -> e.Event.pid) sk.Skeleton.execution.events in
  build ~pids ~kinds:sk.Skeleton.kinds
    ~po_preds:(fun e -> sk.Skeleton.po_preds.(e))
    ?extra_preds:
      (if with_deps then Some (fun e -> sk.Skeleton.dep_preds.(e)) else None)
    ~sem_init:sk.Skeleton.sem_init ~sem_binary:sk.Skeleton.sem_binary
    ~ev_init:sk.Skeleton.ev_init ()

let mhb_decider t =
  Approx.make ~name:"order_clock" ~relation:"mhb" ~direction:Approx.Positive
    (fun a b -> if ordered t a b then Approx.Proved else Approx.Unknown)
