(** Vector clocks over one observed execution.

    The classic polynomial-time device: each event carries one counter per
    process, and [hb a b] decides in O(1) whether [a] happened before [b]
    {e in the observed execution} — that is, under the program order plus
    the synchronization pairings the run actually exhibited.

    This is the modern race-detector (TSan-style) ordering.  With respect to
    the paper's relations it is exact for the {e observed} class but unsafe
    as an approximation of MHB: another feasible execution may pair the
    semaphore operations differently (Section 4's criticism of
    Helmbold–McDowell–Wang's first phase).  The test suite exhibits the
    witness. *)

type t

val compute : Skeleton.t -> int array -> t
(** [compute sk schedule] assigns clocks along a feasible schedule.  The
    synchronization pairing is read off the schedule exactly as in
    {!Pinned.sync_edges}. *)

val of_execution : Execution.t -> t
(** Clocks for the observed execution: the schedule is recovered from the
    (total) temporal order.  Raises [Invalid_argument] when the execution's
    temporal order is not total. *)

val clock : t -> int -> int array
(** The vector clock of an event (indexed by pid). *)

val hb : t -> int -> int -> bool
(** [hb t a b]: did [a] happen before [b] in the observed execution?
    Irreflexive. *)

val concurrent : t -> int -> int -> bool
(** Neither [hb a b] nor [hb b a]. *)

val hb_rel : t -> Rel.t
(** The whole happened-before relation as a matrix (for tests: it must equal
    the transitive closure of program order plus the schedule's
    synchronization edges). *)

val chb_decider : t -> Approx.decider
(** The device under the uniform interface, in the one direction the
    clock is sound for: [hb a b] under clocks computed along a feasible
    schedule ⇒ that schedule runs [a] before [b] ⇒ could-happen-before
    holds ([Proved]).  Never refutes — unordered-by-VC says nothing
    about other feasible executions (the unsafe direction the module
    documentation warns about). *)
