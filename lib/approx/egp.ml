type t = {
  n_events : int;
  node_of_event : int option array;
  event_of_node : int array;
  graph : Digraph.t;  (* over sync nodes *)
  event_graph : Digraph.t;  (* over all events: po edges + sync edges *)
  sync_edges : (int * int) list;  (* event-level synchronization edges *)
}

let is_sync_kind = function Event.Sync _ -> true | Event.Computation -> false

let var_of = function
  | Event.Sync (Event.Post v) -> Some (`Post v)
  | Event.Sync (Event.Wait v) -> Some (`Wait v)
  | Event.Sync (Event.Clear v) -> Some (`Clear v)
  | _ -> None

let build (x : Execution.t) =
  let events = x.Execution.events in
  let n = Array.length events in
  let node_of_event = Array.make n None in
  let event_of_node =
    Array.of_list
      (List.filter (fun e -> is_sync_kind events.(e).Event.kind)
         (List.init n Fun.id))
  in
  Array.iteri (fun node e -> node_of_event.(e) <- Some node) event_of_node;
  let n_nodes = Array.length event_of_node in
  (* Contract computation events out of the program order: machine and task
     start/end edges between synchronization nodes. *)
  let po_succs = Array.make n [] in
  Rel.iter (fun a b -> po_succs.(a) <- b :: po_succs.(a)) x.Execution.program_order;
  let graph = Digraph.create n_nodes in
  let add_contracted_edges src_node =
    let visited = Array.make n false in
    let rec dfs e =
      List.iter
        (fun s ->
          if not visited.(s) then begin
            visited.(s) <- true;
            match node_of_event.(s) with
            | Some node -> Digraph.add_edge graph src_node node
            | None -> dfs s
          end)
        po_succs.(e)
    in
    dfs event_of_node.(src_node)
  in
  for node = 0 to n_nodes - 1 do
    add_contracted_edges node
  done;
  (* Synchronization edges: iterate to a fixpoint, since added edges can
     disqualify candidate triggering Posts and shift common ancestors. *)
  let posts_of v =
    List.filter
      (fun node -> var_of events.(event_of_node.(node)).Event.kind = Some (`Post v))
      (List.init n_nodes Fun.id)
  in
  let clears_of v =
    List.filter
      (fun node -> var_of events.(event_of_node.(node)).Event.kind = Some (`Clear v))
      (List.init n_nodes Fun.id)
  in
  let added = ref [] in
  let changed = ref true in
  while !changed do
    changed := false;
    for w = 0 to n_nodes - 1 do
      match var_of events.(event_of_node.(w)).Event.kind with
      | Some (`Wait v)
        when (not x.Execution.ev_init.(v))
             || List.exists
                  (fun c -> Digraph.reaches graph c w)
                  (clears_of v) ->
          (* A wait on an initially-set variable needs no trigger unless
             some Clear is guaranteed to precede it — adding an edge there
             would claim an ordering that the initial state refutes. *)
          let candidates =
            List.filter
              (fun p ->
                (not (Digraph.reaches graph w p))
                && not
                     (List.exists
                        (fun c ->
                          Digraph.reaches graph p c && Digraph.reaches graph c w)
                        (clears_of v)))
              (posts_of v)
          in
          if candidates <> [] then
            List.iter
              (fun cca ->
                if cca <> w && not (Digraph.mem_edge graph cca w) then begin
                  Digraph.add_edge graph cca w;
                  added := (cca, w) :: !added;
                  changed := true
                end)
              (Digraph.closest_common_ancestors graph candidates)
      | _ -> ()
    done
  done;
  (* Event-level view: program order plus the discovered sync edges.  The
     contracted machine edges are implied by program order. *)
  let event_graph = Digraph.create n in
  Rel.iter (fun a b -> Digraph.add_edge event_graph a b) x.Execution.program_order;
  let sync_edges =
    List.rev_map
      (fun (src, dst) -> (event_of_node.(src), event_of_node.(dst)))
      !added
  in
  List.iter (fun (a, b) -> Digraph.add_edge event_graph a b) sync_edges;
  { n_events = n; node_of_event; event_of_node; graph; event_graph; sync_edges }

let graph t = t.graph

let node_of_event t e = t.node_of_event.(e)

let event_of_node t node = t.event_of_node.(node)

let guaranteed_before t a b =
  a <> b && Digraph.reaches t.event_graph a b

let guaranteed_rel t =
  let r = Rel.create t.n_events in
  for a = 0 to t.n_events - 1 do
    Bitset.iter
      (fun b -> if a <> b then Rel.add r a b)
      (Digraph.reachable_from t.event_graph a)
  done;
  r

let sync_edge_count t = List.length t.sync_edges

let sync_edges t = t.sync_edges

let mhb_decider t =
  Approx.make ~name:"egp" ~relation:"mhb" ~direction:Approx.Positive
    (fun a b ->
      if a <> b && guaranteed_before t a b then Approx.Proved
      else Approx.Unknown)
