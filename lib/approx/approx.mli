(** The uniform verdict interface over the one-sided approximation
    devices of [lib/approx].

    The paper's closing implication is that the exact feasible-ordering
    relations are intractable while polynomial approximations are
    one-sided: each device can {e prove} membership, or {e refute} it,
    or both — never decide every pair.  This module gives those devices
    one shared vocabulary so the auto-engine triage ladder (and the
    differential test suite) can consume any of them without knowing
    which analysis is behind the verdict:

    - a {!verdict} is always {b sound}: [Proved] means the relation
      definitely holds for the pair, [Refuted] means it definitely does
      not, [Unknown] carries no information;
    - the {!direction} recorded in each {!decider} advertises which
      sides the device can ever conclude, and {!make} {e clamps}
      verdicts outside that direction to [Unknown], so a drifting
      implementation can weaken but never break the one-sidedness
      contract ([test_triage] checks the sound side against the exact
      engines on generated programs). *)

type verdict =
  | Proved  (** the relation holds for this pair — sound *)
  | Refuted  (** the relation does not hold for this pair — sound *)
  | Unknown  (** the device cannot tell; escalate *)

type direction =
  | Positive  (** can only ever conclude [Proved] *)
  | Negative  (** can only ever conclude [Refuted] *)
  | Both

val verdict_name : verdict -> string
val direction_name : direction -> string

type decider = {
  name : string;  (** device name, e.g. ["order_clock"] *)
  relation : string;
      (** which paper relation the verdicts speak about, e.g. ["mhb"] *)
  direction : direction;
  decide : int -> int -> verdict;
}

val make :
  name:string ->
  relation:string ->
  direction:direction ->
  (int -> int -> verdict) ->
  decider
(** Builds a decider, clamping verdicts outside [direction] to
    [Unknown]. *)

val first_conclusive : decider list -> int -> int -> verdict
(** The first non-[Unknown] verdict, in list order ([Unknown] if every
    device passes). *)

val to_bool : verdict -> bool option
(** [Proved ↦ Some true], [Refuted ↦ Some false], [Unknown ↦ None]. *)
