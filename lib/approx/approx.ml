(* Uniform one-sided verdict interface over the approximation devices.
   See approx.mli. *)

type verdict = Proved | Refuted | Unknown

type direction = Positive | Negative | Both

let verdict_name = function
  | Proved -> "proved"
  | Refuted -> "refuted"
  | Unknown -> "unknown"

let direction_name = function
  | Positive -> "positive"
  | Negative -> "negative"
  | Both -> "both"

type decider = {
  name : string;
  relation : string;
  direction : direction;
  decide : int -> int -> verdict;
}

let make ~name ~relation ~direction decide =
  (* Harden the advertised one-sidedness: a decider whose [direction]
     says it can only conclude one way is clamped to Unknown on the
     other, so a drifting implementation can weaken but never break the
     soundness contract the ladder relies on. *)
  let decide a b =
    match (decide a b, direction) with
    | Proved, Negative -> Unknown
    | Refuted, Positive -> Unknown
    | v, _ -> v
  in
  { name; relation; direction; decide }

let first_conclusive deciders a b =
  let rec go = function
    | [] -> Unknown
    | d :: rest -> (
        match d.decide a b with Unknown -> go rest | v -> v)
  in
  go deciders

let to_bool = function
  | Proved -> Some true
  | Refuted -> Some false
  | Unknown -> None
