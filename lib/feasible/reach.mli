(** Memoized state-space engine over feasible executions.

    A state is the pair (set of completed events, event-variable flags);
    semaphore counts are a function of the completed set.  Where
    {!Enumerate} walks every feasible schedule (worst case [n!]), this
    engine memoizes on states, so queries cost one traversal of the
    reachable state graph — still exponential in the worst case (the paper
    proves no engine can avoid that) but usually far smaller, which the
    ablation benchmark quantifies.  Memo keys are states packed into
    machine words (completed/event-flag bit vectors plus binary-semaphore
    counters) probed through {!Wordtbl} from a reused scratch buffer, so a
    memo hit allocates nothing.

    Schedule-level queries decide the happened-before relations exactly:
    [exists_before a b] is could-have-happened-before ([a CHB b]) and
    [must_before a b] is must-have-happened-before ([a MHB b]). *)

type t

val create : ?stats:Counters.t -> ?budget:Budget.t -> Skeleton.t -> t
(** Builds an engine; all queries share one memo table per query kind.

    [?stats] accumulates [Reach_memo_hits] / [Reach_memo_misses] as
    queries run, and [Reach_queries] per {!exists_before} /
    {!witness_before} / {!exists_race} call.  Memo statistics depend on
    query order and on how work was split across engines, so unlike the
    search counters they are {e not} invariant across [jobs].

    [?budget] is polled once per distinct state expanded.  Unlike
    {!Enumerate}, a state-space query has no meaningful partial value, so
    expiry raises {!Budget.Expired} out of any query on this [t] — the
    session layer catches it and degrades to a typed [Bound_hit] answer;
    the exception never crosses the public analysis APIs.  The memo
    tables only ever hold fully-computed entries, so a [t] that raised
    stays sound for further (immediately-expiring) queries. *)

val stats_commit : t -> unit
(** Folds the engine's memo-table probe/resize totals ({!Wordtbl.probes})
    into [Reach_tbl_probes] / [Reach_tbl_resizes].  Deltas only —
    idempotent between queries, so callers may commit whenever a report
    is about to be read. *)

val skeleton : t -> Skeleton.t

val feasible_exists : t -> bool
(** Is [F(P)] non-empty?  (Always true for a skeleton built from an actual
    trace — the observed schedule itself is feasible.) *)

val schedule_count : t -> int
(** Number of feasible complete schedules, counted by dynamic programming
    over states (no schedule is materialized).  Saturates at
    {!count_saturation} instead of overflowing. *)

val count_saturation : int
(** Ceiling for {!schedule_count} ([10^18]). *)

val reachable_state_count : t -> int

val deadlock_reachable : t -> bool
(** Can the re-execution paint itself into a corner — a reachable state
    with pending events but nothing enabled? *)

val deadlock_witness : t -> int array option
(** A partial feasible schedule ending in a stuck state, when one exists.
    [Some _] exactly when {!deadlock_reachable}. *)

val exists_before : t -> int -> int -> bool
(** [exists_before t a b]: some feasible schedule runs [a] before [b].
    [false] when [a = b]. *)

val must_before : t -> int -> int -> bool
(** [must_before t a b]: every feasible schedule runs [a] before [b], and at
    least one feasible schedule exists.  Equals
    [feasible_exists t && not (exists_before t b a)] for [a <> b]. *)

val witness_before : t -> int -> int -> int array option
(** [witness_before t a b]: a complete feasible schedule that runs [a]
    before [b], when one exists.  [Some _] exactly when
    [exists_before t a b]; the witness makes a could-have ordering
    tangible (and replayable — it passes {!Replay.check}). *)

val exists_race : t -> int -> int -> bool
(** [exists_race t a b]: is there a reachable state from which [a] and [b]
    can execute in either order, with the run completing both ways?  This
    is the operational could-have-been-concurrent-with: the two events can
    be scheduled back-to-back in both orders from identical context, i.e.
    nothing forces an order between them at that point.  For semaphore-only
    programs this coincides with incomparability in some pinned order
    (see {!Pinned}). *)

val race_witness : t -> int -> int -> (int array * int array) option
(** Two complete feasible schedules sharing a prefix after which the pair
    runs back-to-back in opposite orders — the interleavings a race report
    should show.  [Some _] exactly when {!exists_race}. *)
