let sync_object (sk : Skeleton.t) e =
  match sk.Skeleton.kinds.(e) with
  | Event.Sync (Event.Sem_p s | Event.Sem_v s) -> Some (`Sem s)
  | Event.Sync (Event.Post v | Event.Wait v | Event.Clear v) -> Some (`Ev v)
  | Event.Computation | Event.Sync (Event.Fork | Event.Join) -> None

let independent (sk : Skeleton.t) a b =
  let events = sk.Skeleton.execution.Execution.events in
  a <> b
  && events.(a).Event.pid <> events.(b).Event.pid
  && (match (sync_object sk a, sync_object sk b) with
     | Some oa, Some ob -> oa <> ob
     | _ -> true)
  && (not (List.mem a sk.Skeleton.dep_preds.(b)))
  && (not (List.mem b sk.Skeleton.dep_preds.(a)))
  && (not (List.mem a sk.Skeleton.po_preds.(b)))
  && not (List.mem b sk.Skeleton.po_preds.(a))

(* The n×n independence relation as a bit matrix, so the inner loop of the
   packed search tests one bit instead of four pred-list memberships.
   Symmetric, so row e is exactly { u | independent u e }. *)
let independence sk =
  let n = sk.Skeleton.n in
  let r = Rel.create n in
  for a = 0 to n - 1 do
    for b = a + 1 to n - 1 do
      if independent sk a b then begin
        Rel.add r a b;
        Rel.add r b a
      end
    done
  done;
  r

exception Stop

(* The seed implementation: list-based sleep sets over the full ready
   scan.  Kept as the EO_ENGINE=naive oracle.  Pop counts are
   engine-relative (all n candidates per node); sleep-prune counts are
   not — both engines prune exactly the ready-but-asleep candidates, so
   those match the packed search bit for bit. *)
let iter_representatives_naive ?limit ~stats ~budget sk f =
  let st = Enumerate.make_search sk in
  let n = sk.Skeleton.n in
  let found = ref 0 in
  let rec go depth sleep =
    if depth = n then begin
      Counters.bump stats Counters.Por_reps;
      incr found;
      f st.Enumerate.schedule;
      match limit with
      | Some l when !found >= l ->
          Counters.bump stats Counters.Limit_truncations;
          raise Stop
      | _ -> ()
    end
    else begin
      Counters.bump stats Counters.Por_nodes;
      if Budget.poll_node budget then begin
        Counters.bump stats Counters.Timeout_expirations;
        raise Stop
      end;
      let explored = ref [] in
      for e = 0 to n - 1 do
        Counters.bump stats Counters.Por_pops;
        if Enumerate.ready st e then begin
          if List.mem e sleep then
            Counters.bump stats Counters.Por_sleep_prunes
          else begin
            Counters.bump stats Counters.Por_indep_refinements;
            let sleep' =
              List.filter (fun u -> independent sk u e) (sleep @ !explored)
            in
            let token = Enumerate.execute st e in
            st.Enumerate.schedule.(depth) <- e;
            go (depth + 1) sleep';
            Enumerate.undo st e token;
            explored := e :: !explored
          end
        end
      done
    end
  in
  (try go 0 [] with Stop -> ());
  !found

(* Per-depth scratch for the packed search: sleep and explored sets as
   bitsets, preallocated once so a search node allocates nothing. *)
type scratch = {
  st : Enumerate.search;
  indep : Rel.t;
  sleep : Bitset.t array;  (* sleep.(depth): events asleep at that node *)
  explored : Bitset.t array;  (* siblings already expanded at that node *)
}

let make_scratch sk =
  let n = sk.Skeleton.n in
  {
    st = Enumerate.make_search sk;
    indep = independence sk;
    sleep = Array.init (n + 1) (fun _ -> Bitset.create n);
    explored = Array.init (n + 1) (fun _ -> Bitset.create n);
  }

(* The packed recursion from [depth0].  Same visit order and same sleep
   semantics as the naive code: candidates ascend by event id, and the
   child's sleep set is (sleep ∪ explored) ∩ indep(e). *)
let go_packed sc limit found ~stats ~budget f depth0 =
  let st = sc.st in
  let n = st.Enumerate.n in
  let rec go depth =
    if depth = n then begin
      Counters.bump stats Counters.Por_reps;
      incr found;
      f st.Enumerate.schedule;
      match limit with
      | Some l when !found >= l ->
          Counters.bump stats Counters.Limit_truncations;
          raise Stop
      | _ -> ()
    end
    else begin
      Counters.bump stats Counters.Por_nodes;
      if Budget.poll_node budget then begin
        Counters.bump stats Counters.Timeout_expirations;
        raise Stop
      end;
      Bitset.clear sc.explored.(depth);
      let e = ref (Bitset.min_elt_from st.Enumerate.frontier 0) in
      while !e >= 0 do
        let ev = !e in
        Counters.bump stats Counters.Por_pops;
        if Enumerate.sync_enabled st ev then begin
          if Bitset.mem sc.sleep.(depth) ev then
            Counters.bump stats Counters.Por_sleep_prunes
          else begin
            Counters.bump stats Counters.Por_indep_refinements;
            let sleep' = sc.sleep.(depth + 1) in
            Bitset.copy_into ~dst:sleep' sc.sleep.(depth);
            Bitset.union_into sleep' sc.explored.(depth);
            Bitset.inter_into sleep' (Rel.successors sc.indep ev);
            let token = Enumerate.execute st ev in
            st.Enumerate.schedule.(depth) <- ev;
            go (depth + 1);
            Enumerate.undo st ev token;
            Bitset.add sc.explored.(depth) ev
          end
        end;
        e := Bitset.min_elt_from st.Enumerate.frontier (ev + 1)
      done
    end
  in
  go depth0

let iter_representatives_packed ?limit ~stats ~budget sk f =
  let sc = make_scratch sk in
  let found = ref 0 in
  (try go_packed sc limit found ~stats ~budget f 0 with Stop -> ());
  !found

let iter_representatives ?limit ?(stats = Counters.null)
    ?(budget = Budget.unlimited) sk f =
  match Engine.current () with
  | Engine.Naive -> iter_representatives_naive ?limit ~stats ~budget sk f
  | Engine.Packed | Engine.Sat | Engine.Auto ->
      iter_representatives_packed ?limit ~stats ~budget sk f

let count_representatives ?limit ?stats ?budget sk =
  iter_representatives ?limit ?stats ?budget sk (fun _ -> ())

(* ------------------------------------------------------------------ *)
(* Subtree tasks for Parallel                                          *)
(* ------------------------------------------------------------------ *)

type task = { prefix : int array; sleep : Bitset.t }

let tasks ?(stats = Counters.null) ?(budget = Budget.unlimited) sk ~depth =
  let n = sk.Skeleton.n in
  if depth < 0 || depth >= n then invalid_arg "Por.tasks";
  let sc = make_scratch sk in
  let st = sc.st in
  let acc = ref [] in
  (* The packed recursion, truncated at [depth]: each tree node reached
     there becomes one task carrying its prefix and sleep set.  As with
     [Enumerate.feasible_prefixes], interior work strictly above [depth]
     is counted here and the task nodes themselves by [iter_task]. *)
  let rec go d =
    if d = depth then
      acc :=
        { prefix = Array.sub st.Enumerate.schedule 0 depth;
          sleep = Bitset.copy sc.sleep.(depth) }
        :: !acc
    else begin
      Counters.bump stats Counters.Por_nodes;
      if Budget.poll_node budget then begin
        Counters.bump stats Counters.Timeout_expirations;
        raise Stop
      end;
      Bitset.clear sc.explored.(d);
      let e = ref (Bitset.min_elt_from st.Enumerate.frontier 0) in
      while !e >= 0 do
        let ev = !e in
        Counters.bump stats Counters.Por_pops;
        if Enumerate.sync_enabled st ev then begin
          if Bitset.mem sc.sleep.(d) ev then
            Counters.bump stats Counters.Por_sleep_prunes
          else begin
            Counters.bump stats Counters.Por_indep_refinements;
            let sleep' = sc.sleep.(d + 1) in
            Bitset.copy_into ~dst:sleep' sc.sleep.(d);
            Bitset.union_into sleep' sc.explored.(d);
            Bitset.inter_into sleep' (Rel.successors sc.indep ev);
            let token = Enumerate.execute st ev in
            st.Enumerate.schedule.(d) <- ev;
            go (d + 1);
            Enumerate.undo st ev token;
            Bitset.add sc.explored.(d) ev
          end
        end;
        e := Bitset.min_elt_from st.Enumerate.frontier (ev + 1)
      done
    end
  in
  (try go 0 with Stop -> ());
  List.rev !acc

let iter_task ?(stats = Counters.null) ?(budget = Budget.unlimited) sk
    { prefix; sleep } f =
  let sc = make_scratch sk in
  let st = sc.st in
  (* Replay is uncounted, mirroring [Enumerate.iter_from]. *)
  Array.iteri
    (fun i e ->
      if not (Enumerate.ready st e) then
        invalid_arg "Por.iter_task: prefix event is not ready";
      let (_ : [ `Sem of int * int | `Ev of int * bool | `None ]) =
        Enumerate.execute st e
      in
      st.Enumerate.schedule.(i) <- e)
    prefix;
  let depth = Array.length prefix in
  Bitset.copy_into ~dst:sc.sleep.(depth) sleep;
  let found = ref 0 in
  (try go_packed sc None found ~stats ~budget f depth with Stop -> ());
  !found
