(** Exhaustive enumeration of the feasible program executions [F(P)].

    Every complete schedule produced respects program order, preserves the
    observed shared-data dependences, and never runs a blocked
    synchronization operation; deadlocking prefixes are pruned.  The search
    is exponential in general — this is the engine whose cost Theorems 1–4
    prove unavoidable.

    Two interchangeable implementations sit behind {!iter} (selected by
    {!Engine}): the seed search, which rescans all [n] events at every
    node, and the packed search, which maintains the structurally-ready
    frontier as a bitset and only tests synchronization enabledness on
    frontier members.  Both enumerate the same schedules in the same
    (lexicographic) order. *)

exception Stop
(** Raise from an {!iter} callback to end enumeration early. *)

val iter :
  ?limit:int ->
  ?stats:Counters.t ->
  ?budget:Budget.t ->
  Skeleton.t ->
  (int array -> unit) ->
  int
(** [iter ?limit sk f] calls [f] on every feasible complete schedule (the
    array is reused; copy to keep) and returns how many were visited.
    Enumeration order is deterministic (lexicographic by event id).

    [?stats] (default {!Counters.null}, i.e. off) accumulates
    [Enum_nodes] / [Enum_pops] / [Enum_schedules] / [Limit_truncations];
    pop counts are engine-relative (the naive scan examines all [n]
    candidates per node, the packed one only frontier members).

    [?budget] (default {!Budget.unlimited}) is polled once per interior
    node; expiry stops the search exactly like a [?limit] hit — the
    schedules already visited stand, [Timeout_expirations] is bumped,
    and no exception escapes. *)

val count :
  ?limit:int -> ?stats:Counters.t -> ?budget:Budget.t -> Skeleton.t -> int

val all : ?limit:int -> Skeleton.t -> int array list

val exists : Skeleton.t -> (int array -> bool) -> bool
(** Early-exits on the first schedule satisfying the predicate. *)

val first : Skeleton.t -> int array option
(** The lexicographically first feasible schedule, if any. *)

val exists_order :
  ?budget:Budget.t -> Skeleton.t -> before:int -> after:int -> bool
(** [exists_order sk ~before:a ~after:b]: is there a feasible schedule in
    which [a] is scheduled before [b]?  (This is exactly the could-have-
    happened-before relation; see {!DESIGN.md}.)  Prunes branches where [b]
    was scheduled first, so it is cheaper than filtering {!iter}.  Budget
    expiry yields [false] — a sound under-report, as with [?limit]. *)

(** {2 Subtree tasks}

    Hooks for {!Parallel}: the DFS splits at a frontier depth into
    independent subtree tasks, one per feasible prefix.  The union of the
    schedules below all prefixes of one depth is exactly the full
    enumeration (each complete schedule extends exactly one prefix), so
    per-task results merge deterministically. *)

val feasible_prefixes :
  ?stats:Counters.t ->
  ?budget:Budget.t ->
  Skeleton.t ->
  depth:int ->
  int array list
(** All feasible schedule prefixes of exactly [depth] events, in
    lexicographic order.  [0 <= depth <= n]; prefixes that cannot be
    completed are included (their subtrees are simply empty).

    With [?stats], counts the interior nodes strictly above [depth] —
    the split walk's share of the search, complementing what the
    subtree tasks count via {!iter_from} so parallel totals equal the
    sequential ones. *)

val iter_from :
  ?limit:int ->
  ?stats:Counters.t ->
  ?budget:Budget.t ->
  Skeleton.t ->
  prefix:int array ->
  (int array -> unit) ->
  int
(** [iter_from sk ~prefix f] enumerates (with the packed search,
    irrespective of {!Engine}) the feasible complete schedules extending
    [prefix]; the array passed to [f] carries the prefix in place.  Raises
    [Invalid_argument] if [prefix] is not feasible.  The prefix replay is
    never counted in [?stats] — only search work below it. *)

(** {2 Search internals}

    The incremental search state, exposed so {!Por} can layer sleep-set
    pruning over the same machinery.  Invariant: every {!execute} is undone
    with its token in reverse order; [frontier] always holds exactly the
    not-yet-done events with no outstanding predecessors. *)

type search = {
  sk : Skeleton.t;
  n : int;
  pending : int array;
  succs : int array array;
  done_ : bool array;
  sem : int array;
  ev : bool array;
  schedule : int array;
  frontier : Bitset.t;
}

val make_search : Skeleton.t -> search

val ready : search -> int -> bool
(** Preconditions of one event in the current state. *)

val sync_enabled : search -> int -> bool
(** Just the synchronization component of {!ready} — the only part that
    needs testing for events already on the frontier. *)

val execute :
  search -> int -> [ `Sem of int * int | `Ev of int * bool | `None ]
(** Applies the event; returns the undo token. *)

val undo : search -> int -> [ `Sem of int * int | `Ev of int * bool | `None ] -> unit
