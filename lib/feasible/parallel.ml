(* Deterministic multicore fan-out for the exact engines.  The DFS is cut
   at a shallow frontier depth into independent subtree tasks (one per
   feasible prefix / sleep-set node); workers drain the task array through
   an atomic cursor and results are merged in task order, so the outcome
   never depends on which domain ran which task. *)

let default_jobs () = Config.jobs ()

let map ?telemetry ?(budget = Budget.unlimited) ~jobs f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let jobs = max 1 (min jobs n) in
    (match telemetry with
    | Some tel -> Telemetry.ensure_domains tel jobs
    | None -> ());
    if jobs = 1 then Telemetry.timed_domain telemetry 0 (fun () -> Array.map f xs)
    else begin
      let results = Array.make n None in
      let next = Atomic.make 0 in
      let failed = Atomic.make false in
      (* Each worker owns the result slots of the tasks it claims; no two
         workers ever touch the same index, so plain writes suffice.
         Per-domain wall times land in distinct telemetry slots the same
         way.  A task's exception is parked in its own slot and re-raised
         after every domain has joined; tasks are claimed in index order,
         so the lowest-indexed failure wins deterministically whatever
         the domain interleaving. *)
      (* [Engine.current] is domain-local; spawned domains would
         otherwise fall back to the environment default, disagreeing
         with a coordinator that called [Engine.set] (the race layer
         reads the engine inside its per-pair workers). *)
      let engine = Engine.current () in
      let model = Memmodel.current () in
      let worker k =
        if k > 0 then begin
          Engine.set engine;
          Memmodel.set model
        end;
        Telemetry.timed_domain telemetry k (fun () ->
            let rec loop () =
              if not (Atomic.get failed) then begin
                (* Re-read the deadline between tasks: once any domain
                   trips it, the shared flag makes every remaining task
                   near-instant (a budget-aware [f] stops on its first
                   poll), so the whole fan-out winds down while [map]
                   still returns a complete, deterministic array. *)
                ignore (Budget.check_now budget);
                let i = Atomic.fetch_and_add next 1 in
                if i < n then begin
                  (match f xs.(i) with
                  | r -> results.(i) <- Some (Ok r)
                  | exception e ->
                      let bt = Printexc.get_raw_backtrace () in
                      results.(i) <- Some (Error (e, bt));
                      Atomic.set failed true);
                  loop ()
                end
              end
            in
            loop ())
      in
      let domains =
        Array.init (jobs - 1) (fun k -> Domain.spawn (fun () -> worker (k + 1)))
      in
      (* Join every domain even when the caller's share raises — a leaked
         domain would keep mutating [results] behind our back. *)
      Fun.protect
        ~finally:(fun () -> Array.iter Domain.join domains)
        (fun () -> worker 0);
      Array.iter
        (function
          | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
          | Some (Ok _) | None -> ())
        results;
      Array.map
        (function
          | Some (Ok r) -> r
          | Some (Error _) | None -> assert false (* all claimed, none failed *))
        results
    end
  end

(* Split-depth heuristic, shared by both splitters: the shallowest depth
   (capped at 8) whose task count reaches [jobs * 4] — enough slack that
   uneven subtree sizes still balance — falling back to the deepest depth
   with at least two tasks, and to None (caller stays sequential) when the
   tree never branches. *)
let oversubscription = 4

let max_split_depth = 8

let choose_split ~n ~jobs tasks_at =
  if n < 2 then None
  else begin
    let target = jobs * oversubscription in
    let best = ref None in
    let d = ref 1 in
    let stop = ref false in
    while (not !stop) && !d <= min (n - 1) max_split_depth do
      let ts = tasks_at !d in
      let k = List.length ts in
      if k >= target then begin
        best := Some (!d, ts);
        stop := true
      end
      else begin
        if k >= 2 then best := Some (!d, ts);
        incr d
      end
    done;
    !best
  end

(* Depth probing runs uncounted — the walks of the depths we reject are
   not attributable to the result.  When counters are on, the chosen
   depth is re-walked once with counting, so the split's share of nodes
   plus the workers' equals the sequential search's exactly (that is the
   jobs-invariance the QCheck suite locks).  The re-walk touches only the
   shallow prefix tree, noise next to the full search below it. *)
let split_with ~stats ~counted_walk ~n ~jobs tasks_at =
  match choose_split ~n ~jobs tasks_at with
  | None -> None
  | Some (depth, tasks) ->
      let tasks =
        if Counters.enabled stats then
          Counters.time stats Counters.T_split (fun () -> counted_walk depth)
        else tasks
      in
      Counters.add stats Counters.Par_tasks (List.length tasks);
      Some (depth, Array.of_list tasks)

let split_prefixes ?(stats = Counters.null) sk ~jobs =
  split_with ~stats
    ~counted_walk:(fun d -> Enumerate.feasible_prefixes ~stats sk ~depth:d)
    ~n:sk.Skeleton.n ~jobs
    (fun d -> Enumerate.feasible_prefixes sk ~depth:d)

let split_por_tasks ?(stats = Counters.null) sk ~jobs =
  split_with ~stats
    ~counted_walk:(fun d -> Por.tasks ~stats sk ~depth:d)
    ~n:sk.Skeleton.n ~jobs
    (fun d -> Por.tasks sk ~depth:d)

let count ?limit ?jobs ?(stats = Counters.null) ?(budget = Budget.unlimited) sk
    =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs <= 1 || limit <> None then Enumerate.count ?limit ~stats ~budget sk
  else
    match split_prefixes ~stats sk ~jobs with
    | None -> Enumerate.count ~stats ~budget sk
    | Some (_depth, prefixes) ->
        let results =
          map ~jobs ~budget
            (fun prefix ->
              let c =
                if Counters.enabled stats then Counters.create ()
                else Counters.null
              in
              let k =
                Enumerate.iter_from ~stats:c ~budget sk ~prefix (fun _ -> ())
              in
              (k, c))
            prefixes
        in
        Array.iter
          (fun (_, c) ->
            Counters.bump stats Counters.Par_merges;
            Counters.merge_into ~dst:stats c)
          results;
        Array.fold_left (fun acc (k, _) -> acc + k) 0 results
