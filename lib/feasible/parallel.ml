(* Deterministic multicore fan-out for the exact engines.  The DFS is cut
   at a shallow frontier depth into independent subtree tasks (one per
   feasible prefix / sleep-set node); workers drain the task array through
   an atomic cursor and results are merged in task order, so the outcome
   never depends on which domain ran which task. *)

let default_jobs () = Config.jobs ()

let map ?telemetry ~jobs f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let jobs = max 1 (min jobs n) in
    (match telemetry with
    | Some tel -> Telemetry.ensure_domains tel jobs
    | None -> ());
    if jobs = 1 then Telemetry.timed_domain telemetry 0 (fun () -> Array.map f xs)
    else begin
      let results = Array.make n None in
      let next = Atomic.make 0 in
      (* Each worker owns the result slots of the tasks it claims; no two
         workers ever touch the same index, so plain writes suffice.
         Per-domain wall times land in distinct telemetry slots the same
         way. *)
      let worker k =
        Telemetry.timed_domain telemetry k (fun () ->
            let rec loop () =
              let i = Atomic.fetch_and_add next 1 in
              if i < n then begin
                results.(i) <- Some (f xs.(i));
                loop ()
              end
            in
            loop ())
      in
      let domains =
        Array.init (jobs - 1) (fun k -> Domain.spawn (fun () -> worker (k + 1)))
      in
      worker 0;
      Array.iter Domain.join domains;
      Array.map
        (function Some r -> r | None -> assert false (* all claimed *))
        results
    end
  end

(* Split-depth heuristic, shared by both splitters: the shallowest depth
   (capped at 8) whose task count reaches [jobs * 4] — enough slack that
   uneven subtree sizes still balance — falling back to the deepest depth
   with at least two tasks, and to None (caller stays sequential) when the
   tree never branches. *)
let oversubscription = 4

let max_split_depth = 8

let choose_split ~n ~jobs tasks_at =
  if n < 2 then None
  else begin
    let target = jobs * oversubscription in
    let best = ref None in
    let d = ref 1 in
    let stop = ref false in
    while (not !stop) && !d <= min (n - 1) max_split_depth do
      let ts = tasks_at !d in
      let k = List.length ts in
      if k >= target then begin
        best := Some (!d, ts);
        stop := true
      end
      else begin
        if k >= 2 then best := Some (!d, ts);
        incr d
      end
    done;
    !best
  end

(* Depth probing runs uncounted — the walks of the depths we reject are
   not attributable to the result.  When counters are on, the chosen
   depth is re-walked once with counting, so the split's share of nodes
   plus the workers' equals the sequential search's exactly (that is the
   jobs-invariance the QCheck suite locks).  The re-walk touches only the
   shallow prefix tree, noise next to the full search below it. *)
let split_with ~stats ~counted_walk ~n ~jobs tasks_at =
  match choose_split ~n ~jobs tasks_at with
  | None -> None
  | Some (depth, tasks) ->
      let tasks =
        if Counters.enabled stats then
          Counters.time stats Counters.T_split (fun () -> counted_walk depth)
        else tasks
      in
      Counters.add stats Counters.Par_tasks (List.length tasks);
      Some (depth, Array.of_list tasks)

let split_prefixes ?(stats = Counters.null) sk ~jobs =
  split_with ~stats
    ~counted_walk:(fun d -> Enumerate.feasible_prefixes ~stats sk ~depth:d)
    ~n:sk.Skeleton.n ~jobs
    (fun d -> Enumerate.feasible_prefixes sk ~depth:d)

let split_por_tasks ?(stats = Counters.null) sk ~jobs =
  split_with ~stats
    ~counted_walk:(fun d -> Por.tasks ~stats sk ~depth:d)
    ~n:sk.Skeleton.n ~jobs
    (fun d -> Por.tasks sk ~depth:d)

let count ?limit ?jobs ?(stats = Counters.null) sk =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs <= 1 || limit <> None then Enumerate.count ?limit ~stats sk
  else
    match split_prefixes ~stats sk ~jobs with
    | None -> Enumerate.count ~stats sk
    | Some (_depth, prefixes) ->
        let results =
          map ~jobs
            (fun prefix ->
              let c =
                if Counters.enabled stats then Counters.create ()
                else Counters.null
              in
              let k = Enumerate.iter_from ~stats:c sk ~prefix (fun _ -> ()) in
              (k, c))
            prefixes
        in
        Array.iter
          (fun (_, c) ->
            Counters.bump stats Counters.Par_merges;
            Counters.merge_into ~dst:stats c)
          results;
        Array.fold_left (fun acc (k, _) -> acc + k) 0 results
