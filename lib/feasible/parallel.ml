(* Deterministic multicore fan-out for the exact engines.  The DFS is cut
   at a shallow frontier depth into independent subtree tasks (one per
   feasible prefix / sleep-set node); workers drain the task array through
   an atomic cursor and results are merged in task order, so the outcome
   never depends on which domain ran which task. *)

let default_jobs =
  let v =
    lazy
      (match Sys.getenv_opt "EO_JOBS" with
      | None -> 1
      | Some s -> (
          match int_of_string_opt (String.trim s) with
          | Some j when j >= 1 -> j
          | Some _ | None ->
              Printf.eprintf
                "warning: ignoring malformed EO_JOBS=%S (expected a \
                 positive integer); using 1\n\
                 %!"
                s;
              1))
  in
  fun () -> Lazy.force v

let map ~jobs f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let jobs = max 1 (min jobs n) in
    if jobs = 1 then Array.map f xs
    else begin
      let results = Array.make n None in
      let next = Atomic.make 0 in
      (* Each worker owns the result slots of the tasks it claims; no two
         workers ever touch the same index, so plain writes suffice. *)
      let worker () =
        let rec loop () =
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            results.(i) <- Some (f xs.(i));
            loop ()
          end
        in
        loop ()
      in
      let domains = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
      worker ();
      Array.iter Domain.join domains;
      Array.map
        (function Some r -> r | None -> assert false (* all claimed *))
        results
    end
  end

(* Split-depth heuristic, shared by both splitters: the shallowest depth
   (capped at 8) whose task count reaches [jobs * 4] — enough slack that
   uneven subtree sizes still balance — falling back to the deepest depth
   with at least two tasks, and to None (caller stays sequential) when the
   tree never branches. *)
let oversubscription = 4

let max_split_depth = 8

let choose_split ~n ~jobs tasks_at =
  if n < 2 then None
  else begin
    let target = jobs * oversubscription in
    let best = ref None in
    let d = ref 1 in
    let stop = ref false in
    while (not !stop) && !d <= min (n - 1) max_split_depth do
      let ts = tasks_at !d in
      let k = List.length ts in
      if k >= target then begin
        best := Some ts;
        stop := true
      end
      else begin
        if k >= 2 then best := Some ts;
        incr d
      end
    done;
    !best
  end

let split_prefixes sk ~jobs =
  Option.map Array.of_list
    (choose_split ~n:sk.Skeleton.n ~jobs (fun d ->
         Enumerate.feasible_prefixes sk ~depth:d))

let split_por_tasks sk ~jobs =
  Option.map Array.of_list
    (choose_split ~n:sk.Skeleton.n ~jobs (fun d -> Por.tasks sk ~depth:d))

let count ?jobs sk =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs <= 1 then Enumerate.count sk
  else
    match split_prefixes sk ~jobs with
    | None -> Enumerate.count sk
    | Some prefixes ->
        let counts =
          map ~jobs
            (fun prefix -> Enumerate.iter_from sk ~prefix (fun _ -> ()))
            prefixes
        in
        Array.fold_left ( + ) 0 counts
