type t = {
  execution : Execution.t;
  n : int;
  po_preds : int list array;
  po_succs : int list array;
  dep_preds : int list array;
  kinds : Event.kind array;
  sem_init : int array;
  sem_binary : bool array;
  ev_init : bool array;
}

let of_execution (x : Execution.t) =
  let n = Execution.n_events x in
  let po_preds = Array.make n [] in
  let po_succs = Array.make n [] in
  let dep_preds = Array.make n [] in
  (* Under the SC model the scheduling constraints are the execution's
     immediate program-order edges, untouched.  A relaxing model keeps
     only its preserved program order: the transitive reduction of the
     ppo closure, so the engines explore every schedule the model's
     store-buffer semantics admits.  Per-location coherence survives
     the filter through the dependence edges below. *)
  let model = Memmodel.current () in
  let po =
    if Memmodel.relaxes model then
      Rel.transitive_reduction (Memmodel.ppo model x)
    else x.Execution.program_order
  in
  Rel.iter
    (fun a b ->
      po_succs.(a) <- po_succs.(a) @ [ b ];
      po_preds.(b) <- po_preds.(b) @ [ a ])
    po;
  Rel.iter
    (fun a b ->
      (* A dependence that parallels a program-order edge adds nothing. *)
      if not (List.mem a po_preds.(b)) then dep_preds.(b) <- dep_preds.(b) @ [ a ])
    x.Execution.dependences;
  {
    execution = x;
    n;
    po_preds;
    po_succs;
    dep_preds;
    kinds = Array.map (fun e -> e.Event.kind) x.Execution.events;
    sem_init = Array.copy x.Execution.sem_init;
    sem_binary = Array.copy x.Execution.sem_binary;
    ev_init = Array.copy x.Execution.ev_init;
  }

let constraint_graph sk =
  let g = Digraph.create sk.n in
  for b = 0 to sk.n - 1 do
    List.iter (fun a -> Digraph.add_edge g a b) sk.po_preds.(b);
    List.iter (fun a -> Digraph.add_edge g a b) sk.dep_preds.(b)
  done;
  g

let pp ppf sk =
  Format.fprintf ppf "@[<v>skeleton: %d events@ " sk.n;
  for e = 0 to sk.n - 1 do
    Format.fprintf ppf "%a  po_preds=%a dep_preds=%a@ " Event.pp
      sk.execution.Execution.events.(e)
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
         Format.pp_print_int)
      sk.po_preds.(e)
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
         Format.pp_print_int)
      sk.dep_preds.(e)
  done;
  Format.fprintf ppf "@]"
