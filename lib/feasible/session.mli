(** Shared analysis sessions: enumerate [F(P)] once, answer every query.

    Every exact analysis in this repository — the six Table-1 relation
    matrices, per-pair decision procedures, race feasibility, the
    theorem checkers — quantifies over the {e same} set of feasible
    executions, yet historically each entry point launched its own
    traversal.  A [Session.t] owns one program (as a {!Skeleton.t}) and
    amortizes the exponential work three ways:

    - {b one pass, many consumers}: analyses register folds over the
      feasible schedules ({!fold_schedules}, {!fold_pinned}) or over the
      POR representatives ({!fold_classes}); all folds registered on a
      pass are driven by a single traversal, sequential or Domain-
      parallel with deterministic task-order merging (bit-identical to
      [jobs = 1]).  The API is resumable: folds registered after a pass
      ran are served by a fresh pass, earlier results stay valid.
    - {b one memoized state engine}: {!reach} is created once and shared
      by every reachability query the session answers.
    - {b a keyed result cache}: results are stored under the
      {!Program_key} canonical content hash in an in-memory LRU and,
      optionally, an on-disk cache ([EO_CACHE_DIR] / [--cache]).  Cache
      entries are versioned and keyed by (program hash, result kind,
      engine, limit): any mismatch — a different engine, a different
      enumeration cap, a different program, a future format bump — is a
      miss, never a wrong answer.  Payloads are stored in canonical
      event coordinates, so a result cached under one event numbering
      is served to any renumbering of the same program.

    Sessions are single-domain objects: create and query them from one
    domain (the passes spawn their own workers internally).  The
    process-wide LRU behind them {e is} domain-safe: sessions living on
    different domains — the analysis server's worker pool — share it as
    cross-request state, so a hot program submitted by many clients is
    enumerated once and served from memory after that.  Activity is
    observable through the [session_*] / [cache_*] counters of
    {!Counters} when the session carries a {!Telemetry.t}. *)

type t

(** {2 Caching policy} *)

type cache = {
  memory : bool;  (** consult/populate the process-wide LRU *)
  dir : string option;  (** on-disk cache directory (absolute), if any *)
}

val no_cache : cache
(** Caching fully disabled — the default for {!create}, and what the
    legacy one-shot wrappers use, so their counter reports stay
    reproducible run to run. *)

val default_cache : unit -> cache
(** LRU enabled; disk directory from [EO_CACHE_DIR] ({!Config.cache_dir})
    when set.  What the CLI uses. *)

val clear_memory_cache : unit -> unit
(** Empties the process-wide LRU (tests). *)

(** {2 Construction and accessors} *)

val create :
  ?limit:int -> ?jobs:int -> ?stats:Telemetry.t -> ?budget:Budget.t ->
  ?cache:cache -> Skeleton.t -> t
(** [limit] caps enumeration passes (uniform semantics: capped walks are
    sound under-approximations and stay sequential); [jobs] (default
    [1]) sets the worker-domain count for parallel passes; [cache]
    defaults to {!no_cache}.

    [budget] (default {!Budget.unlimited}) bounds every engine this
    session drives — enumeration and POR walks stop at the deadline like
    a [?limit] hit, reachability and SAT queries abort and degrade.  No
    [Budget.Expired] ever escapes this API: the plain queries below fold
    expiry into the sound direction of each relation, and the [_outcome]
    variants say explicitly whether the answer is [Exact] or a
    [Bound_hit].  Budget-truncated results are never written to the
    cross-session cache. *)

val of_execution :
  ?limit:int -> ?jobs:int -> ?stats:Telemetry.t -> ?budget:Budget.t ->
  ?cache:cache -> Execution.t -> t

val skeleton : t -> Skeleton.t
val execution : t -> Execution.t

val key : t -> Program_key.t
(** The canonical content hash (computed lazily on first use). *)

val limit : t -> int option
val jobs : t -> int
val budget : t -> Budget.t
val telemetry : t -> Telemetry.t option

val reach : t -> Reach.t
(** The shared memoized state engine (created on first use; all
    reachability queries of this session share its memo tables). *)

val schedule_count : t -> int
(** [|F(P)|] by the counting DP of {!Reach.schedule_count} — no
    enumeration, saturating at [Reach.count_saturation].  Budget expiry
    degrades to [0] (the only sound under-count); use
    {!schedule_count_outcome} to tell the cases apart. *)

(** {2 Per-pair ordering queries — engine-routed}

    The decision-procedure primitives every relation reduces to.  Under
    [Engine.Naive]/[Engine.Packed] they delegate to the shared {!reach}
    engine; under [Engine.Sat] they become assumption probes on one
    compiled feasibility formula ({!Encode.build}, created lazily like
    {!reach}).  Every positive SAT answer is decoded into a witness
    schedule and certified by the [Replay] oracle before it is
    reported — an encoder defect raises [Invalid_argument] rather than
    returning a wrong answer. *)

val feasible_exists : t -> bool

val exists_before : t -> int -> int -> bool
(** Could [a] happen before [b] in some feasible execution?  [false]
    when [a = b]. *)

val must_before : t -> int -> int -> bool
(** [a <> b], the program is feasible, and no feasible execution runs
    [b] before [a]. *)

val witness_before : t -> int -> int -> int array option
(** A feasible schedule running [a] strictly before [b], if any. *)

val exists_race : t -> int -> int -> bool
(** The back-to-back race condition of [Reach.exists_race] on this
    session's skeleton: some reachable state enables [a] and [b], both
    orders step, and both complete. *)

val sat_exists_race :
  ?stats:Counters.t -> ?budget:Budget.t -> Skeleton.t -> int -> int -> bool
(** Session-independent SAT race probe: compiles the given skeleton
    fresh and decides {!exists_race} by the two-copy formula, witnesses
    replay-certified.  For callers that decide pairs on modified
    skeletons no session owns (the race layer drops the candidate
    pair's dependence edges first). *)

(** {2 Outcome-typed queries — deadline-aware}

    Each [_outcome] variant runs the query under the session budget and
    reports whether the answer is exact.  On expiry the value is the
    sound degradation for that relation: could-have queries ([exists_*],
    [witness_*]) under-report ([false] / [None] / partial bits, the same
    direction as [?limit]); must-have queries over-approximate ([true]);
    counts under-count.  A degraded answer bumps [timeout_expirations]
    and [timeout_degraded_queries].  The plain functions above are these
    with [Budget.value] applied. *)

val feasible_exists_outcome : t -> bool Budget.outcome
val exists_before_outcome : t -> int -> int -> bool Budget.outcome
val must_before_outcome : t -> int -> int -> bool Budget.outcome
val witness_before_outcome : t -> int -> int -> int array option Budget.outcome
val exists_race_outcome : t -> int -> int -> bool Budget.outcome
val schedule_count_outcome : t -> int Budget.outcome

(** {2 The auto engine's tier-1 oracle}

    Under [Engine.Auto] every per-pair primitive runs a tiered triage
    ladder: the attached approximation oracle, then the memoized state
    engine, then the SAT backend (at [n <= 128]), then bounded
    enumeration — tiers 2–4 each under their own {!Budget.sub} slice of
    the session budget ([EO_TRIAGE_REACH_NODES], [EO_TRIAGE_SAT_CONFLICTS],
    [EO_TRIAGE_ENUM_NODES]).  A tier that cannot decide escalates
    (counted in [triage_escalations]); answers are counted per tier in
    the [triage_tier_hits_*] counters; session-budget expiry degrades in
    the relation's sound direction exactly as under the other engines.

    The oracle itself lives a layer up (the triage library owns the
    approximation devices); sessions only know the verdict shape.  With
    no oracle attached the ladder simply starts at tier 2. *)

type oracle = {
  o_feasible : unit -> bool option;
  o_exists_before : int -> int -> bool option;
  o_must_before : int -> int -> bool option;
  o_race : int -> int -> bool option;
}
(** [Some v] must be {e exact} for the session's skeleton (the attacher
    clamps one-sided devices to their sound direction); [None] means
    "this tier cannot decide — escalate". *)

val set_oracle : t -> oracle -> unit
val has_oracle : t -> bool

val encode_program : Skeleton.t -> Encode.program
(** The projection the SAT backend compiles — exported so the CLI's
    [encode] subcommand can dump the very same formula as DIMACS. *)

(** {2 Registered folds — the consumer API}

    A fold is [init]/[visit]/[merge]: [init] allocates one accumulator
    (called once for the sequential path, once per subtree task for the
    parallel path), [visit] folds one schedule into it, and [merge dst
    src] combines per-task accumulators {e in task order} — it must be
    commutative and associative for the parallel result to equal the
    sequential one.  Registration returns a handle; {!result} forces the
    owning pass (driving every fold registered on it so far) and yields
    this fold's accumulator.  The schedule array passed to [visit] is
    reused between calls — copy to keep. *)

type 'a handle

val fold_schedules :
  t ->
  init:(unit -> 'a) ->
  visit:('a -> int array -> unit) ->
  merge:('a -> 'a -> unit) ->
  'a handle
(** Folds over {e every} feasible schedule (the full-enumeration pass,
    up to the session [limit]). *)

val fold_pinned :
  t ->
  init:(unit -> 'a) ->
  visit:('a -> int array -> Rel.t -> unit) ->
  merge:('a -> 'a -> unit) ->
  'a handle
(** Like {!fold_schedules}, but [visit] also receives the pinned partial
    order {!Pinned.po_of_schedule} of each schedule — computed once per
    schedule and shared by every pinned fold on the pass. *)

val fold_classes :
  t ->
  init:(unit -> 'a) ->
  visit:('a -> int array -> Rel.t -> unit) ->
  merge:('a -> 'a -> unit) ->
  'a handle
(** Folds over POR {e representatives} (at least one schedule per
    commutation class, usually exponentially fewer than [F(P)]), with
    each representative's pinned order.  Sound for per-class properties
    only. *)

val result : 'a handle -> 'a
(** Forces the pass this handle was registered on, if it has not run
    yet, and returns the fold's accumulator.  Idempotent. *)

val full_pass_stats : t -> (int * bool) option
(** [(feasible, truncated)] of the last full-enumeration pass, if one
    ran: how many schedules were visited and whether the [limit] cut the
    walk short. *)

(** {2 Cached whole-program summaries} *)

type summary = {
  n : int;
  feasible_count : int;
  truncated : bool;
  distinct_classes : int;
  before_some : Rel.t;
  comparable_some : Rel.t;
  incomparable_some : Rel.t;
}
(** Mirrors [Relations.t] (which is rebuilt from it): the three
    existential bit matrices every Table-1 relation derives from, plus
    the counts. *)

val summary : t -> summary
(** The summary by full enumeration (the reference path) — served from
    cache when possible, else computed as a {!fold_pinned} on this
    session and stored. *)

val summary_reduced : t -> summary
(** The summary the smart way: happened-before bits by shared-{!reach}
    reachability, comparability bits and class count as a
    {!fold_classes} over POR representatives, count by the counting DP.
    Cached separately from {!summary} (a [limit] gives the two different
    truncation behaviour). *)

val summary_outcome : t -> summary Budget.outcome
(** {!summary} with truncation made explicit: [Bound_hit] whenever the
    record's [truncated] flag is set — by [?limit] or by the budget. *)

val summary_reduced_outcome : t -> summary Budget.outcome

val cached_blob : t -> kind:string -> (unit -> string) -> string
(** [cached_blob t ~kind produce] serves an arbitrary consumer-encoded
    payload from the session cache under this session's key and the
    given [kind] (e.g. the race layer stores its feasible-race set), or
    runs [produce] and stores its result.  Payload coordinates are the
    consumer's business — encode via {!key} if event ids are involved. *)
