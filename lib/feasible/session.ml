type cache = { memory : bool; dir : string option }

let no_cache = { memory = false; dir = None }
let default_cache () = { memory = true; dir = Config.cache_dir () }

(* Process-wide LRU over serialized payloads, shared by every session so
   repeated analyses of one program amortize across sessions too.  Entry
   count is tiny (the payloads, not the programs, dominate), so a
   move-to-front assoc list is exact LRU at no bookkeeping cost.  Each
   session is still a single-domain object, but the LRU itself is the
   cross-request shared state of the analysis server — sessions living
   on different worker domains hit it concurrently — so its (tiny)
   critical sections run under one mutex. *)
module Lru = struct
  let capacity = 64
  let entries : (string * string) list ref = ref []
  let m = Mutex.create ()

  let locked f =
    Mutex.lock m;
    Fun.protect ~finally:(fun () -> Mutex.unlock m) f

  let find key =
    locked @@ fun () ->
    match List.assoc_opt key !entries with
    | None -> None
    | Some payload ->
        entries := (key, payload) :: List.remove_assoc key !entries;
        Some payload

  let store key payload =
    locked @@ fun () ->
    let rest = List.remove_assoc key !entries in
    let rest =
      if List.length rest >= capacity then List.filteri (fun i _ -> i < capacity - 1) rest
      else rest
    in
    entries := (key, payload) :: rest

  let clear () = locked (fun () -> entries := [])
end

let clear_memory_cache () = Lru.clear ()

type 'a handle = { mutable value : 'a option; mutable force : unit -> unit }

(* Tier-1 devices for the auto engine, attached from above (the triage
   layer owns the approximation devices; this module only knows their
   verdict shape).  [Some v] must be exact — the attacher is responsible
   for sound one-sided clamping — and [None] means "escalate". *)
type oracle = {
  o_feasible : unit -> bool option;
  o_exists_before : int -> int -> bool option;
  o_must_before : int -> int -> bool option;
  o_race : int -> int -> bool option;
}

(* A registered fold, existentially packed.  [visit] uniformly takes the
   pinned order as an option: it is [Some] whenever any fold on the pass
   declared [needs_po], so the (quadratic-ish) [Pinned.po_of_schedule]
   runs at most once per schedule however many consumers ride along. *)
type consumer =
  | C : {
      needs_po : bool;
      init : unit -> 'a;
      visit : 'a -> int array -> Rel.t option -> unit;
      merge : 'a -> 'a -> unit;
      handle : 'a handle;
    }
      -> consumer

type summary = {
  n : int;
  feasible_count : int;
  truncated : bool;
  distinct_classes : int;
  before_some : Rel.t;
  comparable_some : Rel.t;
  incomparable_some : Rel.t;
}

type t = {
  sk : Skeleton.t;
  limit : int option;
  jobs : int;
  stats : Telemetry.t option;
  c : Counters.t;
  budget : Budget.t;
  cache : cache;
  key : Program_key.t Lazy.t;
  mutable reach : Reach.t option;
  mutable encoder : Encode.t option;
  mutable oracle : oracle option;  (* auto tier 1, set by Triage.attach *)
  mutable auto_reach : Reach.t option;  (* auto tier 2, under its slice *)
  mutable auto_encoder : Encode.t option;  (* auto tier 3, under its slice *)
  mutable auto_enum_budget : Budget.t option;  (* auto tier 4 allotment *)
  mutable auto_enum_reach : Reach.t option;  (* auto tier 4 race engine *)
  auto_memo : (char * int * int, bool) Hashtbl.t;
  mutable pending_full : consumer list;  (* reversed registration order *)
  mutable pending_por : consumer list;
  mutable full_stats : (int * bool) option;  (* schedules visited, truncated *)
  mutable por_stats : (int * bool) option;  (* representatives, truncated *)
  mutable summary_memo : summary option;
  mutable summary_reduced_memo : summary option;
}

let create ?limit ?(jobs = 1) ?stats ?(budget = Budget.unlimited)
    ?(cache = no_cache) sk =
  let c = match stats with Some tel -> Telemetry.counters tel | None -> Counters.null in
  {
    sk;
    limit;
    jobs;
    stats;
    c;
    budget;
    cache;
    key = lazy (Program_key.of_execution sk.Skeleton.execution);
    reach = None;
    encoder = None;
    oracle = None;
    auto_reach = None;
    auto_encoder = None;
    auto_enum_budget = None;
    auto_enum_reach = None;
    auto_memo = Hashtbl.create 64;
    pending_full = [];
    pending_por = [];
    full_stats = None;
    por_stats = None;
    summary_memo = None;
    summary_reduced_memo = None;
  }

let of_execution ?limit ?jobs ?stats ?budget ?cache x =
  create ?limit ?jobs ?stats ?budget ?cache (Skeleton.of_execution x)

let skeleton t = t.sk
let execution t = t.sk.Skeleton.execution
let key t = Lazy.force t.key
let limit t = t.limit
let jobs t = t.jobs
let budget t = t.budget
let telemetry t = t.stats
let full_pass_stats t = t.full_stats

let reach t =
  match t.reach with
  | Some r -> r
  | None ->
      let r = Reach.create ~stats:t.c ~budget:t.budget t.sk in
      t.reach <- Some r;
      r

let set_run t =
  match t.stats with
  | None -> ()
  | Some tel ->
      Telemetry.set_run tel ~engine:(Engine.to_string (Engine.current ())) ~jobs:t.jobs

(* ------------------------------------------------------------------ *)
(* The SAT backend: one compiled formula per session (built lazily,
   like [reach]), per-pair queries as assumption probes.  Every
   positive SAT answer is decoded into a schedule and certified by the
   [Replay] oracle before it is believed — an encoder bug surfaces as a
   loud failure here, never as a wrong analysis answer. *)

let encode_program (sk : Skeleton.t) =
  {
    Encode.n = sk.Skeleton.n;
    po_preds = sk.Skeleton.po_preds;
    dep_preds = sk.Skeleton.dep_preds;
    kinds = sk.Skeleton.kinds;
    sem_init = sk.Skeleton.sem_init;
    sem_binary = sk.Skeleton.sem_binary;
    ev_init = sk.Skeleton.ev_init;
  }

let encoder t =
  match t.encoder with
  | Some e -> e
  | None ->
      set_run t;
      let e = Encode.build ~stats:t.c ~budget:t.budget (encode_program t.sk) in
      t.encoder <- Some e;
      e

let certify sk schedule =
  match Replay.check sk schedule with
  | Replay.Feasible -> schedule
  | v ->
      invalid_arg
        (Format.asprintf "Session: SAT witness rejected by replay (%a)"
           Replay.pp_verdict v)

let sat_engine () = Engine.current () = Engine.Sat

let witness_before t a b =
  if sat_engine () then
    Option.map (certify t.sk) (Encode.exists_before_witness (encoder t) a b)
  else Reach.witness_before (reach t) a b

let exists_before t a b =
  if sat_engine () then witness_before t a b <> None
  else Reach.exists_before (reach t) a b

let feasible_exists t =
  if sat_engine () then
    match Encode.feasible_witness (encoder t) with
    | Some s ->
        ignore (certify t.sk s);
        true
    | None -> false
  else Reach.feasible_exists (reach t)

let must_before t a b =
  if sat_engine () then a <> b && feasible_exists t && not (exists_before t b a)
  else Reach.must_before (reach t) a b

(* Session-independent SAT race probe, for callers (the race layer)
   that decide pairs on *modified* skeletons a session never owns. *)
let sat_exists_race ?(stats = Counters.null) ?budget sk a b =
  let enc = Encode.build ~stats ?budget (encode_program sk) in
  match Encode.race_witness enc a b with
  | Some (s1, s2) ->
      ignore (certify sk s1);
      ignore (certify sk s2);
      true
  | None -> false

let exists_race t a b =
  if sat_engine () then
    match Encode.race_witness (encoder t) a b with
    | Some (s1, s2) ->
        ignore (certify t.sk s1);
        ignore (certify t.sk s2);
        true
    | None -> false
  else Reach.exists_race (reach t) a b

(* ------------------------------------------------------------------ *)
(* The auto engine: a tiered triage ladder.  Each query tries the
   attached tier-1 approximation oracle, then the memoized state engine,
   then the SAT backend, then bounded enumeration — tiers 2–4 each under
   their own [Budget.sub] slice of the session budget.  A tier that
   cannot decide (oracle [None], or a slice expiry while the session
   budget is still alive) escalates to the next; expiry of the session
   budget itself, or of the final tier, degrades exactly like every
   other engine (the [_outcome] wrappers below catch it). *)

let auto_engine () = Engine.current () = Engine.Auto
let set_oracle t o = t.oracle <- Some o
let has_oracle t = t.oracle <> None

let auto_reach t =
  match t.auto_reach with
  | Some r -> r
  | None ->
      let b =
        Budget.sub t.budget ~node_budget:(Config.triage_reach_nodes ()) ()
      in
      let r = Reach.create ~stats:t.c ~budget:b t.sk in
      t.auto_reach <- Some r;
      r

(* The SAT tier compiles one two-copy-capable formula; past this many
   events the encoding itself dwarfs the other tiers, so the ladder
   skips straight to enumeration (no escalation counted: the tier is
   absent, not defeated). *)
let auto_sat_cap = 128

let auto_encoder t =
  if t.sk.Skeleton.n > auto_sat_cap then None
  else
    match t.auto_encoder with
    | Some e -> Some e
    | None ->
        let b =
          Budget.sub t.budget
            ~conflict_budget:(Config.triage_sat_conflicts ())
            ()
        in
        let e = Encode.build ~stats:t.c ~budget:b (encode_program t.sk) in
        t.auto_encoder <- Some e;
        Some e

let auto_enum_budget t =
  match t.auto_enum_budget with
  | Some b -> b
  | None ->
      let b =
        Budget.sub t.budget ~node_budget:(Config.triage_enum_nodes ()) ()
      in
      t.auto_enum_budget <- Some b;
      b

let auto_enum_reach t =
  match t.auto_enum_reach with
  | Some r -> r
  | None ->
      let r = Reach.create ~stats:t.c ~budget:(auto_enum_budget t) t.sk in
      t.auto_enum_reach <- Some r;
      r

(* A tier failed to decide.  If the *session* budget is gone this is a
   real expiry (re-raised, degraded by the outcome layer); otherwise
   count the escalation and let the caller try the next tier. *)
let escalate t =
  Budget.raise_if_exhausted t.budget;
  Counters.bump t.c Counters.Triage_escalations

let try_tier t f =
  match f () with v -> Some v | exception Budget.Expired -> escalate t; None

let oracle_verdict t f =
  match t.oracle with
  | None -> None
  | Some o -> (
      match f o with
      | Some v ->
          Counters.bump t.c Counters.Triage_approx_hits;
          Some v
      | None ->
          escalate t;
          None)

let sat_tier t probe =
  match auto_encoder t with
  | None -> None
  | Some enc -> (
      match try_tier t (fun () -> probe enc) with
      | Some v ->
          Counters.bump t.c Counters.Triage_sat_hits;
          Some v
      | None -> None)

let reach_tier t f =
  match try_tier t (fun () -> f (auto_reach t)) with
  | Some v ->
      Counters.bump t.c Counters.Triage_reach_hits;
      Some v
  | None -> None

let enum_hit t v =
  Counters.bump t.c Counters.Triage_enum_hits;
  v

let memo_pair t kind a b compute =
  let key = (kind, a, b) in
  match Hashtbl.find_opt t.auto_memo key with
  | Some v -> v
  | None ->
      let v = compute () in
      Hashtbl.add t.auto_memo key v;
      v

(* Tier 4 for the ordering queries: plain bounded schedule enumeration.
   A completed walk is exact (the search space is finite); a budget trip
   propagates as [Expired]. *)
let scan_before schedule a b =
  let n = Array.length schedule in
  let rec scan i =
    if i >= n then false
    else if schedule.(i) = a then true
    else if schedule.(i) = b then false
    else scan (i + 1)
  in
  scan 0

let enum_exists_before t a b =
  let found = ref false in
  let (_ : int) =
    Enumerate.iter ~stats:t.c ~budget:(auto_enum_budget t) t.sk
      (fun schedule ->
        if scan_before schedule a b then begin
          found := true;
          raise Enumerate.Stop
        end)
  in
  !found

let enum_witness_before t a b =
  let witness = ref None in
  let (_ : int) =
    Enumerate.iter ~stats:t.c ~budget:(auto_enum_budget t) t.sk
      (fun schedule ->
        if scan_before schedule a b then begin
          witness := Some (Array.copy schedule);
          raise Enumerate.Stop
        end)
  in
  !witness

let enum_must_before t a b =
  let any = ref false and contra = ref false in
  let (_ : int) =
    Enumerate.iter ~stats:t.c ~budget:(auto_enum_budget t) t.sk
      (fun schedule ->
        any := true;
        if scan_before schedule b a then begin
          contra := true;
          raise Enumerate.Stop
        end)
  in
  !any && not !contra

let enum_feasible t =
  let any = ref false in
  let (_ : int) =
    Enumerate.iter ~stats:t.c ~budget:(auto_enum_budget t) t.sk (fun _ ->
        any := true;
        raise Enumerate.Stop)
  in
  !any

let auto_exists_before t a b =
  if a = b then false
  else
    memo_pair t 'b' a b @@ fun () ->
    match oracle_verdict t (fun o -> o.o_exists_before a b) with
    | Some v -> v
    | None -> (
        match reach_tier t (fun r -> Reach.exists_before r a b) with
        | Some v -> v
        | None -> (
            match
              sat_tier t (fun enc ->
                  match Encode.exists_before_witness enc a b with
                  | Some s ->
                      ignore (certify t.sk s);
                      true
                  | None -> false)
            with
            | Some v -> v
            | None -> enum_hit t (enum_exists_before t a b)))

let auto_witness_before t a b =
  if a = b then None
  else
    (* No memo (the witness schedule is not worth retaining) and no
       oracle tier: the approximations prove bits, not schedules. *)
    match reach_tier t (fun r -> Reach.witness_before r a b) with
    | Some w -> w
    | None -> (
        match
          sat_tier t (fun enc ->
              Option.map (certify t.sk) (Encode.exists_before_witness enc a b))
        with
        | Some w -> w
        | None -> enum_hit t (enum_witness_before t a b))

let auto_feasible_exists t =
  memo_pair t 'f' 0 0 @@ fun () ->
  match oracle_verdict t (fun o -> o.o_feasible ()) with
  | Some v -> v
  | None -> (
      match reach_tier t Reach.feasible_exists with
      | Some v -> v
      | None -> (
          match
            sat_tier t (fun enc ->
                match Encode.feasible_witness enc with
                | Some s ->
                    ignore (certify t.sk s);
                    true
                | None -> false)
          with
          | Some v -> v
          | None -> enum_hit t (enum_feasible t)))

let auto_must_before t a b =
  if a = b then false
  else
    memo_pair t 'm' a b @@ fun () ->
    match oracle_verdict t (fun o -> o.o_must_before a b) with
    | Some v -> v
    | None -> (
        match reach_tier t (fun r -> Reach.must_before r a b) with
        | Some v -> v
        | None -> (
            match
              sat_tier t (fun enc ->
                  match Encode.feasible_witness enc with
                  | None -> false
                  | Some s -> (
                      ignore (certify t.sk s);
                      match Encode.exists_before_witness enc b a with
                      | Some s' ->
                          ignore (certify t.sk s');
                          false
                      | None -> true))
            with
            | Some v -> v
            | None -> enum_hit t (enum_must_before t a b)))

let auto_exists_race t a b =
  if a = b then false
  else
    memo_pair t 'r' a b @@ fun () ->
    match oracle_verdict t (fun o -> o.o_race a b) with
    | Some v -> v
    | None -> (
        match reach_tier t (fun r -> Reach.exists_race r a b) with
        | Some v -> v
        | None -> (
            match
              sat_tier t (fun enc ->
                  match Encode.race_witness enc a b with
                  | Some (s1, s2) ->
                      ignore (certify t.sk s1);
                      ignore (certify t.sk s2);
                      true
                  | None -> false)
            with
            | Some v -> v
            | None ->
                enum_hit t (Reach.exists_race (auto_enum_reach t) a b)))

(* Route the per-pair primitives through the ladder when the auto
   engine is selected. *)
let exists_before t a b =
  if auto_engine () then auto_exists_before t a b else exists_before t a b

let witness_before t a b =
  if auto_engine () then auto_witness_before t a b else witness_before t a b

let feasible_exists t =
  if auto_engine () then auto_feasible_exists t else feasible_exists t

let must_before t a b =
  if auto_engine () then auto_must_before t a b else must_before t a b

let exists_race t a b =
  if auto_engine () then auto_exists_race t a b else exists_race t a b

let worker_counters c = if Counters.enabled c then Counters.create () else Counters.null

(* ------------------------------------------------------------------ *)
(* The keyed cache: in-memory LRU in front of the optional disk store. *)

let cache_enabled t = t.cache.memory || t.cache.dir <> None

(* Every dimension that changes what a result means is part of the key,
   so staleness is impossible by construction: engine or memory model
   or limit or program mismatch = different key = miss — cached answers
   can never cross models. *)
let entry_key t ~kind =
  Printf.sprintf "%s.%s.%s.%s.%s" (Lazy.force t.key).Program_key.hash kind
    (Engine.to_string (Engine.current ()))
    (Memmodel.to_string (Memmodel.current ()))
    (match t.limit with None -> "nolimit" | Some l -> string_of_int l)

let cache_version = "eocache/1"

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let disk_path t ek =
  match t.cache.dir with None -> None | Some dir -> Some (Filename.concat dir (ek ^ ".eocache"))

let disk_read t ek =
  match disk_path t ek with
  | None -> None
  | Some path -> (
      try
        let ic = open_in_bin path in
        Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
        let len = in_channel_length ic in
        let content = really_input_string ic len in
        match String.index_opt content '\n' with
        | None -> None
        | Some i -> (
            if String.sub content 0 i <> cache_version then None
            else
              let rest = String.sub content (i + 1) (len - i - 1) in
              match String.index_opt rest '\n' with
              | None -> None
              | Some j ->
                  if String.sub rest 0 j <> ek then None
                  else Some (String.sub rest (j + 1) (String.length rest - j - 1)))
      with Sys_error _ | End_of_file -> None)

(* Writers racing on one entry must never observe each other's partial
   output: each write goes to a tmp name unique per process *and* per
   write (two domains of one process share a pid), and only a complete
   tmp file is renamed — atomically — over the entry. *)
let tmp_counter = Atomic.make 0

let disk_write t ek payload =
  match disk_path t ek with
  | None -> ()
  | Some path -> (
      try
        Option.iter mkdir_p t.cache.dir;
        let tmp =
          Printf.sprintf "%s.%d.%d.tmp" path (Unix.getpid ())
            (Atomic.fetch_and_add tmp_counter 1)
        in
        let oc = open_out_bin tmp in
        (match
           Fun.protect
             ~finally:(fun () -> close_out_noerr oc)
             (fun () ->
               output_string oc cache_version;
               output_char oc '\n';
               output_string oc ek;
               output_char oc '\n';
               output_string oc payload)
         with
        | () -> Sys.rename tmp path
        | exception e ->
            (try Sys.remove tmp with Sys_error _ -> ());
            raise e)
      with Sys_error _ -> ())

let lookup_cached t ~kind ~decode =
  if not (cache_enabled t) then None
  else begin
    let ek = entry_key t ~kind in
    let decoded src payload =
      match decode payload with
      | Some v ->
          Counters.bump t.c
            (match src with
            | `Memory -> Counters.Cache_memory_hits
            | `Disk -> Counters.Cache_disk_hits);
          if src = `Disk && t.cache.memory then Lru.store ek payload;
          Some v
      | None ->
          Counters.bump t.c Counters.Cache_misses;
          None
    in
    match (if t.cache.memory then Lru.find ek else None) with
    | Some payload -> decoded `Memory payload
    | None -> (
        match disk_read t ek with
        | Some payload -> decoded `Disk payload
        | None ->
            Counters.bump t.c Counters.Cache_misses;
            None)
  end

let store_cached t ~kind payload =
  (* Budget-truncated results are partial in a nondeterministic,
     timing-dependent way; memoizing them inside this session is fine,
     but they must never be filed under a key a later (unbudgeted)
     session would trust. *)
  if cache_enabled t && not (Budget.exhausted t.budget) then begin
    let ek = entry_key t ~kind in
    if t.cache.memory then Lru.store ek payload;
    disk_write t ek payload;
    Counters.bump t.c Counters.Cache_stores
  end

(* ------------------------------------------------------------------ *)
(* Pass drivers.  Each drains every fold registered on its pass: one
   traversal serves them all.  The parallel paths follow the invariance
   discipline of {!Parallel}: per-task accumulators and counters are
   created per subtree and merged on the coordinating domain in task
   order, so results and search counters are bit-identical to jobs=1. *)

(* Instantiate one consumer for a sequential walk: an [apply] to call
   per schedule and a [finish] that publishes the accumulator. *)
let sequential_instances consumers =
  List.map
    (fun (C r) ->
      let acc = r.init () in
      ((fun schedule po -> r.visit acc schedule po), fun () -> r.handle.value <- Some acc))
    consumers

(* Instantiate for a parallel walk: a coordinator-side master plus a
   per-task factory whose [commit] merges into the master (commits run
   on the coordinator, in task order). *)
let parallel_instances consumers =
  List.map
    (fun (C r) ->
      let master = r.init () in
      let make_task () =
        let acc = r.init () in
        ((fun schedule po -> r.visit acc schedule po), fun () -> r.merge master acc)
      in
      (make_task, fun () -> r.handle.value <- Some master))
    consumers

let needs_po consumers = List.exists (fun (C r) -> r.needs_po) consumers

let run_full t =
  match t.pending_full with
  | [] -> ()
  | pending ->
      t.pending_full <- [];
      let consumers = List.rev pending in
      let c = t.c in
      set_run t;
      Counters.bump c Counters.Session_passes;
      Counters.time c Counters.T_total @@ fun () ->
      let sk = t.sk in
      let with_po = needs_po consumers in
      let po_opt schedule =
        if with_po then Some (Pinned.po_of_schedule sk schedule) else None
      in
      let run_sequential () =
        let insts = sequential_instances consumers in
        let count =
          Counters.time c Counters.T_enumerate (fun () ->
              Enumerate.iter ?limit:t.limit ~stats:c ~budget:t.budget sk
                (fun schedule ->
                  let po = po_opt schedule in
                  List.iter (fun (apply, _) -> apply schedule po) insts))
        in
        let truncated =
          (match t.limit with Some l -> count >= l | None -> false)
          || Budget.exhausted t.budget
        in
        t.full_stats <- Some (count, truncated);
        List.iter (fun (_, finish) -> finish ()) insts
      in
      let parallel = t.jobs > 1 && t.limit = None && Engine.current () = Engine.Packed in
      if not parallel then run_sequential ()
      else begin
        match Parallel.split_prefixes ~stats:c sk ~jobs:t.jobs with
        | None -> run_sequential ()
        | Some (depth, prefixes) ->
            Option.iter (fun tel -> Telemetry.set_split_depth tel depth) t.stats;
            let insts = parallel_instances consumers in
            let results =
              Counters.time c Counters.T_enumerate (fun () ->
                  Parallel.map ?telemetry:t.stats ~budget:t.budget ~jobs:t.jobs
                    (fun prefix ->
                      let wc = worker_counters c in
                      let tasks = List.map (fun (make_task, _) -> make_task ()) insts in
                      let count =
                        Enumerate.iter_from ~stats:wc ~budget:t.budget sk ~prefix
                          (fun schedule ->
                            let po = po_opt schedule in
                            List.iter (fun (apply, _) -> apply schedule po) tasks)
                      in
                      (count, List.map snd tasks, wc))
                    prefixes)
            in
            Option.iter
              (fun tel ->
                Telemetry.set_task_schedules tel (Array.map (fun (k, _, _) -> k) results))
              t.stats;
            let total =
              Array.fold_left
                (fun total (count, commits, wc) ->
                  Counters.bump c Counters.Par_merges;
                  Counters.merge_into ~dst:c wc;
                  List.iter (fun commit -> commit ()) commits;
                  total + count)
                0 results
            in
            t.full_stats <- Some (total, Budget.exhausted t.budget);
            List.iter (fun (_, finish) -> finish ()) insts
      end

let run_por t =
  match t.pending_por with
  | [] -> ()
  | pending ->
      t.pending_por <- [];
      let consumers = List.rev pending in
      let c = t.c in
      set_run t;
      Counters.bump c Counters.Session_passes;
      Counters.time c Counters.T_total @@ fun () ->
      let sk = t.sk in
      let run_sequential () =
        let insts = sequential_instances consumers in
        let reps =
          Counters.time c Counters.T_enumerate (fun () ->
              Por.iter_representatives ?limit:t.limit ~stats:c ~budget:t.budget
                sk (fun schedule ->
                  let po = Some (Pinned.po_of_schedule sk schedule) in
                  List.iter (fun (apply, _) -> apply schedule po) insts))
        in
        let truncated =
          (match t.limit with Some l -> reps >= l | None -> false)
          || Budget.exhausted t.budget
        in
        t.por_stats <- Some (reps, truncated);
        List.iter (fun (_, finish) -> finish ()) insts
      in
      let parallel = t.jobs > 1 && t.limit = None && Engine.current () = Engine.Packed in
      if not parallel then run_sequential ()
      else begin
        match Parallel.split_por_tasks ~stats:c sk ~jobs:t.jobs with
        | None -> run_sequential ()
        | Some (depth, tasks) ->
            Option.iter (fun tel -> Telemetry.set_split_depth tel depth) t.stats;
            let insts = parallel_instances consumers in
            let parts =
              Counters.time c Counters.T_enumerate (fun () ->
                  Parallel.map ?telemetry:t.stats ~budget:t.budget ~jobs:t.jobs
                    (fun task ->
                      let wc = worker_counters c in
                      let tinsts = List.map (fun (make_task, _) -> make_task ()) insts in
                      let reps =
                        Por.iter_task ~stats:wc ~budget:t.budget sk task
                          (fun schedule ->
                            let po = Some (Pinned.po_of_schedule sk schedule) in
                            List.iter (fun (apply, _) -> apply schedule po) tinsts)
                      in
                      (reps, List.map snd tinsts, wc))
                    tasks)
            in
            Option.iter
              (fun tel ->
                Telemetry.set_task_schedules tel (Array.map (fun (r, _, _) -> r) parts))
              t.stats;
            let total =
              Array.fold_left
                (fun total (reps, commits, wc) ->
                  Counters.bump c Counters.Par_merges;
                  Counters.merge_into ~dst:c wc;
                  List.iter (fun commit -> commit ()) commits;
                  total + reps)
                0 parts
            in
            t.por_stats <- Some (total, Budget.exhausted t.budget);
            List.iter (fun (_, finish) -> finish ()) insts
      end

(* ------------------------------------------------------------------ *)
(* Registration. *)

let register_full t ~needs_po ~init ~visit ~merge =
  let handle = { value = None; force = Fun.id } in
  handle.force <- (fun () -> run_full t);
  t.pending_full <- C { needs_po; init; visit; merge; handle } :: t.pending_full;
  handle

let fold_schedules t ~init ~visit ~merge =
  register_full t ~needs_po:false ~init
    ~visit:(fun acc schedule _po -> visit acc schedule)
    ~merge

let fold_pinned t ~init ~visit ~merge =
  register_full t ~needs_po:true ~init
    ~visit:(fun acc schedule po -> visit acc schedule (Option.get po))
    ~merge

let fold_classes t ~init ~visit ~merge =
  let handle = { value = None; force = Fun.id } in
  handle.force <- (fun () -> run_por t);
  t.pending_por <-
    C
      {
        needs_po = true;
        init;
        visit = (fun acc schedule po -> visit acc schedule (Option.get po));
        merge;
        handle;
      }
    :: t.pending_por;
  handle

let result h =
  match h.value with
  | Some v -> v
  | None ->
      h.force ();
      Option.get h.value

(* ------------------------------------------------------------------ *)
(* The summary consumer (what [Relations.t] is rebuilt from), moved
   here from lib/core so one registered fold can serve it. *)

type sum_acc = {
  before : Rel.t;
  comparable : Rel.t;
  incomparable : Rel.t;
  classes : unit Wordtbl.t;
  position : int array;
}

let make_acc n =
  {
    before = Rel.create n;
    comparable = Rel.create n;
    incomparable = Rel.create n;
    classes = Wordtbl.create 64;
    position = Array.make n 0;
  }

let record_class acc po =
  let key = Rel.pack po in
  if not (Wordtbl.mem acc.classes key) then Wordtbl.add acc.classes key ()

let record_comparability acc po =
  let n = Array.length acc.position in
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      if a <> b then
        if Rel.mem po a b || Rel.mem po b a then Rel.add acc.comparable a b
        else Rel.add acc.incomparable a b
    done
  done

let visit_full acc schedule po =
  let n = Array.length schedule in
  Array.iteri (fun pos e -> acc.position.(e) <- pos) schedule;
  record_class acc po;
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      if a <> b && acc.position.(a) < acc.position.(b) then Rel.add acc.before a b
    done
  done;
  record_comparability acc po

let visit_class acc _schedule po =
  record_class acc po;
  record_comparability acc po

let merge_acc dst src =
  Rel.union_into dst.before src.before;
  Rel.union_into dst.comparable src.comparable;
  Rel.union_into dst.incomparable src.incomparable;
  Wordtbl.iter
    (fun k () -> if not (Wordtbl.mem dst.classes k) then Wordtbl.add dst.classes k ())
    src.classes

(* ------------------------------------------------------------------ *)
(* Summary (de)serialization, in canonical coordinates. *)

let encode_rel buf to_canonical tag rel =
  let pairs =
    List.sort compare
      (List.map (fun (a, b) -> (to_canonical.(a), to_canonical.(b))) (Rel.to_pairs rel))
  in
  Printf.bprintf buf "%s %d\n" tag (List.length pairs);
  List.iter (fun (a, b) -> Printf.bprintf buf "%d %d\n" a b) pairs

let encode_summary t s =
  let tc = (Lazy.force t.key).Program_key.to_canonical in
  let buf = Buffer.create 256 in
  Printf.bprintf buf "summary %d %d %b %d\n" s.n s.feasible_count s.truncated
    s.distinct_classes;
  encode_rel buf tc "before" s.before_some;
  encode_rel buf tc "comparable" s.comparable_some;
  encode_rel buf tc "incomparable" s.incomparable_some;
  Buffer.contents buf

exception Malformed

let decode_summary t payload =
  let oc = (Lazy.force t.key).Program_key.of_canonical in
  let lines = Array.of_list (String.split_on_char '\n' payload) in
  let cursor = ref 0 in
  let next () =
    if !cursor >= Array.length lines then raise Malformed
    else begin
      let l = lines.(!cursor) in
      incr cursor;
      l
    end
  in
  try
    let n, feasible_count, truncated, distinct_classes =
      Scanf.sscanf (next ()) "summary %d %d %B %d" (fun a b c d -> (a, b, c, d))
    in
    if n <> Array.length oc then None
    else begin
      let decode_rel tag =
        let count = Scanf.sscanf (next ()) "%s %d" (fun t c -> if t <> tag then raise Malformed else c) in
        let rel = Rel.create n in
        for _ = 1 to count do
          let a, b = Scanf.sscanf (next ()) "%d %d" (fun a b -> (a, b)) in
          if a < 0 || a >= n || b < 0 || b >= n then raise Malformed;
          Rel.add rel oc.(a) oc.(b)
        done;
        rel
      in
      let before_some = decode_rel "before" in
      let comparable_some = decode_rel "comparable" in
      let incomparable_some = decode_rel "incomparable" in
      Some
        {
          n;
          feasible_count;
          truncated;
          distinct_classes;
          before_some;
          comparable_some;
          incomparable_some;
        }
    end
  with Malformed | Scanf.Scan_failure _ | Failure _ | End_of_file -> None

(* ------------------------------------------------------------------ *)
(* Cached whole-program summaries. *)

let compute_summary_full t =
  let n = t.sk.Skeleton.n in
  let handle =
    fold_pinned t ~init:(fun () -> make_acc n) ~visit:visit_full ~merge:merge_acc
  in
  let acc = result handle in
  let feasible_count, truncated = Option.get t.full_stats in
  {
    n;
    feasible_count;
    truncated;
    distinct_classes = Wordtbl.length acc.classes;
    before_some = acc.before;
    comparable_some = acc.comparable;
    incomparable_some = acc.incomparable;
  }

let compute_summary_reduced t =
  let n = t.sk.Skeleton.n in
  let c = t.c in
  set_run t;
  let reach = reach t in
  let parallel = t.jobs > 1 && Engine.current () = Engine.Packed in
  let before_some = Rel.create n in
  (* Happened-before bits: n² reachability queries.  Parallel mode splits
     the rows into one contiguous block per worker, each with its own
     memoizing engine (the memo tables are not shared between domains);
     blocks touch disjoint rows, so the union is trivially deterministic. *)
  let fill_before reach rel lo hi =
    for a = lo to hi do
      for b = 0 to n - 1 do
        if Reach.exists_before reach a b then Rel.add rel a b
      done
    done
  in
  (* Under the SAT engine the happened-before bits come from assumption
     probes on the shared compiled formula (each positive answer
     replay-certified); class structure and counting below stay on the
     enumeration engines either way. *)
  let fill_before_sat rel =
    for a = 0 to n - 1 do
      for b = 0 to n - 1 do
        if a <> b && exists_before t a b then Rel.add rel a b
      done
    done
  in
  Counters.time c Counters.T_total (fun () ->
      Counters.time c Counters.T_before (fun () ->
          (* Expiry mid-fill leaves the rows already decided in place:
             a sound under-approximation of the could-have-before bits. *)
          if sat_engine () || auto_engine () then (
            try fill_before_sat before_some with Budget.Expired -> ())
          else if (not parallel) || n < 2 then (
            try fill_before reach before_some 0 (n - 1)
            with Budget.Expired -> ())
          else begin
            let k = min t.jobs n in
            let ranges =
              Array.init k (fun i ->
                  let lo = i * n / k and hi = (((i + 1) * n) / k) - 1 in
                  (lo, hi))
            in
            let parts =
              Parallel.map ?telemetry:t.stats ~budget:t.budget ~jobs:t.jobs
                (fun (lo, hi) ->
                  let wc = worker_counters c in
                  let rel = Rel.create n in
                  let worker_reach =
                    Reach.create ~stats:wc ~budget:t.budget t.sk
                  in
                  (try fill_before worker_reach rel lo hi
                   with Budget.Expired -> ());
                  Reach.stats_commit worker_reach;
                  (rel, wc))
                ranges
            in
            Array.iter
              (fun (rel, wc) ->
                Counters.merge_into ~dst:c wc;
                Rel.union_into before_some rel)
              parts
          end));
  (* Comparability bits and class count ride the POR pass (together with
     any other class folds registered on this session). *)
  let handle =
    fold_classes t ~init:(fun () -> make_acc n) ~visit:visit_class ~merge:merge_acc
  in
  let acc = result handle in
  let truncated =
    (match t.por_stats with Some (_, tr) -> tr | None -> false)
    || Budget.exhausted t.budget
  in
  (* A DP count cut short has no partial value; 0 is the only sound
     under-count, and [truncated] above tells the reader it is one. *)
  let feasible_count =
    try
      Counters.time c Counters.T_total (fun () ->
          Counters.time c Counters.T_count (fun () ->
              Reach.schedule_count reach))
    with Budget.Expired -> 0
  in
  Reach.stats_commit reach;
  {
    n;
    feasible_count;
    truncated;
    distinct_classes = Wordtbl.length acc.classes;
    before_some;
    comparable_some = acc.comparable;
    incomparable_some = acc.incomparable;
  }

(* Every session answer is attributed to the model it was decided
   under — the per-pair outcome wrappers bump in [outcome_of]; the
   whole-trace entry points (summaries, cached blobs) bump here. *)
let bump_model t =
  Counters.bump t.c (Memmodel.counter_key (Memmodel.current ()))

let cached_summary t ~kind ~memo ~set_memo ~compute =
  Counters.bump t.c Counters.Session_queries;
  bump_model t;
  match memo with
  | Some s -> s
  | None ->
      let s =
        match lookup_cached t ~kind ~decode:(decode_summary t) with
        | Some s -> s
        | None ->
            let s = compute t in
            if cache_enabled t then store_cached t ~kind (encode_summary t s);
            s
      in
      Counters.set t.c Counters.Classes s.distinct_classes;
      set_memo s;
      s

let summary t =
  cached_summary t ~kind:"summary-full" ~memo:t.summary_memo
    ~set_memo:(fun s -> t.summary_memo <- Some s)
    ~compute:compute_summary_full

let summary_reduced t =
  cached_summary t ~kind:"summary-reduced" ~memo:t.summary_reduced_memo
    ~set_memo:(fun s -> t.summary_reduced_memo <- Some s)
    ~compute:compute_summary_reduced

let schedule_count t =
  Counters.bump t.c Counters.Session_queries;
  Reach.schedule_count (reach t)

let cached_blob t ~kind produce =
  Counters.bump t.c Counters.Session_queries;
  bump_model t;
  match lookup_cached t ~kind ~decode:(fun p -> Some p) with
  | Some payload -> payload
  | None ->
      let payload = produce () in
      store_cached t ~kind payload;
      payload

(* ------------------------------------------------------------------ *)
(* Typed degradation: budget expiry never crosses this API as an
   exception.  Could-have queries degrade to [false] / [None] — a sound
   under-report, the same direction as a [?limit] hit — while must-have
   queries degrade to [true], a sound over-approximation.  Either way
   the partial answer errs on the side the relation's contract already
   allows, and the [outcome] type says which kind of answer this is. *)

let degraded t v =
  Counters.bump t.c Counters.Timeout_expirations;
  Counters.bump t.c Counters.Timeout_degraded;
  Budget.Bound_hit v

let outcome_of t ~fallback f =
  bump_model t;
  match f () with
  | v -> Budget.Exact v
  | exception Budget.Expired -> degraded t fallback

let feasible_exists_outcome t =
  outcome_of t ~fallback:true (fun () -> feasible_exists t)

let exists_before_outcome t a b =
  outcome_of t ~fallback:false (fun () -> exists_before t a b)

let witness_before_outcome t a b =
  outcome_of t ~fallback:None (fun () -> witness_before t a b)

let must_before_outcome t a b =
  if a = b then Budget.Exact false
  else outcome_of t ~fallback:true (fun () -> must_before t a b)

let exists_race_outcome t a b =
  outcome_of t ~fallback:false (fun () -> exists_race t a b)

let schedule_count_outcome t =
  outcome_of t ~fallback:0 (fun () -> schedule_count t)

(* Summaries truncate internally (enumeration stops like a [?limit]
   hit) rather than raising, so the outcome is read off the record's
   own [truncated] flag. *)
let summary_mark t s =
  if s.truncated then begin
    if Budget.exhausted t.budget then
      Counters.bump t.c Counters.Timeout_degraded;
    Budget.Bound_hit s
  end
  else Budget.Exact s

let summary_outcome t = summary_mark t (summary t)
let summary_reduced_outcome t = summary_mark t (summary_reduced t)

(* The plain (bool-returning) query API is the outcome API with the
   degradation folded in — existing callers keep their signatures and
   inherit graceful expiry for free. *)
let feasible_exists t = Budget.value (feasible_exists_outcome t)
let exists_before t a b = Budget.value (exists_before_outcome t a b)
let witness_before t a b = Budget.value (witness_before_outcome t a b)
let must_before t a b = Budget.value (must_before_outcome t a b)
let exists_race t a b = Budget.value (exists_race_outcome t a b)
let schedule_count t = Budget.value (schedule_count_outcome t)
