(** Selection between the exact decision engines.

    [Packed] (the default) is the bitset-frontier search with packed memo
    keys; [Naive] is the seed engine — a full [0 .. n-1] ready scan at
    every node and list-based sleep sets — kept as the oracle for
    differential tests.  [Sat] compiles the feasibility conditions to CNF
    once per program and answers per-pair ordering and race queries with
    the in-repo CDCL solver under assumptions (see [Eo_encode]); queries
    with no SAT formulation (class summaries, schedule counting) fall
    back to the packed search.  [Auto] is the tiered triage ladder: each
    per-pair query first consults the one-sided polynomial deciders of
    [lib/approx] (installed by [Triage.attach]), then escalates
    undecided survivors through memoized reachability, the SAT engine
    and finally bounded enumeration, each tier under its own
    [Budget.sub] slice; whole-space folds (class summaries, schedule
    counting) run the packed search.  All engines produce identical
    results on every query (property-tested); only the cost profile
    differs.

    The choice is read from the [EO_ENGINE] environment variable
    ([naive] / [packed] / [sat] / [auto], parsed by {!Config.engine}) on first
    use; {!set} overrides it.  The switch is {e domain-local}: each
    domain resolves its own copy (starting from the environment
    default), so a server worker pool can honour per-request engine
    selections without synchronization.  {!Parallel.map} re-seeds the
    domains it spawns from the coordinating domain's choice, so engine
    reads inside a parallel fan-out agree with the coordinator. *)

type t = Naive | Packed | Sat | Auto

val current : unit -> t

val set : t -> unit

val default_of_env : unit -> t
(** The environment default ([EO_ENGINE], else [Packed]) without
    consulting or touching the domain-local override — what a server
    resolves per request so one request's {!set} never leaks into the
    next. *)

val to_string : t -> string

val of_string : string -> t option
