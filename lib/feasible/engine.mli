(** Selection between the seed search implementation and the packed one.

    [Packed] (the default) is the bitset-frontier search with packed memo
    keys; [Naive] is the seed engine — a full [0 .. n-1] ready scan at
    every node and list-based sleep sets — kept as the oracle for
    differential tests.  Both produce bit-identical results on every query
    (property-tested); only the cost differs.

    The choice is read from the [EO_ENGINE] environment variable
    ([naive] / [packed], parsed by {!Config.engine_is_packed}) on first
    use; {!set} overrides it.  Set it before spawning worker domains —
    the switch itself is not synchronized. *)

type t = Naive | Packed

val current : unit -> t

val set : t -> unit

val to_string : t -> string

val of_string : string -> t option
