(** Selection between the exact decision engines.

    [Packed] (the default) is the bitset-frontier search with packed memo
    keys; [Naive] is the seed engine — a full [0 .. n-1] ready scan at
    every node and list-based sleep sets — kept as the oracle for
    differential tests.  [Sat] compiles the feasibility conditions to CNF
    once per program and answers per-pair ordering and race queries with
    the in-repo CDCL solver under assumptions (see [Eo_encode]); queries
    with no SAT formulation (class summaries, schedule counting) fall
    back to the packed search.  All engines produce identical results on
    every query (property-tested); only the cost profile differs.

    The choice is read from the [EO_ENGINE] environment variable
    ([naive] / [packed] / [sat], parsed by {!Config.engine}) on first
    use; {!set} overrides it.  Set it before spawning worker domains —
    the switch itself is not synchronized. *)

type t = Naive | Packed | Sat

val current : unit -> t

val set : t -> unit

val to_string : t -> string

val of_string : string -> t option
