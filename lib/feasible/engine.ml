type t = Naive | Packed | Sat | Auto

let to_string = function
  | Naive -> "naive"
  | Packed -> "packed"
  | Sat -> "sat"
  | Auto -> "auto"

let of_string s =
  match String.lowercase_ascii s with
  | "naive" -> Some Naive
  | "packed" -> Some Packed
  | "sat" -> Some Sat
  | "auto" -> Some Auto
  | _ -> None

let default_of_env () =
  match of_string (Config.engine ()) with Some e -> e | None -> Packed

(* Domain-local, resolved lazily from EO_ENGINE (via the shared Config
   parser) so the CLI, bench and tests all see one switch and [set]
   overrides it (differential tests flip it back and forth).  Domain-
   local rather than a global ref so a server worker pool can honour a
   per-request engine without the domains racing on one cell; freshly
   spawned domains start from the environment default, and [Parallel.map]
   re-seeds its workers from the coordinating domain's choice so the
   fan-out engines agree with their coordinator. *)
let selected : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let current () =
  match Domain.DLS.get selected with
  | Some e -> e
  | None ->
      let e = default_of_env () in
      Domain.DLS.set selected (Some e);
      e

let set e = Domain.DLS.set selected (Some e)
