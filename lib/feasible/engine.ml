type t = Naive | Packed

let to_string = function Naive -> "naive" | Packed -> "packed"

let of_string s =
  match String.lowercase_ascii s with
  | "naive" -> Some Naive
  | "packed" -> Some Packed
  | _ -> None

(* Resolved lazily from EO_ENGINE so the CLI, bench and tests all see one
   switch; [set] overrides (differential tests flip it back and forth). *)
let selected = ref None

let current () =
  match !selected with
  | Some e -> e
  | None ->
      let e =
        match Sys.getenv_opt "EO_ENGINE" with
        | None -> Packed
        | Some s -> (
            match of_string s with
            | Some e -> e
            | None ->
                Printf.eprintf
                  "warning: unknown EO_ENGINE=%S (expected 'naive' or \
                   'packed'); using packed\n\
                   %!"
                  s;
                Packed)
      in
      selected := Some e;
      e

let set e = selected := Some e
