type t = Naive | Packed | Sat

let to_string = function Naive -> "naive" | Packed -> "packed" | Sat -> "sat"

let of_string s =
  match String.lowercase_ascii s with
  | "naive" -> Some Naive
  | "packed" -> Some Packed
  | "sat" -> Some Sat
  | _ -> None

(* Resolved lazily from EO_ENGINE (via the shared Config parser) so the
   CLI, bench and tests all see one switch; [set] overrides (differential
   tests flip it back and forth). *)
let selected = ref None

let current () =
  match !selected with
  | Some e -> e
  | None ->
      let e =
        match of_string (Config.engine ()) with
        | Some e -> e
        | None -> Packed
      in
      selected := Some e;
      e

let set e = selected := Some e
