(** Partial-order reduction (sleep sets) over the feasible-schedule space.

    Two adjacent schedule steps commute when they belong to different
    processes, touch no common synchronization object, and have no
    dependence between them; schedules equal up to such swaps realize the
    same pinned partial order (the FIFO pairing and trigger assignment only
    read per-object subsequences).  Sleep-set exploration (Godefroid)
    visits at least one representative of every commutation class while
    skipping most of its members — often exponentially fewer schedules, with
    every distinct pinned order still observed.

    Two implementations sit behind {!iter_representatives} (selected by
    {!Engine}): the seed search with list-based sleep sets over a full
    ready scan, and the packed search, which precomputes the independence
    relation as a bit matrix ({!independence}) and keeps sleep/explored
    sets as preallocated per-depth bitsets, walking the maintained
    {!Enumerate} frontier.  Both visit the same representatives in the
    same order.

    This accelerates the class-level analyses (the concurrent-with /
    ordered-with matrices, distinct-class counting); the happened-before
    side is served by {!Reach} instead, because order bits differ between
    members of one class.  Property tests check that the set of pinned
    orders found equals full enumeration's on random programs. *)

val iter_representatives :
  ?limit:int ->
  ?stats:Counters.t ->
  ?budget:Budget.t ->
  Skeleton.t ->
  (int array -> unit) ->
  int
(** [iter_representatives sk f] calls [f] on representative feasible
    schedules — at least one per commutation class — and returns how many
    were visited.  The array is reused between calls.

    [?stats] accumulates [Por_nodes] / [Por_pops] / [Por_sleep_prunes] /
    [Por_indep_refinements] / [Por_reps] (plus [Limit_truncations]).
    Pop counts are engine-relative; sleep-prune counts are identical
    across engines — both prune exactly the ready-but-asleep
    candidates.

    [?budget] is polled once per tree node; expiry stops the walk like a
    [?limit] hit (representatives already visited stand,
    [Timeout_expirations] is bumped, no exception escapes). *)

val count_representatives :
  ?limit:int -> ?stats:Counters.t -> ?budget:Budget.t -> Skeleton.t -> int

val independent : Skeleton.t -> int -> int -> bool
(** The static independence relation used for commutation: different
    processes, no shared synchronization object, no dependence edge either
    way.  (Exposed for tests.) *)

val independence : Skeleton.t -> Rel.t
(** The whole relation as a symmetric bit matrix; row [e] is
    [{ u | independent u e }], so one sleep-set refinement is a single
    row intersection. *)

(** {2 Subtree tasks}

    Hooks for {!Parallel}: the sleep-set tree splits at a chosen depth
    into independent subtree tasks.  Unlike plain enumeration the prefix
    alone is not enough — a task must also carry the sleep set its node
    was reached with, otherwise workers would re-explore schedules the
    sequential search intentionally skips (and double-count classes). *)

type task = { prefix : int array; sleep : Bitset.t }

val tasks :
  ?stats:Counters.t -> ?budget:Budget.t -> Skeleton.t -> depth:int -> task list
(** All sleep-set tree nodes at exactly [depth], in visit order.  Their
    subtrees partition the representative schedules: summing
    {!iter_task} over all tasks equals [count_representatives] with no
    representative visited twice.  Requires [0 <= depth < n].  With
    [?stats], counts the tree nodes strictly above [depth] — the split
    walk's share, complementing {!iter_task}'s. *)

val iter_task :
  ?stats:Counters.t ->
  ?budget:Budget.t ->
  Skeleton.t ->
  task ->
  (int array -> unit) ->
  int
(** Enumerates (with the packed search, irrespective of {!Engine}) the
    representatives in one task's subtree; the array passed to [f]
    carries the prefix in place.  Safe to call from a worker domain with
    its own [Skeleton.t]-derived state. *)
