(** Deterministic multicore fan-out for the exact engines.

    The feasible-schedule DFS has a convenient structure for parallelism:
    the subtrees below the feasible prefixes of any fixed depth partition
    the schedule space, and every per-schedule accumulation the analyses
    perform (relation-bit unions, schedule counts, class-set unions) is
    commutative and associative.  So the tree is cut at a shallow depth
    into independent subtree tasks, worker domains drain the task array
    through an atomic cursor, and results are merged {e in task order} —
    the outcome is bit-identical whatever the interleaving of domains, and
    identical to the sequential engine's.

    Telemetry follows the same discipline: split-depth probing is never
    counted, the chosen depth is re-walked once with counters on, and
    per-worker counters merge in task order — so every search counter is
    bit-identical across [jobs] too.  Only [Par_tasks] / [Par_merges],
    the memo statistics and the wall-clock fields depend on [jobs].

    Tasks must not share mutable state: each worker builds its own search
    state / memo tables from the (immutable) skeleton.  Early-stopping
    queries ([?limit]) stay sequential — a cross-subtree cutoff is
    order-dependent by nature. *)

val default_jobs : unit -> int
(** Worker-domain count from the [EO_JOBS] environment variable via
    {!Config.jobs} (default [1]; malformed values warn on stderr and fall
    back to [1]).  Read once and cached. *)

val map :
  ?telemetry:Telemetry.t ->
  ?budget:Budget.t ->
  jobs:int ->
  ('a -> 'b) ->
  'a array ->
  'b array
(** [map ~jobs f xs] applies [f] to every element using up to [jobs]
    domains (the calling domain participates; [jobs <= 1] or a singleton
    array degrades to [Array.map]).  Results are returned in input order.
    [f] must be safe to run concurrently with itself on distinct
    elements.

    If a task raises, every domain is still joined (workers stop
    claiming new tasks, in-flight tasks finish) and the exception of the
    {e lowest-indexed} failing task is re-raised — deterministic
    whatever the domain interleaving, so [Enumerate.Stop]-style early
    exits behave identically across runs.

    With [?budget], workers re-check the wall-clock deadline between
    tasks: the budget's trip flag is shared by every domain, so one
    domain hitting the deadline makes every remaining task near-instant
    (a budget-aware [f] stops on its first poll) while [map] still
    returns a complete array of partial accumulators.

    With [?telemetry], each domain's wall-clock time is added to the
    report (domain 0 is the caller). *)

val split_prefixes :
  ?stats:Counters.t -> Skeleton.t -> jobs:int -> (int * int array array) option
(** Feasible prefixes at the chosen split depth — the shallowest depth
    (≤ 8) yielding at least [4 × jobs] tasks, falling back to the deepest
    depth with ≥ 2; [None] when the search tree never branches (caller
    should stay sequential).  Returns the depth alongside the tasks;
    feed each prefix to {!Enumerate.iter_from}.  With [?stats], the
    chosen depth's walk is counted (probing is not) and [Par_tasks] is
    added. *)

val split_por_tasks :
  ?stats:Counters.t -> Skeleton.t -> jobs:int -> (int * Por.task array) option
(** Same heuristic over the sleep-set tree ({!Por.tasks}); feed each to
    {!Por.iter_task}. *)

val count :
  ?limit:int ->
  ?jobs:int ->
  ?stats:Counters.t ->
  ?budget:Budget.t ->
  Skeleton.t ->
  int
(** Parallel {!Enumerate.count} (exact, deterministic).  [jobs] defaults
    to {!default_jobs}; [?limit] caps the count and (being
    order-dependent) forces the sequential path, as everywhere else.
    Under an exhausted [?budget] the count is a partial (under-)count,
    exactly as with a [?limit] hit. *)
