type state = {
  completed : bool array;
  ev : bool array;
  bsem : int array;
      (* current value of each BINARY semaphore (entries for counting
         semaphores are unused: their value is a function of [completed],
         but a binary semaphore's value depends on the order of absorbed
         V operations, so it must be part of the state) *)
  csem : int array;
      (* cached value of each COUNTING semaphore — a pure function of
         [completed], maintained incrementally and deliberately excluded
         from the memo key *)
}

(* States are keyed by packed machine words: the [completed] and [ev] bit
   vectors, then one word per binary semaphore value.  Each [t] owns one
   scratch buffer of that fixed length; probes hash it in place, and only
   a memo-table insert copies it out.  62 data bits per word keeps every
   word a nonnegative OCaml int. *)
let bits_per_word = 62

let words_for n = if n = 0 then 0 else ((n - 1) / bits_per_word) + 1

let pack_bools_into dst off a =
  let nw = words_for (Array.length a) in
  for w = 0 to nw - 1 do
    dst.(off + w) <- 0
  done;
  Array.iteri
    (fun i b ->
      if b then
        let w = off + (i / bits_per_word) in
        dst.(w) <- dst.(w) lor (1 lsl (i mod bits_per_word)))
    a;
  off + nw

type t = {
  sk : Skeleton.t;
  n : int;
  preds : int array array;
      (* po_preds ++ dep_preds per event, flattened once so [ready] scans
         an int array instead of two lists *)
  scratch : int array;
  can_complete_memo : bool Wordtbl.t;
  count_memo : int Wordtbl.t;
  stats : Counters.t;
  budget : Budget.t;
  mutable committed_probes : int;
  mutable committed_resizes : int;
      (* [stats_commit] folds memo-table probe/resize *deltas* into the
         counters, so calling it more than once never double-counts *)
}

let key_length sk =
  let n = sk.Skeleton.n in
  words_for n
  + words_for (Array.length sk.Skeleton.ev_init)
  + Array.length sk.Skeleton.sem_init

let create ?(stats = Counters.null) ?(budget = Budget.unlimited) sk =
  let n = sk.Skeleton.n in
  {
    sk;
    n;
    preds =
      Array.init n (fun e ->
          Array.of_list
            (sk.Skeleton.po_preds.(e) @ sk.Skeleton.dep_preds.(e)));
    scratch = Array.make (key_length sk) 0;
    can_complete_memo = Wordtbl.create 1024;
    count_memo = Wordtbl.create 1024;
    stats;
    budget;
    committed_probes = 0;
    committed_resizes = 0;
  }

let stats_commit t =
  if Counters.enabled t.stats then begin
    let probes =
      Wordtbl.probes t.can_complete_memo + Wordtbl.probes t.count_memo
    in
    let resizes =
      Wordtbl.resizes t.can_complete_memo + Wordtbl.resizes t.count_memo
    in
    Counters.add t.stats Counters.Reach_tbl_probes (probes - t.committed_probes);
    Counters.add t.stats Counters.Reach_tbl_resizes
      (resizes - t.committed_resizes);
    t.committed_probes <- probes;
    t.committed_resizes <- resizes
  end

let skeleton t = t.sk

(* Budget polls sit on the memo-miss / first-visit paths: one poll per
   distinct state expanded, nothing on the (cheap) hit paths.  Partially
   explored recursions leave only fully-computed memo entries behind, so
   a [t] that raised {!Budget.Expired} is still sound to keep querying.  *)
let poll t = if Budget.poll_node t.budget then raise Budget.Expired

let initial_state t =
  {
    completed = Array.make t.n false;
    ev = Array.copy t.sk.Skeleton.ev_init;
    bsem =
      Array.mapi
        (fun s init -> if t.sk.Skeleton.sem_binary.(s) then init else 0)
        t.sk.Skeleton.sem_init;
    csem =
      Array.mapi
        (fun s init -> if t.sk.Skeleton.sem_binary.(s) then 0 else init)
        t.sk.Skeleton.sem_init;
  }

(* Packs [state] into [t.scratch] and returns it.  The result is only
   valid until the next [pack] on the same [t] — recursive calls clobber
   it, so copy before any insert that happens after recursion. *)
let pack t state =
  let off = pack_bools_into t.scratch 0 state.completed in
  let off = pack_bools_into t.scratch off state.ev in
  Array.blit state.bsem 0 t.scratch off (Array.length state.bsem);
  t.scratch

let sem_count t state s =
  if t.sk.Skeleton.sem_binary.(s) then state.bsem.(s) else state.csem.(s)

let preds_completed t state e =
  let preds = t.preds.(e) in
  let rec go i =
    i >= Array.length preds
    || (state.completed.(preds.(i)) && go (i + 1))
  in
  go 0

let ready t state e =
  (not state.completed.(e))
  && preds_completed t state e
  &&
  match t.sk.Skeleton.kinds.(e) with
  | Event.Sync (Event.Sem_p s) -> sem_count t state s > 0
  | Event.Sync (Event.Wait v) -> state.ev.(v)
  | _ -> true

let step t state e =
  let completed = Array.copy state.completed in
  completed.(e) <- true;
  let ev =
    match t.sk.Skeleton.kinds.(e) with
    | Event.Sync (Event.Post v) ->
        let ev = Array.copy state.ev in
        ev.(v) <- true;
        ev
    | Event.Sync (Event.Clear v) ->
        let ev = Array.copy state.ev in
        ev.(v) <- false;
        ev
    | _ -> state.ev
  in
  let bsem =
    match t.sk.Skeleton.kinds.(e) with
    | Event.Sync (Event.Sem_v s) when t.sk.Skeleton.sem_binary.(s) ->
        let bsem = Array.copy state.bsem in
        bsem.(s) <- 1;
        bsem
    | Event.Sync (Event.Sem_p s) when t.sk.Skeleton.sem_binary.(s) ->
        let bsem = Array.copy state.bsem in
        bsem.(s) <- bsem.(s) - 1;
        bsem
    | _ -> state.bsem
  in
  let csem =
    match t.sk.Skeleton.kinds.(e) with
    | Event.Sync (Event.Sem_v s) when not t.sk.Skeleton.sem_binary.(s) ->
        let csem = Array.copy state.csem in
        csem.(s) <- csem.(s) + 1;
        csem
    | Event.Sync (Event.Sem_p s) when not t.sk.Skeleton.sem_binary.(s) ->
        let csem = Array.copy state.csem in
        csem.(s) <- csem.(s) - 1;
        csem
    | _ -> state.csem
  in
  { completed; ev; bsem; csem }

let all_done state = Array.for_all Fun.id state.completed

let ready_events t state =
  let acc = ref [] in
  for e = t.n - 1 downto 0 do
    if ready t state e then acc := e :: !acc
  done;
  !acc

let rec can_complete t state =
  if all_done state then true
  else
    match Wordtbl.find_opt t.can_complete_memo (pack t state) with
    | Some r ->
        Counters.bump t.stats Counters.Reach_memo_hits;
        r
    | None ->
        Counters.bump t.stats Counters.Reach_memo_misses;
        poll t;
        (* The scratch key dies in the recursion below; copy it first. *)
        let k = Array.copy t.scratch in
        let r =
          List.exists (fun e -> can_complete t (step t state e))
            (ready_events t state)
        in
        Wordtbl.add t.can_complete_memo k r;
        r

let feasible_exists t = can_complete t (initial_state t)

(* Counts saturate below overflow: a 60-event skeleton can admit more
   schedules than an OCaml int holds. *)
let count_saturation = 1_000_000_000_000_000_000

let saturating_add a b =
  if a >= count_saturation - b then count_saturation else a + b

let rec count_from t state =
  if all_done state then 1
  else
    match Wordtbl.find_opt t.count_memo (pack t state) with
    | Some r ->
        Counters.bump t.stats Counters.Reach_memo_hits;
        r
    | None ->
        Counters.bump t.stats Counters.Reach_memo_misses;
        poll t;
        let k = Array.copy t.scratch in
        let r =
          List.fold_left
            (fun acc e -> saturating_add acc (count_from t (step t state e)))
            0 (ready_events t state)
        in
        Wordtbl.add t.count_memo k r;
        r

let schedule_count t = count_from t (initial_state t)

let walk_reachable t visit =
  let seen = Wordtbl.create 1024 in
  let rec go state =
    if not (Wordtbl.mem seen (pack t state)) then begin
      poll t;
      Wordtbl.add seen (Array.copy t.scratch) ();
      visit state;
      List.iter (fun e -> go (step t state e)) (ready_events t state)
    end
  in
  go (initial_state t);
  Wordtbl.length seen

let reachable_state_count t = walk_reachable t (fun _ -> ())

let deadlock_reachable t =
  let found = ref false in
  let (_ : int) =
    walk_reachable t (fun state ->
        if (not (all_done state)) && ready_events t state = [] then found := true)
  in
  !found

let deadlock_witness t =
  (* DFS carrying the prefix; first stuck state wins. *)
  let seen = Wordtbl.create 1024 in
  let rec go state prefix =
    if Wordtbl.mem seen (pack t state) then None
    else begin
      poll t;
      Wordtbl.add seen (Array.copy t.scratch) ();
      match ready_events t state with
      | [] -> if all_done state then None else Some (List.rev prefix)
      | ready ->
          List.find_map (fun e -> go (step t state e) (e :: prefix)) ready
    end
  in
  Option.map Array.of_list (go (initial_state t) [])

let exists_before t a b =
  Counters.bump t.stats Counters.Reach_queries;
  if a = b then false
  else begin
    let seen = Wordtbl.create 1024 in
    (* Explore only prefixes in which [b] has not yet run; once [a] has run
       in such a prefix, any completion witnesses [a] before [b]. *)
    let rec go state =
      if state.completed.(a) then can_complete t state
      else if Wordtbl.mem seen (pack t state) then false
      else begin
        poll t;
        Wordtbl.add seen (Array.copy t.scratch) ();
        List.exists
          (fun e -> e <> b && go (step t state e))
          (ready_events t state)
      end
    in
    go (initial_state t)
  end

let must_before t a b =
  a <> b && feasible_exists t && not (exists_before t b a)

(* Greedy completion: from a completable state, repeatedly run any ready
   event that keeps the state completable. *)
let complete_from t state acc =
  let rec go state acc =
    if all_done state then List.rev acc
    else
      let e =
        List.find
          (fun e -> can_complete t (step t state e))
          (ready_events t state)
      in
      go (step t state e) (e :: acc)
  in
  go state acc

let witness_before t a b =
  Counters.bump t.stats Counters.Reach_queries;
  if a = b then None
  else begin
    let seen = Wordtbl.create 1024 in
    let rec go state prefix =
      if state.completed.(a) then
        if can_complete t state then Some (complete_from t state prefix)
        else None
      else if Wordtbl.mem seen (pack t state) then None
      else begin
        poll t;
        Wordtbl.add seen (Array.copy t.scratch) ();
        List.find_map
          (fun e ->
            if e = b then None else go (step t state e) (e :: prefix))
          (ready_events t state)
      end
    in
    Option.map Array.of_list (go (initial_state t) [])
  end

let exists_race t a b =
  Counters.bump t.stats Counters.Reach_queries;
  a <> b
  &&
  let found = ref false in
  let (_ : int) =
    walk_reachable t (fun state ->
        if
          (not !found)
          && (not state.completed.(a))
          && (not state.completed.(b))
          && ready t state a && ready t state b
        then begin
          (* Both orders must remain completable from here. *)
          let s_ab = step t (step t state a) b in
          let s_ba = step t (step t state b) a in
          if
            ready t (step t state a) b
            && ready t (step t state b) a
            && can_complete t s_ab && can_complete t s_ba
          then found := true
        end)
  in
  !found

let race_witness t a b =
  if a = b then None
  else begin
    (* DFS carrying the prefix; at the first state where the pair can go
       either way, complete both continuations. *)
    let seen = Wordtbl.create 1024 in
    let rec go state prefix =
      if Wordtbl.mem seen (pack t state) then None
      else begin
        poll t;
        Wordtbl.add seen (Array.copy t.scratch) ();
        if
          (not state.completed.(a))
          && (not state.completed.(b))
          && ready t state a && ready t state b
          && ready t (step t state a) b
          && ready t (step t state b) a
          && can_complete t (step t (step t state a) b)
          && can_complete t (step t (step t state b) a)
        then
          (* [complete_from] takes the reversed prefix. *)
          let first =
            complete_from t (step t (step t state a) b) (b :: a :: prefix)
          in
          let second =
            complete_from t (step t (step t state b) a) (a :: b :: prefix)
          in
          Some (Array.of_list first, Array.of_list second)
        else
          List.find_map
            (fun e -> go (step t state e) (e :: prefix))
            (ready_events t state)
      end
    in
    go (initial_state t) []
  end
