exception Stop

(* Mutable search state shared by all entry points. *)
type search = {
  sk : Skeleton.t;
  n : int;
  pending : int array;  (* outstanding (po + dep) predecessors per event *)
  succs : int array array;  (* inverse of the pending edges *)
  done_ : bool array;
  sem : int array;
  ev : bool array;
  schedule : int array;
  frontier : Bitset.t;
      (* invariant: e ∈ frontier ⇔ ¬done_(e) ∧ pending(e) = 0 — the
         structurally-ready set, maintained incrementally by
         [execute]/[undo] so no search node rescans all n events *)
}

let make_search (sk : Skeleton.t) =
  let n = sk.Skeleton.n in
  let pending = Array.make n 0 in
  let degree = Array.make n 0 in
  for e = 0 to n - 1 do
    let preds = sk.Skeleton.po_preds.(e) @ sk.Skeleton.dep_preds.(e) in
    pending.(e) <- List.length preds;
    List.iter (fun p -> degree.(p) <- degree.(p) + 1) preds
  done;
  let succs = Array.init n (fun p -> Array.make degree.(p) 0) in
  let filled = Array.make n 0 in
  for e = 0 to n - 1 do
    List.iter
      (fun p ->
        succs.(p).(filled.(p)) <- e;
        filled.(p) <- filled.(p) + 1)
      (sk.Skeleton.po_preds.(e) @ sk.Skeleton.dep_preds.(e))
  done;
  let frontier = Bitset.create n in
  for e = 0 to n - 1 do
    if pending.(e) = 0 then Bitset.add frontier e
  done;
  {
    sk;
    n;
    pending;
    succs;
    done_ = Array.make n false;
    sem = Array.copy sk.Skeleton.sem_init;
    ev = Array.copy sk.Skeleton.ev_init;
    schedule = Array.make n (-1);
    frontier;
  }

let sync_enabled st e =
  match st.sk.Skeleton.kinds.(e) with
  | Event.Computation | Event.Sync (Event.Fork | Event.Join)
  | Event.Sync (Event.Sem_v _)
  | Event.Sync (Event.Post _)
  | Event.Sync (Event.Clear _) ->
      true
  | Event.Sync (Event.Sem_p s) -> st.sem.(s) > 0
  | Event.Sync (Event.Wait v) -> st.ev.(v)

let ready st e = (not st.done_.(e)) && st.pending.(e) = 0 && sync_enabled st e

(* Applies event [e]'s effect and returns the undo token. *)
let execute st e =
  st.done_.(e) <- true;
  Bitset.remove st.frontier e;
  let succs = st.succs.(e) in
  for i = 0 to Array.length succs - 1 do
    let s = succs.(i) in
    let p = st.pending.(s) - 1 in
    st.pending.(s) <- p;
    if p = 0 then Bitset.add st.frontier s
  done;
  match st.sk.Skeleton.kinds.(e) with
  | Event.Sync (Event.Sem_p s) ->
      st.sem.(s) <- st.sem.(s) - 1;
      `None
  | Event.Sync (Event.Sem_v s) ->
      let old = st.sem.(s) in
      (* Binary semaphores absorb a V when already at 1. *)
      if st.sk.Skeleton.sem_binary.(s) then st.sem.(s) <- 1
      else st.sem.(s) <- old + 1;
      `Sem (s, old)
  | Event.Sync (Event.Post v) ->
      let old = st.ev.(v) in
      st.ev.(v) <- true;
      `Ev (v, old)
  | Event.Sync (Event.Clear v) ->
      let old = st.ev.(v) in
      st.ev.(v) <- false;
      `Ev (v, old)
  | Event.Computation | Event.Sync (Event.Fork | Event.Join | Event.Wait _) ->
      `None

let undo st e token =
  st.done_.(e) <- false;
  Bitset.add st.frontier e;
  let succs = st.succs.(e) in
  for i = 0 to Array.length succs - 1 do
    let s = succs.(i) in
    if st.pending.(s) = 0 then Bitset.remove st.frontier s;
    st.pending.(s) <- st.pending.(s) + 1
  done;
  (match st.sk.Skeleton.kinds.(e) with
  | Event.Sync (Event.Sem_p s) -> st.sem.(s) <- st.sem.(s) + 1
  | _ -> ());
  match token with
  | `Sem (s, old) -> st.sem.(s) <- old
  | `Ev (v, old) -> st.ev.(v) <- old
  | `None -> ()

(* The seed search: scan all n events at every node.  Kept as the
   EO_ENGINE=naive oracle for differential tests.  [stats] counters are
   engine-relative: the naive scan pops all n candidates per node where
   the packed one pops only frontier members. *)
let iter_naive_from ~stats ~budget st depth0 limit f =
  let found = ref 0 in
  let rec go depth =
    if depth = st.n then begin
      Counters.bump stats Counters.Enum_schedules;
      incr found;
      f st.schedule;
      match limit with
      | Some l when !found >= l ->
          Counters.bump stats Counters.Limit_truncations;
          raise Stop
      | _ -> ()
    end
    else begin
      Counters.bump stats Counters.Enum_nodes;
      if Budget.poll_node budget then begin
        Counters.bump stats Counters.Timeout_expirations;
        raise Stop
      end;
      for e = 0 to st.n - 1 do
        Counters.bump stats Counters.Enum_pops;
        if ready st e then begin
          let token = execute st e in
          st.schedule.(depth) <- e;
          go (depth + 1);
          undo st e token
        end
      done
    end
  in
  (try go depth0 with Stop -> ());
  !found

(* The packed search: walk the maintained frontier with [min_elt_from]
   instead of rescanning.  [execute]/[undo] bracket each recursion, so at
   the point we ask for the next candidate the frontier is restored —
   resuming from [e + 1] visits exactly the events the naive scan visits,
   in the same order. *)
let iter_packed_from ~stats ~budget st depth0 limit f =
  let found = ref 0 in
  let rec go depth =
    if depth = st.n then begin
      Counters.bump stats Counters.Enum_schedules;
      incr found;
      f st.schedule;
      match limit with
      | Some l when !found >= l ->
          Counters.bump stats Counters.Limit_truncations;
          raise Stop
      | _ -> ()
    end
    else begin
      Counters.bump stats Counters.Enum_nodes;
      if Budget.poll_node budget then begin
        Counters.bump stats Counters.Timeout_expirations;
        raise Stop
      end;
      let e = ref (Bitset.min_elt_from st.frontier 0) in
      while !e >= 0 do
        let ev = !e in
        Counters.bump stats Counters.Enum_pops;
        if sync_enabled st ev then begin
          let token = execute st ev in
          st.schedule.(depth) <- ev;
          go (depth + 1);
          undo st ev token
        end;
        e := Bitset.min_elt_from st.frontier (ev + 1)
      done
    end
  in
  (try go depth0 with Stop -> ());
  !found

let iter ?limit ?(stats = Counters.null) ?(budget = Budget.unlimited) sk f =
  let st = make_search sk in
  (* Enumeration has no SAT formulation: under [Engine.Sat] the packed
     search does the walking while per-pair queries go through the
     encoder (see [Session]). *)
  match Engine.current () with
  | Engine.Naive -> iter_naive_from ~stats ~budget st 0 limit f
  | Engine.Packed | Engine.Sat | Engine.Auto ->
      iter_packed_from ~stats ~budget st 0 limit f

let count ?limit ?stats ?budget sk = iter ?limit ?stats ?budget sk (fun _ -> ())

let all ?limit sk =
  let acc = ref [] in
  let (_ : int) = iter ?limit sk (fun s -> acc := Array.copy s :: !acc) in
  List.rev !acc

let exists sk pred =
  let found = ref false in
  let (_ : int) =
    iter sk (fun s ->
        if pred s then begin
          found := true;
          raise Stop
        end)
  in
  !found

let first sk =
  let result = ref None in
  let (_ : int) =
    iter sk (fun s ->
        result := Some (Array.copy s);
        raise Stop)
  in
  !result

(* Replays [prefix] into a fresh search state (no undo: the state is
   discarded with the search).  Raises if the prefix is not feasible. *)
let push_prefix st prefix =
  Array.iteri
    (fun i e ->
      if not (ready st e) then
        invalid_arg "Enumerate: prefix event is not ready";
      let (_ : [ `Sem of int * int | `Ev of int * bool | `None ]) =
        execute st e
      in
      st.schedule.(i) <- e)
    prefix

let iter_from ?limit ?(stats = Counters.null) ?(budget = Budget.unlimited) sk
    ~prefix f =
  let st = make_search sk in
  (* The replay is bookkeeping, not search work — it stays uncounted so
     per-task counters sum to exactly the sequential totals. *)
  push_prefix st prefix;
  iter_packed_from ~stats ~budget st (Array.length prefix) limit f

(* Interior nodes strictly above [depth] are counted here (when [stats]
   is enabled); the nodes at [depth] itself belong to the subtree tasks
   and are counted by [iter_from].  Together the split walk plus the
   workers bump exactly the nodes the sequential search bumps. *)
let feasible_prefixes ?(stats = Counters.null) ?(budget = Budget.unlimited) sk
    ~depth =
  let st = make_search sk in
  if depth < 0 || depth > st.n then invalid_arg "Enumerate.feasible_prefixes";
  let acc = ref [] in
  let rec go d =
    if d = depth then acc := Array.sub st.schedule 0 depth :: !acc
    else begin
      Counters.bump stats Counters.Enum_nodes;
      if Budget.poll_node budget then begin
        Counters.bump stats Counters.Timeout_expirations;
        raise Stop
      end;
      let e = ref (Bitset.min_elt_from st.frontier 0) in
      while !e >= 0 do
        let ev = !e in
        Counters.bump stats Counters.Enum_pops;
        if sync_enabled st ev then begin
          let token = execute st ev in
          st.schedule.(d) <- ev;
          go (d + 1);
          undo st ev token
        end;
        e := Bitset.min_elt_from st.frontier (ev + 1)
      done
    end
  in
  (try go 0 with Stop -> ());
  List.rev !acc

let exists_order ?(budget = Budget.unlimited) sk ~before ~after =
  if before = after then false
  else begin
    let st = make_search sk in
    let found = ref false in
    (* Prune any branch that schedules [after] while [before] is pending:
       such a prefix can never witness [before] < [after]. *)
    let admissible e = not (e = after && not st.done_.(before)) in
    let poll () = if Budget.poll_node budget then raise Stop in
    let rec go_naive depth =
      if depth = st.n then begin
        found := true;
        raise Stop
      end
      else begin
        poll ();
        for e = 0 to st.n - 1 do
          if ready st e && admissible e then begin
            let token = execute st e in
            go_naive (depth + 1);
            undo st e token
          end
        done
      end
    in
    let rec go_packed depth =
      if depth = st.n then begin
        found := true;
        raise Stop
      end
      else begin
        poll ();
        let e = ref (Bitset.min_elt_from st.frontier 0) in
        while !e >= 0 do
          let ev = !e in
          if sync_enabled st ev && admissible ev then begin
            let token = execute st ev in
            go_packed (depth + 1);
            undo st ev token
          end;
          e := Bitset.min_elt_from st.frontier (ev + 1)
        done
      end
    in
    (try
       match Engine.current () with
       | Engine.Naive -> go_naive 0
       | Engine.Packed | Engine.Sat | Engine.Auto -> go_packed 0
     with Stop -> ());
    !found
  end
