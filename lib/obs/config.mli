(** Single home for the repository's runtime configuration knobs.

    Every knob obeys one precedence rule, documented once here and
    relied on everywhere: {b CLI flag > environment variable > default}.
    The CLI resolves an explicit flag itself and only consults this
    module when the flag is absent ([resolve]); libraries that have no
    CLI (bench, tests) read the environment accessors directly.

    Malformed environment values never abort: they produce exactly one
    [stderr] warning of the form

    {v warning: ignoring malformed VAR="value" (expected ...); using default v}

    and fall back to the default — the same contract for every variable
    (previously each parser had its own ad-hoc message). *)

val lookup :
  var:string ->
  expected:string ->
  default_text:string ->
  parse:(string -> 'a option) ->
  default:'a ->
  'a
(** One uncached environment read with the uniform warning.  [expected]
    and [default_text] fill the warning template above. *)

val resolve : cli:'a option -> env:(unit -> 'a) -> 'a
(** The precedence rule as code: [Some flag] wins, otherwise the
    (environment-backed) thunk decides. *)

val jobs_of_string : string -> (int, string) result
(** Pure [EO_JOBS] parser.  [Ok j] for an integer [j >= 1]; otherwise
    [Error diagnostic] distinguishing a malformed value from a
    rejected non-positive one (never silently clamped). *)

val jobs : unit -> int
(** [EO_JOBS] — worker domain count, default [1].  Cached after the
    first read so the warning prints at most once per process. *)

val cache_dir_of_string : string -> (string, string) result
(** Pure [EO_CACHE_DIR] parser.  [Ok dir] only for a non-empty
    {b absolute} path; a relative path is rejected with a diagnostic
    rather than being resolved against an unpredictable working
    directory. *)

val cache_dir : unit -> string option
(** [EO_CACHE_DIR] — optional on-disk session-cache directory, default
    [None] (disabled).  Invalid values warn on [stderr] and disable the
    disk cache.  Deliberately uncached: read once per session. *)

val engine_names : string list
(** The closed list of valid engine names, in documentation order:
    [["naive"; "packed"; "sat"; "auto"]].  The CLI help text, the docs
    and the hygiene script are all checked against this list. *)

val engine_of_string : string -> (string, string) result
(** Pure [EO_ENGINE] parser.  [Ok name] (lowercased, trimmed) only for a
    member of [engine_names]; anything else is [Error diagnostic] with
    the diagnostic listing every valid engine — unknown engines are
    rejected rather than silently mapped to a default. *)

val engine : unit -> string
(** [EO_ENGINE] — engine name, default ["packed"].  Cached after the
    first read so the warning prints at most once per process.  Invalid
    values warn on [stderr] and fall back to the default; the CLI
    validates eagerly and turns the same diagnostic into a hard error.
    (The typed accessor lives in [Engine.current]; this low-level view
    exists so [eo_feasible] needs no inverted dependency.) *)

val model_names : string list
(** The closed list of valid memory-model names, in documentation
    order: [["sc"; "tso"; "pso"]].  The CLI help text, the docs and the
    hygiene script are all checked against this list (mirroring
    {!engine_names}). *)

val model_of_string : string -> (string, string) result
(** Pure [EO_MODEL] parser.  [Ok name] (lowercased, trimmed) only for a
    member of [model_names]; anything else is [Error diagnostic] with
    the diagnostic listing every valid model — unknown models are
    rejected rather than silently mapped to a default. *)

val model : unit -> string
(** [EO_MODEL] — memory-model name, default ["sc"].  Cached after the
    first read so the warning prints at most once per process.  Invalid
    values warn on [stderr] and fall back to the default; the CLI
    validates eagerly and turns the same diagnostic into a hard error.
    (The typed accessor lives in [Memmodel.current]; this low-level
    view exists so [eo_memmodel] needs no inverted dependency.) *)

val timeout_of_string : string -> (int, string) result
(** Pure [EO_TIMEOUT_MS] parser.  [Ok ms] for an integer [ms >= 1]
    (milliseconds); otherwise [Error diagnostic] distinguishing a
    malformed value from a rejected non-positive one. *)

val timeout_ms : unit -> int option
(** [EO_TIMEOUT_MS] — optional wall-clock analysis deadline in
    milliseconds, default [None] (no timeout).  Invalid values warn on
    [stderr] and disable the timeout.  Deliberately uncached, like
    {!cache_dir}: a deadline is per-query state.  The CLI [--timeout]
    flag takes precedence via {!resolve}; on expiry the CLI reports
    ["status": "timeout"] and exits with code 3 (see [Budget]). *)

val triage_reach_nodes : unit -> int
(** [EO_TRIAGE_REACH_NODES] — per-session node slice for the auto
    engine's reachability tier, default [200_000].  Invalid values warn
    on [stderr] and keep the default.  Deliberately uncached, like
    {!timeout_ms}: the cram tests shrink the slice per invocation to
    force deterministic escalations. *)

val triage_sat_conflicts : unit -> int
(** [EO_TRIAGE_SAT_CONFLICTS] — per-session solver-conflict slice for
    the auto engine's SAT tier, default [200_000].  Same contract as
    {!triage_reach_nodes}. *)

val triage_enum_nodes : unit -> int
(** [EO_TRIAGE_ENUM_NODES] — per-session node slice for the auto
    engine's final bounded-enumeration tier, default [500_000].  Same
    contract as {!triage_reach_nodes}; when this slice expires the
    query degrades in its sound direction (there is no further tier). *)

val reset_for_testing : unit -> unit
(** Drop the {!jobs}/{!engine}/{!model} memos so the next call re-reads
    the environment.  The memos exist so each warning prints at most
    once per process, but they also mean a mid-process
    [EO_JOBS]/[EO_ENGINE]/[EO_MODEL] change is silently ignored — test
    suites that mutate the environment must call this after each
    [putenv].  (The typed engine memo in [Engine.current] is reset
    separately via [Engine.set], and the model memo in
    [Memmodel.current] via [Memmodel.set].) *)

val bench_budget : default:float -> float
(** [EO_BENCH_BUDGET] — bench time budget in seconds. *)

val bench_quick : unit -> bool
(** [EO_BENCH_QUICK] — set, non-empty and not ["0"] ⇒ quick bench
    subset. *)
