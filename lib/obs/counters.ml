type key =
  | Enum_nodes
  | Enum_pops
  | Enum_schedules
  | Limit_truncations
  | Por_nodes
  | Por_pops
  | Por_sleep_prunes
  | Por_indep_refinements
  | Por_reps
  | Classes
  | Reach_queries
  | Reach_memo_hits
  | Reach_memo_misses
  | Reach_tbl_probes
  | Reach_tbl_resizes
  | Par_tasks
  | Par_merges
  | Session_queries
  | Session_passes
  | Cache_memory_hits
  | Cache_disk_hits
  | Cache_misses
  | Cache_stores
  | Encoder_vars
  | Encoder_clauses
  | Solver_conflicts
  | Solver_propagations
  | Timeout_expirations
  | Timeout_degraded
  | Triage_approx_hits
  | Triage_reach_hits
  | Triage_sat_hits
  | Triage_enum_hits
  | Triage_escalations
  | Model_queries_sc
  | Model_queries_tso
  | Model_queries_pso
  | Consistency_checks
  | Consistency_fast_hits
  | Consistency_sat_hits

let index = function
  | Enum_nodes -> 0
  | Enum_pops -> 1
  | Enum_schedules -> 2
  | Limit_truncations -> 3
  | Por_nodes -> 4
  | Por_pops -> 5
  | Por_sleep_prunes -> 6
  | Por_indep_refinements -> 7
  | Por_reps -> 8
  | Classes -> 9
  | Reach_queries -> 10
  | Reach_memo_hits -> 11
  | Reach_memo_misses -> 12
  | Reach_tbl_probes -> 13
  | Reach_tbl_resizes -> 14
  | Par_tasks -> 15
  | Par_merges -> 16
  | Session_queries -> 17
  | Session_passes -> 18
  | Cache_memory_hits -> 19
  | Cache_disk_hits -> 20
  | Cache_misses -> 21
  | Cache_stores -> 22
  | Encoder_vars -> 23
  | Encoder_clauses -> 24
  | Solver_conflicts -> 25
  | Solver_propagations -> 26
  | Timeout_expirations -> 27
  | Timeout_degraded -> 28
  | Triage_approx_hits -> 29
  | Triage_reach_hits -> 30
  | Triage_sat_hits -> 31
  | Triage_enum_hits -> 32
  | Triage_escalations -> 33
  | Model_queries_sc -> 34
  | Model_queries_tso -> 35
  | Model_queries_pso -> 36
  | Consistency_checks -> 37
  | Consistency_fast_hits -> 38
  | Consistency_sat_hits -> 39

let n_keys = 40

let all_keys =
  [ Enum_nodes; Enum_pops; Enum_schedules; Limit_truncations;
    Por_nodes; Por_pops; Por_sleep_prunes; Por_indep_refinements;
    Por_reps; Classes;
    Reach_queries; Reach_memo_hits; Reach_memo_misses;
    Reach_tbl_probes; Reach_tbl_resizes;
    Par_tasks; Par_merges;
    Session_queries; Session_passes;
    Cache_memory_hits; Cache_disk_hits; Cache_misses; Cache_stores;
    Encoder_vars; Encoder_clauses; Solver_conflicts; Solver_propagations;
    Timeout_expirations; Timeout_degraded;
    Triage_approx_hits; Triage_reach_hits; Triage_sat_hits;
    Triage_enum_hits; Triage_escalations;
    Model_queries_sc; Model_queries_tso; Model_queries_pso;
    Consistency_checks; Consistency_fast_hits; Consistency_sat_hits ]

let key_name = function
  | Enum_nodes -> "enum_nodes"
  | Enum_pops -> "enum_frontier_pops"
  | Enum_schedules -> "enum_schedules"
  | Limit_truncations -> "limit_truncations"
  | Por_nodes -> "por_nodes"
  | Por_pops -> "por_frontier_pops"
  | Por_sleep_prunes -> "por_sleep_prunes"
  | Por_indep_refinements -> "por_indep_refinements"
  | Por_reps -> "por_representatives"
  | Classes -> "distinct_classes"
  | Reach_queries -> "reach_queries"
  | Reach_memo_hits -> "reach_memo_hits"
  | Reach_memo_misses -> "reach_memo_misses"
  | Reach_tbl_probes -> "reach_tbl_probes"
  | Reach_tbl_resizes -> "reach_tbl_resizes"
  | Par_tasks -> "par_tasks_spawned"
  | Par_merges -> "par_merges"
  | Session_queries -> "session_queries"
  | Session_passes -> "session_passes"
  | Cache_memory_hits -> "cache_memory_hits"
  | Cache_disk_hits -> "cache_disk_hits"
  | Cache_misses -> "cache_misses"
  | Cache_stores -> "cache_stores"
  | Encoder_vars -> "encoder_vars"
  | Encoder_clauses -> "encoder_clauses"
  | Solver_conflicts -> "solver_conflicts"
  | Solver_propagations -> "solver_propagations"
  | Timeout_expirations -> "timeout_expirations"
  | Timeout_degraded -> "timeout_degraded_queries"
  | Triage_approx_hits -> "triage_tier_hits_approx"
  | Triage_reach_hits -> "triage_tier_hits_reach"
  | Triage_sat_hits -> "triage_tier_hits_sat"
  | Triage_enum_hits -> "triage_tier_hits_enum"
  | Triage_escalations -> "triage_escalations"
  | Model_queries_sc -> "model_queries_sc"
  | Model_queries_tso -> "model_queries_tso"
  | Model_queries_pso -> "model_queries_pso"
  | Consistency_checks -> "consistency_checks"
  | Consistency_fast_hits -> "consistency_fast_hits"
  | Consistency_sat_hits -> "consistency_sat_hits"

type timer = T_total | T_split | T_enumerate | T_before | T_count

let timer_index = function
  | T_total -> 0
  | T_split -> 1
  | T_enumerate -> 2
  | T_before -> 3
  | T_count -> 4

let n_timers = 5

let all_timers = [ T_total; T_split; T_enumerate; T_before; T_count ]

let timer_name = function
  | T_total -> "total"
  | T_split -> "split"
  | T_enumerate -> "enumerate"
  | T_before -> "happened_before"
  | T_count -> "schedule_count"

type t = { on : bool; counts : int array; times : float array }

let null = { on = false; counts = [||]; times = [||] }

let create () =
  { on = true; counts = Array.make n_keys 0; times = Array.make n_timers 0. }

let enabled t = t.on

let bump t k =
  if t.on then begin
    let i = index k in
    Array.unsafe_set t.counts i (Array.unsafe_get t.counts i + 1)
  end

let add t k n =
  if t.on then begin
    let i = index k in
    Array.unsafe_set t.counts i (Array.unsafe_get t.counts i + n)
  end

let set t k v = if t.on then t.counts.(index k) <- v
let get t k = if t.on then t.counts.(index k) else 0

let add_time t tk s = if t.on then begin
    let i = timer_index tk in
    t.times.(i) <- t.times.(i) +. s
  end

let get_time t tk = if t.on then t.times.(timer_index tk) else 0.

let time t tk f =
  if not t.on then f ()
  else begin
    let t0 = Unix.gettimeofday () in
    Fun.protect ~finally:(fun () -> add_time t tk (Unix.gettimeofday () -. t0)) f
  end

let merge_into ~dst src =
  if dst.on && src.on then begin
    for i = 0 to n_keys - 1 do
      dst.counts.(i) <- dst.counts.(i) + src.counts.(i)
    done;
    for i = 0 to n_timers - 1 do
      dst.times.(i) <- dst.times.(i) +. src.times.(i)
    done
  end
