type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_str f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.6f" f

let rec compact buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_str f)
  | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          compact buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          compact buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  compact buf v;
  Buffer.contents buf

(* Pretty printing keeps scalar lists on one line (schedules, walls) and
   indents objects/nested lists — compact enough for a terminal, stable
   enough for a cram lock. *)
let is_scalar = function
  | Null | Bool _ | Int _ | Float _ | Str _ -> true
  | List _ | Obj _ -> false

let rec pretty buf indent v =
  match v with
  | Null | Bool _ | Int _ | Float _ | Str _ -> compact buf v
  | List xs when List.for_all is_scalar xs -> compact buf v
  | List [] -> Buffer.add_string buf "[]"
  | List xs ->
      Buffer.add_string buf "[\n";
      let pad = String.make (indent + 2) ' ' in
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf pad;
          pretty buf (indent + 2) x)
        xs;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make indent ' ');
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_string buf "{\n";
      let pad = String.make (indent + 2) ' ' in
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf pad;
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\": ";
          pretty buf (indent + 2) v)
        fields;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make indent ' ');
      Buffer.add_char buf '}'

let to_string_pretty v =
  let buf = Buffer.create 512 in
  pretty buf 0 v;
  Buffer.add_char buf '\n';
  Buffer.contents buf
