(** A complete observability report for one analysis run: the counters
    plus run metadata — which engine ran, how many worker domains, where
    the parallel split happened, per-task subtree sizes (in task/merge
    order) and per-domain wall-clock times.

    Only [counters] (minus the memo statistics) is invariant across
    [jobs]; the split/task/wall fields describe the parallel execution
    itself and necessarily vary — JSON consumers comparing runs should
    compare the ["counters"] object. *)

type t

val create : unit -> t

val counters : t -> Counters.t
(** The enabled counter instance engines write into. *)

val set_run : t -> engine:string -> jobs:int -> unit
val set_split_depth : t -> int -> unit
(** [-1] (the initial value) means the run was sequential. *)

val set_task_schedules : t -> int array -> unit
(** Per-task result sizes, in deterministic task (merge) order. *)

val engine : t -> string
val jobs : t -> int
val split_depth : t -> int
val task_schedules : t -> int array
val domain_wall_s : t -> float array

val ensure_domains : t -> int -> unit
(** Pre-size the per-domain wall-time array to [jobs] entries before
    spawning workers, so concurrent [note_domain_wall] writes hit
    disjoint slots of a fixed array. *)

val note_domain_wall : t -> int -> float -> unit
(** [note_domain_wall t i s] adds [s] seconds to domain [i]'s wall time
    (domain 0 is the calling domain). *)

val timed_domain : t option -> int -> (unit -> 'a) -> 'a
(** Runs the thunk, attributing its wall-clock time to domain [i] when a
    report is present ([None] runs it bare) — the hook {!Parallel.map}
    wraps each worker in. *)

val to_json : t -> Jsonout.t
val pp : Format.formatter -> t -> unit
(** Human-readable table used by [--stats] with [--format text]. *)
