let lookup ~var ~expected ~default_text ~parse ~default =
  match Sys.getenv_opt var with
  | None | Some "" -> default
  | Some s -> (
      match parse s with
      | Some v -> v
      | None ->
          Printf.eprintf
            "warning: ignoring malformed %s=%S (expected %s); using %s\n%!"
            var s expected default_text;
          default)

let resolve ~cli ~env = match cli with Some v -> v | None -> env ()

let jobs_memo = ref None

let jobs () =
  match !jobs_memo with
  | Some j -> j
  | None ->
      let j =
        lookup ~var:"EO_JOBS" ~expected:"a positive integer" ~default_text:"1"
          ~parse:(fun s ->
            match int_of_string_opt (String.trim s) with
            | Some j when j >= 1 -> Some j
            | _ -> None)
          ~default:1
      in
      jobs_memo := Some j;
      j

let engine_memo = ref None

let engine_is_packed () =
  match !engine_memo with
  | Some p -> p
  | None ->
      let p =
        lookup ~var:"EO_ENGINE" ~expected:"'naive' or 'packed'"
          ~default_text:"packed"
          ~parse:(fun s ->
            match String.lowercase_ascii (String.trim s) with
            | "naive" -> Some false
            | "packed" -> Some true
            | _ -> None)
          ~default:true
      in
      engine_memo := Some p;
      p

let bench_budget ~default =
  lookup ~var:"EO_BENCH_BUDGET" ~expected:"a positive number of seconds"
    ~default_text:(Printf.sprintf "%g" default)
    ~parse:(fun s ->
      match float_of_string_opt (String.trim s) with
      | Some b when b > 0. && Float.is_finite b -> Some b
      | _ -> None)
    ~default

let bench_quick () =
  match Sys.getenv_opt "EO_BENCH_QUICK" with
  | None | Some "" | Some "0" -> false
  | Some _ -> true
