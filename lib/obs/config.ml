let lookup ~var ~expected ~default_text ~parse ~default =
  match Sys.getenv_opt var with
  | None | Some "" -> default
  | Some s -> (
      match parse s with
      | Some v -> v
      | None ->
          Printf.eprintf
            "warning: ignoring malformed %s=%S (expected %s); using %s\n%!"
            var s expected default_text;
          default)

let resolve ~cli ~env = match cli with Some v -> v | None -> env ()

let jobs_of_string s =
  match int_of_string_opt (String.trim s) with
  | None ->
      Error
        (Printf.sprintf "ignoring malformed EO_JOBS=%S (expected a positive integer)" s)
  | Some j when j >= 1 -> Ok j
  | Some j ->
      Error
        (Printf.sprintf "rejecting EO_JOBS=%d (a worker count must be at least 1)" j)

let jobs_memo = ref None

let jobs () =
  match !jobs_memo with
  | Some j -> j
  | None ->
      let j =
        match Sys.getenv_opt "EO_JOBS" with
        | None | Some "" -> 1
        | Some s -> (
            match jobs_of_string s with
            | Ok j -> j
            | Error msg ->
                Printf.eprintf "warning: %s; using 1\n%!" msg;
                1)
      in
      jobs_memo := Some j;
      j

let cache_dir_of_string s =
  let s = String.trim s in
  if s = "" then Error "ignoring empty EO_CACHE_DIR"
  else if Filename.is_relative s then
    Error
      (Printf.sprintf "rejecting EO_CACHE_DIR=%S (a cache directory must be an absolute path)" s)
  else Ok s

let cache_dir () =
  match Sys.getenv_opt "EO_CACHE_DIR" with
  | None | Some "" -> None
  | Some s -> (
      match cache_dir_of_string s with
      | Ok d -> Some d
      | Error msg ->
          Printf.eprintf "warning: %s; on-disk caching disabled\n%!" msg;
          None)

let engine_names = [ "naive"; "packed"; "sat"; "auto" ]

let engine_of_string s =
  let name = String.lowercase_ascii (String.trim s) in
  if List.mem name engine_names then Ok name
  else
    Error
      (Printf.sprintf "rejecting EO_ENGINE=%S (valid engines: %s)" s
         (String.concat ", " engine_names))

let engine_memo = ref None

let engine () =
  match !engine_memo with
  | Some e -> e
  | None ->
      let e =
        match Sys.getenv_opt "EO_ENGINE" with
        | None | Some "" -> "packed"
        | Some s -> (
            match engine_of_string s with
            | Ok e -> e
            | Error msg ->
                Printf.eprintf "warning: %s; using packed\n%!" msg;
                "packed")
      in
      engine_memo := Some e;
      e

let model_names = [ "sc"; "tso"; "pso" ]

let model_of_string s =
  let name = String.lowercase_ascii (String.trim s) in
  if List.mem name model_names then Ok name
  else
    Error
      (Printf.sprintf "rejecting EO_MODEL=%S (valid models: %s)" s
         (String.concat ", " model_names))

let model_memo = ref None

let model () =
  match !model_memo with
  | Some m -> m
  | None ->
      let m =
        match Sys.getenv_opt "EO_MODEL" with
        | None | Some "" -> "sc"
        | Some s -> (
            match model_of_string s with
            | Ok m -> m
            | Error msg ->
                Printf.eprintf "warning: %s; using sc\n%!" msg;
                "sc")
      in
      model_memo := Some m;
      m

let timeout_of_string s =
  match int_of_string_opt (String.trim s) with
  | None ->
      Error
        (Printf.sprintf
           "ignoring malformed EO_TIMEOUT_MS=%S (expected a positive \
            millisecond count)" s)
  | Some ms when ms >= 1 -> Ok ms
  | Some ms ->
      Error
        (Printf.sprintf
           "rejecting EO_TIMEOUT_MS=%d (a timeout must be at least 1 ms)" ms)

(* Deliberately uncached, like [cache_dir]: a deadline is per-query
   state, so each resolution must see the current environment. *)
let timeout_ms () =
  match Sys.getenv_opt "EO_TIMEOUT_MS" with
  | None | Some "" -> None
  | Some s -> (
      match timeout_of_string s with
      | Ok ms -> Some ms
      | Error msg ->
          Printf.eprintf "warning: %s; no timeout\n%!" msg;
          None)

(* Per-tier effort slices for the auto-engine triage ladder.  Read
   uncached (like [timeout_ms]): the cram tests shrink them per
   invocation to force deterministic escalations. *)
let triage_slice ~var ~default () =
  lookup ~var ~expected:"a positive integer"
    ~default_text:(string_of_int default)
    ~parse:(fun s ->
      match int_of_string_opt (String.trim s) with
      | Some v when v >= 1 -> Some v
      | _ -> None)
    ~default

let triage_reach_nodes = triage_slice ~var:"EO_TRIAGE_REACH_NODES" ~default:200_000
let triage_sat_conflicts = triage_slice ~var:"EO_TRIAGE_SAT_CONFLICTS" ~default:200_000
let triage_enum_nodes = triage_slice ~var:"EO_TRIAGE_ENUM_NODES" ~default:500_000

let reset_for_testing () =
  jobs_memo := None;
  engine_memo := None;
  model_memo := None

let bench_budget ~default =
  lookup ~var:"EO_BENCH_BUDGET" ~expected:"a positive number of seconds"
    ~default_text:(Printf.sprintf "%g" default)
    ~parse:(fun s ->
      match float_of_string_opt (String.trim s) with
      | Some b when b > 0. && Float.is_finite b -> Some b
      | _ -> None)
    ~default

let bench_quick () =
  match Sys.getenv_opt "EO_BENCH_QUICK" with
  | None | Some "" | Some "0" -> false
  | Some _ -> true
