(** Cooperative deadline/effort budgets for the decision engines.

    Every exact procedure in this repo is worst-case exponential
    (Theorems 1–4), so long-running queries need a way to stop early
    with a sound partial answer instead of running until the OS kills
    the process.  A [Budget.t] carries up to three independent caps —
    a wall-clock deadline, a search-node budget and a solver-conflict
    budget — behind one cheap polling interface that engine inner loops
    call once per unit of work:

    - {!Enumerate}/{!Por}/{!Reach} call {!poll_node} per search node;
    - {!Cdcl} calls {!poll_conflict} per conflict, next to its restart
      bookkeeping;
    - {!Parallel} workers observe the shared trip flag between tasks,
      so one domain hitting the deadline stops the whole fan-out.

    The counters and the trip flag are {!Atomic}s: a single [t] is
    shared by every domain of a parallel pass, and the node/conflict
    budgets are global across the analysis, not per-worker.  Wall-clock
    reads are throttled (one [Unix.gettimeofday] per {!clock_stride}
    polls), so polling costs an atomic increment on the hot path.

    Once any cap trips, the budget stays exhausted forever ([t] is
    single-use — create a fresh one per CLI invocation or query batch)
    and every subsequent poll returns [true] immediately.  How expiry
    surfaces depends on the layer: {!Enumerate}/{!Por} stop like a
    [?limit] cap and return what they found, {!Reach}/{!Cdcl} raise
    {!Expired} internally, and {!Session}/{!Decide}/{!Race} catch it
    and degrade to a typed {!outcome} — never letting the exception
    escape the public API. *)

type reason =
  | Deadline  (** the wall-clock deadline passed *)
  | Node_budget  (** the cumulative search-node budget ran out *)
  | Conflict_budget  (** the cumulative solver-conflict budget ran out *)
  | Cancelled  (** {!cancel} was called (external cancellation) *)

val reason_name : reason -> string
(** Stable snake_case name, e.g. for telemetry ("deadline"). *)

exception Expired
(** Raised by {!raise_if_exhausted} (and by engine internals that
    cannot return partial results, e.g. {!Reach} recursions and
    {!Cdcl.solve_assuming}).  Always caught at the session layer;
    never escapes [Decide]/[Relations]/[Race]/[Session]/[Theorems]. *)

type t

val unlimited : t
(** The no-op budget: every poll is [false] at the cost of one boolean
    test.  The default everywhere a [?budget] is accepted. *)

val create :
  ?timeout_ms:int -> ?node_budget:int -> ?conflict_budget:int -> unit -> t
(** A fresh budget.  [timeout_ms] is relative to now; all three caps
    must be positive.  @raise Invalid_argument on a non-positive cap. *)

val sub : t -> ?node_budget:int -> ?conflict_budget:int -> unit -> t
(** A slice of [parent]: an active child budget with its own node and
    conflict caps that inherits the parent's wall-clock deadline and
    charges every tick to the parent as well, so the parent's counters
    see the total spend across all of its slices.  The child trips as
    soon as the parent does (reporting the parent's reason), but a
    child tripping on its own caps leaves the parent running — the
    triage ladder uses this to tell "this tier's slice ran out, try
    the next tier" ([exhausted child] but not [exhausted parent]) from
    "the whole query is out of budget" ([exhausted parent], degrade).
    Slicing {!unlimited} yields a free-standing capped budget.
    @raise Invalid_argument on a non-positive cap. *)

val is_unlimited : t -> bool

val exhausted : t -> bool
(** [true] once any cap has tripped (or {!cancel} ran).  Cheap. *)

val reason : t -> reason option
(** Which cap tripped first, if any. *)

val cancel : t -> unit
(** Trip the budget from outside (e.g. another domain).  No-op on
    {!unlimited} or an already-tripped budget. *)

val poll_node : t -> bool
(** Count one search node against the budget and report whether the
    budget is (now) exhausted.  Engine inner loops call this once per
    node and stop searching — like a [?limit] hit — when it returns
    [true]. *)

val poll_conflict : t -> bool
(** Count one solver conflict; otherwise as {!poll_node}.  Conflicts
    are orders of magnitude rarer than search nodes, so this reads the
    clock on every call. *)

val check_now : t -> bool
(** Re-check the deadline immediately (no effort tick), tripping the
    budget if it has passed.  For coarse checkpoints, e.g. between
    parallel tasks or split-probe depths. *)

val raise_if_exhausted : t -> unit
(** Unthrottled: re-checks the deadline via {!check_now} (tripping the
    shared flag), so progress that never polls still observes expiry at
    its next entry point.
    @raise Expired if the budget is exhausted. *)

val nodes_spent : t -> int
val conflicts_spent : t -> int

(** {1 Typed partial results}

    The public analysis APIs wrap answers computed under a budget:
    [Exact v] is the same [v] the unbudgeted engine returns; [Bound_hit
    v] is a sound approximation in the direction the [?limit] contract
    already promises — could-have relations and races under-reported,
    must-have relations over-reported. *)

type 'a outcome = Exact of 'a | Bound_hit of 'a

val value : 'a outcome -> 'a
val is_exact : 'a outcome -> bool
val map : ('a -> 'b) -> 'a outcome -> 'b outcome
