type t = {
  c : Counters.t;
  mutable engine : string;
  mutable jobs : int;
  mutable split_depth : int;
  mutable task_schedules : int array;
  mutable wall : float array;
}

let create () =
  { c = Counters.create ();
    engine = "";
    jobs = 1;
    split_depth = -1;
    task_schedules = [||];
    wall = [||] }

let counters t = t.c

let set_run t ~engine ~jobs =
  t.engine <- engine;
  t.jobs <- jobs

let set_split_depth t d = t.split_depth <- d
let set_task_schedules t a = t.task_schedules <- a

let engine t = t.engine
let jobs t = t.jobs
let split_depth t = t.split_depth
let task_schedules t = t.task_schedules
let domain_wall_s t = t.wall

let ensure_domains t n =
  if Array.length t.wall < n then begin
    let w = Array.make n 0. in
    Array.blit t.wall 0 w 0 (Array.length t.wall);
    t.wall <- w
  end

let note_domain_wall t i s = t.wall.(i) <- t.wall.(i) +. s

let timed_domain t i f =
  match t with
  | None -> f ()
  | Some t ->
      let t0 = Unix.gettimeofday () in
      Fun.protect
        ~finally:(fun () -> note_domain_wall t i (Unix.gettimeofday () -. t0))
        f

let to_json t =
  let open Jsonout in
  Obj
    [ ("engine", Str t.engine);
      ("jobs", Int t.jobs);
      ("counters",
       Obj
         (List.map
            (fun k -> (Counters.key_name k, Int (Counters.get t.c k)))
            Counters.all_keys));
      ("timers_s",
       Obj
         (List.map
            (fun tk -> (Counters.timer_name tk, Float (Counters.get_time t.c tk)))
            Counters.all_timers));
      ("parallel",
       Obj
         [ ("split_depth", Int t.split_depth);
           ("task_schedules",
            List (Array.to_list (Array.map (fun n -> Int n) t.task_schedules)));
           ("domain_wall_s",
            List (Array.to_list (Array.map (fun s -> Float s) t.wall))) ]) ]

let pp fmt t =
  Format.fprintf fmt "telemetry (engine=%s, jobs=%d):@\n" t.engine t.jobs;
  List.iter
    (fun k ->
      Format.fprintf fmt "  %-24s %d@\n" (Counters.key_name k)
        (Counters.get t.c k))
    Counters.all_keys;
  Format.fprintf fmt "  timers (s):";
  List.iter
    (fun tk ->
      Format.fprintf fmt " %s=%.6f" (Counters.timer_name tk)
        (Counters.get_time t.c tk))
    Counters.all_timers;
  Format.fprintf fmt "@\n";
  if t.split_depth >= 0 then begin
    Format.fprintf fmt "  split: depth=%d tasks=[" t.split_depth;
    Array.iteri
      (fun i n -> Format.fprintf fmt "%s%d" (if i > 0 then " " else "") n)
      t.task_schedules;
    Format.fprintf fmt "] domain_wall_s=[";
    Array.iteri
      (fun i s -> Format.fprintf fmt "%s%.6f" (if i > 0 then " " else "") s)
      t.wall;
    Format.fprintf fmt "]@\n"
  end
