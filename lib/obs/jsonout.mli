(** Minimal JSON construction — this repo deliberately has no JSON
    dependency, so the machine-readable CLI/bench surface is built from
    these combinators.  Output is deterministic: fields print in the
    order given, floats with ["%.6f"]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact, single-line rendering. *)

val to_string_pretty : t -> string
(** Two-space indented rendering with a trailing newline — the format
    the cram tests lock. *)

val escape : string -> string
(** JSON string-escape the argument (without surrounding quotes). *)
