(** Monotonic engine counters and wall-clock timers.

    A [Counters.t] is either *off* ([null]) or *on* ([create ()]).  Every
    engine entry point takes [?stats] defaulting to [null]; when off,
    [bump]/[add]/[set]/[time] reduce to a single load-and-branch, so
    instrumented hot loops cost nothing in ordinary runs.

    Counter semantics are chosen so that totals are *schedule-attributable*:
    an event is counted exactly once per piece of search work that
    contributes to the final result, never during prefix replays or split
    probing.  Consequently every count except the explicitly
    parallelism-dependent ones ([Par_tasks], [Par_merges]) and the memo
    statistics is bit-identical across [jobs] settings — the property the
    [test_stats] QCheck suite enforces. *)

type key =
  | Enum_nodes          (** interior search nodes expanded by [Enumerate] *)
  | Enum_pops           (** frontier candidates popped/examined *)
  | Enum_schedules      (** complete feasible schedules produced *)
  | Limit_truncations   (** searches cut short by a [?limit] *)
  | Por_nodes           (** interior nodes expanded by the sleep-set search *)
  | Por_pops            (** POR frontier candidates examined *)
  | Por_sleep_prunes    (** candidates pruned because they were asleep *)
  | Por_indep_refinements
                        (** sleep-set refinements via the independence matrix *)
  | Por_reps            (** representative schedules emitted *)
  | Classes             (** distinct commutation classes in the result *)
  | Reach_queries       (** top-level reachability queries answered *)
  | Reach_memo_hits     (** memo-table hits inside [Reach] *)
  | Reach_memo_misses   (** memo-table misses (first visits) *)
  | Reach_tbl_probes    (** [Wordtbl] slot probes by the memo tables *)
  | Reach_tbl_resizes   (** [Wordtbl] growths by the memo tables *)
  | Par_tasks           (** subtree tasks spawned by [Parallel] splitting *)
  | Par_merges          (** per-task accumulators merged, in task order *)
  | Session_queries     (** consumer queries answered by a [Session] *)
  | Session_passes      (** traversal passes a [Session] actually ran *)
  | Cache_memory_hits   (** session results served from the in-memory LRU *)
  | Cache_disk_hits     (** session results served from [EO_CACHE_DIR] *)
  | Cache_misses        (** cache lookups that fell through to the engines *)
  | Cache_stores        (** freshly computed results written to the cache *)
  | Encoder_vars        (** CNF variables emitted by the SAT encoder *)
  | Encoder_clauses     (** CNF clauses emitted by the SAT encoder *)
  | Solver_conflicts    (** CDCL conflicts while answering SAT probes *)
  | Solver_propagations (** CDCL unit propagations while answering SAT probes *)
  | Timeout_expirations (** searches/probes cut short by a {!Budget} expiry *)
  | Timeout_degraded    (** API answers degraded to [Bound_hit] by a budget *)
  | Triage_approx_hits  (** auto-engine queries settled by the approx tier *)
  | Triage_reach_hits   (** auto-engine queries settled by the reach tier *)
  | Triage_sat_hits     (** auto-engine queries settled by the SAT tier *)
  | Triage_enum_hits    (** auto-engine queries settled by bounded enumeration *)
  | Triage_escalations  (** tier attempts that expired and handed the query on *)
  | Model_queries_sc    (** session queries answered under the sc model *)
  | Model_queries_tso   (** session queries answered under the tso model *)
  | Model_queries_pso   (** session queries answered under the pso model *)
  | Consistency_checks  (** rf/co consistency verdicts produced by [Candidate] *)
  | Consistency_fast_hits
                        (** consistency verdicts settled by the polynomial
                            saturation / greedy-witness fast path *)
  | Consistency_sat_hits
                        (** consistency verdicts that needed the CNF fragment *)

type timer =
  | T_total       (** whole analysis *)
  | T_split       (** choosing + materialising the parallel split *)
  | T_enumerate   (** schedule enumeration / POR representative walk *)
  | T_before      (** happened-before matrix fill *)
  | T_count       (** schedule-count dynamic program *)

val all_keys : key list
val all_timers : timer list

val key_name : key -> string
(** Stable snake_case name, used verbatim in JSON reports. *)

val timer_name : timer -> string

type t

val null : t
(** The shared disabled instance.  Never mutated, so it is safe to pass to
    concurrently running worker domains. *)

val create : unit -> t
(** A fresh enabled instance with all counters and timers at zero. *)

val enabled : t -> bool

val bump : t -> key -> unit
val add : t -> key -> int -> unit
val set : t -> key -> int -> unit
val get : t -> key -> int
(** [get null _] is [0]. *)

val time : t -> timer -> (unit -> 'a) -> 'a
(** Runs the thunk, adding its wall-clock duration ([Unix.gettimeofday])
    to the timer.  When disabled, calls the thunk directly. *)

val add_time : t -> timer -> float -> unit
val get_time : t -> timer -> float

val merge_into : dst:t -> t -> unit
(** Sums every counter and timer of the source into [dst].  No-op when
    either side is disabled.  Used to fold per-worker counters back into
    the main instance, in deterministic task order. *)
