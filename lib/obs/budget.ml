(* Cooperative deadline/effort budgets.  See budget.mli. *)

type reason = Deadline | Node_budget | Conflict_budget | Cancelled

let reason_name = function
  | Deadline -> "deadline"
  | Node_budget -> "node_budget"
  | Conflict_budget -> "conflict_budget"
  | Cancelled -> "cancelled"

exception Expired

type t = {
  active : bool;
  deadline : float; (* absolute Unix time; [infinity] = no deadline *)
  node_limit : int; (* [max_int] = no node budget *)
  conflict_limit : int; (* [max_int] = no conflict budget *)
  nodes : int Atomic.t;
  conflicts : int Atomic.t;
  tripped : reason option Atomic.t;
  parent : t option;
      (* a slice created by [sub] charges every tick to its parent too,
         and trips as soon as the parent does *)
}

let unlimited =
  {
    active = false;
    deadline = infinity;
    node_limit = max_int;
    conflict_limit = max_int;
    nodes = Atomic.make 0;
    conflicts = Atomic.make 0;
    tripped = Atomic.make None;
    parent = None;
  }

let create ?timeout_ms ?node_budget ?conflict_budget () =
  let pos what = function
    | None -> max_int
    | Some v ->
        if v <= 0 then invalid_arg (Printf.sprintf "Budget.create: %s" what)
        else v
  in
  let deadline =
    match timeout_ms with
    | None -> infinity
    | Some ms ->
        if ms <= 0 then invalid_arg "Budget.create: timeout_ms"
        else Unix.gettimeofday () +. (float_of_int ms /. 1000.)
  in
  {
    active = true;
    deadline;
    node_limit = pos "node_budget" node_budget;
    conflict_limit = pos "conflict_budget" conflict_budget;
    nodes = Atomic.make 0;
    conflicts = Atomic.make 0;
    tripped = Atomic.make None;
    parent = None;
  }

let sub parent ?node_budget ?conflict_budget () =
  let slice = create ?node_budget ?conflict_budget () in
  {
    slice with
    deadline = parent.deadline;
    parent = (if parent.active then Some parent else None);
  }

let is_unlimited t = not t.active
let reason t = Atomic.get t.tripped
let exhausted t = t.active && Atomic.get t.tripped <> None

let trip t r =
  (* First tripper wins; later polls keep reporting the original cause. *)
  ignore (Atomic.compare_and_set t.tripped None (Some r))

let cancel t = if t.active then trip t Cancelled

(* How many effort ticks pass between wall-clock reads.  A packed-engine
   search node costs tens of nanoseconds, so 128 ticks bounds deadline
   overshoot well under a millisecond while keeping [Unix.gettimeofday]
   off the hot path. *)
let clock_stride = 128

let deadline_passed t =
  t.deadline < infinity && Unix.gettimeofday () > t.deadline

(* A [sub] slice charges every tick to its parent first: the parent's
   counters account for total spend across all slices, and a parent trip
   (from any slice, or from outside) trips the slice with the parent's
   reason, so slice users observe it as their own expiry. *)
let rec poll_node t =
  t.active
  && (Atomic.get t.tripped <> None
     || charge_parent t poll_node
     ||
     let n = Atomic.fetch_and_add t.nodes 1 + 1 in
     if n > t.node_limit then (
       trip t Node_budget;
       true)
     else if n mod clock_stride = 0 && deadline_passed t then (
       trip t Deadline;
       true)
     else false)

and poll_conflict t =
  t.active
  && (Atomic.get t.tripped <> None
     || charge_parent t poll_conflict
     ||
     let n = Atomic.fetch_and_add t.conflicts 1 + 1 in
     if n > t.conflict_limit then (
       trip t Conflict_budget;
       true)
     else if deadline_passed t then (
       trip t Deadline;
       true)
     else false)

and charge_parent t poll =
  match t.parent with
  | None -> false
  | Some p ->
      poll p
      && (trip t (Option.value (Atomic.get p.tripped) ~default:Deadline);
          true)

let rec check_now t =
  t.active
  && (Atomic.get t.tripped <> None
     || charge_parent t check_now
     ||
     if deadline_passed t then (
       trip t Deadline;
       true)
     else false)

(* An unthrottled check: re-reads the wall clock (via [check_now]) so a
   caller that makes progress without ever polling — e.g. a sequence of
   conflict-free SAT probes — still observes the deadline at its next
   entry point. *)
let raise_if_exhausted t = if check_now t then raise Expired
let nodes_spent t = Atomic.get t.nodes
let conflicts_spent t = Atomic.get t.conflicts

type 'a outcome = Exact of 'a | Bound_hit of 'a

let value = function Exact v | Bound_hit v -> v
let is_exact = function Exact _ -> true | Bound_hit _ -> false
let map f = function Exact v -> Exact (f v) | Bound_hit v -> Bound_hit (f v)
