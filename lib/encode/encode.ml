(* Constraint compiler: conditions F1–F3 over an observed execution
   <E,T,D> rendered as CNF, plus per-query assumption probes.

   One Boolean order variable o(a,b) per *candidate* pair — an unordered
   pair not already decided by the transitive closure of program order
   and dependence; closed pairs are compile-time constants.  Totality
   and antisymmetry are free (one variable per pair carries both
   directions); transitivity costs two clauses per unordered triple
   after constant folding.  Synchronization enabledness is encoded per
   blocking event: counting semaphores as sequential-counter cardinality
   constraints over the tokens visible before each P, binary semaphores
   and event variables as last-setter trigger disjunctions with
   one-directional auxiliary definitions.

   A model is a linear order (predecessor counts are a permutation), and
   every linear order satisfying the formula replays — so each SAT
   answer decodes into a witness schedule the caller can hand to the
   [Replay] oracle. *)

type program = {
  n : int;
  po_preds : int list array;
  dep_preds : int list array;
  kinds : Event.kind array;
  sem_init : int array;
  sem_binary : bool array;
  ev_init : bool array;
}

(* ------------------------------------------------------------------ *)
(* Clause builder: DIMACS literals, fresh-variable allocation shared by
   however many order copies the formula needs (one for ordering
   queries, two for the common-prefix race formula). *)

type builder = {
  mutable nv : int;
  mutable cls : int list list;  (* reversed *)
  mutable ncls : int;
}

let fresh b =
  b.nv <- b.nv + 1;
  b.nv

let addc b lits =
  b.cls <- lits :: b.cls;
  b.ncls <- b.ncls + 1

(* An order literal: constant, or a DIMACS literal over a pair variable. *)
type olit = T | F | L of int

let oneg = function T -> F | F -> T | L l -> L (-l)

(* Add a clause over order literals, folding constants: satisfied
   clauses vanish, false literals drop out, and an all-false clause
   becomes the (legal) empty clause. *)
let add_olits b lits =
  let rec go acc = function
    | [] -> addc b acc
    | T :: _ -> ()
    | F :: rest -> go acc rest
    | L l :: rest -> go (l :: acc) rest
  in
  go [] lits

(* One copy of the order relation: pair variables for candidate pairs,
   indexed at [a * n + b] for a < b. *)
type copy = { pv : int array }

let alloc_copy b ~n ~forced =
  let pv = Array.make (n * n) 0 in
  for a = 0 to n - 1 do
    for c = a + 1 to n - 1 do
      if not (forced.((a * n) + c) || forced.((c * n) + a)) then
        pv.((a * n) + c) <- fresh b
    done
  done;
  { pv }

let before ~n ~forced copy a b =
  if a = b then F
  else if forced.((a * n) + b) then T
  else if forced.((b * n) + a) then F
  else if a < b then L copy.pv.((a * n) + b)
  else L (-copy.pv.((b * n) + a))

(* ------------------------------------------------------------------ *)
(* Forced pairs: the transitive closure of program order ∪ dependence.
   Plain DFS per source over successor lists — the SAT tier never sees
   the event counts where this n² matrix would matter. *)

let forced_matrix prog =
  let n = prog.n in
  let succs = Array.make n [] in
  let record preds =
    Array.iteri
      (fun e ps -> List.iter (fun p -> succs.(p) <- e :: succs.(p)) ps)
      preds
  in
  record prog.po_preds;
  record prog.dep_preds;
  let forced = Array.make (n * n) false in
  let visited = Array.make n false in
  for a = 0 to n - 1 do
    Array.fill visited 0 n false;
    let rec dfs e =
      List.iter
        (fun f ->
          if not visited.(f) then begin
            visited.(f) <- true;
            forced.((a * n) + f) <- true;
            dfs f
          end)
        succs.(e)
    in
    dfs a
  done;
  forced

(* ------------------------------------------------------------------ *)
(* Cardinality: at-most-[k] of [lits] true, as a Sinz sequential
   counter with one-directional register definitions.  [extra] literals
   are appended to every emitted clause (the guard of a conditional
   constraint); constants fold before any auxiliary is allocated. *)

let at_most b ~extra lits k =
  let k = ref k in
  let xs =
    List.filter_map
      (function
        | T ->
            decr k;
            None
        | F -> None
        | L l -> Some l)
      lits
  in
  let m = List.length xs in
  if !k < 0 then addc b extra
  else if m <= !k then ()
  else if !k = 0 then List.iter (fun x -> addc b ((-x) :: extra)) xs
  else begin
    let kk = !k in
    let xs = Array.of_list xs in
    let m = Array.length xs in
    (* reg.(i).(j): at least j+1 of xs.(0..i) are true *)
    let reg = Array.init m (fun _ -> Array.init kk (fun _ -> fresh b)) in
    for i = 0 to m - 1 do
      addc b ((-xs.(i)) :: reg.(i).(0) :: extra);
      if i > 0 then begin
        for j = 0 to kk - 1 do
          addc b ((-reg.(i - 1).(j)) :: reg.(i).(j) :: extra)
        done;
        for j = 1 to kk - 1 do
          addc b ((-xs.(i)) :: (-reg.(i - 1).(j - 1)) :: reg.(i).(j) :: extra)
        done;
        addc b ((-xs.(i)) :: (-reg.(i - 1).(kk - 1)) :: extra)
      end
    done
  end

(* ------------------------------------------------------------------ *)
(* Core clauses for one order copy: transitivity over candidate
   triples, plus the enabledness condition of every blocking
   synchronization event. *)

let emit_core b ~prog ~forced copy =
  let n = prog.n in
  let bf = before ~n ~forced copy in
  (* Transitivity: two clauses per triple forbid exactly the two cyclic
     assignments; triples of three constants are consistent by closure
     and vanish entirely. *)
  for a = 0 to n - 1 do
    for c = a + 1 to n - 1 do
      for d = c + 1 to n - 1 do
        let x = bf a c and y = bf c d and z = bf a d in
        (match (x, y, z) with
        | L _, _, _ | _, L _, _ | _, _, L _ ->
            add_olits b [ oneg x; oneg y; z ];
            add_olits b [ x; y; oneg z ]
        | _ -> ())
      done
    done
  done;
  (* Group synchronization events per object. *)
  let n_sems = Array.length prog.sem_init in
  let n_evs = Array.length prog.ev_init in
  let sem_ps = Array.make n_sems [] and sem_vs = Array.make n_sems [] in
  let ev_posts = Array.make n_evs []
  and ev_waits = Array.make n_evs []
  and ev_clears = Array.make n_evs [] in
  for e = n - 1 downto 0 do
    match prog.kinds.(e) with
    | Event.Sync (Event.Sem_p s) -> sem_ps.(s) <- e :: sem_ps.(s)
    | Event.Sync (Event.Sem_v s) -> sem_vs.(s) <- e :: sem_vs.(s)
    | Event.Sync (Event.Post v) -> ev_posts.(v) <- e :: ev_posts.(v)
    | Event.Sync (Event.Wait v) -> ev_waits.(v) <- e :: ev_waits.(v)
    | Event.Sync (Event.Clear v) -> ev_clears.(v) <- e :: ev_clears.(v)
    | Event.Computation | Event.Sync (Event.Fork | Event.Join) -> ()
  done;
  (* Counting semaphore (also a binary one nobody Vs): P event [p] is
     enabled at its turn iff the P operations before it have not
     outrun init plus the V operations before it:
       #{q ∈ P_s, q≠p : q<p}  +  #{v ∈ V_s : ¬(v<p)}  ≤  init−1+|V_s|. *)
  let counting_sem ~init ~ps ~vs p =
    let lits =
      List.filter_map (fun q -> if q = p then None else Some (bf q p)) ps
      @ List.map (fun v -> oneg (bf v p)) vs
    in
    at_most b ~extra:[] lits (init - 1 + List.length vs)
  in
  (* Binary semaphore: V sets the value to exactly 1, so P event [p] is
     enabled iff some V lands last before it (no P in between), or no V
     precedes it and the initial tokens cover the preceding Ps.  The
     auxiliaries are one-directional: they only occur positively in the
     main disjunction, so defining clauses in one direction suffice. *)
  let binary_sem ~init ~ps ~vs p =
    let others = List.filter (fun q -> q <> p) ps in
    let main = ref [] in
    (* N_p: no V precedes p; guards an at-most-(init−1) over the Ps. *)
    if not (List.exists (fun v -> bf v p = T) vs) then begin
      let np = fresh b in
      List.iter
        (fun v ->
          match bf v p with
          | F -> ()
          | T -> assert false
          | L l -> addc b [ -np; -l ])
        vs;
      at_most b ~extra:[ -np ] (List.map (fun q -> bf q p) others) (init - 1);
      main := np :: !main
    end;
    (* F_{v,p}: v precedes p with no other P of s strictly between. *)
    List.iter
      (fun v ->
        match bf v p with
        | F -> ()
        | ovp ->
            let blocked =
              List.exists (fun q -> bf v q = T && bf q p = T) others
            in
            if not blocked then begin
              let fv = fresh b in
              add_olits b [ L (-fv); ovp ];
              List.iter
                (fun q -> add_olits b [ L (-fv); oneg (bf v q); oneg (bf q p) ])
                others;
              main := fv :: !main
            end)
      vs;
    addc b !main
  in
  for s = 0 to n_sems - 1 do
    let init = prog.sem_init.(s) in
    let ps = sem_ps.(s) and vs = sem_vs.(s) in
    if prog.sem_binary.(s) && vs <> [] then List.iter (binary_sem ~init ~ps ~vs) ps
    else List.iter (counting_sem ~init ~ps ~vs) ps
  done;
  (* Event variable: Wait [w] is enabled iff some Post lands before it
     with no Clear in between, or the flag starts set and no Clear
     precedes it.  Same one-directional shape as the binary semaphore. *)
  for v = 0 to n_evs - 1 do
    let init = prog.ev_init.(v) in
    let posts = ev_posts.(v) and clears = ev_clears.(v) in
    if not (init && clears = []) then
      List.iter
        (fun w ->
          let main = ref [] in
          if init && not (List.exists (fun c -> bf c w = T) clears) then begin
            let iw = fresh b in
            List.iter
              (fun c ->
                match bf c w with
                | F -> ()
                | T -> assert false
                | L l -> addc b [ -iw; -l ])
              clears;
            main := iw :: !main
          end;
          List.iter
            (fun t ->
              match bf t w with
              | F -> ()
              | otw ->
                  let blocked =
                    List.exists (fun c -> bf t c = T && bf c w = T) clears
                  in
                  if not blocked then begin
                    let tv = fresh b in
                    add_olits b [ L (-tv); otw ];
                    List.iter
                      (fun c ->
                        add_olits b [ L (-tv); oneg (bf t c); oneg (bf c w) ])
                      clears;
                    main := tv :: !main
                  end)
            posts;
          addc b !main)
        ev_waits.(v)
  done

(* ------------------------------------------------------------------ *)

type t = {
  prog : program;
  forced : bool array;
  copy : copy;
  base : Cnf.t;
  mutable solver : Cdcl.t option;
  stats : Counters.t;
  budget : Budget.t;
  mutable committed_conflicts : int;
  mutable committed_propagations : int;
}

let count_encoding stats (cnf : Cnf.t) =
  Counters.add stats Counters.Encoder_vars cnf.Cnf.num_vars;
  Counters.add stats Counters.Encoder_clauses (Cnf.num_clauses cnf)

let build ?(stats = Counters.null) ?(budget = Budget.unlimited) prog =
  let n = prog.n in
  let forced = forced_matrix prog in
  let b = { nv = 0; cls = []; ncls = 0 } in
  let copy = alloc_copy b ~n ~forced in
  emit_core b ~prog ~forced copy;
  let base = Cnf.make ~num_vars:(max 1 b.nv) (List.rev b.cls) in
  count_encoding stats base;
  {
    prog;
    forced;
    copy;
    base;
    solver = None;
    stats;
    budget;
    committed_conflicts = 0;
    committed_propagations = 0;
  }

let program t = t.prog

let cnf t = t.base

let num_vars t = t.base.Cnf.num_vars

let num_clauses t = Cnf.num_clauses t.base

let order_literal t a b =
  if a < 0 || a >= t.prog.n || b < 0 || b >= t.prog.n then
    invalid_arg "Encode.order_literal: event out of range";
  match before ~n:t.prog.n ~forced:t.forced t.copy a b with
  | T -> `Always
  | F -> `Never
  | L l -> `Lit l

let solver t =
  match t.solver with
  | Some s -> s
  | None ->
      let s = Cdcl.make ~budget:t.budget t.base in
      t.solver <- Some s;
      s

let commit_solver_stats t =
  match t.solver with
  | None -> ()
  | Some s ->
      if Counters.enabled t.stats then begin
        let st = Cdcl.stats s in
        Counters.add t.stats Counters.Solver_conflicts
          (st.Cdcl.conflicts - t.committed_conflicts);
        Counters.add t.stats Counters.Solver_propagations
          (st.Cdcl.propagations - t.committed_propagations);
        t.committed_conflicts <- st.Cdcl.conflicts;
        t.committed_propagations <- st.Cdcl.propagations
      end

let solve t assumptions =
  let s = solver t in
  (* Commit conflict/propagation counters even when the budget expires
     mid-probe — the work was done and must show up in --stats. *)
  Fun.protect
    ~finally:(fun () -> commit_solver_stats t)
    (fun () -> Cdcl.solve_assuming s assumptions)

(* Decode: with totality, antisymmetry and transitivity all enforced,
   predecessor counts are a permutation of 0..n−1, so sorting by them
   *is* the witness order. *)
let schedule_of_copy ~n ~forced copy model =
  let value = function
    | T -> true
    | F -> false
    | L l -> if l > 0 then model.(l) else not model.(-l)
  in
  let count = Array.make n 0 in
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      if a <> b && value (before ~n ~forced copy a b) then
        count.(b) <- count.(b) + 1
    done
  done;
  let order = Array.init n Fun.id in
  Array.sort (fun x y -> compare count.(x) count.(y)) order;
  order

let feasible_witness t =
  match solve t [] with
  | Cdcl.Sat m ->
      Some (schedule_of_copy ~n:t.prog.n ~forced:t.forced t.copy m)
  | Cdcl.Unsat -> None

let exists_before_witness t a b =
  if a = b then None
  else
    match order_literal t a b with
    | `Never -> None
    | `Always -> feasible_witness t
    | `Lit l -> (
        match solve t [ l ] with
        | Cdcl.Sat m ->
            Some (schedule_of_copy ~n:t.prog.n ~forced:t.forced t.copy m)
        | Cdcl.Unsat -> None)

(* ------------------------------------------------------------------ *)
(* Race formula: two complete feasible orders sharing one prefix, with
   a·b adjacent in the first and b·a adjacent in the second.  Forcing
   the shared prefix to agree on *order* (not just membership) makes
   both copies reach the identical synchronization state — binary
   semaphore values and event flags depend on the order in which the
   prefix absorbed its operations, so set equality alone would be
   unsound. *)

let race_formula_parts t a b =
  let prog = t.prog in
  let n = prog.n in
  let forced = t.forced in
  let b_ = { nv = 0; cls = []; ncls = 0 } in
  let c1 = alloc_copy b_ ~n ~forced in
  emit_core b_ ~prog ~forced c1;
  let c2 = alloc_copy b_ ~n ~forced in
  emit_core b_ ~prog ~forced c2;
  let bf1 = before ~n ~forced c1 and bf2 = before ~n ~forced c2 in
  (* a immediately precedes b in copy 1; b immediately precedes a in 2. *)
  add_olits b_ [ bf1 a b ];
  add_olits b_ [ bf2 b a ];
  for c = 0 to n - 1 do
    if c <> a && c <> b then begin
      add_olits b_ [ oneg (bf1 a c); oneg (bf1 c b) ];
      add_olits b_ [ oneg (bf2 b c); oneg (bf2 c a) ];
      (* Shared prefix membership: before a in copy 1 ⇔ before b in 2. *)
      add_olits b_ [ oneg (bf1 c a); bf2 c b ];
      add_olits b_ [ bf1 c a; oneg (bf2 c b) ]
    end
  done;
  (* Shared prefix order: two prefix events agree on their relative
     order across the copies. *)
  for c = 0 to n - 1 do
    for d = c + 1 to n - 1 do
      if c <> a && c <> b && d <> a && d <> b then begin
        let guard = [ oneg (bf1 c a); oneg (bf1 d a) ] in
        add_olits b_ (guard @ [ oneg (bf1 c d); bf2 c d ]);
        add_olits b_ (guard @ [ bf1 c d; oneg (bf2 c d) ])
      end
    done
  done;
  (Cnf.make ~num_vars:(max 1 b_.nv) (List.rev b_.cls), c1, c2)

let race_formula t a b =
  if a < 0 || a >= t.prog.n || b < 0 || b >= t.prog.n then
    invalid_arg "Encode.race_formula: event out of range";
  let f, _, _ = race_formula_parts t a b in
  f

let race_witness t a b =
  if a = b then None
  else begin
    let f, c1, c2 = race_formula_parts t a b in
    count_encoding t.stats f;
    let s = Cdcl.make ~budget:t.budget f in
    let result =
      Fun.protect
        ~finally:(fun () ->
          if Counters.enabled t.stats then begin
            let st = Cdcl.stats s in
            Counters.add t.stats Counters.Solver_conflicts st.Cdcl.conflicts;
            Counters.add t.stats Counters.Solver_propagations
              st.Cdcl.propagations
          end)
        (fun () -> Cdcl.solve_assuming s [])
    in
    match result with
    | Cdcl.Sat m ->
        let n = t.prog.n and forced = t.forced in
        Some
          ( schedule_of_copy ~n ~forced c1 m,
            schedule_of_copy ~n ~forced c2 m )
    | Cdcl.Unsat -> None
  end
