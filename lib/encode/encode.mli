(** SAT encoding of feasibility: conditions F1–F3 over an observed
    execution [<E,T,D>] compiled to CNF once, then queried many times
    under assumptions with the in-repo CDCL solver ({!Cdcl}).

    The encoding has one Boolean order variable [o(a,b)] per {e
    candidate} pair — an unordered pair of events not already ordered by
    the transitive closure of program order and dependence; closed pairs
    are constants folded away at compile time.  Totality and
    antisymmetry are structural (one variable carries both directions of
    a pair); transitivity costs two clauses per candidate triple;
    counting semaphores become sequential-counter cardinality
    constraints, binary semaphores and event variables become
    last-setter trigger disjunctions over one-directional auxiliaries.

    Every satisfying model decodes into a witness schedule — a total
    order whose replay is feasible — so callers can (and do) certify
    each positive answer with the [Replay] oracle.  Queries:

    - [a] {e could happen before} [b] ⇔ SAT under the assumption
      [o(a,b)];
    - [a] {e must happen before} [b] ⇔ the formula is satisfiable and
      UNSAT under [o(b,a)];
    - the feasible-race test for [(a,b)] is a separate two-copy formula
      ({!race_formula}) demanding two complete feasible orders that
      share one prefix (same events, same order — binary-semaphore and
      event-flag state depends on prefix order) and then run [a·b]
      back-to-back in one copy and [b·a] in the other.

    This library sits below [eo_feasible]: it consumes a plain
    {!program} projection of a skeleton, and the session layer owns
    witness validation and engine routing. *)

type program = {
  n : int;
  po_preds : int list array;
  dep_preds : int list array;
  kinds : Event.kind array;
  sem_init : int array;
  sem_binary : bool array;
  ev_init : bool array;
}
(** The fragment of a skeleton the encoder needs.  Arrays are indexed by
    event id in [0 .. n-1]; [sem_init]/[sem_binary] by semaphore id;
    [ev_init] by event-variable id. *)

type t
(** A compiled formula plus a lazily created persistent solver.  Build
    once per program; every ordering query reuses the same solver, so
    learned clauses and branching heuristics accumulate across a query
    batch. *)

val build : ?stats:Counters.t -> ?budget:Budget.t -> program -> t
(** Compile the feasibility formula.  Bumps [Encoder_vars] and
    [Encoder_clauses]; later probes bump [Solver_conflicts] and
    [Solver_propagations].

    [?budget] is handed to every solver instance this [t] creates; an
    expiring budget makes any probe raise [Budget.Expired] (counters are
    still committed first).  The session layer catches the exception and
    degrades the answer. *)

val program : t -> program

val cnf : t -> Cnf.t
(** The base formula (no query assumptions). *)

val num_vars : t -> int

val num_clauses : t -> int

val order_literal : t -> int -> int -> [ `Always | `Never | `Lit of Cnf.literal ]
(** [order_literal t a b] is the literal asserting "[a] precedes [b]":
    a constant when the pair is closed under program order ∪ dependence
    (or [a = b], which is [`Never]), otherwise a DIMACS literal over
    {!cnf}.  @raise Invalid_argument on an out-of-range event. *)

val feasible_witness : t -> int array option
(** A feasible schedule of the whole program, or [None] if the formula
    is unsatisfiable. *)

val exists_before_witness : t -> int -> int -> int array option
(** [exists_before_witness t a b] is a feasible schedule running [a]
    strictly before [b], if any ([None] when [a = b]).  This is the CHB
    probe; MHB composes as feasibility plus the [b]-before-[a] probe
    answering [None]. *)

val race_formula : t -> int -> int -> Cnf.t
(** The standalone two-copy race formula for the pair — exported so the
    CLI can dump it as DIMACS.  @raise Invalid_argument on an
    out-of-range event. *)

val race_witness : t -> int -> int -> (int array * int array) option
(** [race_witness t a b] decides the back-to-back race condition of
    [Reach.exists_race] on [t]'s program: two complete feasible
    schedules over a common prefix, one running [a] immediately before
    [b], the other [b] immediately before [a].  Returns both witness
    schedules. *)
