(** Hash table keyed by packed [int array] keys.

    Built for the exact engines' memo tables: keys are search states packed
    into machine words (bitset words plus small counters).  Probing hashes
    the caller's scratch buffer in place with a seeded word-mixing hash —
    no per-probe key construction, unlike stringified keys through the
    stdlib [Hashtbl].  Open addressing with linear probing; the table
    doubles before reaching half load. *)

type 'a t

val create : ?seed:int -> int -> 'a t
(** [create n] is an empty table sized for about [n] bindings.  The
    optional [seed] perturbs the hash (defaults to a fixed constant so
    iteration order is reproducible run to run). *)

val length : 'a t -> int

val probes : 'a t -> int
(** Cumulative slot inspections over the table's lifetime (linear-probe
    steps, including rehash work during growth) — the telemetry layer
    reads this to attribute memo-table cost. *)

val resizes : 'a t -> int
(** How many times the table doubled. *)

val find_opt : 'a t -> int array -> 'a option
(** The key may be a scratch buffer; it is read, never retained. *)

val mem : 'a t -> int array -> bool

val add : 'a t -> int array -> 'a -> unit
(** [add t key v] binds [key] (replacing any existing binding).  On insert
    the table retains [key] itself — pass a fresh array, not the scratch
    buffer, and do not mutate it afterwards. *)

val iter : (int array -> 'a -> unit) -> 'a t -> unit
(** Iterates every binding.  Keys are the retained arrays: safe to hand to
    {!add} of another table (neither table mutates keys). *)

val fold : (int array -> 'a -> 'acc -> 'acc) -> 'a t -> 'acc -> 'acc
