(** Binary relations over a finite carrier [0 .. size-1], stored as one
    bitset of successors per element (an adjacency bit matrix).

    Used throughout the project for temporal orderings, dependence relations
    and the Table 1 ordering relations.  Mutating operations modify the
    relation in place; algebraic operations return fresh relations. *)

type t

val create : int -> t
(** [create n] is the empty relation on a carrier of size [n]. *)

val size : t -> int

val add : t -> int -> int -> unit
(** [add r a b] makes [a r b] hold. *)

val remove : t -> int -> int -> unit

val mem : t -> int -> int -> bool

val successors : t -> int -> Bitset.t
(** The set [{ b | a r b }].  The returned bitset is the internal row: treat
    it as read-only. *)

val of_pairs : int -> (int * int) list -> t

val to_pairs : t -> (int * int) list
(** All pairs in lexicographic order. *)

val pair_count : t -> int

val copy : t -> t

val equal : t -> t -> bool

val subset : t -> t -> bool
(** [subset r1 r2] iff every pair of [r1] is in [r2]. *)

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t

val union_into : t -> t -> unit
(** [union_into dst src] adds every pair of [src] to [dst] in place (the
    deterministic merge step for per-worker relation matrices). *)

val pack : t -> int array
(** The whole bit matrix as one flat word array (rows concatenated).  Two
    relations of equal size are equal iff their packings are equal —
    a compact hashable encoding for class counting. *)

val transpose : t -> t
(** Inverse relation. *)

val is_irreflexive : t -> bool

val is_transitive : t -> bool

val is_antisymmetric : t -> bool
(** No distinct [a], [b] with both [a r b] and [b r a]. *)

val is_strict_partial_order : t -> bool
(** Irreflexive, transitive (hence antisymmetric on finite carriers). *)

val is_interval_order : t -> bool
(** Is the strict partial order an interval order — realizable by real
    intervals with [a < b] iff [a]'s interval ends before [b]'s begins?
    By Fishburn's theorem this holds iff the order contains no "2+2": four
    elements with [a < b], [c < d], [a ≮ d], [c ≮ b].  The temporal order
    of any real execution is an interval order (events occupy time
    intervals), which is what lets the model reason about overlap.
    Requires a strict partial order ([Invalid_argument] otherwise). *)

val transitive_closure : t -> t
(** Warshall's algorithm on bit rows: O(n^2 * n/wordsize). *)

val transitive_closure_in_place : t -> unit

val transitive_reduction : t -> t
(** Minimal relation with the same transitive closure.  The input must be a
    DAG (raises [Invalid_argument] on cyclic input). *)

val reflexive_closure_in_place : t -> unit

val is_acyclic : t -> bool
(** No directed cycle (self-loops count as cycles). *)

val comparable : t -> int -> int -> bool
(** In a closed order: [mem r a b || mem r b a]. *)

val iter : (int -> int -> unit) -> t -> unit

val fold : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a

val pp : Format.formatter -> t -> unit
