(* Open-addressing hash table keyed by packed int arrays.

   The exact engines memoize on search states packed into small int arrays
   (bitset words + counters).  The stdlib Hashtbl forced them to build a
   fresh string key per probe; here a probe hashes the caller's scratch
   buffer in place — no allocation until a genuinely new state is inserted,
   at which point the caller hands over a fresh array. *)

type 'a slot = Empty | Slot of { hash : int; key : int array; mutable v : 'a }

type 'a t = {
  seed : int;
  mutable slots : 'a slot array;  (* length is a power of two *)
  mutable count : int;
  mutable probes : int;  (* slot inspections, including during resize *)
  mutable resizes : int;
}

let default_seed = 0x2A65_3F91

let create ?(seed = default_seed) capacity_hint =
  let rec pow2 c = if c >= capacity_hint && c >= 16 then c else pow2 (c * 2) in
  { seed; slots = Array.make (pow2 16) Empty; count = 0; probes = 0; resizes = 0 }

let length t = t.count
let probes t = t.probes
let resizes t = t.resizes

(* Seeded word-mixing hash (splitmix-style finalizer per word). *)
let hash seed (key : int array) =
  let h = ref seed in
  for i = 0 to Array.length key - 1 do
    let x = key.(i) * 0x2545F4914F6CDD1D in
    let x = x lxor (x lsr 29) in
    h := (!h lxor x) * 0x9E3779B97F4A7C1;
    h := !h lxor (!h lsr 32)
  done;
  !h land max_int

let key_equal (a : int array) (b : int array) =
  let la = Array.length a in
  la = Array.length b
  &&
  let rec go i = i >= la || (a.(i) = b.(i) && go (i + 1)) in
  go 0

(* Linear probing; the table never fills past half capacity.  [t] is
   threaded only to charge each slot inspection to the table's probe
   counter. *)
let find_slot t slots h key =
  let mask = Array.length slots - 1 in
  let rec probe i =
    t.probes <- t.probes + 1;
    let i = i land mask in
    match slots.(i) with
    | Empty -> i
    | Slot s when s.hash = h && key_equal s.key key -> i
    | Slot _ -> probe (i + 1)
  in
  probe h

let resize t =
  t.resizes <- t.resizes + 1;
  let old = t.slots in
  let slots = Array.make (2 * Array.length old) Empty in
  Array.iter
    (function
      | Empty -> ()
      | Slot s as slot -> slots.(find_slot t slots s.hash s.key) <- slot)
    old;
  t.slots <- slots

let find_opt t key =
  match t.slots.(find_slot t t.slots (hash t.seed key) key) with
  | Empty -> None
  | Slot s -> Some s.v

let mem t key =
  match t.slots.(find_slot t t.slots (hash t.seed key) key) with
  | Empty -> false
  | Slot _ -> true

let add t key v =
  let h = hash t.seed key in
  let i = find_slot t t.slots h key in
  match t.slots.(i) with
  | Slot s -> s.v <- v
  | Empty ->
      t.slots.(i) <- Slot { hash = h; key; v };
      t.count <- t.count + 1;
      if 2 * t.count > Array.length t.slots then resize t

let iter f t =
  Array.iter (function Empty -> () | Slot s -> f s.key s.v) t.slots

let fold f t init =
  let acc = ref init in
  iter (fun k v -> acc := f k v !acc) t;
  !acc
