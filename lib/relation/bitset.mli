(** Dense, fixed-capacity mutable sets of small integers.

    A [Bitset.t] stores a subset of [0 .. capacity-1] packed into an int
    array.  All operations besides [copy], [of_list] and the set-algebra
    producers run in place; binary operations require both operands to have
    the same capacity. *)

type t

val create : int -> t
(** [create n] is the empty set with capacity [n].  [n >= 0]. *)

val capacity : t -> int
(** Maximum number of distinct elements the set can hold. *)

val mem : t -> int -> bool
(** [mem s i] tests membership.  Raises [Invalid_argument] when [i] is out of
    [0 .. capacity-1]. *)

val add : t -> int -> unit
val remove : t -> int -> unit

val clear : t -> unit
(** Remove every element. *)

val fill : t -> unit
(** Add every element of [0 .. capacity-1]. *)

val cardinal : t -> int

val is_empty : t -> bool

val equal : t -> t -> bool

val subset : t -> t -> bool
(** [subset a b] is [true] iff every element of [a] is in [b]. *)

val disjoint : t -> t -> bool

val union_into : t -> t -> unit
(** [union_into dst src] adds every element of [src] to [dst].  Returns
    nothing; use [union] for a fresh result. *)

val inter_into : t -> t -> unit
val diff_into : t -> t -> unit

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t

val copy : t -> t

val copy_into : dst:t -> t -> unit
(** [copy_into ~dst src] makes [dst] equal to [src] without allocating.
    Capacities must match. *)

val min_elt_from : t -> int -> int
(** [min_elt_from s i] is the smallest element [>= i], or [-1] when there is
    none.  Allocation-free; the exact engines use it to walk the ready
    frontier while it is being mutated underneath them. *)

val num_words : t -> int
(** Number of machine words backing the set (a function of capacity). *)

val get_word : t -> int -> int
(** [get_word s w] is the [w]-th backing word ([0 <= w < num_words s]) —
    the bits of elements [w*int_size .. (w+1)*int_size - 1].  Exposed so
    packed memo keys can be built without intermediate lists. *)

val iter : (int -> unit) -> t -> unit
(** Iterate over elements in increasing order. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over elements in increasing order. *)

val to_list : t -> int list
(** Elements in increasing order. *)

val of_list : int -> int list -> t
(** [of_list n xs] is the set with capacity [n] containing [xs]. *)

val choose : t -> int option
(** Smallest element, or [None] when empty. *)

val pp : Format.formatter -> t -> unit
