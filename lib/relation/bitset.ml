type t = { n : int; words : int array }

let bits_per_word = Sys.int_size

let word_count n = if n = 0 then 0 else ((n - 1) / bits_per_word) + 1

let create n =
  if n < 0 then invalid_arg "Bitset.create: negative capacity";
  { n; words = Array.make (word_count n) 0 }

let capacity s = s.n

let check s i =
  if i < 0 || i >= s.n then invalid_arg "Bitset: index out of bounds"

let mem s i =
  check s i;
  s.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let add s i =
  check s i;
  let w = i / bits_per_word in
  s.words.(w) <- s.words.(w) lor (1 lsl (i mod bits_per_word))

let remove s i =
  check s i;
  let w = i / bits_per_word in
  s.words.(w) <- s.words.(w) land lnot (1 lsl (i mod bits_per_word))

let clear s = Array.fill s.words 0 (Array.length s.words) 0

(* Mask for the last, possibly partial, word so that [fill] never sets bits
   beyond [n]; all other operations preserve the invariant that those bits
   stay zero. *)
let last_word_mask n =
  let r = n mod bits_per_word in
  if r = 0 then -1 else (1 lsl r) - 1

let fill s =
  let k = Array.length s.words in
  if k > 0 then begin
    Array.fill s.words 0 k (-1);
    s.words.(k - 1) <- s.words.(k - 1) land last_word_mask s.n
  end

let popcount =
  (* Kernighan's loop is fast enough for the word sizes involved here. *)
  let rec go acc x = if x = 0 then acc else go (acc + 1) (x land (x - 1)) in
  fun x -> go 0 x

let cardinal s = Array.fold_left (fun acc w -> acc + popcount w) 0 s.words

let is_empty s = Array.for_all (fun w -> w = 0) s.words

let same_capacity a b =
  if a.n <> b.n then invalid_arg "Bitset: capacity mismatch"

let equal a b =
  same_capacity a b;
  a.words = b.words

let subset a b =
  same_capacity a b;
  let ok = ref true in
  for i = 0 to Array.length a.words - 1 do
    if a.words.(i) land lnot b.words.(i) <> 0 then ok := false
  done;
  !ok

let disjoint a b =
  same_capacity a b;
  let ok = ref true in
  for i = 0 to Array.length a.words - 1 do
    if a.words.(i) land b.words.(i) <> 0 then ok := false
  done;
  !ok

let union_into dst src =
  same_capacity dst src;
  for i = 0 to Array.length dst.words - 1 do
    dst.words.(i) <- dst.words.(i) lor src.words.(i)
  done

let inter_into dst src =
  same_capacity dst src;
  for i = 0 to Array.length dst.words - 1 do
    dst.words.(i) <- dst.words.(i) land src.words.(i)
  done

let diff_into dst src =
  same_capacity dst src;
  for i = 0 to Array.length dst.words - 1 do
    dst.words.(i) <- dst.words.(i) land lnot src.words.(i)
  done

let copy s = { n = s.n; words = Array.copy s.words }

let copy_into ~dst src =
  same_capacity dst src;
  Array.blit src.words 0 dst.words 0 (Array.length src.words)

(* Index of the lowest set bit of [x] ([x] must have at least one). *)
let lowest_bit_index x =
  let rec go i x = if x land 1 = 1 then i else go (i + 1) (x lsr 1) in
  go 0 x

let min_elt_from s i =
  if i >= s.n then -1
  else begin
    let i = if i < 0 then 0 else i in
    let nwords = Array.length s.words in
    let rec scan w first =
      if w >= nwords then -1
      else
        let word =
          if first then s.words.(w) land ((-1) lsl (i mod bits_per_word))
          else s.words.(w)
        in
        if word = 0 then scan (w + 1) false
        else (w * bits_per_word) + lowest_bit_index word
    in
    scan (i / bits_per_word) true
  end

let num_words s = Array.length s.words

let get_word s w = s.words.(w)

let union a b = let r = copy a in union_into r b; r
let inter a b = let r = copy a in inter_into r b; r
let diff a b = let r = copy a in diff_into r b; r

let iter f s =
  for w = 0 to Array.length s.words - 1 do
    let word = s.words.(w) in
    if word <> 0 then
      for b = 0 to bits_per_word - 1 do
        if word land (1 lsl b) <> 0 then f ((w * bits_per_word) + b)
      done
  done

let fold f s init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) s;
  !acc

let to_list s = List.rev (fold (fun i acc -> i :: acc) s [])

let of_list n xs =
  let s = create n in
  List.iter (add s) xs;
  s

let choose s =
  let exception Found of int in
  try
    iter (fun i -> raise (Found i)) s;
    None
  with Found i -> Some i

let pp ppf s =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Format.pp_print_int)
    (to_list s)
