type t = { n : int; rows : Bitset.t array }

let create n = { n; rows = Array.init n (fun _ -> Bitset.create n) }

let size r = r.n

let check r i =
  if i < 0 || i >= r.n then invalid_arg "Rel: index out of bounds"

let add r a b =
  check r a;
  check r b;
  Bitset.add r.rows.(a) b

let remove r a b =
  check r a;
  check r b;
  Bitset.remove r.rows.(a) b

let mem r a b =
  check r a;
  check r b;
  Bitset.mem r.rows.(a) b

let successors r a =
  check r a;
  r.rows.(a)

let of_pairs n pairs =
  let r = create n in
  List.iter (fun (a, b) -> add r a b) pairs;
  r

let iter f r =
  for a = 0 to r.n - 1 do
    Bitset.iter (fun b -> f a b) r.rows.(a)
  done

let fold f r init =
  let acc = ref init in
  iter (fun a b -> acc := f a b !acc) r;
  !acc

let to_pairs r = List.rev (fold (fun a b acc -> (a, b) :: acc) r [])

let pair_count r =
  Array.fold_left (fun acc row -> acc + Bitset.cardinal row) 0 r.rows

let copy r = { n = r.n; rows = Array.map Bitset.copy r.rows }

let same_size r1 r2 = if r1.n <> r2.n then invalid_arg "Rel: size mismatch"

let equal r1 r2 =
  same_size r1 r2;
  Array.for_all2 Bitset.equal r1.rows r2.rows

let subset r1 r2 =
  same_size r1 r2;
  Array.for_all2 Bitset.subset r1.rows r2.rows

let map2 f r1 r2 =
  same_size r1 r2;
  { n = r1.n; rows = Array.map2 f r1.rows r2.rows }

let union = map2 Bitset.union
let inter = map2 Bitset.inter
let diff = map2 Bitset.diff

let union_into dst src =
  same_size dst src;
  Array.iteri (fun a row -> Bitset.union_into dst.rows.(a) row) src.rows

let pack r =
  if r.n = 0 then [||]
  else begin
    let wpr = Bitset.num_words r.rows.(0) in
    let out = Array.make (r.n * wpr) 0 in
    Array.iteri
      (fun a row ->
        for w = 0 to wpr - 1 do
          out.((a * wpr) + w) <- Bitset.get_word row w
        done)
      r.rows;
    out
  end

let transpose r =
  let t = create r.n in
  iter (fun a b -> add t b a) r;
  t

let is_irreflexive r =
  let ok = ref true in
  for a = 0 to r.n - 1 do
    if Bitset.mem r.rows.(a) a then ok := false
  done;
  !ok

let is_transitive r =
  let ok = ref true in
  for a = 0 to r.n - 1 do
    Bitset.iter
      (fun b -> if not (Bitset.subset r.rows.(b) r.rows.(a)) then ok := false)
      r.rows.(a)
  done;
  !ok

let is_antisymmetric r =
  let ok = ref true in
  iter (fun a b -> if a <> b && mem r b a then ok := false) r;
  !ok

let is_strict_partial_order r = is_irreflexive r && is_transitive r

let is_interval_order r =
  if not (is_strict_partial_order r) then
    invalid_arg "Rel.is_interval_order: not a strict partial order";
  (* Fishburn: interval order iff no 2+2 suborder.  For each related pair
     (a, b), any other related pair (c, d) must satisfy a < d or c < b;
     equivalently succ(a) ⊇ succ(c) or succ(c) ⊇ succ(a) — predecessor
     sets of maximal elements form a chain.  We check the 2+2 directly on
     bit rows: (a,b) and (c,d) violate iff d ∉ succ(a) and b ∉ succ(c). *)
  let ok = ref true in
  iter
    (fun a b ->
      iter
        (fun c d ->
          if
            a <> c && b <> d
            && (not (Bitset.mem r.rows.(a) d))
            && not (Bitset.mem r.rows.(c) b)
          then ok := false)
        r)
    r;
  !ok

let transitive_closure_in_place r =
  (* Warshall with bit-parallel row unions: if a -> k then succ(a) |= succ(k). *)
  for k = 0 to r.n - 1 do
    for a = 0 to r.n - 1 do
      if Bitset.mem r.rows.(a) k then Bitset.union_into r.rows.(a) r.rows.(k)
    done
  done

let transitive_closure r =
  let c = copy r in
  transitive_closure_in_place c;
  c

let reflexive_closure_in_place r =
  for a = 0 to r.n - 1 do
    Bitset.add r.rows.(a) a
  done

let is_acyclic r =
  let c = transitive_closure r in
  let ok = ref true in
  for a = 0 to r.n - 1 do
    if Bitset.mem c.rows.(a) a then ok := false
  done;
  !ok

let transitive_reduction r =
  if not (is_acyclic r) then invalid_arg "Rel.transitive_reduction: cyclic";
  let closure = transitive_closure r in
  let red = copy closure in
  (* Edge a->b is redundant iff some intermediate c has a ->+ c ->+ b. *)
  iter
    (fun a b ->
      Bitset.iter
        (fun c -> if Bitset.mem closure.rows.(c) b then remove red a b)
        closure.rows.(a))
    closure;
  red

let comparable r a b = mem r a b || mem r b a

let pp ppf r =
  let pairs = to_pairs r in
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       (fun ppf (a, b) -> Format.fprintf ppf "%d->%d" a b))
    pairs
