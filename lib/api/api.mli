(** The transport-agnostic request API every front end routes through.

    One dispatcher, two transports: the [batch] subcommand feeds it
    cmdliner arguments, the analysis server ({!Server}) feeds it
    newline-delimited [eventorder.request/1] documents — both end up in
    the same query parser, the same {!Session}-backed answering code and
    the same JSON rendering, so the two surfaces cannot drift apart.

    The module is organised bottom-up:

    - {b errors}: every user-facing failure is an {!Error} carrying a
      machine-readable {!error_code}; transports render it as an
      [eventorder.error/1] document (the CLI also maps it to exit 2).
    - {b queries}: the textual query language ([relations], [reduced],
      [races], [first], [schedules], [REL:A:B]) with the label-or-id
      event pair resolution that used to live in the CLI.
    - {b answering}: {!answers} runs a query list against a shared
      {!Session.t}; each {!result} carries its own [timed_out] flag, so
      a response can say per entry whether the deadline truncated it.
    - {b requests}: the wire layer — parse one [eventorder.request/1]
      line, run it under a server {!config}, produce one response
      document.  {!handle_line} never raises; malformed input becomes an
      [eventorder.error/1] response. *)

(** {2 Errors} *)

type error_code =
  | Parse  (** malformed JSON, program syntax error, malformed trace *)
  | Usage  (** a well-formed request asking something invalid *)
  | Timeout  (** the deadline expired before the analysis could start *)
  | Overload  (** the server's admission queue is full *)

val code_string : error_code -> string
(** ["parse"], ["usage"], ["timeout"], ["overload"] — the [code] field
    of [eventorder.error/1]. *)

exception Error of error_code * string

val errorf : error_code -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** [errorf code fmt ...] raises {!Error} with the formatted message. *)

val error_doc : ?id:Jsonout.t -> code:error_code -> string -> Jsonout.t
(** The [eventorder.error/1] document: [{schema; id?; code; error}].
    [?id] echoes the failing request's id so a pipelining client can
    match the error to its request. *)

(** {2 Queries} *)

val relation_key : Relations.relation -> string
(** Lower-case JSON key of a relation ("mhb", "chb", ...). *)

val relation_of_string : string -> Relations.relation option

val lookup_event : Trace.t -> Execution.t -> string -> int option
(** An event names itself by label or by numeric id. *)

val resolve_pair :
  Trace.t -> Execution.t -> query:string -> string -> string * string * int * int
(** [resolve_pair trace x ~query rest] splits the ["A:B"] remainder of a
    per-pair query into two event names.  Labels themselves contain
    colons (["x := 1"]), so every split is tried and the unique one
    where both sides name events wins; zero or several matches raise
    {!Error} [Usage].  Returns [(a_name, b_name, a_id, b_id)]. *)

type query =
  | Relations  (** the six matrices by full enumeration *)
  | Reduced  (** the same by the class-level engine *)
  | Races  (** feasible races *)
  | First  (** first races *)
  | Schedules  (** the feasible-schedule count *)
  | Pair of Relations.relation * string
      (** [REL:A:B]; the ["A:B"] remainder is kept raw and resolved
          against the trace when the query is answered *)

val query_of_string : string -> query
(** Raises {!Error} [Usage] on unknown queries or relations. *)

(** {2 Answering} *)

type answer =
  | Summary of Relations.t
  | Race_list of Race.race list
  | Count of int
  | Holds of {
      relation : Relations.relation;
      a_label : string;
      b_label : string;
      holds : bool;
    }

type result = {
  query : string;  (** the query text, echoed *)
  answer : answer;
  timed_out : bool;
      (** the deadline truncated this entry: its value is the sound
          approximation, not the exact answer.  A plain [--limit]
          truncation does {e not} set this (the [truncated] field of a
          summary reports it); results with [timed_out] are never
          cached. *)
}

val answers : Session.t -> Trace.t -> Execution.t -> string list -> result list
(** Answers the queries in order against one shared session (one
    enumeration pass, one reachability memo, one cache entry set).
    Raises {!Error} [Usage] on an unparsable query. *)

val json_of_rel : Rel.t -> Jsonout.t
(** A relation as a JSON list of [[a, b]] pairs. *)

val json_of_race : Execution.t -> Race.race -> Jsonout.t

val result_json : Execution.t -> result -> Jsonout.t
(** One entry of a [batch]/[response] [results] array.  Every entry
    carries [query] and [status] (["ok"] or ["timeout"], from
    [timed_out]) plus the answer-specific fields. *)

val pp_result : Execution.t -> Format.formatter -> result -> unit
(** Text rendering, ["-- query --"] header included — what [batch
    --format text] prints per query. *)

(** {2 Requests — the wire layer} *)

type op =
  | Batch  (** run queries against a program or trace *)
  | Stats  (** server counters and health *)
  | Ping  (** liveness probe *)
  | Shutdown  (** ask the server to drain and exit *)

type request = {
  id : Jsonout.t option;  (** echoed verbatim in the response *)
  op : op;
  program : string option;  (** program source text *)
  trace_text : string option;  (** recorded [eotrace] text *)
  policy : Sched.policy;  (** scheduling policy for [program] runs *)
  queries : string list;
  engine : Engine.t option;
  model : Memmodel.t option;  (** memory model; see {!config.model} *)
  limit : int option;
  timeout_ms : int option;
  jobs : int option;
  collect_stats : bool;  (** include telemetry in the response *)
}

val request_of_json : Jsonout.t -> request
(** Validates one [eventorder.request/1] document.  Raises {!Error}
    ([Usage] for structural problems — the schema line itself must
    match). *)

val request_op_of_line : string -> op option
(** Cheap classification for a server's accept loop: [Some op] when the
    line parses far enough to name its op (absent defaults to [Batch]),
    [None] when it cannot — route [Some Batch] to the worker queue and
    everything else inline, so control requests stay responsive while
    the queue is saturated.  Never raises. *)

val request_id_of_line : string -> Jsonout.t option
(** Best-effort id recovery, for error responses produced without
    running {!handle_line} (queue rejections).  Never raises. *)

type config = {
  engine : Engine.t option;
      (** server-side default; a request's [engine] wins, absence of
          both falls back to [EO_ENGINE]/packed *)
  model : Memmodel.t option;
      (** server-side default memory model; same resolution as
          [engine] (request > flag > [EO_MODEL]/sc).  The resolved
          model is set domain-locally per request and baked into the
          session cache key, so cached answers never cross models *)
  limit : int option;
  jobs : int;  (** worker-domain cap; requests can lower it, not raise *)
  max_events : int;  (** admission guard on the exponential engines *)
  timeout_ms : int option;
      (** server-side deadline cap: a request deadline is clamped to
          this, and requests without one inherit it *)
  cache : Session.cache;
}

val default_config : unit -> config
(** Engine/limit unset, jobs from [EO_JOBS], 40-event guard, timeout
    from [EO_TIMEOUT_MS], the default cache. *)

type handled = {
  response : Jsonout.t;  (** exactly one document to write back *)
  shutdown : bool;  (** the client asked the server to stop *)
  telemetry : Telemetry.t option;
      (** per-request telemetry when the request asked for stats —
          the server folds it into its global counters *)
}

val handle_line :
  ?allow_shutdown:bool ->
  ?extra_stats:(unit -> (string * Jsonout.t) list) ->
  ?serialize:(string -> (unit -> Jsonout.t) -> Jsonout.t) ->
  config ->
  string ->
  handled
(** [handle_line config line] parses and runs one request line.  Never
    raises: every failure becomes an [eventorder.error/1] response
    (with the request id when one was recovered).

    [?allow_shutdown] (default [false]) gates the [shutdown] op —
    refusing it is a [Usage] error, so an unprivileged transport can
    simply not opt in.  [?extra_stats] contributes transport-level
    fields (uptime, served counts, queue depth) to the
    [eventorder.stats/1] response.  [?serialize], keyed by the program's
    canonical hash, lets the server single-flight concurrent requests
    for the same program: the expensive answering runs inside the
    callback, so two clients racing on a cold program enumerate it once
    and the loser is served from the cache the winner filled. *)
