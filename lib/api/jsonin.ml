let max_depth = 512

exception Bad of int * string

type cursor = { s : string; mutable pos : int }

let fail c msg = raise (Bad (c.pos, msg))

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  let n = String.length c.s in
  while
    c.pos < n
    && (match c.s.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    advance c
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> fail c (Printf.sprintf "expected '%c'" ch)

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.s && String.sub c.s c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else fail c (Printf.sprintf "expected '%s'" word)

(* UTF-8 encode one code point into the buffer. *)
let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xc0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xe0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xf0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
  end

let hex4 c =
  let one () =
    match peek c with
    | Some ch ->
        advance c;
        (match ch with
        | '0' .. '9' -> Char.code ch - Char.code '0'
        | 'a' .. 'f' -> Char.code ch - Char.code 'a' + 10
        | 'A' .. 'F' -> Char.code ch - Char.code 'A' + 10
        | _ -> fail c "invalid \\u escape")
    | None -> fail c "truncated \\u escape"
  in
  let a = one () in
  let b = one () in
  let d = one () in
  let e = one () in
  (a lsl 12) lor (b lsl 8) lor (d lsl 4) lor e

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' ->
        advance c;
        (match peek c with
        | None -> fail c "truncated escape"
        | Some e ->
            advance c;
            (match e with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
                let cp = hex4 c in
                (* A high surrogate must pair with a following \u low
                   surrogate; a lone surrogate is malformed. *)
                if cp >= 0xd800 && cp <= 0xdbff then begin
                  if
                    c.pos + 1 < String.length c.s
                    && c.s.[c.pos] = '\\'
                    && c.s.[c.pos + 1] = 'u'
                  then begin
                    advance c;
                    advance c;
                    let lo = hex4 c in
                    if lo >= 0xdc00 && lo <= 0xdfff then
                      add_utf8 buf
                        (0x10000 + ((cp - 0xd800) lsl 10) + (lo - 0xdc00))
                    else fail c "invalid low surrogate"
                  end
                  else fail c "lone high surrogate"
                end
                else if cp >= 0xdc00 && cp <= 0xdfff then
                  fail c "lone low surrogate"
                else add_utf8 buf cp
            | _ -> fail c "unknown escape"));
        loop ()
    | Some ch when Char.code ch < 0x20 -> fail c "raw control character"
    | Some ch ->
        advance c;
        Buffer.add_char buf ch;
        loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let digits () =
    let saw = ref false in
    let rec go () =
      match peek c with
      | Some '0' .. '9' ->
          saw := true;
          advance c;
          go ()
      | _ -> ()
    in
    go ();
    if not !saw then fail c "expected digit"
  in
  if peek c = Some '-' then advance c;
  digits ();
  let integral = ref true in
  if peek c = Some '.' then begin
    integral := false;
    advance c;
    digits ()
  end;
  (match peek c with
  | Some ('e' | 'E') ->
      integral := false;
      advance c;
      (match peek c with Some ('+' | '-') -> advance c | _ -> ());
      digits ()
  | _ -> ());
  let text = String.sub c.s start (c.pos - start) in
  if !integral then
    match int_of_string_opt text with
    | Some i -> Jsonout.Int i
    | None -> Jsonout.Float (float_of_string text) (* out of int range *)
  else Jsonout.Float (float_of_string text)

let rec parse_value c depth =
  if depth > max_depth then fail c "nesting too deep";
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin
        advance c;
        Jsonout.Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws c;
          let k = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value c (depth + 1) in
          fields := (k, v) :: !fields;
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              members ()
          | Some '}' -> advance c
          | _ -> fail c "expected ',' or '}'"
        in
        members ();
        Jsonout.Obj (List.rev !fields)
      end
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin
        advance c;
        Jsonout.List []
      end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value c (depth + 1) in
          items := v :: !items;
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              elements ()
          | Some ']' -> advance c
          | _ -> fail c "expected ',' or ']'"
        in
        elements ();
        Jsonout.List (List.rev !items)
      end
  | Some '"' -> Jsonout.Str (parse_string c)
  | Some 't' -> literal c "true" (Jsonout.Bool true)
  | Some 'f' -> literal c "false" (Jsonout.Bool false)
  | Some 'n' -> literal c "null" Jsonout.Null
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> fail c (Printf.sprintf "unexpected character %C" ch)

let parse s =
  let c = { s; pos = 0 } in
  match parse_value c 0 with
  | v ->
      skip_ws c;
      if c.pos <> String.length s then
        Error (Printf.sprintf "trailing content at offset %d" c.pos)
      else Ok v
  | exception Bad (pos, msg) ->
      Error (Printf.sprintf "%s at offset %d" msg pos)
