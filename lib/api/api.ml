(* ------------------------------------------------------------------ *)
(* Errors                                                              *)
(* ------------------------------------------------------------------ *)

type error_code = Parse | Usage | Timeout | Overload

let code_string = function
  | Parse -> "parse"
  | Usage -> "usage"
  | Timeout -> "timeout"
  | Overload -> "overload"

exception Error of error_code * string

let errorf code fmt =
  Format.kasprintf (fun msg -> raise (Error (code, msg))) fmt

let error_doc ?id ~code msg =
  Jsonout.Obj
    ([ ("schema", Jsonout.Str "eventorder.error/1") ]
    @ (match id with Some id -> [ ("id", id) ] | None -> [])
    @ [
        ("code", Jsonout.Str (code_string code)); ("error", Jsonout.Str msg);
      ])

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

let relation_key = function
  | Relations.MHB -> "mhb"
  | Relations.CHB -> "chb"
  | Relations.MCW -> "mcw"
  | Relations.CCW -> "ccw"
  | Relations.MOW -> "mow"
  | Relations.COW -> "cow"

let relation_of_string = function
  | "mhb" -> Some Relations.MHB
  | "chb" -> Some Relations.CHB
  | "mcw" -> Some Relations.MCW
  | "ccw" -> Some Relations.CCW
  | "mow" -> Some Relations.MOW
  | "cow" -> Some Relations.COW
  | _ -> None

(* An event names itself by label or by numeric id. *)
let lookup_event trace x name =
  match Trace.find_event_opt trace name with
  | Some e -> Some e.Event.id
  | None -> (
      match int_of_string_opt name with
      | Some id when id >= 0 && id < Execution.n_events x -> Some id
      | _ -> None)

(* REL:A:B — but labels themselves contain colons ("x := 1"), so the
   two separators cannot be found lexically.  Instead every split of
   the remainder is tried, and the one where both sides name events
   wins; anything else (zero or several splits working) is an error. *)
let resolve_pair trace x ~query rest =
  let n = String.length rest in
  let candidates = ref [] in
  for i = 0 to n - 1 do
    if rest.[i] = ':' then begin
      let a = String.sub rest 0 i in
      let b = String.sub rest (i + 1) (n - i - 1) in
      match (lookup_event trace x a, lookup_event trace x b) with
      | Some ea, Some eb -> candidates := (a, b, ea, eb) :: !candidates
      | _ -> ()
    end
  done;
  match !candidates with
  | [ c ] -> c
  | [] ->
      errorf Usage
        "query %S names no event pair of the trace (labels or numeric event \
         ids, REL:A:B)"
        query
  | _ ->
      errorf Usage
        "query %S is ambiguous: several label splits match; use numeric \
         event ids"
        query

type query =
  | Relations
  | Reduced
  | Races
  | First
  | Schedules
  | Pair of Relations.relation * string

let query_of_string q =
  match q with
  | "relations" -> Relations
  | "reduced" -> Reduced
  | "races" -> Races
  | "first" -> First
  | "schedules" -> Schedules
  | _ -> (
      match String.index_opt q ':' with
      | Some i -> (
          let rel = String.sub q 0 i in
          let rest = String.sub q (i + 1) (String.length q - i - 1) in
          match relation_of_string (String.lowercase_ascii rel) with
          | Some relation -> Pair (relation, rest)
          | None ->
              errorf Usage
                "unknown relation %S in query %S (expected mhb, chb, mcw, \
                 ccw, mow or cow)"
                rel q)
      | None ->
          errorf Usage
            "unknown query %S (expected relations, reduced, races, first, \
             schedules, or REL:A:B)"
            q)

(* ------------------------------------------------------------------ *)
(* Answering                                                           *)
(* ------------------------------------------------------------------ *)

type answer =
  | Summary of Relations.t
  | Race_list of Race.race list
  | Count of int
  | Holds of {
      relation : Relations.relation;
      a_label : string;
      b_label : string;
      holds : bool;
    }

type result = { query : string; answer : answer; timed_out : bool }

let answers session trace x queries =
  let decide = lazy (Decide.of_session session) in
  (* An entry is "timeout" only when the deadline actually cut it short:
     [Bound_hit] can also come from --limit, which the summary's own
     [truncated] field reports without flipping the status. *)
  let deadline = Session.budget session in
  let entry query outcome wrap =
    match outcome with
    | Budget.Exact v -> { query; answer = wrap v; timed_out = false }
    | Budget.Bound_hit v ->
        { query; answer = wrap v; timed_out = Budget.exhausted deadline }
  in
  List.map
    (fun q ->
      match query_of_string q with
      | Relations ->
          entry q (Relations.of_session_outcome session) (fun s -> Summary s)
      | Reduced ->
          entry q
            (Relations.of_session_reduced_outcome session)
            (fun s -> Summary s)
      | Races ->
          entry q
            (Race.feasible_races_session_outcome session)
            (fun r -> Race_list r)
      | First ->
          entry q
            (Race.first_races_session_outcome session)
            (fun r -> Race_list r)
      | Schedules ->
          entry q (Session.schedule_count_outcome session) (fun c -> Count c)
      | Pair (relation, rest) ->
          let a_label, b_label, a, b = resolve_pair trace x ~query:q rest in
          entry q
            (Decide.holds_outcome (Lazy.force decide) relation a b)
            (fun holds -> Holds { relation; a_label; b_label; holds }))
    queries

let json_of_rel rel =
  Jsonout.List
    (List.map
       (fun (a, b) -> Jsonout.List [ Jsonout.Int a; Jsonout.Int b ])
       (Rel.to_pairs rel))

let json_of_race (x : Execution.t) (r : Race.race) =
  Jsonout.Obj
    [
      ("e1", Jsonout.Int r.Race.e1);
      ("e2", Jsonout.Int r.Race.e2);
      ( "labels",
        Jsonout.List
          [
            Jsonout.Str x.Execution.events.(r.Race.e1).Event.label;
            Jsonout.Str x.Execution.events.(r.Race.e2).Event.label;
          ] );
      ( "variables",
        Jsonout.List (List.map (fun v -> Jsonout.Int v) r.Race.variables) );
    ]

let result_json x { query; answer; timed_out } =
  let head =
    [
      ("query", Jsonout.Str query);
      ("status", Jsonout.Str (if timed_out then "timeout" else "ok"));
    ]
  in
  match answer with
  | Summary s ->
      Jsonout.Obj
        (head
        @ [
            ("feasible_schedules", Jsonout.Int s.Relations.feasible_count);
            ("truncated", Jsonout.Bool s.Relations.truncated);
            ("distinct_classes", Jsonout.Int s.Relations.distinct_classes);
            ( "relations",
              Jsonout.Obj
                (List.map
                   (fun rel ->
                     (relation_key rel, json_of_rel (Relations.to_rel s rel)))
                   Relations.all_relations) );
          ])
  | Race_list races ->
      Jsonout.Obj
        (head @ [ ("races", Jsonout.List (List.map (json_of_race x) races)) ])
  | Count count ->
      Jsonout.Obj
        (head
        @ [
            ("feasible_schedules", Jsonout.Int count);
            ("saturated", Jsonout.Bool (count >= Reach.count_saturation));
          ])
  | Holds { relation; a_label; b_label; holds } ->
      Jsonout.Obj
        (head
        @ [
            ("relation", Jsonout.Str (relation_key relation));
            ("before", Jsonout.Str a_label);
            ("after", Jsonout.Str b_label);
            ("holds", Jsonout.Bool holds);
          ])

let pp_result x ppf { query; answer; _ } =
  Format.fprintf ppf "-- %s --@." query;
  match answer with
  | Summary s ->
      Format.fprintf ppf "%a@." Relations.pp_summary (s, x.Execution.events)
  | Race_list races ->
      Format.fprintf ppf "races: %d@." (List.length races);
      List.iter (fun r -> Format.fprintf ppf "  %a@." (Race.pp_race x) r) races
  | Count count ->
      if count >= Reach.count_saturation then
        Format.fprintf ppf "feasible schedules: >= 10^18@."
      else Format.fprintf ppf "feasible schedules: %d@." count
  | Holds { relation; a_label; b_label; holds } ->
      Format.fprintf ppf "'%s' %s '%s': %b@." a_label
        (String.uppercase_ascii (relation_key relation))
        b_label holds

(* ------------------------------------------------------------------ *)
(* Requests — the wire layer                                           *)
(* ------------------------------------------------------------------ *)

type op = Batch | Stats | Ping | Shutdown

type request = {
  id : Jsonout.t option;
  op : op;
  program : string option;
  trace_text : string option;
  policy : Sched.policy;
  queries : string list;
  engine : Engine.t option;
  model : Memmodel.t option;
  limit : int option;
  timeout_ms : int option;
  jobs : int option;
  collect_stats : bool;
}

let request_schema = "eventorder.request/1"

let fields_of = function
  | Jsonout.Obj fields -> fields
  | _ -> errorf Usage "a request must be a JSON object"

(* The id is echoed verbatim so pipelining clients can correlate; only
   scalars are accepted (an object id would invite unbounded junk). *)
let id_of fields =
  match List.assoc_opt "id" fields with
  | None | Some Jsonout.Null -> None
  | Some (Jsonout.Int _ | Jsonout.Str _) as id -> id
  | Some _ -> errorf Usage "field \"id\" must be an integer or a string"

let string_field fields k =
  match List.assoc_opt k fields with
  | None | Some Jsonout.Null -> None
  | Some (Jsonout.Str s) -> Some s
  | Some _ -> errorf Usage "field %S must be a string" k

let int_field fields k =
  match List.assoc_opt k fields with
  | None | Some Jsonout.Null -> None
  | Some (Jsonout.Int i) -> Some i
  | Some _ -> errorf Usage "field %S must be an integer" k

let bool_field fields k =
  match List.assoc_opt k fields with
  | None | Some Jsonout.Null -> None
  | Some (Jsonout.Bool b) -> Some b
  | Some _ -> errorf Usage "field %S must be a boolean" k

let string_list_field fields k =
  match List.assoc_opt k fields with
  | None | Some Jsonout.Null -> None
  | Some (Jsonout.List items) ->
      Some
        (List.map
           (function
             | Jsonout.Str s -> s
             | _ -> errorf Usage "field %S must be a list of strings" k)
           items)
  | Some _ -> errorf Usage "field %S must be a list of strings" k

let op_of_string = function
  | "batch" -> Batch
  | "stats" -> Stats
  | "ping" -> Ping
  | "shutdown" -> Shutdown
  | s -> errorf Usage "unknown op %S (expected batch, stats, ping or shutdown)" s

let policy_of_string s =
  match s with
  | "rr" -> Sched.Round_robin
  | "priority" -> Sched.Priority
  | _ -> (
      match String.split_on_char ':' s with
      | [ "random"; seed ] -> (
          match int_of_string_opt seed with
          | Some seed -> Sched.Random seed
          | None -> errorf Usage "random policy seed must be an integer")
      | _ -> errorf Usage "unknown policy %S (expected rr, priority, or random:SEED)" s)

let request_of_json doc =
  let fields = fields_of doc in
  (match string_field fields "schema" with
  | Some s when s = request_schema -> ()
  | Some s -> errorf Usage "unknown request schema %S (expected %S)" s request_schema
  | None -> errorf Usage "request is missing its \"schema\" field (%S)" request_schema);
  let engine =
    match string_field fields "engine" with
    | None -> None
    | Some s -> (
        match Engine.of_string s with
        | Some e -> Some e
        | None ->
            errorf Usage "unknown engine %S (expected %s)" s
              (String.concat ", " Config.engine_names))
  in
  let model =
    match string_field fields "model" with
    | None -> None
    | Some s -> (
        match Memmodel.of_string s with
        | Some m -> Some m
        | None ->
            errorf Usage "unknown model %S (expected %s)" s
              (String.concat ", " Config.model_names))
  in
  {
    id = id_of fields;
    op =
      (match string_field fields "op" with
      | None -> Batch
      | Some s -> op_of_string s);
    program = string_field fields "program";
    trace_text = string_field fields "trace";
    policy =
      (match string_field fields "policy" with
      | None -> Sched.Round_robin
      | Some s -> policy_of_string s);
    queries = Option.value ~default:[] (string_list_field fields "queries");
    engine;
    model;
    limit = int_field fields "limit";
    timeout_ms = int_field fields "timeout_ms";
    jobs = int_field fields "jobs";
    collect_stats = Option.value ~default:false (bool_field fields "stats");
  }

let request_op_of_line line =
  match Jsonin.parse line with
  | Error _ -> None
  | Ok (Jsonout.Obj fields) -> (
      match List.assoc_opt "op" fields with
      | None -> Some Batch
      | Some (Jsonout.Str s) -> ( try Some (op_of_string s) with Error _ -> None)
      | Some _ -> None)
  | Ok _ -> None

let request_id_of_line line =
  match Jsonin.parse line with
  | Ok (Jsonout.Obj fields) -> ( try id_of fields with Error _ -> None)
  | Ok _ | Error _ -> None

(* ------------------------------------------------------------------ *)
(* Handling                                                            *)
(* ------------------------------------------------------------------ *)

type config = {
  engine : Engine.t option;
  model : Memmodel.t option;
  limit : int option;
  jobs : int;
  max_events : int;
  timeout_ms : int option;
  cache : Session.cache;
}

let default_config () =
  {
    engine = None;
    model = None;
    limit = None;
    jobs = Config.jobs ();
    max_events = 40;
    timeout_ms = Config.timeout_ms ();
    cache = Session.default_cache ();
  }

type handled = {
  response : Jsonout.t;
  shutdown : bool;
  telemetry : Telemetry.t option;
}

let response_schema = "eventorder.response/1"

let id_field = function Some id -> [ ("id", id) ] | None -> []

let plain ?id fields =
  Jsonout.Obj
    ([ ("schema", Jsonout.Str response_schema) ]
    @ id_field id
    @ [ ("status", Jsonout.Str "ok") ]
    @ fields)

let outcome_string = function
  | Trace.Completed -> "completed"
  | Trace.Deadlocked _ -> "deadlocked"
  | Trace.Fuel_exhausted -> "fuel_exhausted"

let run_batch ?serialize config (req : request) =
  (* Engine resolution is per request and never consults the handling
     domain's previous choice: request > server flag > environment
     default.  [Engine.set] is domain-local and [Parallel.map] re-seeds
     its workers, so concurrent requests cannot leak engines into each
     other. *)
  let engine =
    match (req.engine, config.engine) with
    | Some e, _ -> e
    | None, Some e -> e
    | None, None -> Engine.default_of_env ()
  in
  Engine.set engine;
  (* The model resolves the same way (request > server flag > environment
     default) and is likewise domain-local; it is baked into the session
     cache key, so cached answers can never cross models. *)
  let model =
    match (req.model, config.model) with
    | Some m, _ -> m
    | None, Some m -> m
    | None, None -> Memmodel.default_of_env ()
  in
  Memmodel.set model;
  (* The server cap clamps the request deadline; a request without one
     inherits the cap, so --timeout on the server is a hard ceiling. *)
  let timeout_ms =
    match (req.timeout_ms, config.timeout_ms) with
    | Some r, Some c -> Some (min r c)
    | Some r, None -> Some r
    | None, c -> c
  in
  (match timeout_ms with
  | Some ms when ms < 1 ->
      errorf Usage "timeout_ms must be at least 1 millisecond (got %d)" ms
  | _ -> ());
  let budget =
    match timeout_ms with
    | Some ms -> Budget.create ~timeout_ms:ms ()
    | None -> Budget.unlimited
  in
  let jobs =
    match req.jobs with
    | Some j when j >= 1 -> min j config.jobs
    | Some j -> errorf Usage "jobs must be at least 1 (got %d)" j
    | None -> config.jobs
  in
  let trace =
    match (req.program, req.trace_text) with
    | Some _, Some _ ->
        errorf Usage "request carries both \"program\" and \"trace\"; send one"
    | None, None ->
        errorf Usage "request carries neither \"program\" nor \"trace\""
    | Some src, None -> (
        match Interp.run ~policy:req.policy (Parse.program src) with
        | trace -> trace
        | exception Parse.Syntax_error { line; message } ->
            errorf Parse "program line %d: syntax error: %s" line message)
    | None, Some text -> (
        try Trace_io.of_string text
        with Failure message -> errorf Parse "malformed trace: %s" message)
  in
  let n = Trace.n_events trace in
  if n > config.max_events then
    errorf Usage
      "trace has %d events; the exact engines are exponential and %d is past \
       the server's --max-events %d"
      n n config.max_events;
  if req.queries = [] then
    errorf Usage "batch request has an empty \"queries\" list";
  let x = Trace.to_execution trace in
  let limit = match req.limit with Some _ as l -> l | None -> config.limit in
  let stats = if req.collect_stats then Some (Telemetry.create ()) else None in
  let session =
    Session.of_execution ?limit ~jobs ?stats ~budget ~cache:config.cache x
  in
  Triage.attach session;
  let key = Program_key.hash (Session.key session) in
  let compute () =
    let results = answers session trace x req.queries in
    Jsonout.Obj
      ([ ("schema", Jsonout.Str response_schema) ]
      @ id_field req.id
      @ [
          ( "status",
            Jsonout.Str (if Budget.exhausted budget then "timeout" else "ok")
          );
          ("op", Jsonout.Str "batch");
          ("events", Jsonout.Int n);
          ("outcome", Jsonout.Str (outcome_string trace.Trace.outcome));
          ("program_key", Jsonout.Str key);
          ("engine", Jsonout.Str (Engine.to_string engine));
          ("model", Jsonout.Str (Memmodel.to_string model));
          ("jobs", Jsonout.Int jobs);
          ("results", Jsonout.List (List.map (result_json x) results));
        ]
      @ match stats with
        | Some tel -> [ ("stats", Telemetry.to_json tel) ]
        | None -> [])
  in
  let response =
    match serialize with Some f -> f key compute | None -> compute ()
  in
  { response; shutdown = false; telemetry = stats }

let handle_line ?(allow_shutdown = false) ?extra_stats ?serialize config line =
  let fail ?id code msg =
    { response = error_doc ?id ~code msg; shutdown = false; telemetry = None }
  in
  match Jsonin.parse line with
  | Error msg -> fail Parse (Printf.sprintf "malformed request: %s" msg)
  | Ok doc -> (
      (* Recover the id before full validation so even a rejected
         request gets a correlatable error. *)
      let id =
        match doc with
        | Jsonout.Obj fields -> ( try id_of fields with Error _ -> None)
        | _ -> None
      in
      try
        let req = request_of_json doc in
        match req.op with
        | Ping ->
            {
              response = plain ?id:req.id [ ("op", Jsonout.Str "ping") ];
              shutdown = false;
              telemetry = None;
            }
        | Shutdown ->
            if allow_shutdown then
              {
                response =
                  plain ?id:req.id
                    [ ("op", Jsonout.Str "shutdown");
                      ("stopping", Jsonout.Bool true) ];
                shutdown = true;
                telemetry = None;
              }
            else errorf Usage "shutdown is not permitted on this transport"
        | Stats ->
            let extra =
              match extra_stats with Some f -> f () | None -> []
            in
            {
              response =
                Jsonout.Obj
                  ([ ("schema", Jsonout.Str "eventorder.stats/1") ]
                  @ id_field req.id
                  @ [ ("status", Jsonout.Str "ok") ]
                  @ extra);
              shutdown = false;
              telemetry = None;
            }
        | Batch -> run_batch ?serialize config req
      with Error (code, msg) -> fail ?id code msg)
