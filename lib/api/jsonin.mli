(** Minimal JSON parsing — the input-side twin of {!Jsonout}.

    The wire protocol ([eventorder.request/1], see docs/PROTOCOL.md) is
    newline-delimited JSON, and this repo deliberately carries no JSON
    dependency, so requests are parsed here into the same {!Jsonout.t}
    AST the output side prints.  The parser is a plain recursive-descent
    over the RFC 8259 grammar with two defensive deviations, both aimed
    at a daemon fed by untrusted clients:

    - nesting depth is capped ({!max_depth}) so a ["[[[[…"] bomb is a
      parse error, not a stack overflow in a worker domain;
    - numbers that look integral parse as [Int], everything else as
      [Float] — mirroring what {!Jsonout} prints, so a print/parse
      round-trip is the identity on integer-only documents.

    Exactly one document per string: trailing non-whitespace is an
    error.  All RFC 8259 escapes (quote, backslash, slash, [b f n r t],
    [uXXXX] with surrogate pairs) decode to UTF-8. *)

val max_depth : int
(** Maximum array/object nesting accepted (512). *)

val parse : string -> (Jsonout.t, string) result
(** [parse s] is the document in [s], or [Error message] with a
    character offset on malformed input.  Never raises. *)
