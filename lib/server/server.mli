(** [eventorder serve] — the multi-client analysis daemon.

    One process, one listening socket (Unix-domain or TCP), newline-
    delimited JSON both ways: each request line is an
    [eventorder.request/1] document and each response line is exactly
    one [eventorder.response/1] / [eventorder.stats/1] /
    [eventorder.error/1] document (see docs/PROTOCOL.md).  All analysis
    goes through {!Api.handle_line} — the same dispatcher the [batch]
    subcommand uses — so the daemon answers bit-for-bit what the CLI
    answers.

    Concurrency model:

    - {b domain 0} owns the accept loop ([Unix.select]), per-connection
      read buffers and the control requests ([stats], [ping],
      [shutdown]) — those are answered inline, so health checks stay
      responsive while every worker is busy;
    - {b analysis requests} go through a bounded admission queue into a
      pool of worker domains.  A full queue (or a breached
      [--max-memory] watermark) answers immediately with an
      [eventorder.error/1] of code [overload] instead of hanging the
      client; a request that out-waits the server's deadline cap in the
      queue is answered with code [timeout] without ever running.
    - {b shared hot state}: worker sessions share the process-wide
      result LRU, and concurrent requests for the same program are
      single-flighted on its canonical hash — the first client pays the
      enumeration, everyone else is served from the cache it filled.

    Graceful shutdown (SIGTERM, SIGINT, or a [shutdown] request): stop
    accepting, drain the queue, answer every in-flight request, exit 0. *)

type endpoint =
  | Unix_socket of string  (** path; created at start, removed at exit *)
  | Tcp of string * int  (** bind host, port *)

type config = {
  endpoint : endpoint;
  workers : int;  (** worker domains answering analysis requests *)
  max_queue : int;
      (** analysis requests allowed to wait; [0] rejects every analysis
          request with [overload] (deterministic overload testing) *)
  max_memory_mb : int option;
      (** refuse new analysis requests while the live heap exceeds
          this watermark *)
  api : Api.config;  (** per-request defaults and admission guards *)
  log : bool;  (** startup/shutdown/connection notes on stderr *)
}

val run : config -> unit
(** Binds, serves, blocks until shutdown.  Raises [Unix.Unix_error] when
    the endpoint cannot be bound. *)
