type endpoint = Unix_socket of string | Tcp of string * int

type config = {
  endpoint : endpoint;
  workers : int;
  max_queue : int;
  max_memory_mb : int option;
  api : Api.config;
  log : bool;
}

(* One connected client.  Reads happen only on domain 0 (the select
   loop); writes happen from domain 0 (control responses, admission
   rejections) and from any worker (analysis responses), serialized by
   [wm] so two responses never interleave on the wire. *)
type conn = {
  fd : Unix.file_descr;
  wm : Mutex.t;
  mutable pending : string;  (** bytes read but not yet newline-framed *)
  mutable broken : bool;  (** write failed; stop responding, close soon *)
}

type job = { line : string; peer : conn; enqueued : float }

(* A request line this long is an attack or a bug, not an analysis. *)
let max_line_bytes = 32 * 1024 * 1024

let write_all fd s =
  let n = String.length s in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write_substring fd s !off (n - !off)
  done

let send conn doc =
  Mutex.lock conn.wm;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock conn.wm)
    (fun () ->
      if not conn.broken then
        try write_all conn.fd (Jsonout.to_string doc ^ "\n")
        with Unix.Unix_error ((EPIPE | ECONNRESET | EBADF), _, _) ->
          conn.broken <- true)

let heap_bytes () =
  let s = Gc.quick_stat () in
  (s.Gc.heap_words * Sys.word_size) / 8

let counters_json c =
  Jsonout.Obj
    (List.map
       (fun k -> (Counters.key_name k, Jsonout.Int (Counters.get c k)))
       Counters.all_keys)

let run cfg =
  (* A worker writing to a client that vanished must get EPIPE as an
     error code, not a process-killing signal. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let listen_fd =
    match cfg.endpoint with
    | Unix_socket path ->
        if Sys.file_exists path then Unix.unlink path;
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.bind fd (Unix.ADDR_UNIX path);
        fd
    | Tcp (host, port) ->
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        let addr =
          try (Unix.gethostbyname host).Unix.h_addr_list.(0)
          with Not_found -> Unix.inet_addr_of_string host
        in
        Unix.bind fd (Unix.ADDR_INET (addr, port));
        fd
  in
  Unix.listen listen_fd 64;
  let started = Unix.gettimeofday () in
  let log fmt =
    if cfg.log then Format.eprintf ("serve: " ^^ fmt ^^ "@.")
    else Format.ifprintf Format.err_formatter fmt
  in
  (match cfg.endpoint with
  | Unix_socket path -> log "listening on %s (%d workers)" path cfg.workers
  | Tcp (host, port) ->
      log "listening on %s:%d (%d workers)" host port cfg.workers);

  let stopping = Atomic.make false in
  let request_stop () = Atomic.set stopping true in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> request_stop ()));
  Sys.set_signal Sys.sigint (Sys.Signal_handle (fun _ -> request_stop ()));

  (* Admission queue: domain 0 pushes, workers pop.  Bounded by
     [max_queue]; the bound is checked by the pusher so rejection is
     immediate and the queue itself never grows past the cap. *)
  let qm = Mutex.create () in
  let qc = Condition.create () in
  let queue : job Queue.t = Queue.create () in
  let served = Atomic.make 0 in
  let overloads = Atomic.make 0 in

  (* Global counters: every per-request telemetry the workers produce is
     folded in here, so a [stats] request sees the server's lifetime
     engine activity. *)
  let stats_m = Mutex.create () in
  let global_counters = Counters.create () in
  let note_telemetry = function
    | None -> ()
    | Some tel ->
        Mutex.lock stats_m;
        Counters.merge_into ~dst:global_counters (Telemetry.counters tel);
        Mutex.unlock stats_m
  in

  (* Single-flight: concurrent requests for the same program hash queue
     behind one mutex, so a cold program is enumerated exactly once and
     the losers are served from the LRU the winner filled. *)
  let flights : (string, Mutex.t) Hashtbl.t = Hashtbl.create 16 in
  let flights_m = Mutex.create () in
  let serialize key f =
    let m =
      Mutex.lock flights_m;
      let m =
        match Hashtbl.find_opt flights key with
        | Some m -> m
        | None ->
            let m = Mutex.create () in
            Hashtbl.add flights key m;
            m
      in
      Mutex.unlock flights_m;
      m
    in
    Mutex.lock m;
    Fun.protect ~finally:(fun () -> Mutex.unlock m) f
  in

  let conns : (int, conn) Hashtbl.t = Hashtbl.create 16 in
  let extra_stats () =
    let queue_depth =
      Mutex.lock qm;
      let d = Queue.length queue in
      Mutex.unlock qm;
      d
    in
    let counters =
      Mutex.lock stats_m;
      let j = counters_json global_counters in
      Mutex.unlock stats_m;
      j
    in
    [
      ( "uptime_ms",
        Jsonout.Int
          (int_of_float ((Unix.gettimeofday () -. started) *. 1000.)) );
      ("workers", Jsonout.Int cfg.workers);
      ("connections", Jsonout.Int (Hashtbl.length conns));
      ("queue_depth", Jsonout.Int queue_depth);
      ("max_queue", Jsonout.Int cfg.max_queue);
      ("requests_served", Jsonout.Int (Atomic.get served));
      ("overload_rejections", Jsonout.Int (Atomic.get overloads));
      ("counters", counters);
    ]
  in

  let worker () =
    let rec loop () =
      let job =
        Mutex.lock qm;
        let rec take () =
          if not (Queue.is_empty queue) then Some (Queue.pop queue)
          else if Atomic.get stopping then None
          else begin
            Condition.wait qc qm;
            take ()
          end
        in
        let j = take () in
        Mutex.unlock qm;
        j
      in
      match job with
      | None -> ()
      | Some { line; peer; enqueued } ->
          let response =
            (* A request that out-waited the server's own deadline cap in
               the queue would only burn a worker to report "timeout";
               answer from here instead. *)
            let overdue =
              match cfg.api.Api.timeout_ms with
              | Some cap ->
                  (Unix.gettimeofday () -. enqueued) *. 1000. > float_of_int cap
              | None -> false
            in
            if overdue then
              Api.error_doc
                ?id:(Api.request_id_of_line line)
                ~code:Api.Timeout
                "request deadline expired in the admission queue"
            else begin
              let handled = Api.handle_line ~serialize cfg.api line in
              note_telemetry handled.Api.telemetry;
              handled.Api.response
            end
          in
          send peer response;
          Atomic.incr served;
          loop ()
    in
    loop ()
  in
  let workers = Array.init cfg.workers (fun _ -> Domain.spawn worker) in

  let reject peer ~code ~id msg =
    Atomic.incr overloads;
    send peer (Api.error_doc ?id ~code msg)
  in
  let admit peer line =
    let id () = Api.request_id_of_line line in
    let queue_full =
      Mutex.lock qm;
      let full = Queue.length queue >= cfg.max_queue in
      Mutex.unlock qm;
      full
    in
    let over_memory =
      match cfg.max_memory_mb with
      | Some mb -> heap_bytes () > mb * 1024 * 1024
      | None -> false
    in
    if queue_full then
      reject peer ~code:Api.Overload ~id:(id ())
        (Printf.sprintf
           "server is overloaded: admission queue is full (--max-queue %d)"
           cfg.max_queue)
    else if over_memory then
      reject peer ~code:Api.Overload ~id:(id ())
        "server is overloaded: memory watermark exceeded (--max-memory)"
    else begin
      Mutex.lock qm;
      Queue.push { line; peer; enqueued = Unix.gettimeofday () } queue;
      Condition.signal qc;
      Mutex.unlock qm
    end
  in

  let handle_line peer line =
    match Api.request_op_of_line line with
    | Some Api.Batch -> admit peer line
    | Some Api.Stats | Some Api.Ping | Some Api.Shutdown | None ->
        (* Control requests (and anything too malformed to classify) are
           answered inline so they stay responsive while every worker
           and queue slot is busy. *)
        let handled =
          Api.handle_line ~allow_shutdown:true ~extra_stats cfg.api line
        in
        send peer handled.Api.response;
        Atomic.incr served;
        if handled.Api.shutdown then begin
          log "shutdown requested by a client; draining";
          request_stop ()
        end
  in

  let next_id = ref 0 in
  let close_conn id conn =
    Hashtbl.remove conns id;
    try Unix.close conn.fd with Unix.Unix_error _ -> ()
  in
  let buf = Bytes.create 65536 in
  let service_conn id conn =
    match Unix.read conn.fd buf 0 (Bytes.length buf) with
    | exception Unix.Unix_error (EINTR, _, _) -> ()
    | exception Unix.Unix_error ((ECONNRESET | EPIPE | EBADF), _, _) ->
        close_conn id conn
    | 0 -> close_conn id conn
    | n -> (
        conn.pending <- conn.pending ^ Bytes.sub_string buf 0 n;
        if String.length conn.pending > max_line_bytes then begin
          send conn
            (Api.error_doc ~code:Api.Parse
               (Printf.sprintf "request line exceeds %d bytes" max_line_bytes));
          close_conn id conn
        end
        else
          (* Frame on newlines; the tail stays pending. *)
          match String.rindex_opt conn.pending '\n' with
          | None -> ()
          | Some last ->
              let complete = String.sub conn.pending 0 last in
              conn.pending <-
                String.sub conn.pending (last + 1)
                  (String.length conn.pending - last - 1);
              List.iter
                (fun line ->
                  let line = String.trim line in
                  if line <> "" then handle_line conn line)
                (String.split_on_char '\n' complete))
  in

  (* Accept loop: one select over the listener and every connection.
     Signals interrupt the select (EINTR) and the timeout bounds the
     reaction time to a stop requested from a worker-written state. *)
  let rec loop () =
    if not (Atomic.get stopping) then begin
      let fds =
        listen_fd :: Hashtbl.fold (fun _ c acc -> c.fd :: acc) conns []
      in
      match Unix.select fds [] [] 0.2 with
      | exception Unix.Unix_error (EINTR, _, _) -> loop ()
      | ready, _, _ ->
          List.iter
            (fun fd ->
              if fd = listen_fd then begin
                match Unix.accept listen_fd with
                | exception Unix.Unix_error (EINTR, _, _) -> ()
                | client, _ ->
                    let id = !next_id in
                    incr next_id;
                    Hashtbl.replace conns id
                      {
                        fd = client;
                        wm = Mutex.create ();
                        pending = "";
                        broken = false;
                      }
              end
              else
                Hashtbl.iter
                  (fun id c -> if c.fd = fd then service_conn id c)
                  (Hashtbl.copy conns))
            ready;
          loop ()
    end
  in
  Fun.protect
    ~finally:(fun () ->
      (* Drain: wake every worker, let them answer what is queued, then
         tear the sockets down. *)
      Mutex.lock qm;
      Condition.broadcast qc;
      Mutex.unlock qm;
      Array.iter Domain.join workers;
      Hashtbl.iter (fun _ c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) conns;
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      (match cfg.endpoint with
      | Unix_socket path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
      | Tcp _ -> ());
      log "stopped after %d requests" (Atomic.get served))
    loop
