type t = {
  session : Session.t;
  mutable summary : Relations.t option;  (* computed lazily for COW/MCW *)
}

let of_session session = { session; summary = None }

let of_skeleton ?limit ?(jobs = 1) ?stats sk =
  of_session (Session.create ?limit ~jobs ?stats ~cache:Session.no_cache sk)

let create ?limit ?jobs ?stats execution =
  of_skeleton ?limit ?jobs ?stats (Skeleton.of_execution execution)

let session t = t.session

let skeleton t = Session.skeleton t.session

let reach t = Session.reach t.session

let stats_commit t = Reach.stats_commit (reach t)

(* The per-pair primitives are engine-routed by the session: memoized
   reachability under the search engines, replay-certified assumption
   probes on one compiled formula under [Engine.Sat]. *)

let mhb t a b = Session.must_before t.session a b

let chb t a b = Session.exists_before t.session a b

let ccw t a b = Session.exists_race t.session a b

let mow t a b = a <> b && Session.feasible_exists t.session && not (ccw t a b)

let summary t =
  match t.summary with
  | Some s -> s
  | None ->
      let s = Relations.of_session_reduced t.session in
      t.summary <- Some s;
      s

let mcw t a b = Relations.holds (summary t) Relations.MCW a b

let cow t a b = Relations.holds (summary t) Relations.COW a b

let holds t relation a b =
  match relation with
  | Relations.MHB -> mhb t a b
  | Relations.CHB -> chb t a b
  | Relations.MCW -> mcw t a b
  | Relations.CCW -> ccw t a b
  | Relations.MOW -> mow t a b
  | Relations.COW -> cow t a b

let feasible_count t = (summary t).Relations.feasible_count
