type t = {
  session : Session.t;
  mutable summary : Relations.t option;  (* computed lazily for COW/MCW *)
}

let of_session session =
  (* Every per-pair primitive below is engine-routed by the session;
     under the auto engine the ladder starts at the triage layer's
     tier-1 approximation oracle. *)
  Triage.attach session;
  { session; summary = None }

let of_skeleton ?limit ?(jobs = 1) ?stats ?budget sk =
  of_session
    (Session.create ?limit ~jobs ?stats ?budget ~cache:Session.no_cache sk)

let create ?limit ?jobs ?stats ?budget execution =
  of_skeleton ?limit ?jobs ?stats ?budget (Skeleton.of_execution execution)

let session t = t.session

let skeleton t = Session.skeleton t.session

let reach t = Session.reach t.session

let stats_commit t = Reach.stats_commit (reach t)

(* The per-pair primitives are engine-routed by the session: memoized
   reachability under the search engines, replay-certified assumption
   probes on one compiled formula under [Engine.Sat]. *)

let mhb t a b = Session.must_before t.session a b

let chb t a b = Session.exists_before t.session a b

let ccw t a b = Session.exists_race t.session a b

let mow t a b = a <> b && Session.feasible_exists t.session && not (ccw t a b)

let summary t =
  match t.summary with
  | Some s -> s
  | None ->
      let s = Relations.of_session_reduced t.session in
      t.summary <- Some s;
      s

let mcw t a b = Relations.holds (summary t) Relations.MCW a b

let cow t a b = Relations.holds (summary t) Relations.COW a b

let holds t relation a b =
  match relation with
  | Relations.MHB -> mhb t a b
  | Relations.CHB -> chb t a b
  | Relations.MCW -> mcw t a b
  | Relations.CCW -> ccw t a b
  | Relations.MOW -> mow t a b
  | Relations.COW -> cow t a b

let feasible_count t = (summary t).Relations.feasible_count

(* Outcome-typed decisions.  The per-pair primitives inherit the
   session's typed degradation; the composite relations combine
   outcomes so that a [Bound_hit] anywhere degrades the composition in
   its own sound direction (must → [true], could → [false]). *)

let mhb_outcome t a b = Session.must_before_outcome t.session a b
let chb_outcome t a b = Session.exists_before_outcome t.session a b
let ccw_outcome t a b = Session.exists_race_outcome t.session a b

let mow_outcome t a b =
  if a = b then Budget.Exact false
  else
    match ccw_outcome t a b with
    (* An exact race refutes must-ordered regardless of feasibility. *)
    | Budget.Exact true -> Budget.Exact false
    | Budget.Exact false -> Session.feasible_exists_outcome t.session
    | Budget.Bound_hit _ -> Budget.Bound_hit true

let class_outcome t relation a b =
  Budget.map
    (fun s -> Relations.holds s relation a b)
    (Relations.of_session_reduced_outcome t.session)

let mcw_outcome t a b = class_outcome t Relations.MCW a b
let cow_outcome t a b = class_outcome t Relations.COW a b

let holds_outcome t relation a b =
  match relation with
  | Relations.MHB -> mhb_outcome t a b
  | Relations.CHB -> chb_outcome t a b
  | Relations.MCW -> mcw_outcome t a b
  | Relations.CCW -> ccw_outcome t a b
  | Relations.MOW -> mow_outcome t a b
  | Relations.COW -> cow_outcome t a b
