type t = {
  sk : Skeleton.t;
  reach : Reach.t;
  jobs : int;  (* worker domains for the lazily computed summary *)
  mutable summary : Relations.t option;  (* computed lazily for COW/MCW *)
}

let of_skeleton ?(jobs = 1) sk =
  { sk; reach = Reach.create sk; jobs; summary = None }

let create ?jobs execution = of_skeleton ?jobs (Skeleton.of_execution execution)

let skeleton t = t.sk

let mhb t a b = Reach.must_before t.reach a b

let chb t a b = Reach.exists_before t.reach a b

let ccw t a b = Reach.exists_race t.reach a b

let mow t a b =
  a <> b && Reach.feasible_exists t.reach && not (ccw t a b)

let summary t =
  match t.summary with
  | Some s -> s
  | None ->
      let s = Relations.compute_reduced ~jobs:t.jobs t.sk in
      t.summary <- Some s;
      s

let mcw t a b = Relations.holds (summary t) Relations.MCW a b

let cow t a b = Relations.holds (summary t) Relations.COW a b

let holds t relation a b =
  match relation with
  | Relations.MHB -> mhb t a b
  | Relations.CHB -> chb t a b
  | Relations.MCW -> mcw t a b
  | Relations.CCW -> ccw t a b
  | Relations.MOW -> mow t a b
  | Relations.COW -> cow t a b

let feasible_count t = (summary t).Relations.feasible_count
