type t = {
  sk : Skeleton.t;
  reach : Reach.t;
  limit : int option;  (* cap handed to the lazily computed summary *)
  jobs : int;  (* worker domains for the lazily computed summary *)
  stats : Telemetry.t option;
  mutable summary : Relations.t option;  (* computed lazily for COW/MCW *)
}

let of_skeleton ?limit ?(jobs = 1) ?stats sk =
  let c =
    match stats with Some tel -> Telemetry.counters tel | None -> Counters.null
  in
  { sk; reach = Reach.create ~stats:c sk; limit; jobs; stats; summary = None }

let create ?limit ?jobs ?stats execution =
  of_skeleton ?limit ?jobs ?stats (Skeleton.of_execution execution)

let skeleton t = t.sk

let stats_commit t = Reach.stats_commit t.reach

let mhb t a b = Reach.must_before t.reach a b

let chb t a b = Reach.exists_before t.reach a b

let ccw t a b = Reach.exists_race t.reach a b

let mow t a b =
  a <> b && Reach.feasible_exists t.reach && not (ccw t a b)

let summary t =
  match t.summary with
  | Some s -> s
  | None ->
      let s =
        Relations.compute_reduced ?limit:t.limit ~jobs:t.jobs ?stats:t.stats
          t.sk
      in
      t.summary <- Some s;
      s

let mcw t a b = Relations.holds (summary t) Relations.MCW a b

let cow t a b = Relations.holds (summary t) Relations.COW a b

let holds t relation a b =
  match relation with
  | Relations.MHB -> mhb t a b
  | Relations.CHB -> chb t a b
  | Relations.MCW -> mcw t a b
  | Relations.CCW -> ccw t a b
  | Relations.MOW -> mow t a b
  | Relations.COW -> cow t a b

let feasible_count t = (summary t).Relations.feasible_count
