type check = {
  theorem : int;
  formula : Cnf.t;
  satisfiable : bool;
  ordering_holds : bool;
  agrees : bool;
  bound_hit : bool;
  n_events : int;
}

let decide_of_trace ?stats ?budget tr =
  Decide.create ?stats ?budget (Trace.to_execution tr)

(* The decision step against an already-built [Decide.t], so several
   theorems over one reduction trace can share its session (and memoized
   reachability engine).  A budget expiry degrades the ordering verdict
   (never raises), so [bound_hit] marks the check as inconclusive rather
   than letting a degraded answer masquerade as a counterexample. *)
let decide_with decide ~relation ~satisfiable a b =
  let verdict =
    match relation with
    | `Mhb_ab ->
        let o = Decide.mhb_outcome decide a b in
        let h = Budget.value o in
        (h, h = not satisfiable, not (Budget.is_exact o))
    | `Chb_ba ->
        let o = Decide.chb_outcome decide b a in
        let h = Budget.value o in
        (h, h = satisfiable, not (Budget.is_exact o))
  in
  Decide.stats_commit decide;
  verdict

let sem_context ?(binary = false) formula =
  let red = Reduction_sem.build ~binary formula in
  let tr = Reduction_sem.trace red in
  let a, b = Reduction_sem.events_ab red tr in
  (tr, a, b)

let evt_context formula =
  let red = Reduction_evt.build formula in
  let tr = Reduction_evt.trace red in
  let a, b = Reduction_evt.events_ab red tr in
  (tr, a, b)

let check_with decide ~theorem ~relation ~satisfiable ~formula tr a b =
  let ordering_holds, agrees, bound_hit =
    decide_with decide ~relation ~satisfiable a b
  in
  { theorem; formula; satisfiable; ordering_holds; agrees; bound_hit;
    n_events = Trace.n_events tr }

let check_sem ?stats ?budget ?binary ~theorem ~relation formula =
  let tr, a, b = sem_context ?binary formula in
  let satisfiable = Dpll.is_satisfiable formula in
  check_with
    (decide_of_trace ?stats ?budget tr)
    ~theorem ~relation ~satisfiable ~formula tr a b

let check_evt ?stats ?budget ~theorem ~relation formula =
  let tr, a, b = evt_context formula in
  let satisfiable = Dpll.is_satisfiable formula in
  check_with
    (decide_of_trace ?stats ?budget tr)
    ~theorem ~relation ~satisfiable ~formula tr a b

let check_theorem_1 ?stats ?budget f =
  check_sem ?stats ?budget ~binary:false ~theorem:1 ~relation:`Mhb_ab f

let check_theorem_2 ?stats ?budget f =
  check_sem ?stats ?budget ~binary:false ~theorem:2 ~relation:`Chb_ba f

(* Section 5.1's closing remark: the same results for binary semaphores. *)
let check_theorem_1_binary ?stats ?budget f =
  check_sem ?stats ?budget ~binary:true ~theorem:1 ~relation:`Mhb_ab f

let check_theorem_2_binary ?stats ?budget f =
  check_sem ?stats ?budget ~binary:true ~theorem:2 ~relation:`Chb_ba f

let check_theorem_3 ?stats ?budget f =
  check_evt ?stats ?budget ~theorem:3 ~relation:`Mhb_ab f

let check_theorem_4 ?stats ?budget f =
  check_evt ?stats ?budget ~theorem:4 ~relation:`Chb_ba f

(* All four theorems from shared work: one SAT verdict, one reduction
   trace and one session-backed [Decide.t] per reduction style —
   Theorems 1 & 2 ask about the same semaphore program (MHB a b vs
   CHB b a share the session's reachability memo) and 3 & 4 about the
   same event-style program. *)
let check_all ?stats ?budget formula =
  let satisfiable = Dpll.is_satisfiable formula in
  let tr_sem, a_s, b_s = sem_context formula in
  let d_sem = decide_of_trace ?stats ?budget tr_sem in
  let tr_evt, a_e, b_e = evt_context formula in
  let d_evt = decide_of_trace ?stats ?budget tr_evt in
  [
    check_with d_sem ~theorem:1 ~relation:`Mhb_ab ~satisfiable ~formula tr_sem
      a_s b_s;
    check_with d_sem ~theorem:2 ~relation:`Chb_ba ~satisfiable ~formula tr_sem
      a_s b_s;
    check_with d_evt ~theorem:3 ~relation:`Mhb_ab ~satisfiable ~formula tr_evt
      a_e b_e;
    check_with d_evt ~theorem:4 ~relation:`Chb_ba ~satisfiable ~formula tr_evt
      a_e b_e;
  ]

let pp_check ppf c =
  Format.fprintf ppf
    "Theorem %d: formula %a is %s; %s holds: %b; equivalence %s%s (%d events)"
    c.theorem Cnf.pp c.formula
    (if c.satisfiable then "SAT" else "UNSAT")
    (match c.theorem with 1 | 3 -> "a MHB b" | _ -> "b CHB a")
    c.ordering_holds
    (if c.agrees then "VERIFIED" else "VIOLATED")
    (if c.bound_hit then " [inconclusive: budget exhausted]" else "")
    c.n_events
