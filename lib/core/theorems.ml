type check = {
  theorem : int;
  formula : Cnf.t;
  satisfiable : bool;
  ordering_holds : bool;
  agrees : bool;
  n_events : int;
}

let decide_of_trace ?stats tr = Decide.create ?stats (Trace.to_execution tr)

let decide_pair ?stats ~relation ~satisfiable tr a b =
  let decide = decide_of_trace ?stats tr in
  let verdict =
    match relation with
    | `Mhb_ab ->
        let h = Decide.mhb decide a b in
        (h, h = not satisfiable)
    | `Chb_ba ->
        let h = Decide.chb decide b a in
        (h, h = satisfiable)
  in
  Decide.stats_commit decide;
  verdict

let check_sem ?stats ?(binary = false) ~theorem ~relation formula =
  let red = Reduction_sem.build ~binary formula in
  let tr = Reduction_sem.trace red in
  let a, b = Reduction_sem.events_ab red tr in
  let satisfiable = Dpll.is_satisfiable formula in
  let ordering_holds, agrees = decide_pair ?stats ~relation ~satisfiable tr a b in
  { theorem; formula; satisfiable; ordering_holds; agrees;
    n_events = Trace.n_events tr }

let check_evt ?stats ~theorem ~relation formula =
  let red = Reduction_evt.build formula in
  let tr = Reduction_evt.trace red in
  let a, b = Reduction_evt.events_ab red tr in
  let satisfiable = Dpll.is_satisfiable formula in
  let ordering_holds, agrees = decide_pair ?stats ~relation ~satisfiable tr a b in
  { theorem; formula; satisfiable; ordering_holds; agrees;
    n_events = Trace.n_events tr }

let check_theorem_1 ?stats f =
  check_sem ?stats ~binary:false ~theorem:1 ~relation:`Mhb_ab f

let check_theorem_2 ?stats f =
  check_sem ?stats ~binary:false ~theorem:2 ~relation:`Chb_ba f

(* Section 5.1's closing remark: the same results for binary semaphores. *)
let check_theorem_1_binary ?stats f =
  check_sem ?stats ~binary:true ~theorem:1 ~relation:`Mhb_ab f

let check_theorem_2_binary ?stats f =
  check_sem ?stats ~binary:true ~theorem:2 ~relation:`Chb_ba f

let check_theorem_3 ?stats f = check_evt ?stats ~theorem:3 ~relation:`Mhb_ab f
let check_theorem_4 ?stats f = check_evt ?stats ~theorem:4 ~relation:`Chb_ba f

let check_all ?stats formula =
  [
    check_theorem_1 ?stats formula;
    check_theorem_2 ?stats formula;
    check_theorem_3 ?stats formula;
    check_theorem_4 ?stats formula;
  ]

let pp_check ppf c =
  Format.fprintf ppf
    "Theorem %d: formula %a is %s; %s holds: %b; equivalence %s (%d events)"
    c.theorem Cnf.pp c.formula
    (if c.satisfiable then "SAT" else "UNSAT")
    (match c.theorem with 1 | 3 -> "a MHB b" | _ -> "b CHB a")
    c.ordering_holds
    (if c.agrees then "VERIFIED" else "VIOLATED")
    c.n_events
