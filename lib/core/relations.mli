(** The six ordering relations of Table 1, computed exactly.

    Given an observed execution [P] and its set [F(P)] of feasible program
    executions, the relations are:

    {v
                      must-have                      could-have
    happened-before   a MHB b: every feasible        a CHB b: some feasible
                      schedule runs a before b       schedule runs a before b
    concurrent-with   a MCW b: a,b incomparable      a CCW b: a,b incomparable
                      in every pinned order po(σ)    in some pinned order po(σ)
    ordered-with      a MOW b: a,b comparable in     a COW b: a,b comparable in
                      every po(σ)                    some po(σ)
    v}

    The happened-before pair is decided at schedule level (exact: a feasible
    execution with [a T b] exists iff a feasible schedule orders [a] first);
    the concurrent/ordered pairs quantify over the pinned partial order of
    each schedule class, where incomparability means the class admits
    timings in which the two events overlap (see {!Pinned} and DESIGN.md).

    Everything here is computed by exhausting [F(P)] — the paper proves
    this cost unavoidable (must-have: co-NP-hard; could-have: NP-hard). *)

type relation = MHB | CHB | MCW | CCW | MOW | COW

val all_relations : relation list

val relation_name : relation -> string

type t = {
  n : int;
  feasible_count : int;  (** schedules enumerated (capped at [limit]) *)
  truncated : bool;
      (** [true] when a [limit] or budget deadline cut the pass short *)
  distinct_classes : int;
      (** number of distinct pinned partial orders among the enumerated
          schedules — how many genuinely different executions hide behind
          the schedule count *)
  before_some : Rel.t;  (** [(a,b)]: some feasible schedule runs a before b *)
  comparable_some : Rel.t;  (** some po(σ) orders a and b (symmetric) *)
  incomparable_some : Rel.t;  (** some po(σ) leaves a,b unordered (symmetric) *)
}

val of_summary : Session.summary -> t
(** Rebuilds the record from a session summary (same fields, same
    semantics) — the bridge every entry point below goes through. *)

val of_session : Session.t -> t
(** The full-enumeration summary of a shared {!Session} ([Session.summary]):
    one registered fold over the session's single pass, served from the
    session's cache when warm.  Use this (rather than {!compute}) when
    other analyses share the session. *)

val of_session_reduced : Session.t -> t
(** Class-level summary of a shared session ([Session.summary_reduced]). *)

val of_session_outcome : Session.t -> t Budget.outcome
(** {!of_session} with truncation made explicit: [Bound_hit] when a
    [limit] or the session budget cut the pass short, in which case the
    could-have relations are sound under-approximations and the
    must-have relations sound over-approximations. *)

val of_session_reduced_outcome : Session.t -> t Budget.outcome

val compute : ?limit:int -> ?jobs:int -> ?stats:Telemetry.t -> Skeleton.t -> t
(** Enumerates every feasible schedule (up to [limit], default unlimited)
    and accumulates the three existential summaries.  With a [limit] the
    result is a sound under-approximation of the could-have relations and
    an over-approximation of the must-have ones ([truncated] tells you).

    [jobs] (default [1]) enables the deterministic multicore fan-out of
    {!Parallel}: the enumeration splits at a shallow prefix depth into
    independent subtree tasks and per-worker accumulators are merged in
    task order, so the result is bit-identical to [jobs = 1].  Parallelism
    only engages without a [limit] (a cross-subtree cutoff would be
    order-dependent) and under the packed {!Engine}.

    [?stats] populates the given {!Telemetry.t} as the run goes: search
    counters, phase timers, and — for parallel runs — the split depth,
    per-task subtree sizes and per-domain wall times.  Search counters
    are bit-identical across [jobs] (split probing is uncounted, the
    chosen split is re-walked counted, per-worker counters merge in task
    order); only the [Par_*] counters, the {!Reach} memo statistics and
    every wall-clock field legitimately vary. *)

val compute_reduced :
  ?limit:int -> ?jobs:int -> ?stats:Telemetry.t -> Skeleton.t -> t
(** The same summary computed the smart way: happened-before bits by
    memoized state reachability ({!Reach.exists_before}, one query per
    ordered pair), comparability bits by sleep-set partial-order reduction
    ({!Por} — one representative per commutation class instead of every
    schedule), and [feasible_count] by the counting DP (saturating at
    [Reach.count_saturation]).  Equal to {!compute} on every input
    (property-tested); exponentially faster on traces with many independent
    events — 68 million schedules collapse to a few thousand
    representatives on the Theorem 1 programs.  [jobs] (default [1])
    parallelizes both halves deterministically: the happened-before
    queries split by matrix row (one memoizing engine per worker) and the
    POR walk splits into sleep-set subtree tasks.

    [?limit] has the same meaning as in {!compute}, applied to the
    representative walk: the comparability summaries become sound
    under-approximations and [truncated] is set when the walk was cut
    short, while the happened-before bits and [feasible_count] stay
    exact (they do not enumerate).  As everywhere, a [limit] keeps the
    capped walk sequential.  [?stats] as in {!compute}. *)

val holds : t -> relation -> int -> int -> bool
(** [holds t r a b]: does [a r b]?  All relations are irreflexive here:
    [holds t r a a = false].  When [F(P)] is empty every could-have
    relation is empty and every must-have relation is vacuously full
    (excluding the diagonal). *)

val to_rel : t -> relation -> Rel.t
(** The full relation as a pair matrix. *)

val pp_matrix : Format.formatter -> t * relation * Event.t array -> unit
(** Prints the relation as an event-by-event matrix with labels. *)

val pp_summary : Format.formatter -> t * Event.t array -> unit
(** Prints all six matrices. *)
