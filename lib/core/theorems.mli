(** Machine checks of Theorems 1–4.

    Each check builds the reduction program for a formula [B], runs it to
    obtain an observed execution, decides the relevant ordering relation
    with the exact engine, decides satisfiability of [B] with the DPLL
    solver, and verifies the theorem's equivalence:

    - Theorem 1 (semaphores):   [a MHB b  ⇔  B unsatisfiable]
    - Theorem 2 (semaphores):   [b CHB a  ⇔  B satisfiable]
    - Theorem 3 (event-style):  [a MHB b  ⇔  B unsatisfiable]
    - Theorem 4 (event-style):  [b CHB a  ⇔  B satisfiable]

    Section 5.3 is checked for free: the reduction programs contain no
    shared variables, so their dependence relations are empty and the same
    decisions hold with dependences ignored. *)

type check = {
  theorem : int;
  formula : Cnf.t;
  satisfiable : bool;  (** DPLL verdict *)
  ordering_holds : bool;  (** the ordering relation the theorem names *)
  agrees : bool;  (** the theorem's equivalence, as checked *)
  bound_hit : bool;
      (** [true] when the ordering verdict was degraded by a budget
          deadline — the check is inconclusive, not a counterexample *)
  n_events : int;  (** size of the constructed execution *)
}

val check_theorem_1 : ?stats:Telemetry.t -> ?budget:Budget.t -> Cnf.t -> check
val check_theorem_2 : ?stats:Telemetry.t -> ?budget:Budget.t -> Cnf.t -> check
val check_theorem_3 : ?stats:Telemetry.t -> ?budget:Budget.t -> Cnf.t -> check
val check_theorem_4 : ?stats:Telemetry.t -> ?budget:Budget.t -> Cnf.t -> check
(** [?stats] threads one {!Telemetry.t} through the exact-engine decision
    (the DPLL side is not instrumented); several checks may share one
    report and their counters accumulate.  [?budget] bounds the ordering
    decision; an expiry sets [bound_hit] instead of raising. *)

val check_theorem_1_binary :
  ?stats:Telemetry.t -> ?budget:Budget.t -> Cnf.t -> check
(** Theorem 1 with every semaphore declared binary — the paper's remark
    that the proofs do not use the counting ability of semaphores. *)

val check_theorem_2_binary :
  ?stats:Telemetry.t -> ?budget:Budget.t -> Cnf.t -> check

val check_all : ?stats:Telemetry.t -> ?budget:Budget.t -> Cnf.t -> check list
(** All four checks from shared work: the SAT verdict is decided once
    and each reduction style (semaphore for 1–2, event-style for 3–4)
    builds one trace and one session-backed decision procedure, so the
    two theorems of a style share one memoized reachability engine
    instead of re-launching the search.  Verdicts are identical to the
    individual [check_theorem_*] calls. *)

val pp_check : Format.formatter -> check -> unit
