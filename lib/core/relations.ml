type relation = MHB | CHB | MCW | CCW | MOW | COW

let all_relations = [ MHB; CHB; MCW; CCW; MOW; COW ]

let relation_name = function
  | MHB -> "must-have-happened-before"
  | CHB -> "could-have-happened-before"
  | MCW -> "must-have-been-concurrent-with"
  | CCW -> "could-have-been-concurrent-with"
  | MOW -> "must-have-been-ordered-with"
  | COW -> "could-have-been-ordered-with"

type t = {
  n : int;
  feasible_count : int;
  truncated : bool;
  distinct_classes : int;
  before_some : Rel.t;
  comparable_some : Rel.t;
  incomparable_some : Rel.t;
}

(* Per-worker accumulator: each enumeration task builds one of these and
   they are merged in task order — every operation involved (bit unions,
   count sums, class-key-set unions) is commutative and associative, so
   the merge is deterministic and equal to the sequential result.
   Distinct pinned orders are tracked by their packed bit-matrix key
   ({!Rel.pack}) in a {!Wordtbl} rather than a stringified pair list. *)
type acc = {
  before : Rel.t;
  comparable : Rel.t;
  incomparable : Rel.t;
  classes : unit Wordtbl.t;
  position : int array;
}

let make_acc n =
  {
    before = Rel.create n;
    comparable = Rel.create n;
    incomparable = Rel.create n;
    classes = Wordtbl.create 64;
    position = Array.make n 0;
  }

let record_class acc po =
  let key = Rel.pack po in
  if not (Wordtbl.mem acc.classes key) then Wordtbl.add acc.classes key ()

let record_comparability acc po =
  let n = Array.length acc.position in
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      if a <> b then
        if Rel.mem po a b || Rel.mem po b a then Rel.add acc.comparable a b
        else Rel.add acc.incomparable a b
    done
  done

let visit_schedule sk acc schedule =
  let n = Array.length schedule in
  Array.iteri (fun pos e -> acc.position.(e) <- pos) schedule;
  let po = Pinned.po_of_schedule sk schedule in
  record_class acc po;
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      if a <> b && acc.position.(a) < acc.position.(b) then
        Rel.add acc.before a b
    done
  done;
  record_comparability acc po

let merge_acc dst src =
  Rel.union_into dst.before src.before;
  Rel.union_into dst.comparable src.comparable;
  Rel.union_into dst.incomparable src.incomparable;
  Wordtbl.iter
    (fun k () -> if not (Wordtbl.mem dst.classes k) then Wordtbl.add dst.classes k ())
    src.classes

let of_acc n ~feasible_count ~truncated acc =
  {
    n;
    feasible_count;
    truncated;
    distinct_classes = Wordtbl.length acc.classes;
    before_some = acc.before;
    comparable_some = acc.comparable;
    incomparable_some = acc.incomparable;
  }

let compute_sequential ?limit sk =
  let n = sk.Skeleton.n in
  let acc = make_acc n in
  let feasible_count = Enumerate.iter ?limit sk (visit_schedule sk acc) in
  let truncated =
    match limit with Some l -> feasible_count >= l | None -> false
  in
  of_acc n ~feasible_count ~truncated acc

let compute ?limit ?(jobs = 1) sk =
  let n = sk.Skeleton.n in
  (* Parallelism needs subtree independence: an early-stop [limit] is
     order-dependent across subtrees, and the naive oracle engine must
     stay a faithful replica of the seed code path. *)
  let parallel =
    jobs > 1 && limit = None && Engine.current () = Engine.Packed
  in
  if not parallel then compute_sequential ?limit sk
  else
    match Parallel.split_prefixes sk ~jobs with
    | None -> compute_sequential sk
    | Some prefixes ->
        let results =
          Parallel.map ~jobs
            (fun prefix ->
              let acc = make_acc n in
              let count =
                Enumerate.iter_from sk ~prefix (visit_schedule sk acc)
              in
              (count, acc))
            prefixes
        in
        let acc = make_acc n in
        let feasible_count =
          Array.fold_left
            (fun total (count, task_acc) ->
              merge_acc acc task_acc;
              total + count)
            0 results
        in
        of_acc n ~feasible_count ~truncated:false acc

let compute_reduced ?(jobs = 1) sk =
  let n = sk.Skeleton.n in
  let reach = Reach.create sk in
  let parallel = jobs > 1 && Engine.current () = Engine.Packed in
  let before_some = Rel.create n in
  (* Happened-before bits: n² reachability queries.  Parallel mode splits
     the rows into one contiguous block per worker, each with its own
     memoizing engine (the memo tables are not shared between domains);
     blocks touch disjoint rows, so the union is trivially deterministic. *)
  let fill_before reach rel lo hi =
    for a = lo to hi do
      for b = 0 to n - 1 do
        if Reach.exists_before reach a b then Rel.add rel a b
      done
    done
  in
  if (not parallel) || n < 2 then fill_before reach before_some 0 (n - 1)
  else begin
    let k = min jobs n in
    let ranges =
      Array.init k (fun i ->
          let lo = i * n / k and hi = (((i + 1) * n) / k) - 1 in
          (lo, hi))
    in
    let parts =
      Parallel.map ~jobs
        (fun (lo, hi) ->
          let rel = Rel.create n in
          fill_before (Reach.create sk) rel lo hi;
          rel)
        ranges
    in
    Array.iter (fun rel -> Rel.union_into before_some rel) parts
  end;
  (* Comparability bits and class count from POR representatives. *)
  let acc = make_acc n in
  let visit schedule =
    let po = Pinned.po_of_schedule sk schedule in
    record_class acc po;
    record_comparability acc po
  in
  (match
     if parallel then Parallel.split_por_tasks sk ~jobs else None
   with
  | None ->
      let (_ : int) = Por.iter_representatives sk visit in
      ()
  | Some tasks ->
      let parts =
        Parallel.map ~jobs
          (fun task ->
            let task_acc = make_acc n in
            let (_ : int) =
              Por.iter_task sk task (fun schedule ->
                  let po = Pinned.po_of_schedule sk schedule in
                  record_class task_acc po;
                  record_comparability task_acc po)
            in
            task_acc)
          tasks
      in
      Array.iter (fun part -> merge_acc acc part) parts);
  {
    n;
    feasible_count = Reach.schedule_count reach;
    truncated = false;
    distinct_classes = Wordtbl.length acc.classes;
    before_some;
    comparable_some = acc.comparable;
    incomparable_some = acc.incomparable;
  }

let holds t relation a b =
  if a = b then false
  else
    match relation with
    | CHB -> Rel.mem t.before_some a b
    | MHB -> t.feasible_count > 0 && not (Rel.mem t.before_some b a)
    | CCW -> Rel.mem t.incomparable_some a b
    | MOW -> t.feasible_count > 0 && not (Rel.mem t.incomparable_some a b)
    | COW -> Rel.mem t.comparable_some a b
    | MCW -> t.feasible_count > 0 && not (Rel.mem t.comparable_some a b)

let to_rel t relation =
  let r = Rel.create t.n in
  for a = 0 to t.n - 1 do
    for b = 0 to t.n - 1 do
      if holds t relation a b then Rel.add r a b
    done
  done;
  r

let short_name = function
  | MHB -> "MHB"
  | CHB -> "CHB"
  | MCW -> "MCW"
  | CCW -> "CCW"
  | MOW -> "MOW"
  | COW -> "COW"

let pp_matrix ppf (t, relation, events) =
  let label e = events.(e).Event.label in
  let width =
    Array.fold_left (fun w e -> max w (String.length e.Event.label)) 3 events
  in
  Format.fprintf ppf "@[<v>%s (%s):@ " (relation_name relation)
    (short_name relation);
  Format.fprintf ppf "%*s " width "";
  for b = 0 to t.n - 1 do
    Format.fprintf ppf "%2d " b
  done;
  Format.fprintf ppf "@ ";
  for a = 0 to t.n - 1 do
    Format.fprintf ppf "%*s " width (label a);
    for b = 0 to t.n - 1 do
      Format.fprintf ppf " %s "
        (if a = b then "." else if holds t relation a b then "X" else "-")
    done;
    Format.fprintf ppf "@ "
  done;
  Format.fprintf ppf "@]"

let pp_summary ppf (t, events) =
  Format.fprintf ppf "@[<v>%d feasible schedule%s%s in %d distinct class%s@ @ "
    t.feasible_count
    (if t.feasible_count = 1 then "" else "s")
    (if t.truncated then " (truncated)" else "")
    t.distinct_classes
    (if t.distinct_classes = 1 then "" else "es");
  List.iter
    (fun r -> Format.fprintf ppf "%a@ " pp_matrix (t, r, events))
    all_relations;
  Format.fprintf ppf "@]"
