type relation = MHB | CHB | MCW | CCW | MOW | COW

let all_relations = [ MHB; CHB; MCW; CCW; MOW; COW ]

let relation_name = function
  | MHB -> "must-have-happened-before"
  | CHB -> "could-have-happened-before"
  | MCW -> "must-have-been-concurrent-with"
  | CCW -> "could-have-been-concurrent-with"
  | MOW -> "must-have-been-ordered-with"
  | COW -> "could-have-been-ordered-with"

type t = {
  n : int;
  feasible_count : int;
  truncated : bool;
  distinct_classes : int;
  before_some : Rel.t;
  comparable_some : Rel.t;
  incomparable_some : Rel.t;
}

(* Per-worker accumulator: each enumeration task builds one of these and
   they are merged in task order — every operation involved (bit unions,
   count sums, class-key-set unions) is commutative and associative, so
   the merge is deterministic and equal to the sequential result.
   Distinct pinned orders are tracked by their packed bit-matrix key
   ({!Rel.pack}) in a {!Wordtbl} rather than a stringified pair list. *)
type acc = {
  before : Rel.t;
  comparable : Rel.t;
  incomparable : Rel.t;
  classes : unit Wordtbl.t;
  position : int array;
}

let make_acc n =
  {
    before = Rel.create n;
    comparable = Rel.create n;
    incomparable = Rel.create n;
    classes = Wordtbl.create 64;
    position = Array.make n 0;
  }

let record_class acc po =
  let key = Rel.pack po in
  if not (Wordtbl.mem acc.classes key) then Wordtbl.add acc.classes key ()

let record_comparability acc po =
  let n = Array.length acc.position in
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      if a <> b then
        if Rel.mem po a b || Rel.mem po b a then Rel.add acc.comparable a b
        else Rel.add acc.incomparable a b
    done
  done

let visit_schedule sk acc schedule =
  let n = Array.length schedule in
  Array.iteri (fun pos e -> acc.position.(e) <- pos) schedule;
  let po = Pinned.po_of_schedule sk schedule in
  record_class acc po;
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      if a <> b && acc.position.(a) < acc.position.(b) then
        Rel.add acc.before a b
    done
  done;
  record_comparability acc po

let merge_acc dst src =
  Rel.union_into dst.before src.before;
  Rel.union_into dst.comparable src.comparable;
  Rel.union_into dst.incomparable src.incomparable;
  Wordtbl.iter
    (fun k () -> if not (Wordtbl.mem dst.classes k) then Wordtbl.add dst.classes k ())
    src.classes

let of_acc n ~feasible_count ~truncated acc =
  {
    n;
    feasible_count;
    truncated;
    distinct_classes = Wordtbl.length acc.classes;
    before_some = acc.before;
    comparable_some = acc.comparable;
    incomparable_some = acc.incomparable;
  }

(* Shared prologue of both entry points: note the run metadata and hand
   back the counter instance engines write into. *)
let start_run stats ~jobs =
  match stats with
  | None -> Counters.null
  | Some tel ->
      Telemetry.set_run tel
        ~engine:(Engine.to_string (Engine.current ()))
        ~jobs;
      Telemetry.counters tel

let worker_counters c =
  if Counters.enabled c then Counters.create () else Counters.null

let compute_sequential ?limit ~stats sk =
  let n = sk.Skeleton.n in
  let acc = make_acc n in
  let feasible_count =
    Counters.time stats Counters.T_enumerate (fun () ->
        Enumerate.iter ?limit ~stats sk (visit_schedule sk acc))
  in
  let truncated =
    match limit with Some l -> feasible_count >= l | None -> false
  in
  of_acc n ~feasible_count ~truncated acc

let compute ?limit ?(jobs = 1) ?stats sk =
  let n = sk.Skeleton.n in
  let c = start_run stats ~jobs in
  Counters.time c Counters.T_total @@ fun () ->
  (* Parallelism needs subtree independence: an early-stop [limit] is
     order-dependent across subtrees, and the naive oracle engine must
     stay a faithful replica of the seed code path. *)
  let parallel =
    jobs > 1 && limit = None && Engine.current () = Engine.Packed
  in
  let result =
    if not parallel then compute_sequential ?limit ~stats:c sk
    else
      match Parallel.split_prefixes ~stats:c sk ~jobs with
      | None -> compute_sequential ~stats:c sk
      | Some (depth, prefixes) ->
          Option.iter (fun tel -> Telemetry.set_split_depth tel depth) stats;
          let results =
            Counters.time c Counters.T_enumerate (fun () ->
                Parallel.map ?telemetry:stats ~jobs
                  (fun prefix ->
                    let wc = worker_counters c in
                    let acc = make_acc n in
                    let count =
                      Enumerate.iter_from ~stats:wc sk ~prefix
                        (visit_schedule sk acc)
                    in
                    (count, acc, wc))
                  prefixes)
          in
          Option.iter
            (fun tel ->
              Telemetry.set_task_schedules tel
                (Array.map (fun (k, _, _) -> k) results))
            stats;
          let acc = make_acc n in
          let feasible_count =
            Array.fold_left
              (fun total (count, task_acc, wc) ->
                Counters.bump c Counters.Par_merges;
                Counters.merge_into ~dst:c wc;
                merge_acc acc task_acc;
                total + count)
              0 results
          in
          of_acc n ~feasible_count ~truncated:false acc
  in
  Counters.set c Counters.Classes result.distinct_classes;
  result

let compute_reduced ?limit ?(jobs = 1) ?stats sk =
  let n = sk.Skeleton.n in
  let c = start_run stats ~jobs in
  Counters.time c Counters.T_total @@ fun () ->
  let reach = Reach.create ~stats:c sk in
  let parallel = jobs > 1 && Engine.current () = Engine.Packed in
  let before_some = Rel.create n in
  (* Happened-before bits: n² reachability queries.  Parallel mode splits
     the rows into one contiguous block per worker, each with its own
     memoizing engine (the memo tables are not shared between domains);
     blocks touch disjoint rows, so the union is trivially deterministic.
     [Reach_queries] stays n² either way; the memo hit/miss split does
     depend on how rows were distributed. *)
  let fill_before reach rel lo hi =
    for a = lo to hi do
      for b = 0 to n - 1 do
        if Reach.exists_before reach a b then Rel.add rel a b
      done
    done
  in
  Counters.time c Counters.T_before (fun () ->
      if (not parallel) || n < 2 then fill_before reach before_some 0 (n - 1)
      else begin
        let k = min jobs n in
        let ranges =
          Array.init k (fun i ->
              let lo = i * n / k and hi = (((i + 1) * n) / k) - 1 in
              (lo, hi))
        in
        let parts =
          Parallel.map ?telemetry:stats ~jobs
            (fun (lo, hi) ->
              let wc = worker_counters c in
              let rel = Rel.create n in
              let worker_reach = Reach.create ~stats:wc sk in
              fill_before worker_reach rel lo hi;
              Reach.stats_commit worker_reach;
              (rel, wc))
            ranges
        in
        Array.iter
          (fun (rel, wc) ->
            Counters.merge_into ~dst:c wc;
            Rel.union_into before_some rel)
          parts
      end);
  (* Comparability bits and class count from POR representatives.  A
     [?limit] caps the representative walk (an order-dependent cutoff, so
     it forces this half sequential, as everywhere else); the
     happened-before bits and the schedule count above/below stay exact. *)
  let acc = make_acc n in
  let visit schedule =
    let po = Pinned.po_of_schedule sk schedule in
    record_class acc po;
    record_comparability acc po
  in
  let truncated = ref false in
  Counters.time c Counters.T_enumerate (fun () ->
      match
        if parallel && limit = None then
          Parallel.split_por_tasks ~stats:c sk ~jobs
        else None
      with
      | None ->
          let reps = Por.iter_representatives ?limit ~stats:c sk visit in
          (match limit with
          | Some l when reps >= l -> truncated := true
          | _ -> ())
      | Some (depth, tasks) ->
          Option.iter (fun tel -> Telemetry.set_split_depth tel depth) stats;
          let parts =
            Parallel.map ?telemetry:stats ~jobs
              (fun task ->
                let wc = worker_counters c in
                let task_acc = make_acc n in
                let reps =
                  Por.iter_task ~stats:wc sk task (fun schedule ->
                      let po = Pinned.po_of_schedule sk schedule in
                      record_class task_acc po;
                      record_comparability task_acc po)
                in
                (reps, task_acc, wc))
              tasks
          in
          Option.iter
            (fun tel ->
              Telemetry.set_task_schedules tel
                (Array.map (fun (r, _, _) -> r) parts))
            stats;
          Array.iter
            (fun (_, part, wc) ->
              Counters.bump c Counters.Par_merges;
              Counters.merge_into ~dst:c wc;
              merge_acc acc part)
            parts);
  let feasible_count =
    Counters.time c Counters.T_count (fun () -> Reach.schedule_count reach)
  in
  Reach.stats_commit reach;
  let distinct_classes = Wordtbl.length acc.classes in
  Counters.set c Counters.Classes distinct_classes;
  {
    n;
    feasible_count;
    truncated = !truncated;
    distinct_classes;
    before_some;
    comparable_some = acc.comparable;
    incomparable_some = acc.incomparable;
  }

let holds t relation a b =
  if a = b then false
  else
    match relation with
    | CHB -> Rel.mem t.before_some a b
    | MHB -> t.feasible_count > 0 && not (Rel.mem t.before_some b a)
    | CCW -> Rel.mem t.incomparable_some a b
    | MOW -> t.feasible_count > 0 && not (Rel.mem t.incomparable_some a b)
    | COW -> Rel.mem t.comparable_some a b
    | MCW -> t.feasible_count > 0 && not (Rel.mem t.comparable_some a b)

let to_rel t relation =
  let r = Rel.create t.n in
  for a = 0 to t.n - 1 do
    for b = 0 to t.n - 1 do
      if holds t relation a b then Rel.add r a b
    done
  done;
  r

let short_name = function
  | MHB -> "MHB"
  | CHB -> "CHB"
  | MCW -> "MCW"
  | CCW -> "CCW"
  | MOW -> "MOW"
  | COW -> "COW"

let pp_matrix ppf (t, relation, events) =
  let label e = events.(e).Event.label in
  let width =
    Array.fold_left (fun w e -> max w (String.length e.Event.label)) 3 events
  in
  Format.fprintf ppf "@[<v>%s (%s):@ " (relation_name relation)
    (short_name relation);
  Format.fprintf ppf "%*s " width "";
  for b = 0 to t.n - 1 do
    Format.fprintf ppf "%2d " b
  done;
  Format.fprintf ppf "@ ";
  for a = 0 to t.n - 1 do
    Format.fprintf ppf "%*s " width (label a);
    for b = 0 to t.n - 1 do
      Format.fprintf ppf " %s "
        (if a = b then "." else if holds t relation a b then "X" else "-")
    done;
    Format.fprintf ppf "@ "
  done;
  Format.fprintf ppf "@]"

let pp_summary ppf (t, events) =
  Format.fprintf ppf "@[<v>%d feasible schedule%s%s in %d distinct class%s@ @ "
    t.feasible_count
    (if t.feasible_count = 1 then "" else "s")
    (if t.truncated then " (truncated)" else "")
    t.distinct_classes
    (if t.distinct_classes = 1 then "" else "es");
  List.iter
    (fun r -> Format.fprintf ppf "%a@ " pp_matrix (t, r, events))
    all_relations;
  Format.fprintf ppf "@]"
